package muzzle

import (
	"context"
	"fmt"

	"muzzle/internal/bench"
	"muzzle/internal/eval"
	"muzzle/internal/registry"
	"muzzle/internal/sim"
)

// Pipeline is the primary entry point of the package: an immutable,
// goroutine-safe bundle of hardware model, compiler set, simulator
// constants, and evaluation policy, assembled once with functional options
// and reused across compilations and evaluation runs.
//
//	p, err := muzzle.NewPipeline(
//		muzzle.WithMachine(muzzle.PaperMachine()),
//		muzzle.WithCompilers("baseline", "optimized"),
//		muzzle.WithParallelism(8),
//	)
//	res, err := p.Compile(ctx, muzzle.QFT(16))
//	results, err := p.EvaluateNISQ(ctx)
//
// The zero-option NewPipeline() reproduces the paper's evaluation setup
// exactly: the L6 machine, the baseline/optimized compiler pair, the
// default simulator constants, and the 120-circuit random suite. All
// methods honor context cancellation down to the compiler scheduling loop.
type Pipeline struct {
	opt     eval.Options
	primary string
	// randomSeed, when set, overrides the random-suite seed regardless of
	// the order WithRandomSeed and WithRandomSuite were applied in.
	randomSeed *int64
}

// PipelineOption configures a Pipeline under construction. Options report
// invalid values as errors from NewPipeline rather than panicking.
type PipelineOption func(*Pipeline) error

// NewPipeline builds a Pipeline from functional options; with no options it
// reproduces the paper's setup. Unknown compiler names and invalid values
// fail here, not at first use.
func NewPipeline(opts ...PipelineOption) (*Pipeline, error) {
	p := &Pipeline{opt: eval.DefaultOptions()}
	for _, o := range opts {
		if err := o(p); err != nil {
			return nil, err
		}
	}
	for _, name := range p.compilerNames() {
		if !registry.Has(name) {
			return nil, newErrorf(ErrUnknownCompiler, "NewPipeline",
				"compiler %q is not registered (registered: %v)", name, registry.Names())
		}
	}
	if p.primary == "" {
		p.primary = p.defaultPrimary()
	}
	if p.randomSeed != nil {
		p.opt.Random.Seed = *p.randomSeed
	}
	return p, nil
}

func (p *Pipeline) compilerNames() []string {
	if len(p.opt.Compilers) == 0 {
		return eval.DefaultCompilers()
	}
	return p.opt.Compilers
}

// defaultPrimary picks the compiler Compile uses when none is named: the
// paper's optimized compiler when configured, else the first in order.
func (p *Pipeline) defaultPrimary() string {
	names := p.compilerNames()
	for _, n := range names {
		if n == registry.Optimized {
			return n
		}
	}
	return names[0]
}

// WithMachine sets the hardware model (default: the paper's L6 machine).
func WithMachine(cfg MachineConfig) PipelineOption {
	return func(p *Pipeline) error {
		if err := cfg.Validate(); err != nil {
			return newError(ErrBadOption, "WithMachine", err)
		}
		p.opt.Config = cfg
		return nil
	}
}

// WithCompilers selects the registered compilers evaluation runs compare,
// in column order (default: "baseline", "optimized"). The first name —
// or "optimized", when listed — also becomes the compiler Compile uses.
func WithCompilers(names ...string) PipelineOption {
	return func(p *Pipeline) error {
		if len(names) == 0 {
			return newErrorf(ErrBadOption, "WithCompilers", "at least one compiler name required")
		}
		seen := map[string]bool{}
		for _, n := range names {
			if seen[n] {
				return newErrorf(ErrBadOption, "WithCompilers", "compiler %q listed twice", n)
			}
			seen[n] = true
		}
		p.opt.Compilers = append([]string(nil), names...)
		return nil
	}
}

// WithSimParams sets the simulator model constants (default: the paper's).
func WithSimParams(params SimParams) PipelineOption {
	return func(p *Pipeline) error {
		for _, err := range []error{
			params.Time.Validate(),
			params.Heating.Validate(),
			params.Fidelity.Validate(),
			params.Cooling.Validate(),
		} {
			if err != nil {
				return newError(ErrBadOption, "WithSimParams", err)
			}
		}
		p.opt.Sim = params
		return nil
	}
}

// WithMapper replaces the default greedy initial-mapping policy.
func WithMapper(m Placement) PipelineOption {
	return func(p *Pipeline) error {
		if m == nil {
			return newErrorf(ErrBadOption, "WithMapper", "mapper must not be nil")
		}
		p.opt.Mapper = m
		return nil
	}
}

// WithParallelism bounds concurrent circuit evaluations (default: one per
// CPU).
func WithParallelism(n int) PipelineOption {
	return func(p *Pipeline) error {
		if n < 0 {
			return newErrorf(ErrBadOption, "WithParallelism", "parallelism %d must be >= 0", n)
		}
		p.opt.Parallelism = n
		return nil
	}
}

// WithProgress installs a typed progress callback receiving one EvalEvent
// per circuit start, completion, and failure during evaluation runs.
// Multiple WithProgress options compose: every callback receives every
// event, in the order the options were given (the muzzled service relies
// on this to add its latency observer next to an operator's hook).
// Callbacks are never invoked concurrently with themselves.
func WithProgress(fn func(EvalEvent)) PipelineOption {
	return func(p *Pipeline) error {
		if fn == nil {
			return newErrorf(ErrBadOption, "WithProgress", "callback must not be nil")
		}
		if prev := p.opt.OnEvent; prev != nil {
			p.opt.OnEvent = func(ev EvalEvent) {
				prev(ev)
				fn(ev)
			}
			return nil
		}
		p.opt.OnEvent = fn
		return nil
	}
}

// WithRandomSuite overrides the random benchmark suite statistics
// (default: the paper's 120-circuit suite).
func WithRandomSuite(params RandomSuiteParams) PipelineOption {
	return func(p *Pipeline) error {
		p.opt.Random = params
		return nil
	}
}

// WithRandomSeed re-seeds the random benchmark suite so callers can draw
// reproducible variant suites; the default (and a seed equal to
// DefaultRandomSuiteParams().Seed) preserves the paper's 120 circuits
// exactly. The seed applies to the suite params in effect when the
// pipeline is built, so it composes with WithRandomSuite in either order.
func WithRandomSeed(seed int64) PipelineOption {
	return func(p *Pipeline) error {
		p.randomSeed = &seed
		return nil
	}
}

// WithRandomLimit evaluates only the first n random circuits (0 = all).
func WithRandomLimit(n int) PipelineOption {
	return func(p *Pipeline) error {
		if n < 0 {
			return newErrorf(ErrBadOption, "WithRandomLimit", "limit %d must be >= 0", n)
		}
		p.opt.RandomLimit = n
		return nil
	}
}

// Compilers returns the pipeline's compiler names in evaluation order.
func (p *Pipeline) Compilers() []string {
	return append([]string(nil), p.compilerNames()...)
}

// Machine returns the pipeline's hardware model.
func (p *Pipeline) Machine() MachineConfig { return p.opt.Config }

// Compile compiles a circuit with the pipeline's primary compiler
// ("optimized" when configured, else the first of WithCompilers).
func (p *Pipeline) Compile(ctx context.Context, c *Circuit) (*CompileResult, error) {
	return p.compileWith(ctx, "Pipeline.Compile", p.primary, c)
}

// CompileWith compiles a circuit with a specific registered compiler,
// which need not be one of the pipeline's evaluation set.
func (p *Pipeline) CompileWith(ctx context.Context, compilerName string, c *Circuit) (*CompileResult, error) {
	return p.compileWith(ctx, "Pipeline.CompileWith", compilerName, c)
}

func (p *Pipeline) compileWith(ctx context.Context, op, compilerName string, c *Circuit) (*CompileResult, error) {
	factory, err := registry.Lookup(compilerName)
	if err != nil {
		return nil, newError(ErrUnknownCompiler, op, err)
	}
	comp := factory()
	var res *CompileResult
	if p.opt.Mapper != nil {
		res, err = comp.CompileWithMapperContext(ctx, c, p.opt.Config, p.opt.Mapper)
	} else {
		res, err = comp.CompileContext(ctx, c, p.opt.Config)
	}
	if err != nil {
		return nil, wrapErr(ErrCompile, op, fmt.Errorf("%s: %s: %w", compilerName, c.Name, err))
	}
	return res, nil
}

// Simulate replays a compiled program under the pipeline's simulator
// constants.
func (p *Pipeline) Simulate(ctx context.Context, res *CompileResult) (*SimReport, error) {
	rep, err := sim.SimulateContext(ctx, res.Config, res.InitialPlacement, res.Ops, p.opt.Sim)
	if err != nil {
		return nil, wrapErr(ErrSimulate, "Pipeline.Simulate", err)
	}
	return rep, nil
}

// Evaluate runs every configured compiler over the circuits concurrently
// and simulates each trace, preserving input order. On failure it still
// returns every completed circuit's result (failed circuits omitted)
// together with a structured error joining all failures; a canceled run
// reports ErrCanceled and satisfies errors.Is(err, context.Canceled).
func (p *Pipeline) Evaluate(ctx context.Context, circuits []*Circuit) ([]*EvalResult, error) {
	results, err := eval.RunAll(ctx, circuits, p.opt)
	return results, wrapErr(ErrEvaluate, "Pipeline.Evaluate", err)
}

// EvaluateStream evaluates circuits concurrently, delivering one EvalItem
// per circuit in completion order and closing the channel when the run
// ends. On cancellation, unstarted circuits produce no item; in-flight ones
// abort promptly. The channel is buffered for the whole run, so an
// abandoned consumer never wedges the workers.
func (p *Pipeline) EvaluateStream(ctx context.Context, circuits []*Circuit) <-chan EvalItem {
	return eval.Stream(ctx, circuits, p.opt)
}

// EvaluateCircuit evaluates a single circuit under every configured
// compiler.
func (p *Pipeline) EvaluateCircuit(ctx context.Context, c *Circuit) (*EvalResult, error) {
	r, err := eval.RunCircuit(ctx, c, p.opt)
	if err != nil {
		return nil, wrapErr(ErrEvaluate, "Pipeline.EvaluateCircuit", err)
	}
	return r, nil
}

// EvaluateNISQ evaluates the paper's five NISQ benchmarks (Table II rows).
func (p *Pipeline) EvaluateNISQ(ctx context.Context) ([]*EvalResult, error) {
	results, err := eval.RunNISQ(ctx, p.opt)
	return results, wrapErr(ErrEvaluate, "Pipeline.EvaluateNISQ", err)
}

// EvaluateRandom evaluates the random benchmark suite (honoring
// WithRandomLimit).
func (p *Pipeline) EvaluateRandom(ctx context.Context) ([]*EvalResult, error) {
	results, err := eval.RunRandom(ctx, p.opt)
	return results, wrapErr(ErrEvaluate, "Pipeline.EvaluateRandom", err)
}

// RandomCircuits returns the pipeline's random suite, honoring
// WithRandomSuite and WithRandomLimit — the circuit list EvaluateRandom
// runs, for callers driving EvaluateStream directly.
func (p *Pipeline) RandomCircuits() []*Circuit {
	circuits := bench.RandomSuite(p.opt.Random)
	if p.opt.RandomLimit > 0 && p.opt.RandomLimit < len(circuits) {
		circuits = circuits[:p.opt.RandomLimit]
	}
	return circuits
}

// EvalEvent is a typed progress notification delivered to WithProgress
// callbacks: a start, completion, or failure of one circuit.
type EvalEvent = eval.Event

// Event kinds delivered to WithProgress callbacks.
const (
	// EvalStarted fires when a worker picks up a circuit.
	EvalStarted = eval.EventStarted
	// EvalCompleted fires when a circuit finishes (Result set).
	EvalCompleted = eval.EventCompleted
	// EvalFailed fires when a circuit errors (Err set).
	EvalFailed = eval.EventFailed
)

// EvalItem is one streamed per-circuit outcome of EvaluateStream: either
// Result or Err is set.
type EvalItem = eval.ItemResult

// EvalOutcome is one compiler's compilation result and simulator report on
// one circuit.
type EvalOutcome = eval.Outcome

// RandomSuiteParams are the random benchmark suite statistics
// (Section IV-A: 120 circuits, 30-90 qubits).
type RandomSuiteParams = bench.RandomSuiteParams

// DefaultRandomSuiteParams returns the paper's random-suite statistics.
func DefaultRandomSuiteParams() RandomSuiteParams { return bench.DefaultRandomSuiteParams() }

// RandomSuiteCircuits builds the random benchmark suite for the given
// statistics.
func RandomSuiteCircuits(params RandomSuiteParams) []*Circuit {
	return bench.RandomSuite(params)
}

// FormatCompilerMatrix renders one row per circuit with a shuttle-count
// column for every compiler of the run — the N-compiler generalization of
// Table II for pipelines with registry-added compilers.
func FormatCompilerMatrix(results []*EvalResult) string { return eval.Matrix(results) }
