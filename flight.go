package muzzle

import (
	"muzzle/internal/eval"
	"muzzle/internal/flight"
)

// Flight coalesces concurrent identical evaluations: callers that miss the
// compile cache on the same content key share one compile+simulate
// execution instead of each paying their own. It closes the cache's one
// blind spot — the cache dedups *completed* work, a flight group dedups
// *in-progress* work — so duplicate requests racing through the muzzled
// daemon, a sweep, and the CLI at once still cost exactly one compile.
// Install one with WithFlight; a single Flight is safe to share across
// pipelines and goroutines, and sharing is the point: coalescing only
// happens between pipelines that share the same group.
type Flight struct {
	g flight.Group[*eval.BenchResult]
}

// NewFlight builds an empty coalescing group.
func NewFlight() *Flight { return &Flight{} }

// FlightStats snapshot a group's coalescing counters.
type FlightStats = flight.Stats

// Stats returns a point-in-time snapshot of execution/coalesce counters.
func (f *Flight) Stats() FlightStats { return f.g.Stats() }

// WithFlight installs a coalescing group on the pipeline: evaluation runs
// that miss the cache (or run uncached) share in-flight executions with
// every other pipeline holding the same group, keyed by the same content
// hash the cache uses. Runs with a custom WithMapper bypass coalescing for
// the same reason they bypass the cache: the mapper is not part of the
// hash.
func WithFlight(f *Flight) PipelineOption {
	return func(p *Pipeline) error {
		if f == nil {
			return newErrorf(ErrBadOption, "WithFlight", "flight must not be nil")
		}
		p.opt.Flight = &f.g
		return nil
	}
}
