package muzzle

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestVerifyPublicAPI pins muzzle.Verify end to end: a real compilation
// verifies clean, and tampering with its trace or counters is detected.
func TestVerifyPublicAPI(t *testing.T) {
	p, err := NewPipeline()
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Compile(context.Background(), QFT(12))
	if err != nil {
		t.Fatal(err)
	}
	if vs := Verify(res); len(vs) != 0 {
		t.Fatalf("legal schedule reported %d violations: %v", len(vs), vs)
	}

	tampered := *res
	tampered.Ops = res.Ops[:len(res.Ops)-1]
	if vs := Verify(&tampered); len(vs) == 0 {
		t.Fatal("truncated trace verified clean")
	}

	counters := *res
	counters.Shuttles++
	vs := Verify(&counters)
	if len(vs) == 0 {
		t.Fatal("counter tampering verified clean")
	}
	if vs[0].Kind != ViolationMetadata {
		t.Fatalf("counter tampering reported kind %s, want %s", vs[0].Kind, ViolationMetadata)
	}
}

// TestWithVerifyPipeline pins that WithVerify leaves legal evaluations
// untouched (the paper's artifacts cannot shift when verification is on).
func TestWithVerifyPipeline(t *testing.T) {
	plain, err := NewPipeline(WithRandomLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	verified, err := NewPipeline(WithRandomLimit(2), WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.EvaluateCircuit(context.Background(), QFT(10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := verified.EvaluateCircuit(context.Background(), QFT(10))
	if err != nil {
		t.Fatalf("verified evaluation failed on a legal schedule: %v", err)
	}
	for _, name := range a.Compilers {
		if a.Outcome(name).Result.Shuttles != b.Outcome(name).Result.Shuttles {
			t.Fatalf("%s: WithVerify changed shuttles", name)
		}
	}
}

// TestVerifyErrorCode pins the public error-code upgrade: a cause chain
// containing a *VerifyError surfaces as ErrVerify.
func TestVerifyErrorCode(t *testing.T) {
	inner := &VerifyError{Circuit: "c", Violations: []Violation{{Op: 1, Kind: ViolationEdge, Detail: "d"}}}
	err := wrapErr(ErrEvaluate, "Pipeline.Evaluate", fmt.Errorf("eval: %w", inner))
	var pub *Error
	if !errors.As(err, &pub) {
		t.Fatalf("not a *muzzle.Error: %v", err)
	}
	if pub.Code != ErrVerify {
		t.Fatalf("code = %s, want %s", pub.Code, ErrVerify)
	}
	var vErr *VerifyError
	if !errors.As(err, &vErr) || len(vErr.Violations) != 1 {
		t.Fatalf("VerifyError lost through the public wrapper: %v", err)
	}
}
