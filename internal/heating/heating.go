// Package heating models the motional-mode (vibrational) energy n̄ of ion
// chains in a QCCD machine (paper Sections II-B3/II-B4, Fig. 3).
//
// Each trap's chain carries an average motional quanta count n̄ that grows
// from two sources:
//
//   - background (anomalous) heating, proportional to elapsed time; and
//   - shuttle events: SPLIT adds energy to the departing ion and relieves a
//     share of the source chain's energy (Fig. 3: "split reduces chain-0's
//     energy"), each MOVE pumps energy into the flying ion ("shuttle adds
//     energy to q[a1]"), and MERGE deposits the ion's accumulated energy
//     plus a merge penalty into the destination chain ("merging q[a1]
//     increases chain-1's energy").
//
// The fidelity model (internal/fidelity) consumes n̄: higher chain energy
// degrades every subsequent gate in that chain, which is exactly the
// mechanism by which extra shuttles hurt program fidelity and the reason
// reducing shuttles improves it (paper Section IV-C).
package heating

import (
	"fmt"
	"math"
)

// Params are the heating-model constants. Values are literature-plausible
// stand-ins for the experimentally calibrated numbers embedded in QCCDSim
// (paper refs [9], [10]); see DESIGN.md "Model constants". All results the
// paper reports are relative between two compilers sharing this model, so
// the structure, not the absolute calibration, is what matters.
type Params struct {
	// BackgroundRate is quanta gained per microsecond of wall-clock time by
	// an idle or operating chain (anomalous heating).
	BackgroundRate float64
	// SplitIonBump is quanta added to the departing ion by a SPLIT.
	SplitIonBump float64
	// MoveIonBump is quanta added to the flying ion per MOVE (one hop).
	MoveIonBump float64
	// MergeChainBump is quanta added to the receiving chain by a MERGE, on
	// top of the energy the arriving ion carries.
	MergeChainBump float64
	// SwapChainBump is quanta added to a chain per intra-chain SWAP.
	SwapChainBump float64
}

// DefaultParams returns the constants used throughout the evaluation.
func DefaultParams() Params {
	return Params{
		BackgroundRate: 1e-6, // 1 quantum/s — low-end anomalous heating
		SplitIonBump:   0.05,
		MoveIonBump:    0.1,
		MergeChainBump: 0.3,
		SwapChainBump:  0.02,
	}
}

// Validate rejects non-physical (negative) constants.
func (p Params) Validate() error {
	if p.BackgroundRate < 0 || p.SplitIonBump < 0 || p.MoveIonBump < 0 ||
		p.MergeChainBump < 0 || p.SwapChainBump < 0 {
		return fmt.Errorf("heating: negative parameter in %+v", p)
	}
	return nil
}

// Model tracks n̄ per trap chain and per in-flight ion.
type Model struct {
	params Params
	chainN []float64
	ionE   []float64
	maxN   float64
}

// NewModel returns a model for nTraps chains and nIons ions, all starting at
// n̄ = 0 (freshly cooled).
func NewModel(params Params, nTraps, nIons int) (*Model, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if nTraps <= 0 || nIons < 0 {
		return nil, fmt.Errorf("heating: bad dimensions traps=%d ions=%d", nTraps, nIons)
	}
	return &Model{
		params: params,
		chainN: make([]float64, nTraps),
		ionE:   make([]float64, nIons),
	}, nil
}

// Params returns the model constants.
func (m *Model) Params() Params { return m.params }

// ChainN returns the current motional mode n̄ of trap t's chain.
func (m *Model) ChainN(t int) float64 { return m.chainN[t] }

// MaxChainN returns the highest n̄ any chain has reached.
func (m *Model) MaxChainN() float64 { return m.maxN }

// Background advances trap t's chain by dt microseconds of anomalous
// heating.
func (m *Model) Background(t int, dt float64) {
	if dt < 0 {
		panic("heating: negative time step")
	}
	m.bump(t, m.params.BackgroundRate*dt)
}

// Split applies a SPLIT of ion q out of trap t whose chain had
// sizeBefore ions: the departing ion carries away its per-ion share of the
// chain's energy plus the split bump, and the chain's energy drops by that
// share (Fig. 3: "split reduces chain-0's energy").
func (m *Model) Split(t, q, sizeBefore int) {
	if sizeBefore <= 0 {
		panic("heating: split from empty chain")
	}
	share := m.chainN[t] / float64(sizeBefore)
	m.ionE[q] = share + m.params.SplitIonBump
	m.chainN[t] -= share
}

// Move applies one hop's worth of energy to the flying ion q.
func (m *Model) Move(q int) {
	m.ionE[q] += m.params.MoveIonBump
}

// Merge deposits ion q into trap t's chain: the chain absorbs the ion's
// accumulated energy in full plus the merge penalty (Fig. 3: "merging q[a1]
// increases chain-1's energy"). sizeAfter is accepted for interface symmetry
// with Split and validated, though the deposit itself is size-independent.
func (m *Model) Merge(t, q, sizeAfter int) {
	if sizeAfter <= 0 {
		panic("heating: merge into empty accounting")
	}
	m.bump(t, m.ionE[q]+m.params.MergeChainBump)
	m.ionE[q] = 0
}

// Swap applies one intra-chain swap's heating to trap t.
func (m *Model) Swap(t int) {
	m.bump(t, m.params.SwapChainBump)
}

// IonEnergy returns the in-flight energy of ion q (nonzero only between
// SPLIT and MERGE).
func (m *Model) IonEnergy(q int) float64 { return m.ionE[q] }

// Cool resets trap t's chain to n̄ = 0, modelling sympathetic re-cooling.
// The paper's compilers do not re-cool (energy accumulates, which is why
// shuttle reduction matters), but the simulator exposes it for ablations.
func (m *Model) Cool(t int) {
	m.chainN[t] = 0
}

// TotalEnergy returns the sum of all chain energies plus in-flight ion
// energies — a Lyapunov-style diagnostic used by property tests: no
// operation other than Cool may decrease it.
func (m *Model) TotalEnergy() float64 {
	s := 0.0
	for _, n := range m.chainN {
		s += n
	}
	for _, e := range m.ionE {
		s += e
	}
	return s
}

func (m *Model) bump(t int, dn float64) {
	m.chainN[t] += dn
	if m.chainN[t] > m.maxN {
		m.maxN = m.chainN[t]
	}
	if math.IsNaN(m.chainN[t]) || math.IsInf(m.chainN[t], 0) {
		panic(fmt.Sprintf("heating: chain %d energy diverged", t))
	}
}
