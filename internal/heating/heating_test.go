package heating

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(DefaultParams(), 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	p := DefaultParams()
	p.MoveIonBump = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative param accepted")
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(DefaultParams(), 0, 5); err == nil {
		t.Error("zero traps accepted")
	}
	if _, err := NewModel(DefaultParams(), 2, -1); err == nil {
		t.Error("negative ions accepted")
	}
	p := DefaultParams()
	p.BackgroundRate = -1
	if _, err := NewModel(p, 2, 2); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestBackgroundHeating(t *testing.T) {
	m := newModel(t)
	m.Background(0, 1e6) // one second
	want := DefaultParams().BackgroundRate * 1e6
	if got := m.ChainN(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("ChainN = %g, want %g", got, want)
	}
	if m.ChainN(1) != 0 {
		t.Error("background heating leaked across traps")
	}
}

func TestBackgroundNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dt should panic")
		}
	}()
	newModel(t).Background(0, -1)
}

// TestFigure3EnergyFlow pins the Fig. 3 narrative: split reduces the source
// chain's energy, each move heats the flying ion, and merge increases the
// destination chain's energy.
func TestFigure3EnergyFlow(t *testing.T) {
	p := DefaultParams()
	m, err := NewModel(p, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-heat chain 0 (T0 = [0 1 2]).
	m.Background(0, 3e5)
	before0 := m.ChainN(0)
	before1 := m.ChainN(1)

	m.Split(0, 2, 3)
	if got := m.ChainN(0); got >= before0 {
		t.Errorf("split should reduce source chain energy: %g -> %g", before0, got)
	}
	wantIon := before0/3 + p.SplitIonBump
	if got := m.IonEnergy(2); math.Abs(got-wantIon) > 1e-12 {
		t.Errorf("departing ion energy = %g, want share+bump = %g", got, wantIon)
	}

	eBefore := m.IonEnergy(2)
	m.Move(2)
	if m.IonEnergy(2) <= eBefore {
		t.Error("move should heat the flying ion")
	}

	m.Merge(1, 2, 4)
	if got := m.ChainN(1); got <= before1 {
		t.Errorf("merge should increase destination chain energy: %g -> %g", before1, got)
	}
	if m.IonEnergy(2) != 0 {
		t.Error("merged ion should deposit all its energy")
	}
}

func TestMoreHopsMoreMergeHeat(t *testing.T) {
	// A 3-hop transfer must deposit strictly more energy than a 1-hop one —
	// the physical basis of nearest-neighbor-first re-balancing (Fig. 7).
	run := func(hops int) float64 {
		m, err := NewModel(DefaultParams(), 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		m.Split(0, 0, 2)
		for i := 0; i < hops; i++ {
			m.Move(0)
		}
		m.Merge(1, 0, 3)
		return m.ChainN(1)
	}
	if run(3) <= run(1) {
		t.Error("3-hop merge should heat more than 1-hop merge")
	}
}

func TestSwapHeating(t *testing.T) {
	m := newModel(t)
	m.Swap(1)
	if got := m.ChainN(1); got != DefaultParams().SwapChainBump {
		t.Errorf("swap heat = %g", got)
	}
}

func TestCool(t *testing.T) {
	m := newModel(t)
	m.Background(2, 1e6)
	m.Cool(2)
	if m.ChainN(2) != 0 {
		t.Error("cool should zero the chain")
	}
}

func TestMaxChainN(t *testing.T) {
	m := newModel(t)
	m.Background(0, 2e6)
	peak := m.ChainN(0)
	m.Cool(0)
	if m.MaxChainN() != peak {
		t.Errorf("MaxChainN = %g, want %g (peak survives cooling)", m.MaxChainN(), peak)
	}
}

func TestSplitPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("split from empty chain should panic")
		}
	}()
	newModel(t).Split(0, 0, 0)
}

func TestMergePanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merge with zero size should panic")
		}
	}()
	newModel(t).Merge(0, 0, 0)
}

// Property: TotalEnergy is non-decreasing under every operation except Cool.
func TestQuickEnergyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewModel(DefaultParams(), 3, 4)
		if err != nil {
			return false
		}
		// Track which ions are in flight to keep calls physical.
		inFlight := make([]bool, 4)
		chainSize := []int{2, 1, 1}
		trapOf := []int{0, 0, 1, 2}
		prev := m.TotalEnergy()
		for i := 0; i < 60; i++ {
			switch rng.Intn(4) {
			case 0:
				m.Background(rng.Intn(3), rng.Float64()*1e4)
			case 1:
				m.Swap(rng.Intn(3))
			case 2: // split+moves+merge of a random settled ion
				q := rng.Intn(4)
				if inFlight[q] {
					continue
				}
				from := trapOf[q]
				if chainSize[from] == 0 {
					continue
				}
				m.Split(from, q, chainSize[from])
				chainSize[from]--
				hops := 1 + rng.Intn(3)
				for h := 0; h < hops; h++ {
					m.Move(q)
				}
				to := rng.Intn(3)
				chainSize[to]++
				m.Merge(to, q, chainSize[to])
				trapOf[q] = to
			case 3:
				// No-op round; checks stability.
			}
			cur := m.TotalEnergy()
			if cur < prev-1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: split conserves or increases energy (ion carries chain share +
// bump; chain loses exactly the share).
func TestQuickSplitAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewModel(DefaultParams(), 1, 1)
		if err != nil {
			return false
		}
		m.Background(0, rng.Float64()*1e6)
		size := 2 + rng.Intn(10)
		chainBefore := m.ChainN(0)
		m.Split(0, 0, size)
		wantChain := chainBefore * float64(size-1) / float64(size)
		if math.Abs(m.ChainN(0)-wantChain) > 1e-9 {
			return false
		}
		wantIon := chainBefore/float64(size) + DefaultParams().SplitIonBump
		return math.Abs(m.IonEnergy(0)-wantIon) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
