package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustAppend(t *testing.T, j *Journal, rec Record) {
	t.Helper()
	if err := j.Append(rec); err != nil {
		t.Fatalf("Append(%+v): %v", rec, err)
	}
}

// TestRoundTrip: submissions and transitions appended by one journal are
// replayed intact by the next, including payloads and ordering.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, j, Record{Kind: "submit", JobID: "a", Source: "qasm", State: "pending",
		Payload: json.RawMessage(`{"qasm":"..."}`)})
	mustAppend(t, j, Record{Kind: "submit", JobID: "b", Source: "sweep", State: "pending",
		Payload: json.RawMessage(`{"grid":{}}`)})
	mustAppend(t, j, Record{Kind: "state", JobID: "a", State: "running"})
	mustAppend(t, j, Record{Kind: "state", JobID: "a", State: "done", Final: true,
		Payload: json.RawMessage(`{"result":1}`)})
	// No clean Close: simulate a crash by reopening the same directory.

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	jobs := j2.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	a, b := jobs[0], jobs[1]
	if a.ID != "a" || b.ID != "b" {
		t.Fatalf("order = %s, %s; want a, b", a.ID, b.ID)
	}
	if a.State != "done" || !a.Final || string(a.Result) != `{"result":1}` {
		t.Fatalf("job a = %+v", a)
	}
	if string(a.Submit) != `{"qasm":"..."}` {
		t.Fatalf("job a submit payload = %s", a.Submit)
	}
	if b.State != "pending" || b.Final || b.Source != "sweep" {
		t.Fatalf("job b = %+v", b)
	}
	if s := j2.Stats(); s.Replayed != 4 || s.TruncatedBytes != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestTornTail: a partially written final frame (mid-write crash) is
// truncated on replay; every earlier record survives.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, j, Record{Kind: "submit", JobID: "a", Source: "qasm", State: "pending"})
	mustAppend(t, j, Record{Kind: "state", JobID: "a", State: "running"})

	// Tear the tail three ways; each reopen must recover both records.
	wal := filepath.Join(dir, "wal.log")
	good, err := os.ReadFile(wal)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	tears := map[string][]byte{
		"torn header":  append(append([]byte{}, good...), 0x10, 0x00),
		"torn payload": append(append([]byte{}, good...), 0x10, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x'),
		"bad crc":      append(append([]byte{}, good...), 0x01, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x'),
	}
	for name, data := range tears {
		if err := os.WriteFile(wal, data, 0o644); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		j2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("%s: reopen: %v", name, err)
		}
		jobs := j2.Jobs()
		if len(jobs) != 1 || jobs[0].State != "running" {
			t.Fatalf("%s: replayed %+v", name, jobs)
		}
		s := j2.Stats()
		if s.TruncatedBytes == 0 {
			t.Errorf("%s: torn tail not reported", name)
		}
		// The truncated journal accepts new appends.
		mustAppend(t, j2, Record{Kind: "state", JobID: "a", State: "pending"})
		j2.Close()
		// Restore the torn bytes for the next variant (Close compacted).
		if err := os.WriteFile(wal, data, 0o644); err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		os.Remove(filepath.Join(dir, "snapshot.json"))
	}
}

// TestCompaction: compaction folds state into the snapshot, resets the
// WAL, and replay after both snapshot and further appends is exact.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, j, Record{Kind: "submit", JobID: "a", Source: "qasm", State: "pending"})
	mustAppend(t, j, Record{Kind: "state", JobID: "a", State: "done", Final: true})
	if err := j.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if s := j.Stats(); s.WALBytes != 0 || s.Compactions != 1 {
		t.Fatalf("post-compact stats = %+v", s)
	}
	// Appends after compaction land in the fresh WAL with higher seqs.
	mustAppend(t, j, Record{Kind: "submit", JobID: "b", Source: "random", State: "pending"})
	// Crash (no Close) and replay: snapshot + tail must both apply.
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	jobs := j2.Jobs()
	if len(jobs) != 2 || jobs[0].ID != "a" || jobs[1].ID != "b" {
		t.Fatalf("replayed %+v", jobs)
	}
	if jobs[0].State != "done" || jobs[1].State != "pending" {
		t.Fatalf("states = %s, %s", jobs[0].State, jobs[1].State)
	}
	if s := j2.Stats(); s.Replayed != 1 {
		t.Fatalf("replayed %d tail records, want 1 (snapshot covers the rest)", s.Replayed)
	}
}

// TestRetention: compaction evicts the oldest terminal jobs past the
// bound and never evicts live ones.
func TestRetention(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{Retention: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("done-%d", i)
		mustAppend(t, j, Record{Kind: "submit", JobID: id, Source: "qasm", State: "pending"})
		mustAppend(t, j, Record{Kind: "state", JobID: id, State: "done", Final: true})
	}
	mustAppend(t, j, Record{Kind: "submit", JobID: "live", Source: "qasm", State: "pending"})
	if err := j.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	jobs := j.Jobs()
	var ids []string
	for _, js := range jobs {
		ids = append(ids, js.ID)
	}
	want := []string{"done-3", "done-4", "live"}
	if len(ids) != len(want) {
		t.Fatalf("kept %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("kept %v, want %v", ids, want)
		}
	}
}

// TestAutoCompaction: the journal compacts itself every CompactEvery
// appends without an explicit Compact call.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{CompactEvery: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	for i := 0; i < 4; i++ {
		mustAppend(t, j, Record{Kind: "submit", JobID: fmt.Sprintf("j%d", i), State: "pending"})
	}
	if s := j.Stats(); s.Compactions != 1 || s.WALBytes != 0 {
		t.Fatalf("stats after 4 appends = %+v, want 1 auto-compaction", s)
	}
}

// TestClosedJournal: operations after Close fail with ErrClosed, and
// Close checkpoints state so a reopen needs no WAL replay.
func TestClosedJournal(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, j, Record{Kind: "submit", JobID: "a", State: "pending"})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := j.Append(Record{Kind: "state", JobID: "a", State: "running"}); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if s := j2.Stats(); s.Replayed != 0 {
		t.Fatalf("clean close should leave nothing to replay, got %d", s.Replayed)
	}
	if jobs := j2.Jobs(); len(jobs) != 1 || jobs[0].ID != "a" {
		t.Fatalf("jobs = %+v", jobs)
	}
}
