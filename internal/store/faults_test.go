package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"muzzle/internal/faults"
)

// walFrameOffsets parses wal.log and returns the byte offset of each
// frame, trusting only the length prefixes (the test corrupts payloads,
// not lengths).
func walFrameOffsets(t *testing.T, wal string) []int64 {
	t.Helper()
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	for off := int64(0); off < int64(len(data)); {
		offs = append(offs, off)
		n := binary.LittleEndian.Uint32(data[off : off+4])
		off += int64(8 + n)
	}
	return offs
}

// TestMidFileCorruptionStopsAtLastValidRecord pins replay behavior under
// corruption that is NOT a torn tail: a flipped byte in a middle frame.
// Recovery must stop at the last record before the corruption — the
// frames after it are unreachable because framing gives no resync point —
// and account for every discarded byte.
func TestMidFileCorruptionStopsAtLastValidRecord(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const total = 5
	for i := 0; i < total; i++ {
		mustAppend(t, j, Record{Kind: "submit", JobID: fmt.Sprintf("job-%d", i),
			Source: "qasm", State: "pending"})
	}
	// No Close: a compaction would fold the WAL into the snapshot.

	wal := filepath.Join(dir, "wal.log")
	offs := walFrameOffsets(t, wal)
	if len(offs) != total {
		t.Fatalf("parsed %d frames, want %d", len(offs), total)
	}
	const corruptAt = 2 // a middle frame: records 0 and 1 stay valid
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(len(data))
	data[offs[corruptAt]+8] ^= 0xFF // flip a payload byte under the CRC
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen over corrupt WAL: %v", err)
	}
	defer j2.Close()
	jobs := j2.Jobs()
	if len(jobs) != corruptAt {
		t.Fatalf("replayed %d jobs, want %d (stop at last valid record)", len(jobs), corruptAt)
	}
	for i, js := range jobs {
		if want := fmt.Sprintf("job-%d", i); js.ID != want {
			t.Fatalf("job %d = %s, want %s", i, js.ID, want)
		}
	}
	s := j2.Stats()
	if want := size - offs[corruptAt]; s.TruncatedBytes != want {
		t.Fatalf("TruncatedBytes = %d, want %d (file %d - offset %d)",
			s.TruncatedBytes, want, size, offs[corruptAt])
	}
	if s.Replayed != corruptAt {
		t.Fatalf("Replayed = %d, want %d", s.Replayed, corruptAt)
	}
	// The truncated WAL is live: new appends land at the cut point and
	// survive another replay.
	mustAppend(t, j2, Record{Kind: "state", JobID: "job-0", State: "running"})
	if fi, err := os.Stat(wal); err != nil || fi.Size() <= offs[corruptAt] {
		t.Fatalf("append after truncation: size %v, err %v", fi.Size(), err)
	}
}

// TestTornAppendIsRepaired pins the WAL self-repair: an injected torn
// write fails the append AND leaves a partial frame on disk, but the
// journal truncates back to the last good frame so later appends remain
// replayable — without the repair they would all be lost behind the torn
// frame.
func TestTornAppendIsRepaired(t *testing.T) {
	inj := faults.New(13, faults.Rule{
		Scope: faults.ScopeStoreWAL, Kind: faults.KindTorn, After: 2, Count: 1,
	})
	defer faults.Install(inj)()

	dir := t.TempDir()
	j, err := Open(dir, Options{FaultScope: faults.ScopeStoreWAL})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		mustAppend(t, j, Record{Kind: "submit", JobID: fmt.Sprintf("pre-%d", i), State: "pending"})
	}
	err = j.Append(Record{Kind: "submit", JobID: "torn", State: "pending"})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("torn append err = %v, want injected", err)
	}
	for i := 0; i < 2; i++ {
		mustAppend(t, j, Record{Kind: "submit", JobID: fmt.Sprintf("post-%d", i), State: "pending"})
	}
	// Crash-reopen: all four acknowledged records replay; the torn one is
	// gone without trace.
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	jobs := j2.Jobs()
	if len(jobs) != 4 {
		t.Fatalf("replayed %d jobs, want 4", len(jobs))
	}
	want := []string{"pre-0", "pre-1", "post-0", "post-1"}
	for i, js := range jobs {
		if js.ID != want[i] {
			t.Fatalf("job %d = %s, want %s", i, js.ID, want[i])
		}
	}
	if s := j2.Stats(); s.TruncatedBytes != 0 {
		t.Fatalf("repair left %d torn bytes for reopen to find", s.TruncatedBytes)
	}
}

// TestInjectedENOSPCAndFsyncFailures drives the remaining WAL fault
// kinds: a full disk and a failed fsync each fail that one append and
// leave the journal consistent.
func TestInjectedENOSPCAndFsyncFailures(t *testing.T) {
	inj := faults.New(17,
		faults.Rule{Scope: faults.ScopeStoreWALSpace, Op: faults.OpWrite, Kind: faults.KindENOSPC, After: 1, Count: 1},
		faults.Rule{Scope: faults.ScopeStoreWALSpace, Op: faults.OpSync, After: 1, Count: 1},
	)
	defer faults.Install(inj)()

	dir := t.TempDir()
	j, err := Open(dir, Options{FaultScope: faults.ScopeStoreWALSpace})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Kind: "submit", JobID: "a", State: "pending"})
	// Append 2: ENOSPC on write.
	err = j.Append(Record{Kind: "submit", JobID: "nospace", State: "pending"})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	// Append 3 announces write (clean) then sync (faulted).
	err = j.Append(Record{Kind: "submit", JobID: "nosync", State: "pending"})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected fsync failure", err)
	}
	mustAppend(t, j, Record{Kind: "submit", JobID: "b", State: "pending"})

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	jobs := j2.Jobs()
	if len(jobs) != 2 || jobs[0].ID != "a" || jobs[1].ID != "b" {
		t.Fatalf("replayed %+v, want exactly a and b", jobs)
	}
}
