// Package store is the durable job journal behind the muzzled service: an
// append-only write-ahead log that records every job and sweep submission
// (full request payload), every state transition, and every terminal
// result, so a daemon that dies — cleanly or not — can rebuild its job
// table on restart instead of dropping queued work.
//
// Layout under the journal directory:
//
//	snapshot.json   compacted job table (applied through snapshot.Seq)
//	wal.log         CRC-framed appends newer than the snapshot
//
// Each WAL frame is a 4-byte little-endian payload length, a 4-byte IEEE
// CRC32 of the payload, then the JSON-encoded Record. Appends are fsync'd
// before Append returns, so an acknowledged record survives power loss.
// Replay stops at the first frame that fails its length or checksum — a
// torn tail from a mid-write crash — and truncates the file there, keeping
// every record that was acknowledged. Compaction folds the replayed state
// into snapshot.json (atomic tmp+rename) and resets the WAL, bounding both
// replay time and disk use; terminal jobs beyond the retention bound are
// dropped at that point.
//
// The journal stores service state but does not interpret it: states are
// opaque strings, payloads opaque JSON, and only the Final marker (set by
// the writer on terminal transitions) has meaning here, as the retention
// predicate. internal/service/journal.go owns the vocabulary.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"muzzle/internal/faults"
)

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("store: journal closed")

// maxRecord bounds a single frame's payload. A length prefix beyond it is
// treated as corruption (torn tail), not an allocation request — without
// the bound, one flipped bit in a length field could demand gigabytes.
const maxRecord = 16 << 20

// Record is one journal entry.
type Record struct {
	// Seq is the journal-assigned sequence number, strictly increasing
	// across the journal's life (snapshot included). Callers leave it zero.
	Seq uint64 `json:"seq"`
	// Kind is "submit" for a submission record, "state" for a transition.
	Kind string `json:"kind"`
	// JobID identifies the job the record belongs to.
	JobID string `json:"job_id"`
	// Time is the wall-clock append time (stamped by the journal if zero).
	Time time.Time `json:"time"`
	// Source classifies a submission ("qasm", "random", "sweep").
	Source string `json:"source,omitempty"`
	// State is the job state a "state" record transitions to.
	State string `json:"state,omitempty"`
	// Error carries a failure message on failed transitions.
	Error string `json:"error,omitempty"`
	// Final marks a "state" record as terminal: the job will never
	// transition again, making it eligible for retention eviction.
	Final bool `json:"final,omitempty"`
	// Payload is opaque writer data: the full request on "submit" records,
	// the terminal result on final "state" records.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// JobState is one job's replayed state: the fold of its submission record
// and every subsequent transition.
type JobState struct {
	// ID is the job identifier.
	ID string `json:"id"`
	// Source is the submission's Source.
	Source string `json:"source,omitempty"`
	// State is the last recorded state.
	State string `json:"state,omitempty"`
	// Error is the last recorded failure message.
	Error string `json:"error,omitempty"`
	// Final reports whether a terminal transition was recorded.
	Final bool `json:"final,omitempty"`
	// Submit is the submission payload.
	Submit json.RawMessage `json:"submit,omitempty"`
	// Result is the terminal payload, when one was recorded.
	Result json.RawMessage `json:"result,omitempty"`
	// Seq is the sequence number of the last record applied.
	Seq uint64 `json:"seq"`
	// Time is the time of the last record applied.
	Time time.Time `json:"time"`
}

// Options tune journal maintenance. The zero value is ready to use.
type Options struct {
	// CompactEvery folds the WAL into the snapshot after this many appends
	// (0 = 4096). Compaction also runs on Close.
	CompactEvery int
	// Retention bounds how many terminal jobs survive a compaction, oldest
	// evicted first (0 = 1024). Non-terminal jobs are never evicted.
	Retention int
	// FaultScope, when non-empty, subjects the journal's writes, fsyncs,
	// and renames to the process-global fault injector (internal/faults)
	// under this scope. Tests only; empty in production.
	FaultScope string
}

func (o Options) compactEvery() int {
	if o.CompactEvery <= 0 {
		return 4096
	}
	return o.CompactEvery
}

func (o Options) retention() int {
	if o.Retention <= 0 {
		return 1024
	}
	return o.Retention
}

// Stats snapshot the journal's durability counters.
type Stats struct {
	// Appends counts records appended this process.
	Appends uint64 `json:"appends"`
	// Compactions counts snapshot folds this process.
	Compactions uint64 `json:"compactions"`
	// Replayed counts WAL records applied at Open.
	Replayed int `json:"replayed"`
	// TruncatedBytes is the torn tail discarded at Open, if any.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// Jobs is the current replayed job count.
	Jobs int `json:"jobs"`
	// WALBytes is the current WAL file size.
	WALBytes int64 `json:"wal_bytes"`
}

// snapshot is the compacted on-disk job table.
type snapshot struct {
	// Seq is the sequence watermark: every record with Seq <= this is
	// folded in, so replay skips them.
	Seq  uint64      `json:"seq"`
	Jobs []*JobState `json:"jobs"`
}

// Journal is an append-only job log. All methods are safe for concurrent
// use... by one process: the journal takes no file lock, and two processes
// appending to one directory will interleave frames. The muzzled daemon is
// the single writer by construction.
type Journal struct {
	dir  string
	opts Options

	mu           sync.Mutex
	f            *os.File             // guarded by mu
	seq          uint64               // guarded by mu
	jobs         map[string]*JobState // guarded by mu
	order        []string             // guarded by mu; submission order, for deterministic recovery + retention
	sinceCompact int                  // guarded by mu
	closed       bool                 // guarded by mu
	stats        Stats                // guarded by mu
}

// Open creates or replays the journal under dir, creating the directory if
// needed. A torn WAL tail (mid-write crash) is truncated, never fatal;
// every acknowledged record is recovered.
func Open(dir string, opts Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create journal dir: %w", err)
	}
	j := &Journal{dir: dir, opts: opts, jobs: make(map[string]*JobState)}
	if err := j.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := j.replayWAL(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(j.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	j.f = f
	if fi, err := f.Stat(); err == nil {
		j.stats.WALBytes = fi.Size()
	}
	return j, nil
}

func (j *Journal) walPath() string      { return filepath.Join(j.dir, "wal.log") }
func (j *Journal) snapshotPath() string { return filepath.Join(j.dir, "snapshot.json") }

// loadSnapshot folds snapshot.json into memory, if one exists. A snapshot
// that fails to parse is fatal: unlike a torn WAL tail (expected under
// crash), a corrupt snapshot means the atomic rename contract was violated
// and silently dropping it would resurrect canceled work.
//
//muzzle:nolock runs during Open, before the journal is shared
func (j *Journal) loadSnapshot() error {
	data, err := os.ReadFile(j.snapshotPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read snapshot: %w", err)
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("store: parse snapshot: %w", err)
	}
	j.seq = s.Seq
	for _, js := range s.Jobs {
		j.jobs[js.ID] = js
		j.order = append(j.order, js.ID)
	}
	return nil
}

// replayWAL applies every intact frame in wal.log, truncating at the first
// torn or corrupt one.
//
//muzzle:nolock runs during Open, before the journal is shared
func (j *Journal) replayWAL() error {
	f, err := os.Open(j.walPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: open wal for replay: %w", err)
	}
	defer f.Close()

	var offset int64
	var header [8]byte
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			break // clean EOF or torn header: stop at last good offset
		}
		n := binary.LittleEndian.Uint32(header[:4])
		sum := binary.LittleEndian.Uint32(header[4:])
		if n > maxRecord {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		offset += int64(8 + n)
		if rec.Seq <= j.seq {
			continue // already folded into the snapshot
		}
		j.apply(&rec)
		j.seq = rec.Seq
		j.stats.Replayed++
	}
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat wal: %w", err)
	}
	if torn := fi.Size() - offset; torn > 0 {
		j.stats.TruncatedBytes = torn
		if err := os.Truncate(j.walPath(), offset); err != nil {
			return fmt.Errorf("store: truncate torn wal tail: %w", err)
		}
	}
	return nil
}

// apply folds one record into the in-memory job table.
//
//muzzle:locked callers hold j.mu (Append) or own the journal exclusively (replayWAL)
func (j *Journal) apply(rec *Record) {
	switch rec.Kind {
	case "submit":
		if _, ok := j.jobs[rec.JobID]; ok {
			return // duplicate submit: first one wins
		}
		j.jobs[rec.JobID] = &JobState{
			ID:     rec.JobID,
			Source: rec.Source,
			State:  rec.State,
			Submit: rec.Payload,
			Seq:    rec.Seq,
			Time:   rec.Time,
		}
		j.order = append(j.order, rec.JobID)
	case "state":
		js, ok := j.jobs[rec.JobID]
		if !ok {
			return // job evicted by retention; late transition is moot
		}
		js.State = rec.State
		js.Error = rec.Error
		js.Seq = rec.Seq
		js.Time = rec.Time
		if rec.Final {
			js.Final = true
			if len(rec.Payload) > 0 {
				js.Result = rec.Payload
			}
		}
	}
}

// Append durably writes one record: framed, appended, and fsync'd before
// returning, then folded into the replayed state. Seq (and Time, if zero)
// are assigned by the journal. Every CompactEvery appends the journal
// compacts itself.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	j.seq++
	rec.Seq = j.seq
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	payload, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if err := j.writeFrameLocked(frame); err != nil {
		return err
	}
	j.stats.Appends++
	j.stats.WALBytes += int64(len(frame))
	j.apply(&rec)
	j.sinceCompact++
	if j.sinceCompact >= j.opts.compactEvery() {
		if err := j.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// writeFrameLocked appends one framed record and fsyncs it. On any
// failure — a short or failed write, a failed fsync — it truncates the
// WAL back to the last acknowledged frame boundary before reporting the
// error: without the repair, a torn frame left mid-file would end replay
// there and silently discard every record acknowledged after it.
func (j *Journal) writeFrameLocked(frame []byte) error {
	data, err := faults.CheckWrite(j.opts.FaultScope, frame)
	if err == nil {
		if _, werr := j.f.Write(data); werr != nil {
			err = werr
		} else if serr := faults.Check(j.opts.FaultScope, faults.OpSync); serr != nil {
			err = serr
		} else if serr := j.f.Sync(); serr != nil {
			err = serr
		}
	} else if len(data) > 0 {
		// Injected torn write: leave the partial frame on disk the way a
		// crash would, then let the repair path clean it up.
		j.f.Write(data) //nolint:errcheck
	}
	if err == nil {
		return nil
	}
	if terr := j.f.Truncate(j.stats.WALBytes); terr != nil {
		// The WAL now ends in a torn frame the next Open will truncate;
		// records appended by this process after this point would be lost
		// to replay, so poison the journal rather than append past it.
		j.closed = true
		j.f.Close() //nolint:errcheck
		return fmt.Errorf("store: append failed (%v) and WAL repair failed: %w", err, terr)
	}
	return fmt.Errorf("store: append: %w", err)
}

// Jobs returns the replayed job table in submission order. The returned
// states are snapshots; mutating them does not touch the journal.
func (j *Journal) Jobs() []*JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*JobState, 0, len(j.order))
	for _, id := range j.order {
		if js, ok := j.jobs[id]; ok {
			c := *js
			out = append(out, &c)
		}
	}
	return out
}

// Compact folds the current state into snapshot.json and resets the WAL.
// Terminal jobs beyond the retention bound are dropped, oldest first.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.compactLocked()
}

func (j *Journal) compactLocked() error {
	// Retention: evict the oldest terminal jobs past the bound. Live jobs
	// are never dropped — durability for exactly the work that needs it.
	if keep := j.opts.retention(); keep >= 0 {
		var final int
		for _, js := range j.jobs {
			if js.Final {
				final++
			}
		}
		if final > keep {
			drop := final - keep
			kept := j.order[:0]
			for _, id := range j.order {
				js := j.jobs[id]
				if js != nil && js.Final && drop > 0 {
					delete(j.jobs, id)
					drop--
					continue
				}
				kept = append(kept, id)
			}
			j.order = kept
		}
	}

	s := snapshot{Seq: j.seq, Jobs: make([]*JobState, 0, len(j.order))}
	for _, id := range j.order {
		if js, ok := j.jobs[id]; ok {
			s.Jobs = append(s.Jobs, js)
		}
	}
	data, err := json.MarshalIndent(&s, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	tmp := j.snapshotPath() + ".tmp"
	if err := faults.Check(j.opts.FaultScope, faults.OpWrite); err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("store: fsync snapshot: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := faults.Check(j.opts.FaultScope, faults.OpRename); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	if err := os.Rename(tmp, j.snapshotPath()); err != nil {
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	// The WAL's records are all folded into the published snapshot (the
	// Seq watermark guarantees replay would skip them anyway) — reset it.
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("store: reset wal: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: reset wal: %w", err)
	}
	j.stats.WALBytes = 0
	j.sinceCompact = 0
	j.stats.Compactions++
	return nil
}

// Stats returns a snapshot of the durability counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.stats
	s.Jobs = len(j.jobs)
	return s
}

// Close compacts (checkpointing the final state into the snapshot) and
// releases the WAL. Further operations return ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	err := j.compactLocked()
	j.closed = true
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}
