package machine

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"muzzle/internal/topo"
)

// twoTrapCfg mirrors paper Fig. 1: 2 traps, total capacity 4,
// communication capacity 1.
func twoTrapCfg() Config {
	return Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
}

func mustState(t *testing.T, cfg Config, placement [][]int) *State {
	t.Helper()
	s, err := NewState(cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestExampleTwoTrap pins Fig. 1's excess-capacity arithmetic: capacity 4,
// 3 ions in T0 and 3 in T1 -> EC 1 each; after one leaves T1, EC(T1)=2.
func TestExampleTwoTrap(t *testing.T) {
	s := mustState(t, twoTrapCfg(), [][]int{{0, 1, 2}, {3, 4, 5}})
	if ec := s.ExcessCapacity(0); ec != 1 {
		t.Errorf("EC(T0) = %d, want 1", ec)
	}
	if ec := s.ExcessCapacity(1); ec != 1 {
		t.Errorf("EC(T1) = %d, want 1", ec)
	}
	if err := s.Hop(3, 0); err != nil {
		t.Fatal(err)
	}
	if ec := s.ExcessCapacity(1); ec != 2 {
		t.Errorf("EC(T1) after departure = %d, want 2", ec)
	}
	if ec := s.ExcessCapacity(0); ec != 0 {
		t.Errorf("EC(T0) after arrival = %d, want 0", ec)
	}
}

func TestPaperL6Config(t *testing.T) {
	cfg := PaperL6()
	if cfg.Topology.NumTraps() != 6 || cfg.Capacity != 17 || cfg.CommCapacity != 2 {
		t.Fatalf("PaperL6 = %+v", cfg)
	}
	if cfg.MaxInitialLoad() != 15 {
		t.Errorf("MaxInitialLoad = %d, want 15", cfg.MaxInitialLoad())
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("nil topology accepted")
	}
	if err := (Config{Topology: topo.Linear(2), Capacity: 0}).Validate(); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := (Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 4}).Validate(); err == nil {
		t.Error("comm capacity == capacity accepted")
	}
	if err := (Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: -1}).Validate(); err == nil {
		t.Error("negative comm capacity accepted")
	}
}

func TestNewStateValidation(t *testing.T) {
	cfg := twoTrapCfg()
	if _, err := NewState(cfg, [][]int{{0, 1}}); err == nil {
		t.Error("wrong trap count accepted")
	}
	if _, err := NewState(cfg, [][]int{{0, 1, 2, 3}, {4}}); err == nil {
		t.Error("initial load above capacity-comm accepted")
	}
	if _, err := NewState(cfg, [][]int{{0, 0}, {1}}); err == nil {
		t.Error("duplicate ion accepted")
	}
	if _, err := NewState(cfg, [][]int{{0, 7}, {1}}); err == nil {
		t.Error("non-dense ion id accepted")
	}
}

// TestFigure3ShuttleSteps pins the shuttle sequence of paper Fig. 3:
// executing MS q[2],q[3] with T0=[0 1 2], T1=[3 4 5] requires
// SPLIT q2, MOVE q2, MERGE q2 and then the gate — ion 2 is already at the
// chain edge so no SWAP is needed.
func TestFigure3ShuttleSteps(t *testing.T) {
	s := mustState(t, twoTrapCfg(), [][]int{{0, 1, 2}, {3, 4, 5}})
	if err := s.Hop(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyGate2Q("ms", 2, 3, 1); err != nil {
		t.Fatal(err)
	}
	var kinds []OpKind
	for _, op := range s.Ops() {
		kinds = append(kinds, op.Kind)
	}
	want := []OpKind{OpSplit, OpMove, OpMerge, OpGate2Q}
	if len(kinds) != len(want) {
		t.Fatalf("ops = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("ops = %v, want %v", kinds, want)
		}
	}
	// Ion 2 entered T1 from the low-numbered side: chain must be [2 3 4 5].
	chain := s.Chain(1)
	if len(chain) != 4 || chain[0] != 2 {
		t.Errorf("T1 chain = %v, want [2 3 4 5]", chain)
	}
	if s.Shuttles() != 1 {
		t.Errorf("shuttles = %d, want 1", s.Shuttles())
	}
}

// TestFigure3SwapFirst pins the general case of Fig. 3: shuttling an ion
// from the middle of a chain requires SWAPs to the edge first.
func TestFigure3SwapFirst(t *testing.T) {
	s := mustState(t, twoTrapCfg(), [][]int{{0, 1, 2}, {3, 4, 5}})
	// Ion 0 sits at the far edge; moving it right needs 2 swaps.
	if err := s.Hop(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.OpCount(OpSwap); got != 2 {
		t.Errorf("swaps = %d, want 2", got)
	}
	if got := s.Chain(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("T0 chain = %v, want [1 2]", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestHopRejectsFullTrap(t *testing.T) {
	cfg := twoTrapCfg()
	s := mustState(t, cfg, [][]int{{0, 1, 2}, {3, 4, 5}})
	if err := s.Hop(2, 1); err != nil {
		t.Fatal(err)
	}
	// T1 now has 4 ions = capacity; another hop must fail.
	if err := s.Hop(1, 1); err == nil {
		t.Fatal("hop into full trap accepted")
	}
}

func TestHopRejectsNonAdjacent(t *testing.T) {
	cfg := Config{Topology: topo.Linear(3), Capacity: 4, CommCapacity: 1}
	s := mustState(t, cfg, [][]int{{0}, {1}, {2}})
	if err := s.Hop(0, 2); err == nil {
		t.Fatal("non-adjacent hop accepted")
	}
	if err := s.Hop(0, 0); err == nil {
		t.Fatal("self hop accepted")
	}
}

func TestRouteMultiHop(t *testing.T) {
	cfg := Config{Topology: topo.Linear(6), Capacity: 4, CommCapacity: 1}
	s := mustState(t, cfg, [][]int{{0}, {1}, {2}, {3}, {4}, {5}})
	if err := s.Route(0, 4); err != nil {
		t.Fatal(err)
	}
	if s.IonTrap(0) != 4 {
		t.Errorf("ion 0 at trap %d, want 4", s.IonTrap(0))
	}
	if s.Shuttles() != 4 {
		t.Errorf("shuttles = %d, want 4 (Fig. 7 accounting)", s.Shuttles())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestApplyGate2QRequiresCoLocation(t *testing.T) {
	s := mustState(t, twoTrapCfg(), [][]int{{0, 1}, {2, 3}})
	if err := s.ApplyGate2Q("ms", 0, 2, 0); err == nil {
		t.Fatal("cross-trap 2Q gate accepted")
	}
	if err := s.ApplyGate2Q("ms", 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if !s.CoLocated(0, 1) || s.CoLocated(0, 2) {
		t.Error("CoLocated wrong")
	}
}

func TestApplyGate1QAndMeasure(t *testing.T) {
	s := mustState(t, twoTrapCfg(), [][]int{{0}, {1}})
	s.ApplyGate1Q("r", 0, 0)
	s.ApplyGate1Q("measure", 1, 1)
	ops := s.Ops()
	if ops[0].Kind != OpGate1Q || ops[1].Kind != OpMeasure {
		t.Fatalf("ops = %v", ops)
	}
}

func TestOpStrings(t *testing.T) {
	s := mustState(t, twoTrapCfg(), [][]int{{0, 1, 2}, {3}})
	if err := s.Hop(0, 1); err != nil {
		t.Fatal(err)
	}
	s.ApplyGate2Q("ms", 0, 3, 7)
	s.ApplyGate1Q("r", 3, 8)
	joined := ""
	for _, op := range s.Ops() {
		joined += op.String() + "\n"
	}
	for _, want := range []string{"swap ion0", "split", "move ion0 T0->T1", "merge", "ms ion0,ion3 T1 (g7)", "r ion3 T1 (g8)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q:\n%s", want, joined)
		}
	}
	for _, k := range []OpKind{OpGate1Q, OpGate2Q, OpSwap, OpSplit, OpMove, OpMerge, OpMeasure, OpKind(99)} {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}

func TestStateString(t *testing.T) {
	s := mustState(t, twoTrapCfg(), [][]int{{0, 1, 2}, {3, 4, 5}})
	got := s.String()
	if !strings.Contains(got, "T0: [0 1 2] (EC=1)") || !strings.Contains(got, "T1: [3 4 5] (EC=1)") {
		t.Errorf("String = %q", got)
	}
}

func TestSnapshotAndClone(t *testing.T) {
	s := mustState(t, twoTrapCfg(), [][]int{{0, 1}, {2, 3}})
	if err := s.Hop(0, 1); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if len(snap[1]) != 3 {
		t.Errorf("snapshot T1 = %v", snap[1])
	}
	clone := s.Clone()
	if err := clone.Hop(1, 1); err != nil {
		t.Fatal(err)
	}
	if s.Occupancy(1) != 3 {
		t.Error("clone mutation leaked into original")
	}
	if clone.Shuttles() != 2 || s.Shuttles() != 1 {
		t.Errorf("shuttle counts: clone=%d orig=%d", clone.Shuttles(), s.Shuttles())
	}
	// Snapshot is a deep copy too.
	snap[0][0] = 99
	if s.Chain(0)[0] == 99 {
		t.Error("snapshot shares memory with state")
	}
}

func TestMergeSideConvention(t *testing.T) {
	cfg := Config{Topology: topo.Linear(3), Capacity: 5, CommCapacity: 1}
	s := mustState(t, cfg, [][]int{{0, 1}, {2, 3}, {4, 5}})
	// Hop ion 4 left from T2 into T1: it came from the high side, so it
	// lands at the high end of T1's chain.
	if err := s.Hop(4, 1); err != nil {
		t.Fatal(err)
	}
	chain := s.Chain(1)
	if chain[len(chain)-1] != 4 {
		t.Errorf("T1 chain = %v, want ion 4 at high end", chain)
	}
	// Hop ion 1 right from T0 into T1: lands at the low end.
	if err := s.Hop(1, 1); err != nil {
		t.Fatal(err)
	}
	chain = s.Chain(1)
	if chain[0] != 1 {
		t.Errorf("T1 chain = %v, want ion 1 at low end", chain)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// Property: after any random sequence of legal hops, invariants hold, ion
// count is conserved, and shuttle count equals the number of OpMove entries.
func TestQuickHopInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTraps := 2 + rng.Intn(4)
		cfg := Config{Topology: topo.Linear(nTraps), Capacity: 4, CommCapacity: 1}
		placement := make([][]int, nTraps)
		ion := 0
		for t := 0; t < nTraps; t++ {
			k := 1 + rng.Intn(3)
			for j := 0; j < k; j++ {
				placement[t] = append(placement[t], ion)
				ion++
			}
		}
		s, err := NewState(cfg, placement)
		if err != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			q := rng.Intn(s.NumIons())
			from := s.IonTrap(q)
			nbs := cfg.Topology.Neighbors(from)
			to := nbs[rng.Intn(len(nbs))]
			if s.IsFull(to) {
				continue
			}
			if err := s.Hop(q, to); err != nil {
				return false
			}
		}
		if s.CheckInvariants() != nil {
			return false
		}
		return s.Shuttles() == s.OpCount(OpMove) && s.NumIons() == ion
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: chain order bookkeeping — every ion's posOf matches its index,
// exercised through random hops on a ring (both merge sides).
func TestQuickChainPositions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Topology: topo.Ring(4), Capacity: 5, CommCapacity: 1}
		placement := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
		s, err := NewState(cfg, placement)
		if err != nil {
			return false
		}
		for i := 0; i < 40; i++ {
			q := rng.Intn(8)
			from := s.IonTrap(q)
			nbs := cfg.Topology.Neighbors(from)
			to := nbs[rng.Intn(len(nbs))]
			if s.IsFull(to) {
				continue
			}
			if err := s.Hop(q, to); err != nil {
				return false
			}
			for tr := 0; tr < 4; tr++ {
				for p, ion := range s.Chain(tr) {
					if s.IonPos(ion) != p || s.IonTrap(ion) != tr {
						return false
					}
				}
			}
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
