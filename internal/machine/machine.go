// Package machine models the state of a multi-trap QCCD trapped-ion machine:
// traps holding ordered ion chains, capacity accounting, and the physical
// primitives of paper Fig. 3 — intra-chain SWAP, SPLIT, MOVE, MERGE — plus
// gate execution. Every mutation is recorded in an operation trace that the
// simulator (internal/sim) replays for timing and fidelity, and that the
// evaluation harness inspects for shuttle counts.
//
// Terminology (paper Section II-B):
//   - total trap capacity: maximum ions a trap can hold (17 in the paper's
//     hardware model);
//   - communication capacity: slots deliberately left free at initial
//     mapping time (2 in the paper) to receive shuttled ions;
//   - excess capacity (EC): capacity minus current occupancy;
//   - a *shuttle* is one MOVE of an ion between adjacent traps (Fig. 7
//     counts a T4->T0 transfer on L6 as 4 shuttles).
package machine

import (
	"fmt"
	"strings"

	"muzzle/internal/topo"
)

// Config describes the fixed hardware parameters of a machine.
type Config struct {
	// Topology is the trap interconnection graph.
	Topology *topo.Topology
	// Capacity is the total trap capacity (ions per trap).
	Capacity int
	// CommCapacity is the per-trap communication capacity reserved at
	// initial mapping time. It constrains initial placement only; during
	// execution a trap may fill to Capacity.
	CommCapacity int
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.Topology == nil {
		return fmt.Errorf("machine: nil topology")
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("machine: non-positive capacity %d", c.Capacity)
	}
	if c.CommCapacity < 0 || c.CommCapacity >= c.Capacity {
		return fmt.Errorf("machine: communication capacity %d outside [0,%d)", c.CommCapacity, c.Capacity)
	}
	return nil
}

// MaxInitialLoad is the number of ions a trap may hold at initial mapping.
func (c Config) MaxInitialLoad() int { return c.Capacity - c.CommCapacity }

// PaperL6 returns the hardware model of the paper's evaluation
// (Section IV-A): 6 traps in a line, capacity 17, communication capacity 2.
func PaperL6() Config {
	return Config{Topology: topo.Linear(6), Capacity: 17, CommCapacity: 2}
}

// OpKind enumerates trace operations.
type OpKind int

const (
	// OpGate1Q is a single-qubit gate executed inside a trap.
	OpGate1Q OpKind = iota
	// OpGate2Q is a two-qubit gate executed inside a trap.
	OpGate2Q
	// OpSwap is one adjacent transposition inside a chain, used to bring an
	// ion to a chain edge before SPLIT (Fig. 3 step i).
	OpSwap
	// OpSplit detaches an ion from its chain prior to a MOVE.
	OpSplit
	// OpMove shuttles a split ion across one edge of the topology. Each
	// OpMove is one *shuttle* in the paper's accounting.
	OpMove
	// OpMerge attaches a moved ion to the destination trap's chain.
	OpMerge
	// OpMeasure is a measurement inside a trap.
	OpMeasure

	// numOpKinds bounds the OpKind enum for counter arrays.
	numOpKinds
)

// String returns the mnemonic used in traces.
func (k OpKind) String() string {
	switch k {
	case OpGate1Q:
		return "gate1q"
	case OpGate2Q:
		return "gate2q"
	case OpSwap:
		return "swap"
	case OpSplit:
		return "split"
	case OpMove:
		return "move"
	case OpMerge:
		return "merge"
	case OpMeasure:
		return "measure"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one entry of the execution trace.
type Op struct {
	Kind OpKind
	// Ion is the primary ion operand (the moved/split/merged ion, the 1Q
	// gate target, or the first 2Q operand).
	Ion int
	// Ion2 is the second 2Q operand or the swap partner; -1 otherwise.
	Ion2 int
	// Trap is the trap where the op happens (for OpMove, the source trap).
	Trap int
	// Trap2 is the destination trap for OpMove; -1 otherwise.
	Trap2 int
	// Gate is the index of the source-circuit gate for gate ops; -1 for
	// shuttle ops.
	Gate int
	// Name is the gate mnemonic for gate ops.
	Name string
}

// String renders the op compactly.
func (o Op) String() string {
	switch o.Kind {
	case OpMove:
		return fmt.Sprintf("move ion%d T%d->T%d", o.Ion, o.Trap, o.Trap2)
	case OpSwap:
		return fmt.Sprintf("swap ion%d,ion%d T%d", o.Ion, o.Ion2, o.Trap)
	case OpGate2Q:
		return fmt.Sprintf("%s ion%d,ion%d T%d (g%d)", o.Name, o.Ion, o.Ion2, o.Trap, o.Gate)
	case OpGate1Q, OpMeasure:
		return fmt.Sprintf("%s ion%d T%d (g%d)", o.Name, o.Ion, o.Trap, o.Gate)
	default:
		return fmt.Sprintf("%s ion%d T%d", o.Kind, o.Ion, o.Trap)
	}
}

// State is the mutable machine state: which ion sits where, in what chain
// order, plus the accumulated operation trace.
type State struct {
	cfg      Config
	trapOf   []int   // ion -> trap id (-1 while in transit; never observable)
	posOf    []int   // ion -> index within its chain
	chains   [][]int // trap -> ordered ion chain
	ops      []Op
	counts   [numOpKinds]int // per-kind op tally, maintained on append
	shuttles int
}

// record appends one op to the trace, keeping the per-kind counters in sync.
//
//muzzle:hotpath
func (s *State) record(o Op) {
	s.ops = append(s.ops, o)
	s.counts[o.Kind]++
}

// NewState places ions into traps per placement (placement[t] lists the ions
// initially in trap t, in chain order) and validates capacities. The number
// of ions is inferred; ion ids must be dense 0..N-1.
func NewState(cfg Config, placement [][]int) (*State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(placement) != cfg.Topology.NumTraps() {
		return nil, fmt.Errorf("machine: placement has %d traps, topology has %d", len(placement), cfg.Topology.NumTraps())
	}
	total := 0
	for t, chain := range placement {
		if len(chain) > cfg.MaxInitialLoad() {
			return nil, fmt.Errorf("machine: trap %d loaded with %d ions, exceeds initial load limit %d", t, len(chain), cfg.MaxInitialLoad())
		}
		total += len(chain)
	}
	s := &State{
		cfg:    cfg,
		trapOf: make([]int, total),
		posOf:  make([]int, total),
		chains: make([][]int, len(placement)),
	}
	for i := range s.trapOf {
		s.trapOf[i] = -1
	}
	for t, chain := range placement {
		s.chains[t] = append([]int(nil), chain...)
		for p, ion := range chain {
			if ion < 0 || ion >= total {
				return nil, fmt.Errorf("machine: ion id %d not in dense range [0,%d)", ion, total)
			}
			if s.trapOf[ion] != -1 {
				return nil, fmt.Errorf("machine: ion %d placed twice", ion)
			}
			s.trapOf[ion] = t
			s.posOf[ion] = p
		}
	}
	return s, nil
}

// Config returns the machine configuration.
func (s *State) Config() Config { return s.cfg }

// NumIons returns the total ion count.
func (s *State) NumIons() int { return len(s.trapOf) }

// NumTraps returns the trap count.
func (s *State) NumTraps() int { return len(s.chains) }

// IonTrap returns the trap currently holding ion q.
func (s *State) IonTrap(q int) int { return s.trapOf[q] }

// IonPos returns ion q's index within its chain.
func (s *State) IonPos(q int) int { return s.posOf[q] }

// Chain returns the ordered ion chain of trap t. The returned slice must not
// be modified.
func (s *State) Chain(t int) []int { return s.chains[t] }

// Occupancy returns the number of ions in trap t.
func (s *State) Occupancy(t int) int { return len(s.chains[t]) }

// ExcessCapacity returns capacity minus occupancy for trap t (paper
// Section II-B1).
func (s *State) ExcessCapacity(t int) int { return s.cfg.Capacity - len(s.chains[t]) }

// IsFull reports whether trap t cannot accept another ion.
func (s *State) IsFull(t int) bool { return s.ExcessCapacity(t) <= 0 }

// Shuttles returns the number of MOVE operations performed so far — the
// paper's shuttle count.
func (s *State) Shuttles() int { return s.shuttles }

// Ops returns the trace. The returned slice must not be modified.
func (s *State) Ops() []Op { return s.ops }

// OpCount returns the number of trace ops of kind k. Counters are maintained
// incrementally on append, so the query is O(1) instead of a trace scan.
func (s *State) OpCount(k OpKind) int {
	if k < 0 || k >= numOpKinds {
		return 0
	}
	return s.counts[k]
}

// ReserveOps grows the trace's capacity so at least n further ops can be
// appended without reallocation. Callers that know the workload size (the
// compiler engine knows the gate count) use it to keep the trace append
// amortization out of the scheduling hot path.
func (s *State) ReserveOps(n int) {
	if free := cap(s.ops) - len(s.ops); free < n {
		grown := make([]Op, len(s.ops), len(s.ops)+n)
		copy(grown, s.ops)
		s.ops = grown
	}
}

// CoLocated reports whether two ions share a trap.
func (s *State) CoLocated(a, b int) bool { return s.trapOf[a] == s.trapOf[b] }

// ApplyGate1Q records a single-qubit gate (or measurement) on ion q.
func (s *State) ApplyGate1Q(name string, q, gateIdx int) {
	kind := OpGate1Q
	if name == "measure" {
		kind = OpMeasure
	}
	s.record(Op{Kind: kind, Ion: q, Ion2: -1, Trap: s.trapOf[q], Trap2: -1, Gate: gateIdx, Name: name})
}

// ApplyGate2Q records a two-qubit gate; the ions must be co-located.
func (s *State) ApplyGate2Q(name string, a, b, gateIdx int) error {
	if s.trapOf[a] != s.trapOf[b] {
		return fmt.Errorf("machine: 2Q gate %q on ions %d (T%d) and %d (T%d): not co-located", name, a, s.trapOf[a], b, s.trapOf[b])
	}
	s.record(Op{Kind: OpGate2Q, Ion: a, Ion2: b, Trap: s.trapOf[a], Trap2: -1, Gate: gateIdx, Name: name})
	return nil
}

// edgeIndex returns the chain index an ion must occupy to exit trap `from`
// toward adjacent trap `to`: the high end if to > from, else the low end.
// This convention is arbitrary but consistent for merge (an ion entering
// from a lower-numbered trap lands at the low end, and vice versa).
func (s *State) edgeIndex(from, to int) int {
	if to > from {
		return len(s.chains[from]) - 1
	}
	return 0
}

// swapToEdge records the intra-chain swaps needed to bring ion q to the
// chain edge facing adjacent trap `to` (Fig. 3 step i).
func (s *State) swapToEdge(q, to int) {
	from := s.trapOf[q]
	target := s.edgeIndex(from, to)
	chain := s.chains[from]
	step := 1
	if target < s.posOf[q] {
		step = -1
	}
	for s.posOf[q] != target {
		p := s.posOf[q]
		other := chain[p+step]
		chain[p], chain[p+step] = chain[p+step], chain[p]
		s.posOf[q] = p + step
		s.posOf[other] = p
		s.record(Op{Kind: OpSwap, Ion: q, Ion2: other, Trap: from, Trap2: -1, Gate: -1})
	}
}

// Hop shuttles ion q from its current trap to the adjacent trap `to`,
// recording SWAP* SPLIT MOVE MERGE. It fails if the traps are not adjacent
// or the destination is full.
func (s *State) Hop(q, to int) error {
	from := s.trapOf[q]
	if from == to {
		return fmt.Errorf("machine: ion %d already in trap %d", q, to)
	}
	adjacent := false
	for _, nb := range s.cfg.Topology.Neighbors(from) {
		if nb == to {
			adjacent = true
			break
		}
	}
	if !adjacent {
		return fmt.Errorf("machine: traps %d and %d not adjacent", from, to)
	}
	if s.IsFull(to) {
		return fmt.Errorf("machine: trap %d full (capacity %d), cannot receive ion %d", to, s.cfg.Capacity, q)
	}
	s.swapToEdge(q, to)
	// SPLIT: remove from source chain.
	chain := s.chains[from]
	p := s.posOf[q]
	s.record(Op{Kind: OpSplit, Ion: q, Ion2: -1, Trap: from, Trap2: -1, Gate: -1})
	copy(chain[p:], chain[p+1:])
	s.chains[from] = chain[:len(chain)-1]
	for i := p; i < len(s.chains[from]); i++ {
		s.posOf[s.chains[from][i]] = i
	}
	// MOVE: one shuttle.
	s.record(Op{Kind: OpMove, Ion: q, Ion2: -1, Trap: from, Trap2: to, Gate: -1})
	s.shuttles++
	// MERGE: insert at the edge facing the source.
	dst := s.chains[to]
	if from < to {
		// entering from the low side
		dst = append(dst, 0)
		copy(dst[1:], dst)
		dst[0] = q
		s.chains[to] = dst
		for i, ion := range dst {
			s.posOf[ion] = i
		}
	} else {
		s.chains[to] = append(dst, q)
		s.posOf[q] = len(s.chains[to]) - 1
	}
	s.trapOf[q] = to
	s.record(Op{Kind: OpMerge, Ion: q, Ion2: -1, Trap: to, Trap2: -1, Gate: -1})
	return nil
}

// Route shuttles ion q along the shortest topology path to trap dst,
// performing one Hop per edge. Every intermediate trap must have excess
// capacity; callers resolve traffic blocks (re-balancing) before routing.
func (s *State) Route(q, dst int) error {
	for s.trapOf[q] != dst {
		next := s.cfg.Topology.NextHop(s.trapOf[q], dst)
		if err := s.Hop(q, next); err != nil {
			return err
		}
	}
	return nil
}

// Teleport relocates ion q to trap `to` directly, without recording trace
// operations. It exists for trace replay (internal/sim), where the
// SPLIT/MOVE/MERGE accounting has already been charged and only occupancy
// bookkeeping is needed. Capacity is still enforced.
func (s *State) Teleport(q, to int) error {
	from := s.trapOf[q]
	if from == to {
		return nil
	}
	if s.IsFull(to) {
		return fmt.Errorf("machine: teleport of ion %d into full trap %d", q, to)
	}
	chain := s.chains[from]
	p := s.posOf[q]
	copy(chain[p:], chain[p+1:])
	s.chains[from] = chain[:len(chain)-1]
	for i := p; i < len(s.chains[from]); i++ {
		s.posOf[s.chains[from][i]] = i
	}
	s.chains[to] = append(s.chains[to], q)
	s.posOf[q] = len(s.chains[to]) - 1
	s.trapOf[q] = to
	return nil
}

// CheckInvariants verifies internal consistency: each ion in exactly one
// chain, position indices correct, occupancy within capacity. It is used by
// tests and can be called after compilation as a sanity gate.
func (s *State) CheckInvariants() error {
	seen := make([]bool, s.NumIons())
	for t, chain := range s.chains {
		if len(chain) > s.cfg.Capacity {
			return fmt.Errorf("machine: trap %d holds %d ions, capacity %d", t, len(chain), s.cfg.Capacity)
		}
		for p, ion := range chain {
			if ion < 0 || ion >= s.NumIons() {
				return fmt.Errorf("machine: trap %d contains invalid ion %d", t, ion)
			}
			if seen[ion] {
				return fmt.Errorf("machine: ion %d appears in multiple chains", ion)
			}
			seen[ion] = true
			if s.trapOf[ion] != t {
				return fmt.Errorf("machine: ion %d trapOf=%d but found in trap %d", ion, s.trapOf[ion], t)
			}
			if s.posOf[ion] != p {
				return fmt.Errorf("machine: ion %d posOf=%d but found at index %d", ion, s.posOf[ion], p)
			}
		}
	}
	for ion, ok := range seen {
		if !ok {
			return fmt.Errorf("machine: ion %d not in any chain", ion)
		}
	}
	return nil
}

// Snapshot returns a copy of the current placement (trap -> chain), usable
// to reconstruct an identical State.
func (s *State) Snapshot() [][]int {
	out := make([][]int, len(s.chains))
	for t, chain := range s.chains {
		out[t] = append([]int(nil), chain...)
	}
	return out
}

// Clone returns a deep copy of the state including its trace.
func (s *State) Clone() *State {
	c := &State{
		cfg:      s.cfg,
		trapOf:   append([]int(nil), s.trapOf...),
		posOf:    append([]int(nil), s.posOf...),
		chains:   s.Snapshot(),
		ops:      append([]Op(nil), s.ops...),
		counts:   s.counts,
		shuttles: s.shuttles,
	}
	return c
}

// String renders the trap occupancy like the paper's figures:
// "T0: [0 1 2] (EC=2) | T1: [3 4 5] (EC=1)".
func (s *State) String() string {
	var b strings.Builder
	for t, chain := range s.chains {
		if t > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "T%d: %v (EC=%d)", t, chain, s.ExcessCapacity(t))
	}
	return b.String()
}
