package core

import (
	"strings"
	"testing"

	"muzzle/internal/baseline"
	"muzzle/internal/circuit"
	"muzzle/internal/compiler"
	"muzzle/internal/dag"
	"muzzle/internal/machine"
	"muzzle/internal/topo"
)

// fig4Circuit is the 4-gate program of paper Fig. 4 / Table I.
func fig4Circuit() *circuit.Circuit {
	c := circuit.New("fig4", 5)
	c.Add2Q("ms", 1, 2) // Gate-A
	c.Add2Q("ms", 2, 3) // Gate-B
	c.Add2Q("ms", 1, 2) // Gate-C
	c.Add2Q("ms", 2, 4) // Gate-D
	return c
}

func fig4Setup(t *testing.T) (*compiler.Context, machine.Config, [][]int) {
	t.Helper()
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	placement := [][]int{{0, 1}, {2, 3, 4}}
	st, err := machine.NewState(cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	c := fig4Circuit()
	ctx := &compiler.Context{State: st, Graph: dag.Build(c), Circ: c, Executed: make([]bool, 4)}
	return ctx, cfg, placement
}

// TestTableIMoveScores pins the exact move-score computation of paper
// Table I: for Gate-A (ions 1 and 2), ionA(A->B) = 3 and ionB(B->A) = 1.
func TestTableIMoveScores(t *testing.T) {
	ctx, _, _ := fig4Setup(t)
	d := FutureOpsDirection{}
	remaining := []int{1, 2, 3} // Gate-B, Gate-C, Gate-D
	scoreAB, scoreBA := d.MoveScores(ctx, 1, 2, remaining)
	if scoreAB != 3 {
		t.Errorf("ionA(A->B) move score = %d, want 3 (Table I)", scoreAB)
	}
	if scoreBA != 1 {
		t.Errorf("ionB(B->A) move score = %d, want 1 (Table I)", scoreBA)
	}
}

// TestFigure4FutureOps pins the headline of Fig. 4/Table I: the future-ops
// policy compiles the 4-gate program with a single shuttle (ion 1 to T1)
// where the baseline needs 4.
func TestFigure4FutureOps(t *testing.T) {
	_, cfg, placement := fig4Setup(t)
	res, err := New().CompileMapped(fig4Circuit(), cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shuttles != 1 {
		t.Fatalf("optimized shuttles = %d, want 1 (Fig. 4)", res.Shuttles)
	}
	for _, op := range res.Ops {
		if op.Kind == machine.OpMove {
			if op.Ion != 1 || op.Trap != 0 || op.Trap2 != 1 {
				t.Errorf("move = %v, want ion 1 T0->T1", op)
			}
		}
	}
	// Cross-check the baseline on the identical input: 4 shuttles.
	resB, err := baseline.New().CompileMapped(fig4Circuit(), cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Shuttles != 4 {
		t.Fatalf("baseline shuttles = %d, want 4", resB.Shuttles)
	}
}

// TestFigure5Proximity pins the proximity-window example of Fig. 5: a
// relevant future gate separated from the previous relevant gate by more
// than 6 units of logical time is flagged "distant, low proximity" and
// excluded from the score; with unbounded lookahead it is counted. (This
// implementation measures the gap in dependency layers; the intervening
// gates of Fig. 5 are built as a serial chain so the example carries over
// verbatim — see the MoveScores doc comment.)
func TestFigure5Proximity(t *testing.T) {
	// Program shape of Fig. 5: gate1 MS a,b (active); gate2 MS c,d;
	// gate3 MS a,c (close -> counted); a run of gates involving ions other
	// than a and b; finally MS b,d (distant -> excluded).
	const a, b, c, d, e = 0, 1, 2, 3, 4
	circ := circuit.New("fig5", 6)
	circ.Add2Q("ms", a, b)   // 0: active gate, layer 0
	circ.Add2Q("ms", c, d)   // 1: layer 0
	circ.Add2Q("ms", a, c)   // 2: layer 1, gap 0 from active -> counted
	for i := 0; i < 8; i++ { // 3..10: serial chain on (d,e), layers 1..8
		circ.Add2Q("ms", d, e)
	}
	circ.Add2Q("ms", b, d) // 11: layer 9, gap 9-1-1 = 7 > 6 -> excluded

	g := dag.Build(circ)
	if g.Layer(11) != 9 || g.Layer(2) != 1 {
		t.Fatalf("layer setup wrong: gate2 L%d, gate11 L%d", g.Layer(2), g.Layer(11))
	}

	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 17, CommCapacity: 2}
	// a, e in T0; b, c, d in T1.
	placement := [][]int{{a, e}, {b, c, d, 5}}
	st, err := machine.NewState(cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &compiler.Context{State: st, Graph: g, Circ: circ, Executed: make([]bool, len(circ.Gates))}
	remaining := make([]int, 0, 11)
	for i := 1; i < len(circ.Gates); i++ {
		remaining = append(remaining, i)
	}

	// Windowed (paper default 6): only gate 2 counts -> scoreAB = 1
	// (partner c is in trapB).
	scoreAB, scoreBA := FutureOpsDirection{}.MoveScores(ctx, a, b, remaining)
	if scoreAB != 1 || scoreBA != 0 {
		t.Errorf("proximity=6 scores = (%d,%d), want (1,0): the distant gate must be excluded", scoreAB, scoreBA)
	}

	// Unbounded: the distant gate (b with d in trapB) also counts.
	scoreAB, scoreBA = FutureOpsDirection{Proximity: -1}.MoveScores(ctx, a, b, remaining)
	if scoreAB != 2 || scoreBA != 0 {
		t.Errorf("unbounded scores = (%d,%d), want (2,0)", scoreAB, scoreBA)
	}
}

// fig6Circuit is the 5-gate partial program of paper Fig. 6b.
func fig6Circuit() *circuit.Circuit {
	c := circuit.New("fig6", 7)
	c.Add2Q("ms", 2, 3) // gA
	c.Add2Q("ms", 4, 0) // gB
	c.Add2Q("ms", 2, 5) // gC
	c.Add2Q("ms", 6, 2) // gD
	c.Add2Q("ms", 1, 4) // gE
	return c
}

// fig6Config reproduces Fig. 6a: capacity 4, T0 = [0 1 2] (EC=1),
// T1 = [3 4 5 6] (EC=0, full).
func fig6Config() (machine.Config, [][]int) {
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 0}
	return cfg, [][]int{{0, 1, 2}, {3, 4, 5, 6}}
}

// TestFigure6Reordering pins Fig. 6f: with opportunistic gate re-ordering
// the partial program compiles with 2 shuttles; without it (baseline) it
// needs 5.
func TestFigure6Reordering(t *testing.T) {
	cfg, placement := fig6Config()
	res, err := New().CompileMapped(fig6Circuit(), cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shuttles != 2 {
		t.Fatalf("optimized shuttles = %d, want 2 (Fig. 6f right)", res.Shuttles)
	}
	if res.Reorders != 1 {
		t.Errorf("reorders = %d, want 1 (gB hoisted before gA)", res.Reorders)
	}
	// The first executed gate must be gB (index 1): order = [1 0 ...].
	if res.Order[0] != 1 || res.Order[1] != 0 {
		t.Errorf("final order = %v, want gB before gA", res.Order)
	}
	// Move sequence per Fig. 6f: ion 4 T1->T0, then ion 2 T0->T1.
	var moves []machine.Op
	for _, op := range res.Ops {
		if op.Kind == machine.OpMove {
			moves = append(moves, op)
		}
	}
	if len(moves) != 2 || moves[0].Ion != 4 || moves[0].Trap != 1 || moves[1].Ion != 2 || moves[1].Trap != 0 {
		t.Errorf("moves = %v, want [ion4 T1->T0, ion2 T0->T1]", moves)
	}

	resB, err := baseline.New().CompileMapped(fig6Circuit(), cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Shuttles != 5 {
		t.Fatalf("baseline shuttles = %d, want 5 (Fig. 6f left)", resB.Shuttles)
	}
}

// TestFigure7Rebalance pins Fig. 7: with T4 full and ECs
// (2,1,4,2,0,5), nearest-neighbor re-balancing evicts to an adjacent trap
// (1 shuttle) where the baseline ships to T0 (4 shuttles).
func TestFigure7Rebalance(t *testing.T) {
	cfg := machine.Config{Topology: topo.Linear(6), Capacity: 6, CommCapacity: 0}
	placement := [][]int{
		{0, 1, 2, 3},
		{4, 5, 6, 7, 8},
		{9, 10},
		{11, 12, 13, 14},
		{15, 16, 17, 18, 19, 20},
		{21},
	}
	st, err := machine.NewState(cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("x", 22)
	ctx := &compiler.Context{State: st, Graph: dag.Build(c), Circ: c}
	_, dest, err := NearestNeighborRebalancer{}.Choose(ctx, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Topology.Distance(4, dest); got != 1 {
		t.Errorf("NN rebalance dest = T%d at distance %d, want an adjacent trap", dest, got)
	}
}

// TestFigure7EndToEnd drives the full Fig. 7 scenario through both engines:
// a gate between T3 and T5 ions with T4 blocking. The optimized compiler
// resolves the block with 1 eviction shuttle; the baseline ships the victim
// to T0 (4 shuttles).
func TestFigure7EndToEnd(t *testing.T) {
	cfg := machine.Config{Topology: topo.Linear(6), Capacity: 6, CommCapacity: 0}
	placement := [][]int{
		{0, 1, 2, 3},
		{4, 5, 6, 7, 8},
		{9, 10},
		{11, 12, 13, 14},
		{15, 16, 17, 18, 19, 20},
		{21},
	}
	mkCircuit := func() *circuit.Circuit {
		c := circuit.New("fig7", 22)
		c.Add2Q("ms", 14, 21) // ion 14 in T3, ion 21 in T5; path crosses full T4
		return c
	}
	resOpt, err := New().CompileMapped(mkCircuit(), cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	resBase, err := baseline.New().CompileMapped(mkCircuit(), cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	if resOpt.Shuttles >= resBase.Shuttles {
		t.Errorf("optimized %d shuttles, baseline %d: NN re-balancing should win", resOpt.Shuttles, resBase.Shuttles)
	}
	if resOpt.Rebalances == 0 || resBase.Rebalances == 0 {
		t.Error("both compilers should have re-balanced T4")
	}
	// Optimized total: 1 eviction hop + 2 routing hops = 3.
	if resOpt.Shuttles != 3 {
		t.Errorf("optimized shuttles = %d, want 3 (1 eviction + 2 route)", resOpt.Shuttles)
	}
	// Baseline: 4 eviction hops (to T0) + 2 routing hops = 6.
	if resBase.Shuttles != 6 {
		t.Errorf("baseline shuttles = %d, want 6 (4 eviction + 2 route)", resBase.Shuttles)
	}
}

// TestMaxScoreIonSelection pins Section III-C2: the evicted ion maximizes
// wd*#gates-in-dest - ws*#gates-in-source, with the 0.49/0.51 tie weights.
func TestMaxScoreIonSelection(t *testing.T) {
	cfg := machine.Config{Topology: topo.Linear(3), Capacity: 4, CommCapacity: 0}
	// T1 = [2 3 4 5] is blocked; T2 has room (dest, distance 1); T0 full.
	placement := [][]int{{0, 1, 6, 7}, {2, 3, 4, 5}, {8}}
	st, err := machine.NewState(cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("x", 9)
	c.Add2Q("ms", 3, 8) // ion 3 has a gate in T2 (dest)
	c.Add2Q("ms", 3, 8)
	c.Add2Q("ms", 4, 5) // ion 4 and 5 have gates inside the source trap
	c.Add2Q("ms", 2, 8) // ion 2: one gate in dest...
	c.Add2Q("ms", 2, 4) // ...and one in source -> equal counts, 0.49/0.51
	ctx := &compiler.Context{State: st, Graph: dag.Build(c), Circ: c, Executed: make([]bool, len(c.Gates))}
	remaining := []int{0, 1, 2, 3, 4}
	ion, dest, err := NearestNeighborRebalancer{}.Choose(ctx, 1, remaining, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dest != 2 {
		t.Errorf("dest = T%d, want T2 (nearest with capacity)", dest)
	}
	// Scores: ion2: equal counts (1,1) -> 0.49-0.51 = -0.02; ion3: (2,0) ->
	// +1.0; ion4: (0,2) -> -1.0; ion5: (0,1) -> -0.5. Ion 3 wins.
	if ion != 3 {
		t.Errorf("evicted ion = %d, want 3 (max score)", ion)
	}
}

func TestNearestNeighborNoCapacity(t *testing.T) {
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 2, CommCapacity: 0}
	st, err := machine.NewState(cfg, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("x", 4)
	ctx := &compiler.Context{State: st, Graph: dag.Build(c), Circ: c}
	if _, _, err := (NearestNeighborRebalancer{}).Choose(ctx, 0, nil, nil); err == nil {
		t.Fatal("expected no-capacity error")
	}
}

func TestFutureOpsTieFallsBackToExcessCapacity(t *testing.T) {
	// No future gates at all -> scores (0,0) -> baseline EC rule decides.
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	st, err := machine.NewState(cfg, [][]int{{0}, {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("x", 4)
	c.Add2Q("ms", 0, 1)
	ctx := &compiler.Context{State: st, Graph: dag.Build(c), Circ: c, Executed: make([]bool, 1)}
	ion, dest := FutureOpsDirection{}.Choose(ctx, 0, 0, 1, nil)
	// EC(T0)=3 > EC(T1)=1: baseline moves trap1's ion (ion 1) into T0.
	if ion != 1 || dest != 0 {
		t.Errorf("tie fallback: got ion %d -> T%d, want ion 1 -> T0", ion, dest)
	}
}

func TestPolicyNames(t *testing.T) {
	if got := (FutureOpsDirection{}).Name(); !strings.Contains(got, "proximity=6") {
		t.Errorf("default direction name = %q", got)
	}
	if got := (FutureOpsDirection{Proximity: -1}).Name(); !strings.Contains(got, "-1") {
		t.Errorf("unbounded direction name = %q", got)
	}
	if (OpportunisticReorderer{}).Name() == "" || (NearestNeighborRebalancer{}).Name() == "" {
		t.Error("empty policy names")
	}
}

func TestNewWithOptionsAblations(t *testing.T) {
	full := NewWithOptions(Options{})
	if full.Reorderer == nil {
		t.Error("default must include reorderer")
	}
	noReorder := NewWithOptions(Options{DisableReorder: true})
	if noReorder.Reorderer != nil {
		t.Error("DisableReorder ignored")
	}
	noFuture := NewWithOptions(Options{DisableFutureOps: true})
	if noFuture.Direction.Name() != "excess-capacity" {
		t.Errorf("DisableFutureOps direction = %q", noFuture.Direction.Name())
	}
	noNN := NewWithOptions(Options{DisableNNRebalance: true})
	if noNN.Rebalancer.Name() != "first-fit-from-trap0" {
		t.Errorf("DisableNNRebalance rebalancer = %q", noNN.Rebalancer.Name())
	}
}

// TestReordererSkipsUnsafeCandidates verifies the dependency-safety check:
// a same-layer... (lower-layer) gate whose predecessor is pending must not
// be hoisted.
func TestReordererSkipsUnsafeCandidates(t *testing.T) {
	// gates: 0: ms(0,1) [layer0]; 1: ms(1,2) [layer1, depends on 0];
	// active cursor at a different gate; candidate 1 unsafe until 0 runs.
	c := circuit.New("x", 6)
	c.Add2Q("ms", 0, 1) // 0, layer 0
	c.Add2Q("ms", 1, 2) // 1, layer 1
	c.Add2Q("ms", 3, 4) // 2, layer 0 (independent)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 0}
	st, err := machine.NewState(cfg, [][]int{{0, 1, 3}, {2, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &compiler.Context{State: st, Graph: dag.Build(c), Circ: c, Executed: make([]bool, 3)}
	r := OpportunisticReorderer{Direction: FutureOpsDirection{}}
	// Active = gate 1 at cursor 0 in a custom order; gate 1's predecessor
	// (gate 0) is pending, but gate 1 is the *active* gate here. Use active
	// = gate 2 (layer 0) and see that gate 1 (layer 1) is never a candidate
	// regardless of trap states.
	order := []int{2, 1, 0}
	pos := r.Candidate(ctx, order, 0, 1)
	if pos != -1 && order[pos] == 1 {
		t.Error("hoisted a gate with pending predecessors")
	}
}
