// Package core implements the paper's contribution: the three compiler
// optimization heuristics of "Muzzle the Shuttle" (DATE 2022) that together
// cut shuttle counts by ~19-51% versus the QCCDSim baseline:
//
//   - FutureOpsDirection — the future-operations-based shuttle direction
//     policy with gate-proximity windowing (Section III-A, Table I, Fig. 5);
//   - OpportunisticReorderer — Algorithm 1, which frees a full destination
//     trap by hoisting a dependency-safe pending gate whose own shuttle
//     leaves that trap (Section III-B, Fig. 6);
//   - NearestNeighborRebalancer — Algorithm 2, nearest-neighbor-first
//     traffic-block re-balancing with max-score shuttle ion selection
//     (Section III-C, Fig. 7).
//
// New assembles them into the optimized compiler used by the evaluation.
package core

import (
	"fmt"

	"muzzle/internal/baseline"
	"muzzle/internal/compiler"
)

// DefaultProximity is the gate-proximity design parameter: future gates
// separated from the previous relevant gate by more than this many
// intervening gates are excluded from move-score computation. "From our
// analysis, setting the proximity parameter to 6 provides good results"
// (Section III-A3).
const DefaultProximity = 6

// FutureOpsDirection is the future-ops-based shuttle direction policy
// (Section III-A2). For a cross-trap gate(ionA, ionB) it computes
//
//	ionA(A->B) move score = #ionA gates in trapB + #ionB gates in trapB
//	ionB(B->A) move score = #ionA gates in trapA + #ionB gates in trapA
//
// over the upcoming gates within the proximity window, where "#ion gates in
// trapX" counts future 2Q gates pairing that ion with a partner currently
// located in trapX. The higher score wins: it means co-locating both ions in
// that trap satisfies more future gates. Ties fall back to the baseline
// excess-capacity rule (the paper leaves ties unspecified; the fallback
// makes the policy a strict refinement of the baseline).
type FutureOpsDirection struct {
	// Proximity is the window parameter; 0 means DefaultProximity. A
	// negative value disables windowing (unbounded lookahead), used by the
	// ablation benchmarks.
	Proximity int
}

// Name implements compiler.Direction.
func (d FutureOpsDirection) Name() string {
	return fmt.Sprintf("future-ops(proximity=%d)", d.proximity())
}

func (d FutureOpsDirection) proximity() int {
	if d.Proximity == 0 {
		return DefaultProximity
	}
	return d.Proximity
}

// MoveScores computes the pair of move scores for ions qa, qb over the
// remaining 2Q gate sequence, applying the proximity cut-off of
// Section III-A3: whenever the gap between consecutive gates involving qa
// or qb exceeds the proximity parameter, the scan stops and later gates are
// ignored ("distant, low proximity").
//
// The gap is measured in dependency-DAG layers — logical time — rather than
// raw program positions. The paper's worked examples (Table I, Fig. 5) are
// serial programs where the two metrics coincide gate-for-gate, but on wide
// circuits (Supremacy runs ~30 independent gates per layer) a program-order
// window of 6 would exclude even the very next gate on the same ion, making
// the policy degenerate to the baseline; layer distance preserves the
// intent — "distant future gates may not represent ion locations
// correctly" — at every circuit width. Exported so tests can pin Table I
// directly.
func (d FutureOpsDirection) MoveScores(ctx *compiler.Context, qa, qb int, remaining []int) (scoreAB, scoreBA int) {
	ta := ctx.State.IonTrap(qa)
	tb := ctx.State.IonTrap(qb)
	prox := d.proximity()
	lastLayer := -1
	for _, idx := range remaining {
		g := ctx.Circ.Gates[idx]
		if !g.Uses(qa) && !g.Uses(qb) {
			continue
		}
		layer := ctx.Graph.Layer(idx)
		if prox >= 0 && lastLayer >= 0 {
			if gap := layer - lastLayer - 1; gap > prox {
				break
			}
		}
		lastLayer = layer
		if g.Uses(qa) {
			partner := g.Other(qa)
			switch ctx.State.IonTrap(partner) {
			case tb:
				scoreAB++
			case ta:
				scoreBA++
			}
		}
		if g.Uses(qb) {
			partner := g.Other(qb)
			switch ctx.State.IonTrap(partner) {
			case tb:
				scoreAB++
			case ta:
				scoreBA++
			}
		}
	}
	return scoreAB, scoreBA
}

// Choose implements compiler.Direction.
func (d FutureOpsDirection) Choose(ctx *compiler.Context, gateIdx, qa, qb int, remaining []int) (int, int) {
	scoreAB, scoreBA := d.MoveScores(ctx, qa, qb, remaining)
	return d.decide(ctx, gateIdx, qa, qb, scoreAB, scoreBA)
}

// ChooseWindowed implements compiler.WindowedDirection: the same decision as
// Choose, computed from the future-gate index without materializing the
// remaining slice. Instead of filtering the whole lookahead window for gates
// touching qa/qb (O(lookahead)), it merge-walks the two ions' future-gate
// lists in schedule order (O(deg qa + deg qb), usually cut much shorter by
// the proximity window).
func (d FutureOpsDirection) ChooseWindowed(ctx *compiler.Context, gateIdx, qa, qb int, w compiler.Window) (int, int) {
	scoreAB, scoreBA := d.MoveScoresWindowed(ctx, qa, qb, w)
	return d.decide(ctx, gateIdx, qa, qb, scoreAB, scoreBA)
}

func (d FutureOpsDirection) decide(ctx *compiler.Context, gateIdx, qa, qb, scoreAB, scoreBA int) (int, int) {
	switch {
	case scoreAB > scoreBA:
		// Keeping both ions in trapB satisfies more future gates: move A.
		return qa, ctx.State.IonTrap(qb)
	case scoreBA > scoreAB:
		return qb, ctx.State.IonTrap(qa)
	default:
		// The excess-capacity fallback ignores the remaining view, so the
		// windowed path can share it with nil remaining.
		return baseline.ExcessCapacityDirection{}.Choose(ctx, gateIdx, qa, qb, nil)
	}
}

// MoveScoresWindowed is MoveScores on the future-gate index: a merge walk
// over FutureGates(qa) and FutureGates(qb) visits exactly the subsequence of
// the lookahead window that uses either ion, in schedule order, so the
// scores (and the proximity cut-off) match MoveScores on the materialized
// window gate for gate.
func (d FutureOpsDirection) MoveScoresWindowed(ctx *compiler.Context, qa, qb int, w compiler.Window) (scoreAB, scoreBA int) {
	ta := ctx.State.IonTrap(qa)
	tb := ctx.State.IonTrap(qb)
	prox := d.proximity()
	lastLayer := -1
	fa, fb := ctx.FutureGates(qa), ctx.FutureGates(qb)
	ia, ib := 0, 0
	for ia < len(fa) || ib < len(fb) {
		var idx int
		switch {
		case ia >= len(fa):
			idx = fb[ib]
			ib++
		case ib >= len(fb):
			idx = fa[ia]
			ia++
		case fa[ia] == fb[ib]:
			// One gate using both ions: visit once, score both operands.
			idx = fa[ia]
			ia++
			ib++
		case ctx.GatePos(fa[ia]) < ctx.GatePos(fb[ib]):
			idx = fa[ia]
			ia++
		default:
			idx = fb[ib]
			ib++
		}
		if !ctx.InWindow(w, idx) {
			if ctx.GatePos(idx) > w.Last {
				break // schedule-ordered: nothing later can be in the window
			}
			continue // the active gate itself, or the excluded candidate
		}
		g := ctx.Circ.Gates[idx]
		layer := ctx.Graph.Layer(idx)
		if prox >= 0 && lastLayer >= 0 {
			if gap := layer - lastLayer - 1; gap > prox {
				break
			}
		}
		lastLayer = layer
		if g.Uses(qa) {
			partner := g.Other(qa)
			switch ctx.State.IonTrap(partner) {
			case tb:
				scoreAB++
			case ta:
				scoreBA++
			}
		}
		if g.Uses(qb) {
			partner := g.Other(qb)
			switch ctx.State.IonTrap(partner) {
			case tb:
				scoreAB++
			case ta:
				scoreBA++
			}
		}
	}
	return scoreAB, scoreBA
}

// OpportunisticReorderer is Algorithm 1: when the favorable destination
// trap of the active gate is full, scan the pending gates in the active
// gate's layer and all preceding layers; the first dependency-safe candidate
// whose own shuttle direction moves an ion *out of* the full trap is hoisted
// before the active gate, freeing a slot.
type OpportunisticReorderer struct {
	// Direction is the policy used to evaluate candidates' shuttle
	// directions (Algorithm 1 line 11: "find source trap for the gate using
	// future-ops shuttle policy").
	Direction compiler.Direction
	// MaxCandidates caps the scan (0 means DefaultMaxCandidates); the paper
	// notes the pending-gate set "is typically small even for large
	// circuits" (Section III-B1) — the cap enforces that bound.
	MaxCandidates int
}

// DefaultMaxCandidates bounds the Algorithm-1 candidate scan.
const DefaultMaxCandidates = 256

// Name implements compiler.Reorderer.
func (r OpportunisticReorderer) Name() string { return "opportunistic-reorder" }

func (r OpportunisticReorderer) maxCandidates() int {
	if r.MaxCandidates > 0 {
		return r.MaxCandidates
	}
	return DefaultMaxCandidates
}

// Candidate implements compiler.Reorderer.
func (r OpportunisticReorderer) Candidate(ctx *compiler.Context, order []int, cursor int, fullTrap int) int {
	activeLayer := ctx.Graph.Layer(order[cursor])
	checked := 0
	for pos := cursor + 1; pos < len(order); pos++ {
		idx := order[pos]
		if ctx.Executed[idx] {
			continue
		}
		// Algorithm 1 lines 3-9: candidates are pending gates in the active
		// layer or earlier layers.
		if ctx.Graph.Layer(idx) > activeLayer {
			continue
		}
		checked++
		if checked > r.maxCandidates() {
			return -1
		}
		g := ctx.Circ.Gates[idx]
		if !g.Is2Q() {
			continue // only a shuttle can free a slot
		}
		// Dependency safety: the paper's layer test is necessary but not
		// sufficient (an earlier-layer gate may itself have pending
		// predecessors); require every predecessor executed.
		if !ctx.Graph.CanHoist(idx, ctx.Executed) {
			continue
		}
		qa, qb := g.Qubits[0], g.Qubits[1]
		if ctx.State.CoLocated(qa, qb) {
			continue // executes without a shuttle; frees nothing
		}
		// Evaluate the candidate's own shuttle direction on the lookahead
		// window that excludes the candidate itself. With the future-gate
		// index the view is an O(1) descriptor (and a windowed Direction
		// never materializes it); the naive rescan remains the fallback for
		// index-less contexts.
		var moveIon, dest int
		if ctx.HasIndex() {
			win := ctx.Window(compiler.DefaultLookahead, idx)
			if wd, ok := r.Direction.(compiler.WindowedDirection); ok {
				moveIon, dest = wd.ChooseWindowed(ctx, idx, qa, qb, win)
			} else {
				moveIon, dest = r.Direction.Choose(ctx, idx, qa, qb, ctx.MaterializeWindow(win))
			}
		} else {
			remaining := compiler.Remaining2Q(ctx, order, cursor, compiler.DefaultLookahead, pos)
			moveIon, dest = r.Direction.Choose(ctx, idx, qa, qb, remaining)
		}
		// Algorithm 1 line 12: the candidate must move an ion out of the
		// old destination — and must itself be executable (its own
		// destination not full).
		if ctx.State.IonTrap(moveIon) == fullTrap && !ctx.State.IsFull(dest) {
			return pos
		}
	}
	return -1
}

// NearestNeighborRebalancer is Algorithm 2 plus max-score shuttle ion
// selection (Section III-C2): the destination is the nearest trap with
// excess capacity on the topology (ties: lowest index), and the evicted ion
// maximises
//
//	score = wd * #gates(ion) in destination - ws * #gates(ion) in source
//
// with wd = ws = 0.5, switching to wd = 0.49, ws = 0.51 for ions whose two
// counts are equal so the score cannot be zero.
type NearestNeighborRebalancer struct {
	// Wd and Ws are the destination/source weights; zero values mean the
	// paper's 0.5/0.5.
	Wd, Ws float64
}

// Name implements compiler.Rebalancer.
func (NearestNeighborRebalancer) Name() string { return "nearest-neighbor-max-score" }

func (r NearestNeighborRebalancer) weights() (float64, float64) {
	wd, ws := r.Wd, r.Ws
	if wd == 0 {
		wd = 0.5
	}
	if ws == 0 {
		ws = 0.5
	}
	return wd, ws
}

// Choose implements compiler.Rebalancer.
func (r NearestNeighborRebalancer) Choose(ctx *compiler.Context, blocked int, remaining []int, avoid []int) (int, int, error) {
	dest, err := r.pickDest(ctx, blocked, avoid)
	if err != nil {
		return -1, -1, err
	}
	countGates := func(ion int) (inDest, inSrc int) {
		st := ctx.State
		for _, idx := range remaining {
			g := ctx.Circ.Gates[idx]
			if !g.Uses(ion) {
				continue
			}
			switch st.IonTrap(g.Other(ion)) {
			case dest:
				inDest++
			case blocked:
				inSrc++
			}
		}
		return inDest, inSrc
	}
	return r.pickIon(ctx, blocked, dest, countGates)
}

// ChooseWindowed implements compiler.WindowedRebalancer: identical decisions
// to Choose, but each candidate ion's gate counts come from its own
// future-gate list (O(deg) per ion) instead of a scan over the whole
// lookahead window per ion.
func (r NearestNeighborRebalancer) ChooseWindowed(ctx *compiler.Context, blocked int, w compiler.Window, avoid []int) (int, int, error) {
	dest, err := r.pickDest(ctx, blocked, avoid)
	if err != nil {
		return -1, -1, err
	}
	countGates := func(ion int) (inDest, inSrc int) {
		st := ctx.State
		for _, idx := range ctx.FutureGates(ion) {
			if !ctx.InWindow(w, idx) {
				if ctx.GatePos(idx) > w.Last {
					break // schedule-ordered: the rest is outside too
				}
				continue
			}
			g := ctx.Circ.Gates[idx]
			switch st.IonTrap(g.Other(ion)) {
			case dest:
				inDest++
			case blocked:
				inSrc++
			}
		}
		return inDest, inSrc
	}
	return r.pickIon(ctx, blocked, dest, countGates)
}

// pickDest is Algorithm 2's destination selection: filter traps with excess
// capacity, pick the nearest. Preference tiers keep the eviction feasible:
// first traps that are neither on the engine's avoid list (the in-progress
// route) nor behind a blocked corridor, then reachable-but-avoided traps,
// then anything with room as a last resort.
func (r NearestNeighborRebalancer) pickDest(ctx *compiler.Context, blocked int, avoid []int) (int, error) {
	st := ctx.State
	top := st.Config().Topology
	pick := func(skipAvoided, needClearPath bool) int {
		dest, bestDist := -1, -1
		for t := 0; t < st.NumTraps(); t++ {
			if t == blocked || st.ExcessCapacity(t) <= 0 {
				continue
			}
			if skipAvoided && ctx.Avoided(avoid, t) {
				continue
			}
			if needClearPath && !compiler.PathClear(st, blocked, t) {
				continue
			}
			d := top.Distance(blocked, t)
			if dest < 0 || d < bestDist {
				dest, bestDist = t, d
			}
		}
		return dest
	}
	dest := pick(true, true)
	if dest < 0 {
		dest = pick(false, true)
	}
	if dest < 0 {
		dest = pick(false, false)
	}
	if dest < 0 {
		return -1, fmt.Errorf("core: no trap has excess capacity")
	}
	return dest, nil
}

// pickIon is the max-score ion selection over the blocked trap's chain.
// Ions protected by the engine (the active gate's operands) are excluded
// unless the chain holds nothing else. countGates supplies, for one ion,
// its future 2Q gate counts whose partner currently sits in dest / blocked.
func (r NearestNeighborRebalancer) pickIon(ctx *compiler.Context, blocked, dest int, countGates func(ion int) (int, int)) (int, int, error) {
	wd, ws := r.weights()
	chain := ctx.State.Chain(blocked)
	bestIon, bestScore := -1, 0.0
	anyUnprotected := false
	for _, ion := range chain {
		if !ctx.IsProtected(ion) {
			anyUnprotected = true
			break
		}
	}
	for _, ion := range chain {
		if anyUnprotected && ctx.IsProtected(ion) {
			continue
		}
		inDest, inSrc := countGates(ion)
		cwd, cws := wd, ws
		if inDest == inSrc {
			// Section III-C2: avoid a zero score on equal counts.
			cwd, cws = 0.49, 0.51
		}
		score := cwd*float64(inDest) - cws*float64(inSrc)
		if bestIon < 0 || score > bestScore {
			bestIon, bestScore = ion, score
		}
	}
	if bestIon < 0 {
		return -1, -1, fmt.Errorf("core: blocked trap %d is empty", blocked)
	}
	return bestIon, dest, nil
}

// Options configures the optimized compiler; the zero value reproduces the
// paper's configuration.
type Options struct {
	// Proximity overrides the gate-proximity parameter (0 = paper's 6,
	// negative = unbounded).
	Proximity int
	// DisableReorder drops Algorithm 1 (for ablations).
	DisableReorder bool
	// DisableFutureOps reverts the direction policy to excess capacity (for
	// ablations).
	DisableFutureOps bool
	// DisableNNRebalance reverts re-balancing to the baseline trap-0-first
	// logic (for ablations).
	DisableNNRebalance bool
}

// New returns the paper's optimized compiler with default options.
func New() *compiler.Compiler { return NewWithOptions(Options{}) }

// NewWithOptions assembles an optimized compiler variant; used by the
// ablation benchmarks to attribute shuttle savings to individual heuristics.
func NewWithOptions(o Options) *compiler.Compiler {
	var dir compiler.Direction = FutureOpsDirection{Proximity: o.Proximity}
	if o.DisableFutureOps {
		dir = baseline.ExcessCapacityDirection{}
	}
	c := &compiler.Compiler{Direction: dir}
	if !o.DisableReorder {
		c.Reorderer = OpportunisticReorderer{Direction: dir}
	}
	if o.DisableNNRebalance {
		c.Rebalancer = baseline.FirstFitRebalancer{}
	} else {
		c.Rebalancer = NearestNeighborRebalancer{}
	}
	return c
}
