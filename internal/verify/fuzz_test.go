package verify

import (
	"testing"

	"muzzle/internal/baseline"
	"muzzle/internal/bench"
	"muzzle/internal/compiler"
	"muzzle/internal/core"
	"muzzle/internal/machine"
	"muzzle/internal/topo"
)

// FuzzVerify is the paper-suite-independent correctness backstop: it
// compiles fuzzer-chosen random circuits on fuzzer-chosen topologies with
// both compilers and asserts the verifier finds zero violations. Any
// violation here is an engine bug (or a verifier bug) — either way a real
// finding.
func FuzzVerify(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(30), uint8(0), uint8(6), uint8(1))
	f.Add(int64(7), uint8(20), uint8(60), uint8(1), uint8(4), uint8(2))
	f.Add(int64(42), uint8(9), uint8(25), uint8(2), uint8(5), uint8(1))
	f.Add(int64(99), uint8(16), uint8(80), uint8(3), uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, qubits, gates2q, topoSel, capacity, comm uint8) {
		tp := fuzzTopology(topoSel)
		cfg := machine.Config{
			Topology:     tp,
			Capacity:     2 + int(capacity)%16,
			CommCapacity: int(comm) % 3,
		}
		if cfg.CommCapacity >= cfg.Capacity {
			cfg.CommCapacity = cfg.Capacity - 1
		}
		maxIons := tp.NumTraps() * cfg.MaxInitialLoad()
		nq := 2 + int(qubits)%63
		if nq > maxIons {
			nq = maxIons
		}
		if nq < 2 {
			return // machine cannot hold a 2Q circuit
		}
		ng := 1 + int(gates2q)%96
		circ := bench.Random(nq, ng, seed)

		for name, comp := range map[string]*compiler.Compiler{
			"baseline": baseline.New(), "optimized": core.New(),
		} {
			res, err := comp.Compile(circ, cfg)
			if err != nil {
				// Some fuzzed machines are legitimately too tight to route
				// (saturated corridors); a structured compile error is the
				// correct outcome, not a finding.
				continue
			}
			if vs := Result(res); len(vs) != 0 {
				t.Fatalf("%s on %s (cap=%d comm=%d, %dq/%dg seed=%d): %d violations, first: %v",
					name, tp.Name(), cfg.Capacity, cfg.CommCapacity, nq, ng, seed, len(vs), vs[0])
			}
		}
	})
}

// fuzzTopology maps a selector byte onto the four topology families.
func fuzzTopology(sel uint8) *topo.Topology {
	switch sel % 4 {
	case 0:
		return topo.Linear(2 + int(sel/4)%7)
	case 1:
		return topo.Ring(3 + int(sel/4)%6)
	case 2:
		return topo.Grid(2, 2+int(sel/4)%4)
	default:
		// A fixed custom graph: a star with an extra rim edge.
		t, err := topo.New("fuzz-custom", 5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}})
		if err != nil {
			panic(err)
		}
		return t
	}
}
