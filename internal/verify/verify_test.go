package verify

import (
	"testing"

	"muzzle/internal/baseline"
	"muzzle/internal/bench"
	"muzzle/internal/circuit"
	"muzzle/internal/compiler"
	"muzzle/internal/core"
	"muzzle/internal/machine"
	"muzzle/internal/topo"
)

// l3 returns a 3-trap linear machine with small capacities, the workhorse
// of the hand-built invalid-stream tests.
func l3(capacity, comm int) machine.Config {
	return machine.Config{Topology: topo.Linear(3), Capacity: capacity, CommCapacity: comm}
}

// nativeCirc builds a small native circuit: ms q0,q1; r q2; measure q0.
func nativeCirc() *circuit.Circuit {
	c := circuit.New("v", 3)
	c.Add2Q("ms", 0, 1, 0.5)
	c.Add1Q("r", 2, 0.1, 0.2)
	c.AddMeasure(0, 0)
	return c
}

// placement3 spreads ions 0,1,2 over the three traps.
func placement3() [][]int { return [][]int{{0}, {1}, {2}} }

// gate1q builds a 1Q/measure op.
func gate1q(name string, ion, trap, gate int) machine.Op {
	kind := machine.OpGate1Q
	if name == "measure" {
		kind = machine.OpMeasure
	}
	return machine.Op{Kind: kind, Ion: ion, Ion2: -1, Trap: trap, Trap2: -1, Gate: gate, Name: name}
}

func gate2q(a, b, trap, gate int) machine.Op {
	return machine.Op{Kind: machine.OpGate2Q, Ion: a, Ion2: b, Trap: trap, Trap2: -1, Gate: gate, Name: "ms"}
}

func splitOp(ion, trap int) machine.Op {
	return machine.Op{Kind: machine.OpSplit, Ion: ion, Ion2: -1, Trap: trap, Trap2: -1, Gate: -1}
}

func moveOp(ion, from, to int) machine.Op {
	return machine.Op{Kind: machine.OpMove, Ion: ion, Ion2: -1, Trap: from, Trap2: to, Gate: -1}
}

func mergeOp(ion, trap int) machine.Op {
	return machine.Op{Kind: machine.OpMerge, Ion: ion, Ion2: -1, Trap: trap, Trap2: -1, Gate: -1}
}

// hop is the legal SPLIT MOVE MERGE sequence for one adjacent transfer.
func hop(ion, from, to int) []machine.Op {
	return []machine.Op{splitOp(ion, from), moveOp(ion, from, to), mergeOp(ion, to)}
}

// wantKind asserts exactly the given kinds appear among the violations.
func wantKind(t *testing.T, vs []Violation, kind Kind) {
	t.Helper()
	if len(vs) == 0 {
		t.Fatalf("expected a %s violation, got none", kind)
	}
	for _, v := range vs {
		if v.Kind == kind {
			return
		}
	}
	t.Fatalf("expected a %s violation, got %v", kind, vs)
}

func wantClean(t *testing.T, vs []Violation) {
	t.Helper()
	if len(vs) != 0 {
		t.Fatalf("expected a clean replay, got %d violations: %v", len(vs), vs)
	}
}

func TestReplayCleanHandBuilt(t *testing.T) {
	c := nativeCirc()
	// Bring ion 1 to trap 0, execute ms, r, measure.
	ops := append(hop(1, 1, 0),
		gate2q(0, 1, 0, 0),
		gate1q("r", 2, 2, 1),
		gate1q("measure", 0, 0, 2),
	)
	wantClean(t, Replay(c, l3(3, 1), placement3(), ops))
}

func TestReplayBadPlacement(t *testing.T) {
	c := nativeCirc()
	cfg := l3(3, 1)
	cases := map[string][][]int{
		"duplicate ion":   {{0, 0}, {1}, {2}},
		"wrong trapcount": {{0}, {1, 2}},
		"overload":        {{0, 1, 2}, {}, {}}, // MaxInitialLoad = 2
		"sparse ids":      {{0}, {1}, {5}},
	}
	for name, placement := range cases {
		t.Run(name, func(t *testing.T) {
			wantKind(t, Replay(c, cfg, placement, nil), KindPlacement)
		})
	}
	t.Run("too few ions", func(t *testing.T) {
		wantKind(t, Replay(c, cfg, [][]int{{0}, {1}, {}}, nil), KindPlacement)
	})
}

func TestReplayBadEdge(t *testing.T) {
	c := nativeCirc()
	ops := []machine.Op{splitOp(1, 1), moveOp(1, 1, 1+2)} // T1 -> T3 is out of range
	wantKind(t, Replay(c, l3(3, 1), placement3(), ops), KindPresence)

	// T0 -> T2 skips the middle trap: no such edge on a line.
	ops = []machine.Op{splitOp(0, 0), moveOp(0, 0, 2)}
	wantKind(t, Replay(c, l3(3, 1), placement3(), ops), KindEdge)
}

func TestReplayCapacityExceeded(t *testing.T) {
	c := nativeCirc()
	cfg := l3(2, 1) // capacity 2: trap 0 fills after one transfer
	ops := append(hop(1, 1, 0), hop(2, 2, 1)...)
	ops = append(ops, hop(2, 1, 0)...) // third ion into the full trap 0
	vs := Replay(c, cfg, placement3(), ops)
	wantKind(t, vs, KindCapacity)
	// Regression: an over-full final chain must not corrupt the ion census
	// into spurious "ion lost" conservation violations — every ion is
	// accounted for here, just over-packed.
	for _, v := range vs {
		if v.Kind == KindConservation {
			t.Fatalf("over-capacity chain produced a spurious conservation violation: %v", v)
		}
	}
}

func TestReplayPresence(t *testing.T) {
	c := nativeCirc()
	// r on ion 2 recorded in the wrong trap.
	wantKind(t, Replay(c, l3(3, 1), placement3(),
		[]machine.Op{gate1q("r", 2, 0, 1)}), KindPresence)
	// Gate on an ion that is mid-shuttle.
	ops := []machine.Op{splitOp(2, 2), gate1q("r", 2, 2, 1)}
	wantKind(t, Replay(c, l3(3, 1), placement3(), ops), KindPresence)
}

func TestReplayNotCoLocated(t *testing.T) {
	c := nativeCirc()
	// ms on ions 0 and 1 without shuttling them together.
	wantKind(t, Replay(c, l3(3, 1), placement3(),
		[]machine.Op{gate2q(0, 1, 0, 0)}), KindCoLocation)
}

func TestReplayProtocol(t *testing.T) {
	c := nativeCirc()
	cfg := l3(3, 1)
	t.Run("move without split", func(t *testing.T) {
		wantKind(t, Replay(c, cfg, placement3(), []machine.Op{moveOp(1, 1, 0)}), KindProtocol)
	})
	t.Run("merge without move", func(t *testing.T) {
		wantKind(t, Replay(c, cfg, placement3(), []machine.Op{mergeOp(1, 0)}), KindProtocol)
	})
	t.Run("split mid-chain", func(t *testing.T) {
		// A 2-ion chain has no middle; use 3 ions in one trap of capacity 4.
		cfg := l3(4, 1)
		placement := [][]int{{0, 1, 2}, {}, {}}
		wantKind(t, Replay(c, cfg, placement, []machine.Op{splitOp(1, 0)}), KindProtocol)
	})
	t.Run("split from wrong end", func(t *testing.T) {
		// Ion 0 sits at the low end of T0's chain; moving it to T1 (higher)
		// requires a split from the high end.
		cfg := l3(4, 1)
		placement := [][]int{{0, 1}, {2}, {}}
		ops := []machine.Op{splitOp(0, 0), moveOp(0, 0, 1)}
		wantKind(t, Replay(c, cfg, placement, ops), KindProtocol)
	})
	t.Run("swap non-adjacent", func(t *testing.T) {
		cfg := l3(4, 1)
		placement := [][]int{{0, 1, 2}, {}, {}}
		ops := []machine.Op{{Kind: machine.OpSwap, Ion: 0, Ion2: 2, Trap: 0, Trap2: -1, Gate: -1}}
		wantKind(t, Replay(c, cfg, placement, ops), KindProtocol)
	})
}

func TestReplayOrderViolations(t *testing.T) {
	// Two dependent 1Q gates on the same qubit.
	c := circuit.New("order", 1)
	c.Add1Q("r", 0, 0.1)
	c.Add1Q("rz", 0, 0.2)
	cfg := machine.Config{Topology: topo.Linear(1), Capacity: 3, CommCapacity: 1}
	placement := [][]int{{0}}

	t.Run("before predecessor", func(t *testing.T) {
		ops := []machine.Op{gate1q("rz", 0, 0, 1), gate1q("r", 0, 0, 0)}
		wantKind(t, Replay(c, cfg, placement, ops), KindOrder)
	})
	t.Run("executed twice", func(t *testing.T) {
		ops := []machine.Op{gate1q("r", 0, 0, 0), gate1q("r", 0, 0, 0), gate1q("rz", 0, 0, 1)}
		wantKind(t, Replay(c, cfg, placement, ops), KindOrder)
	})
	t.Run("never executed", func(t *testing.T) {
		ops := []machine.Op{gate1q("r", 0, 0, 0)}
		wantKind(t, Replay(c, cfg, placement, ops), KindOrder)
	})
	t.Run("name mismatch", func(t *testing.T) {
		ops := []machine.Op{gate1q("rz", 0, 0, 0), gate1q("rz", 0, 0, 1)}
		wantKind(t, Replay(c, cfg, placement, ops), KindOrder)
	})
	t.Run("gate index out of range", func(t *testing.T) {
		ops := []machine.Op{gate1q("r", 0, 0, 7), gate1q("rz", 0, 0, 1)}
		wantKind(t, Replay(c, cfg, placement, ops), KindOrder)
	})
}

func TestReplayOperandAndWiring(t *testing.T) {
	// Two measurements into distinct classical bits: executing gate 1's op
	// with gate 0's qubit breaks the recorded wiring.
	c := circuit.New("wiring", 2)
	c.AddMeasure(0, 1)
	c.AddMeasure(1, 0)
	cfg := l3(3, 1)
	placement := [][]int{{0, 1}, {}, {}}

	ops := []machine.Op{gate1q("measure", 0, 0, 0), gate1q("measure", 0, 0, 1)}
	wantKind(t, Replay(c, cfg, placement, ops), KindOrder)

	// Correct wiring is clean.
	ops = []machine.Op{gate1q("measure", 0, 0, 0), gate1q("measure", 1, 0, 1)}
	wantClean(t, Replay(c, cfg, placement, ops))
}

func TestReplayBarrierOrdering(t *testing.T) {
	// r q0; barrier q0,q1; r q1 — the barrier forces gate 0 before gate 2
	// even though they touch different qubits.
	c := circuit.New("barrier", 2)
	c.Add1Q("r", 0, 0.1)
	c.MustAppend(circuit.Gate{Name: "barrier", Qubits: []int{0, 1}})
	c.Add1Q("r", 1, 0.2)
	cfg := l3(3, 1)
	placement := [][]int{{0, 1}, {}, {}}

	good := []machine.Op{gate1q("r", 0, 0, 0), gate1q("r", 1, 0, 2)}
	wantClean(t, Replay(c, cfg, placement, good))

	bad := []machine.Op{gate1q("r", 1, 0, 2), gate1q("r", 0, 0, 0)}
	wantKind(t, Replay(c, cfg, placement, bad), KindOrder)
}

func TestReplayConservation(t *testing.T) {
	c := nativeCirc()
	// Ion split and moved but never merged.
	stream := []machine.Op{splitOp(1, 1), moveOp(1, 1, 0),
		gate1q("r", 2, 2, 1)}
	wantKind(t, Replay(c, l3(3, 1), placement3(), stream), KindConservation)

	// Ion split and abandoned.
	stream = []machine.Op{splitOp(1, 1)}
	wantKind(t, Replay(c, l3(3, 1), placement3(), stream), KindConservation)
}

func TestResultMetadataChecks(t *testing.T) {
	comp := core.New()
	res, err := comp.Compile(bench.QFT(8), machine.PaperL6())
	if err != nil {
		t.Fatal(err)
	}
	wantClean(t, Result(res))

	t.Run("counter mismatch", func(t *testing.T) {
		bad := *res
		bad.Shuttles++
		wantKind(t, Result(&bad), KindMetadata)
	})
	t.Run("order trace mismatch", func(t *testing.T) {
		bad := *res
		bad.Order = append([]int(nil), res.Order...)
		// Swapping two independent entries keeps the order DAG-valid in
		// most cases but desynchronizes it from the trace; swapping the
		// first two physical gates always breaks the trace match.
		bad.Order[0], bad.Order[1] = bad.Order[1], bad.Order[0]
		wantKind(t, Result(&bad), KindMetadata)
	})
	t.Run("missing order", func(t *testing.T) {
		bad := *res
		bad.Order = nil
		wantKind(t, Result(&bad), KindMetadata)
	})
	t.Run("summary only", func(t *testing.T) {
		bad := *res
		bad.InitialPlacement = nil
		bad.Ops = nil
		wantKind(t, Result(&bad), KindMetadata)
	})
	t.Run("tampered trace", func(t *testing.T) {
		bad := *res
		// Drop the final op (a gate or merge): execution coverage or the
		// shuttle protocol breaks either way.
		bad.Ops = res.Ops[:len(res.Ops)-1]
		if vs := Result(&bad); len(vs) == 0 {
			t.Fatal("truncated trace verified clean")
		}
	})
}

func TestReplayNeverPanics(t *testing.T) {
	c := nativeCirc()
	cfg := l3(3, 1)
	// A stream of structurally hostile ops: out-of-range ids everywhere.
	hostile := []machine.Op{
		{Kind: machine.OpMove, Ion: -4, Trap: -1, Trap2: 99, Gate: -1},
		{Kind: machine.OpGate2Q, Ion: 99, Ion2: -1, Trap: 2, Gate: 100, Name: "ms"},
		{Kind: machine.OpSwap, Ion: 0, Ion2: 0, Trap: 0, Gate: -1},
		{Kind: machine.OpKind(42), Ion: 0, Trap: 0},
		{Kind: machine.OpMerge, Ion: 1, Trap: 5, Gate: -1},
		{Kind: machine.OpSplit, Ion: 2, Trap: 2, Gate: -1},
		{Kind: machine.OpSplit, Ion: 2, Trap: 2, Gate: -1},
		// Kind/arity mismatches: a 2Q op executing the 1Q source gate 1 and
		// a 1Q op executing the 2Q source gate 0 (regression: the former
		// indexed g.Qubits[1] out of range).
		{Kind: machine.OpGate2Q, Ion: 0, Ion2: 1, Trap: 0, Gate: 1, Name: "ms"},
		{Kind: machine.OpGate1Q, Ion: 2, Ion2: -1, Trap: 2, Gate: 0, Name: "r"},
	}
	if vs := Replay(c, cfg, placement3(), hostile); len(vs) == 0 {
		t.Fatal("hostile stream verified clean")
	}
	if vs := Replay(nil, cfg, nil, nil); len(vs) == 0 {
		t.Fatal("nil circuit verified clean")
	}
	if vs := Replay(c, machine.Config{}, nil, nil); len(vs) == 0 {
		t.Fatal("nil topology verified clean")
	}
}

func TestReplayViolationCap(t *testing.T) {
	c := nativeCirc()
	var hostile []machine.Op
	for i := 0; i < 200; i++ {
		hostile = append(hostile, moveOp(1, 1, 0)) // move without split, 200 times
	}
	vs := Replay(c, l3(3, 1), placement3(), hostile)
	if len(vs) > maxViolations+1 {
		t.Fatalf("violation report not capped: %d entries", len(vs))
	}
}

// compilers returns the two reference compilers under test.
func compilers() map[string]*compiler.Compiler {
	return map[string]*compiler.Compiler{
		"baseline":  baseline.New(),
		"optimized": core.New(),
	}
}

// TestPaperSuiteZeroViolations runs both compilers over the paper's five
// NISQ benchmarks on the paper machine and asserts every schedule is legal.
func TestPaperSuiteZeroViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("paper suite compile in -short mode")
	}
	for _, spec := range bench.Catalog() {
		c := spec.Build()
		for name, comp := range compilers() {
			res, err := comp.Compile(c, machine.PaperL6())
			if err != nil {
				t.Fatalf("%s/%s: %v", spec.Name, name, err)
			}
			if vs := Result(res); len(vs) != 0 {
				t.Errorf("%s/%s: %d violations: %v", spec.Name, name, len(vs), vs[:min(len(vs), 5)])
			}
		}
	}
}

// TestTopologiesZeroViolations sweeps randomized circuits over linear,
// ring, grid, and custom topologies with tight capacities (to exercise
// re-balancing and hole-shifts) on both compilers.
func TestTopologiesZeroViolations(t *testing.T) {
	topos := map[string]*topo.Topology{
		"L6":   topo.Linear(6),
		"L3":   topo.Linear(3),
		"R6":   topo.Ring(6),
		"G2x3": topo.Grid(2, 3),
	}
	if custom, err := topo.New("star5", 5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}); err != nil {
		t.Fatal(err)
	} else {
		topos["star5"] = custom
	}
	for tname, tp := range topos {
		for _, sz := range []struct{ capacity, comm int }{{6, 2}, {4, 1}} {
			cfg := machine.Config{Topology: tp, Capacity: sz.capacity, CommCapacity: sz.comm}
			maxIons := tp.NumTraps() * cfg.MaxInitialLoad()
			for seed := int64(1); seed <= 4; seed++ {
				qubits := maxIons - 1 - int(seed)%3
				if qubits < 4 {
					qubits = 4
				}
				circ := bench.Random(qubits, 40, seed)
				for cname, comp := range compilers() {
					res, err := comp.Compile(circ, cfg)
					if err != nil {
						t.Fatalf("%s cap=%d %s seed=%d: %v", tname, sz.capacity, cname, seed, err)
					}
					if vs := Result(res); len(vs) != 0 {
						t.Errorf("%s cap=%d %s seed=%d: %d violations: %v",
							tname, sz.capacity, cname, seed, len(vs), vs[:min(len(vs), 5)])
					}
				}
			}
		}
	}
}
