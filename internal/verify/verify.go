// Package verify is the independent schedule verifier: it replays a
// compiled operation stream against the machine model from scratch —
// tracking ion positions, chain order, trap occupancy, and the
// split/move/merge shuttle protocol per op — and reports every physical or
// logical invariant the schedule breaks as a structured Violation.
//
// The verifier shares no state machinery with the compiler engine or the
// simulator: it maintains its own placement bookkeeping, so a bug common to
// both compilers (which the equivalence tests cannot see) still surfaces
// here. The checks are the paper's validity conditions:
//
//  1. every MOVE traverses a real topology edge into a trap with excess
//     capacity (a free slot to receive the shuttled ion);
//  2. no trap ever holds more ions than its total capacity, and the
//     initial placement respects the communication-capacity reservation;
//  3. every 1Q gate and measurement executes with its ion present in the
//     recorded trap, and every 2Q gate with both operands co-located there;
//  4. the executed gate sequence is a valid linearization of the source
//     circuit's dependency DAG, each physical gate executes exactly once,
//     and each trace op matches its source gate (name and operands — which
//     pins measurement Cbit wiring, since the op's Gate index addresses the
//     source gate carrying the classical target);
//  5. ions are conserved: none duplicated, lost, or left in transit.
//
// Violations carry the op index, a stable Kind, and a human-readable
// detail; an empty slice means the schedule is provably legal under the
// machine model. The verifier never panics on malformed input — arbitrary
// op streams (fuzzed, truncated, hand-built) produce violations, not
// crashes.
package verify

import (
	"fmt"
	"strings"

	"muzzle/internal/circuit"
	"muzzle/internal/dag"
	"muzzle/internal/machine"
)

// Kind is a stable violation category.
type Kind string

// Violation kinds.
const (
	// KindPlacement marks an invalid initial placement (non-dense ion ids,
	// duplicates, loads beyond the communication-capacity reservation).
	KindPlacement Kind = "placement"
	// KindEdge marks a MOVE between traps that share no topology edge.
	KindEdge Kind = "edge"
	// KindCapacity marks a trap filled beyond its total capacity (a MOVE
	// into a full trap, or an over-full chain after any op).
	KindCapacity Kind = "capacity"
	// KindPresence marks an op whose ion is not where the op claims
	// (wrong trap, unknown ion, or an ion currently in transit).
	KindPresence Kind = "presence"
	// KindCoLocation marks a 2Q gate whose operands sit in different traps.
	KindCoLocation Kind = "colocation"
	// KindProtocol marks a broken shuttle protocol: a SPLIT of a mid-chain
	// ion, a MOVE without a preceding SPLIT (or from the wrong chain end),
	// a MERGE without a MOVE, or a SWAP of non-adjacent ions.
	KindProtocol Kind = "protocol"
	// KindOrder marks a gate-order violation: a gate executed before one of
	// its DAG predecessors, executed twice, never executed, or an op that
	// does not match its source gate (name, operands, or kind) — the latter
	// also breaks measurement Cbit wiring, since the classical target lives
	// on the source gate the op's Gate index addresses.
	KindOrder Kind = "order"
	// KindConservation marks an ion lost, duplicated, or left in transit at
	// the end of the stream.
	KindConservation Kind = "conservation"
	// KindMetadata marks a Result whose summary counters or Order disagree
	// with its own op stream (Result-level checks only; Replay never
	// reports it).
	KindMetadata Kind = "metadata"
)

// Violation is one broken invariant of a schedule.
type Violation struct {
	// Op is the index into the op stream where the violation was detected;
	// -1 for stream-global violations (initial placement, end-of-stream
	// conservation, metadata mismatches).
	Op int `json:"op"`
	// Kind categorizes the violation.
	Kind Kind `json:"kind"`
	// Detail is a human-readable description.
	Detail string `json:"detail"`
}

// String renders the violation compactly.
func (v Violation) String() string {
	if v.Op < 0 {
		return fmt.Sprintf("[%s] %s", v.Kind, v.Detail)
	}
	return fmt.Sprintf("op %d [%s] %s", v.Op, v.Kind, v.Detail)
}

// Error is the typed error carrying a schedule's violations; the eval
// harness and the muzzled service fail verification with one of these.
type Error struct {
	// Circuit names the circuit whose schedule failed.
	Circuit string
	// Compiler names the compiler that produced the schedule (may be "").
	Compiler string
	// Violations holds every detected violation, in op order.
	Violations []Violation
}

// Error implements the error interface, listing the first violations.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify: schedule for %q", e.Circuit)
	if e.Compiler != "" {
		fmt.Fprintf(&b, " (compiler %s)", e.Compiler)
	}
	fmt.Fprintf(&b, " has %d violation(s)", len(e.Violations))
	for i, v := range e.Violations {
		if i == 3 {
			fmt.Fprintf(&b, "; ... %d more", len(e.Violations)-i)
			break
		}
		fmt.Fprintf(&b, "; %s", v.String())
	}
	return b.String()
}

// maxViolations caps the report: past it the replay stops and a truncation
// marker is appended, so one corrupt stream cannot cascade into an
// unbounded violation list.
const maxViolations = 32

// transit tracks an ion's shuttle-protocol phase.
type transit int

const (
	resident transit = iota // in a chain
	split                   // detached, awaiting MOVE
	moved                   // moved, awaiting MERGE
)

// replayer is the verifier's own machine state: it deliberately re-derives
// placement bookkeeping instead of reusing machine.State, so engine and
// verifier cannot share a bug.
type replayer struct {
	circ  *circuit.Circuit
	cfg   machine.Config
	graph *dag.Graph

	nIons  int
	trapOf []int   // ion -> trap (the chain it belongs to, or its protocol anchor while in transit)
	chains [][]int // trap -> ordered chain
	phase  []transit
	// splitEnd records which chain end the ion was detached from: 0 = low
	// end, 1 = high end, 2 = either (singleton chain). Valid while phase ==
	// split.
	splitEnd []int
	// moveFrom records the MOVE's source trap while phase == moved (the
	// MERGE must insert at the end facing it).
	moveFrom []int

	executed []bool // physical gates issued so far
	// barrierOK memoizes barrier satisfaction (monotone once true).
	barrierOK []bool

	violations []Violation
	truncated  bool
}

// report appends a violation, respecting the cap.
func (r *replayer) report(op int, kind Kind, format string, args ...any) {
	if len(r.violations) >= maxViolations {
		r.truncated = true
		return
	}
	r.violations = append(r.violations, Violation{Op: op, Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// Replay verifies an op stream against the machine model from scratch:
// circ is the scheduled (native) circuit, cfg the machine, initial the
// starting trap contents, ops the full execution trace. It returns every
// violation found (nil means the schedule is legal). The input is not
// modified.
func Replay(circ *circuit.Circuit, cfg machine.Config, initial [][]int, ops []machine.Op) []Violation {
	r := newReplayer(circ, cfg, initial)
	if r == nil || len(r.violations) > 0 {
		// A broken machine config or placement invalidates all downstream
		// state tracking; report what we have rather than cascade.
		if r != nil {
			return r.violations
		}
		return []Violation{{Op: -1, Kind: KindPlacement, Detail: "nil circuit, topology, or machine config"}}
	}
	for i := range ops {
		if len(r.violations) >= maxViolations {
			break
		}
		r.step(i, ops[i])
	}
	r.finalChecks()
	if r.truncated {
		r.violations = append(r.violations, Violation{Op: -1, Kind: KindMetadata,
			Detail: fmt.Sprintf("report truncated at %d violations", maxViolations)})
	}
	return r.violations
}

// newReplayer validates the configuration and initial placement and builds
// the tracking state. A nil return means the inputs were too malformed to
// replay at all.
func newReplayer(circ *circuit.Circuit, cfg machine.Config, initial [][]int) *replayer {
	if circ == nil || cfg.Topology == nil {
		return nil
	}
	r := &replayer{circ: circ, cfg: cfg}
	if err := cfg.Validate(); err != nil {
		r.report(-1, KindPlacement, "invalid machine config: %v", err)
		return r
	}
	if len(initial) != cfg.Topology.NumTraps() {
		r.report(-1, KindPlacement, "placement has %d traps, topology has %d",
			len(initial), cfg.Topology.NumTraps())
		return r
	}
	total := 0
	for _, chain := range initial {
		total += len(chain)
	}
	r.nIons = total
	r.trapOf = make([]int, total)
	r.phase = make([]transit, total)
	r.splitEnd = make([]int, total)
	r.moveFrom = make([]int, total)
	r.chains = make([][]int, len(initial))
	for i := range r.trapOf {
		r.trapOf[i] = -1
	}
	for t, chain := range initial {
		if len(chain) > cfg.MaxInitialLoad() {
			r.report(-1, KindPlacement,
				"trap %d initially holds %d ions, exceeding capacity %d minus communication reservation %d",
				t, len(chain), cfg.Capacity, cfg.CommCapacity)
		}
		r.chains[t] = append([]int(nil), chain...)
		for _, ion := range chain {
			if ion < 0 || ion >= total {
				r.report(-1, KindPlacement, "ion id %d outside dense range [0,%d)", ion, total)
				return r
			}
			if r.trapOf[ion] != -1 {
				r.report(-1, KindPlacement, "ion %d placed in trap %d and trap %d", ion, r.trapOf[ion], t)
				return r
			}
			r.trapOf[ion] = t
		}
	}
	if total < circ.NumQubits {
		r.report(-1, KindPlacement, "placement has %d ions, circuit needs %d", total, circ.NumQubits)
		return r
	}
	r.graph = dag.Build(circ)
	r.executed = make([]bool, len(circ.Gates))
	r.barrierOK = make([]bool, len(circ.Gates))
	return r
}

// ionOK guards an op's ion id; out-of-range ids make the op unreplayable.
func (r *replayer) ionOK(i int, ion int, role string) bool {
	if ion < 0 || ion >= r.nIons {
		r.report(i, KindPresence, "%s ion %d outside [0,%d)", role, ion, r.nIons)
		return false
	}
	return true
}

// trapOK guards an op's trap id.
func (r *replayer) trapOK(i int, trap int, role string) bool {
	if trap < 0 || trap >= len(r.chains) {
		r.report(i, KindPresence, "%s trap %d outside [0,%d)", role, trap, len(r.chains))
		return false
	}
	return true
}

// residentAt checks the ion is resident in the claimed trap; a failed check
// reports and returns false (the op's mutation is skipped to avoid
// cascading corruption).
func (r *replayer) residentAt(i int, ion, trap int) bool {
	switch r.phase[ion] {
	case split:
		r.report(i, KindPresence, "ion %d is split (awaiting MOVE), not resident", ion)
		return false
	case moved:
		r.report(i, KindPresence, "ion %d is in transit (awaiting MERGE), not resident", ion)
		return false
	}
	if r.trapOf[ion] != trap {
		r.report(i, KindPresence, "ion %d is in trap %d, op claims trap %d", ion, r.trapOf[ion], trap)
		return false
	}
	return true
}

// chainIndex returns ion's position in its chain, or -1.
func (r *replayer) chainIndex(ion int) int {
	for p, q := range r.chains[r.trapOf[ion]] {
		if q == ion {
			return p
		}
	}
	return -1
}

// step replays one op, reporting every invariant it breaks.
func (r *replayer) step(i int, op machine.Op) {
	switch op.Kind {
	case machine.OpGate1Q, machine.OpMeasure:
		r.stepGate1Q(i, op)
	case machine.OpGate2Q:
		r.stepGate2Q(i, op)
	case machine.OpSwap:
		r.stepSwap(i, op)
	case machine.OpSplit:
		r.stepSplit(i, op)
	case machine.OpMove:
		r.stepMove(i, op)
	case machine.OpMerge:
		r.stepMerge(i, op)
	default:
		r.report(i, KindProtocol, "unknown op kind %d", int(op.Kind))
	}
}

func (r *replayer) stepGate1Q(i int, op machine.Op) {
	if !r.ionOK(i, op.Ion, "gate") || !r.trapOK(i, op.Trap, "gate") {
		return
	}
	r.residentAt(i, op.Ion, op.Trap)
	want := circuit.Kind1Q
	if op.Kind == machine.OpMeasure {
		want = circuit.KindMeasure
	}
	g, ok := r.checkGate(i, op, want)
	if !ok {
		return
	}
	if len(g.Qubits) != 1 {
		r.report(i, KindOrder, "gate %d (%s) has %d operands, op executes it as 1Q",
			op.Gate, g.Name, len(g.Qubits))
		return
	}
	if g.Qubits[0] != op.Ion {
		r.report(i, KindOrder, "gate %d (%s) acts on q[%d], op executes ion %d",
			op.Gate, g.Name, g.Qubits[0], op.Ion)
	}
}

func (r *replayer) stepGate2Q(i int, op machine.Op) {
	if !r.ionOK(i, op.Ion, "gate") || !r.ionOK(i, op.Ion2, "gate") || !r.trapOK(i, op.Trap, "gate") {
		return
	}
	r.residentAt(i, op.Ion, op.Trap)
	if r.phase[op.Ion2] != resident {
		r.report(i, KindPresence, "ion %d is in transit during 2Q gate", op.Ion2)
	} else if r.trapOf[op.Ion2] != op.Trap {
		r.report(i, KindCoLocation, "2Q gate on ions %d (T%d) and %d (T%d): not co-located",
			op.Ion, r.trapOf[op.Ion], op.Ion2, r.trapOf[op.Ion2])
	}
	g, ok := r.checkGate(i, op, circuit.Kind2Q)
	if !ok {
		return
	}
	if len(g.Qubits) != 2 {
		// The kind mismatch is already reported by checkGate; returning here
		// keeps the verifier panic-free on ops that execute a 1Q source gate
		// as 2Q (g.Qubits[1] would be out of range).
		r.report(i, KindOrder, "gate %d (%s) has %d operands, op executes it as 2Q",
			op.Gate, g.Name, len(g.Qubits))
		return
	}
	qa, qb := g.Qubits[0], g.Qubits[1]
	if !(qa == op.Ion && qb == op.Ion2) && !(qa == op.Ion2 && qb == op.Ion) {
		r.report(i, KindOrder, "gate %d (%s) acts on q[%d],q[%d], op executes ions %d,%d",
			op.Gate, g.Name, qa, qb, op.Ion, op.Ion2)
	}
}

// checkGate validates the op's source-gate reference (index, kind, name,
// execute-once, DAG readiness) and marks it executed. It returns the source
// gate when the reference itself is usable.
func (r *replayer) checkGate(i int, op machine.Op, want circuit.GateKind) (circuit.Gate, bool) {
	if op.Gate < 0 || op.Gate >= len(r.circ.Gates) {
		r.report(i, KindOrder, "op references gate %d outside circuit of %d gates", op.Gate, len(r.circ.Gates))
		return circuit.Gate{}, false
	}
	g := r.circ.Gates[op.Gate]
	if k := g.Kind(); k != want {
		r.report(i, KindOrder, "op executes gate %d as %v, source gate is %v", op.Gate, want, k)
	}
	if g.Name != op.Name {
		r.report(i, KindOrder, "op names gate %d %q, source gate is %q", op.Gate, op.Name, g.Name)
	}
	if r.executed[op.Gate] {
		r.report(i, KindOrder, "gate %d (%s) executed twice", op.Gate, g.Name)
		return g, true
	}
	for _, p := range r.graph.Preds(op.Gate) {
		if !r.satisfied(p) {
			r.report(i, KindOrder, "gate %d (%s) executed before its predecessor %d (%s)",
				op.Gate, g.Name, p, r.circ.Gates[p].Name)
		}
	}
	r.executed[op.Gate] = true
	return g, true
}

// satisfied reports whether gate p's ordering effect is complete: physical
// gates must have executed; a barrier (which records no trace op) is
// satisfied once all of its own predecessors are. Barrier satisfaction is
// monotone, so it is memoized.
func (r *replayer) satisfied(p int) bool {
	if r.circ.Gates[p].Kind() != circuit.KindBarrier {
		return r.executed[p]
	}
	if r.barrierOK[p] {
		return true
	}
	for _, q := range r.graph.Preds(p) {
		if !r.satisfied(q) {
			return false
		}
	}
	r.barrierOK[p] = true
	return true
}

func (r *replayer) stepSwap(i int, op machine.Op) {
	if !r.ionOK(i, op.Ion, "swap") || !r.ionOK(i, op.Ion2, "swap") || !r.trapOK(i, op.Trap, "swap") {
		return
	}
	if !r.residentAt(i, op.Ion, op.Trap) || !r.residentAt(i, op.Ion2, op.Trap) {
		return
	}
	pa, pb := r.chainIndex(op.Ion), r.chainIndex(op.Ion2)
	if pa-pb != 1 && pb-pa != 1 {
		r.report(i, KindProtocol, "swap of non-adjacent ions %d (pos %d) and %d (pos %d) in trap %d",
			op.Ion, pa, op.Ion2, pb, op.Trap)
		return
	}
	chain := r.chains[op.Trap]
	chain[pa], chain[pb] = chain[pb], chain[pa]
}

func (r *replayer) stepSplit(i int, op machine.Op) {
	if !r.ionOK(i, op.Ion, "split") || !r.trapOK(i, op.Trap, "split") {
		return
	}
	if !r.residentAt(i, op.Ion, op.Trap) {
		return
	}
	chain := r.chains[op.Trap]
	p := r.chainIndex(op.Ion)
	switch {
	case len(chain) == 1:
		r.splitEnd[op.Ion] = 2
	case p == 0:
		r.splitEnd[op.Ion] = 0
	case p == len(chain)-1:
		r.splitEnd[op.Ion] = 1
	default:
		r.report(i, KindProtocol, "split of mid-chain ion %d (pos %d of %d) in trap %d",
			op.Ion, p, len(chain), op.Trap)
		return
	}
	r.chains[op.Trap] = append(chain[:p], chain[p+1:]...)
	r.phase[op.Ion] = split
}

func (r *replayer) stepMove(i int, op machine.Op) {
	if !r.ionOK(i, op.Ion, "move") || !r.trapOK(i, op.Trap, "move source") || !r.trapOK(i, op.Trap2, "move destination") {
		return
	}
	if r.phase[op.Ion] != split {
		r.report(i, KindProtocol, "move of ion %d without a preceding split", op.Ion)
		return
	}
	if r.trapOf[op.Ion] != op.Trap {
		r.report(i, KindPresence, "move claims source trap %d, ion %d was split from trap %d",
			op.Trap, op.Ion, r.trapOf[op.Ion])
		return
	}
	adjacent := false
	for _, nb := range r.cfg.Topology.Neighbors(op.Trap) {
		if nb == op.Trap2 {
			adjacent = true
			break
		}
	}
	if !adjacent {
		r.report(i, KindEdge, "move of ion %d from trap %d to trap %d: no such topology edge",
			op.Ion, op.Trap, op.Trap2)
	}
	// The split must have detached the ion from the chain end facing the
	// destination: the high end toward a higher-numbered trap, the low end
	// toward a lower-numbered one (the machine model's port convention).
	wantEnd := 0
	if op.Trap2 > op.Trap {
		wantEnd = 1
	}
	if e := r.splitEnd[op.Ion]; e != 2 && e != wantEnd {
		r.report(i, KindProtocol, "ion %d split from the chain end facing away from destination trap %d",
			op.Ion, op.Trap2)
	}
	if len(r.chains[op.Trap2]) >= r.cfg.Capacity {
		r.report(i, KindCapacity, "move of ion %d into trap %d which is full (%d/%d ions, no communication slot free)",
			op.Ion, op.Trap2, len(r.chains[op.Trap2]), r.cfg.Capacity)
	}
	r.phase[op.Ion] = moved
	r.moveFrom[op.Ion] = op.Trap
	r.trapOf[op.Ion] = op.Trap2
}

func (r *replayer) stepMerge(i int, op machine.Op) {
	if !r.ionOK(i, op.Ion, "merge") || !r.trapOK(i, op.Trap, "merge") {
		return
	}
	if r.phase[op.Ion] != moved {
		r.report(i, KindProtocol, "merge of ion %d without a preceding move", op.Ion)
		return
	}
	if r.trapOf[op.Ion] != op.Trap {
		r.report(i, KindPresence, "merge claims trap %d, ion %d moved to trap %d",
			op.Trap, op.Ion, r.trapOf[op.Ion])
		return
	}
	// Insert at the end facing the source trap (the machine model's merge
	// convention: an ion entering from a lower-numbered trap lands at the
	// low end, and vice versa).
	chain := r.chains[op.Trap]
	if r.moveFrom[op.Ion] < op.Trap {
		chain = append([]int{op.Ion}, chain...)
	} else {
		chain = append(chain, op.Ion)
	}
	r.chains[op.Trap] = chain
	r.phase[op.Ion] = resident
	if len(chain) > r.cfg.Capacity {
		r.report(i, KindCapacity, "trap %d holds %d ions after merge, capacity %d",
			op.Trap, len(chain), r.cfg.Capacity)
	}
}

// finalChecks runs the end-of-stream invariants: full execution coverage
// and ion conservation.
func (r *replayer) finalChecks() {
	if len(r.violations) >= maxViolations {
		r.truncated = true
		return
	}
	for g, done := range r.executed {
		if done || r.circ.Gates[g].Kind() == circuit.KindBarrier {
			continue
		}
		r.report(-1, KindOrder, "gate %d (%s) never executed", g, r.circ.Gates[g].Name)
	}
	for ion := 0; ion < r.nIons; ion++ {
		switch r.phase[ion] {
		case split:
			r.report(-1, KindConservation, "ion %d left split (never moved) at end of stream", ion)
		case moved:
			r.report(-1, KindConservation, "ion %d left in transit (never merged) at end of stream", ion)
		}
	}
	// Conservation: every ion in exactly one chain. Per-op tracking keeps
	// this by construction unless an op corrupted state; re-derive to be
	// safe against the repair paths.
	seen := make([]int, r.nIons)
	total := 0
	for t, chain := range r.chains {
		total += len(chain)
		if len(chain) > r.cfg.Capacity {
			r.report(-1, KindCapacity, "trap %d holds %d ions at end of stream, capacity %d",
				t, len(chain), r.cfg.Capacity)
		}
		for _, ion := range chain {
			if ion >= 0 && ion < r.nIons {
				seen[ion]++
			}
		}
	}
	for ion, n := range seen {
		switch {
		case n > 1:
			r.report(-1, KindConservation, "ion %d appears in %d chains", ion, n)
		case n == 0 && r.phase[ion] == resident:
			r.report(-1, KindConservation, "ion %d lost (in no chain)", ion)
		}
	}
	if total > r.nIons {
		r.report(-1, KindConservation, "chains hold %d ions, stream started with %d", total, r.nIons)
	}
}
