package verify

import (
	"fmt"

	"muzzle/internal/circuit"
	"muzzle/internal/compiler"
	"muzzle/internal/dag"
	"muzzle/internal/machine"
)

// Result verifies a full compilation result: the op-stream replay of
// Replay plus the Result-level consistency checks — the summary counters
// must agree with the trace, and the recorded gate Order must be a valid
// DAG linearization whose physical subsequence matches the executed trace.
// An empty slice means the schedule is provably legal.
//
// Summary-only results (reloaded from the compile cache's disk tier, which
// drops the operation trace) cannot be replayed; they yield a single
// KindMetadata violation saying so.
func Result(res *compiler.Result) []Violation {
	if res == nil {
		return []Violation{{Op: -1, Kind: KindMetadata, Detail: "nil compile result"}}
	}
	if res.Circ == nil {
		return []Violation{{Op: -1, Kind: KindMetadata, Detail: "result carries no circuit"}}
	}
	if res.InitialPlacement == nil {
		return []Violation{{Op: -1, Kind: KindMetadata,
			Detail: "result carries no operation trace (summary-only, e.g. reloaded from the disk cache); recompile to verify"}}
	}
	vs := Replay(res.Circ, res.Config, res.InitialPlacement, res.Ops)
	vs = append(vs, checkCounters(res)...)
	vs = append(vs, checkOrder(res)...)
	return vs
}

// checkCounters cross-checks the result's summary counters against its own
// op stream.
func checkCounters(res *compiler.Result) []Violation {
	var counts [8]int
	for _, op := range res.Ops {
		if k := int(op.Kind); k >= 0 && k < len(counts) {
			counts[k]++
		}
	}
	var vs []Violation
	check := func(name string, have int, kind machine.OpKind) {
		if want := counts[kind]; have != want {
			vs = append(vs, Violation{Op: -1, Kind: KindMetadata,
				Detail: fmt.Sprintf("result reports %d %s, trace holds %d", have, name, want)})
		}
	}
	check("shuttles", res.Shuttles, machine.OpMove)
	check("swaps", res.Swaps, machine.OpSwap)
	check("splits", res.Splits, machine.OpSplit)
	check("merges", res.Merges, machine.OpMerge)
	check("2Q gates", res.Gates2Q, machine.OpGate2Q)
	check("1Q gates", res.Gates1Q, machine.OpGate1Q)
	return vs
}

// checkOrder validates the recorded gate Order: a permutation respecting
// every dependency edge whose physical subsequence equals the trace's
// executed gate sequence.
func checkOrder(res *compiler.Result) []Violation {
	if res.Order == nil {
		return []Violation{{Op: -1, Kind: KindMetadata, Detail: "result carries no gate order"}}
	}
	g := dag.Build(res.Circ)
	if err := g.ValidOrder(res.Order); err != nil {
		return []Violation{{Op: -1, Kind: KindMetadata, Detail: fmt.Sprintf("recorded order invalid: %v", err)}}
	}
	// The trace's gate ops, in stream order, must equal Order restricted to
	// physical (non-barrier) gates.
	var vs []Violation
	pos := 0
	next := func() (int, bool) {
		for pos < len(res.Order) {
			idx := res.Order[pos]
			pos++
			if res.Circ.Gates[idx].Kind() != circuit.KindBarrier {
				return idx, true
			}
		}
		return -1, false
	}
	for i, op := range res.Ops {
		switch op.Kind {
		case machine.OpGate1Q, machine.OpGate2Q, machine.OpMeasure:
		default:
			continue
		}
		want, ok := next()
		if !ok {
			vs = append(vs, Violation{Op: i, Kind: KindMetadata,
				Detail: "trace executes more gates than the recorded order lists"})
			return vs
		}
		if op.Gate != want {
			vs = append(vs, Violation{Op: i, Kind: KindMetadata,
				Detail: fmt.Sprintf("trace executes gate %d where the recorded order lists gate %d", op.Gate, want)})
			return vs
		}
	}
	if _, ok := next(); ok {
		vs = append(vs, Violation{Op: -1, Kind: KindMetadata,
			Detail: "recorded order lists more physical gates than the trace executes"})
	}
	return vs
}
