package eval

import (
	"context"
	"math"
	"strings"
	"testing"

	"muzzle/internal/bench"
	"muzzle/internal/machine"
	"muzzle/internal/topo"
)

// smallOptions shrinks the machine and suite so tests stay fast while
// exercising the full pipeline.
func smallOptions() Options {
	opt := DefaultOptions()
	opt.Random = bench.RandomSuiteParams{
		Sizes:     []int{12, 16},
		PerSize:   2,
		GatesMean: 60,
		GatesStd:  15,
		MinGates:  20,
		MaxGates:  120,
		Seed:      7,
	}
	opt.Config = machine.Config{Topology: topo.Linear(4), Capacity: 8, CommCapacity: 2}
	return opt
}

func TestRunCircuitProducesBothSides(t *testing.T) {
	opt := smallOptions()
	c := bench.Random(12, 60, 3)
	r, err := RunCircuit(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	base, optOut := r.Pair()
	if base == nil || optOut == nil || base.Result == nil || optOut.Result == nil || base.Sim == nil || optOut.Sim == nil {
		t.Fatal("missing result parts")
	}
	if r.Outcome("baseline") != base || r.Outcome("optimized") != optOut {
		t.Fatal("Pair does not match named outcomes")
	}
	if r.Gates2Q != 60 {
		t.Errorf("Gates2Q = %d, want 60", r.Gates2Q)
	}
	d, pct := r.Reduction()
	if d != base.Result.Shuttles-optOut.Result.Shuttles {
		t.Error("Reduction delta wrong")
	}
	wantPct := 100 * float64(d) / float64(base.Result.Shuttles)
	if math.Abs(pct-wantPct) > 1e-9 {
		t.Error("Reduction pct wrong")
	}
	if imp := r.Improvement(); imp <= 0 {
		t.Errorf("Improvement = %g", imp)
	}
}

func TestRunRandomParallelDeterministic(t *testing.T) {
	opt := smallOptions()
	opt.Parallelism = 4
	a, err := RunRandom(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallelism = 1
	b, err := RunRandom(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("suite sizes %d/%d, want 4", len(a), len(b))
	}
	for i := range a {
		ab, ao := a[i].Pair()
		bb, bo := b[i].Pair()
		if a[i].Name != b[i].Name ||
			ab.Result.Shuttles != bb.Result.Shuttles ||
			ao.Result.Shuttles != bo.Result.Shuttles {
			t.Fatalf("parallel run differs at %d: %s %d/%d vs %s %d/%d",
				i, a[i].Name, ab.Result.Shuttles, ao.Result.Shuttles,
				b[i].Name, bb.Result.Shuttles, bo.Result.Shuttles)
		}
	}
}

func TestRandomLimit(t *testing.T) {
	opt := smallOptions()
	opt.RandomLimit = 2
	rs, err := RunRandom(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("limit ignored: %d results", len(rs))
	}
}

func TestProgressOutput(t *testing.T) {
	opt := smallOptions()
	opt.RandomLimit = 1
	var sb strings.Builder
	opt.Progress = &sb
	if _, err := RunRandom(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "base=") {
		t.Errorf("progress output missing: %q", sb.String())
	}
}

func TestStats(t *testing.T) {
	s := NewStats([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %g", s.Mean)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Errorf("std = %g, want 2", s.Std)
	}
	empty := NewStats(nil)
	if empty.Mean != 0 || empty.Std != 0 || empty.N != 0 {
		t.Error("empty stats wrong")
	}
}

func TestTableFormatting(t *testing.T) {
	opt := smallOptions()
	opt.RandomLimit = 2
	random, err := RunRandom(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Use the same results as a stand-in NISQ list for format checking.
	t2 := TableII(random, random)
	for _, want := range []string{"TABLE II", "This Work", "%Δ", "Random(n=2)"} {
		if !strings.Contains(t2, want) {
			t.Errorf("TableII missing %q:\n%s", want, t2)
		}
	}
	f8 := Figure8(random, random)
	for _, want := range []string{"FIG. 8", "X |", "Random"} {
		if !strings.Contains(f8, want) {
			t.Errorf("Figure8 missing %q:\n%s", want, f8)
		}
	}
	t3 := TableIII(random, random)
	for _, want := range []string{"TABLE III", "This work (sec)", "[7] (sec)"} {
		if !strings.Contains(t3, want) {
			t.Errorf("TableIII missing %q:\n%s", want, t3)
		}
	}
	sum := Summary(random, nil)
	if !strings.Contains(sum, "max shuttle reduction") {
		t.Errorf("Summary = %q", sum)
	}
	if Summary(nil, nil) != "no results" {
		t.Error("empty summary wrong")
	}
}

// TestNISQShapeHolds is the headline integration test: on the full paper
// hardware model, the optimized compiler must beat the baseline on every
// NISQ benchmark, with reductions in the paper's 19-51%-ish band and
// fidelity improvements > 1 everywhere.
func TestNISQShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full NISQ evaluation in -short mode")
	}
	opt := DefaultOptions()
	results, err := RunNISQ(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		d, pct := r.Reduction()
		base, opt := r.Pair()
		if d <= 0 {
			t.Errorf("%s: optimized (%d) did not beat baseline (%d)", r.Name, opt.Result.Shuttles, base.Result.Shuttles)
		}
		if pct < 10 || pct > 70 {
			t.Errorf("%s: reduction %.1f%% outside plausible band", r.Name, pct)
		}
		if imp := r.Improvement(); imp <= 1 {
			t.Errorf("%s: fidelity improvement %.2fX, want > 1 (Fig. 8)", r.Name, imp)
		}
	}
	// QFT (all-to-all, low shuttle-to-gate ratio) must show the smallest
	// fidelity improvement, as the paper's Section IV-C analysis predicts.
	var qftImp, minOther float64
	minOther = math.Inf(1)
	for _, r := range results {
		if r.Name == "QFT64" || r.Name == "QFT" {
			qftImp = r.Improvement()
		} else if imp := r.Improvement(); imp < minOther {
			minOther = imp
		}
	}
	if qftImp > minOther {
		t.Errorf("QFT improvement %.2fX should be the smallest (others >= %.2fX)", qftImp, minOther)
	}
}

// TestRandomSubsetShapeHolds verifies the random-circuit claim on a subset:
// the optimized compiler wins on every circuit (the paper reports wins on
// all 120).
func TestRandomSubsetShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("random subset evaluation in -short mode")
	}
	opt := DefaultOptions()
	opt.RandomLimit = 10
	results, err := RunRandom(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if base, opt := r.Pair(); opt.Result.Shuttles >= base.Result.Shuttles {
			t.Errorf("%s: optimized %d >= baseline %d", r.Name, opt.Result.Shuttles, base.Result.Shuttles)
		}
	}
}
