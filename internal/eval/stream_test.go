package eval

import (
	"context"
	"errors"
	"strings"
	"testing"

	"muzzle/internal/bench"
	"muzzle/internal/circuit"
	"muzzle/internal/compiler"
	"muzzle/internal/core"
	"muzzle/internal/registry"
)

// TestRunAllPartialFailure pins the partial-failure contract: one bad
// circuit must not discard the completed ones, and every failure must
// surface through the joined error.
func TestRunAllPartialFailure(t *testing.T) {
	opt := smallOptions() // Linear(4) x capacity 8 = 32 ion slots
	circuits := []*circuit.Circuit{
		bench.Random(12, 40, 1),
		bench.Random(60, 80, 2), // 60 qubits cannot fit: compile fails
		bench.Random(16, 40, 3),
	}
	results, err := RunAll(context.Background(), circuits, opt)
	if err == nil {
		t.Fatal("expected an error from the oversized circuit")
	}
	if len(results) != 2 {
		t.Fatalf("got %d partial results, want 2", len(results))
	}
	if results[0].Name != circuits[0].Name || results[1].Name != circuits[2].Name {
		t.Errorf("partial results out of input order: %s, %s", results[0].Name, results[1].Name)
	}
	if !strings.Contains(err.Error(), circuits[1].Name) {
		t.Errorf("joined error does not name the failed circuit: %v", err)
	}
}

// TestRunAllAllFail: with every circuit failing, results are empty and the
// error joins every failure.
func TestRunAllAllFail(t *testing.T) {
	opt := smallOptions()
	circuits := []*circuit.Circuit{
		bench.Random(60, 80, 1),
		bench.Random(70, 80, 2),
	}
	results, err := RunAll(context.Background(), circuits, opt)
	if err == nil {
		t.Fatal("expected error")
	}
	if len(results) != 0 {
		t.Fatalf("got %d results, want 0", len(results))
	}
	for _, c := range circuits {
		if !strings.Contains(err.Error(), c.Name) {
			t.Errorf("joined error missing circuit %s: %v", c.Name, err)
		}
	}
}

// TestStreamEmitsEveryCircuit verifies the stream sends exactly one item
// per circuit and the typed progress callback sees starts and terminals.
func TestStreamEmitsEveryCircuit(t *testing.T) {
	opt := smallOptions()
	var started, completed, failed int
	opt.OnEvent = func(ev Event) {
		switch ev.Kind {
		case EventStarted:
			started++
		case EventCompleted:
			completed++
		case EventFailed:
			failed++
		}
		if ev.Total != 3 {
			t.Errorf("event Total = %d, want 3", ev.Total)
		}
	}
	circuits := []*circuit.Circuit{
		bench.Random(12, 40, 1),
		bench.Random(60, 80, 2), // fails
		bench.Random(16, 40, 3),
	}
	seen := map[int]bool{}
	for item := range Stream(context.Background(), circuits, opt) {
		if seen[item.Index] {
			t.Errorf("duplicate item for index %d", item.Index)
		}
		seen[item.Index] = true
		if (item.Result == nil) == (item.Err == nil) {
			t.Errorf("item %d: exactly one of Result/Err must be set", item.Index)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("streamed %d items, want 3", len(seen))
	}
	if started != 3 || completed != 2 || failed != 1 {
		t.Errorf("events started=%d completed=%d failed=%d, want 3/2/1", started, completed, failed)
	}
}

// TestCancellationMidRun cancels after the first completed circuit and
// checks the run stops promptly, keeps the finished work, and reports
// context.Canceled.
func TestCancellationMidRun(t *testing.T) {
	opt := smallOptions()
	opt.Parallelism = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt.OnEvent = func(ev Event) {
		if ev.Kind == EventCompleted {
			cancel()
		}
	}
	var circuits []*circuit.Circuit
	for i := 0; i < 8; i++ {
		circuits = append(circuits, bench.Random(12, 40, int64(i)))
	}
	results, err := RunAll(ctx, circuits, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) == 0 || len(results) >= len(circuits) {
		t.Errorf("got %d results after cancel, want partial (0 < n < %d)", len(results), len(circuits))
	}
}

// TestCancellationBeforeStart: an already-canceled context yields no
// results and context.Canceled without compiling anything.
func TestCancellationBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := smallOptions()
	opt.RandomLimit = 2
	results, err := RunRandom(ctx, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != 0 {
		t.Errorf("got %d results, want 0", len(results))
	}
}

// TestThirdCompilerViaRegistry: a compiler registered under a new name
// participates in a run with no harness changes, and the Matrix renderer
// shows its column.
func TestThirdCompilerViaRegistry(t *testing.T) {
	name := "eval-test-noreorder"
	if !registry.Has(name) {
		err := registry.Register(name, func() *compiler.Compiler {
			return core.NewWithOptions(core.Options{DisableReorder: true})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	opt := smallOptions()
	opt.Compilers = []string{registry.Baseline, registry.Optimized, name}
	r, err := RunCircuit(context.Background(), bench.Random(14, 60, 9), opt)
	if err != nil {
		t.Fatal(err)
	}
	third := r.Outcome(name)
	if third == nil || third.Result == nil || third.Sim == nil {
		t.Fatal("third compiler outcome missing")
	}
	base, optOut := r.Pair()
	if base.Compiler != registry.Baseline || optOut.Compiler != registry.Optimized {
		t.Errorf("Pair picked %s/%s, want baseline/optimized", base.Compiler, optOut.Compiler)
	}
	m := Matrix([]*BenchResult{r})
	if !strings.Contains(m, name) {
		t.Errorf("Matrix missing third compiler column:\n%s", m)
	}
}

// TestMapperOption: a custom initial-mapping policy flows through the run.
func TestMapperOption(t *testing.T) {
	opt := smallOptions()
	opt.Mapper = compiler.RoundRobinMapper{}
	r, err := RunCircuit(context.Background(), bench.Random(12, 40, 4), opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Gates2Q != 40 {
		t.Errorf("Gates2Q = %d, want 40", r.Gates2Q)
	}
}

// TestUnknownCompilerName: an unresolved name fails the circuit cleanly.
func TestUnknownCompilerName(t *testing.T) {
	opt := smallOptions()
	opt.Compilers = []string{"definitely-not-registered"}
	_, err := RunCircuit(context.Background(), bench.Random(12, 40, 4), opt)
	if err == nil || !strings.Contains(err.Error(), "definitely-not-registered") {
		t.Fatalf("err = %v, want unknown-compiler error", err)
	}
}
