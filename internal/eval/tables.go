package eval

import (
	"fmt"
	"math"
	"strings"
)

// TableII formats the shuttle-reduction table in the layout of paper
// Table II: one row per NISQ benchmark plus an aggregate Random row with
// mean (std) statistics.
func TableII(nisq, random []*BenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II — REDUCTION IN THE NUMBER OF SHUTTLES\n")
	fmt.Fprintf(&b, "%-14s %-7s %-10s %9s %10s %7s %8s\n",
		"Benchmark", "Qubits", "2Q gates", "[7]", "This Work", "Δ(↓)", "%Δ")
	for _, r := range nisq {
		d, pct := r.Reduction()
		base, opt := r.Pair()
		fmt.Fprintf(&b, "%-14s %-7d %-10d %9d %10d %7d %7.2f%%\n",
			r.Name, r.Qubits, r.Gates2Q, base.Result.Shuttles, opt.Result.Shuttles, d, pct)
	}
	if len(random) > 0 {
		var gates, base, opt, delta, pct []float64
		minQ, maxQ := random[0].Qubits, random[0].Qubits
		for _, r := range random {
			ob, oo := r.Pair()
			gates = append(gates, float64(r.Gates2Q))
			base = append(base, float64(ob.Result.Shuttles))
			opt = append(opt, float64(oo.Result.Shuttles))
			d, p := r.Reduction()
			delta = append(delta, float64(d))
			pct = append(pct, p)
			if r.Qubits < minQ {
				minQ = r.Qubits
			}
			if r.Qubits > maxQ {
				maxQ = r.Qubits
			}
		}
		g, bs, os, ds, ps := NewStats(gates), NewStats(base), NewStats(opt), NewStats(delta), NewStats(pct)
		fmt.Fprintf(&b, "%-14s %d-%-4d %4.0f (%.0f) %9.0f %5.0f (%.0f) %7.0f %5.0f%% (%.0f)\n",
			fmt.Sprintf("Random(n=%d)", len(random)), minQ, maxQ,
			g.Mean, g.Std, bs.Mean, os.Mean, os.Std, ds.Mean, ps.Mean, ps.Std)
	}
	return b.String()
}

// Figure8 formats the program-fidelity improvement chart of paper Fig. 8 as
// a labelled series (benchmark -> improvement factor) with an ASCII bar per
// entry.
func Figure8(nisq, random []*BenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG. 8 — PROGRAM FIDELITY IMPROVEMENT (X = optimized/baseline)\n")
	type row struct {
		name string
		x    float64
	}
	var rows []row
	for _, r := range nisq {
		rows = append(rows, row{r.Name, r.Improvement()})
	}
	if len(random) > 0 {
		// Geometric mean: the statistically meaningful average for ratio
		// data — an arithmetic mean of per-circuit improvement factors is
		// dominated by a handful of very hot baseline outliers.
		sumLog := 0.0
		for _, r := range random {
			ob, oo := r.Pair()
			sumLog += oo.Sim.LogFidelity - ob.Sim.LogFidelity
		}
		rows = append(rows, row{"Random", math.Exp(sumLog / float64(len(random)))})
	}
	maxX := 1.0
	for _, r := range rows {
		if r.x > maxX {
			maxX = r.x
		}
	}
	for _, r := range rows {
		bar := int(40 * r.x / maxX)
		if bar < 1 {
			bar = 1
		}
		fmt.Fprintf(&b, "%-14s %8.2fX |%s\n", r.name, r.x, strings.Repeat("#", bar))
	}
	return b.String()
}

// TableIII formats the compilation-time table of paper Table III.
func TableIII(nisq, random []*BenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE III — COMPILATION TIME OVERHEAD\n")
	fmt.Fprintf(&b, "%-14s %18s %12s %10s\n",
		"Benchmark", "This work (sec)", "[7] (sec)", "Δ(↑) (sec)")
	for _, r := range nisq {
		base, opt := r.Pair()
		to := opt.Result.CompileTime.Seconds()
		tb := base.Result.CompileTime.Seconds()
		fmt.Fprintf(&b, "%-14s %18.3f %12.3f %10.3f\n", r.Name, to, tb, to-tb)
	}
	if len(random) > 0 {
		var to, tb, dt []float64
		for _, r := range random {
			base, opt := r.Pair()
			o := opt.Result.CompileTime.Seconds()
			bl := base.Result.CompileTime.Seconds()
			to = append(to, o)
			tb = append(tb, bl)
			dt = append(dt, o-bl)
		}
		so, sb, sd := NewStats(to), NewStats(tb), NewStats(dt)
		fmt.Fprintf(&b, "%-14s %10.3f (%.3f) %12.3f %4.3f (%.3f)\n",
			"Random", so.Mean, so.Std, sb.Mean, sd.Mean, sd.Std)
	}
	return b.String()
}

// Summary prints the one-line headline the paper's abstract reports: max
// and average percentage reduction over all evaluated circuits, and the max
// fidelity improvement.
func Summary(nisq, random []*BenchResult) string {
	all := append(append([]*BenchResult{}, nisq...), random...)
	if len(all) == 0 {
		return "no results"
	}
	maxPct, sumPct := 0.0, 0.0
	maxImp := 0.0
	wins := 0
	for _, r := range all {
		_, pct := r.Reduction()
		sumPct += pct
		if pct > maxPct {
			maxPct = pct
		}
		if imp := r.Improvement(); imp > maxImp {
			maxImp = imp
		}
		if base, opt := r.Pair(); opt.Result.Shuttles < base.Result.Shuttles {
			wins++
		}
	}
	return fmt.Sprintf(
		"circuits=%d  wins=%d  max shuttle reduction=%.2f%%  avg=%.2f%%  max fidelity improvement=%.2fX",
		len(all), wins, maxPct, sumPct/float64(len(all)), maxImp)
}

// Matrix renders the N-compiler generalization of Table II: one row per
// circuit with a shuttle-count column for every compiler of the run (in run
// order), so registry-added compilers appear alongside the paper's pair.
func Matrix(results []*BenchResult) string {
	var b strings.Builder
	if len(results) == 0 {
		return "no results\n"
	}
	names := results[0].Compilers
	fmt.Fprintf(&b, "SHUTTLES BY COMPILER\n")
	fmt.Fprintf(&b, "%-20s %-7s", "Benchmark", "Qubits")
	for _, n := range names {
		fmt.Fprintf(&b, " %14s", n)
	}
	b.WriteString("\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-20s %-7d", r.Name, r.Qubits)
		for _, n := range names {
			if o := r.Outcome(n); o != nil {
				fmt.Fprintf(&b, " %14d", o.Result.Shuttles)
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
