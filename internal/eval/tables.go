package eval

import (
	"fmt"
	"math"
	"strings"
)

// TableII formats the shuttle-reduction table in the layout of paper
// Table II: one row per NISQ benchmark plus an aggregate Random row with
// mean (std) statistics.
func TableII(nisq, random []*BenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II — REDUCTION IN THE NUMBER OF SHUTTLES\n")
	fmt.Fprintf(&b, "%-14s %-7s %-10s %9s %10s %7s %8s\n",
		"Benchmark", "Qubits", "2Q gates", "[7]", "This Work", "Δ(↓)", "%Δ")
	for _, r := range nisq {
		d, pct := r.Reduction()
		fmt.Fprintf(&b, "%-14s %-7d %-10d %9d %10d %7d %7.2f%%\n",
			r.Name, r.Qubits, r.Gates2Q, r.Baseline.Shuttles, r.Optimized.Shuttles, d, pct)
	}
	if len(random) > 0 {
		var gates, base, opt, delta, pct []float64
		minQ, maxQ := random[0].Qubits, random[0].Qubits
		for _, r := range random {
			gates = append(gates, float64(r.Gates2Q))
			base = append(base, float64(r.Baseline.Shuttles))
			opt = append(opt, float64(r.Optimized.Shuttles))
			d, p := r.Reduction()
			delta = append(delta, float64(d))
			pct = append(pct, p)
			if r.Qubits < minQ {
				minQ = r.Qubits
			}
			if r.Qubits > maxQ {
				maxQ = r.Qubits
			}
		}
		g, bs, os, ds, ps := NewStats(gates), NewStats(base), NewStats(opt), NewStats(delta), NewStats(pct)
		fmt.Fprintf(&b, "%-14s %d-%-4d %4.0f (%.0f) %9.0f %5.0f (%.0f) %7.0f %5.0f%% (%.0f)\n",
			fmt.Sprintf("Random(n=%d)", len(random)), minQ, maxQ,
			g.Mean, g.Std, bs.Mean, os.Mean, os.Std, ds.Mean, ps.Mean, ps.Std)
	}
	return b.String()
}

// Figure8 formats the program-fidelity improvement chart of paper Fig. 8 as
// a labelled series (benchmark -> improvement factor) with an ASCII bar per
// entry.
func Figure8(nisq, random []*BenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG. 8 — PROGRAM FIDELITY IMPROVEMENT (X = optimized/baseline)\n")
	type row struct {
		name string
		x    float64
	}
	var rows []row
	for _, r := range nisq {
		rows = append(rows, row{r.Name, r.Improvement()})
	}
	if len(random) > 0 {
		// Geometric mean: the statistically meaningful average for ratio
		// data — an arithmetic mean of per-circuit improvement factors is
		// dominated by a handful of very hot baseline outliers.
		sumLog := 0.0
		for _, r := range random {
			sumLog += r.OptimizedSim.LogFidelity - r.BaselineSim.LogFidelity
		}
		rows = append(rows, row{"Random", math.Exp(sumLog / float64(len(random)))})
	}
	maxX := 1.0
	for _, r := range rows {
		if r.x > maxX {
			maxX = r.x
		}
	}
	for _, r := range rows {
		bar := int(40 * r.x / maxX)
		if bar < 1 {
			bar = 1
		}
		fmt.Fprintf(&b, "%-14s %8.2fX |%s\n", r.name, r.x, strings.Repeat("#", bar))
	}
	return b.String()
}

// TableIII formats the compilation-time table of paper Table III.
func TableIII(nisq, random []*BenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE III — COMPILATION TIME OVERHEAD\n")
	fmt.Fprintf(&b, "%-14s %18s %12s %10s\n",
		"Benchmark", "This work (sec)", "[7] (sec)", "Δ(↑) (sec)")
	for _, r := range nisq {
		to := r.Optimized.CompileTime.Seconds()
		tb := r.Baseline.CompileTime.Seconds()
		fmt.Fprintf(&b, "%-14s %18.3f %12.3f %10.3f\n", r.Name, to, tb, to-tb)
	}
	if len(random) > 0 {
		var to, tb, dt []float64
		for _, r := range random {
			o := r.Optimized.CompileTime.Seconds()
			bl := r.Baseline.CompileTime.Seconds()
			to = append(to, o)
			tb = append(tb, bl)
			dt = append(dt, o-bl)
		}
		so, sb, sd := NewStats(to), NewStats(tb), NewStats(dt)
		fmt.Fprintf(&b, "%-14s %10.3f (%.3f) %12.3f %4.3f (%.3f)\n",
			"Random", so.Mean, so.Std, sb.Mean, sd.Mean, sd.Std)
	}
	return b.String()
}

// Summary prints the one-line headline the paper's abstract reports: max
// and average percentage reduction over all evaluated circuits, and the max
// fidelity improvement.
func Summary(nisq, random []*BenchResult) string {
	all := append(append([]*BenchResult{}, nisq...), random...)
	if len(all) == 0 {
		return "no results"
	}
	maxPct, sumPct := 0.0, 0.0
	maxImp := 0.0
	wins := 0
	for _, r := range all {
		_, pct := r.Reduction()
		sumPct += pct
		if pct > maxPct {
			maxPct = pct
		}
		if imp := r.Improvement(); imp > maxImp {
			maxImp = imp
		}
		if r.Optimized.Shuttles < r.Baseline.Shuttles {
			wins++
		}
	}
	return fmt.Sprintf(
		"circuits=%d  wins=%d  max shuttle reduction=%.2f%%  avg=%.2f%%  max fidelity improvement=%.2fX",
		len(all), wins, maxPct, sumPct/float64(len(all)), maxImp)
}
