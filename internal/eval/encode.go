package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"muzzle/internal/circuit"
	"muzzle/internal/compiler"
	"muzzle/internal/sim"
)

// OutcomeJSON is the serialized summary of one compiler's outcome on one
// circuit: the shuttle/gate counters and policy names of the compilation
// plus the simulator's verdict. It deliberately omits the operation trace —
// the summary is what the evaluation artifacts, the compile cache, and the
// muzzled service exchange; use internal/trace for full-trace export.
type OutcomeJSON struct {
	Compiler        string `json:"compiler"`
	Shuttles        int    `json:"shuttles"`
	Swaps           int    `json:"swaps"`
	Splits          int    `json:"splits"`
	Merges          int    `json:"merges"`
	Reorders        int    `json:"reorders"`
	Rebalances      int    `json:"rebalances"`
	Gates1Q         int    `json:"gates_1q"`
	Gates2Q         int    `json:"gates_2q"`
	CompileTimeNS   int64  `json:"compile_time_ns"`
	DirectionPolicy string `json:"direction_policy,omitempty"`
	RebalancePolicy string `json:"rebalance_policy,omitempty"`
	ReorderPolicy   string `json:"reorder_policy,omitempty"`

	DurationUS       float64 `json:"duration_us"`
	LogFidelity      float64 `json:"log_fidelity"`
	Fidelity         float64 `json:"fidelity"`
	MaxChainN        float64 `json:"max_chain_n"`
	MeanGateFidelity float64 `json:"mean_gate_fidelity"`
	MinGateFidelity  float64 `json:"min_gate_fidelity"`
	Coolings         int     `json:"coolings,omitempty"`
	Measures         int     `json:"measures,omitempty"`
}

// ResultJSON is the machine-readable per-circuit result schema shared by
// the muzzled service (job results and SSE "circuit" events), cmd/muzzle
// -json, and the compile cache's disk persistence.
type ResultJSON struct {
	Circuit   string                  `json:"circuit"`
	Qubits    int                     `json:"qubits"`
	Gates2Q   int                     `json:"gates_2q"`
	Compilers []string                `json:"compilers"`
	Outcomes  map[string]*OutcomeJSON `json:"outcomes"`
}

// EncodeResult summarizes a BenchResult into its JSON schema.
func EncodeResult(r *BenchResult) *ResultJSON {
	j := &ResultJSON{
		Circuit:   r.Name,
		Qubits:    r.Qubits,
		Gates2Q:   r.Gates2Q,
		Compilers: append([]string(nil), r.Compilers...),
		Outcomes:  make(map[string]*OutcomeJSON, len(r.Outcomes)),
	}
	for name, o := range r.Outcomes {
		j.Outcomes[name] = &OutcomeJSON{
			Compiler:         o.Compiler,
			Shuttles:         o.Result.Shuttles,
			Swaps:            o.Result.Swaps,
			Splits:           o.Result.Splits,
			Merges:           o.Result.Merges,
			Reorders:         o.Result.Reorders,
			Rebalances:       o.Result.Rebalances,
			Gates1Q:          o.Result.Gates1Q,
			Gates2Q:          o.Result.Gates2Q,
			CompileTimeNS:    o.Result.CompileTime.Nanoseconds(),
			DirectionPolicy:  o.Result.DirectionPolicy,
			RebalancePolicy:  o.Result.RebalancePolicy,
			ReorderPolicy:    o.Result.ReorderPolicy,
			DurationUS:       o.Sim.Duration,
			LogFidelity:      o.Sim.LogFidelity,
			Fidelity:         o.Sim.Fidelity,
			MaxChainN:        o.Sim.MaxChainN,
			MeanGateFidelity: o.Sim.MeanGateFidelity,
			MinGateFidelity:  o.Sim.MinGateFidelity,
			Coolings:         o.Sim.Coolings,
			Measures:         o.Sim.Measures,
		}
	}
	return j
}

// BenchResult reconstructs a summary-only BenchResult: every counter,
// policy name, and simulator estimate round-trips, but the operation trace
// (Result.Ops, Result.Order, placements) and per-gate fidelities do not.
// The evaluation artifacts (tables, figures, reductions) read only the
// summary, so decoded results are interchangeable with live ones there.
func (j *ResultJSON) BenchResult() *BenchResult {
	r := &BenchResult{
		Name:      j.Circuit,
		Qubits:    j.Qubits,
		Gates2Q:   j.Gates2Q,
		Compilers: append([]string(nil), j.Compilers...),
		Outcomes:  make(map[string]*Outcome, len(j.Outcomes)),
	}
	for name, o := range j.Outcomes {
		r.Outcomes[name] = &Outcome{
			Compiler: o.Compiler,
			Result: &compiler.Result{
				Circ:            circuit.New(j.Circuit, j.Qubits),
				Shuttles:        o.Shuttles,
				Swaps:           o.Swaps,
				Splits:          o.Splits,
				Merges:          o.Merges,
				Reorders:        o.Reorders,
				Rebalances:      o.Rebalances,
				Gates1Q:         o.Gates1Q,
				Gates2Q:         o.Gates2Q,
				CompileTime:     time.Duration(o.CompileTimeNS) * time.Nanosecond,
				DirectionPolicy: o.DirectionPolicy,
				RebalancePolicy: o.RebalancePolicy,
				ReorderPolicy:   o.ReorderPolicy,
			},
			Sim: &sim.Report{
				Duration:         o.DurationUS,
				LogFidelity:      o.LogFidelity,
				Fidelity:         o.Fidelity,
				Shuttles:         o.Shuttles,
				Splits:           o.Splits,
				Merges:           o.Merges,
				Swaps:            o.Swaps,
				Coolings:         o.Coolings,
				Gates1Q:          o.Gates1Q,
				Gates2Q:          o.Gates2Q,
				Measures:         o.Measures,
				MaxChainN:        o.MaxChainN,
				MeanGateFidelity: o.MeanGateFidelity,
				MinGateFidelity:  o.MinGateFidelity,
			},
		}
	}
	return r
}

// WriteResultJSON serializes a BenchResult summary as indented JSON.
func WriteResultJSON(w io.Writer, r *BenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(EncodeResult(r))
}

// ReadResultJSON parses a summary previously written by WriteResultJSON.
func ReadResultJSON(r io.Reader) (*ResultJSON, error) {
	var j ResultJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("eval: decode result: %w", err)
	}
	return &j, nil
}
