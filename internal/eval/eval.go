// Package eval is the experiment harness: it runs a set of registered
// compilers over the paper's benchmark suite and regenerates the evaluation
// artifacts — Table II (shuttle reduction), Fig. 8 (program fidelity
// improvement), and Table III (compilation time overhead).
//
// Compilers are resolved by name from internal/registry, so any compiler
// registered there — the pre-registered "baseline" and "optimized" pair or
// user-supplied variants — participates in a run without changes here. Runs
// are context-aware (cooperative cancellation down to the compiler
// scheduling loop) and stream per-circuit results as they complete; the
// slice-returning entry points are built on the stream and report partial
// results alongside an errors.Join of every failure.
//
// The harness prints the same rows the paper reports; EXPERIMENTS.md pairs
// each with the paper's numbers.
package eval

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sync"

	"muzzle/internal/bench"
	"muzzle/internal/circuit"
	"muzzle/internal/ckey"
	"muzzle/internal/compiler"
	"muzzle/internal/fidelity"
	"muzzle/internal/flight"
	"muzzle/internal/machine"
	"muzzle/internal/registry"
	"muzzle/internal/sim"
	"muzzle/internal/verify"
)

// Options configure an evaluation run.
type Options struct {
	// Config is the hardware model (paper: L6, capacity 17, comm 2).
	Config machine.Config
	// Sim are the simulator constants for the fidelity estimates.
	Sim sim.Params
	// Random are the random-suite statistics.
	Random bench.RandomSuiteParams
	// RandomLimit, when positive, evaluates only the first N random
	// circuits (used by tests and quick runs); 0 means all 120.
	RandomLimit int
	// Parallelism bounds concurrent circuit evaluations (0 = GOMAXPROCS).
	Parallelism int
	// Compilers lists the registry names to run on every circuit, in
	// column order; nil means the paper's pair {"baseline", "optimized"}.
	Compilers []string
	// Mapper, when non-nil, replaces the default greedy initial mapping.
	Mapper compiler.Placement
	// Progress, when non-nil, receives one line per completed circuit.
	Progress io.Writer
	// OnEvent, when non-nil, receives typed progress events (start,
	// completion, failure of each circuit). It is called from worker
	// goroutines but never concurrently with itself.
	OnEvent func(Event)
	// Cache, when non-nil, is consulted before compiling a circuit and
	// filled after a successful evaluation, keyed by circuit content +
	// machine + compiler set + simulator constants. Runs with a custom
	// Mapper bypass the cache (the mapper is not part of the key).
	Cache Cache
	// Flight, when non-nil, coalesces concurrent identical evaluations:
	// callers that miss the cache on the same content key share one
	// compile+simulate execution instead of racing. The group is keyed by
	// the exact key the cache uses (internal/ckey), so any two requests the
	// cache would dedup after the fact coalesce while in flight. Runs with
	// a custom Mapper bypass coalescing for the same reason they bypass the
	// cache: the mapper is not part of the key. The cache (when present) is
	// checked before the group, so cache hits never touch the group's lock.
	Flight *flight.Group[*BenchResult]
	// Verify runs the independent schedule verifier (internal/verify) on
	// every freshly compiled result; violations fail the circuit with a
	// typed *verify.Error. The MUZZLE_VERIFY environment variable ("1",
	// "true", "on", "yes") forces it on regardless of this field — a debug
	// backstop for any run reachable through RunCircuit. Cache hits that
	// still carry their traces are re-verified too (Verify is not part of
	// the cache key, so an entry may have been stored by a non-verifying
	// run); disk-tier summaries have no trace to replay and pass through.
	Verify bool
}

// envVerify reports whether the MUZZLE_VERIFY debug variable forces
// schedule verification on. Read per compile, not cached: the lookup is
// nanoseconds against a compile's milliseconds, and re-reading keeps the
// knob testable and toggleable in long-lived processes.
func envVerify() bool {
	switch os.Getenv("MUZZLE_VERIFY") {
	case "1", "true", "on", "yes":
		return true
	}
	return false
}

// Cache is a read-through store of completed per-circuit results, keyed by
// everything that determines the outcome: the circuit content, the machine
// configuration, the compiler set, and the simulator constants.
// Implementations must be safe for concurrent use; cached results are
// shared between callers and must be treated as immutable.
type Cache interface {
	// Get returns the cached result for the evaluation inputs, if any.
	Get(c *circuit.Circuit, cfg machine.Config, compilers []string, params sim.Params) (*BenchResult, bool)
	// Put stores a completed result under the evaluation inputs.
	Put(c *circuit.Circuit, cfg machine.Config, compilers []string, params sim.Params, r *BenchResult)
}

// KeyedCache is an optional Cache extension for stores addressed by the
// canonical content key (internal/ckey). When the configured Cache
// implements it, RunCircuit hashes the evaluation inputs once and uses the
// same key for the cache lookup, the cache fill, and the single-flight
// group, instead of re-hashing inside every call. internal/cache.LRU
// satisfies this.
type KeyedCache interface {
	Cache
	// GetKey returns the cached result stored under a content key.
	GetKey(key string) (*BenchResult, bool)
	// PutKey stores a completed result under a content key.
	PutKey(key string, r *BenchResult)
}

// cacheGet consults the cache, by precomputed key when supported.
func cacheGet(cc Cache, key string, c *circuit.Circuit, cfg machine.Config, names []string, params sim.Params) (*BenchResult, bool) {
	if kc, ok := cc.(KeyedCache); ok {
		return kc.GetKey(key)
	}
	return cc.Get(c, cfg, names, params)
}

// cachePut stores a result, by precomputed key when supported.
func cachePut(cc Cache, key string, c *circuit.Circuit, cfg machine.Config, names []string, params sim.Params, r *BenchResult) {
	if kc, ok := cc.(KeyedCache); ok {
		kc.PutKey(key, r)
		return
	}
	cc.Put(c, cfg, names, params, r)
}

// DefaultOptions returns the paper's evaluation setup.
func DefaultOptions() Options {
	return Options{
		Config: machine.PaperL6(),
		Sim:    sim.DefaultParams(),
		Random: bench.DefaultRandomSuiteParams(),
	}
}

// DefaultCompilers is the compiler pair of the paper's evaluation, in the
// order the tables print them.
func DefaultCompilers() []string { return []string{registry.Baseline, registry.Optimized} }

func (o Options) compilerNames() []string {
	if len(o.Compilers) == 0 {
		return DefaultCompilers()
	}
	return o.Compilers
}

// Outcome is one compiler's result on one circuit.
type Outcome struct {
	// Compiler is the registry name the outcome belongs to.
	Compiler string
	// Result is the compilation result.
	Result *compiler.Result
	// Sim is the simulator report for the compiled trace.
	Sim *sim.Report
}

// BenchResult holds every configured compiler's outcome on one circuit.
type BenchResult struct {
	// Name is the circuit name.
	Name string
	// Qubits and Gates2Q describe the circuit (2Q count after
	// decomposition to the native set).
	Qubits, Gates2Q int
	// Compilers lists the registry names evaluated, in run order.
	Compilers []string
	// Outcomes maps each compiler name to its outcome.
	Outcomes map[string]*Outcome
}

// Outcome returns the named compiler's outcome, or nil if the compiler was
// not part of the run.
func (r *BenchResult) Outcome(name string) *Outcome { return r.Outcomes[name] }

// Pair returns the reference (baseline, optimized) outcome pair the paper's
// artifacts compare: the registered names "baseline" and "optimized" when
// both ran, otherwise the first two compilers in run order (or the same
// outcome twice when only one compiler ran).
func (r *BenchResult) Pair() (base, opt *Outcome) {
	if b, o := r.Outcomes[registry.Baseline], r.Outcomes[registry.Optimized]; b != nil && o != nil {
		return b, o
	}
	if len(r.Compilers) == 0 {
		return nil, nil
	}
	base = r.Outcomes[r.Compilers[0]]
	opt = base
	if len(r.Compilers) > 1 {
		opt = r.Outcomes[r.Compilers[1]]
	}
	return base, opt
}

// Reduction returns the absolute and percentage shuttle reduction of the
// reference pair.
func (r *BenchResult) Reduction() (delta int, pct float64) {
	base, opt := r.Pair()
	if base == nil || opt == nil {
		return 0, 0
	}
	delta = base.Result.Shuttles - opt.Result.Shuttles
	if base.Result.Shuttles > 0 {
		pct = 100 * float64(delta) / float64(base.Result.Shuttles)
	}
	return delta, pct
}

// Improvement returns the program-fidelity improvement factor (Fig. 8's X)
// of the reference pair.
func (r *BenchResult) Improvement() float64 {
	base, opt := r.Pair()
	if base == nil || opt == nil {
		return 1
	}
	return fidelity.Improvement(opt.Sim.LogFidelity, base.Sim.LogFidelity)
}

// RunCircuit evaluates one circuit under every configured compiler and the
// simulator. The input circuit is not modified. When Options.Cache is set
// (and no custom Mapper is installed), a cached result is returned without
// invoking any compiler, and fresh results are stored on the way out. When
// Options.Flight is also set, concurrent callers that miss the cache on the
// same content key share a single execution.
func RunCircuit(ctx context.Context, c *circuit.Circuit, opt Options) (*BenchResult, error) {
	names := opt.compilerNames()
	useCache := opt.Cache != nil && opt.Mapper == nil
	useFlight := opt.Flight != nil && opt.Mapper == nil
	wantVerify := opt.Verify || envVerify()

	var key string
	if useCache || useFlight {
		key = ckey.Key(c, opt.Config, names, opt.Sim)
	}
	if useCache {
		if r, ok := cacheGet(opt.Cache, key, c, opt.Config, names, opt.Sim); ok {
			// The entry may have been stored by a run that did not verify
			// (Verify is not part of the cache key), so a verifying caller
			// re-checks hits that still carry their traces. Disk-tier
			// summaries have no trace to replay and pass through — the
			// compile that produced them ran this same code path.
			if wantVerify {
				if err := verifyCached(c, r); err != nil {
					return nil, err
				}
			}
			return r, nil
		}
	}
	if !useFlight {
		return compileAll(ctx, c, opt, names, key, useCache, wantVerify)
	}
	r, shared, err := opt.Flight.Do(ctx, key, func(ctx context.Context) (*BenchResult, error) {
		// A previous leader may have filled the cache between this caller's
		// miss above and its promotion to leader; re-checking here keeps the
		// miss→promotion race from paying a second compile.
		if useCache {
			if r, ok := cacheGet(opt.Cache, key, c, opt.Config, names, opt.Sim); ok {
				return r, nil
			}
		}
		return compileAll(ctx, c, opt, names, key, useCache, wantVerify)
	})
	if err != nil {
		return nil, err
	}
	// A shared result was produced under the *leader's* options, which may
	// not have verified (Verify is not part of the key) — same situation as
	// a cache hit, with the same remedy.
	if shared && wantVerify {
		if err := verifyCached(c, r); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// compileAll runs every configured compiler and the simulator on c and
// fills the cache on success — the single-execution body behind both the
// direct and the coalesced paths of RunCircuit.
func compileAll(ctx context.Context, c *circuit.Circuit, opt Options, names []string, key string, useCache, wantVerify bool) (*BenchResult, error) {
	r := &BenchResult{
		Name:      c.Name,
		Qubits:    c.NumQubits,
		Gates2Q:   bench.Count2QNative(c),
		Compilers: names,
		Outcomes:  make(map[string]*Outcome, len(names)),
	}
	for _, name := range names {
		factory, err := registry.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("eval %s: %w", c.Name, err)
		}
		res, err := compileOne(ctx, c, opt, factory())
		if err != nil {
			return nil, fmt.Errorf("eval %s: %s: %w", c.Name, name, err)
		}
		if wantVerify {
			if vs := verify.Result(res); len(vs) > 0 {
				return nil, fmt.Errorf("eval %s: %w",
					c.Name, &verify.Error{Circuit: c.Name, Compiler: name, Violations: vs})
			}
		}
		rep, err := sim.SimulateContext(ctx, opt.Config, res.InitialPlacement, res.Ops, opt.Sim)
		if err != nil {
			return nil, fmt.Errorf("eval %s: %s sim: %w", c.Name, name, err)
		}
		r.Outcomes[name] = &Outcome{Compiler: name, Result: res, Sim: rep}
	}
	if useCache {
		cachePut(opt.Cache, key, c, opt.Config, names, opt.Sim, r)
	}
	return r, nil
}

// compileOne invokes one compiler with panic containment: the harness
// runs arbitrary registered policies, and a buggy one must fail its
// circuit with a structured error instead of crashing the process (the
// daemon serves many jobs; a sweep has many more cells).
func compileOne(ctx context.Context, c *circuit.Circuit, opt Options, comp *compiler.Compiler) (res *compiler.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("compiler panicked: %v", p)
		}
	}()
	if opt.Mapper != nil {
		return comp.CompileWithMapperContext(ctx, c, opt.Config, opt.Mapper)
	}
	return comp.CompileContext(ctx, c, opt.Config)
}

// verifyCached replays a cache hit's outcomes through the verifier.
// Summary-only outcomes (reloaded from the disk tier, no trace) are
// skipped: they cannot be replayed, and the evaluation that wrote them
// compiled through this same function.
func verifyCached(c *circuit.Circuit, r *BenchResult) error {
	for _, name := range r.Compilers {
		o := r.Outcomes[name]
		if o == nil || o.Result == nil || o.Result.InitialPlacement == nil {
			continue
		}
		if vs := verify.Result(o.Result); len(vs) > 0 {
			return fmt.Errorf("eval %s (cached): %w",
				c.Name, &verify.Error{Circuit: c.Name, Compiler: name, Violations: vs})
		}
	}
	return nil
}

// RunNISQ evaluates the five NISQ benchmarks of Table II, in paper order.
func RunNISQ(ctx context.Context, opt Options) ([]*BenchResult, error) {
	specs := bench.Catalog()
	circuits := make([]*circuit.Circuit, len(specs))
	for i, s := range specs {
		circuits[i] = s.Build()
	}
	return runAll(ctx, circuits, opt)
}

// RunRandom evaluates the random suite (honoring RandomLimit).
func RunRandom(ctx context.Context, opt Options) ([]*BenchResult, error) {
	circuits := bench.RandomSuite(opt.Random)
	if opt.RandomLimit > 0 && opt.RandomLimit < len(circuits) {
		circuits = circuits[:opt.RandomLimit]
	}
	return runAll(ctx, circuits, opt)
}

// RunAll evaluates an arbitrary circuit list concurrently, preserving input
// order. On failure it still returns every successful result (in input
// order, failed circuits omitted) together with an errors.Join of all
// failures.
func RunAll(ctx context.Context, circuits []*circuit.Circuit, opt Options) ([]*BenchResult, error) {
	return runAll(ctx, circuits, opt)
}

// EventKind classifies an evaluation progress event.
type EventKind int

const (
	// EventStarted fires when a worker picks up a circuit.
	EventStarted EventKind = iota
	// EventCompleted fires when a circuit finishes; Result is set.
	EventCompleted
	// EventFailed fires when a circuit errors; Err is set.
	EventFailed
)

// String names the kind for logs.
func (k EventKind) String() string {
	switch k {
	case EventStarted:
		return "started"
	case EventCompleted:
		return "completed"
	case EventFailed:
		return "failed"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one typed progress notification of an evaluation run.
type Event struct {
	// Kind is the event type.
	Kind EventKind
	// Index is the circuit's position in the run; Total the run size.
	Index, Total int
	// Circuit is the circuit name.
	Circuit string
	// Result is the finished result (EventCompleted only).
	Result *BenchResult
	// Err is the failure (EventFailed only).
	Err error
}

// ItemResult is one streamed per-circuit outcome: either Result or Err is
// set.
type ItemResult struct {
	// Index is the circuit's position in the input slice.
	Index int
	// Circuit is the circuit name.
	Circuit string
	// Result is the successful outcome.
	Result *BenchResult
	// Err is the failure.
	Err error
}

// Stream evaluates circuits concurrently and sends one ItemResult per
// circuit in completion order, closing the channel when the run ends. On
// cancellation, circuits not yet started are skipped (no item is sent for
// them) and in-flight compilations abort promptly with ctx.Err(); callers
// that need a terminal error should check ctx.Err() after the channel
// closes. The channel is buffered for the whole run, so an abandoned
// consumer never wedges the workers.
func Stream(ctx context.Context, circuits []*circuit.Circuit, opt Options) <-chan ItemResult {
	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(circuits) {
		par = len(circuits)
	}
	out := make(chan ItemResult, len(circuits))
	jobs := make(chan int, len(circuits))
	for i := range circuits {
		jobs <- i
	}
	close(jobs)

	var emitMu sync.Mutex
	emit := func(ev Event) {
		if opt.OnEvent == nil && opt.Progress == nil {
			return
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		if opt.OnEvent != nil {
			opt.OnEvent(ev)
		}
		if opt.Progress != nil {
			switch ev.Kind {
			case EventCompleted:
				d, pct := ev.Result.Reduction()
				base, o := ev.Result.Pair()
				fmt.Fprintf(opt.Progress, "%-28s base=%5d opt=%5d  -%d (%.2f%%)\n",
					ev.Circuit, base.Result.Shuttles, o.Result.Shuttles, d, pct)
			case EventFailed:
				fmt.Fprintf(opt.Progress, "%-28s ERROR: %v\n", ev.Circuit, ev.Err)
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // canceled: drain without starting new work
				}
				c := circuits[i]
				emit(Event{Kind: EventStarted, Index: i, Total: len(circuits), Circuit: c.Name})
				r, err := RunCircuit(ctx, c, opt)
				if err != nil {
					emit(Event{Kind: EventFailed, Index: i, Total: len(circuits), Circuit: c.Name, Err: err})
					out <- ItemResult{Index: i, Circuit: c.Name, Err: err}
					continue
				}
				emit(Event{Kind: EventCompleted, Index: i, Total: len(circuits), Circuit: c.Name, Result: r})
				out <- ItemResult{Index: i, Circuit: c.Name, Result: r}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// runAll drains Stream into an input-ordered slice. Unlike the historical
// first-error-wins behavior, every successful result survives a partial
// failure: the returned slice holds the completed circuits in input order
// and the error is an errors.Join of every per-circuit failure (plus
// ctx.Err() when the run was canceled).
func runAll(ctx context.Context, circuits []*circuit.Circuit, opt Options) ([]*BenchResult, error) {
	byIndex := make([]*BenchResult, len(circuits))
	var errs []error
	for item := range Stream(ctx, circuits, opt) {
		if item.Err != nil {
			errs = append(errs, item.Err)
		} else {
			byIndex[item.Index] = item.Result
		}
	}
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	results := make([]*BenchResult, 0, len(circuits))
	for _, r := range byIndex {
		if r != nil {
			results = append(results, r)
		}
	}
	return results, errors.Join(errs...)
}

// Stats summarises a set of per-circuit values as mean (std), the format of
// the paper's Random row.
type Stats struct {
	Mean, Std float64
	N         int
}

// NewStats computes mean and population standard deviation.
func NewStats(values []float64) Stats {
	s := Stats{N: len(values)}
	if s.N == 0 {
		return s
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	s.Mean = sum / float64(s.N)
	varSum := 0.0
	for _, v := range values {
		d := v - s.Mean
		varSum += d * d
	}
	s.Std = math.Sqrt(varSum / float64(s.N))
	return s
}
