// Package eval is the experiment harness: it runs the baseline and
// optimized compilers over the paper's benchmark suite and regenerates the
// evaluation artifacts — Table II (shuttle reduction), Fig. 8 (program
// fidelity improvement), and Table III (compilation time overhead).
//
// The harness prints the same rows the paper reports; EXPERIMENTS.md pairs
// each with the paper's numbers.
package eval

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"muzzle/internal/baseline"
	"muzzle/internal/bench"
	"muzzle/internal/circuit"
	"muzzle/internal/compiler"
	"muzzle/internal/core"
	"muzzle/internal/fidelity"
	"muzzle/internal/machine"
	"muzzle/internal/sim"
)

// Options configure an evaluation run.
type Options struct {
	// Config is the hardware model (paper: L6, capacity 17, comm 2).
	Config machine.Config
	// Sim are the simulator constants for the fidelity estimates.
	Sim sim.Params
	// Random are the random-suite statistics.
	Random bench.RandomSuiteParams
	// RandomLimit, when positive, evaluates only the first N random
	// circuits (used by tests and quick runs); 0 means all 120.
	RandomLimit int
	// Parallelism bounds concurrent circuit evaluations (0 = GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, receives one line per completed circuit.
	Progress io.Writer
}

// DefaultOptions returns the paper's evaluation setup.
func DefaultOptions() Options {
	return Options{
		Config: machine.PaperL6(),
		Sim:    sim.DefaultParams(),
		Random: bench.DefaultRandomSuiteParams(),
	}
}

// BenchResult holds both compilers' outcomes on one circuit.
type BenchResult struct {
	// Name is the circuit name.
	Name string
	// Qubits and Gates2Q describe the circuit (2Q count after
	// decomposition to the native set).
	Qubits, Gates2Q int
	// Baseline and Optimized are the compilation results.
	Baseline, Optimized *compiler.Result
	// BaselineSim and OptimizedSim are the simulator reports.
	BaselineSim, OptimizedSim *sim.Report
}

// Reduction returns the absolute and percentage shuttle reduction.
func (r *BenchResult) Reduction() (delta int, pct float64) {
	delta = r.Baseline.Shuttles - r.Optimized.Shuttles
	if r.Baseline.Shuttles > 0 {
		pct = 100 * float64(delta) / float64(r.Baseline.Shuttles)
	}
	return delta, pct
}

// Improvement returns the program-fidelity improvement factor (Fig. 8's X).
func (r *BenchResult) Improvement() float64 {
	return fidelity.Improvement(r.OptimizedSim.LogFidelity, r.BaselineSim.LogFidelity)
}

// RunCircuit evaluates one circuit under both compilers and the simulator.
// The input circuit is not modified.
func RunCircuit(c *circuit.Circuit, opt Options) (*BenchResult, error) {
	resB, err := baseline.New().Compile(c, opt.Config)
	if err != nil {
		return nil, fmt.Errorf("eval %s: baseline: %w", c.Name, err)
	}
	resO, err := core.New().Compile(c, opt.Config)
	if err != nil {
		return nil, fmt.Errorf("eval %s: optimized: %w", c.Name, err)
	}
	simB, err := sim.Simulate(opt.Config, resB.InitialPlacement, resB.Ops, opt.Sim)
	if err != nil {
		return nil, fmt.Errorf("eval %s: baseline sim: %w", c.Name, err)
	}
	simO, err := sim.Simulate(opt.Config, resO.InitialPlacement, resO.Ops, opt.Sim)
	if err != nil {
		return nil, fmt.Errorf("eval %s: optimized sim: %w", c.Name, err)
	}
	return &BenchResult{
		Name:         c.Name,
		Qubits:       c.NumQubits,
		Gates2Q:      bench.Count2QNative(c),
		Baseline:     resB,
		Optimized:    resO,
		BaselineSim:  simB,
		OptimizedSim: simO,
	}, nil
}

// RunNISQ evaluates the five NISQ benchmarks of Table II, in paper order.
func RunNISQ(opt Options) ([]*BenchResult, error) {
	specs := bench.Catalog()
	circuits := make([]*circuit.Circuit, len(specs))
	for i, s := range specs {
		circuits[i] = s.Build()
	}
	return runAll(circuits, opt)
}

// RunRandom evaluates the random suite (honoring RandomLimit).
func RunRandom(opt Options) ([]*BenchResult, error) {
	circuits := bench.RandomSuite(opt.Random)
	if opt.RandomLimit > 0 && opt.RandomLimit < len(circuits) {
		circuits = circuits[:opt.RandomLimit]
	}
	return runAll(circuits, opt)
}

// runAll evaluates circuits concurrently, preserving input order.
func runAll(circuits []*circuit.Circuit, opt Options) ([]*BenchResult, error) {
	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	results := make([]*BenchResult, len(circuits))
	errs := make([]error, len(circuits))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i, c := range circuits {
		wg.Add(1)
		go func(i int, c *circuit.Circuit) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := RunCircuit(c, opt)
			results[i], errs[i] = r, err
			if opt.Progress != nil {
				mu.Lock()
				if err != nil {
					fmt.Fprintf(opt.Progress, "%-28s ERROR: %v\n", c.Name, err)
				} else {
					d, pct := r.Reduction()
					fmt.Fprintf(opt.Progress, "%-28s base=%5d opt=%5d  -%d (%.2f%%)\n",
						c.Name, r.Baseline.Shuttles, r.Optimized.Shuttles, d, pct)
				}
				mu.Unlock()
			}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Stats summarises a set of per-circuit values as mean (std), the format of
// the paper's Random row.
type Stats struct {
	Mean, Std float64
	N         int
}

// NewStats computes mean and population standard deviation.
func NewStats(values []float64) Stats {
	s := Stats{N: len(values)}
	if s.N == 0 {
		return s
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	s.Mean = sum / float64(s.N)
	varSum := 0.0
	for _, v := range values {
		d := v - s.Mean
		varSum += d * d
	}
	s.Std = math.Sqrt(varSum / float64(s.N))
	return s
}
