package eval

import (
	"testing"

	"muzzle/internal/baseline"
	"muzzle/internal/bench"
	"muzzle/internal/circuit"
	"muzzle/internal/core"
	"muzzle/internal/dag"
	"muzzle/internal/machine"
	"muzzle/internal/sim"
	"muzzle/internal/topo"
)

// TestExtendedKernelsBothCompilers pushes the star (BV), ripple (Adder) and
// chain (GHZ) kernels through both compilers end to end and validates the
// fundamental contracts: dependency-valid order, exact gate counts,
// replayable traces, and non-negative optimization deltas.
func TestExtendedKernelsBothCompilers(t *testing.T) {
	cfg := machine.PaperL6()
	for _, spec := range bench.ExtendedCatalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			c := spec.Build()
			resB, err := baseline.New().Compile(c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			resO, err := core.New().Compile(c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for name, res := range map[string]*struct {
				shuttles, gates2q int
				order             []int
				circ              *circuit.Circuit
			}{
				"baseline":  {resB.Shuttles, resB.Gates2Q, resB.Order, resB.Circ},
				"optimized": {resO.Shuttles, resO.Gates2Q, resO.Order, resO.Circ},
			} {
				if res.gates2q != spec.Gates2Q {
					t.Errorf("%s executed %d 2Q gates, want %d", name, res.gates2q, spec.Gates2Q)
				}
				if err := dag.Build(res.circ).ValidOrder(res.order); err != nil {
					t.Errorf("%s: %v", name, err)
				}
			}
			if resO.Shuttles > resB.Shuttles {
				t.Errorf("optimized (%d) worse than baseline (%d) on %s", resO.Shuttles, resB.Shuttles, spec.Name)
			}
			// Traces replay cleanly through the simulator.
			if _, err := sim.Simulate(cfg, resB.InitialPlacement, resB.Ops, sim.DefaultParams()); err != nil {
				t.Errorf("baseline replay: %v", err)
			}
			if _, err := sim.Simulate(cfg, resO.InitialPlacement, resO.Ops, sim.DefaultParams()); err != nil {
				t.Errorf("optimized replay: %v", err)
			}
		})
	}
}

// TestGHZNeedsFewShuttles: a 64-qubit GHZ chain maps onto L6 with only the
// five trap-boundary crossings (one per adjacent trap pair) — a sanity
// check that the greedy mapping plus either compiler recognizes pure
// nearest-neighbor structure.
func TestGHZNeedsFewShuttles(t *testing.T) {
	cfg := machine.PaperL6()
	c := bench.GHZ(64)
	res, err := core.New().Compile(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 64 qubits need ceil(64/15) = 5 traps, so the chain crosses at least 4
	// trap boundaries; the compiler should stay within a small constant
	// factor of that minimum.
	if res.Shuttles < 4 {
		t.Errorf("GHZ shuttles = %d: impossible, chain spans 5 traps", res.Shuttles)
	}
	if res.Shuttles > 20 {
		t.Errorf("GHZ shuttles = %d, want near the 4-crossing minimum", res.Shuttles)
	}
}

// TestStarPatternStress: Bernstein-Vazirani's all-to-one pattern is an
// adversarial case for *both* compilers — the greedy mapper scatters the
// star's leaves across traps (they share no pairwise gates), so the ancilla
// must tour the machine and lookahead buys little. The paper makes no claim
// about star workloads; the contract here is termination, correctness, and
// staying within a small margin of the baseline.
func TestStarPatternStress(t *testing.T) {
	cfg := machine.PaperL6()
	c := bench.BernsteinVazirani(64, ^uint64(0))
	resB, err := baseline.New().Compile(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resO, err := core.New().Compile(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if float64(resO.Shuttles) > 1.15*float64(resB.Shuttles) {
		t.Errorf("optimized (%d) more than 15%% worse than baseline (%d) on the adversarial BV star", resO.Shuttles, resB.Shuttles)
	}
}

// TestSmallMachineEndToEnd compiles the whole extended catalog on a
// non-linear machine, ensuring nothing assumes L6.
func TestSmallMachineEndToEnd(t *testing.T) {
	cfg := machine.Config{Topology: topo.Grid(2, 3), Capacity: 14, CommCapacity: 2}
	for _, spec := range bench.ExtendedCatalog() {
		if _, err := core.New().Compile(spec.Build(), cfg); err != nil {
			t.Errorf("%s on grid: %v", spec.Name, err)
		}
	}
}
