package eval

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"muzzle/internal/bench"
	"muzzle/internal/circuit"
	"muzzle/internal/machine"
	"muzzle/internal/sim"
	"muzzle/internal/verify"
)

// TestRunCircuitVerifyClean pins that opting into verification does not
// change the outcome of a legal compilation — same results, no error.
func TestRunCircuitVerifyClean(t *testing.T) {
	opt := smallOptions()
	circ := bench.QFT(10)
	plain, err := RunCircuit(context.Background(), circ, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Verify = true
	verified, err := RunCircuit(context.Background(), circ, opt)
	if err != nil {
		t.Fatalf("verification rejected a legal schedule: %v", err)
	}
	for _, name := range verified.Compilers {
		a, b := plain.Outcome(name), verified.Outcome(name)
		if a.Result.Shuttles != b.Result.Shuttles {
			t.Fatalf("%s: verification changed shuttle count %d -> %d",
				name, a.Result.Shuttles, b.Result.Shuttles)
		}
	}
}

// TestRunCircuitVerifyEnvVar pins the MUZZLE_VERIFY debug backstop: the
// environment variable alone turns verification on (observable only as
// "still succeeds" for legal schedules — the error path is covered by the
// verifier's own unit tests, since registry compilers cannot be coaxed
// into emitting illegal traces).
func TestRunCircuitVerifyEnvVar(t *testing.T) {
	t.Setenv("MUZZLE_VERIFY", "1")
	if !envVerify() {
		t.Fatal("MUZZLE_VERIFY=1 not honored")
	}
	opt := smallOptions()
	if _, err := RunCircuit(context.Background(), bench.QFT(8), opt); err != nil {
		t.Fatalf("env-forced verification rejected a legal schedule: %v", err)
	}
	t.Setenv("MUZZLE_VERIFY", "")
	if envVerify() {
		t.Fatal("empty MUZZLE_VERIFY treated as on")
	}
	t.Setenv("MUZZLE_VERIFY", "0")
	if envVerify() {
		t.Fatal("MUZZLE_VERIFY=0 treated as on")
	}
}

// mapCache is a trivial eval.Cache for tests.
type mapCache struct{ m map[string]*BenchResult }

func (c *mapCache) key(circ *circuit.Circuit) string { return circ.Name }
func (c *mapCache) Get(circ *circuit.Circuit, _ machine.Config, _ []string, _ sim.Params) (*BenchResult, bool) {
	r, ok := c.m[c.key(circ)]
	return r, ok
}
func (c *mapCache) Put(circ *circuit.Circuit, _ machine.Config, _ []string, _ sim.Params, r *BenchResult) {
	c.m[c.key(circ)] = r
}

// TestRunCircuitVerifyCacheHit pins that a verifying caller is not fooled
// by a cache entry stored by a non-verifying run: hits that still carry
// their traces are re-verified, and a tampered entry is rejected.
func TestRunCircuitVerifyCacheHit(t *testing.T) {
	opt := smallOptions()
	cache := &mapCache{m: make(map[string]*BenchResult)}
	opt.Cache = cache
	circ := bench.QFT(8)
	// Populate without verification.
	if _, err := RunCircuit(context.Background(), circ, opt); err != nil {
		t.Fatal(err)
	}
	// A clean hit passes verification.
	opt.Verify = true
	if _, err := RunCircuit(context.Background(), circ, opt); err != nil {
		t.Fatalf("clean cache hit rejected: %v", err)
	}
	// Tamper with the cached trace: the verifying caller must reject it.
	cached := cache.m[circ.Name]
	name := cached.Compilers[0]
	bad := *cached.Outcomes[name].Result
	bad.Ops = bad.Ops[:len(bad.Ops)-1]
	cached.Outcomes[name] = &Outcome{Compiler: name, Result: &bad, Sim: cached.Outcomes[name].Sim}
	_, err := RunCircuit(context.Background(), circ, opt)
	var vErr *verify.Error
	if !errors.As(err, &vErr) {
		t.Fatalf("tampered cache hit not rejected with a verify error: %v", err)
	}
	// Without verification the tampered hit still flows through (the
	// historical contract: the cache is trusted unless asked otherwise).
	opt.Verify = false
	if _, err := RunCircuit(context.Background(), circ, opt); err != nil {
		t.Fatalf("non-verifying run rejected a cache hit: %v", err)
	}
}

// TestVerifyErrorTyped pins the typed-error contract consumed by the
// service and the public boundary: a *verify.Error survives errors.As
// through the %w wrapping RunCircuit applies.
func TestVerifyErrorTyped(t *testing.T) {
	inner := &verify.Error{Circuit: "c", Compiler: "x",
		Violations: []verify.Violation{{Op: 3, Kind: verify.KindEdge, Detail: "d"}}}
	wrapped := fmt.Errorf("eval %s: %w", "c", inner) // RunCircuit's wrapping
	var vErr *verify.Error
	if !errors.As(wrapped, &vErr) || len(vErr.Violations) != 1 {
		t.Fatalf("verify.Error lost through wrapping: %v", wrapped)
	}
	if vErr.Violations[0].Kind != verify.KindEdge {
		t.Fatalf("violation kind lost: %+v", vErr.Violations[0])
	}
}
