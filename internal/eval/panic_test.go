package eval

import (
	"context"
	"strings"
	"testing"

	"muzzle/internal/bench"
	"muzzle/internal/compiler"
	"muzzle/internal/core"
	"muzzle/internal/registry"
)

// panicDirection is a deliberately broken routing policy.
type panicDirection struct{}

func (panicDirection) Name() string { return "panic-direction" }
func (panicDirection) Choose(*compiler.Context, int, int, int, []int) (int, int) {
	panic("policy bug: unroutable gate")
}

// A panicking compiler policy must fail its circuit with a structured
// error, not crash the harness: the daemon runs arbitrary registered
// compilers across many jobs and sweep cells.
func TestCompilerPanicIsContained(t *testing.T) {
	const name = "eval-panic-test"
	err := registry.Register(name, func() *compiler.Compiler {
		c := core.New()
		c.Direction = panicDirection{}
		return c
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := smallOptions()
	opt.Compilers = []string{name}
	c := bench.Random(12, 60, 3)
	if _, err := RunCircuit(context.Background(), c, opt); err == nil {
		t.Fatal("RunCircuit returned nil error for a panicking policy")
	} else if !strings.Contains(err.Error(), "compiler panicked") {
		t.Fatalf("error %q does not report the contained panic", err)
	}
	// The harness survives: the same run with a sane compiler succeeds.
	opt.Compilers = nil
	if _, err := RunCircuit(context.Background(), c, opt); err != nil {
		t.Fatalf("follow-up run after contained panic: %v", err)
	}
}
