package sweep

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"muzzle/internal/faults"
)

// TestPersistUnderInjectedFaults drives Dir.Persist through every write
// fault kind and pins the atomicity contract: a faulted Persist reports
// its error, leaves no torn artifact at any final path, and the next
// clean Persist of the same cell fully recovers the directory.
func TestPersistUnderInjectedFaults(t *testing.T) {
	e, err := Expand(tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	kinds := []faults.Kind{faults.KindErr, faults.KindENOSPC, faults.KindTorn}
	ops := []faults.Op{faults.OpWrite, faults.OpSync, faults.OpRename}
	for _, kind := range kinds {
		for _, op := range ops {
			if kind != faults.KindErr && op != faults.OpWrite {
				continue // ENOSPC/torn only make sense on writes
			}
			name := string(kind) + "/" + string(op)
			t.Run(name, func(t *testing.T) {
				inj := faults.New(3, faults.Rule{Scope: faults.ScopeSweepDir, Op: op, Kind: kind, Count: 1})
				restore := faults.Install(inj)
				defer restore()

				dir := t.TempDir()
				d, err := OpenDir(dir, e)
				if err != nil {
					t.Fatal(err)
				}
				d.SetFaultScope(faults.ScopeSweepDir)
				if err := d.Persist(fakeReport(e, 0)); !errors.Is(err, faults.ErrInjected) {
					t.Fatalf("Persist under %s = %v, want injected", name, err)
				}
				// No torn artifact anywhere: every file under the dir must
				// be either absent or fully valid; stray temp files are the
				// one allowed residue and are dot-prefixed.
				entries, err := os.ReadDir(filepath.Join(dir, cellsDir))
				if err != nil {
					t.Fatal(err)
				}
				for _, f := range entries {
					if !strings.HasPrefix(f.Name(), ".") {
						t.Fatalf("faulted Persist left final-path artifact %s", f.Name())
					}
				}
				// Budget spent: the retry persists for real and a reopen
				// sees the cell done.
				if err := d.Persist(fakeReport(e, 0)); err != nil {
					t.Fatalf("clean retry: %v", err)
				}
				d2, err := OpenDir(dir, e)
				if err != nil {
					t.Fatal(err)
				}
				if d2.DoneCount() != 1 {
					t.Fatalf("reopen sees %d done cells, want 1", d2.DoneCount())
				}
			})
		}
	}
}
