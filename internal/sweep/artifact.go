package sweep

import (
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// OutcomeSummary is one compiler's outcome on one cell as it appears in
// sweep artifacts. It is the deterministic subset of the evaluation
// result: wall-clock compile time is deliberately excluded so the same
// grid always produces byte-identical artifacts.
type OutcomeSummary struct {
	Compiler    string  `json:"compiler"`
	Shuttles    int     `json:"shuttles"`
	Swaps       int     `json:"swaps"`
	Splits      int     `json:"splits"`
	Merges      int     `json:"merges"`
	Reorders    int     `json:"reorders,omitempty"`
	Rebalances  int     `json:"rebalances,omitempty"`
	Gates1Q     int     `json:"gates_1q"`
	Gates2Q     int     `json:"gates_2q"`
	DurationUS  float64 `json:"duration_us"`
	LogFidelity float64 `json:"log_fidelity"`
	Fidelity    float64 `json:"fidelity"`
}

// CellReport is one cell's aggregated outcome: the resolved scenario
// coordinates plus every compiler's summary, in the grid's compiler order.
// A failed cell carries Error and no outcomes.
type CellReport struct {
	Index        int              `json:"index"`
	ID           string           `json:"id"`
	Topology     string           `json:"topology"`
	Traps        int              `json:"traps"`
	Capacity     int              `json:"capacity"`
	CommCapacity int              `json:"comm_capacity"`
	Circuit      string           `json:"circuit"`
	Qubits       int              `json:"qubits,omitempty"`
	Gates2Q      int              `json:"gates_2q,omitempty"`
	Outcomes     []OutcomeSummary `json:"outcomes,omitempty"`
	Error        string           `json:"error,omitempty"`
}

// Report is the aggregated artifact of a sweep run: the normalized grid
// it expanded from plus one CellReport per cell in expansion order.
type Report struct {
	Grid  Grid         `json:"grid"`
	Cells []CellReport `json:"cells"`
}

// Failures counts cells that ended in error.
func (r *Report) Failures() int {
	n := 0
	for _, c := range r.Cells {
		if c.Error != "" {
			n++
		}
	}
	return n
}

// WriteJSON serializes the report as indented JSON. The encoding is
// deterministic — struct field order, slice order, and shortest-form
// floats — so identical runs produce byte-identical files.
func WriteJSON(w io.Writer, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encode report: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadJSON parses a report previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("sweep: decode report: %w", err)
	}
	return &rep, nil
}

// csvHeader is the column layout of WriteCSV.
var csvHeader = []string{
	"cell_id", "topology", "traps", "capacity", "comm_capacity", "circuit",
	"qubits", "gates_2q", "compiler", "shuttles", "swaps", "splits", "merges",
	"reorders", "rebalances", "duration_us", "log_fidelity", "fidelity", "error",
}

// WriteCSV renders the report as one row per (cell, compiler); failed
// cells contribute a single row with the error column set. Like WriteJSON
// the output is deterministic.
func WriteCSV(w io.Writer, r *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range r.Cells {
		base := []string{
			c.ID, c.Topology, strconv.Itoa(c.Traps), strconv.Itoa(c.Capacity),
			strconv.Itoa(c.CommCapacity), c.Circuit,
			strconv.Itoa(c.Qubits), strconv.Itoa(c.Gates2Q),
		}
		if c.Error != "" {
			row := append(append([]string(nil), base...),
				"", "", "", "", "", "", "", "", "", "", c.Error)
			if err := cw.Write(row); err != nil {
				return err
			}
			continue
		}
		for _, o := range c.Outcomes {
			row := append(append([]string(nil), base...),
				o.Compiler, strconv.Itoa(o.Shuttles), strconv.Itoa(o.Swaps),
				strconv.Itoa(o.Splits), strconv.Itoa(o.Merges),
				strconv.Itoa(o.Reorders), strconv.Itoa(o.Rebalances),
				ff(o.DurationUS), ff(o.LogFidelity), ff(o.Fidelity), "")
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Hash returns a stable content address of a grid: the hex SHA-256 of the
// canonical JSON of its normalized form. Resumable runs use it to detect
// that a directory belongs to a different grid.
func Hash(g Grid) (string, error) {
	data, err := json.Marshal(g.normalize())
	if err != nil {
		return "", fmt.Errorf("sweep: hash grid: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
