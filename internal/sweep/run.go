package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"muzzle"
)

// Options configure a sweep execution.
type Options struct {
	// Parallelism bounds concurrently running cells (0 = GOMAXPROCS).
	// Each cell additionally inherits the pipeline's own defaults for
	// per-circuit work, so this is the shard-level knob.
	Parallelism int
	// Cache, when non-nil, is the shared content-addressed compile cache:
	// cells whose (circuit, machine, compilers, sim) coordinates were
	// evaluated before — in this run, an earlier resumed run, or any other
	// client of the same cache — are served without compiling.
	Cache *muzzle.Cache
	// Flight, when non-nil, coalesces cells whose coordinates are merely
	// *concurrently* identical — with each other or with any other client
	// of the same group (daemon jobs, the CLI) — so duplicates that race
	// past the cache still cost one compile.
	Flight *muzzle.Flight
	// OnCell, when non-nil, receives each finished cell's report in
	// completion order. It is never invoked concurrently with itself.
	OnCell func(CellReport)
	// Verify runs the independent schedule verifier on every freshly
	// compiled result and on cache hits that still carry their traces
	// (summary-only disk entries pass through); violations mark the cell
	// failed (CellReport.Error) rather than aborting the sweep.
	Verify bool
	// FaultScope, when non-empty, subjects RunDir's artifact writes to
	// the process-global fault injector (internal/faults) under this
	// scope. Tests only; empty in production.
	FaultScope string
}

// Run expands the grid and executes every cell, returning the aggregated
// report. Per-cell failures (a circuit too large for a machine point, a
// mid-run compile error) are recorded in the cell's Error field — the run
// continues — while grid validation failures and context cancellation are
// returned as errors. On cancellation the report still carries every
// completed cell; unstarted cells are marked with the context error.
func Run(ctx context.Context, g Grid, opt Options) (*Report, error) {
	e, err := Expand(g)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, opt), ctx.Err()
}

// Run executes every cell of an already-expanded grid. See the package
// Run for the error contract; here cancellation is reported through the
// affected cells' Error fields and the caller's ctx.
func (e *Expanded) Run(ctx context.Context, opt Options) *Report {
	reports := e.execute(ctx, opt, nil)
	return &Report{Grid: e.Grid, Cells: reports}
}

// RunDir is Run with a resumable on-disk manifest: every completed cell is
// persisted under dir/cells/ and recorded in dir/manifest.json, so an
// interrupted sweep re-run with the same grid picks up where it stopped,
// re-executing only unfinished cells. The final report is written to
// dir/report.json and dir/report.csv. A directory holding a different
// grid's manifest is rejected rather than overwritten.
func RunDir(ctx context.Context, g Grid, dir string, opt Options) (*Report, error) {
	e, err := Expand(g)
	if err != nil {
		return nil, err
	}
	return e.RunDir(ctx, dir, opt)
}

// RunDir is the resumable run over an already-expanded grid; see the
// package RunDir. The on-disk layout is owned by Dir, which the
// distributed coordinator (internal/coord) shares — either side can resume
// a directory the other produced.
func (e *Expanded) RunDir(ctx context.Context, dir string, opt Options) (*Report, error) {
	d, err := OpenDir(dir, e)
	if err != nil {
		return nil, err
	}
	if opt.FaultScope != "" {
		d.SetFaultScope(opt.FaultScope)
	}

	// Persist each finished cell and refresh the manifest as results
	// arrive, chaining any caller-supplied progress callback.
	var persistMu sync.Mutex
	var persistErrs []error
	userCB := opt.OnCell
	opt.OnCell = func(cr CellReport) {
		// A cell that failed under a canceled context is transient — the
		// work was interrupted, not impossible — so it must not be
		// persisted as done or a resumed run would never re-execute it.
		// Deterministic failures (infeasible cells) are persisted: they
		// would fail identically on every re-run. Successful results are
		// always persisted, even if cancellation landed after they
		// finished.
		transient := cr.Error != "" && ctx.Err() != nil
		if !transient {
			if err := d.Persist(cr); err != nil {
				persistMu.Lock()
				persistErrs = append(persistErrs, err)
				persistMu.Unlock()
			}
		}
		if userCB != nil {
			userCB(cr)
		}
	}

	reports := e.execute(ctx, opt, d.Preloaded())
	rep := &Report{Grid: e.Grid, Cells: reports}
	if err := ctx.Err(); err != nil {
		return rep, errors.Join(append(persistErrs, err)...)
	}
	if err := d.WriteReports(rep); err != nil {
		persistErrs = append(persistErrs, err)
	}
	return rep, errors.Join(persistErrs...)
}

// execute runs every cell not already present in preloaded through the
// worker pool and returns the full index-ordered report list. Preloaded
// cells (a resumed run's completed shards) are copied through without
// re-execution and without OnCell notifications.
func (e *Expanded) execute(ctx context.Context, opt Options, preloaded map[int]CellReport) []CellReport {
	norm, cells := e.Grid, e.Cells
	reports := make([]CellReport, len(cells))
	var pending []int
	for i := range cells {
		if r, ok := preloaded[i]; ok {
			reports[i] = r
		} else {
			pending = append(pending, i)
		}
	}

	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(pending) {
		par = len(pending)
	}
	jobs := make(chan int, len(pending))
	for _, i := range pending {
		jobs <- i
	}
	close(jobs)

	var cbMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					// Canceled before this cell started: record the
					// abort without invoking compilers or callbacks.
					reports[i] = skeleton(cells[i])
					reports[i].Error = ctx.Err().Error()
					continue
				}
				rep := runCell(ctx, norm, cells[i], opt)
				reports[i] = rep
				if opt.OnCell != nil {
					cbMu.Lock()
					opt.OnCell(rep)
					cbMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return reports
}

// RunCell executes exactly one cell of the expanded grid — the unit the
// distributed coordinator dispatches to a worker. The returned report is
// identical to what a full local run would record for that cell (per-cell
// failures land in CellReport.Error, not the error return); the error
// return covers only an out-of-range index.
func (e *Expanded) RunCell(ctx context.Context, index int, opt Options) (CellReport, error) {
	if index < 0 || index >= len(e.Cells) {
		return CellReport{}, fmt.Errorf("sweep: cell index %d out of range [0, %d)", index, len(e.Cells))
	}
	return runCell(ctx, e.Grid, e.Cells[index], opt), nil
}

// skeleton returns a CellReport carrying just the cell's coordinates.
func skeleton(c Cell) CellReport {
	return CellReport{
		Index:        c.Index,
		ID:           c.ID,
		Topology:     c.Topology,
		Traps:        c.Traps,
		Capacity:     c.Capacity,
		CommCapacity: c.CommCapacity,
		Circuit:      c.Circuit,
	}
}

// Skeleton returns a report carrying only the cell's coordinates — the
// shape the coordinator uses to record a cell that permanently failed to
// dispatch.
func (c Cell) Skeleton() CellReport { return skeleton(c) }

// runCell evaluates one cell: a pipeline over the cell's machine point and
// the grid's compiler set, sharing the sweep-wide cache, applied to the
// cell's circuit.
func runCell(ctx context.Context, g Grid, cell Cell, opt Options) CellReport {
	out := skeleton(cell)
	popts := []muzzle.PipelineOption{
		muzzle.WithMachine(cell.Machine),
		muzzle.WithCompilers(g.Compilers...),
	}
	if g.Sim != nil {
		popts = append(popts, muzzle.WithSimParams(*g.Sim))
	}
	if opt.Cache != nil {
		popts = append(popts, muzzle.WithCache(opt.Cache))
	}
	if opt.Flight != nil {
		popts = append(popts, muzzle.WithFlight(opt.Flight))
	}
	if opt.Verify {
		popts = append(popts, muzzle.WithVerify())
	}
	p, err := muzzle.NewPipeline(popts...)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	res, err := p.EvaluateCircuit(ctx, cell.Build())
	if err != nil {
		out.Error = err.Error()
		return out
	}
	j := muzzle.EncodeEvalResult(res)
	out.Qubits = j.Qubits
	out.Gates2Q = j.Gates2Q
	out.Outcomes = g.sortedOutcomes(j.Outcomes)
	return out
}
