package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"muzzle"
)

// smallGrid is a fast 3-family x 2-compiler grid used across tests.
func smallGrid() Grid {
	return Grid{
		Name: "test",
		Topologies: []TopologySpec{
			{Family: FamilyLine, Traps: 4},
			{Family: FamilyRing, Traps: 4},
			{Family: FamilyGrid, Rows: 2, Cols: 2},
		},
		Capacities:     []int{6},
		CommCapacities: []int{2},
		Circuits: []CircuitSpec{
			{Kind: CircuitRandom, Qubits: 10, Gates2Q: 30, Seed: 11},
			{Kind: CircuitQFT, Qubits: 8},
		},
	}
}

func TestExpandDeterministicShardList(t *testing.T) {
	exp, err := Expand(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	norm, cells := exp.Grid, exp.Cells
	if len(norm.Compilers) != 2 {
		t.Fatalf("normalized compilers = %v, want the default pair", norm.Compilers)
	}
	if want := 3 * 1 * 1 * 2; len(cells) != want {
		t.Fatalf("cells = %d, want %d", len(cells), want)
	}
	wantIDs := []string{
		"L4/cap6-comm2/Random-10q-30g-s11",
		"L4/cap6-comm2/QFT8",
		"R4/cap6-comm2/Random-10q-30g-s11",
		"R4/cap6-comm2/QFT8",
		"G2x2/cap6-comm2/Random-10q-30g-s11",
		"G2x2/cap6-comm2/QFT8",
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		if c.ID != wantIDs[i] {
			t.Errorf("cell %d ID = %q, want %q", i, c.ID, wantIDs[i])
		}
	}
	// Expansion is a pure function of the grid.
	exp2, err := Expand(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	again := exp2.Cells
	for i := range cells {
		if cells[i].ID != again[i].ID {
			t.Fatalf("expansion order not stable at %d: %q vs %q", i, cells[i].ID, again[i].ID)
		}
	}
}

func TestExpandRejectsMalformedGrids(t *testing.T) {
	base := smallGrid()
	cases := []struct {
		name string
		mut  func(*Grid)
		want string
	}{
		{"no topologies", func(g *Grid) { g.Topologies = nil }, "at least one topology"},
		{"no circuits", func(g *Grid) { g.Circuits = nil }, "at least one circuit"},
		{"ring too small", func(g *Grid) { g.Topologies = []TopologySpec{{Family: FamilyRing, Traps: 2}} }, "ring needs at least"},
		{"zero grid", func(g *Grid) { g.Topologies = []TopologySpec{{Family: FamilyGrid, Rows: 0, Cols: 3}} }, "must be positive"},
		{"line zero", func(g *Grid) { g.Topologies = []TopologySpec{{Family: FamilyLine, Traps: 0}} }, "at least 1 trap"},
		{"unknown family", func(g *Grid) { g.Topologies = []TopologySpec{{Family: "torus", Traps: 6}} }, "unknown topology family"},
		{"disconnected custom", func(g *Grid) {
			g.Topologies = []TopologySpec{{Family: FamilyCustom, Traps: 4, Edges: [][2]int{{0, 1}, {2, 3}}}}
		}, "unreachable"},
		{"self-loop custom", func(g *Grid) {
			g.Topologies = []TopologySpec{{Family: FamilyCustom, Traps: 2, Edges: [][2]int{{1, 1}}}}
		}, "self-loop"},
		{"duplicate topology label", func(g *Grid) {
			g.Topologies = []TopologySpec{{Family: FamilyLine, Traps: 4}, {Family: FamilyLine, Traps: 4}}
		}, "appears twice"},
		{"unknown compiler", func(g *Grid) { g.Compilers = []string{"nope"} }, "not registered"},
		{"duplicate compiler", func(g *Grid) { g.Compilers = []string{"baseline", "baseline"} }, "listed twice"},
		{"empty compiler", func(g *Grid) { g.Compilers = []string{""} }, "empty compiler"},
		{"comm >= capacity", func(g *Grid) { g.Capacities = []int{2}; g.CommCapacities = []int{2} }, "communication capacity"},
		{"zero capacity", func(g *Grid) { g.Capacities = []int{0} }, "capacity"},
		{"unknown circuit kind", func(g *Grid) { g.Circuits = []CircuitSpec{{Kind: "ghz"}} }, "unknown circuit kind"},
		{"random too narrow", func(g *Grid) { g.Circuits = []CircuitSpec{{Kind: CircuitRandom, Qubits: 1}} }, "qubits >= 2"},
		{"negative count", func(g *Grid) {
			g.Circuits = []CircuitSpec{{Kind: CircuitRandom, Qubits: 4, Gates2Q: 5, Count: -1}}
		}, "count"},
		{"duplicate circuit", func(g *Grid) {
			g.Circuits = []CircuitSpec{{Kind: CircuitQFT, Qubits: 8}, {Kind: CircuitQFT, Qubits: 8}}
		}, "appears twice"},
	}
	for _, tc := range cases {
		g := base
		tc.mut(&g)
		_, err := Expand(g)
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestRunDeterminism is the sweep determinism property of the issue: the
// same grid (including seeded random circuits) run twice produces
// byte-identical JSON and CSV artifacts.
func TestRunDeterminism(t *testing.T) {
	ctx := context.Background()
	r1, err := Run(ctx, smallGrid(), Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(ctx, smallGrid(), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var j1, j2, c1, c2 bytes.Buffer
	if err := WriteJSON(&j1, r1); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&j2, r2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Errorf("JSON artifacts differ:\n%s\nvs\n%s", j1.String(), j2.String())
	}
	if err := WriteCSV(&c1, r1); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&c2, r2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Errorf("CSV artifacts differ")
	}
	for _, c := range r1.Cells {
		if c.Error != "" {
			t.Errorf("cell %s failed: %s", c.ID, c.Error)
		}
		if len(c.Outcomes) != 2 {
			t.Errorf("cell %s has %d outcomes, want 2", c.ID, len(c.Outcomes))
		}
	}
}

// TestCacheOverlapHits asserts that overlapping cells are free: a second
// run of the same grid against the same shared cache serves every cell
// from the cache.
func TestCacheOverlapHits(t *testing.T) {
	cache, err := muzzle.NewCache(muzzle.CacheConfig{MaxEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	r1, err := Run(ctx, smallGrid(), Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	s := cache.Stats()
	if s.Misses != uint64(len(r1.Cells)) {
		t.Fatalf("first run: %d misses, want %d", s.Misses, len(r1.Cells))
	}
	hitsBefore := s.Hits
	r2, err := Run(ctx, smallGrid(), Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	s = cache.Stats()
	if got, want := s.Hits-hitsBefore, uint64(len(r2.Cells)); got != want {
		t.Errorf("second run: %d cache hits, want %d (every overlapping cell free)", got, want)
	}
	if s.Misses != uint64(len(r1.Cells)) {
		t.Errorf("second run recompiled: misses grew to %d", s.Misses)
	}
	var j1, j2 bytes.Buffer
	if err := WriteJSON(&j1, r1); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&j2, r2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Errorf("cached run produced a different artifact")
	}
}

func TestRunDirResume(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	executed := 0
	count := func(CellReport) { executed++ }
	r1, err := RunDir(ctx, smallGrid(), dir, Options{OnCell: count})
	if err != nil {
		t.Fatal(err)
	}
	if executed != len(r1.Cells) {
		t.Fatalf("first run executed %d cells, want %d", executed, len(r1.Cells))
	}
	first, err := os.ReadFile(filepath.Join(dir, "report.json"))
	if err != nil {
		t.Fatal(err)
	}

	// A full directory resumes without executing anything.
	executed = 0
	if _, err := RunDir(ctx, smallGrid(), dir, Options{OnCell: count}); err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Errorf("resume executed %d cells, want 0", executed)
	}

	// Deleting one cell artifact re-runs exactly that cell, and the
	// reassembled report is byte-identical.
	if err := os.Remove(filepath.Join(dir, "cells", "cell-000003.json")); err != nil {
		t.Fatal(err)
	}
	executed = 0
	if _, err := RunDir(ctx, smallGrid(), dir, Options{OnCell: count}); err != nil {
		t.Fatal(err)
	}
	if executed != 1 {
		t.Errorf("partial resume executed %d cells, want 1", executed)
	}
	again, err := os.ReadFile(filepath.Join(dir, "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Errorf("resumed report differs from original")
	}

	// A different grid must be rejected, not silently mixed in.
	other := smallGrid()
	other.Circuits = other.Circuits[:1]
	if _, err := RunDir(ctx, other, dir, Options{}); err == nil || !strings.Contains(err.Error(), "different grid") {
		t.Errorf("mismatched grid error = %v", err)
	}
}

// A circuit too large for a machine point is a per-cell failure, recorded
// in the report — never a crash, and the rest of the sweep completes.
func TestInfeasibleCellRecorded(t *testing.T) {
	g := Grid{
		Topologies:     []TopologySpec{{Family: FamilyLine, Traps: 2}},
		Capacities:     []int{3},
		CommCapacities: []int{1},
		Circuits: []CircuitSpec{
			{Kind: CircuitRandom, Qubits: 40, Gates2Q: 10, Seed: 1}, // 40 ions into 2x(3-1) slots
			{Kind: CircuitRandom, Qubits: 3, Gates2Q: 4, Seed: 2},
		},
	}
	rep, err := Run(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures() != 1 {
		t.Fatalf("failures = %d, want 1 (report: %+v)", rep.Failures(), rep.Cells)
	}
	if rep.Cells[0].Error == "" {
		t.Errorf("infeasible cell has no error")
	}
	if rep.Cells[1].Error != "" || len(rep.Cells[1].Outcomes) == 0 {
		t.Errorf("feasible cell should still complete: %+v", rep.Cells[1])
	}
}

// Cells that failed only because the run was canceled are transient and
// must not be persisted as done: a resumed run re-executes them and the
// final report carries no trace of the interruption.
func TestRunDirCanceledCellsResume(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunDir(ctx, smallGrid(), dir, Options{}); err == nil {
		t.Fatal("expected context error from canceled run")
	}
	executed := 0
	rep, err := RunDir(context.Background(), smallGrid(), dir, Options{OnCell: func(CellReport) { executed++ }})
	if err != nil {
		t.Fatal(err)
	}
	if executed != len(rep.Cells) {
		t.Errorf("resume after cancel executed %d cells, want all %d", executed, len(rep.Cells))
	}
	if rep.Failures() != 0 {
		t.Errorf("resumed report still carries %d canceled cells", rep.Failures())
	}
}

func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, smallGrid(), Options{})
	if err == nil {
		t.Fatal("expected context error")
	}
	if rep == nil {
		t.Fatal("canceled run should still return the partial report")
	}
	for _, c := range rep.Cells {
		if c.Error == "" && len(c.Outcomes) == 0 {
			t.Errorf("cell %s neither completed nor marked canceled", c.ID)
		}
	}
}

func TestHashStability(t *testing.T) {
	h1, err := Hash(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	// Normalization: an explicitly-defaulted grid hashes like the implicit
	// one.
	g := smallGrid()
	g.Compilers = []string{muzzle.CompilerBaseline, muzzle.CompilerOptimized}
	h2, err := Hash(g)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("normalized hash differs: %s vs %s", h1, h2)
	}
	g.Capacities = []int{7}
	h3, err := Hash(g)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Errorf("capacity change did not change the hash")
	}
}

func TestPaperCircuitSpec(t *testing.T) {
	ins, err := (CircuitSpec{Kind: CircuitPaper}).expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 5 {
		t.Fatalf("paper suite = %d circuits, want 5", len(ins))
	}
	if ins[0].label != "Supremacy" {
		t.Errorf("first paper circuit = %q", ins[0].label)
	}
}

func TestRandomCountExpansion(t *testing.T) {
	ins, err := (CircuitSpec{Kind: CircuitRandom, Qubits: 8, Gates2Q: 20, Seed: 5, Count: 3}).expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 3 {
		t.Fatalf("count = %d instances, want 3", len(ins))
	}
	want := []string{"Random-8q-20g-s5", "Random-8q-20g-s6", "Random-8q-20g-s7"}
	for i, in := range ins {
		if in.label != want[i] {
			t.Errorf("instance %d label = %q, want %q", i, in.label, want[i])
		}
	}
}
