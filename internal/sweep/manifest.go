package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Artifact file names under a sweep directory.
const (
	manifestFile = "manifest.json"
	reportFile   = "report.json"
	reportCSV    = "report.csv"
	cellsDir     = "cells"
)

// manifestVersion guards the on-disk layout of resumable sweep
// directories.
const manifestVersion = 1

// manifest is the resume index of a sweep directory: which grid it
// belongs to (by content hash) and which cells have completed artifacts
// under cells/.
type manifest struct {
	Version  int    `json:"version"`
	GridHash string `json:"grid_hash"`
	Cells    int    `json:"cells"`
	Done     []int  `json:"done"`
}

func cellPath(dir string, index int) string {
	return filepath.Join(dir, cellsDir, fmt.Sprintf("cell-%06d.json", index))
}

// RunDir is Run with a resumable on-disk manifest: every completed cell is
// persisted under dir/cells/ and recorded in dir/manifest.json, so an
// interrupted sweep re-run with the same grid picks up where it stopped,
// re-executing only unfinished cells. The final report is written to
// dir/report.json and dir/report.csv. A directory holding a different
// grid's manifest is rejected rather than overwritten.
func RunDir(ctx context.Context, g Grid, dir string, opt Options) (*Report, error) {
	e, err := Expand(g)
	if err != nil {
		return nil, err
	}
	return e.RunDir(ctx, dir, opt)
}

// RunDir is the resumable run over an already-expanded grid; see the
// package RunDir.
func (e *Expanded) RunDir(ctx context.Context, dir string, opt Options) (*Report, error) {
	norm, cells := e.Grid, e.Cells
	hash, err := Hash(norm)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, cellsDir), 0o755); err != nil {
		return nil, fmt.Errorf("sweep: create artifact dir: %w", err)
	}

	m := manifest{Version: manifestVersion, GridHash: hash, Cells: len(cells)}
	if data, err := os.ReadFile(filepath.Join(dir, manifestFile)); err == nil {
		var prev manifest
		if err := json.Unmarshal(data, &prev); err != nil {
			return nil, fmt.Errorf("sweep: corrupt manifest in %s: %w", dir, err)
		}
		if prev.Version != manifestVersion {
			return nil, fmt.Errorf("sweep: manifest in %s has version %d, this binary writes %d; use a fresh directory",
				dir, prev.Version, manifestVersion)
		}
		if prev.GridHash != hash {
			return nil, fmt.Errorf("sweep: directory %s belongs to a different grid (hash %.12s..., this grid %.12s...); use a fresh directory",
				dir, prev.GridHash, hash)
		}
		m.Done = prev.Done
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("sweep: read manifest: %w", err)
	}

	// Reload completed cells; a missing or unreadable artifact simply
	// re-runs that cell.
	preloaded := make(map[int]CellReport, len(m.Done))
	for _, idx := range m.Done {
		if idx < 0 || idx >= len(cells) {
			continue
		}
		data, err := os.ReadFile(cellPath(dir, idx))
		if err != nil {
			continue
		}
		var cr CellReport
		if err := json.Unmarshal(data, &cr); err != nil || cr.ID != cells[idx].ID {
			continue
		}
		preloaded[idx] = cr
	}

	// Persist each finished cell and refresh the manifest as results
	// arrive, chaining any caller-supplied progress callback.
	var persistMu sync.Mutex
	var persistErrs []error
	done := make(map[int]bool, len(cells))
	for idx := range preloaded {
		done[idx] = true
	}
	userCB := opt.OnCell
	opt.OnCell = func(cr CellReport) {
		// A cell that failed under a canceled context is transient — the
		// work was interrupted, not impossible — so it must not be
		// persisted as done or a resumed run would never re-execute it.
		// Deterministic failures (infeasible cells) are persisted: they
		// would fail identically on every re-run. Successful results are
		// always persisted, even if cancellation landed after they
		// finished.
		transient := cr.Error != "" && ctx.Err() != nil
		if !transient {
			persistMu.Lock()
			if err := writeCell(dir, cr); err != nil {
				persistErrs = append(persistErrs, err)
			} else {
				done[cr.Index] = true
				if err := writeManifest(dir, m, done); err != nil {
					persistErrs = append(persistErrs, err)
				}
			}
			persistMu.Unlock()
		}
		if userCB != nil {
			userCB(cr)
		}
	}

	reports := e.execute(ctx, opt, preloaded)
	rep := &Report{Grid: norm, Cells: reports}
	if err := ctx.Err(); err != nil {
		return rep, errors.Join(append(persistErrs, err)...)
	}
	if err := writeReportFiles(dir, rep); err != nil {
		persistErrs = append(persistErrs, err)
	}
	return rep, errors.Join(persistErrs...)
}

// writeCell persists one cell report atomically (write + rename).
func writeCell(dir string, cr CellReport) error {
	data, err := json.MarshalIndent(cr, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encode cell %q: %w", cr.ID, err)
	}
	path := cellPath(dir, cr.Index)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// writeManifest rewrites the manifest with the current done set.
func writeManifest(dir string, m manifest, done map[int]bool) error {
	m.Done = make([]int, 0, len(done))
	for idx := range done {
		m.Done = append(m.Done, idx)
	}
	sort.Ints(m.Done)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encode manifest: %w", err)
	}
	path := filepath.Join(dir, manifestFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// writeReportFiles writes the aggregated JSON and CSV artifacts.
func writeReportFiles(dir string, rep *Report) error {
	jf, err := os.Create(filepath.Join(dir, reportFile))
	if err != nil {
		return err
	}
	if err := WriteJSON(jf, rep); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	cf, err := os.Create(filepath.Join(dir, reportCSV))
	if err != nil {
		return err
	}
	if err := WriteCSV(cf, rep); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}
