package sweep

import (
	"fmt"
	"path/filepath"
)

// Artifact file names under a sweep directory.
const (
	manifestFile = "manifest.json"
	reportFile   = "report.json"
	reportCSV    = "report.csv"
	cellsDir     = "cells"
)

// manifestVersion guards the on-disk layout of resumable sweep
// directories.
const manifestVersion = 1

// manifest is the resume index of a sweep directory: which grid it
// belongs to (by content hash) and which cells have completed artifacts
// under cells/.
type manifest struct {
	Version  int    `json:"version"`
	GridHash string `json:"grid_hash"`
	Cells    int    `json:"cells"`
	Done     []int  `json:"done"`
}

func cellPath(dir string, index int) string {
	return filepath.Join(dir, cellsDir, fmt.Sprintf("cell-%06d.json", index))
}
