package sweep

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyGrid is a 2-cell grid cheap enough to compile twice in one test.
func tinyGrid() Grid {
	return Grid{
		Topologies:     []TopologySpec{{Family: FamilyLine, Traps: 4}},
		Capacities:     []int{6},
		CommCapacities: []int{2},
		Circuits: []CircuitSpec{
			{Kind: CircuitRandom, Qubits: 8, Gates2Q: 20, Seed: 3},
			{Kind: CircuitQFT, Qubits: 6},
		},
	}
}

// fakeReport fabricates a plausible completed report for a cell without
// running the compiler.
func fakeReport(e *Expanded, idx int) CellReport {
	cr := e.Cells[idx].Skeleton()
	cr.Outcomes = []OutcomeSummary{{Compiler: "baseline", Shuttles: 7}}
	return cr
}

// A corrupt, truncated, or mismatched cell artifact must read as "not done"
// — the cell re-runs — never as an open error or a poisoned resume.
func TestOpenDirTreatsCorruptCellsAsMissing(t *testing.T) {
	e, err := Expand(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d, err := OpenDir(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.Persist(fakeReport(e, i)); err != nil {
			t.Fatal(err)
		}
	}

	// Damage four of the five persisted cells four different ways.
	if err := os.WriteFile(cellPath(dir, 0), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err) // syntactically corrupt
	}
	if err := os.WriteFile(cellPath(dir, 1), nil, 0o644); err != nil {
		t.Fatal(err) // truncated to nothing
	}
	wrong, err := os.ReadFile(cellPath(dir, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cellPath(dir, 2), wrong, 0o644); err != nil {
		t.Fatal(err) // valid JSON, but the wrong cell's report
	}
	if err := os.Remove(cellPath(dir, 4)); err != nil {
		t.Fatal(err) // manifest says done, artifact gone
	}

	d2, err := OpenDir(dir, e)
	if err != nil {
		t.Fatalf("open over damaged cells: %v", err)
	}
	pre := d2.Preloaded()
	if len(pre) != 1 {
		t.Fatalf("preloaded %d cells, want only the intact one", len(pre))
	}
	if _, ok := pre[3]; !ok {
		t.Fatalf("intact cell 3 not preloaded (got %v)", pre)
	}
}

// OpenDir still refuses the errors that must stay fatal: a manifest from a
// different grid or an unknown layout version.
func TestOpenDirRejectsForeignManifest(t *testing.T) {
	e, err := Expand(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d, err := OpenDir(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Persist(fakeReport(e, 0)); err != nil {
		t.Fatal(err)
	}

	other := smallGrid()
	other.Capacities = []int{7}
	oe, err := Expand(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir, oe); err == nil || !strings.Contains(err.Error(), "different grid") {
		t.Fatalf("foreign-grid open = %v, want a different-grid error", err)
	}
}

// Cell and manifest writes must never leave temp droppings behind — the
// rename either happened or the temp file was removed.
func TestDirWritesLeaveNoTempFiles(t *testing.T) {
	e, err := Expand(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d, err := OpenDir(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	for i := range e.Cells {
		if err := d.Persist(fakeReport(e, i)); err != nil {
			t.Fatal(err)
		}
	}
	rep := &Report{Grid: e.Grid, Cells: []CellReport{fakeReport(e, 0)}}
	if err := d.WriteReports(rep); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{dir, filepath.Join(dir, cellsDir)} {
		entries, err := os.ReadDir(sub)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			if strings.Contains(ent.Name(), ".tmp-") {
				t.Errorf("temp file %s left behind in %s", ent.Name(), sub)
			}
		}
	}
	if d.DoneCount() != len(e.Cells) {
		t.Fatalf("done = %d, want %d", d.DoneCount(), len(e.Cells))
	}
}

// End to end: a run whose artifact was torn on disk resumes by re-running
// exactly the damaged cell and reproduces report.json byte for byte.
func TestRunDirRerunsCorruptCell(t *testing.T) {
	exp, err := Expand(tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rep1, err := exp.RunDir(context.Background(), dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Failures() != 0 {
		t.Fatalf("first run had %d failures", rep1.Failures())
	}
	json1, err := os.ReadFile(filepath.Join(dir, reportFile))
	if err != nil {
		t.Fatal(err)
	}

	// Tear cell 0 mid-write (as a crash would) and resume.
	if err := os.WriteFile(cellPath(dir, 0), []byte(`{"index": 0, "id": "`), 0o644); err != nil {
		t.Fatal(err)
	}
	exp2, err := Expand(tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := exp2.RunDir(context.Background(), dir, Options{})
	if err != nil {
		t.Fatalf("resume over torn cell: %v", err)
	}
	if rep2.Failures() != 0 {
		t.Fatalf("resumed run had %d failures", rep2.Failures())
	}
	json2, err := os.ReadFile(filepath.Join(dir, reportFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(json1) != string(json2) {
		t.Fatal("report.json differs after re-running a torn cell")
	}
}
