// Package sweep is the scenario-sweep engine: it expands a declarative
// parameter grid — topology family/size, trap capacity, communication
// capacity, compiler set, circuit family — into a deterministic list of
// cells (shards), executes the cells in parallel through muzzle.Pipeline,
// and aggregates the per-cell outcomes into stable JSON/CSV artifacts.
//
// The grid follows the evaluation methodology of Murali et al. (ISCA
// 2020) — the source of the L6/ring/grid topology families the paper's
// hardware model draws on — which sweeps topology x capacity x policy to
// compare compilers. Sharing a content-addressed compile cache
// (muzzle.Cache) across cells and across runs makes overlapping cells
// free: a cell that appeared in any earlier run with the same inputs is
// served without invoking a compiler.
//
// Everything a grid can express is validated up front by Expand: bad
// topology parameters (a 2-trap ring, a 0x3 grid, a disconnected custom
// edge list), unknown compilers, and impossible capacity combinations are
// reported as errors before any cell runs, so user-supplied grids (CLI
// files, daemon requests) can never crash the process.
//
// Artifacts are deterministic: the same grid produces byte-identical
// report JSON on every run. Wall-clock compile time is deliberately
// excluded from cell outcomes for exactly this reason; every retained
// metric (shuttle counts, simulated duration, fidelity) is a pure
// function of the grid.
package sweep

import (
	"fmt"

	"muzzle"
	"muzzle/internal/topo"
)

// Topology family names accepted by TopologySpec.
const (
	FamilyLine   = "line"
	FamilyRing   = "ring"
	FamilyGrid   = "grid"
	FamilyCustom = "custom"
)

// TopologySpec selects one trap-interconnection graph of the grid.
type TopologySpec struct {
	// Family is one of "line", "ring", "grid", "custom".
	Family string `json:"family"`
	// Traps sizes a line or ring, and declares the trap count of a custom
	// edge list.
	Traps int `json:"traps,omitempty"`
	// Rows and Cols size a grid.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Edges is the undirected edge list of a custom topology. It must be
	// connected, with every endpoint in [0, Traps), no self-loops, and no
	// duplicate edges.
	Edges [][2]int `json:"edges,omitempty"`
	// Name labels a custom topology (default "custom<Traps>"). Labels
	// appear in cell IDs and must be unique within a grid.
	Name string `json:"name,omitempty"`
}

// Build constructs the topology, validating every parameter.
func (s TopologySpec) Build() (*topo.Topology, error) {
	switch s.Family {
	case FamilyLine:
		return topo.NewLinear(s.Traps)
	case FamilyRing:
		return topo.NewRing(s.Traps)
	case FamilyGrid:
		return topo.NewGrid(s.Rows, s.Cols)
	case FamilyCustom:
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("custom%d", s.Traps)
		}
		return topo.New(name, s.Traps, s.Edges)
	default:
		return nil, fmt.Errorf("sweep: unknown topology family %q (want %s|%s|%s|%s)",
			s.Family, FamilyLine, FamilyRing, FamilyGrid, FamilyCustom)
	}
}

// Circuit family names accepted by CircuitSpec.
const (
	CircuitPaper  = "paper"
	CircuitQFT    = "qft"
	CircuitRandom = "random"
)

// CircuitSpec selects a circuit family of the grid. "paper" expands to the
// five NISQ benchmarks of the paper's Table II; "qft" is the Qubits-qubit
// quantum Fourier transform; "random" draws Count seeded random circuits
// with exactly Gates2Q two-qubit gates each (seeds Seed, Seed+1, ...).
type CircuitSpec struct {
	Kind    string `json:"kind"`
	Qubits  int    `json:"qubits,omitempty"`
	Gates2Q int    `json:"gates_2q,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	Count   int    `json:"count,omitempty"`
}

// circuitInstance is one expanded circuit of a spec: a stable label plus a
// deferred builder (the paper circuits are large; cells build lazily).
type circuitInstance struct {
	label string
	build func() *muzzle.Circuit
}

// expand validates the spec and lists its circuit instances.
func (s CircuitSpec) expand() ([]circuitInstance, error) {
	switch s.Kind {
	case CircuitPaper:
		specs := muzzle.Benchmarks()
		out := make([]circuitInstance, len(specs))
		for i, sp := range specs {
			out[i] = circuitInstance{label: sp.Name, build: sp.Build}
		}
		return out, nil
	case CircuitQFT:
		if s.Qubits < 1 {
			return nil, fmt.Errorf("sweep: qft needs qubits >= 1, got %d", s.Qubits)
		}
		q := s.Qubits
		return []circuitInstance{{
			label: fmt.Sprintf("QFT%d", q),
			build: func() *muzzle.Circuit { return muzzle.QFT(q) },
		}}, nil
	case CircuitRandom:
		if s.Qubits < 2 {
			return nil, fmt.Errorf("sweep: random circuit needs qubits >= 2, got %d", s.Qubits)
		}
		if s.Gates2Q < 0 {
			return nil, fmt.Errorf("sweep: random circuit needs gates_2q >= 0, got %d", s.Gates2Q)
		}
		if s.Count < 0 {
			return nil, fmt.Errorf("sweep: random circuit count %d must be >= 0", s.Count)
		}
		count := s.Count
		if count == 0 {
			count = 1
		}
		out := make([]circuitInstance, count)
		for i := 0; i < count; i++ {
			seed := s.Seed + int64(i)
			q, g := s.Qubits, s.Gates2Q
			out[i] = circuitInstance{
				label: fmt.Sprintf("Random-%dq-%dg-s%d", q, g, seed),
				build: func() *muzzle.Circuit { return muzzle.RandomCircuit(q, g, seed) },
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("sweep: unknown circuit kind %q (want %s|%s|%s)",
			s.Kind, CircuitPaper, CircuitQFT, CircuitRandom)
	}
}

// Grid is a declarative parameter sweep: the cross product of topologies x
// capacities x communication capacities x circuits, each cell evaluated
// under the full compiler set. The zero values of the optional axes default
// to the paper's hardware point (capacity 17, communication capacity 2)
// and compiler pair (baseline, optimized).
type Grid struct {
	// Name labels the sweep in artifacts.
	Name string `json:"name,omitempty"`
	// Topologies are the trap graphs to sweep (at least one).
	Topologies []TopologySpec `json:"topologies"`
	// Capacities are the total trap capacities to sweep (default {17}).
	Capacities []int `json:"capacities,omitempty"`
	// CommCapacities are the communication capacities to sweep
	// (default {2}). Every capacity/comm combination must satisfy
	// 0 <= comm < capacity.
	CommCapacities []int `json:"comm_capacities,omitempty"`
	// Compilers is the registry compiler set run on every cell
	// (default {"baseline", "optimized"}).
	Compilers []string `json:"compilers,omitempty"`
	// Circuits are the circuit families to sweep (at least one).
	Circuits []CircuitSpec `json:"circuits"`
	// Sim overrides the simulator model constants for every cell; nil uses
	// the paper's defaults. When given, the full parameter set must be
	// specified (absent fields are zero, and invalid combinations are
	// rejected at expansion).
	Sim *muzzle.SimParams `json:"sim,omitempty"`
}

// normalize returns the grid with defaulted axes materialized, so the
// echoed grid in artifacts is self-describing and expansion is a pure
// function of the normalized form.
func (g Grid) normalize() Grid {
	if len(g.Capacities) == 0 {
		g.Capacities = []int{17}
	}
	if len(g.CommCapacities) == 0 {
		g.CommCapacities = []int{2}
	}
	if len(g.Compilers) == 0 {
		g.Compilers = []string{muzzle.CompilerBaseline, muzzle.CompilerOptimized}
	}
	return g
}

// Cell is one shard of an expanded grid: a fully resolved (topology,
// capacity, comm, circuit) point. Cells are ordered and indexed
// deterministically — nested loops over the grid's axes in declaration
// order — so the same grid always expands to the same shard list.
type Cell struct {
	// Index is the cell's position in expansion order.
	Index int
	// ID is the stable cell identifier, unique within the grid:
	// "<topology>/cap<capacity>-comm<comm>/<circuit>".
	ID string
	// Topology is the topology label (e.g. "L6", "R8", "G2x3").
	Topology string
	// Traps is the trap count of the topology.
	Traps int
	// Capacity and CommCapacity are the machine's capacity parameters.
	Capacity     int
	CommCapacity int
	// Circuit is the circuit label (e.g. "QFT16").
	Circuit string
	// Machine is the validated hardware model of the cell.
	Machine muzzle.MachineConfig

	build func() *muzzle.Circuit
}

// Build constructs the cell's circuit.
func (c Cell) Build() *muzzle.Circuit { return c.build() }

// Expanded is a validated grid ready to run: the normalized grid plus its
// deterministic cell list. It exists so expansion — topology construction
// includes the all-pairs path precompute — happens once per submission,
// not once per validation site and again per run.
type Expanded struct {
	// Grid is the normalized grid (defaulted axes materialized).
	Grid Grid
	// Cells is the deterministic shard list, indexed in expansion order.
	Cells []Cell
}

// Expand validates the grid and returns it expanded: the normalized form
// plus the deterministic cell list. Every user-visible parameter is
// checked here — topology families and sizes, capacity combinations,
// compiler names, circuit specs, and label collisions — so callers (the
// CLI, the daemon's POST /v1/sweeps) can map any error to a clean
// rejection before work starts.
func Expand(g Grid) (*Expanded, error) {
	g = g.normalize()
	if len(g.Topologies) == 0 {
		return nil, fmt.Errorf("sweep: grid needs at least one topology")
	}
	if len(g.Circuits) == 0 {
		return nil, fmt.Errorf("sweep: grid needs at least one circuit")
	}
	seenComp := make(map[string]bool, len(g.Compilers))
	for _, name := range g.Compilers {
		if name == "" {
			return nil, fmt.Errorf("sweep: empty compiler name")
		}
		if seenComp[name] {
			return nil, fmt.Errorf("sweep: compiler %q listed twice", name)
		}
		seenComp[name] = true
		if !muzzle.HasCompiler(name) {
			return nil, fmt.Errorf("sweep: compiler %q is not registered (registered: %v)",
				name, muzzle.RegisteredCompilers())
		}
	}
	if g.Sim != nil {
		for _, err := range []error{
			g.Sim.Time.Validate(),
			g.Sim.Heating.Validate(),
			g.Sim.Fidelity.Validate(),
			g.Sim.Cooling.Validate(),
		} {
			if err != nil {
				return nil, fmt.Errorf("sweep: bad sim params: %w", err)
			}
		}
	}

	type builtTopo struct {
		t     *topo.Topology
		label string
	}
	topos := make([]builtTopo, len(g.Topologies))
	seenTopo := make(map[string]bool, len(g.Topologies))
	for i, spec := range g.Topologies {
		t, err := spec.Build()
		if err != nil {
			return nil, fmt.Errorf("sweep: topologies[%d]: %w", i, err)
		}
		if seenTopo[t.Name()] {
			return nil, fmt.Errorf("sweep: topology label %q appears twice; give custom topologies distinct names", t.Name())
		}
		seenTopo[t.Name()] = true
		topos[i] = builtTopo{t: t, label: t.Name()}
	}

	var instances []circuitInstance
	seenCirc := make(map[string]bool)
	for i, spec := range g.Circuits {
		ins, err := spec.expand()
		if err != nil {
			return nil, fmt.Errorf("sweep: circuits[%d]: %w", i, err)
		}
		for _, in := range ins {
			if seenCirc[in.label] {
				return nil, fmt.Errorf("sweep: circuit %q appears twice in the grid", in.label)
			}
			seenCirc[in.label] = true
		}
		instances = append(instances, ins...)
	}

	var cells []Cell
	for _, bt := range topos {
		for _, capacity := range g.Capacities {
			for _, comm := range g.CommCapacities {
				cfg := muzzle.MachineConfig{Topology: bt.t, Capacity: capacity, CommCapacity: comm}
				if err := cfg.Validate(); err != nil {
					return nil, fmt.Errorf("sweep: %s capacity=%d comm=%d: %w", bt.label, capacity, comm, err)
				}
				for _, in := range instances {
					cells = append(cells, Cell{
						Index:        len(cells),
						ID:           fmt.Sprintf("%s/cap%d-comm%d/%s", bt.label, capacity, comm, in.label),
						Topology:     bt.label,
						Traps:        bt.t.NumTraps(),
						Capacity:     capacity,
						CommCapacity: comm,
						Circuit:      in.label,
						Machine:      cfg,
						build:        in.build,
					})
				}
			}
		}
	}
	return &Expanded{Grid: g, Cells: cells}, nil
}

// sortedOutcomes orders a cell's per-compiler outcomes by the grid's
// compiler run order; helper for artifact assembly. Outcomes only ever
// come from a pipeline configured with exactly g.Compilers, so the loop
// covers every entry.
func (g Grid) sortedOutcomes(outcomes map[string]*muzzle.EvalOutcomeJSON) []OutcomeSummary {
	out := make([]OutcomeSummary, 0, len(outcomes))
	for _, name := range g.Compilers {
		o := outcomes[name]
		if o == nil {
			continue
		}
		out = append(out, OutcomeSummary{
			Compiler:    name,
			Shuttles:    o.Shuttles,
			Swaps:       o.Swaps,
			Splits:      o.Splits,
			Merges:      o.Merges,
			Reorders:    o.Reorders,
			Rebalances:  o.Rebalances,
			Gates1Q:     o.Gates1Q,
			Gates2Q:     o.Gates2Q,
			DurationUS:  o.DurationUS,
			LogFidelity: o.LogFidelity,
			Fidelity:    o.Fidelity,
		})
	}
	return out
}
