package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"muzzle/internal/faults"
)

// Dir is the resume state of a sweep artifact directory: the manifest, the
// set of completed cells, and the persistence rules that make the layout
// crash-safe. It is the single authority over the on-disk format — the
// local RunDir and the distributed coordinator both write through it, so a
// directory produced by one is byte-compatible with (and resumable by)
// the other.
//
// All writes are atomic: cell files and the manifest go through a unique
// temp file in the same directory, fsync, then rename, so a crash mid-write
// can never leave a torn cells/N.json at its final path. Reads are equally
// defensive: a corrupt or mismatched cell file is treated as missing — the
// cell re-runs — never as a fatal error.
type Dir struct {
	dir string
	e   *Expanded

	mu         sync.Mutex
	m          manifest
	done       map[int]bool
	preloaded  map[int]CellReport
	faultScope string
}

// SetFaultScope subjects the directory's writes to the process-global
// fault injector (internal/faults) under the given scope. Tests only;
// the scope is empty in production.
func (d *Dir) SetFaultScope(scope string) {
	d.mu.Lock()
	d.faultScope = scope
	d.mu.Unlock()
}

// OpenDir binds an expanded grid to an artifact directory, creating it if
// needed. A directory holding a different grid's manifest (or a manifest
// from an incompatible layout version) is rejected rather than overwritten.
// Completed cells recorded in the manifest are reloaded; each one is
// validated against the grid's cell list, and any unreadable, corrupt, or
// mismatched artifact is silently dropped so the cell re-runs.
func OpenDir(dir string, e *Expanded) (*Dir, error) {
	hash, err := Hash(e.Grid)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, cellsDir), 0o755); err != nil {
		return nil, fmt.Errorf("sweep: create artifact dir: %w", err)
	}

	d := &Dir{
		dir:       dir,
		e:         e,
		m:         manifest{Version: manifestVersion, GridHash: hash, Cells: len(e.Cells)},
		done:      make(map[int]bool),
		preloaded: make(map[int]CellReport),
	}
	if data, err := os.ReadFile(filepath.Join(dir, manifestFile)); err == nil {
		var prev manifest
		if err := json.Unmarshal(data, &prev); err != nil {
			return nil, fmt.Errorf("sweep: corrupt manifest in %s: %w", dir, err)
		}
		if prev.Version != manifestVersion {
			return nil, fmt.Errorf("sweep: manifest in %s has version %d, this binary writes %d; use a fresh directory",
				dir, prev.Version, manifestVersion)
		}
		if prev.GridHash != hash {
			return nil, fmt.Errorf("sweep: directory %s belongs to a different grid (hash %.12s..., this grid %.12s...); use a fresh directory",
				dir, prev.GridHash, hash)
		}
		d.m.Done = prev.Done
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("sweep: read manifest: %w", err)
	}

	for _, idx := range d.m.Done {
		if idx < 0 || idx >= len(e.Cells) {
			continue
		}
		data, err := os.ReadFile(cellPath(dir, idx))
		if err != nil {
			continue
		}
		var cr CellReport
		if err := json.Unmarshal(data, &cr); err != nil || cr.Index != idx || cr.ID != e.Cells[idx].ID {
			continue
		}
		d.preloaded[idx] = cr
		d.done[idx] = true
	}
	return d, nil
}

// Path returns the artifact directory.
func (d *Dir) Path() string { return d.dir }

// Preloaded returns a copy of the completed cell reports reloaded at open:
// the cells a run over this directory does not need to execute again.
func (d *Dir) Preloaded() map[int]CellReport {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[int]CellReport, len(d.preloaded))
	for idx, cr := range d.preloaded {
		out[idx] = cr
	}
	return out
}

// DoneCount returns how many cells the directory currently records as
// complete.
func (d *Dir) DoneCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.done)
}

// Persist atomically writes one finished cell under cells/ and folds it
// into the manifest. Safe for concurrent use.
func (d *Dir) Persist(cr CellReport) error {
	data, err := json.MarshalIndent(cr, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encode cell %q: %w", cr.ID, err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := writeFileAtomic(d.faultScope, cellPath(d.dir, cr.Index), append(data, '\n')); err != nil {
		return err
	}
	d.done[cr.Index] = true
	return d.writeManifestLocked()
}

// writeManifestLocked rewrites the manifest from the current done set.
func (d *Dir) writeManifestLocked() error {
	d.m.Done = make([]int, 0, len(d.done))
	for idx := range d.done {
		d.m.Done = append(d.m.Done, idx)
	}
	sort.Ints(d.m.Done)
	data, err := json.MarshalIndent(d.m, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encode manifest: %w", err)
	}
	return writeFileAtomic(d.faultScope, filepath.Join(d.dir, manifestFile), append(data, '\n'))
}

// WriteReports writes the aggregated report.json and report.csv artifacts.
func (d *Dir) WriteReports(rep *Report) error {
	var jbuf, cbuf bytesBuffer
	if err := WriteJSON(&jbuf, rep); err != nil {
		return err
	}
	if err := WriteCSV(&cbuf, rep); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := writeFileAtomic(d.faultScope, filepath.Join(d.dir, reportFile), jbuf.b); err != nil {
		return err
	}
	return writeFileAtomic(d.faultScope, filepath.Join(d.dir, reportCSV), cbuf.b)
}

// bytesBuffer is a minimal io.Writer over a byte slice (avoids pulling in
// bytes.Buffer's unused surface for two short-lived writes).
type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// writeFileAtomic writes data to path via a uniquely named temp file in the
// same directory, fsyncs it, then renames it into place. The unique name
// keeps concurrent writers (two processes resuming the same directory) from
// trampling each other's temp files, and the fsync-before-rename ensures a
// crash can never surface a torn file at the final path. A non-empty
// faultScope announces the write, fsync, and rename to the fault injector;
// a torn-write fault leaves a partial temp file, which the deferred Remove
// cleans up — the final path is never affected, even under injection.
func writeFileAtomic(faultScope, path string, data []byte) error {
	dir, base := filepath.Split(path)
	data, injErr := faults.CheckWrite(faultScope, data)
	if injErr != nil && len(data) == 0 {
		return injErr
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if injErr != nil { // injected torn write: the partial temp file dies here
		tmp.Close()
		return injErr
	}
	if err := faults.Check(faultScope, faults.OpSync); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	if err := faults.Check(faultScope, faults.OpRename); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
