package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is the shared CLI vocabulary for sweep grids: cmd/muzzlesweep
// and cmd/muzzlecoord accept the same axis flags, so a grid described on
// one command line expands identically on the other (and hashes to the
// same resumable artifact directory).

// GridFromFlags synthesizes a Grid from the comma-separated axis flag
// values used by the sweep CLIs: topologies ("line:6,ring:6,grid:2x3"),
// trap capacities ("17"), communication capacities ("2"), a compiler set
// ("" = registry default pair), and circuits ("paper,qft:16,
// random:Q:G:SEED[:COUNT]").
func GridFromFlags(topoList, capList, commList, compilers, circuits string) (Grid, error) {
	var g Grid
	for _, spec := range SplitList(topoList) {
		ts, err := ParseTopoFlag(spec)
		if err != nil {
			return g, err
		}
		g.Topologies = append(g.Topologies, ts)
	}
	var err error
	if g.Capacities, err = ParseIntList("-capacities", capList); err != nil {
		return g, err
	}
	if g.CommCapacities, err = ParseIntList("-comm", commList); err != nil {
		return g, err
	}
	if compilers != "" {
		g.Compilers = SplitList(compilers)
	}
	for _, spec := range SplitList(circuits) {
		cs, err := ParseCircuitFlag(spec)
		if err != nil {
			return g, err
		}
		g.Circuits = append(g.Circuits, cs)
	}
	return g, nil
}

// DecodeGrid strictly decodes one JSON grid object: unknown fields and
// trailing data are errors, matching the daemon's POST /v1/sweeps.
func DecodeGrid(r io.Reader, g *Grid) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(g); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after grid object")
	}
	return nil
}

// SplitList splits a comma-separated flag value, trimming blanks.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// ParseIntList parses a comma-separated integer axis; flagName labels
// errors.
func ParseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range SplitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("%s: bad value %q", flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseTopoFlag parses line:N, ring:N, or grid:RxC.
func ParseTopoFlag(s string) (TopologySpec, error) {
	family, arg, ok := strings.Cut(s, ":")
	if !ok {
		return TopologySpec{}, fmt.Errorf("-topo: %q should be line:N, ring:N, or grid:RxC", s)
	}
	switch family {
	case FamilyLine, FamilyRing:
		n, err := strconv.Atoi(arg)
		if err != nil {
			return TopologySpec{}, fmt.Errorf("-topo: bad trap count in %q", s)
		}
		return TopologySpec{Family: family, Traps: n}, nil
	case FamilyGrid:
		rs, cs, ok := strings.Cut(arg, "x")
		if !ok {
			return TopologySpec{}, fmt.Errorf("-topo: grid wants RxC, got %q", s)
		}
		rows, err1 := strconv.Atoi(rs)
		cols, err2 := strconv.Atoi(cs)
		if err1 != nil || err2 != nil {
			return TopologySpec{}, fmt.Errorf("-topo: bad grid dimensions in %q", s)
		}
		return TopologySpec{Family: family, Rows: rows, Cols: cols}, nil
	default:
		return TopologySpec{}, fmt.Errorf("-topo: unknown family %q (custom topologies need -grid)", family)
	}
}

// ParseCircuitFlag parses paper, qft:N, or random:Q:G:SEED[:COUNT].
func ParseCircuitFlag(s string) (CircuitSpec, error) {
	kind, rest, _ := strings.Cut(s, ":")
	switch kind {
	case CircuitPaper:
		if rest != "" {
			return CircuitSpec{}, fmt.Errorf("-circuits: paper takes no arguments, got %q", s)
		}
		return CircuitSpec{Kind: kind}, nil
	case CircuitQFT:
		n, err := strconv.Atoi(rest)
		if err != nil {
			return CircuitSpec{}, fmt.Errorf("-circuits: qft wants qft:N, got %q", s)
		}
		return CircuitSpec{Kind: kind, Qubits: n}, nil
	case CircuitRandom:
		parts := strings.Split(rest, ":")
		if len(parts) != 3 && len(parts) != 4 {
			return CircuitSpec{}, fmt.Errorf("-circuits: random wants random:Q:G:SEED[:COUNT], got %q", s)
		}
		nums := make([]int64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return CircuitSpec{}, fmt.Errorf("-circuits: bad number %q in %q", p, s)
			}
			nums[i] = v
		}
		spec := CircuitSpec{Kind: kind, Qubits: int(nums[0]), Gates2Q: int(nums[1]), Seed: nums[2]}
		if len(nums) == 4 {
			spec.Count = int(nums[3])
		}
		return spec, nil
	default:
		return CircuitSpec{}, fmt.Errorf("-circuits: unknown kind %q (want paper, qft:N, random:Q:G:SEED[:COUNT])", kind)
	}
}
