package exact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"muzzle/internal/baseline"
	"muzzle/internal/circuit"
	"muzzle/internal/core"
	"muzzle/internal/machine"
	"muzzle/internal/topo"
)

func fig4Circuit() *circuit.Circuit {
	c := circuit.New("fig4", 5)
	c.Add2Q("ms", 1, 2)
	c.Add2Q("ms", 2, 3)
	c.Add2Q("ms", 1, 2)
	c.Add2Q("ms", 2, 4)
	return c
}

// TestFigure4Optimum: the true optimum of the Fig. 4 program is 1 shuttle —
// exactly what the future-ops policy achieves (the paper's point).
func TestFigure4Optimum(t *testing.T) {
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	placement := [][]int{{0, 1}, {2, 3, 4}}
	got, err := MinShuttles(fig4Circuit(), cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("optimum = %d, want 1", got)
	}
}

func TestCoLocatedNeedsNothing(t *testing.T) {
	c := circuit.New("x", 4)
	c.Add2Q("ms", 0, 1)
	c.Add2Q("ms", 0, 1)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	got, err := MinShuttles(c, cfg, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("optimum = %d, want 0", got)
	}
}

func TestSingleCrossTrapGate(t *testing.T) {
	c := circuit.New("x", 4)
	c.Add2Q("ms", 0, 2)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	got, err := MinShuttles(c, cfg, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("optimum = %d, want 1", got)
	}
}

func TestMultiHopDistance(t *testing.T) {
	// Ions at opposite ends of L4: the gate costs 3 hops minimum (move one
	// ion all the way) — or fewer if they meet midway: meeting in the
	// middle costs 1+2 or 2+1 = 3 as well.
	c := circuit.New("x", 4)
	c.Add2Q("ms", 0, 3)
	cfg := machine.Config{Topology: topo.Linear(4), Capacity: 4, CommCapacity: 1}
	got, err := MinShuttles(c, cfg, [][]int{{0}, {1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("optimum = %d, want 3", got)
	}
}

func TestThirdTrapMeeting(t *testing.T) {
	// Two ions in full traps with an empty trap between them: the cheapest
	// co-location moves both into the middle (2 shuttles), which neither
	// heuristic direction policy would do on its own.
	c := circuit.New("x", 9)
	c.Add2Q("ms", 0, 5)
	cfg := machine.Config{Topology: topo.Linear(3), Capacity: 4, CommCapacity: 0}
	placement := [][]int{{0, 1, 2, 3}, {8}, {5, 4, 6, 7}}
	got, err := MinShuttles(c, cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("optimum = %d, want 2 (meet in the middle)", got)
	}
}

func TestCapacityRespected(t *testing.T) {
	// The destination trap is full; the optimum must pay to make room (or
	// meet elsewhere).
	c := circuit.New("x", 6)
	c.Add2Q("ms", 0, 2)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 0}
	placement := [][]int{{0, 1}, {2, 3, 4, 5}}
	got, err := MinShuttles(c, cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	// Moving ion 2 into T0 costs 1; moving ion 0 into full T1 is illegal
	// without first evicting (2 total). Optimum 1.
	if got != 1 {
		t.Fatalf("optimum = %d, want 1", got)
	}
}

func TestStateSpaceGuard(t *testing.T) {
	c := circuit.New("big", 40)
	c.Add2Q("ms", 0, 39)
	cfg := machine.PaperL6()
	placement := make([][]int, 6)
	for q := 0; q < 40; q++ {
		placement[q%6] = append(placement[q%6], q)
	}
	if _, err := MinShuttles(c, cfg, placement); err == nil {
		t.Fatal("expected intractability error for 40 ions on 6 traps")
	}
}

func TestErrors(t *testing.T) {
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	c := circuit.New("x", 4)
	c.Add2Q("ms", 0, 3)
	if _, err := MinShuttles(c, machine.Config{}, [][]int{{0}}); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := MinShuttles(c, cfg, [][]int{{}, {}}); err == nil {
		t.Error("empty placement accepted")
	}
	if _, err := MinShuttles(c, cfg, [][]int{{0, 1}, {2}}); err == nil {
		t.Error("unplaced gate qubit accepted")
	}
}

// TestHeuristicsNeverBeatOptimum is the optimality-gap property: on tiny
// random instances, both compilers (without re-ordering, which changes the
// gate order the optimum is defined over) produce at least as many shuttles
// as the exact optimum.
func TestHeuristicsNeverBeatOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nIons := 4 + rng.Intn(3) // 4-6 ions
		nTraps := 2 + rng.Intn(2)
		cfg := machine.Config{Topology: topo.Linear(nTraps), Capacity: 4, CommCapacity: 1}
		placement := make([][]int, nTraps)
		for q := 0; q < nIons; q++ {
			tr := rng.Intn(nTraps)
			for len(placement[tr]) >= cfg.MaxInitialLoad() {
				tr = (tr + 1) % nTraps
			}
			placement[tr] = append(placement[tr], q)
		}
		c := circuit.New("q", nIons)
		for i := 0; i < 3+rng.Intn(6); i++ {
			a, b := rng.Intn(nIons), rng.Intn(nIons)
			if a == b {
				continue
			}
			c.Add2Q("ms", a, b)
		}
		if c.Count2Q() == 0 {
			return true
		}
		opt, err := MinShuttles(c, cfg, placement)
		if err != nil {
			return true // capacity deadlocks are legal to skip
		}
		base, err := baseline.New().CompileMapped(c, cfg, placement)
		if err != nil {
			return true
		}
		noReorder := core.NewWithOptions(core.Options{DisableReorder: true})
		optim, err := noReorder.CompileMapped(c, cfg, placement)
		if err != nil {
			return true
		}
		return base.Shuttles >= opt && optim.Shuttles >= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
