// Package exact computes provably minimal shuttle counts for small
// instances by exhaustive shortest-path search over machine placements.
//
// The paper's Section IV-E1 argues that exact methods (ILP/SMT) "do not
// scale well with circuit size" and justifies heuristics by that
// intractability. This package makes the comparison concrete: it finds the
// true optimum for tiny circuits, letting tests and benchmarks measure the
// optimality gap of both compilers — and letting a benchmark demonstrate
// the exponential blow-up the paper cites.
//
// Model: gates execute in the given program order; between gates, any
// sequence of single-ion hops between adjacent traps is allowed (each hop
// is one shuttle), subject to trap capacity. A 2Q gate requires its ions
// co-located. This matches the shuttle-count accounting of the compilers
// (intra-chain swaps are not shuttles), and is *stronger* than the
// heuristics in one way — the optimum may move both ions of a gate to a
// third trap when that pays off globally.
package exact

import (
	"container/heap"
	"fmt"

	"muzzle/internal/circuit"
	"muzzle/internal/machine"
)

// MaxStates bounds the search; instances whose placement-space size exceeds
// it are rejected (that blow-up is the paper's point).
const MaxStates = 4 << 20

// MinShuttles returns the minimal number of shuttles needed to execute all
// 2Q gates of c in program order, starting from placement. Single-qubit
// gates are ignored (they never force movement).
func MinShuttles(c *circuit.Circuit, cfg machine.Config, placement [][]int) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	nTraps := cfg.Topology.NumTraps()
	nIons := 0
	trapOf := map[int]int{}
	for t, chain := range placement {
		for _, q := range chain {
			trapOf[q] = t
			nIons++
		}
	}
	if nIons == 0 {
		return 0, fmt.Errorf("exact: empty placement")
	}
	// Placement-space size check: nTraps^nIons.
	space := 1
	for i := 0; i < nIons; i++ {
		space *= nTraps
		if space > MaxStates {
			return 0, fmt.Errorf("exact: %d ions on %d traps exceeds the tractable state space (%d) — the intractability the paper cites (Section IV-E1)", nIons, nTraps, MaxStates)
		}
	}

	// Gate list: 2Q gates only, in program order.
	type pair struct{ a, b int }
	var gates []pair
	for _, g := range c.Gates {
		if !g.Is2Q() {
			continue
		}
		if _, ok := trapOf[g.Qubits[0]]; !ok {
			return 0, fmt.Errorf("exact: qubit %d not placed", g.Qubits[0])
		}
		if _, ok := trapOf[g.Qubits[1]]; !ok {
			return 0, fmt.Errorf("exact: qubit %d not placed", g.Qubits[1])
		}
		gates = append(gates, pair{g.Qubits[0], g.Qubits[1]})
	}

	// State encoding: ion -> trap as a base-nTraps integer, plus gate index.
	ions := make([]int, 0, nIons)
	for q := range trapOf {
		ions = append(ions, q)
	}
	// Deterministic ion order.
	for i := 1; i < len(ions); i++ {
		for j := i; j > 0 && ions[j-1] > ions[j]; j-- {
			ions[j-1], ions[j] = ions[j], ions[j-1]
		}
	}
	ionIdx := map[int]int{}
	for i, q := range ions {
		ionIdx[q] = i
	}
	encode := func(tr []int) int {
		key := 0
		for i := len(tr) - 1; i >= 0; i-- {
			key = key*nTraps + tr[i]
		}
		return key
	}
	start := make([]int, nIons)
	for q, t := range trapOf {
		start[ionIdx[q]] = t
	}

	dist := map[node]int{}
	pq := &nodeHeap{}
	push := func(n node, d int) {
		if old, ok := dist[n]; ok && old <= d {
			return
		}
		dist[n] = d
		heap.Push(pq, heapItem{n: n, d: d})
	}
	push(node{key: encode(start), gate: 0}, 0)

	decode := func(key int) []int {
		tr := make([]int, nIons)
		for i := 0; i < nIons; i++ {
			tr[i] = key % nTraps
			key /= nTraps
		}
		return tr
	}
	occupancy := func(tr []int) []int {
		occ := make([]int, nTraps)
		for _, t := range tr {
			occ[t]++
		}
		return occ
	}

	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if d, ok := dist[it.n]; !ok || d < it.d {
			continue // stale entry
		}
		if it.n.gate == len(gates) {
			return it.d, nil
		}
		tr := decode(it.n.key)
		g := gates[it.n.gate]
		// Execute the gate for free if co-located.
		if tr[ionIdx[g.a]] == tr[ionIdx[g.b]] {
			push(node{key: it.n.key, gate: it.n.gate + 1}, it.d)
			continue
		}
		// Otherwise expand single hops.
		occ := occupancy(tr)
		for i := 0; i < nIons; i++ {
			from := tr[i]
			for _, to := range cfg.Topology.Neighbors(from) {
				if occ[to] >= cfg.Capacity {
					continue
				}
				tr[i] = to
				push(node{key: encode(tr), gate: it.n.gate}, it.d+1)
				tr[i] = from
			}
		}
	}
	return 0, fmt.Errorf("exact: no feasible schedule (capacity deadlock)")
}

type heapItem struct {
	n node
	d int
}

type node struct {
	key  int
	gate int
}

type nodeHeap []heapItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
