package bench

import (
	"math"
	"testing"

	"muzzle/internal/circuit"
)

// TestCatalogMatchesTableII pins the qubit and 2Q-gate counts of paper
// Table II for every NISQ benchmark.
func TestCatalogMatchesTableII(t *testing.T) {
	want := map[string][2]int{
		"Supremacy":     {64, 560},
		"QAOA":          {64, 1260},
		"SquareRoot":    {78, 1028},
		"QFT":           {64, 4032},
		"QuadraticForm": {64, 3400},
	}
	specs := Catalog()
	if len(specs) != 5 {
		t.Fatalf("catalog has %d entries, want 5", len(specs))
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected benchmark %q", s.Name)
			continue
		}
		if s.Qubits != w[0] || s.Gates2Q != w[1] {
			t.Errorf("%s spec = (%d,%d), want (%d,%d)", s.Name, s.Qubits, s.Gates2Q, w[0], w[1])
		}
		c := s.Build()
		if c.NumQubits != w[0] {
			t.Errorf("%s circuit qubits = %d, want %d", s.Name, c.NumQubits, w[0])
		}
		if got := Count2QNative(c); got != w[1] {
			t.Errorf("%s native 2Q count = %d, want %d (Table II)", s.Name, got, w[1])
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		// The static count helper must agree with a real decomposition.
		d, err := circuit.Decompose(c)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if got := d.Count2Q(); got != w[1] {
			t.Errorf("%s decomposed 2Q count = %d, want %d", s.Name, got, w[1])
		}
	}
}

func TestSupremacyIsNearestNeighbor(t *testing.T) {
	c := Supremacy()
	const cols = 8
	for _, g := range c.Gates {
		if !g.Is2Q() {
			continue
		}
		a, b := g.Qubits[0], g.Qubits[1]
		ra, ca := a/cols, a%cols
		rb, cb := b/cols, b%cols
		if abs(ra-rb)+abs(ca-cb) != 1 {
			t.Fatalf("gate %v is not grid-nearest-neighbor", g)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestQAOAEdgesDistinct(t *testing.T) {
	c := QAOA()
	seen := map[[2]int]bool{}
	edges := 0
	for _, g := range c.Gates {
		if g.Name != "rzz" {
			continue
		}
		edges++
		a, b := g.Qubits[0], g.Qubits[1]
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			t.Fatalf("duplicate QAOA edge (%d,%d)", a, b)
		}
		seen[[2]int{a, b}] = true
	}
	if edges != 630 {
		t.Fatalf("edges = %d, want 630", edges)
	}
}

func TestSquareRootHasShortAndLongRangeGates(t *testing.T) {
	c := SquareRoot()
	short, long := 0, 0
	for _, g := range c.Gates {
		if !g.Is2Q() {
			continue
		}
		d := abs(g.Qubits[0] - g.Qubits[1])
		if d == 1 {
			short++
		}
		if d >= c.NumQubits/4 {
			long++
		}
	}
	if short == 0 || long == 0 {
		t.Fatalf("SquareRoot needs both short (%d) and long (%d) range gates (Section IV-B)", short, long)
	}
}

func TestQFTStructure(t *testing.T) {
	c := QFT(5)
	// 5 H gates + C(5,2)=10 CP gates.
	if got := c.Count2Q(); got != 10 {
		t.Errorf("QFT(5) CP count = %d, want 10", got)
	}
	if got := Count2QNative(c); got != 20 {
		t.Errorf("QFT(5) native count = %d, want 20", got)
	}
	// All-to-all: every pair appears exactly once.
	pairs := c.InteractionCount()
	if len(pairs) != 10 {
		t.Errorf("distinct pairs = %d, want 10", len(pairs))
	}
	// Angles halve with distance.
	for _, g := range c.Gates {
		if g.Name != "cp" {
			continue
		}
		d := abs(g.Qubits[0] - g.Qubits[1])
		want := math.Pi / math.Pow(2, float64(d))
		if math.Abs(g.Params[0]-want) > 1e-12 {
			t.Errorf("cp angle for distance %d = %g, want %g", d, g.Params[0], want)
		}
	}
}

func TestQuadraticFormAllToAll(t *testing.T) {
	c := QuadraticForm()
	pairs := c.InteractionCount()
	// 1700 distinct pairs, no repeats, spanning many distances.
	if len(pairs) != 1700 {
		t.Errorf("distinct pairs = %d, want 1700", len(pairs))
	}
	distances := map[int]bool{}
	for _, g := range c.Gates {
		if g.Name == "cp" {
			distances[abs(g.Qubits[0]-g.Qubits[1])] = true
		}
	}
	if len(distances) < 20 {
		t.Errorf("distance diversity = %d, want broad all-to-all spread", len(distances))
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := Random(10, 50, 7)
	b := Random(10, 50, 7)
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("same seed, different circuits")
	}
	for i := range a.Gates {
		if a.Gates[i].String() != b.Gates[i].String() {
			t.Fatal("same seed, different gate sequence")
		}
	}
	c := Random(10, 50, 8)
	same := len(a.Gates) == len(c.Gates)
	if same {
		identical := true
		for i := range a.Gates {
			if a.Gates[i].String() != c.Gates[i].String() {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical circuits")
		}
	}
}

func TestRandomGateCountExact(t *testing.T) {
	for _, n := range []int{10, 100, 1000} {
		c := Random(20, n, 42)
		if got := c.Count2Q(); got != n {
			t.Errorf("Random 2Q count = %d, want %d", got, n)
		}
	}
}

func TestRandomPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"1 qubit":  func() { Random(1, 5, 0) },
		"negative": func() { Random(5, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestRandomSuiteStatistics verifies the 120-circuit suite reproduces the
// paper's statistics: sizes 60-75, mean 2Q count near 1438 with substantial
// spread (sigma ~ 413).
func TestRandomSuiteStatistics(t *testing.T) {
	suite := RandomSuite(DefaultRandomSuiteParams())
	if len(suite) != 120 {
		t.Fatalf("suite size = %d, want 120", len(suite))
	}
	sizes := map[int]int{}
	sum, sumSq := 0.0, 0.0
	for _, c := range suite {
		sizes[c.NumQubits]++
		g := float64(c.Count2Q())
		sum += g
		sumSq += g * g
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []int{60, 65, 70, 75} {
		if sizes[s] != 30 {
			t.Errorf("size %d has %d circuits, want 30", s, sizes[s])
		}
	}
	mean := sum / 120
	std := math.Sqrt(sumSq/120 - mean*mean)
	if mean < 1438-120 || mean > 1438+120 {
		t.Errorf("mean 2Q gates = %.0f, want ~1438", mean)
	}
	if std < 413-150 || std > 413+150 {
		t.Errorf("std 2Q gates = %.0f, want ~413", std)
	}
}

func TestRandomSuiteDeterministic(t *testing.T) {
	a := RandomSuite(DefaultRandomSuiteParams())
	b := RandomSuite(DefaultRandomSuiteParams())
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Gates) != len(b[i].Gates) {
			t.Fatal("suite generation not deterministic")
		}
	}
}
