// Package bench generates the paper's benchmark suite (Section IV-A):
// five NISQ circuits — Supremacy, QAOA, SquareRoot, QFT, QuadraticForm —
// with exactly the qubit and two-qubit gate counts of Table II, plus the
// 120-circuit random suite (30 circuits each at 60, 65, 70 and 75 qubits,
// two-qubit counts ~ N(1438, 413²)).
//
// Where the paper's exact circuit instance is not published (the Google
// supremacy instance, the QAOA graph, the Grover-based SquareRoot and the
// Qiskit QuadraticForm parameters), the generators here synthesize circuits
// with the same structural property the paper analyses — nearest-neighbor
// patterns for Supremacy/QAOA, short+long-range mix for SquareRoot,
// all-to-all connectivity for QFT/QuadraticForm — and the same 2Q gate
// budget. See DESIGN.md "Substitutions".
package bench

import (
	"fmt"
	"math"
	"math/rand"

	"muzzle/internal/circuit"
)

// Spec describes one benchmark as reported in paper Table II.
type Spec struct {
	// Name is the benchmark name as printed in the paper.
	Name string
	// Qubits is the register size.
	Qubits int
	// Gates2Q is the two-qubit gate count after decomposition to MS.
	Gates2Q int
	// Build constructs the circuit.
	Build func() *circuit.Circuit
}

// Catalog returns the five NISQ benchmarks of Table II, in paper order.
func Catalog() []Spec {
	return []Spec{
		{Name: "Supremacy", Qubits: 64, Gates2Q: 560, Build: Supremacy},
		{Name: "QAOA", Qubits: 64, Gates2Q: 1260, Build: QAOA},
		{Name: "SquareRoot", Qubits: 78, Gates2Q: 1028, Build: SquareRoot},
		{Name: "QFT", Qubits: 64, Gates2Q: 4032, Build: QFT64},
		{Name: "QuadraticForm", Qubits: 64, Gates2Q: 3400, Build: QuadraticForm},
	}
}

// Count2QNative returns the number of MS gates the circuit costs after
// native decomposition, without materializing it.
func Count2QNative(c *circuit.Circuit) int {
	n := 0
	for _, g := range c.Gates {
		n += circuit.MSCost(g.Name)
	}
	return n
}

// Supremacy synthesizes a Google-supremacy-style random circuit on an 8x8
// qubit grid: staggered layers of CZ gates between grid neighbors in the
// repeating pattern (horizontal-even, vertical-even, horizontal-odd,
// vertical-odd), interleaved with random single-qubit gates, for 20
// two-qubit layers = 5*(32+32+24+24) = 560 CZ gates. The nearest-neighbor
// gate pattern is the property the paper calls out for this benchmark
// (Section IV-B).
func Supremacy() *circuit.Circuit {
	const rows, cols = 8, 8
	c := circuit.New("Supremacy", rows*cols)
	rng := rand.New(rand.NewSource(20220314))
	id := func(r, col int) int { return r*cols + col }
	oneQ := []string{"h", "t", "s"}
	sprinkle := func() {
		for q := 0; q < rows*cols; q++ {
			c.Add1Q(oneQ[rng.Intn(len(oneQ))], q)
		}
	}
	sprinkle()
	for layer := 0; layer < 20; layer++ {
		switch layer % 4 {
		case 0: // horizontal, even columns: 4 pairs/row
			for r := 0; r < rows; r++ {
				for col := 0; col+1 < cols; col += 2 {
					c.Add2Q("cz", id(r, col), id(r, col+1))
				}
			}
		case 1: // vertical, even rows
			for r := 0; r+1 < rows; r += 2 {
				for col := 0; col < cols; col++ {
					c.Add2Q("cz", id(r, col), id(r+1, col))
				}
			}
		case 2: // horizontal, odd columns: 3 pairs/row
			for r := 0; r < rows; r++ {
				for col := 1; col+1 < cols; col += 2 {
					c.Add2Q("cz", id(r, col), id(r, col+1))
				}
			}
		case 3: // vertical, odd rows
			for r := 1; r+1 < rows; r += 2 {
				for col := 0; col < cols; col++ {
					c.Add2Q("cz", id(r, col), id(r+1, col))
				}
			}
		}
		sprinkle()
	}
	return c
}

// QAOA synthesizes a depth-1 QAOA max-cut circuit on a random 630-edge
// graph over 64 vertices (average degree ~19.7): a Hadamard layer, one
// RZZ(gamma) per edge (2 CX each = 1260 two-qubit gates), and an RX(beta)
// mixer layer. The unstructured nearest-neighbor-ish pairing matches the
// paper's description of QAOA's gate pattern.
func QAOA() *circuit.Circuit {
	const n, edges = 64, 630
	c := circuit.New("QAOA", n)
	rng := rand.New(rand.NewSource(20220315))
	for q := 0; q < n; q++ {
		c.Add1Q("h", q)
	}
	seen := map[[2]int]bool{}
	gamma := 0.42
	for len(seen) < edges {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if seen[key] {
			continue
		}
		seen[key] = true
		c.Add2Q("rzz", a, b, gamma)
	}
	beta := 0.17
	for q := 0; q < n; q++ {
		c.Add1Q("rx", q, beta)
	}
	return c
}

// SquareRoot synthesizes the Grover-based square-root circuit of the
// QCCDSim suite on 78 qubits with 1028 two-qubit gates. The published
// instance is not available, so the generator reproduces its structural
// signature — the paper notes it mixes short-range (ripple/adder) and
// long-range (oracle/diffusion) gates and credits that mix for the largest
// shuttle reduction (51.17%, Section IV-B). The circuit alternates
// ripple-carry stages (CX between neighbors) with oracle stages coupling
// the input register to ancilla qubits half a register away.
func SquareRoot() *circuit.Circuit {
	const n = 78
	c := circuit.New("SquareRoot", n)
	rng := rand.New(rand.NewSource(20220316))
	two := 0
	const target = 1028
	add := func(name string, a, b int) bool {
		if two+circuit.MSCost(name) > target {
			return false
		}
		c.Add2Q(name, a, b)
		two += circuit.MSCost(name)
		return true
	}
	for q := 0; q < n/2; q++ {
		c.Add1Q("h", q)
	}
	for stage := 0; two < target; stage++ {
		if stage%2 == 0 {
			// Ripple stage: short-range carry chain over a sliding window.
			off := (stage / 2) % 4
			for i := off; i+1 < n && two < target; i += 2 {
				add("cx", i, i+1)
			}
		} else {
			// Oracle stage: long-range couplings input -> ancilla.
			half := n / 2
			for i := 0; i < half && two < target; i++ {
				j := half + (i+stage)%half
				add("cx", i, j)
			}
		}
		// Occasional single-qubit dressing.
		for k := 0; k < 8; k++ {
			c.Add1Q("t", rng.Intn(n))
		}
	}
	return c
}

// QFT returns the textbook quantum Fourier transform on n qubits: a
// Hadamard plus a cascade of controlled-phase rotations CP(pi/2^k), giving
// n(n-1)/2 CP gates = n(n-1) two-qubit gates after decomposition. The
// all-to-all connectivity is the property the paper analyses
// (Section IV-B).
func QFT(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("QFT%d", n), n)
	for i := 0; i < n; i++ {
		c.Add1Q("h", i)
		for j := i + 1; j < n; j++ {
			c.Add2Q("cp", j, i, math.Pi/math.Pow(2, float64(j-i)))
		}
	}
	// Final bit-reversal is classical relabeling; omitted as in most
	// hardware QFT implementations.
	return c
}

// QFT64 is the paper's 64-qubit QFT instance (4032 two-qubit gates).
func QFT64() *circuit.Circuit { return QFT(64) }

// QuadraticForm synthesizes the Qiskit QuadraticForm benchmark shape on 64
// qubits with 3400 two-qubit gates: controlled-phase rotations encoding a
// quadratic polynomial Q(x) = x^T A x over the i<j double loop of the
// Qiskit construction (1700 CP = 3400 CX), giving the all-to-all
// connectivity with per-qubit gate locality that the paper groups with QFT
// (Section IV-B: "moving one ion satisfies many future gates").
func QuadraticForm() *circuit.Circuit {
	const n, targetCP = 64, 1700
	c := circuit.New("QuadraticForm", n)
	rng := rand.New(rand.NewSource(20220317))
	for q := 0; q < n; q++ {
		c.Add1Q("h", q)
	}
	cp := 0
	for i := 0; i < n && cp < targetCP; i++ {
		for j := i + 1; j < n && cp < targetCP; j++ {
			// Angle 2^-k * pi with k derived from the quadratic coefficient
			// A[i][j]; the magnitude pattern does not affect scheduling.
			theta := math.Pi / math.Pow(2, float64(1+(i+j)%6))
			c.Add2Q("cp", i, j, theta)
			cp++
		}
	}
	for q := 0; q < n; q++ {
		c.Add1Q("rz", q, rng.Float64()*math.Pi)
	}
	return c
}

// Random-generator locality parameters: a randomLocalFraction share of the
// gates pair a qubit with a partner at most randomLocalSpan indices away,
// the rest are uniform long-range pairs. Real benchmark collections
// (arithmetic, variational, and QAOA-style kernels) exhibit exactly this
// mix of neighborhood structure plus occasional long jumps; a fully uniform
// pair distribution would make nearly every gate cross traps and leave no
// structure for any compiler to exploit, which contradicts the 26% average
// reduction the paper reports on its random suite.
const (
	randomLocalFraction = 0.6
	randomLocalSpan     = 10
)

// Random generates an unstructured circuit with the given register size and
// exactly gates2q two-qubit (CX) gates, with a sprinkle of single-qubit
// gates, reproducibly from seed. Pairs mix short-range neighbors with
// uniform long-range partners (see the locality constants above).
func Random(qubits, gates2q int, seed int64) *circuit.Circuit {
	if qubits < 2 {
		panic("bench: random circuit needs at least 2 qubits")
	}
	if gates2q < 0 {
		panic("bench: negative gate count")
	}
	c := circuit.New(fmt.Sprintf("Random-%dq-%dg-s%d", qubits, gates2q, seed), qubits)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < gates2q; i++ {
		if rng.Intn(5) == 0 {
			c.Add1Q("rz", rng.Intn(qubits), rng.Float64()*math.Pi)
		}
		a := rng.Intn(qubits)
		var b int
		if rng.Float64() < randomLocalFraction {
			for {
				d := 1 + rng.Intn(randomLocalSpan)
				if rng.Intn(2) == 0 {
					d = -d
				}
				b = a + d
				if b >= 0 && b < qubits {
					break
				}
			}
		} else {
			b = rng.Intn(qubits)
			for b == a {
				b = rng.Intn(qubits)
			}
		}
		c.Add2Q("cx", a, b)
	}
	return c
}

// RandomSuiteParams mirror the paper's random-circuit statistics
// (Section IV-A): sizes 60-75, 30 circuits per size, 2Q gate counts with
// mean 1438 and standard deviation 413.
type RandomSuiteParams struct {
	Sizes     []int
	PerSize   int
	GatesMean float64
	GatesStd  float64
	MinGates  int
	MaxGates  int
	Seed      int64
}

// DefaultRandomSuiteParams returns the paper's configuration.
func DefaultRandomSuiteParams() RandomSuiteParams {
	return RandomSuiteParams{
		Sizes:     []int{60, 65, 70, 75},
		PerSize:   30,
		GatesMean: 1438,
		GatesStd:  413,
		MinGates:  300,
		MaxGates:  2600,
		Seed:      20220318,
	}
}

// RandomSuite generates the 120-circuit random benchmark set.
func RandomSuite(p RandomSuiteParams) []*circuit.Circuit {
	rng := rand.New(rand.NewSource(p.Seed))
	var out []*circuit.Circuit
	for _, size := range p.Sizes {
		for k := 0; k < p.PerSize; k++ {
			g := int(rng.NormFloat64()*p.GatesStd + p.GatesMean)
			if g < p.MinGates {
				g = p.MinGates
			}
			if g > p.MaxGates {
				g = p.MaxGates
			}
			out = append(out, Random(size, g, rng.Int63()))
		}
	}
	return out
}
