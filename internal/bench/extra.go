package bench

import (
	"fmt"

	"muzzle/internal/circuit"
)

// Additional NISQ kernels beyond the paper's Table II suite. The QCCDSim
// benchmark collection (Murali et al., ISCA 2020) also evaluates
// Bernstein-Vazirani and adder circuits; they exercise connectivity
// patterns the Table II five do not: BV is a *star* (every 2Q gate shares
// one ancilla — the worst case for co-location policies), the Cuccaro adder
// is a strictly nearest-neighbor *ripple*, and GHZ is a single CX chain.
// The extended integration tests and ablation studies use them.

// BernsteinVazirani builds the BV circuit for an n-bit secret whose bits
// are taken from the binary expansion of `secret`: H layer, CX from each
// set secret bit into the ancilla (qubit n), final H layer. All two-qubit
// gates target the single ancilla.
func BernsteinVazirani(n int, secret uint64) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("BV%d", n), n+1)
	anc := n
	c.Add1Q("x", anc)
	for q := 0; q <= n; q++ {
		c.Add1Q("h", q)
	}
	for q := 0; q < n; q++ {
		if secret&(1<<uint(q)) != 0 {
			c.Add2Q("cx", q, anc)
		}
	}
	for q := 0; q < n; q++ {
		c.Add1Q("h", q)
	}
	for q := 0; q < n; q++ {
		c.AddMeasure(q, q)
	}
	return c
}

// CuccaroAdder builds the ripple-carry adder of Cuccaro et al. for two
// n-bit registers: qubits [0..n) hold a, [n..2n) hold b, qubit 2n is the
// incoming carry ancilla and 2n+1 the final carry-out. The MAJ/UMA ladder
// uses CX and CCX (Toffoli) gates between neighbors in the interleaved
// layout — the canonical short-range arithmetic workload.
func CuccaroAdder(n int) *circuit.Circuit {
	if n < 1 {
		panic("bench: adder needs at least 1 bit")
	}
	c := circuit.New(fmt.Sprintf("Adder%d", n), 2*n+2)
	a := func(i int) int { return i }
	b := func(i int) int { return n + i }
	cin := 2 * n
	cout := 2*n + 1
	maj := func(x, y, z int) {
		c.Add2Q("cx", z, y)
		c.Add2Q("cx", z, x)
		c.MustAppend(circuit.Gate{Name: "ccx", Qubits: []int{x, y, z}})
	}
	uma := func(x, y, z int) {
		c.MustAppend(circuit.Gate{Name: "ccx", Qubits: []int{x, y, z}})
		c.Add2Q("cx", z, x)
		c.Add2Q("cx", x, y)
	}
	maj(cin, b(0), a(0))
	for i := 1; i < n; i++ {
		maj(a(i-1), b(i), a(i))
	}
	c.Add2Q("cx", a(n-1), cout)
	for i := n - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(cin, b(0), a(0))
	return c
}

// GHZ builds the n-qubit GHZ-state preparation: H on qubit 0 followed by a
// CX chain — the minimal linear-entanglement workload.
func GHZ(n int) *circuit.Circuit {
	if n < 2 {
		panic("bench: GHZ needs at least 2 qubits")
	}
	c := circuit.New(fmt.Sprintf("GHZ%d", n), n)
	c.Add1Q("h", 0)
	for i := 0; i+1 < n; i++ {
		c.Add2Q("cx", i, i+1)
	}
	return c
}

// ExtendedCatalog returns the additional kernels sized for the paper's L6
// machine, complementing Catalog for wider integration testing.
func ExtendedCatalog() []Spec {
	return []Spec{
		{Name: "BV64", Qubits: 65, Gates2Q: 32, Build: func() *circuit.Circuit {
			return BernsteinVazirani(64, 0x5555555555555555) // alternating bits: 32 CX
		}},
		// Adder(n): 2n MAJ/UMA Toffolis (6 MS each) + 4n+1 plain CX = 16n+1.
		{Name: "Adder16", Qubits: 34, Gates2Q: 16*16 + 1, Build: func() *circuit.Circuit {
			return CuccaroAdder(16)
		}},
		{Name: "GHZ64", Qubits: 64, Gates2Q: 63, Build: func() *circuit.Circuit {
			return GHZ(64)
		}},
	}
}
