package bench

import (
	"testing"

	"muzzle/internal/circuit"
)

func TestBernsteinVaziraniStarPattern(t *testing.T) {
	c := BernsteinVazirani(8, 0b10110101)
	if c.NumQubits != 9 {
		t.Errorf("qubits = %d, want 9", c.NumQubits)
	}
	// One CX per set secret bit, all targeting the ancestor ancilla.
	cx := 0
	for _, g := range c.Gates {
		if g.Name != "cx" {
			continue
		}
		cx++
		if g.Qubits[1] != 8 {
			t.Errorf("CX target = %d, want ancilla 8", g.Qubits[1])
		}
	}
	if cx != 5 { // popcount(0b10110101) = 5
		t.Errorf("CX count = %d, want 5", cx)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBernsteinVaziraniZeroSecret(t *testing.T) {
	c := BernsteinVazirani(4, 0)
	if c.Count2Q() != 0 {
		t.Error("zero secret should have no 2Q gates")
	}
}

func TestCuccaroAdderCounts(t *testing.T) {
	for _, n := range []int{1, 4, 16} {
		c := CuccaroAdder(n)
		if c.NumQubits != 2*n+2 {
			t.Errorf("Adder(%d) qubits = %d, want %d", n, c.NumQubits, 2*n+2)
		}
		// 4n+1 CX and 2n CCX -> 16n+1 MS after decomposition.
		if got, want := Count2QNative(c), 16*n+1; got != want {
			t.Errorf("Adder(%d) MS count = %d, want %d", n, got, want)
		}
		d, err := circuit.Decompose(c)
		if err != nil {
			t.Fatalf("Adder(%d): %v", n, err)
		}
		if d.Count2Q() != 16*n+1 {
			t.Errorf("Adder(%d) decomposed = %d", n, d.Count2Q())
		}
	}
}

func TestCuccaroAdderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Adder(0) should panic")
		}
	}()
	CuccaroAdder(0)
}

func TestGHZChain(t *testing.T) {
	c := GHZ(10)
	if c.Count2Q() != 9 {
		t.Errorf("GHZ(10) CX count = %d, want 9", c.Count2Q())
	}
	for _, g := range c.Gates {
		if g.Is2Q() && g.Qubits[1] != g.Qubits[0]+1 {
			t.Errorf("non-chain gate %v", g)
		}
	}
}

func TestGHZPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GHZ(1) should panic")
		}
	}()
	GHZ(1)
}

func TestExtendedCatalogCounts(t *testing.T) {
	for _, s := range ExtendedCatalog() {
		c := s.Build()
		if c.NumQubits != s.Qubits {
			t.Errorf("%s qubits = %d, want %d", s.Name, c.NumQubits, s.Qubits)
		}
		if got := Count2QNative(c); got != s.Gates2Q {
			t.Errorf("%s 2Q = %d, want %d", s.Name, got, s.Gates2Q)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestToffoliDecomposition(t *testing.T) {
	c := circuit.New("t", 3)
	c.MustAppend(circuit.Gate{Name: "ccx", Qubits: []int{0, 1, 2}})
	d, err := circuit.Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Count2Q(); got != 6 {
		t.Errorf("Toffoli MS count = %d, want 6", got)
	}
	if circuit.MSCost("ccx") != 6 {
		t.Error("MSCost(ccx) != 6")
	}
	for _, g := range d.Gates {
		if !circuit.IsNative(g.Name) {
			t.Errorf("non-native %q in Toffoli decomposition", g.Name)
		}
	}
}
