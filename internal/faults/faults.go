// Package faults is a seeded, deterministic fault-injection harness for
// the storage and transport stack. Production code never imports a fault
// schedule: every hook site is guarded by a configured scope string that
// is empty outside tests, and the package-level helpers are no-ops until
// a test installs an Injector. The same seed therefore produces the same
// fault decisions for the same sequence of operations on each scope,
// which is what lets the chaos e2e assert byte-identical artifacts
// against a fault-free run.
//
// The model: an Injector holds an ordered list of Rules. Each operation a
// component is about to perform — a disk read, a WAL fsync, an HTTP
// round trip — is announced as (scope, op). The first rule matching that
// pair draws a deterministic pseudo-random number keyed by the rule, the
// (scope, op) pair, and the pair's call ordinal, and decides whether to
// inject. Ordinal-keyed draws make decisions independent of goroutine
// interleaving *across* scopes: the Nth write on "w1.cache" faults (or
// not) regardless of what "w2.cache" is doing.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Op classifies the operation a hook site is about to perform.
type Op string

// The hookable operations.
const (
	OpRead   Op = "read"
	OpWrite  Op = "write"
	OpSync   Op = "sync"
	OpRename Op = "rename"
	OpRemove Op = "remove"
	OpHTTP   Op = "http"
)

// Kind is the flavor of fault a rule injects.
type Kind string

// The injectable fault kinds. The filesystem kinds (Err, ENOSPC, Torn)
// apply to OpRead/OpWrite/OpSync/OpRename/OpRemove; the transport kinds
// (Latency, Reset, HTTP500) apply to OpHTTP via RoundTripper.
const (
	// KindErr injects a generic I/O error.
	KindErr Kind = "error"
	// KindENOSPC injects syscall.ENOSPC (errors.Is-able).
	KindENOSPC Kind = "enospc"
	// KindTorn truncates a write to TornFrac of its bytes and then
	// fails it — the on-disk state is a partial frame, as after a crash
	// mid-write. Only honored by sites that go through CheckWrite.
	KindTorn Kind = "torn"
	// KindLatency delays a transport round trip by Latency, then lets
	// it proceed.
	KindLatency Kind = "latency"
	// KindReset fails a transport round trip with a connection-reset
	// error before the request reaches the server.
	KindReset Kind = "reset"
	// KindHTTP500 lets the request through to the server but replaces
	// the response with a synthesized 500, as from a crashing proxy.
	KindHTTP500 Kind = "http500"
)

// ErrInjected is the sentinel wrapped by every injected error, so hook
// sites and tests can tell scheduled faults from real ones.
var ErrInjected = errors.New("injected fault")

// Error is the structured error carried by an injected fault.
type Error struct {
	Scope string
	Op    Op
	Kind  Kind
	// Seq is the (scope, op) call ordinal that faulted, 0-based.
	Seq uint64
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("injected %s fault: %s/%s call %d", e.Kind, e.Scope, e.Op, e.Seq)
}

// Unwrap makes every injected error match ErrInjected, and ENOSPC
// injections additionally match syscall.ENOSPC.
func (e *Error) Unwrap() []error {
	if e.Kind == KindENOSPC {
		return []error{ErrInjected, syscall.ENOSPC}
	}
	return []error{ErrInjected}
}

// Rule schedules one class of faults. Fields left zero take the
// documented defaults, so the minimal rule {Scope: "x", Op: OpWrite}
// means "every write on scope x fails with a generic I/O error".
type Rule struct {
	// Scope selects which component stream the rule applies to; empty
	// matches every scope.
	Scope string
	// Op selects the operation; empty matches every op.
	Op Op
	// Kind is the fault to inject (default KindErr).
	Kind Kind
	// Prob is the per-call fault probability in (0, 1]; 0 means 1
	// (always fire on a matching call).
	Prob float64
	// After skips the first After matching calls before the rule may
	// fire — the knob for "the disk goes bad partway through".
	After int
	// Count bounds the total faults this rule injects (0 = unlimited).
	// Bounded rules make a chaos schedule finite: the run always
	// completes once the budget is spent.
	Count int
	// Latency is the KindLatency delay.
	Latency time.Duration
	// TornFrac is the fraction of bytes a KindTorn write persists
	// before failing (default 0.5).
	TornFrac float64
}

// Decision is one resolved injection: the error to report plus the
// kind-specific parameters the hook site needs to act it out.
type Decision struct {
	Kind     Kind
	Err      error
	Latency  time.Duration
	TornFrac float64
}

// liveRule is a Rule plus its runtime counters. matched counts calls per
// (scope, op) key — the ordinal feeding the deterministic draw — while
// fired is the rule's global budget spend.
type liveRule struct {
	Rule
	matched map[string]uint64
	fired   int
}

// Injector holds a fault schedule. The zero value and the nil pointer
// are inert: every Check passes.
type Injector struct {
	seed uint64

	mu    sync.Mutex
	rules []*liveRule
	seq   map[string]uint64 // per (scope, op) call ordinal
	fired map[string]uint64 // per (scope, op) injected-fault count
	total uint64
}

// New builds an Injector from a seed and a schedule. The seed fully
// determines which calls fault for a fixed per-scope call sequence.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{
		seed:  splitmix64(uint64(seed)),
		seq:   make(map[string]uint64),
		fired: make(map[string]uint64),
	}
	for _, r := range rules {
		if r.Kind == "" {
			r.Kind = KindErr
		}
		if r.Prob <= 0 || r.Prob > 1 {
			r.Prob = 1
		}
		if r.TornFrac <= 0 || r.TornFrac >= 1 {
			r.TornFrac = 0.5
		}
		in.rules = append(in.rules, &liveRule{Rule: r, matched: make(map[string]uint64)})
	}
	return in
}

// Check announces one operation and returns the injected error, or nil
// to proceed. Torn-write rules degrade to a plain error here; writers
// that can act out a partial write use CheckWrite instead.
func (in *Injector) Check(scope string, op Op) error {
	d, ok := in.Decide(scope, op)
	if !ok {
		return nil
	}
	return d.Err
}

// CheckWrite announces a write of data and returns the bytes to actually
// persist plus the error to report. Without a fault it returns (data,
// nil); a torn-write fault returns a strict prefix and an error; other
// faults return (nil, err) — nothing reaches the disk.
func (in *Injector) CheckWrite(scope string, data []byte) ([]byte, error) {
	d, ok := in.Decide(scope, OpWrite)
	if !ok {
		return data, nil
	}
	if d.Kind == KindTorn {
		n := int(float64(len(data)) * d.TornFrac)
		if n >= len(data) {
			n = len(data) - 1
		}
		if n < 0 {
			n = 0
		}
		return data[:n], d.Err
	}
	return nil, d.Err
}

// Decide resolves one operation against the schedule: the full Decision
// and true when a fault fires, false to proceed normally. Nil-receiver
// safe.
func (in *Injector) Decide(scope string, op Op) (Decision, bool) {
	if in == nil {
		return Decision{}, false
	}
	key := scope + "/" + string(op)
	in.mu.Lock()
	defer in.mu.Unlock()
	seq := in.seq[key]
	in.seq[key] = seq + 1
	for i, r := range in.rules {
		if r.Scope != "" && r.Scope != scope {
			continue
		}
		if r.Op != "" && r.Op != op {
			continue
		}
		n := r.matched[key]
		r.matched[key] = n + 1
		if int(n) < r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Prob < 1 && in.draw(uint64(i), key, n) >= r.Prob {
			continue
		}
		r.fired++
		in.fired[key]++
		in.total++
		d := Decision{
			Kind:     r.Kind,
			Err:      &Error{Scope: scope, Op: op, Kind: r.Kind, Seq: seq},
			Latency:  r.Latency,
			TornFrac: r.TornFrac,
		}
		return d, true
	}
	return Decision{}, false
}

// draw is the deterministic per-(rule, key, ordinal) uniform draw in
// [0, 1). Keying by the matched ordinal rather than a shared RNG stream
// keeps each scope's schedule independent of cross-scope interleaving.
func (in *Injector) draw(rule uint64, key string, n uint64) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := splitmix64(in.seed ^ (rule+1)*0x9E3779B97F4A7C15 ^ h.Sum64() ^ (n + 1))
	return float64(x>>11) / (1 << 53)
}

// Total returns how many faults the injector has fired.
func (in *Injector) Total() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// Fired returns a copy of the per-(scope/op) injected-fault counts.
func (in *Injector) Fired() map[string]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.fired))
	for k, v := range in.fired {
		out[k] = v
	}
	return out
}

// splitmix64 is the SplitMix64 mixer — tiny, seedable, and good enough
// to decorrelate rule/key/ordinal tuples.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// active is the process-global injector consulted by the package-level
// hooks. Components never hold an Injector; they hold a scope string
// (empty in production) and announce operations through these helpers,
// which are inert until a test Installs a schedule.
var active atomic.Pointer[Injector]

// Install sets the process-global injector and returns a restore
// function for defer. Tests that Install must not run in parallel with
// other fault-scoped tests in the same binary.
func Install(in *Injector) (restore func()) {
	prev := active.Swap(in)
	return func() { active.Store(prev) }
}

// Active returns the installed injector, or nil.
func Active() *Injector { return active.Load() }

// Check is Injector.Check against the installed injector. A hook site
// with an empty scope is disabled and pays only this comparison.
func Check(scope string, op Op) error {
	if scope == "" {
		return nil
	}
	return Active().Check(scope, op)
}

// CheckWrite is Injector.CheckWrite against the installed injector.
func CheckWrite(scope string, data []byte) ([]byte, error) {
	if scope == "" {
		return data, nil
	}
	return Active().CheckWrite(scope, data)
}
