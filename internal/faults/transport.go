package faults

import (
	"io"
	"net/http"
	"strings"
	"time"
)

// transport is the fault-injecting http.RoundTripper. It consults the
// process-global injector on every round trip, so one wrapped client
// serves both fault-free production use (no injector installed) and a
// chaos run (schedule installed for the test's duration).
type transport struct {
	scope string
	base  http.RoundTripper
}

// RoundTripper wraps base with transport fault injection under scope.
// An empty scope returns base unchanged. The injected faults mirror the
// real failure classes a coordinator sees: added latency (slow network),
// connection reset before the request reaches the server (the request
// may safely be retried), and a synthesized 500 *after* the server did
// the work (the reply is lost — the dangerous half-done case).
func RoundTripper(scope string, base http.RoundTripper) http.RoundTripper {
	if scope == "" {
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{scope: scope, base: base}
}

// RoundTrip implements http.RoundTripper.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d, ok := Active().Decide(t.scope, OpHTTP)
	if !ok {
		return t.base.RoundTrip(req)
	}
	switch d.Kind {
	case KindLatency:
		timer := time.NewTimer(d.Latency)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.base.RoundTrip(req)
	case KindHTTP500:
		// The server really executes the request; only the reply is
		// replaced. This is the "work done, answer lost" failure that
		// retry/reassign logic and idempotent cells must absorb.
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return &http.Response{
			Status:        "500 Internal Server Error",
			StatusCode:    http.StatusInternalServerError,
			Proto:         resp.Proto,
			ProtoMajor:    resp.ProtoMajor,
			ProtoMinor:    resp.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader("injected fault\n")),
			ContentLength: int64(len("injected fault\n")),
			Request:       req,
		}, nil
	default: // KindReset and any filesystem kind scheduled on OpHTTP
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, d.Err
	}
}
