package faults

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"
)

// TestDeterministicSchedule pins the core property: the same seed and
// the same per-scope call sequence produce the same fault decisions,
// and a different seed produces a different (but equally deterministic)
// schedule.
func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) []bool {
		in := New(seed, Rule{Scope: "s", Op: OpWrite, Prob: 0.3})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, in.Check("s", OpWrite) != nil)
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	var faults int
	for _, f := range a {
		if f {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("prob 0.3 schedule fired %d/%d times", faults, len(a))
	}
}

// TestScheduleIndependentOfOtherScopes pins that interleaving calls on
// an unrelated scope does not perturb a scope's schedule — the property
// that makes concurrent chaos runs reproducible per component.
func TestScheduleIndependentOfOtherScopes(t *testing.T) {
	run := func(noise bool) []bool {
		in := New(21,
			Rule{Scope: "a", Op: OpWrite, Prob: 0.5},
			Rule{Scope: "b", Op: OpWrite, Prob: 0.5})
		var out []bool
		for i := 0; i < 32; i++ {
			if noise {
				in.Check("b", OpWrite)
				in.Check("b", OpWrite)
			}
			out = append(out, in.Check("a", OpWrite) != nil)
		}
		return out
	}
	quiet, noisy := run(false), run(true)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("scope a's schedule changed at call %d when scope b was active", i)
		}
	}
}

func TestRuleMatchingAndBudget(t *testing.T) {
	in := New(1,
		Rule{Scope: "s", Op: OpSync, After: 2, Count: 3},
	)
	// Other scopes and ops pass.
	if err := in.Check("other", OpSync); err != nil {
		t.Fatalf("unmatched scope faulted: %v", err)
	}
	if err := in.Check("s", OpWrite); err != nil {
		t.Fatalf("unmatched op faulted: %v", err)
	}
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, in.Check("s", OpSync) != nil)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d: fault=%v, want %v (After=2 Count=3)", i, got[i], want[i])
		}
	}
	if in.Total() != 3 {
		t.Fatalf("Total = %d, want 3", in.Total())
	}
	if n := in.Fired()["s/sync"]; n != 3 {
		t.Fatalf(`Fired["s/sync"] = %d, want 3`, n)
	}
}

func TestErrorKindsAndSentinels(t *testing.T) {
	in := New(3,
		Rule{Scope: "nospace", Kind: KindENOSPC},
		Rule{Scope: "plain"},
	)
	err := in.Check("nospace", OpWrite)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC injection = %v; want ErrInjected and syscall.ENOSPC", err)
	}
	err = in.Check("plain", OpWrite)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("plain injection = %v; want ErrInjected", err)
	}
	if errors.Is(err, syscall.ENOSPC) {
		t.Fatal("plain injection must not match ENOSPC")
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Scope != "plain" || fe.Op != OpWrite {
		t.Fatalf("structured error = %+v", fe)
	}
}

func TestCheckWriteTorn(t *testing.T) {
	in := New(5, Rule{Scope: "wal", Kind: KindTorn, TornFrac: 0.25})
	data := make([]byte, 100)
	kept, err := in.CheckWrite("wal", data)
	if err == nil {
		t.Fatal("torn write did not fail")
	}
	if len(kept) != 25 {
		t.Fatalf("torn write kept %d bytes, want 25", len(kept))
	}
	// Non-torn error kinds keep nothing.
	in2 := New(5, Rule{Scope: "wal"})
	kept, err = in2.CheckWrite("wal", data)
	if err == nil || kept != nil {
		t.Fatalf("error write kept %d bytes, err %v", len(kept), err)
	}
	// No fault passes the data through untouched.
	in3 := New(5)
	kept, err = in3.CheckWrite("wal", data)
	if err != nil || len(kept) != len(data) {
		t.Fatalf("clean write: kept %d, err %v", len(kept), err)
	}
}

func TestNilAndUninstalledAreInert(t *testing.T) {
	var in *Injector
	if err := in.Check("s", OpWrite); err != nil {
		t.Fatal("nil injector faulted")
	}
	if in.Total() != 0 || in.Fired() != nil {
		t.Fatal("nil injector has stats")
	}
	if err := Check("s", OpWrite); err != nil {
		t.Fatal("uninstalled global faulted")
	}
	if err := Check("", OpWrite); err != nil {
		t.Fatal("empty scope faulted")
	}
}

func TestInstallRestore(t *testing.T) {
	in := New(9, Rule{Scope: "s"})
	restore := Install(in)
	if err := Check("s", OpWrite); !errors.Is(err, ErrInjected) {
		t.Fatalf("installed injector inert: %v", err)
	}
	restore()
	if err := Check("s", OpWrite); err != nil {
		t.Fatalf("restore left injector active: %v", err)
	}
}

// TestRoundTripper drives all three transport fault kinds against a real
// server.
func TestRoundTripper(t *testing.T) {
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	in := New(11,
		Rule{Scope: "tx", Op: OpHTTP, Kind: KindReset, Count: 1},
		Rule{Scope: "tx", Op: OpHTTP, Kind: KindHTTP500, Count: 1},
		Rule{Scope: "tx", Op: OpHTTP, Kind: KindLatency, Latency: 5 * time.Millisecond, Count: 1},
	)
	defer Install(in)()
	client := &http.Client{Transport: RoundTripper("tx", nil)}

	// Call 1: reset — the server never sees it.
	if _, err := client.Get(srv.URL); !errors.Is(err, ErrInjected) {
		t.Fatalf("call 1: err = %v, want injected reset", err)
	}
	if served != 0 {
		t.Fatalf("reset reached the server (%d serves)", served)
	}
	// Call 2: synthesized 500 — the server DID the work.
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || served != 1 {
		t.Fatalf("call 2: status %d, serves %d; want 500 after a real serve", resp.StatusCode, served)
	}
	// Call 3: latency, then success.
	start := time.Now()
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" || time.Since(start) < 5*time.Millisecond {
		t.Fatalf("call 3: body %q after %s", body, time.Since(start))
	}
	// Budget spent: call 4 is clean.
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("call 4: status %d after budget spent", resp.StatusCode)
	}
	if in.Total() != 3 {
		t.Fatalf("Total = %d, want 3", in.Total())
	}
}

// TestEmptyScopeRoundTripper pins that the production path (no scope)
// returns the base transport untouched.
func TestEmptyScopeRoundTripper(t *testing.T) {
	base := http.DefaultTransport
	if rt := RoundTripper("", base); rt != base {
		t.Fatal("empty scope must return base unchanged")
	}
}
