package faults

// Fault-injection scope registry. A scope is the string key that connects
// a Rule to the Check/CheckWrite/RoundTripper call sites it arms; a typo
// on either side silently disables injection, so every scope in the repo
// is declared here and the faultscope analyzer (internal/lint/faultscope)
// rejects string literals everywhere else. Derived per-instance scopes
// concatenate off a constant: ScopeCoordDisk + ".a".
const (
	// ScopeCacheTrip arms the cache breaker tests: repeated disk-write
	// faults until the LRU's disk tier trips open.
	ScopeCacheTrip = "trip.cache"
	// ScopeCacheRead arms transient disk-read faults against cache hits.
	ScopeCacheRead = "read.cache"
	// ScopeStoreWAL arms torn-write faults against the job journal's WAL.
	ScopeStoreWAL = "test.wal"
	// ScopeStoreWALSpace arms ENOSPC write/sync faults against the WAL.
	ScopeStoreWALSpace = "test.wal2"
	// ScopeSweepDir arms per-op faults against sweep artifact directories.
	ScopeSweepDir = "t.dir"
	// ScopeCoordNet arms transport chaos (latency, resets, HTTP 500s) on
	// the coordinator's worker client.
	ScopeCoordNet = "chaos.net"
	// ScopeCoordDisk is the base scope for per-worker artifact-disk
	// chaos; instances append a worker suffix (ScopeCoordDisk + ".a").
	ScopeCoordDisk = "chaos.disk"
)
