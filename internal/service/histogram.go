package service

import "sync"

// DefaultLatencyBuckets returns the upper bounds (seconds) of the
// compile-latency histogram: sub-millisecond buckets catch cache hits,
// the top buckets cover full 75-qubit random-suite compilations.
func DefaultLatencyBuckets() []float64 {
	return []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30}
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: counts[i] counts observations <= buckets[i], plus an implicit
// +Inf bucket. It is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64
	counts  []uint64 // len(buckets)+1; last is +Inf
	sum     float64
	count   uint64
}

// NewHistogram builds a histogram over ascending upper bounds.
func NewHistogram(buckets []float64) *Histogram {
	return &Histogram{
		buckets: append([]float64(nil), buckets...),
		counts:  make([]uint64, len(buckets)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// HistogramSnapshot is a point-in-time copy, cumulative per bucket (the
// Prometheus le-bucket convention).
type HistogramSnapshot struct {
	// Buckets are the upper bounds in seconds.
	Buckets []float64 `json:"buckets"`
	// Cumulative[i] counts observations <= Buckets[i]; the total count
	// (the +Inf bucket) is Count.
	Cumulative []uint64 `json:"cumulative"`
	Sum        float64  `json:"sum"`
	Count      uint64   `json:"count"`
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Buckets:    append([]float64(nil), h.buckets...),
		Cumulative: make([]uint64, len(h.buckets)),
		Sum:        h.sum,
		Count:      h.count,
	}
	var running uint64
	for i := range h.buckets {
		running += h.counts[i]
		s.Cumulative[i] = running
	}
	return s
}
