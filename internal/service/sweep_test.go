package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"muzzle"
	"muzzle/internal/service"
	"muzzle/internal/sweep"
)

func testGrid() sweep.Grid {
	return sweep.Grid{
		Topologies: []sweep.TopologySpec{
			{Family: sweep.FamilyLine, Traps: 4},
			{Family: sweep.FamilyRing, Traps: 4},
		},
		Capacities:     []int{6},
		CommCapacities: []int{2},
		Circuits: []sweep.CircuitSpec{
			{Kind: sweep.CircuitRandom, Qubits: 8, Gates2Q: 20, Seed: 3},
		},
	}
}

func postSweep(t *testing.T, srv *httptest.Server, body any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if s, ok := body.(string); ok {
		buf.WriteString(s)
	} else if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func sweepView(t *testing.T, srv *httptest.Server, id string) (service.JobView, int) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view service.JobView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	return view, resp.StatusCode
}

// Every malformed sweep/topology parameter must come back as a clean 400
// with a stable error code — never a worker crash.
func TestSweepSubmitValidation(t *testing.T) {
	_, srv := newTestServer(t, service.Config{Workers: 1})

	bad := func(name string, mut func(*sweep.Grid), wantCode string) {
		g := testGrid()
		mut(&g)
		resp := postSweep(t, srv, g)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
			return
		}
		var apiErr struct {
			Code  string `json:"code"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
			t.Errorf("%s: bad error body: %v", name, err)
			return
		}
		if apiErr.Code != wantCode {
			t.Errorf("%s: code = %q (%s), want %q", name, apiErr.Code, apiErr.Error, wantCode)
		}
	}

	bad("ring of 2", func(g *sweep.Grid) {
		g.Topologies = []sweep.TopologySpec{{Family: sweep.FamilyRing, Traps: 2}}
	}, "bad_grid")
	bad("grid 0x3", func(g *sweep.Grid) {
		g.Topologies = []sweep.TopologySpec{{Family: sweep.FamilyGrid, Rows: 0, Cols: 3}}
	}, "bad_grid")
	bad("disconnected custom", func(g *sweep.Grid) {
		g.Topologies = []sweep.TopologySpec{{Family: sweep.FamilyCustom, Traps: 4, Edges: [][2]int{{0, 1}, {2, 3}}}}
	}, "bad_grid")
	bad("unknown family", func(g *sweep.Grid) {
		g.Topologies = []sweep.TopologySpec{{Family: "torus", Traps: 4}}
	}, "bad_grid")
	bad("unknown compiler", func(g *sweep.Grid) { g.Compilers = []string{"nope"} }, "bad_grid")
	bad("comm >= capacity", func(g *sweep.Grid) { g.CommCapacities = []int{6} }, "bad_grid")
	bad("no circuits", func(g *sweep.Grid) { g.Circuits = nil }, "bad_grid")
	bad("bad circuit kind", func(g *sweep.Grid) { g.Circuits = []sweep.CircuitSpec{{Kind: "ghz"}} }, "bad_grid")

	// Malformed JSON and unknown fields are 400s too.
	for name, body := range map[string]string{
		"truncated json": `{"topologies": [`,
		"unknown field":  `{"topologies": [{"family":"line","traps":4}], "circuits": [{"kind":"qft","qubits":4}], "bogus": 1}`,
	} {
		resp := postSweep(t, srv, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestSweepEndToEnd(t *testing.T) {
	cache, err := muzzle.NewCache(muzzle.CacheConfig{MaxEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	mgr, srv := newTestServer(t, service.Config{Workers: 1, Cache: cache})

	resp := postSweep(t, srv, testGrid())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/sweeps/") {
		t.Fatalf("Location = %q", loc)
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.Source != "sweep" {
		t.Fatalf("source = %q, want sweep", view.Source)
	}
	if view.CircuitsTotal != 2 {
		t.Fatalf("total cells = %d, want 2", view.CircuitsTotal)
	}

	// The SSE stream must carry one "cell" event per cell (each with its
	// report attached) before the terminal state event.
	client := &http.Client{Timeout: 60 * time.Second}
	sresp, err := client.Get(srv.URL + "/v1/sweeps/" + view.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", sresp.StatusCode)
	}
	cellEvents := 0
	deadline := time.Now().Add(60 * time.Second)
	buf := make([]byte, 0, 1<<20)
	tmp := make([]byte, 4096)
	terminal := false
	for !terminal && time.Now().Before(deadline) {
		n, err := sresp.Body.Read(tmp)
		buf = append(buf, tmp[:n]...)
		for {
			idx := bytes.Index(buf, []byte("\n\n"))
			if idx < 0 {
				break
			}
			frame := buf[:idx]
			buf = buf[idx+2:]
			for _, line := range bytes.Split(frame, []byte("\n")) {
				if !bytes.HasPrefix(line, []byte("data: ")) {
					continue
				}
				var ev service.Event
				if err := json.Unmarshal(bytes.TrimPrefix(line, []byte("data: ")), &ev); err != nil {
					t.Fatalf("bad SSE payload %q: %v", line, err)
				}
				switch ev.Kind {
				case service.EventCell:
					cellEvents++
					if ev.Cell == nil || ev.Cell.ID == "" {
						t.Errorf("cell event without report: %+v", ev)
					}
				case service.EventState:
					if ev.State.Terminal() {
						if ev.State != service.StateDone {
							t.Fatalf("terminal state = %s (%s)", ev.State, ev.Error)
						}
						terminal = true
					}
				}
			}
		}
		if err != nil {
			break
		}
	}
	if !terminal {
		t.Fatal("stream ended without terminal state")
	}
	if cellEvents != 2 {
		t.Errorf("cell events = %d, want 2", cellEvents)
	}

	final, status := sweepView(t, srv, view.ID)
	if status != http.StatusOK {
		t.Fatalf("GET sweep status = %d", status)
	}
	if final.State != service.StateDone || final.CircuitsDone != 2 {
		t.Fatalf("final view: state=%s done=%d", final.State, final.CircuitsDone)
	}
	if final.Sweep == nil || len(final.Sweep.Cells) != 2 {
		t.Fatalf("final view missing sweep report: %+v", final.Sweep)
	}
	for _, c := range final.Sweep.Cells {
		if c.Error != "" || len(c.Outcomes) != 2 {
			t.Errorf("cell %s: error=%q outcomes=%d", c.ID, c.Error, len(c.Outcomes))
		}
	}

	// A second identical sweep is served from the shared cache.
	missesBefore := cache.Stats().Misses
	resp2 := postSweep(t, srv, testGrid())
	var view2 service.JobView
	if err := json.NewDecoder(resp2.Body).Decode(&view2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	waitDone(t, mgr, view2.ID, 60*time.Second)
	s := cache.Stats()
	if s.Misses != missesBefore {
		t.Errorf("second sweep recompiled: misses %d -> %d", missesBefore, s.Misses)
	}
	if s.Hits < 2 {
		t.Errorf("second sweep hits = %d, want >= 2", s.Hits)
	}

	// The two reports are identical cell for cell.
	final2, _ := sweepView(t, srv, view2.ID)
	b1, _ := json.Marshal(final.Sweep)
	b2, _ := json.Marshal(final2.Sweep)
	if !bytes.Equal(b1, b2) {
		t.Errorf("cached sweep report differs:\n%s\nvs\n%s", b1, b2)
	}
}

// waitDone polls the manager until the job is terminal.
func waitDone(t *testing.T, mgr *service.Manager, id string, timeout time.Duration) service.JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		v, err := mgr.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in %s", id, timeout)
	return service.JobView{}
}

// The /v1/sweeps namespace serves only sweep jobs, and vice versa a
// compile job's id is not a sweep.
func TestSweepNamespaceIsolation(t *testing.T) {
	mgr, srv := newTestServer(t, service.Config{Workers: 1})

	jobView := submit(t, srv, service.Request{QASM: testQASM})
	if _, status := sweepView(t, srv, jobView.ID); status != http.StatusNotFound {
		t.Errorf("compile job via /v1/sweeps: status = %d, want 404", status)
	}
	if _, status := sweepView(t, srv, "deadbeefdeadbeefdeadbeef"); status != http.StatusNotFound {
		t.Errorf("unknown sweep id: status = %d, want 404", status)
	}
	// The DELETE and stream routes are namespace-guarded too: a compile
	// job must not be cancelable (or streamable) through /v1/sweeps.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sweeps/"+jobView.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE compile job via /v1/sweeps: status = %d, want 404", dresp.StatusCode)
	}
	sresp, err := http.Get(srv.URL + "/v1/sweeps/" + jobView.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusNotFound {
		t.Errorf("stream compile job via /v1/sweeps: status = %d, want 404", sresp.StatusCode)
	}
	final := waitDone(t, mgr, jobView.ID, 60*time.Second)
	if final.State == service.StateCanceled {
		t.Errorf("compile job was canceled through the sweeps namespace")
	}

	// And symmetrically: a sweep id is invisible to the /v1/jobs routes.
	resp := postSweep(t, srv, testGrid())
	var sv service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, probe := range []struct {
		method, path string
	}{
		{http.MethodGet, "/v1/jobs/" + sv.ID},
		{http.MethodDelete, "/v1/jobs/" + sv.ID},
		{http.MethodGet, "/v1/jobs/" + sv.ID + "/stream"},
	} {
		req, _ := http.NewRequest(probe.method, srv.URL+probe.path, nil)
		presp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		presp.Body.Close()
		if presp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s on sweep id: status = %d, want 404", probe.method, probe.path, presp.StatusCode)
		}
	}
	waitDone(t, mgr, sv.ID, 60*time.Second)
}

func TestSweepCancel(t *testing.T) {
	// A grid big enough to still be running when the cancel lands: the
	// paper suite on two topologies, single worker.
	g := sweep.Grid{
		Topologies: []sweep.TopologySpec{{Family: sweep.FamilyLine, Traps: 6}},
		Circuits:   []sweep.CircuitSpec{{Kind: sweep.CircuitPaper}},
	}
	mgr, srv := newTestServer(t, service.Config{Workers: 1, SweepParallelism: 1})
	resp := postSweep(t, srv, g)
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sweeps/"+view.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", dresp.StatusCode)
	}
	final := waitDone(t, mgr, view.ID, 60*time.Second)
	if final.State != service.StateCanceled && final.State != service.StateDone {
		t.Fatalf("state after cancel = %s", final.State)
	}
}
