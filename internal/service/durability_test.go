package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"muzzle"
	"muzzle/internal/service"
	"muzzle/internal/store"
	"muzzle/internal/sweep"
)

// gate registers (once) a compiler whose factory counts its invocations
// and then blocks until a token is released — the deterministic handle the
// durability tests use to freeze a worker mid-compile. The factory reads
// its generation before blocking, so a test can abandon a wedged manager
// (simulated kill -9), bump the generation, and release tokens that only
// the *new* manager's workers can consume: the old worker stays frozen on
// the retired generation forever, exactly like a dead process.
type gate struct {
	name   string
	count  atomic.Int64
	gen    atomic.Int32
	tokens [2]chan struct{}
	once   sync.Once
}

func (g *gate) register() {
	g.once.Do(func() {
		g.tokens[0] = make(chan struct{}, 1024)
		g.tokens[1] = make(chan struct{}, 1024)
		muzzle.MustRegisterCompiler(g.name, func() *muzzle.Compiler {
			gen := g.gen.Load()
			g.count.Add(1)
			<-g.tokens[gen]
			return muzzle.NewOptimizedCompiler()
		})
	})
}

// allow releases n compile tokens for the given generation.
func (g *gate) allow(gen int32, n int) {
	for i := 0; i < n; i++ {
		g.tokens[gen] <- struct{}{}
	}
}

// Each test owns a gate: tokens released for one test can never unblock
// another test's workers.
var (
	crashGate  = &gate{name: "crashgate"}
	flightGate = &gate{name: "flightgate"}
	cancelGate = &gate{name: "cancelgate"}
	drainGate  = &gate{name: "draingate"}
	admitGate  = &gate{name: "admitgate"}
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitState polls until the job reaches a terminal state and returns the
// final view.
func waitState(t *testing.T, mgr *service.Manager, id string, want service.State) service.JobView {
	t.Helper()
	var v service.JobView
	waitFor(t, fmt.Sprintf("job %s to reach %s", id, want), func() bool {
		var err error
		v, err = mgr.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		return v.State == want || v.State.Terminal()
	})
	if v.State != want {
		t.Fatalf("job %s = %s (%s), want %s", id, v.State, v.Error, want)
	}
	return v
}

// testGrid is a 6-cell sweep (2 capacities x 3 circuits on a 3-trap line)
// compiled by the given single compiler.
func durabilityGrid(compiler string) sweep.Grid {
	return sweep.Grid{
		Name:           "durability",
		Topologies:     []sweep.TopologySpec{{Family: sweep.FamilyLine, Traps: 3}},
		Capacities:     []int{5, 6},
		CommCapacities: []int{2},
		Compilers:      []string{compiler},
		Circuits: []sweep.CircuitSpec{
			{Kind: sweep.CircuitQFT, Qubits: 5},
			{Kind: sweep.CircuitRandom, Qubits: 5, Gates2Q: 8, Seed: 7, Count: 2},
		},
	}
}

// TestCrashRecoverySweep is the kill -9 end-to-end: a sweep crashes
// mid-run with no clean shutdown, a fresh manager replays the journal, and
// the recovered sweep finishes without re-compiling any finished cell —
// every completed cell is served by the shared content-addressed cache.
func TestCrashRecoverySweep(t *testing.T) {
	crashGate.register()
	dir := t.TempDir()
	cache, err := muzzle.NewCache(muzzle.CacheConfig{MaxEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := store.Open(filepath.Join(dir, "journal"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// mgr1 is the victim. It is never closed: the "crash" below abandons it
	// with its only worker frozen inside a compile, exactly as SIGKILL
	// would leave the journal. (The goroutine leaks for the remainder of
	// the test binary; that is the point.)
	mgr1 := service.New(service.Config{
		Workers: 1, SweepParallelism: 1, Cache: cache, Journal: j1,
	})
	view, err := mgr1.SubmitSweep(durabilityGrid("crashgate"))
	if err != nil {
		t.Fatal(err)
	}
	total := view.CircuitsTotal
	if total != 6 {
		t.Fatalf("grid expands to %d cells, want 6", total)
	}

	// Let exactly `allow` cells finish; the next cell freezes mid-compile.
	const allow = 2
	crashGate.allow(0, allow)
	waitFor(t, "worker to freeze in cell 3's compile", func() bool {
		return crashGate.count.Load() == allow+1
	})
	if e := cache.Stats().Entries; e != allow {
		t.Fatalf("cache entries before crash = %d, want %d", e, allow)
	}
	baseCount := crashGate.count.Load()
	baseHits := cache.Stats().Hits

	// CRASH: abandon mgr1 and j1 (no Close, no Drain, no compaction) and
	// recover from the on-disk WAL alone.
	crashGate.gen.Store(1)
	crashGate.allow(1, total+2)
	j2, err := store.Open(filepath.Join(dir, "journal"), store.Options{})
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	mgr2 := service.New(service.Config{
		Workers: 1, SweepParallelism: 1, Cache: cache, Journal: j2,
	})
	t.Cleanup(func() {
		mgr2.Close()
		j2.Close()
	})
	if got := mgr2.MetricsSnapshot().JobsRecovered; got != 1 {
		t.Fatalf("recovered %d jobs, want 1", got)
	}
	// Same id, same source, back in the run queue.
	v2, err := mgr2.Get(view.ID)
	if err != nil {
		t.Fatalf("recovered job lost: %v", err)
	}
	if v2.Source != service.SourceSweep {
		t.Fatalf("recovered source = %q", v2.Source)
	}
	final := waitState(t, mgr2, view.ID, service.StateDone)
	if final.CircuitsDone != total || final.Sweep == nil {
		t.Fatalf("recovered sweep: done=%d/%d, report=%v", final.CircuitsDone, total, final.Sweep != nil)
	}
	if n := final.Sweep.Failures(); n != 0 {
		t.Fatalf("%d cells failed after recovery", n)
	}

	// Zero re-compiles of finished cells: the restarted run compiled only
	// the cells the crash interrupted or never reached, and served every
	// finished cell from the cache.
	if got, want := crashGate.count.Load()-baseCount, int64(total-allow); got != want {
		t.Fatalf("compiles after restart = %d, want %d (finished cells must not re-compile)", got, want)
	}
	if got, want := cache.Stats().Hits-baseHits, uint64(allow); got != want {
		t.Fatalf("cache hits after restart = %d, want %d", got, want)
	}
}

// TestSingleFlightEndToEnd proves two concurrent identical submissions
// cost exactly one compiler invocation: the second coalesces onto the
// first's in-flight execution, verified down to the factory counter and
// up to the /metrics counters.
func TestSingleFlightEndToEnd(t *testing.T) {
	flightGate.register()
	cache, err := muzzle.NewCache(muzzle.CacheConfig{MaxEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	flight := muzzle.NewFlight()
	mgr, srv := newTestServer(t, service.Config{Workers: 2, Cache: cache, Flight: flight})
	// Registered after newTestServer so it runs before the manager's Close:
	// a failed test must not leave the leader frozen under Close's wait.
	t.Cleanup(func() { flightGate.allow(0, 8) })

	base := flightGate.count.Load()
	req := service.Request{Name: "dup", QASM: testQASM, Compilers: []string{"flightgate"}}
	v1 := submit(t, srv, req)
	v2 := submit(t, srv, req)

	// One submission leads (frozen in the gated factory), the other must
	// coalesce onto it — only then is the gate released.
	waitFor(t, "second submission to coalesce", func() bool {
		return flight.Stats().Coalesced >= 1
	})
	flightGate.allow(0, 2)

	r1 := waitState(t, mgr, v1.ID, service.StateDone)
	r2 := waitState(t, mgr, v2.ID, service.StateDone)
	if got := flightGate.count.Load() - base; got != 1 {
		t.Fatalf("compiler invocations = %d, want exactly 1", got)
	}
	fs := flight.Stats()
	if fs.Executions != 1 || fs.Coalesced != 1 || fs.InFlight != 0 {
		t.Fatalf("flight stats = %+v", fs)
	}
	// Three misses: one per caller before entering the flight group, plus
	// the leader's re-check inside the guarded section; zero hits because
	// the follower received the leader's result directly, not via the cache.
	cs := cache.Stats()
	if cs.Misses != 3 || cs.Hits != 0 || cs.Entries != 1 {
		t.Fatalf("cache stats = %+v", cs)
	}

	// The shared execution's result is byte-identical for both jobs.
	b1, _ := json.Marshal(r1.Results)
	b2, _ := json.Marshal(r2.Results)
	if string(b1) != string(b2) {
		t.Fatalf("coalesced results differ:\n%s\n%s", b1, b2)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"muzzled_flight_executions_total 1",
		"muzzled_flight_coalesced_total 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDurableCancelAcrossRestart: a canceled job stays canceled after a
// restart (the journal records the client's decision), while a completed
// job comes back queryable with its results.
func TestDurableCancelAcrossRestart(t *testing.T) {
	cancelGate.register()
	dir := t.TempDir()
	j1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgr1 := service.New(service.Config{Workers: 1, Journal: j1})

	// Job A occupies the only worker (frozen in its factory); job B queues
	// behind it and is canceled while pending.
	base := cancelGate.count.Load()
	a, err := mgr1.Submit(service.Request{Name: "a", QASM: testQASM, Compilers: []string{"cancelgate"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job a to start compiling", func() bool { return cancelGate.count.Load() == base+1 })
	b, err := mgr1.Submit(service.Request{Name: "b", QASM: testQASM, Compilers: []string{"cancelgate"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr1.Cancel(b.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	cancelGate.allow(0, 1)
	done := waitState(t, mgr1, a.ID, service.StateDone)
	if len(done.Results) != 1 {
		t.Fatalf("job a results = %d, want 1", len(done.Results))
	}
	mgr1.Close()

	// Restart from the WAL (j1 deliberately not closed: no compaction).
	j2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := service.New(service.Config{Workers: 1, Journal: j2})
	t.Cleanup(func() {
		mgr2.Close()
		j2.Close()
	})
	va, err := mgr2.Get(a.ID)
	if err != nil {
		t.Fatalf("done job lost across restart: %v", err)
	}
	if va.State != service.StateDone || len(va.Results) != 1 {
		t.Fatalf("recovered job a = %s with %d results, want done with 1", va.State, len(va.Results))
	}
	vb, err := mgr2.Get(b.ID)
	if err != nil {
		t.Fatalf("canceled job lost across restart: %v", err)
	}
	if vb.State != service.StateCanceled {
		t.Fatalf("canceled job resurrected as %s", vb.State)
	}
	met := mgr2.MetricsSnapshot()
	if met.JobsByState[service.StatePending] != 0 || met.JobsByState[service.StateRunning] != 0 {
		t.Fatalf("restart revived work: %+v", met.JobsByState)
	}
	if got := cancelGate.count.Load() - base; got != 1 {
		t.Fatalf("compiles = %d, want 1 (neither job may re-run)", got)
	}
}

// TestDrainLeavesQueuedPending: a graceful drain refuses new submissions,
// lets the running job finish, leaves the queued job untouched — and the
// next process recovers and completes it.
func TestDrainLeavesQueuedPending(t *testing.T) {
	drainGate.register()
	dir := t.TempDir()
	j1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgr1 := service.New(service.Config{Workers: 1, Journal: j1})
	srv := httptest.NewServer(mgr1.Handler())
	defer srv.Close()

	base := drainGate.count.Load()
	a, err := mgr1.Submit(service.Request{Name: "a", QASM: testQASM, Compilers: []string{"draingate"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job a to start compiling", func() bool { return drainGate.count.Load() == base+1 })
	b, err := mgr1.Submit(service.Request{Name: "b", QASM: testQASM})
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr1.Drain(ctx)
		close(drained)
	}()
	waitFor(t, "drain to stop admission", mgr1.Draining)

	// New work is refused while draining, and healthz says so.
	if _, err := mgr1.Submit(service.Request{Name: "c", QASM: testQASM}); err != service.ErrClosed {
		t.Fatalf("submit while draining = %v, want ErrClosed", err)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health.Status != "draining" {
		t.Fatalf("healthz status = %q, want draining", health.Status)
	}

	drainGate.allow(0, 1) // let the running job finish inside the deadline
	<-drained
	if v, _ := mgr1.Get(a.ID); v.State != service.StateDone {
		t.Fatalf("running job drained as %s, want done", v.State)
	}
	if v, _ := mgr1.Get(b.ID); v.State != service.StatePending {
		t.Fatalf("queued job drained as %s, want pending", v.State)
	}

	// The next process owes job b and completes it.
	j2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := service.New(service.Config{Workers: 1, Journal: j2})
	t.Cleanup(func() {
		mgr2.Close()
		j2.Close()
	})
	vb := waitState(t, mgr2, b.ID, service.StateDone)
	if len(vb.Results) != 1 {
		t.Fatalf("recovered job b results = %d, want 1", len(vb.Results))
	}
	if va, _ := mgr2.Get(a.ID); va.State != service.StateDone {
		t.Fatalf("finished job recovered as %s", va.State)
	}
	if got := drainGate.count.Load() - base; got != 1 {
		t.Fatalf("gated compiles = %d, want 1 (job a must not re-run)", got)
	}
}

// TestAdmissionControl: past the queue-depth bound, submissions are
// rejected with 429 + Retry-After, and the rejection is counted.
func TestAdmissionControl(t *testing.T) {
	admitGate.register()
	mgr, srv := newTestServer(t, service.Config{Workers: 1, QueueDepth: 1})
	t.Cleanup(func() { admitGate.allow(0, 8) })
	_ = mgr

	base := admitGate.count.Load()
	a := submit(t, srv, service.Request{Name: "a", QASM: testQASM, Compilers: []string{"admitgate"}})
	waitFor(t, "job a to occupy the worker", func() bool { return admitGate.count.Load() == base+1 })
	b := submit(t, srv, service.Request{Name: "b", QASM: testQASM, Compilers: []string{"admitgate"}})

	// Worker busy, queue full: the third submission is shed.
	body, _ := json.Marshal(service.Request{Name: "c", QASM: testQASM})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 || retry > 60 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 60]", resp.Header.Get("Retry-After"))
	}
	var apiErr struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Code != "queue_full" {
		t.Fatalf("error body code = %q (%v), want queue_full", apiErr.Code, err)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"muzzled_admission_rejected_total 1",
		"muzzled_queue_depth 1",
		"muzzled_queue_capacity 1",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	admitGate.allow(0, 2)
	waitState(t, mgr, a.ID, service.StateDone)
	waitState(t, mgr, b.ID, service.StateDone)
}
