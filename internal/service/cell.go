package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"muzzle/internal/sweep"
)

// This file is the worker half of the distributed sweep story: POST
// /v1/cells lets a coordinator (internal/coord) hand this daemon exactly
// one cell of an expanded grid and wait for the report. Cell execution is
// not a side door — it rides the same admission queue, journal, worker
// pool, cache, and flight group as every other job, so a daemon saturated
// by interactive work answers 429 + Retry-After and the coordinator backs
// off, and a crash mid-cell is recovered like any journaled job (the
// re-run warms the shared cache, making the coordinator's retry nearly
// free).

// CellRequest asks the daemon to execute one cell of a sweep grid. The
// grid travels with the request — workers are stateless — and Index
// addresses the deterministic expansion-order cell list, so every worker
// given the same grid resolves the same cell to the same coordinates.
type CellRequest struct {
	// Grid is the full sweep grid the cell belongs to.
	Grid sweep.Grid `json:"grid"`
	// Index is the cell's position in the grid's expansion order.
	Index int `json:"index"`
	// TimeoutMS bounds the cell's run; 0 means no per-cell timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Verify runs the independent schedule verifier on the cell's
	// schedules; a violation fails the cell deterministically.
	Verify bool `json:"verify,omitempty"`
}

// expandCellGrid resolves a request grid through the manager's expansion
// cache: a coordinator dispatches many cells of one grid to the same
// worker, and re-expanding per request would redo topology construction
// (including the all-pairs path precompute) len(cells)/N times.
func (m *Manager) expandCellGrid(g sweep.Grid) (*sweep.Expanded, error) {
	hash, err := sweep.Hash(g)
	if err != nil {
		return nil, err
	}
	m.expMu.Lock()
	if e, ok := m.expCache[hash]; ok {
		m.expMu.Unlock()
		return e, nil
	}
	m.expMu.Unlock()

	// Expand outside the lock: expansion is pure, so concurrent duplicate
	// work is wasted effort at worst, never an inconsistency.
	e, err := sweep.Expand(g)
	if err != nil {
		return nil, err
	}
	m.expMu.Lock()
	if _, ok := m.expCache[hash]; !ok {
		m.expCache[hash] = e
		m.expOrder = append(m.expOrder, hash)
		for len(m.expOrder) > expandCacheSize {
			delete(m.expCache, m.expOrder[0])
			m.expOrder = m.expOrder[1:]
		}
	}
	m.expMu.Unlock()
	return e, nil
}

// expandCacheSize bounds the expansion cache: a worker serves a handful of
// concurrent coordinators at most, each with one grid.
const expandCacheSize = 16

// SubmitCell validates a cell request and enqueues it as a single-cell job
// on the shared bounded queue. Validation failures are *RequestError
// (HTTP 400); admission rejections are ErrQueueFull (429 + Retry-After).
//
//muzzle:nolock the job is newly built and unshared until enqueue publishes it
func (m *Manager) SubmitCell(req CellRequest) (JobView, error) {
	e, err := m.expandCellGrid(req.Grid)
	if err != nil {
		return JobView{}, &RequestError{Code: "bad_grid", Err: err}
	}
	if req.Index < 0 || req.Index >= len(e.Cells) {
		return JobView{}, badRequest("bad_cell", "cell index %d out of range [0, %d)", req.Index, len(e.Cells))
	}
	if req.TimeoutMS < 0 {
		return JobView{}, badRequest("bad_request", "timeout_ms %d must be >= 0", req.TimeoutMS)
	}
	j := newJob()
	j.sweep = e
	j.grid = &e.Grid
	j.source = SourceCell
	j.cellIndex = req.Index
	// The run loop's timeout and verify plumbing read the request record,
	// so a cell job carries its knobs there.
	j.req = Request{TimeoutMS: req.TimeoutMS, Verify: req.Verify}
	j.compilers = append([]string(nil), e.Grid.Compilers...)
	j.total = 1
	return m.enqueue(j)
}

// runCellJob executes a dequeued single-cell job: one cell of the expanded
// grid through the sweep engine, sharing the daemon's cache and flight
// group, with the report attached to the job and emitted as a "cell"
// event.
func (m *Manager) runCellJob(ctx context.Context, j *job) {
	j.emit(Event{Kind: EventState, State: StateRunning})
	t0 := time.Now()
	cr, err := j.sweep.RunCell(ctx, j.cellIndex, sweep.Options{
		Cache:  m.cfg.Cache,
		Flight: m.cfg.Flight,
		Verify: j.req.Verify || m.cfg.Verify,
	})
	m.latency.Observe(time.Since(t0).Seconds())
	if err != nil {
		// Out of range: unreachable past SubmitCell validation, but a
		// journaled cell recovered against a changed grid definition could
		// land here — fail cleanly.
		m.finish(j, StateFailed, err.Error())
		return
	}
	j.mu.Lock()
	j.cell = &cr
	if cr.Error == "" {
		j.done = 1
	}
	j.mu.Unlock()
	ev := Event{Kind: EventCell, Index: cr.Index, Circuit: cr.ID, Cell: &cr}
	if cr.Error != "" {
		ev.Error = cr.Error
	}
	j.emit(ev)
	switch {
	case ctx.Err() == context.DeadlineExceeded:
		m.finish(j, StateFailed, fmt.Sprintf("timed out after %dms", j.req.TimeoutMS))
	case ctx.Err() != nil:
		m.finish(j, StateCanceled, "")
	case cr.Error != "":
		m.finish(j, StateFailed, cr.Error)
	default:
		m.finish(j, StateDone, "")
	}
}

// handleCell is POST /v1/cells: submit the cell through the shared
// admission path, wait for it to finish, and answer with the CellReport.
//
// Status codes are the coordinator's dispatch contract:
//
//	200  the cell ran to a deterministic result — success or a failure
//	     that would repeat identically (the report's error field); the
//	     coordinator persists it either way, exactly like a local run.
//	400  malformed grid or index: the cell can never run anywhere.
//	429  admission queue full: Retry-After says when to come back.
//	503  draining or canceled: this worker won't finish the cell — send
//	     it to another one.
//	500  transient execution failure (timeout, internal error): retry.
func (m *Manager) handleCell(w http.ResponseWriter, r *http.Request) {
	var req CellRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large", err)
			return
		}
		writeError(w, http.StatusBadRequest, "bad_json", err)
		return
	}
	view, err := m.SubmitCell(req)
	if err != nil {
		m.submitErr(w, err)
		return
	}

	// Wait for the job to reach a terminal state. Subscribe's live channel
	// closes exactly then (dropped interim events don't matter here); a
	// client that disconnects first takes its cell with it — the job is
	// canceled so the worker slot frees up for cells that still have a
	// coordinator waiting.
	_, live, stop, err := m.Subscribe(view.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	defer stop()
waitLoop:
	for {
		select {
		case <-r.Context().Done():
			m.Cancel(view.ID) //nolint:errcheck // best-effort: the client is gone
			return
		case _, ok := <-live:
			if !ok {
				break waitLoop
			}
		}
	}

	final, err := m.Get(view.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	switch {
	case final.State == StateDone && final.Cell != nil:
		writeJSON(w, http.StatusOK, final.Cell)
	case final.State == StateFailed && final.Cell != nil && final.Cell.Error == final.Error:
		// Deterministic cell failure: the report is the answer.
		writeJSON(w, http.StatusOK, final.Cell)
	case final.State == StateCanceled:
		writeError(w, http.StatusServiceUnavailable, "canceled",
			errors.New("service: cell canceled before completion"))
	default:
		writeError(w, http.StatusInternalServerError, "cell_failed",
			fmt.Errorf("service: cell execution failed: %s", final.Error))
	}
}
