package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"muzzle"
	"muzzle/internal/sweep"
)

// Handler returns the muzzled HTTP API over this manager:
//
//	POST   /v1/jobs               submit a job (202 + Location)
//	GET    /v1/jobs/{id}          job snapshot with results
//	DELETE /v1/jobs/{id}          cancel (200; 409 when already finished)
//	GET    /v1/jobs/{id}/stream   SSE: replayed history + live events
//	POST   /v1/sweeps             submit a scenario-sweep grid (202 + Location)
//	GET    /v1/sweeps/{id}        sweep snapshot with aggregated report
//	DELETE /v1/sweeps/{id}        cancel a sweep
//	GET    /v1/sweeps/{id}/stream SSE: one "cell" event per finished cell
//	POST   /v1/cells              execute one sweep cell synchronously (the
//	                              distributed coordinator's dispatch target)
//	GET    /v1/compilers          registry listing
//	GET    /healthz               liveness + uptime + worker identity
//	GET    /metrics               Prometheus-style text metrics
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", m.handleSubmit)
	mux.HandleFunc("POST /v1/cells", m.handleCell)
	mux.HandleFunc("GET /v1/jobs/{id}", m.namespaceOnly(false, m.handleGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", m.namespaceOnly(false, m.handleCancel))
	mux.HandleFunc("GET /v1/jobs/{id}/stream", m.namespaceOnly(false, m.handleStream))
	mux.HandleFunc("POST /v1/sweeps", m.handleSubmitSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}", m.namespaceOnly(true, m.handleGet))
	mux.HandleFunc("DELETE /v1/sweeps/{id}", m.namespaceOnly(true, m.handleCancel))
	mux.HandleFunc("GET /v1/sweeps/{id}/stream", m.namespaceOnly(true, m.handleStream))
	mux.HandleFunc("GET /v1/compilers", m.handleCompilers)
	mux.HandleFunc("GET /healthz", m.handleHealthz)
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	return m.recoverware(mux)
}

// recoverware contains handler panics: a panicking handler answers a
// structured 500 instead of killing the connection with an empty reply,
// and the panic is counted on /metrics. http.ErrAbortHandler is the
// documented way to abort a response on purpose and is re-raised
// untouched — net/http suppresses its stack trace, and tests rely on it
// to simulate a worker dying mid-reply.
func (m *Manager) recoverware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if err, ok := p.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(p)
			}
			m.notePanic()
			// If the handler already wrote headers this lands in the body
			// of a broken reply, which is no worse than the bare abort the
			// panic would have caused.
			writeError(w, http.StatusInternalServerError, "panic",
				fmt.Errorf("service: handler panicked: %v", p))
		}()
		next.ServeHTTP(w, r)
	})
}

// apiError is the JSON error body: a stable code plus a human message.
type apiError struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, apiError{Code: code, Error: err.Error()})
}

// maxRequestBody bounds POST bodies (QASM sources are text; 4 MiB is
// thousands of times the paper's largest benchmark) so one client cannot
// exhaust the daemon's memory.
const maxRequestBody = 4 << 20

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large", err)
			return
		}
		writeError(w, http.StatusBadRequest, "bad_json", err)
		return
	}
	view, err := m.Submit(req)
	if err != nil {
		m.submitErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+view.ID)
	writeJSON(w, http.StatusAccepted, view)
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := m.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// submitErr maps a Submit/SubmitSweep failure onto the API's status codes.
// Admission rejections are 429 with a Retry-After estimate (the backlog is
// temporary: retry once it drains); a draining daemon answers 503 (this
// process will never accept the job — go elsewhere or wait for a restart).
func (m *Manager) submitErr(w http.ResponseWriter, err error) {
	var reqErr *RequestError
	switch {
	case errors.As(err, &reqErr):
		writeError(w, http.StatusBadRequest, reqErr.Code, reqErr.Err)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(m.RetryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "queue_full", err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "shutting_down", err)
	default:
		writeError(w, http.StatusInternalServerError, "internal", err)
	}
}

func (m *Manager) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var grid sweep.Grid
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&grid); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large", err)
			return
		}
		writeError(w, http.StatusBadRequest, "bad_json", err)
		return
	}
	view, err := m.SubmitSweep(grid)
	if err != nil {
		m.submitErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/sweeps/"+view.ID)
	writeJSON(w, http.StatusAccepted, view)
}

// namespaceOnly guards a generic {id} handler so each namespace serves
// only its own job kind: /v1/sweeps rejects compile-job ids and /v1/jobs
// rejects sweep ids, both with 404 — a mixed-up id must never fetch,
// cancel, or stream a job of the other kind.
func (m *Manager) namespaceOnly(wantSweep bool, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		view, err := m.Get(r.PathValue("id"))
		if err != nil || (view.Source == "sweep") != wantSweep {
			writeError(w, http.StatusNotFound, "not_found", ErrNotFound)
			return
		}
		next(w, r)
	}
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := m.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, "not_found", err)
	case errors.Is(err, ErrFinished):
		writeError(w, http.StatusConflict, "already_finished", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "internal", err)
	default:
		writeJSON(w, http.StatusOK, view)
	}
}

// lastEventID parses the SSE Last-Event-ID request header into the highest
// sequence number the client has already seen, or -1 when absent or
// malformed (malformed values degrade to a full history replay, never an
// error — the header is advisory).
func lastEventID(r *http.Request) int {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		return -1
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return -1
	}
	return n
}

func (m *Manager) handleStream(w http.ResponseWriter, r *http.Request) {
	history, live, stop, err := m.Subscribe(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err)
		return
	}
	defer stop()
	lastSeen := lastEventID(r)
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "no_stream",
			errors.New("service: response writer does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	send := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Kind, ev.Seq, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	// Resume semantics: a reconnecting EventSource client sends the id of
	// the last event it processed; everything at or below that sequence
	// number is skipped (history and, defensively, live events) so clients
	// see each event exactly once across reconnects instead of a full
	// replay. Event sequence numbers are per-job and strictly increasing.
	for _, ev := range history {
		if ev.Seq <= lastSeen {
			continue
		}
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				return // terminal event delivered; stream complete
			}
			if ev.Seq <= lastSeen {
				continue
			}
			if !send(ev) {
				return
			}
		}
	}
}

func (m *Manager) handleCompilers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"compilers": muzzle.CompilerCatalog()})
}

func (m *Manager) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	met := m.MetricsSnapshot()
	status := "ok"
	if met.Draining {
		status = "draining"
	}
	// Degraded components do not change the status: a daemon serving from
	// memory only (or skipping journal writes) still completes every
	// request, and a coordinator must keep dispatching to it. The block
	// tells operators what reduced mode, if any, the daemon is in.
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"uptime_seconds": met.UptimeSeconds,
		"workers":        met.Workers,
		"jobs_submitted": met.JobsSubmitted,
		"queue_depth":    met.QueueDepth,
		"queue_capacity": met.QueueCapacity,
		"degraded":       met.Degraded(),
		"worker":         m.WorkerInfo(),
	})
}

// handleMetrics renders the counters in the Prometheus text exposition
// format (hand-rolled: the repo takes no dependencies).
func (m *Manager) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	met := m.MetricsSnapshot()
	var b strings.Builder
	b.WriteString("# HELP muzzled_uptime_seconds Seconds since the service started.\n")
	b.WriteString("# TYPE muzzled_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "muzzled_uptime_seconds %g\n", met.UptimeSeconds)

	b.WriteString("# HELP muzzled_jobs_submitted_total Jobs accepted since start.\n")
	b.WriteString("# TYPE muzzled_jobs_submitted_total counter\n")
	fmt.Fprintf(&b, "muzzled_jobs_submitted_total %d\n", met.JobsSubmitted)

	b.WriteString("# HELP muzzled_jobs Jobs currently tracked, by state.\n")
	b.WriteString("# TYPE muzzled_jobs gauge\n")
	for _, s := range []State{StatePending, StateRunning, StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(&b, "muzzled_jobs{state=%q} %d\n", string(s), met.JobsByState[s])
	}

	b.WriteString("# HELP muzzled_jobs_recovered_total Jobs replayed from the journal at startup.\n")
	b.WriteString("# TYPE muzzled_jobs_recovered_total counter\n")
	fmt.Fprintf(&b, "muzzled_jobs_recovered_total %d\n", met.JobsRecovered)

	b.WriteString("# HELP muzzled_queue_depth Jobs waiting in the admission queue.\n")
	b.WriteString("# TYPE muzzled_queue_depth gauge\n")
	fmt.Fprintf(&b, "muzzled_queue_depth %d\n", met.QueueDepth)
	b.WriteString("# HELP muzzled_queue_capacity Admission bound: submits past this pending depth are rejected.\n")
	b.WriteString("# TYPE muzzled_queue_capacity gauge\n")
	fmt.Fprintf(&b, "muzzled_queue_capacity %d\n", met.QueueCapacity)
	b.WriteString("# HELP muzzled_admission_rejected_total Submits rejected with 429 by the queue-depth bound.\n")
	b.WriteString("# TYPE muzzled_admission_rejected_total counter\n")
	fmt.Fprintf(&b, "muzzled_admission_rejected_total %d\n", met.AdmissionRejected)

	b.WriteString("# HELP muzzled_draining Whether the daemon is refusing new submissions while shutting down.\n")
	b.WriteString("# TYPE muzzled_draining gauge\n")
	draining := 0
	if met.Draining {
		draining = 1
	}
	fmt.Fprintf(&b, "muzzled_draining %d\n", draining)

	b.WriteString("# HELP muzzled_degraded Per-component degraded state (1 = operating in reduced mode, still serving).\n")
	b.WriteString("# TYPE muzzled_degraded gauge\n")
	deg := met.Degraded()
	for _, comp := range []string{"cache_disk", "journal"} {
		v := 0
		if deg[comp] {
			v = 1
		}
		fmt.Fprintf(&b, "muzzled_degraded{component=%q} %d\n", comp, v)
	}

	b.WriteString("# HELP muzzled_panics_recovered_total Panics contained by the HTTP layer and job workers.\n")
	b.WriteString("# TYPE muzzled_panics_recovered_total counter\n")
	fmt.Fprintf(&b, "muzzled_panics_recovered_total %d\n", met.PanicsRecovered)

	if met.Flight != nil {
		b.WriteString("# HELP muzzled_flight_executions_total Evaluations that ran as a single-flight leader.\n")
		b.WriteString("# TYPE muzzled_flight_executions_total counter\n")
		fmt.Fprintf(&b, "muzzled_flight_executions_total %d\n", met.Flight.Executions)
		b.WriteString("# HELP muzzled_flight_coalesced_total Evaluations that shared another caller's in-flight execution.\n")
		b.WriteString("# TYPE muzzled_flight_coalesced_total counter\n")
		fmt.Fprintf(&b, "muzzled_flight_coalesced_total %d\n", met.Flight.Coalesced)
		b.WriteString("# HELP muzzled_flight_retries_total Followers re-executed because their leader aborted on its own context.\n")
		b.WriteString("# TYPE muzzled_flight_retries_total counter\n")
		fmt.Fprintf(&b, "muzzled_flight_retries_total %d\n", met.Flight.Retries)
		b.WriteString("# HELP muzzled_flight_in_flight Distinct evaluations currently executing under the group.\n")
		b.WriteString("# TYPE muzzled_flight_in_flight gauge\n")
		fmt.Fprintf(&b, "muzzled_flight_in_flight %d\n", met.Flight.InFlight)
	}

	if met.Store != nil {
		b.WriteString("# HELP muzzled_store_appends_total Journal records fsync'd this process.\n")
		b.WriteString("# TYPE muzzled_store_appends_total counter\n")
		fmt.Fprintf(&b, "muzzled_store_appends_total %d\n", met.Store.Appends)
		b.WriteString("# HELP muzzled_store_compactions_total Journal snapshot folds this process.\n")
		b.WriteString("# TYPE muzzled_store_compactions_total counter\n")
		fmt.Fprintf(&b, "muzzled_store_compactions_total %d\n", met.Store.Compactions)
		b.WriteString("# HELP muzzled_store_replayed_records Journal WAL records replayed at startup.\n")
		b.WriteString("# TYPE muzzled_store_replayed_records gauge\n")
		fmt.Fprintf(&b, "muzzled_store_replayed_records %d\n", met.Store.Replayed)
		b.WriteString("# HELP muzzled_store_truncated_bytes Torn WAL tail discarded at startup.\n")
		b.WriteString("# TYPE muzzled_store_truncated_bytes gauge\n")
		fmt.Fprintf(&b, "muzzled_store_truncated_bytes %d\n", met.Store.TruncatedBytes)
		b.WriteString("# HELP muzzled_store_jobs Jobs tracked by the journal.\n")
		b.WriteString("# TYPE muzzled_store_jobs gauge\n")
		fmt.Fprintf(&b, "muzzled_store_jobs %d\n", met.Store.Jobs)
		b.WriteString("# HELP muzzled_store_wal_bytes Current journal WAL size.\n")
		b.WriteString("# TYPE muzzled_store_wal_bytes gauge\n")
		fmt.Fprintf(&b, "muzzled_store_wal_bytes %d\n", met.Store.WALBytes)
		b.WriteString("# HELP muzzled_store_errors_total Journal appends or compactions that failed (recovery fidelity degraded).\n")
		b.WriteString("# TYPE muzzled_store_errors_total counter\n")
		fmt.Fprintf(&b, "muzzled_store_errors_total %d\n", met.StoreErrors)
	}

	if met.Cache != nil {
		b.WriteString("# HELP muzzled_cache_hits_total Compile-cache hits (memory + disk).\n")
		b.WriteString("# TYPE muzzled_cache_hits_total counter\n")
		fmt.Fprintf(&b, "muzzled_cache_hits_total %d\n", met.Cache.Hits)
		b.WriteString("# HELP muzzled_cache_misses_total Compile-cache misses.\n")
		b.WriteString("# TYPE muzzled_cache_misses_total counter\n")
		fmt.Fprintf(&b, "muzzled_cache_misses_total %d\n", met.Cache.Misses)
		b.WriteString("# HELP muzzled_cache_disk_hits_total Hits served from the disk tier.\n")
		b.WriteString("# TYPE muzzled_cache_disk_hits_total counter\n")
		fmt.Fprintf(&b, "muzzled_cache_disk_hits_total %d\n", met.Cache.DiskHits)
		b.WriteString("# HELP muzzled_cache_evictions_total In-memory LRU evictions.\n")
		b.WriteString("# TYPE muzzled_cache_evictions_total counter\n")
		fmt.Fprintf(&b, "muzzled_cache_evictions_total %d\n", met.Cache.Evictions)
		b.WriteString("# HELP muzzled_cache_entries In-memory cache entries.\n")
		b.WriteString("# TYPE muzzled_cache_entries gauge\n")
		fmt.Fprintf(&b, "muzzled_cache_entries %d\n", met.Cache.Entries)
		b.WriteString("# HELP muzzled_cache_disk_entries Resident files in the disk tier.\n")
		b.WriteString("# TYPE muzzled_cache_disk_entries gauge\n")
		fmt.Fprintf(&b, "muzzled_cache_disk_entries %d\n", met.Cache.DiskEntries)
		b.WriteString("# HELP muzzled_cache_disk_evictions_total Disk-tier files deleted by the size bound.\n")
		b.WriteString("# TYPE muzzled_cache_disk_evictions_total counter\n")
		fmt.Fprintf(&b, "muzzled_cache_disk_evictions_total %d\n", met.Cache.DiskEvictions)
		b.WriteString("# HELP muzzled_cache_disk_errors_total Disk-tier read/write/sweep I/O failures (served from memory instead).\n")
		b.WriteString("# TYPE muzzled_cache_disk_errors_total counter\n")
		fmt.Fprintf(&b, "muzzled_cache_disk_errors_total %d\n", met.Cache.DiskErrors)
		b.WriteString("# HELP muzzled_cache_disk_trips_total Times the disk tier tripped to memory-only after consecutive I/O errors.\n")
		b.WriteString("# TYPE muzzled_cache_disk_trips_total counter\n")
		fmt.Fprintf(&b, "muzzled_cache_disk_trips_total %d\n", met.Cache.DiskTrips)
	}

	h := met.CompileLatency
	b.WriteString("# HELP muzzled_compile_latency_seconds Per-circuit evaluation wall time (compile + simulate across the compiler set; cache hits land in the lowest buckets).\n")
	b.WriteString("# TYPE muzzled_compile_latency_seconds histogram\n")
	for i, ub := range h.Buckets {
		fmt.Fprintf(&b, "muzzled_compile_latency_seconds_bucket{le=%q} %d\n",
			fmt.Sprintf("%g", ub), h.Cumulative[i])
	}
	fmt.Fprintf(&b, "muzzled_compile_latency_seconds_bucket{le=\"+Inf\"} %d\n", h.Count)
	fmt.Fprintf(&b, "muzzled_compile_latency_seconds_sum %g\n", h.Sum)
	fmt.Fprintf(&b, "muzzled_compile_latency_seconds_count %d\n", h.Count)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String())) //nolint:errcheck
}
