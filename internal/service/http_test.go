package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"muzzle"
	"muzzle/internal/service"
)

const testQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];
cx q[4],q[5];
cx q[0],q[5];
`

// countingCompiles counts factory invocations of the "counting" compiler —
// the eval harness builds one compiler instance per compilation, so the
// counter equals the number of compile passes performed.
var (
	countingCompiles atomic.Int64
	countingOnce     sync.Once
)

func registerCounting(t *testing.T) {
	t.Helper()
	countingOnce.Do(func() {
		muzzle.MustRegisterCompiler("counting", func() *muzzle.Compiler {
			countingCompiles.Add(1)
			return muzzle.NewOptimizedCompiler()
		})
	})
}

func newTestServer(t *testing.T, cfg service.Config) (*service.Manager, *httptest.Server) {
	t.Helper()
	mgr := service.New(cfg)
	srv := httptest.NewServer(mgr.Handler())
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return mgr, srv
}

func submit(t *testing.T, srv *httptest.Server, req service.Request) service.JobView {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Fatalf("Location = %q", loc)
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.State != service.StatePending && view.State != service.StateRunning {
		t.Fatalf("initial state = %s", view.State)
	}
	return view
}

// streamEvents consumes the job's SSE stream until a terminal state event
// (or timeout), returning every event in order.
func streamEvents(t *testing.T, srv *httptest.Server, id string, timeout time.Duration) []service.Event {
	t.Helper()
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(srv.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	var events []service.Event
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE data %q: %v", line, err)
		}
		events = append(events, ev)
		if ev.Kind == service.EventState && ev.State.Terminal() {
			return events
		}
	}
	t.Fatalf("stream ended without a terminal event (%d events, scan err %v)", len(events), scanner.Err())
	return nil
}

func TestSubmitStreamDone(t *testing.T) {
	_, srv := newTestServer(t, service.Config{Workers: 1})
	view := submit(t, srv, service.Request{QASM: testQASM})

	events := streamEvents(t, srv, view.ID, 60*time.Second)
	last := events[len(events)-1]
	if last.State != service.StateDone {
		t.Fatalf("terminal state = %s (error %q), want done", last.State, last.Error)
	}
	var circuits int
	for _, ev := range events {
		if ev.Kind == service.EventCircuit {
			circuits++
			if ev.Result == nil {
				t.Fatalf("circuit event without result: %+v", ev)
			}
			if ev.Result.Outcomes["baseline"] == nil || ev.Result.Outcomes["optimized"] == nil {
				t.Fatalf("circuit event missing default pair: %+v", ev.Result)
			}
		}
	}
	if circuits != 1 {
		t.Fatalf("circuit events = %d, want 1", circuits)
	}

	// The snapshot agrees with the stream.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var final service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone || final.CircuitsDone != 1 || final.CircuitsTotal != 1 {
		t.Fatalf("final view = %+v", final)
	}
	if len(final.Results) != 1 || final.Results[0].Qubits != 6 {
		t.Fatalf("final results = %+v", final.Results)
	}
	if final.Started == nil || final.Finished == nil {
		t.Fatal("final view missing timestamps")
	}
}

func TestCancelMidRun(t *testing.T) {
	_, srv := newTestServer(t, service.Config{Workers: 1})
	// The full 120-circuit random suite cannot finish before the cancel
	// lands; cooperative cancellation must still end the job promptly.
	view := submit(t, srv, service.Request{Random: &service.RandomRequest{}})

	type result struct{ events []service.Event }
	ch := make(chan result, 1)
	go func() {
		ch <- result{streamEvents(t, srv, view.ID, 120*time.Second)}
	}()

	// Wait until the job is running, then cancel it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v service.JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State == service.StateRunning {
			break
		}
		if v.State.Terminal() {
			t.Fatalf("job reached %s before cancel", v.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+view.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d, want 200", resp.StatusCode)
	}

	res := <-ch
	last := res.events[len(res.events)-1]
	if last.State != service.StateCanceled {
		t.Fatalf("terminal state = %s, want canceled", last.State)
	}
	for _, ev := range res.events {
		if ev.Kind == service.EventCircuit && ev.Total != 120 {
			t.Fatalf("circuit event total = %d, want 120", ev.Total)
		}
	}

	// Canceling again conflicts.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+view.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel status = %d, want 409", resp.StatusCode)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, srv := newTestServer(t, service.Config{Workers: 1})
	cases := []struct {
		name string
		body string
		code string
	}{
		{"unknown compiler", fmt.Sprintf(`{"qasm": %q, "compilers": ["nope"]}`, testQASM), "unknown_compiler"},
		{"duplicate compiler", fmt.Sprintf(`{"qasm": %q, "compilers": ["baseline", "baseline"]}`, testQASM), "bad_request"},
		{"no source", `{}`, "bad_request"},
		{"both sources", fmt.Sprintf(`{"qasm": %q, "random": {}}`, testQASM), "bad_request"},
		{"bad qasm", `{"qasm": "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[9];\n"}`, "bad_qasm"},
		{"bad json", `{"qasm": 12`, "bad_json"},
		{"unknown field", `{"qsam": "typo"}`, "bad_json"},
		{"negative limit", `{"random": {"limit": -1}}`, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var apiErr struct {
				Code  string `json:"code"`
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
				t.Fatal(err)
			}
			if apiErr.Code != tc.code {
				t.Fatalf("code = %q (%s), want %q", apiErr.Code, apiErr.Error, tc.code)
			}
		})
	}

	if resp, err := http.Get(srv.URL + "/v1/jobs/nonexistent"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
		}
	}
}

func TestCompilersHealthzMetrics(t *testing.T) {
	_, srv := newTestServer(t, service.Config{Workers: 1})

	resp, err := http.Get(srv.URL + "/v1/compilers")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Compilers []muzzle.CompilerInfo `json:"compilers"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, c := range listing.Compilers {
		found[c.Name] = c.Builtin
	}
	if !found["baseline"] || !found["optimized"] {
		t.Fatalf("catalog missing builtin pair: %+v", listing.Compilers)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz = %+v", health)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		`muzzled_jobs{state="done"}`,
		"muzzled_jobs_submitted_total",
		"muzzled_compile_latency_seconds_bucket",
		"muzzled_compile_latency_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestCacheHitEndToEnd is the acceptance scenario: submit the same QASM
// job twice against a daemon with a compile cache; the second run must be
// served from cache — the hit counter increments and no compiler is
// invoked — while streaming per-circuit results identical to the first.
func TestCacheHitEndToEnd(t *testing.T) {
	registerCounting(t)
	cache, err := muzzle.NewCache(muzzle.CacheConfig{MaxEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, srv := newTestServer(t, service.Config{Workers: 1, Cache: cache})

	run := func() []byte {
		view := submit(t, srv, service.Request{QASM: testQASM, Compilers: []string{"counting"}})
		events := streamEvents(t, srv, view.ID, 60*time.Second)
		last := events[len(events)-1]
		if last.State != service.StateDone {
			t.Fatalf("terminal state = %s (error %q)", last.State, last.Error)
		}
		var payload []byte
		for _, ev := range events {
			if ev.Kind != service.EventCircuit {
				continue
			}
			b, err := json.Marshal(ev.Result)
			if err != nil {
				t.Fatal(err)
			}
			payload = append(payload, b...)
			payload = append(payload, '\n')
		}
		if len(payload) == 0 {
			t.Fatal("no circuit results streamed")
		}
		return payload
	}

	first := run()
	compilesAfterFirst := countingCompiles.Load()
	if compilesAfterFirst == 0 {
		t.Fatal("first job never invoked the compiler")
	}
	statsAfterFirst := cache.Stats()
	if statsAfterFirst.Misses == 0 {
		t.Fatalf("first job should miss the cache: %+v", statsAfterFirst)
	}

	second := run()
	if got := countingCompiles.Load(); got != compilesAfterFirst {
		t.Errorf("second job invoked the compiler %d more times, want 0 (cache hit)",
			got-compilesAfterFirst)
	}
	stats := cache.Stats()
	if stats.Hits <= statsAfterFirst.Hits {
		t.Errorf("cache hits did not increment: %+v -> %+v", statsAfterFirst, stats)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached run streamed different results:\nfirst:  %s\nsecond: %s", first, second)
	}
}
