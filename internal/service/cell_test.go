package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"muzzle/internal/service"
	"muzzle/internal/sweep"
)

func postCell(t *testing.T, srv *httptest.Server, body any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if s, ok := body.(string); ok {
		buf.WriteString(s)
	} else if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/cells", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// POST /v1/cells is synchronous: the response body is the finished cell's
// report, identical in content to what a local sweep run of the same grid
// would record for that index.
func TestCellEndpointExecutesOneCell(t *testing.T) {
	_, srv := newTestServer(t, service.Config{Workers: 2})
	e, err := sweep.Expand(testGrid())
	if err != nil {
		t.Fatal(err)
	}

	resp := postCell(t, srv, service.CellRequest{Grid: testGrid(), Index: 1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cell status = %d, want 200", resp.StatusCode)
	}
	var cr sweep.CellReport
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Index != 1 || cr.ID != e.Cells[1].ID {
		t.Fatalf("got cell %d (%s), want 1 (%s)", cr.Index, cr.ID, e.Cells[1].ID)
	}
	if cr.Error != "" {
		t.Fatalf("cell error: %s", cr.Error)
	}
	if len(cr.Outcomes) != len(e.Grid.Compilers) {
		t.Fatalf("outcomes = %d, want one per compiler (%d)", len(cr.Outcomes), len(e.Grid.Compilers))
	}
	for _, o := range cr.Outcomes {
		if o.Shuttles <= 0 {
			t.Errorf("compiler %s reported %d shuttles", o.Compiler, o.Shuttles)
		}
	}
}

// Malformed cell requests are clean 400s with stable codes — a coordinator
// treats them as permanent, so they must never be returned for load
// reasons.
func TestCellEndpointValidation(t *testing.T) {
	_, srv := newTestServer(t, service.Config{Workers: 1})

	check := func(name string, body any, wantStatus int, wantCode string) {
		t.Helper()
		resp := postCell(t, srv, body)
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s: status = %d, want %d", name, resp.StatusCode, wantStatus)
		}
		var apiErr struct {
			Code string `json:"code"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Code != wantCode {
			t.Fatalf("%s: code = %q (%v), want %q", name, apiErr.Code, err, wantCode)
		}
	}

	check("bad json", `{"grid": `, http.StatusBadRequest, "bad_json")
	check("unknown field", `{"grid": {}, "index": 0, "nope": 1}`, http.StatusBadRequest, "bad_json")

	g := testGrid()
	g.Topologies = nil
	check("invalid grid", service.CellRequest{Grid: g, Index: 0}, http.StatusBadRequest, "bad_grid")

	check("index out of range", service.CellRequest{Grid: testGrid(), Index: 99}, http.StatusBadRequest, "bad_cell")
	check("negative index", service.CellRequest{Grid: testGrid(), Index: -1}, http.StatusBadRequest, "bad_cell")
	check("negative timeout", service.CellRequest{Grid: testGrid(), Index: 0, TimeoutMS: -5}, http.StatusBadRequest, "bad_request")
}

// cellGate freezes a worker so the cell-endpoint backpressure test can
// fill the admission queue deterministically (each test owns its gate).
var cellGate = &gate{name: "cellgate"}

// Cell submissions ride the same admission control as every other job:
// past the queue bound they get 429 + Retry-After, the signal the
// coordinator's backpressure path honors.
func TestCellEndpointBackpressure(t *testing.T) {
	cellGate.register()
	mgr, srv := newTestServer(t, service.Config{Workers: 1, QueueDepth: 1})

	base := cellGate.count.Load()
	a := submit(t, srv, service.Request{Name: "a", QASM: testQASM, Compilers: []string{"cellgate"}})
	waitFor(t, "job a to occupy the worker", func() bool { return cellGate.count.Load() == base+1 })
	b := submit(t, srv, service.Request{Name: "b", QASM: testQASM, Compilers: []string{"cellgate"}})

	resp := postCell(t, srv, service.CellRequest{Grid: testGrid(), Index: 0})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity cell = %d, want 429", resp.StatusCode)
	}
	if retry, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || retry < 1 || retry > 60 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 60]", resp.Header.Get("Retry-After"))
	}

	cellGate.allow(0, 2)
	waitState(t, mgr, a.ID, service.StateDone)
	waitState(t, mgr, b.ID, service.StateDone)
}

// /healthz exposes the worker identity block a coordinator uses to tell
// fleet members apart.
func TestHealthzWorkerIdentity(t *testing.T) {
	_, srv := newTestServer(t, service.Config{Workers: 1, WorkerID: "w-test-1"})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status string             `json:"status"`
		Worker service.WorkerInfo `json:"worker"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Fatalf("status = %q", body.Status)
	}
	if body.Worker.ID != "w-test-1" {
		t.Fatalf("worker id = %q, want w-test-1", body.Worker.ID)
	}
	if body.Worker.Version != service.Version {
		t.Fatalf("worker version = %q, want %q", body.Worker.Version, service.Version)
	}
	if body.Worker.PID <= 0 {
		t.Fatalf("worker pid = %d", body.Worker.PID)
	}
}

// A cell whose execution fails deterministically (here: a circuit too wide
// for the machine point) still answers 200 — the failure is part of the
// deterministic report, and the coordinator persists it like a local run
// would.
func TestCellEndpointDeterministicFailureIs200(t *testing.T) {
	g := testGrid()
	g.Circuits = []sweep.CircuitSpec{{Kind: sweep.CircuitQFT, Qubits: 40}} // cannot fit 4 traps x capacity 6
	_, srv := newTestServer(t, service.Config{Workers: 1})

	resp := postCell(t, srv, service.CellRequest{Grid: g, Index: 0})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deterministic failure status = %d, want 200", resp.StatusCode)
	}
	var cr sweep.CellReport
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Error == "" {
		t.Fatal("expected a deterministic cell error, got success")
	}
	if !strings.Contains(cr.Error, "exceed") {
		t.Fatalf("unexpected cell error %q", cr.Error)
	}
}
