// Package service is the compilation service behind cmd/muzzled: a job
// manager that absorbs compile/evaluate requests into a bounded worker
// pool backed by muzzle.Pipeline, tracks each job through
// pending/running/done/failed/canceled, supports per-job cancellation via
// the Pipeline's context plumbing, and broadcasts per-circuit progress
// events that the HTTP layer (http.go) streams to clients as SSE.
//
// A Manager owns nothing global: compilers resolve from the process-wide
// registry, results flow through the shared content-addressed cache when
// one is configured, and every job runs on its own Pipeline built from the
// manager's base options plus the request's overrides — the same code path
// the CLI uses, so CLI and service outputs are interchangeable.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"muzzle"
	"muzzle/internal/sweep"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle states. Terminal states are done, failed, and canceled.
const (
	StatePending  State = "pending"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Sentinel errors of the manager API.
var (
	// ErrNotFound marks an unknown job id.
	ErrNotFound = errors.New("service: job not found")
	// ErrFinished marks a cancel of an already-terminal job.
	ErrFinished = errors.New("service: job already finished")
	// ErrQueueFull marks a submit rejected by the bounded queue.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed marks a submit after Close.
	ErrClosed = errors.New("service: manager closed")
)

// RequestError is a submit-time validation failure (HTTP 400). Code is a
// stable machine-readable slug ("unknown_compiler", "bad_request", ...).
type RequestError struct {
	Code string
	Err  error
}

// Error implements the error interface.
func (e *RequestError) Error() string { return fmt.Sprintf("service: %s: %v", e.Code, e.Err) }

// Unwrap exposes the cause.
func (e *RequestError) Unwrap() error { return e.Err }

func badRequest(code, format string, args ...any) *RequestError {
	return &RequestError{Code: code, Err: fmt.Errorf(format, args...)}
}

// RandomRequest asks for the pipeline's random benchmark suite.
type RandomRequest struct {
	// Limit evaluates only the first N suite circuits (0 = the full 120).
	Limit int `json:"limit,omitempty"`
	// Seed, when set, re-seeds the suite (WithRandomSeed); nil preserves
	// the paper's circuits.
	Seed *int64 `json:"seed,omitempty"`
}

// Request is one compile/evaluate job: exactly one source — inline
// OpenQASM or the named random suite — plus optional compiler and timeout
// overrides.
type Request struct {
	// Name labels the job's circuit when QASM is set (default "qasm").
	// The name is part of the compile-cache key, so identical sources
	// submitted under the same name share cache entries.
	Name string `json:"name,omitempty"`
	// QASM is inline OpenQASM 2.0 source.
	QASM string `json:"qasm,omitempty"`
	// Random requests the random benchmark suite instead.
	Random *RandomRequest `json:"random,omitempty"`
	// Compilers overrides the evaluation compiler set (registry names;
	// default "baseline","optimized").
	Compilers []string `json:"compilers,omitempty"`
	// TimeoutMS bounds the job's run; 0 means no per-job timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Verify runs the independent schedule verifier on every freshly
	// compiled result of this job; violations fail the job with a typed
	// verification error (never a panic). The daemon-wide Config.Verify
	// forces this on for every job.
	Verify bool `json:"verify,omitempty"`
}

// Event is one progress notification of a job, replayed to late
// subscribers in order. Kind "state" carries a lifecycle transition; kind
// "circuit" carries one per-circuit outcome (Result on success, Error on
// failure); kind "cell" carries one sweep cell's report.
type Event struct {
	Seq     int                    `json:"seq"`
	Kind    string                 `json:"kind"`
	JobID   string                 `json:"job_id"`
	State   State                  `json:"state,omitempty"`
	Index   int                    `json:"index,omitempty"`
	Circuit string                 `json:"circuit,omitempty"`
	Result  *muzzle.EvalResultJSON `json:"result,omitempty"`
	Cell    *sweep.CellReport      `json:"cell,omitempty"`
	Error   string                 `json:"error,omitempty"`
	Done    int                    `json:"done"`
	Total   int                    `json:"total"`
}

// Event kinds.
const (
	EventState   = "state"
	EventCircuit = "circuit"
	EventCell    = "cell"
)

// JobView is the externally visible snapshot of a job (GET /v1/jobs/{id},
// GET /v1/sweeps/{id}). For sweep jobs Source is "sweep", CircuitsTotal/
// CircuitsDone count cells, and Sweep carries the aggregated report once
// the job is terminal (partial on cancellation).
type JobView struct {
	ID            string                   `json:"id"`
	State         State                    `json:"state"`
	Source        string                   `json:"source"`
	Compilers     []string                 `json:"compilers,omitempty"`
	Created       time.Time                `json:"created"`
	Started       *time.Time               `json:"started,omitempty"`
	Finished      *time.Time               `json:"finished,omitempty"`
	CircuitsTotal int                      `json:"circuits_total"`
	CircuitsDone  int                      `json:"circuits_done"`
	Error         string                   `json:"error,omitempty"`
	Results       []*muzzle.EvalResultJSON `json:"results,omitempty"`
	Sweep         *sweep.Report            `json:"sweep,omitempty"`
}

// job is the manager's internal record. Its mutable fields are guarded by
// mu; the manager's map lock is never held while mu is.
type job struct {
	id    string
	req   Request
	circ  *muzzle.Circuit // parsed QASM source (nil for random and sweep jobs)
	sweep *sweep.Expanded // sweep jobs: the validated, expanded grid (nil otherwise)

	mu          sync.Mutex
	state       State
	created     time.Time
	started     *time.Time
	finished    *time.Time
	total, done int
	errText     string
	results     []*muzzle.EvalResultJSON
	report      *sweep.Report // sweep jobs: aggregated report once the run ends
	events      []Event
	subs        map[chan Event]struct{}
	cancel      context.CancelFunc
}

// Config assembles a Manager.
type Config struct {
	// Workers sizes the worker pool (default 2). Each worker runs one job
	// at a time; per-job circuit parallelism is set via PipelineOptions.
	Workers int
	// QueueDepth bounds pending jobs (default 256); submits beyond it
	// fail with ErrQueueFull rather than blocking the caller.
	QueueDepth int
	// JobRetention bounds how many terminal (done/failed/canceled) jobs
	// stay queryable (default 1024). Beyond it the oldest-finished jobs —
	// results and event history included — are dropped and their ids
	// return 404, keeping a long-lived daemon's memory bounded.
	JobRetention int
	// Cache, when non-nil, is shared by every job's pipeline — sweep cells
	// included — and its counters are exported via Metrics and /metrics.
	Cache *muzzle.Cache
	// SweepParallelism bounds concurrently running cells of one sweep job
	// (0 = one per CPU).
	SweepParallelism int
	// PipelineOptions are the base options of every job's pipeline
	// (machine, sim params, parallelism, ...); the request's compiler,
	// seed, and limit overrides are appended after them.
	PipelineOptions []muzzle.PipelineOption
	// Verify forces the independent schedule verifier on every job and
	// sweep cell, regardless of the per-request Verify field (the muzzled
	// -verify flag).
	Verify bool
}

// Manager owns the job table, the bounded queue, and the worker pool.
type Manager struct {
	cfg     Config
	start   time.Time
	baseCtx context.Context
	stop    context.CancelFunc
	queue   chan *job
	wg      sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*job
	terminal  []string // terminal job ids, oldest first, for retention
	closed    bool
	submitted uint64

	latency *Histogram
}

// New starts a Manager and its workers.
func New(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.JobRetention <= 0 {
		cfg.JobRetention = 1024
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		start:   time.Now(),
		baseCtx: ctx,
		stop:    stop,
		queue:   make(chan *job, cfg.QueueDepth),
		jobs:    make(map[string]*job),
		latency: NewHistogram(DefaultLatencyBuckets()),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.run(j)
			}
		}()
	}
	return m
}

// Close stops accepting jobs, cancels everything in flight, and waits for
// the workers. Queued jobs drain as canceled.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.stop()
	close(m.queue)
	m.wg.Wait()
}

// newJobID returns a 96-bit random hex id.
func newJobID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: crypto/rand failed: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// newJob returns an empty pending job record.
func newJob() *job {
	return &job{
		id:      newJobID(),
		state:   StatePending,
		created: time.Now(),
		subs:    make(map[chan Event]struct{}),
	}
}

// Submit validates a request, enqueues the job, and returns its initial
// view. Validation failures are *RequestError (the HTTP layer maps them to
// 400); a full queue is ErrQueueFull (503).
func (m *Manager) Submit(req Request) (JobView, error) {
	j := newJob()
	j.req = req
	switch {
	case req.QASM != "" && req.Random != nil:
		return JobView{}, badRequest("bad_request", "request must set exactly one of qasm/random, not both")
	case req.QASM == "" && req.Random == nil:
		return JobView{}, badRequest("bad_request", "request must set one of qasm/random")
	case req.QASM != "":
		name := req.Name
		if name == "" {
			name = "qasm"
		}
		c, err := muzzle.ParseQASM(name, req.QASM)
		if err != nil {
			return JobView{}, &RequestError{Code: "bad_qasm", Err: err}
		}
		j.circ = c
	default:
		if req.Random.Limit < 0 {
			return JobView{}, badRequest("bad_request", "random.limit %d must be >= 0", req.Random.Limit)
		}
	}
	seen := make(map[string]bool, len(req.Compilers))
	for _, name := range req.Compilers {
		if !muzzle.HasCompiler(name) {
			return JobView{}, badRequest("unknown_compiler",
				"compiler %q is not registered (registered: %v)", name, muzzle.RegisteredCompilers())
		}
		if seen[name] {
			return JobView{}, badRequest("bad_request", "compiler %q listed twice", name)
		}
		seen[name] = true
	}
	if req.TimeoutMS < 0 {
		return JobView{}, badRequest("bad_request", "timeout_ms %d must be >= 0", req.TimeoutMS)
	}

	return m.enqueue(j)
}

// enqueue publishes a validated job to the worker queue and the job table.
func (m *Manager) enqueue(j *job) (JobView, error) {
	// Record the pending event before the job becomes visible to workers,
	// so the replayed history is always in lifecycle order even when a
	// worker dequeues and starts the job immediately.
	j.emit(Event{Kind: EventState, State: StatePending})

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobView{}, ErrClosed
	}
	select {
	case m.queue <- j:
		m.jobs[j.id] = j
		m.submitted++
		m.mu.Unlock()
	default:
		m.mu.Unlock()
		return JobView{}, ErrQueueFull
	}
	return m.view(j), nil
}

// Get returns a job snapshot.
func (m *Manager) Get(id string) (JobView, error) {
	j, err := m.lookup(id)
	if err != nil {
		return JobView{}, err
	}
	return m.view(j), nil
}

// Cancel requests cooperative cancellation: a pending job is canceled in
// place, a running one has its context canceled and drains promptly; a
// terminal job reports ErrFinished.
func (m *Manager) Cancel(id string) (JobView, error) {
	j, err := m.lookup(id)
	if err != nil {
		return JobView{}, err
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		return m.view(j), ErrFinished
	case j.state == StatePending:
		now := time.Now()
		j.state = StateCanceled
		j.finished = &now
		j.emitLocked(Event{Kind: EventState, State: StateCanceled})
		j.mu.Unlock()
		m.retain(j.id)
	default: // running; j.cancel was set in the same critical section
		// that published the running state, so it is non-nil here.
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
	}
	return m.view(j), nil
}

// Subscribe returns the job's event history so far plus a live channel for
// what follows; the channel is closed (possibly immediately) once the job
// is terminal. Call the returned stop function when done listening.
func (m *Manager) Subscribe(id string) (history []Event, live <-chan Event, stopFn func(), err error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, nil, nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	history = append([]Event(nil), j.events...)
	ch := make(chan Event, 4096)
	if j.state.Terminal() {
		close(ch)
		return history, ch, func() {}, nil
	}
	j.subs[ch] = struct{}{}
	stopFn = func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
	}
	return history, ch, stopFn, nil
}

// Metrics is the observable state of the service.
type Metrics struct {
	UptimeSeconds  float64            `json:"uptime_seconds"`
	Workers        int                `json:"workers"`
	JobsSubmitted  uint64             `json:"jobs_submitted"`
	JobsByState    map[State]int      `json:"jobs_by_state"`
	Cache          *muzzle.CacheStats `json:"cache,omitempty"`
	CompileLatency HistogramSnapshot  `json:"compile_latency_seconds"`
}

// MetricsSnapshot collects the current counters.
func (m *Manager) MetricsSnapshot() Metrics {
	out := Metrics{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Workers:       m.cfg.Workers,
		JobsByState: map[State]int{
			StatePending: 0, StateRunning: 0, StateDone: 0, StateFailed: 0, StateCanceled: 0,
		},
		CompileLatency: m.latency.Snapshot(),
	}
	m.mu.Lock()
	out.JobsSubmitted = m.submitted
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		out.JobsByState[j.state]++
		j.mu.Unlock()
	}
	if m.cfg.Cache != nil {
		s := m.cfg.Cache.Stats()
		out.Cache = &s
	}
	return out
}

func (m *Manager) lookup(id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

func (m *Manager) view(j *job) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:            j.id,
		State:         j.state,
		Source:        "qasm",
		Compilers:     append([]string(nil), j.req.Compilers...),
		Created:       j.created,
		Started:       j.started,
		Finished:      j.finished,
		CircuitsTotal: j.total,
		CircuitsDone:  j.done,
		Error:         j.errText,
		Results:       append([]*muzzle.EvalResultJSON(nil), j.results...),
		Sweep:         j.report,
	}
	switch {
	case j.sweep != nil:
		v.Source = "sweep"
		v.Compilers = append([]string(nil), j.sweep.Grid.Compilers...)
	case j.req.Random != nil:
		v.Source = "random"
	}
	return v
}

// emit assigns a sequence number, records the event for replay, and
// broadcasts it. Terminal state events close every subscriber. Slow
// subscribers (a full 4096-event buffer) drop events rather than wedge the
// worker; the replayed history on reconnect is always complete.
func (j *job) emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.emitLocked(ev)
}

// emitLocked is emit with j.mu already held — used where a state change
// and its event must be visible atomically to Subscribe.
func (j *job) emitLocked(ev Event) {
	ev.JobID = j.id
	ev.Seq = len(j.events)
	ev.Done = j.done
	ev.Total = j.total
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	if ev.Kind == EventState && ev.State.Terminal() {
		for ch := range j.subs {
			close(ch)
			delete(j.subs, ch)
		}
	}
}

// run executes one dequeued job on the calling worker.
func (m *Manager) run(j *job) {
	j.mu.Lock()
	if j.state != StatePending { // canceled while queued
		j.mu.Unlock()
		return
	}
	now := time.Now()
	j.state = StateRunning
	j.started = &now
	var ctx context.Context
	var cancel context.CancelFunc
	if j.req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(m.baseCtx, time.Duration(j.req.TimeoutMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(m.baseCtx)
	}
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	if j.sweep != nil {
		m.runSweep(ctx, j)
		return
	}

	p, circuits, err := m.buildPipeline(j)
	if err != nil {
		m.finish(j, StateFailed, err.Error())
		return
	}
	j.mu.Lock()
	j.total = len(circuits)
	j.mu.Unlock()
	j.emit(Event{Kind: EventState, State: StateRunning})

	failures := 0
	for item := range p.EvaluateStream(ctx, circuits) {
		if item.Err != nil {
			failures++
			j.emit(Event{Kind: EventCircuit, Index: item.Index, Circuit: item.Circuit,
				Error: item.Err.Error()})
			continue
		}
		res := muzzle.EncodeEvalResult(item.Result)
		j.mu.Lock()
		j.done++
		j.results = append(j.results, res)
		j.mu.Unlock()
		j.emit(Event{Kind: EventCircuit, Index: item.Index, Circuit: item.Circuit, Result: res})
	}

	switch {
	case ctx.Err() == context.DeadlineExceeded:
		m.finish(j, StateFailed, fmt.Sprintf("timed out after %dms", j.req.TimeoutMS))
	case ctx.Err() != nil:
		m.finish(j, StateCanceled, "")
	case failures > 0:
		m.finish(j, StateFailed, fmt.Sprintf("%d of %d circuits failed", failures, len(circuits)))
	default:
		m.finish(j, StateDone, "")
	}
}

// buildPipeline assembles the job's pipeline — base options, shared cache,
// request overrides, and the latency-observing progress hook — plus the
// circuit list it will evaluate.
func (m *Manager) buildPipeline(j *job) (*muzzle.Pipeline, []*muzzle.Circuit, error) {
	opts := append([]muzzle.PipelineOption(nil), m.cfg.PipelineOptions...)
	if m.cfg.Cache != nil {
		opts = append(opts, muzzle.WithCache(m.cfg.Cache))
	}
	if len(j.req.Compilers) > 0 {
		opts = append(opts, muzzle.WithCompilers(j.req.Compilers...))
	}
	if j.req.Verify || m.cfg.Verify {
		opts = append(opts, muzzle.WithVerify())
	}
	if j.req.Random != nil {
		if j.req.Random.Seed != nil {
			opts = append(opts, muzzle.WithRandomSeed(*j.req.Random.Seed))
		}
		if j.req.Random.Limit > 0 {
			opts = append(opts, muzzle.WithRandomLimit(j.req.Random.Limit))
		}
	}
	// Per-circuit latency: wall time from pickup to completion (compile +
	// simulate for every compiler of the set; cache hits land in the
	// lowest buckets). The eval harness never runs the callback
	// concurrently with itself, so the map needs no lock.
	starts := make(map[int]time.Time)
	opts = append(opts, muzzle.WithProgress(func(ev muzzle.EvalEvent) {
		switch ev.Kind {
		case muzzle.EvalStarted:
			starts[ev.Index] = time.Now()
		case muzzle.EvalCompleted, muzzle.EvalFailed:
			if t0, ok := starts[ev.Index]; ok {
				m.latency.Observe(time.Since(t0).Seconds())
				delete(starts, ev.Index)
			}
		}
	}))
	p, err := muzzle.NewPipeline(opts...)
	if err != nil {
		return nil, nil, err
	}
	if j.circ != nil {
		return p, []*muzzle.Circuit{j.circ}, nil
	}
	return p, p.RandomCircuits(), nil
}

// finish records the terminal state and emits the closing event.
func (m *Manager) finish(j *job, state State, errText string) {
	now := time.Now()
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.finished = &now
	j.errText = errText
	j.emitLocked(Event{Kind: EventState, State: state, Error: errText})
	j.mu.Unlock()
	m.retain(j.id)
}

// retain records a terminal job and drops the oldest-finished jobs beyond
// the retention cap so the job table cannot grow without bound.
func (m *Manager) retain(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.terminal = append(m.terminal, id)
	for len(m.terminal) > m.cfg.JobRetention {
		delete(m.jobs, m.terminal[0])
		m.terminal = m.terminal[1:]
	}
}
