// Package service is the compilation service behind cmd/muzzled: a job
// manager that absorbs compile/evaluate requests into a bounded worker
// pool backed by muzzle.Pipeline, tracks each job through
// pending/running/done/failed/canceled, supports per-job cancellation via
// the Pipeline's context plumbing, and broadcasts per-circuit progress
// events that the HTTP layer streams to clients as SSE.
//
// A Manager owns nothing global: compilers resolve from the process-wide
// registry, results flow through the shared content-addressed cache when
// one is configured, and every job runs on its own Pipeline built from the
// manager's base options plus the request's overrides — the same code path
// the CLI uses, so CLI and service outputs are interchangeable.
//
// The package splits along its three concerns:
//
//	types.go      the domain vocabulary: states, requests, events, views
//	scheduler.go  admission, the bounded queue, workers, cancellation
//	journal.go    the store adapter: journaling and startup recovery
//	http.go       the HTTP/SSE transport
//	service.go    (this file) lifecycle: Config, New, Drain, Close, metrics
//
// With Config.Journal set the manager is durable: every submission, state
// transition, and terminal result is appended to the write-ahead journal
// (internal/store), and New replays it so a restarted daemon — cleanly
// drained or killed outright — re-enqueues the jobs it owed. Recovery is
// idempotent because completed work re-resolves through the
// content-addressed cache, and Config.Flight coalesces identical work that
// is merely concurrent. Admission is bounded: past QueueDepth pending
// jobs, submits fail with ErrQueueFull (HTTP 429 + Retry-After) instead of
// buffering without limit.
package service

import (
	"context"
	"os"
	"sync"
	"time"

	"muzzle"
	"muzzle/internal/store"
	"muzzle/internal/sweep"
)

// Config assembles a Manager.
type Config struct {
	// Workers sizes the worker pool (default 2). Each worker runs one job
	// at a time; per-job circuit parallelism is set via PipelineOptions.
	Workers int
	// QueueDepth bounds pending jobs (default 256); submits beyond it fail
	// with ErrQueueFull rather than blocking the caller. Jobs recovered
	// from the journal are admitted above the bound (they were already
	// accepted by a previous process), so a freshly restarted daemon may
	// report a depth above QueueDepth until the backlog drains.
	QueueDepth int
	// JobRetention bounds how many terminal (done/failed/canceled) jobs
	// stay queryable (default 1024). Beyond it the oldest-finished jobs —
	// results and event history included — are dropped and their ids
	// return 404, keeping a long-lived daemon's memory bounded.
	JobRetention int
	// Cache, when non-nil, is shared by every job's pipeline — sweep cells
	// included — and its counters are exported via Metrics and /metrics.
	Cache *muzzle.Cache
	// Flight, when non-nil, coalesces concurrent identical evaluations
	// across every job and sweep cell of the daemon: duplicates that miss
	// the cache share one compile instead of racing. Counters are exported
	// via Metrics and /metrics.
	Flight *muzzle.Flight
	// Journal, when non-nil, makes the job table durable: submissions,
	// transitions, and terminal results are appended (fsync'd) as they
	// happen, and New replays the journal so pending and running jobs of a
	// dead process restart as pending. The manager assumes sole ownership
	// of the journal until Close.
	Journal *store.Journal
	// SweepParallelism bounds concurrently running cells of one sweep job
	// (0 = one per CPU).
	SweepParallelism int
	// PipelineOptions are the base options of every job's pipeline
	// (machine, sim params, parallelism, ...); the request's compiler,
	// seed, and limit overrides are appended after them.
	PipelineOptions []muzzle.PipelineOption
	// Verify forces the independent schedule verifier on every job and
	// sweep cell, regardless of the per-request Verify field (the muzzled
	// -verify flag).
	Verify bool
	// WorkerID names this daemon in the /healthz worker identity block so
	// a sweep coordinator can tell its workers apart; empty generates a
	// random id per process.
	WorkerID string
}

// Manager owns the job table, the bounded queue, and the worker pool.
type Manager struct {
	cfg     Config
	start   time.Time
	baseCtx context.Context
	stop    context.CancelFunc
	queue   chan *job
	wg      sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*job // guarded by mu
	terminal  []string        // guarded by mu; terminal job ids, oldest first, for retention
	closed    bool            // guarded by mu
	draining  bool            // guarded by mu
	submitted uint64          // guarded by mu
	rejected  uint64          // guarded by mu
	recovered uint64          // guarded by mu
	storeErrs uint64          // guarded by mu
	panics    uint64          // guarded by mu

	// Expansion cache for POST /v1/cells: one coordinator sends many
	// cells of the same grid, each carrying the full grid JSON.
	expMu    sync.Mutex
	expCache map[string]*sweep.Expanded // guarded by expMu
	expOrder []string                   // guarded by expMu

	hostname string
	latency  *Histogram
}

// New starts a Manager and its workers. With Config.Journal set it first
// replays the journal: terminal jobs come back queryable, and jobs the
// previous process never finished — pending or running — are re-enqueued
// as pending ahead of any new submission.
func New(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.JobRetention <= 0 {
		cfg.JobRetention = 1024
	}
	if cfg.WorkerID == "" {
		cfg.WorkerID = newJobID()
	}
	host, _ := os.Hostname()
	ctx, stop := context.WithCancel(context.Background()) //muzzle:ctx-background daemon lifecycle root: jobs outlive any one request; Close cancels it
	m := &Manager{
		cfg:      cfg,
		start:    time.Now(),
		baseCtx:  ctx,
		stop:     stop,
		jobs:     make(map[string]*job),
		expCache: make(map[string]*sweep.Expanded),
		hostname: host,
		latency:  NewHistogram(DefaultLatencyBuckets()),
	}
	// Recovery runs before the queue exists so the channel can be sized to
	// hold every recovered job on top of the configured depth — re-admitting
	// an already-accepted backlog must never block or deadlock startup.
	// Admission checks compare against cfg.QueueDepth, not the channel
	// capacity, so the bound still holds for new submissions.
	pending := m.recoverJobs()
	m.queue = make(chan *job, cfg.QueueDepth+len(pending))
	for _, j := range pending {
		m.queue <- j
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.run(j)
			}
		}()
	}
	return m
}

// Close stops accepting jobs, cancels everything in flight, and waits for
// the workers. Queued jobs drain as canceled in memory, but — like jobs
// canceled by the shutdown itself — their cancellation is not journaled,
// so a journaled manager's next incarnation recovers them as pending. For
// an orderly exit that lets running work complete, use Drain.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.stop()
	close(m.queue)
	m.wg.Wait()
}

// Drain is the graceful half of shutdown: it stops admission (submits fail
// with ErrClosed → HTTP 503), leaves queued jobs untouched for the next
// process (journaled as pending; workers skip rather than start them),
// lets running jobs finish until ctx expires, hard-cancels any stragglers,
// then checkpoints the journal. It returns once every worker has exited.
func (m *Manager) Drain(ctx context.Context) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.draining = true
	m.mu.Unlock()
	close(m.queue)

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		m.stop() // deadline passed: cancel running jobs (recovered as pending)
		<-done
	}
	if m.cfg.Journal != nil {
		if err := m.cfg.Journal.Compact(); err != nil {
			m.noteStoreError()
		}
	}
}

// Draining reports whether the manager is refusing new work while a Drain
// or Close winds it down.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// drainMode reports whether a graceful Drain (as opposed to a hard Close)
// is in progress — workers use it to leave queued jobs untouched.
func (m *Manager) drainMode() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// RetryAfterSeconds estimates when a client rejected by admission control
// should retry: the current backlog divided across the worker pool, priced
// at the mean observed per-circuit latency, clamped to [1, 60] seconds.
func (m *Manager) RetryAfterSeconds() int {
	h := m.latency.Snapshot()
	mean := 1.0
	if h.Count > 0 {
		mean = h.Sum / float64(h.Count)
	}
	secs := int(mean * float64(len(m.queue)) / float64(m.cfg.Workers))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// WorkerInfo is the identity block /healthz exposes so a coordinator can
// tell its workers apart and spot version drift across a fleet.
type WorkerInfo struct {
	ID       string `json:"id"`
	Version  string `json:"version"`
	Hostname string `json:"hostname,omitempty"`
	PID      int    `json:"pid"`
}

// WorkerInfo returns this daemon's identity block.
func (m *Manager) WorkerInfo() WorkerInfo {
	return WorkerInfo{ID: m.cfg.WorkerID, Version: Version, Hostname: m.hostname, PID: os.Getpid()}
}

// Metrics is the observable state of the service.
type Metrics struct {
	UptimeSeconds     float64             `json:"uptime_seconds"`
	Workers           int                 `json:"workers"`
	Draining          bool                `json:"draining"`
	JobsSubmitted     uint64              `json:"jobs_submitted"`
	JobsRecovered     uint64              `json:"jobs_recovered"`
	JobsByState       map[State]int       `json:"jobs_by_state"`
	QueueDepth        int                 `json:"queue_depth"`
	QueueCapacity     int                 `json:"queue_capacity"`
	AdmissionRejected uint64              `json:"admission_rejected"`
	Cache             *muzzle.CacheStats  `json:"cache,omitempty"`
	Flight            *muzzle.FlightStats `json:"flight,omitempty"`
	Store             *store.Stats        `json:"store,omitempty"`
	StoreErrors       uint64              `json:"store_errors"`
	// PanicsRecovered counts panics contained by the HTTP layer and the
	// job workers — each one is a bug, but a structured 500 or a failed
	// job instead of a dead daemon.
	PanicsRecovered uint64            `json:"panics_recovered"`
	CompileLatency  HistogramSnapshot `json:"compile_latency_seconds"`
}

// Degraded reports the per-component degraded states the daemon exposes
// on /healthz: a component is degraded when it is operating in a reduced
// mode (serving from memory only, skipping journal writes) rather than
// failing requests. The map is stable: every known component is always
// present.
func (met Metrics) Degraded() map[string]bool {
	return map[string]bool{
		// cache_disk: the disk tier tripped after consecutive I/O errors
		// and the cache is serving memory-only until a re-probe succeeds.
		"cache_disk": met.Cache != nil && met.Cache.DiskTripped,
		// journal: at least one append/compact failed this process, so
		// recovery fidelity is reduced (jobs replay from their last
		// durable state).
		"journal": met.StoreErrors > 0,
	}
}

// MetricsSnapshot collects the current counters.
func (m *Manager) MetricsSnapshot() Metrics {
	out := Metrics{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Workers:       m.cfg.Workers,
		QueueDepth:    len(m.queue),
		QueueCapacity: m.cfg.QueueDepth,
		JobsByState: map[State]int{
			StatePending: 0, StateRunning: 0, StateDone: 0, StateFailed: 0, StateCanceled: 0,
		},
		CompileLatency: m.latency.Snapshot(),
	}
	m.mu.Lock()
	out.Draining = m.closed
	out.JobsSubmitted = m.submitted
	out.JobsRecovered = m.recovered
	out.AdmissionRejected = m.rejected
	out.StoreErrors = m.storeErrs
	out.PanicsRecovered = m.panics
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		out.JobsByState[j.state]++
		j.mu.Unlock()
	}
	if m.cfg.Cache != nil {
		s := m.cfg.Cache.Stats()
		out.Cache = &s
	}
	if m.cfg.Flight != nil {
		s := m.cfg.Flight.Stats()
		out.Flight = &s
	}
	if m.cfg.Journal != nil {
		s := m.cfg.Journal.Stats()
		out.Store = &s
	}
	return out
}

// noteStoreError counts a journal append/compact failure. The job keeps
// running — an unjournaled transition degrades recovery fidelity (the job
// replays from its last durable state), which beats failing live work over
// a disk hiccup — but the counter surfaces the problem on /metrics.
func (m *Manager) noteStoreError() {
	m.mu.Lock()
	m.storeErrs++
	m.mu.Unlock()
}

// notePanic counts a recovered panic (HTTP handler or job worker).
func (m *Manager) notePanic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}
