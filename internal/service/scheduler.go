package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"

	"muzzle"
)

// newJobID returns a 96-bit random hex id.
func newJobID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: crypto/rand failed: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// newJob returns an empty pending job record.
func newJob() *job {
	return &job{
		id:      newJobID(),
		state:   StatePending,
		created: time.Now(),
		subs:    make(map[chan Event]struct{}),
	}
}

// prepare validates a request and fills the job's derived fields (parsed
// circuit, source, compiler set). It is shared by Submit and journal
// recovery: a recovered request re-validates against the current process's
// registry, so a job that no longer makes sense fails cleanly instead of
// crashing a worker.
func prepare(j *job, req Request) error {
	j.req = req
	switch {
	case req.QASM != "" && req.Random != nil:
		return badRequest("bad_request", "request must set exactly one of qasm/random, not both")
	case req.QASM == "" && req.Random == nil:
		return badRequest("bad_request", "request must set one of qasm/random")
	case req.QASM != "":
		name := req.Name
		if name == "" {
			name = "qasm"
		}
		c, err := muzzle.ParseQASM(name, req.QASM)
		if err != nil {
			return &RequestError{Code: "bad_qasm", Err: err}
		}
		j.circ = c
		j.source = SourceQASM
	default:
		if req.Random.Limit < 0 {
			return badRequest("bad_request", "random.limit %d must be >= 0", req.Random.Limit)
		}
		j.source = SourceRandom
	}
	seen := make(map[string]bool, len(req.Compilers))
	for _, name := range req.Compilers {
		if !muzzle.HasCompiler(name) {
			return badRequest("unknown_compiler",
				"compiler %q is not registered (registered: %v)", name, muzzle.RegisteredCompilers())
		}
		if seen[name] {
			return badRequest("bad_request", "compiler %q listed twice", name)
		}
		seen[name] = true
	}
	if req.TimeoutMS < 0 {
		return badRequest("bad_request", "timeout_ms %d must be >= 0", req.TimeoutMS)
	}
	j.compilers = append([]string(nil), req.Compilers...)
	return nil
}

// Submit validates a request, enqueues the job, and returns its initial
// view. Validation failures are *RequestError (the HTTP layer maps them to
// 400); admission rejections are ErrQueueFull (429 + Retry-After).
func (m *Manager) Submit(req Request) (JobView, error) {
	j := newJob()
	if err := prepare(j, req); err != nil {
		return JobView{}, err
	}
	return m.enqueue(j)
}

// enqueue admits a validated job: journal first (a job is acknowledged
// only once its submission is durable), then queue and table. Admission is
// checked against the configured depth, not the channel capacity — the
// channel is sized with headroom for recovered jobs, so the send below can
// never block once the depth check passes.
func (m *Manager) enqueue(j *job) (JobView, error) {
	// Record the pending event before the job becomes visible to workers,
	// so the replayed history is always in lifecycle order even when a
	// worker dequeues and starts the job immediately.
	j.emit(Event{Kind: EventState, State: StatePending})

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobView{}, ErrClosed
	}
	if len(m.queue) >= m.cfg.QueueDepth {
		m.rejected++
		m.mu.Unlock()
		return JobView{}, ErrQueueFull
	}
	// The submit record is fsync'd while m.mu is held: admission, the
	// durable record, and queue publication must agree — a journaled job
	// is always tracked, and a tracked job is always journaled. Submission
	// throughput is bounded by one fsync either way.
	if err := m.journalSubmit(j); err != nil {
		m.mu.Unlock()
		return JobView{}, fmt.Errorf("service: journal submission: %w", err)
	}
	m.queue <- j
	m.jobs[j.id] = j
	m.submitted++
	m.mu.Unlock()
	return m.view(j), nil
}

// Get returns a job snapshot.
func (m *Manager) Get(id string) (JobView, error) {
	j, err := m.lookup(id)
	if err != nil {
		return JobView{}, err
	}
	return m.view(j), nil
}

// Cancel requests cooperative cancellation: a pending job is canceled in
// place, a running one has its context canceled and drains promptly; a
// terminal job reports ErrFinished. A cancel is a client decision, so it
// is journaled — unlike shutdown cancellation — and a canceled job stays
// canceled across a daemon restart.
func (m *Manager) Cancel(id string) (JobView, error) {
	j, err := m.lookup(id)
	if err != nil {
		return JobView{}, err
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		return m.view(j), ErrFinished
	case j.state == StatePending:
		now := time.Now()
		j.state = StateCanceled
		j.finished = &now
		j.userCanceled = true
		j.emitLocked(Event{Kind: EventState, State: StateCanceled})
		j.mu.Unlock()
		m.journalFinal(j, StateCanceled, "")
		m.retain(j.id)
	default: // running; j.cancel was set in the same critical section
		// that published the running state, so it is non-nil here.
		j.userCanceled = true
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
	}
	return m.view(j), nil
}

// Subscribe returns the job's event history so far plus a live channel for
// what follows; the channel is closed (possibly immediately) once the job
// is terminal. Call the returned stop function when done listening.
func (m *Manager) Subscribe(id string) (history []Event, live <-chan Event, stopFn func(), err error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, nil, nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	history = append([]Event(nil), j.events...)
	ch := make(chan Event, 4096)
	if j.state.Terminal() {
		close(ch)
		return history, ch, func() {}, nil
	}
	j.subs[ch] = struct{}{}
	stopFn = func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
	}
	return history, ch, stopFn, nil
}

func (m *Manager) lookup(id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

func (m *Manager) view(j *job) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID:            j.id,
		State:         j.state,
		Source:        j.source,
		Compilers:     append([]string(nil), j.compilers...),
		Created:       j.created,
		Started:       j.started,
		Finished:      j.finished,
		CircuitsTotal: j.total,
		CircuitsDone:  j.done,
		Error:         j.errText,
		Results:       append([]*muzzle.EvalResultJSON(nil), j.results...),
		Sweep:         j.report,
		Cell:          j.cell,
	}
}

// run executes one dequeued job on the calling worker. Panics are
// contained here so one poisoned job fails with a structured error
// instead of taking the worker goroutine — and the daemon — down with
// it; finish is idempotent, so containment never double-terminates a
// job that panicked after reaching a terminal state.
func (m *Manager) run(j *job) {
	defer func() {
		if p := recover(); p != nil {
			m.notePanic()
			m.finish(j, StateFailed, fmt.Sprintf("internal panic: %v", p))
		}
	}()
	if m.drainMode() {
		// Graceful drain: never-started jobs stay pending — in memory for
		// the remaining lifetime of this process, and in the journal for
		// the next one to recover. (A plain Close instead runs them against
		// the canceled base context so subscribers see a terminal event.)
		return
	}
	j.mu.Lock()
	if j.state != StatePending { // canceled while queued
		j.mu.Unlock()
		return
	}
	now := time.Now()
	j.state = StateRunning
	j.started = &now
	var ctx context.Context
	var cancel context.CancelFunc
	if j.req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(m.baseCtx, time.Duration(j.req.TimeoutMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(m.baseCtx)
	}
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()
	m.journalState(j, StateRunning)

	if j.source == SourceCell {
		m.runCellJob(ctx, j)
		return
	}
	if j.sweep != nil {
		m.runSweep(ctx, j)
		return
	}

	p, circuits, err := m.buildPipeline(j)
	if err != nil {
		m.finish(j, StateFailed, err.Error())
		return
	}
	j.mu.Lock()
	j.total = len(circuits)
	j.mu.Unlock()
	j.emit(Event{Kind: EventState, State: StateRunning})

	failures := 0
	for item := range p.EvaluateStream(ctx, circuits) {
		if item.Err != nil {
			failures++
			j.emit(Event{Kind: EventCircuit, Index: item.Index, Circuit: item.Circuit,
				Error: item.Err.Error()})
			continue
		}
		res := muzzle.EncodeEvalResult(item.Result)
		j.mu.Lock()
		j.done++
		j.results = append(j.results, res)
		j.mu.Unlock()
		j.emit(Event{Kind: EventCircuit, Index: item.Index, Circuit: item.Circuit, Result: res})
	}

	switch {
	case ctx.Err() == context.DeadlineExceeded:
		m.finish(j, StateFailed, fmt.Sprintf("timed out after %dms", j.req.TimeoutMS))
	case ctx.Err() != nil:
		m.finish(j, StateCanceled, "")
	case failures > 0:
		m.finish(j, StateFailed, fmt.Sprintf("%d of %d circuits failed", failures, len(circuits)))
	default:
		m.finish(j, StateDone, "")
	}
}

// buildPipeline assembles the job's pipeline — base options, shared cache
// and flight group, request overrides, and the latency-observing progress
// hook — plus the circuit list it will evaluate.
func (m *Manager) buildPipeline(j *job) (*muzzle.Pipeline, []*muzzle.Circuit, error) {
	opts := append([]muzzle.PipelineOption(nil), m.cfg.PipelineOptions...)
	if m.cfg.Cache != nil {
		opts = append(opts, muzzle.WithCache(m.cfg.Cache))
	}
	if m.cfg.Flight != nil {
		opts = append(opts, muzzle.WithFlight(m.cfg.Flight))
	}
	if len(j.req.Compilers) > 0 {
		opts = append(opts, muzzle.WithCompilers(j.req.Compilers...))
	}
	if j.req.Verify || m.cfg.Verify {
		opts = append(opts, muzzle.WithVerify())
	}
	if j.req.Random != nil {
		if j.req.Random.Seed != nil {
			opts = append(opts, muzzle.WithRandomSeed(*j.req.Random.Seed))
		}
		if j.req.Random.Limit > 0 {
			opts = append(opts, muzzle.WithRandomLimit(j.req.Random.Limit))
		}
	}
	// Per-circuit latency: wall time from pickup to completion (compile +
	// simulate for every compiler of the set; cache hits land in the
	// lowest buckets). The eval harness never runs the callback
	// concurrently with itself, so the map needs no lock.
	starts := make(map[int]time.Time)
	opts = append(opts, muzzle.WithProgress(func(ev muzzle.EvalEvent) {
		switch ev.Kind {
		case muzzle.EvalStarted:
			starts[ev.Index] = time.Now()
		case muzzle.EvalCompleted, muzzle.EvalFailed:
			if t0, ok := starts[ev.Index]; ok {
				m.latency.Observe(time.Since(t0).Seconds())
				delete(starts, ev.Index)
			}
		}
	}))
	p, err := muzzle.NewPipeline(opts...)
	if err != nil {
		return nil, nil, err
	}
	if j.circ != nil {
		return p, []*muzzle.Circuit{j.circ}, nil
	}
	return p, p.RandomCircuits(), nil
}

// finish records the terminal state and emits the closing event. Terminal
// states are journaled with their results — except cancellations the
// client never asked for (shutdown, drain deadline): those stay unlogged
// so the journal's last word on the job is pending/running and the next
// process recovers it.
func (m *Manager) finish(j *job, state State, errText string) {
	now := time.Now()
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.finished = &now
	j.errText = errText
	userCanceled := j.userCanceled
	j.emitLocked(Event{Kind: EventState, State: state, Error: errText})
	j.mu.Unlock()
	if state != StateCanceled || userCanceled {
		m.journalFinal(j, state, errText)
	}
	m.retain(j.id)
}

// retain records a terminal job and drops the oldest-finished jobs beyond
// the retention cap so the job table cannot grow without bound.
func (m *Manager) retain(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.terminal = append(m.terminal, id)
	for len(m.terminal) > m.cfg.JobRetention {
		delete(m.jobs, m.terminal[0])
		m.terminal = m.terminal[1:]
	}
}
