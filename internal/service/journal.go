package service

import (
	"encoding/json"
	"fmt"
	"time"

	"muzzle"
	"muzzle/internal/store"
	"muzzle/internal/sweep"
)

// This file is the store adapter: it translates between the manager's job
// vocabulary and the journal's opaque records (internal/store knows states
// and payloads only as strings and raw JSON). Three record shapes exist:
//
//	submit  kind "submit", payload storedSubmit (the full request)
//	state   kind "state", non-final (pending→running transitions)
//	final   kind "state", Final, payload storedOutcome (terminal results)
//
// The one deliberate asymmetry: cancellations are journaled only when a
// client asked for them (Manager.Cancel). A shutdown cancels jobs too, but
// journaling those would persist "canceled" for work the daemon still owes
// — the whole point of the journal is that such jobs come back.

// storedSubmit is the submission payload: everything needed to rebuild and
// re-validate the job in a later process. Exactly one of Request, Grid,
// and Cell is set.
type storedSubmit struct {
	// Created is the original submission time.
	Created time.Time `json:"created"`
	// Request is a compile/evaluate job's request.
	Request *Request `json:"request,omitempty"`
	// Grid is a sweep job's normalized grid.
	Grid *sweep.Grid `json:"grid,omitempty"`
	// Cell is a single-cell job's grid + index (POST /v1/cells).
	Cell *storedCell `json:"cell,omitempty"`
}

// storedCell journals one coordinator-dispatched cell. Recovered cell jobs
// re-run without a waiting HTTP client: the result lands in the journal
// and — via the shared content-addressed cache — makes the coordinator's
// own retry of the cell nearly free.
type storedCell struct {
	Grid      sweep.Grid `json:"grid"`
	Index     int        `json:"index"`
	TimeoutMS int64      `json:"timeout_ms,omitempty"`
	Verify    bool       `json:"verify,omitempty"`
}

// storedOutcome is the terminal payload: the results a restarted daemon
// serves for an already-finished job.
type storedOutcome struct {
	Total   int                      `json:"total"`
	Done    int                      `json:"done"`
	Results []*muzzle.EvalResultJSON `json:"results,omitempty"`
	Sweep   *sweep.Report            `json:"sweep,omitempty"`
	Cell    *sweep.CellReport        `json:"cell,omitempty"`
}

// journalSubmit appends a job's durable submission record. Unlike the
// transition appends it is fallible to the caller: a submission that
// cannot be made durable is rejected, not half-accepted.
//
//muzzle:nolock the job is newly built and unshared until enqueue publishes it
func (m *Manager) journalSubmit(j *job) error {
	if m.cfg.Journal == nil {
		return nil
	}
	sub := storedSubmit{Created: j.created}
	switch {
	case j.source == SourceCell:
		sub.Cell = &storedCell{Grid: *j.grid, Index: j.cellIndex,
			TimeoutMS: j.req.TimeoutMS, Verify: j.req.Verify}
	case j.grid != nil:
		sub.Grid = j.grid
	default:
		req := j.req
		sub.Request = &req
	}
	payload, err := json.Marshal(&sub)
	if err != nil {
		return err
	}
	return m.cfg.Journal.Append(store.Record{
		Kind:    "submit",
		JobID:   j.id,
		Source:  j.source,
		State:   string(StatePending),
		Payload: payload,
	})
}

// journalState appends a non-terminal transition, best-effort.
func (m *Manager) journalState(j *job, state State) {
	if m.cfg.Journal == nil {
		return
	}
	err := m.cfg.Journal.Append(store.Record{
		Kind:  "state",
		JobID: j.id,
		State: string(state),
	})
	if err != nil {
		m.noteStoreError()
	}
}

// journalFinal appends a terminal transition with the job's results,
// best-effort: the client already has its answer either way.
func (m *Manager) journalFinal(j *job, state State, errText string) {
	if m.cfg.Journal == nil {
		return
	}
	j.mu.Lock()
	out := storedOutcome{
		Total:   j.total,
		Done:    j.done,
		Results: append([]*muzzle.EvalResultJSON(nil), j.results...),
		Sweep:   j.report,
		Cell:    j.cell,
	}
	j.mu.Unlock()
	payload, err := json.Marshal(&out)
	if err != nil {
		m.noteStoreError()
		return
	}
	err = m.cfg.Journal.Append(store.Record{
		Kind:    "state",
		JobID:   j.id,
		State:   string(state),
		Error:   errText,
		Final:   true,
		Payload: payload,
	})
	if err != nil {
		m.noteStoreError()
	}
}

// recoverJobs replays the journal into the job table during New, before
// the workers start. Terminal jobs come back queryable (GET serves their
// journaled results); unfinished jobs — pending or running when the last
// process stopped — are rebuilt, re-validated, and returned for the queue
// in their original submission order. Re-running recovered work is
// idempotent: completed circuits and sweep cells resolve through the
// content-addressed cache instead of recompiling.
//
//muzzle:nolock runs during New, before workers or handlers exist
func (m *Manager) recoverJobs() []*job {
	if m.cfg.Journal == nil {
		return nil
	}
	var pending []*job
	for _, js := range m.cfg.Journal.Jobs() {
		j, runnable, err := m.recoverJob(js)
		if err != nil {
			// The stored job no longer validates (a compiler vanished from
			// the registry, a payload predates a schema change): fail it
			// durably rather than dropping it silently or crashing startup.
			j.state = StateFailed
			j.errText = fmt.Sprintf("recovery: %v", err)
			t := js.Time
			j.finished = &t
			m.journalFinal(j, StateFailed, j.errText)
		}
		m.jobs[j.id] = j
		m.recovered++
		if j.state.Terminal() {
			m.terminal = append(m.terminal, j.id)
			continue
		}
		if runnable {
			j.emit(Event{Kind: EventState, State: StatePending})
			pending = append(pending, j)
		}
	}
	return pending
}

// recoverJob rebuilds one job from its journaled state. Terminal jobs are
// reconstructed as read-only views; live ones are re-prepared for
// execution with running demoted to pending (the work they were doing died
// with the process).
func (m *Manager) recoverJob(js *store.JobState) (j *job, runnable bool, err error) {
	j = &job{
		id:      js.ID,
		source:  js.Source,
		state:   State(js.State),
		created: js.Time,
		subs:    make(map[chan Event]struct{}),
	}
	var sub storedSubmit
	if len(js.Submit) > 0 {
		if err := json.Unmarshal(js.Submit, &sub); err != nil {
			return j, false, fmt.Errorf("decode submission: %w", err)
		}
	}
	if !sub.Created.IsZero() {
		j.created = sub.Created
	}
	switch {
	case sub.Cell != nil:
		j.grid = &sub.Cell.Grid
		j.compilers = append([]string(nil), sub.Cell.Grid.Compilers...)
	case sub.Grid != nil:
		j.grid = sub.Grid
		j.compilers = append([]string(nil), sub.Grid.Compilers...)
	case sub.Request != nil:
		j.compilers = append([]string(nil), sub.Request.Compilers...)
	}

	if js.Final {
		j.errText = js.Error
		t := js.Time
		j.finished = &t
		if len(js.Result) > 0 {
			var out storedOutcome
			if err := json.Unmarshal(js.Result, &out); err != nil {
				return j, false, fmt.Errorf("decode outcome: %w", err)
			}
			j.total, j.done = out.Total, out.Done
			j.results = out.Results
			j.report = out.Sweep
			j.cell = out.Cell
		}
		return j, false, nil
	}

	// Live job: rebuild the executable form, running → pending.
	j.state = StatePending
	switch {
	case sub.Cell != nil:
		e, err := m.expandCellGrid(sub.Cell.Grid)
		if err != nil {
			return j, false, fmt.Errorf("re-expand cell grid: %w", err)
		}
		if sub.Cell.Index < 0 || sub.Cell.Index >= len(e.Cells) {
			return j, false, fmt.Errorf("cell index %d out of range [0, %d)", sub.Cell.Index, len(e.Cells))
		}
		j.sweep = e
		j.cellIndex = sub.Cell.Index
		j.req = Request{TimeoutMS: sub.Cell.TimeoutMS, Verify: sub.Cell.Verify}
		j.total = 1
	case sub.Grid != nil:
		e, err := sweep.Expand(*sub.Grid)
		if err != nil {
			return j, false, fmt.Errorf("re-expand sweep grid: %w", err)
		}
		j.sweep = e
		j.total = len(e.Cells)
	case sub.Request != nil:
		if err := prepare(j, *sub.Request); err != nil {
			return j, false, err
		}
	default:
		return j, false, fmt.Errorf("submission record has no request or grid")
	}
	return j, true, nil
}
