package service_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"muzzle/internal/service"
)

// streamEventsFrom consumes an SSE stream with an optional Last-Event-ID
// header until the terminal state event, returning the delivered events.
func streamEventsFrom(t *testing.T, srv *httptest.Server, path string, lastID string, timeout time.Duration) []service.Event {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200", resp.StatusCode)
	}
	var events []service.Event
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE data %q: %v", line, err)
		}
		events = append(events, ev)
		if ev.Kind == service.EventState && ev.State.Terminal() {
			break
		}
	}
	return events
}

// waitTerminal polls the job snapshot until it reaches a terminal state.
func waitTerminal(t *testing.T, srv *httptest.Server, path string, timeout time.Duration) service.JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var view service.JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.State.Terminal() {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal after %v (state %s)", path, timeout, view.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamResumeLastEventID pins the SSE resume contract on /v1/jobs: a
// reconnecting client presenting Last-Event-ID receives exactly the events
// after that sequence number, not a full history replay.
func TestStreamResumeLastEventID(t *testing.T) {
	_, srv := newTestServer(t, service.Config{Workers: 1})
	view := submit(t, srv, service.Request{QASM: testQASM})
	waitTerminal(t, srv, "/v1/jobs/"+view.ID, 60*time.Second)

	full := streamEventsFrom(t, srv, "/v1/jobs/"+view.ID+"/stream", "", 10*time.Second)
	if len(full) < 3 {
		t.Fatalf("expected at least pending/circuit/done events, got %d", len(full))
	}
	for i, ev := range full {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d; history replay must be gapless", i, ev.Seq)
		}
	}

	// Reconnect claiming we saw everything up to the second-to-last event:
	// only the terminal event may be delivered again.
	lastSeen := full[len(full)-2].Seq
	tail := streamEventsFrom(t, srv, "/v1/jobs/"+view.ID+"/stream", strconv.Itoa(lastSeen), 10*time.Second)
	if len(tail) != 1 || tail[0].Seq != full[len(full)-1].Seq {
		t.Fatalf("resume from seq %d delivered %d events (want 1 terminal), first seq %v",
			lastSeen, len(tail), seqs(tail))
	}

	// Resuming from the very first event skips exactly one.
	tail = streamEventsFrom(t, srv, "/v1/jobs/"+view.ID+"/stream", "0", 10*time.Second)
	if len(tail) != len(full)-1 || tail[0].Seq != 1 {
		t.Fatalf("resume from seq 0 delivered seqs %v, want %v", seqs(tail), seqs(full[1:]))
	}

	// A malformed header degrades to the full replay.
	garbled := streamEventsFrom(t, srv, "/v1/jobs/"+view.ID+"/stream", "not-a-number", 10*time.Second)
	if len(garbled) != len(full) {
		t.Fatalf("malformed Last-Event-ID delivered %d events, want full %d", len(garbled), len(full))
	}

	// A Last-Event-ID beyond the history (the client saw everything)
	// replays nothing and the stream still terminates.
	none := streamEventsFrom(t, srv, "/v1/jobs/"+view.ID+"/stream", strconv.Itoa(full[len(full)-1].Seq), 10*time.Second)
	if len(none) != 0 {
		t.Fatalf("resume past the end delivered %d events, want 0", len(none))
	}
}

// TestSweepStreamResumeLastEventID pins the same contract on /v1/sweeps.
func TestSweepStreamResumeLastEventID(t *testing.T) {
	_, srv := newTestServer(t, service.Config{Workers: 1})
	resp := postSweep(t, srv, testGrid())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit status = %d", resp.StatusCode)
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitTerminal(t, srv, "/v1/sweeps/"+view.ID, 60*time.Second)

	full := streamEventsFrom(t, srv, "/v1/sweeps/"+view.ID+"/stream", "", 10*time.Second)
	if len(full) < 3 {
		t.Fatalf("expected pending + cell events + terminal, got %d", len(full))
	}
	lastSeen := full[1].Seq
	tail := streamEventsFrom(t, srv, "/v1/sweeps/"+view.ID+"/stream", strconv.Itoa(lastSeen), 10*time.Second)
	if len(tail) != len(full)-2 {
		t.Fatalf("resume from seq %d delivered seqs %v, want %v", lastSeen, seqs(tail), seqs(full[2:]))
	}
	for i, ev := range tail {
		if want := full[i+2].Seq; ev.Seq != want {
			t.Fatalf("resumed event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
}

// TestVerifyJobEndToEnd submits a job with verification enabled and
// expects it to pass: the compilers' schedules are legal, so opting in
// must not change the outcome.
func TestVerifyJobEndToEnd(t *testing.T) {
	_, srv := newTestServer(t, service.Config{Workers: 1})
	view := submit(t, srv, service.Request{QASM: testQASM, Verify: true})
	final := waitTerminal(t, srv, "/v1/jobs/"+view.ID, 60*time.Second)
	if final.State != service.StateDone {
		t.Fatalf("verified job state = %s (error %q), want done", final.State, final.Error)
	}
}

func seqs(evs []service.Event) []int {
	out := make([]int, len(evs))
	for i, ev := range evs {
		out[i] = ev.Seq
	}
	return out
}
