package service

import (
	"errors"
	"testing"
)

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	want := []uint64{1, 3, 4} // cumulative: <=0.1, <=1, <=10
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Errorf("Cumulative[%d] = %d, want %d", i, s.Cumulative[i], w)
		}
	}
	if s.Sum != 56.05 {
		t.Errorf("Sum = %g, want 56.05", s.Sum)
	}
}

func TestStateTerminal(t *testing.T) {
	for s, terminal := range map[State]bool{
		StatePending: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCanceled: true,
	} {
		if s.Terminal() != terminal {
			t.Errorf("%s.Terminal() = %v, want %v", s, s.Terminal(), terminal)
		}
	}
}

func TestSubmitAfterClose(t *testing.T) {
	m := New(Config{Workers: 1})
	m.Close()
	_, err := m.Submit(Request{Random: &RandomRequest{Limit: 1}})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestCancelUnknownJob(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	if _, err := m.Cancel("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel(missing) = %v, want ErrNotFound", err)
	}
	if _, _, _, err := m.Subscribe("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Subscribe(missing) = %v, want ErrNotFound", err)
	}
}

// TestJobRetention: terminal jobs beyond the retention cap are dropped,
// oldest first, so the job table stays bounded.
func TestJobRetention(t *testing.T) {
	m := New(Config{Workers: 1, JobRetention: 2})
	defer m.Close()
	// Occupy the single worker so subsequent jobs stay pending.
	blocker, err := m.Submit(Request{Random: &RandomRequest{}})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 3)
	for i := range ids {
		v, err := m.Submit(Request{Random: &RandomRequest{Limit: 1}})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
	}
	// Cancel the pending jobs: each becomes terminal and enters retention.
	for _, id := range ids {
		if _, err := m.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Get(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest terminal job should be evicted, got %v", err)
	}
	for _, id := range ids[1:] {
		if _, err := m.Get(id); err != nil {
			t.Errorf("job %s should be retained: %v", id, err)
		}
	}
	if _, err := m.Get(blocker.ID); err != nil {
		t.Errorf("non-terminal job must never be evicted: %v", err)
	}
	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
}
