package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"muzzle"
	"muzzle/internal/sweep"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle states. Terminal states are done, failed, and canceled.
const (
	StatePending  State = "pending"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Sentinel errors of the manager API.
var (
	// ErrNotFound marks an unknown job id.
	ErrNotFound = errors.New("service: job not found")
	// ErrFinished marks a cancel of an already-terminal job.
	ErrFinished = errors.New("service: job already finished")
	// ErrQueueFull marks a submit rejected by admission control (the HTTP
	// layer maps it to 429 + Retry-After).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed marks a submit after Close or during a drain.
	ErrClosed = errors.New("service: manager closed")
)

// RequestError is a submit-time validation failure (HTTP 400). Code is a
// stable machine-readable slug ("unknown_compiler", "bad_request", ...).
type RequestError struct {
	Code string
	Err  error
}

// Error implements the error interface.
func (e *RequestError) Error() string { return fmt.Sprintf("service: %s: %v", e.Code, e.Err) }

// Unwrap exposes the cause.
func (e *RequestError) Unwrap() error { return e.Err }

func badRequest(code, format string, args ...any) *RequestError {
	return &RequestError{Code: code, Err: fmt.Errorf(format, args...)}
}

// RandomRequest asks for the pipeline's random benchmark suite.
type RandomRequest struct {
	// Limit evaluates only the first N suite circuits (0 = the full 120).
	Limit int `json:"limit,omitempty"`
	// Seed, when set, re-seeds the suite (WithRandomSeed); nil preserves
	// the paper's circuits.
	Seed *int64 `json:"seed,omitempty"`
}

// Request is one compile/evaluate job: exactly one source — inline
// OpenQASM or the named random suite — plus optional compiler and timeout
// overrides.
type Request struct {
	// Name labels the job's circuit when QASM is set (default "qasm").
	// The name is part of the compile-cache key, so identical sources
	// submitted under the same name share cache entries.
	Name string `json:"name,omitempty"`
	// QASM is inline OpenQASM 2.0 source.
	QASM string `json:"qasm,omitempty"`
	// Random requests the random benchmark suite instead.
	Random *RandomRequest `json:"random,omitempty"`
	// Compilers overrides the evaluation compiler set (registry names;
	// default "baseline","optimized").
	Compilers []string `json:"compilers,omitempty"`
	// TimeoutMS bounds the job's run; 0 means no per-job timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Verify runs the independent schedule verifier on every freshly
	// compiled result of this job; violations fail the job with a typed
	// verification error (never a panic). The daemon-wide Config.Verify
	// forces this on for every job.
	Verify bool `json:"verify,omitempty"`
}

// Event is one progress notification of a job, replayed to late
// subscribers in order. Kind "state" carries a lifecycle transition; kind
// "circuit" carries one per-circuit outcome (Result on success, Error on
// failure); kind "cell" carries one sweep cell's report.
type Event struct {
	Seq     int                    `json:"seq"`
	Kind    string                 `json:"kind"`
	JobID   string                 `json:"job_id"`
	State   State                  `json:"state,omitempty"`
	Index   int                    `json:"index,omitempty"`
	Circuit string                 `json:"circuit,omitempty"`
	Result  *muzzle.EvalResultJSON `json:"result,omitempty"`
	Cell    *sweep.CellReport      `json:"cell,omitempty"`
	Error   string                 `json:"error,omitempty"`
	Done    int                    `json:"done"`
	Total   int                    `json:"total"`
}

// Event kinds.
const (
	EventState   = "state"
	EventCircuit = "circuit"
	EventCell    = "cell"
)

// JobView is the externally visible snapshot of a job (GET /v1/jobs/{id},
// GET /v1/sweeps/{id}). For sweep jobs Source is "sweep", CircuitsTotal/
// CircuitsDone count cells, and Sweep carries the aggregated report once
// the job is terminal (partial on cancellation).
type JobView struct {
	ID            string                   `json:"id"`
	State         State                    `json:"state"`
	Source        string                   `json:"source"`
	Compilers     []string                 `json:"compilers,omitempty"`
	Created       time.Time                `json:"created"`
	Started       *time.Time               `json:"started,omitempty"`
	Finished      *time.Time               `json:"finished,omitempty"`
	CircuitsTotal int                      `json:"circuits_total"`
	CircuitsDone  int                      `json:"circuits_done"`
	Error         string                   `json:"error,omitempty"`
	Results       []*muzzle.EvalResultJSON `json:"results,omitempty"`
	Sweep         *sweep.Report            `json:"sweep,omitempty"`
	Cell          *sweep.CellReport        `json:"cell,omitempty"`
}

// Job sources, as reported by JobView.Source and journaled on submission.
const (
	SourceQASM   = "qasm"
	SourceRandom = "random"
	SourceSweep  = "sweep"
	SourceCell   = "cell"
)

// Version identifies a worker build. It appears in the /healthz worker
// block so a coordinator can surface per-worker version drift.
const Version = "0.7.0"

// job is the manager's internal record. Its mutable fields are guarded by
// mu; the manager's map lock is never held while mu is.
type job struct {
	id        string
	req       Request
	source    string          // SourceQASM, SourceRandom, or SourceSweep
	compilers []string        // effective compiler set, for views
	circ      *muzzle.Circuit // parsed QASM source (nil for random and sweep jobs)
	sweep     *sweep.Expanded // sweep and cell jobs: the validated, expanded grid (nil otherwise)
	grid      *sweep.Grid     // sweep and cell jobs: the normalized grid, for journaling
	cellIndex int             // cell jobs: which cell of the expanded grid to run

	mu           sync.Mutex
	state        State                    // guarded by mu
	created      time.Time                // guarded by mu
	started      *time.Time               // guarded by mu
	finished     *time.Time               // guarded by mu
	total, done  int                      // guarded by mu
	errText      string                   // guarded by mu
	results      []*muzzle.EvalResultJSON // guarded by mu
	report       *sweep.Report            // guarded by mu; sweep jobs: aggregated report once the run ends
	cell         *sweep.CellReport        // guarded by mu; cell jobs: the single cell's report
	events       []Event                  // guarded by mu
	subs         map[chan Event]struct{}  // guarded by mu
	cancel       context.CancelFunc       // guarded by mu
	userCanceled bool                     // guarded by mu; set by Cancel: distinguishes a client's cancel (journaled,
	// never resurrected) from shutdown cancellation (not journaled, so the
	// next process recovers the job as pending)
}

// emit assigns a sequence number, records the event for replay, and
// broadcasts it. Terminal state events close every subscriber. Slow
// subscribers (a full 4096-event buffer) drop events rather than wedge the
// worker; the replayed history on reconnect is always complete.
func (j *job) emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.emitLocked(ev)
}

// emitLocked is emit with j.mu already held — used where a state change
// and its event must be visible atomically to Subscribe.
func (j *job) emitLocked(ev Event) {
	ev.JobID = j.id
	ev.Seq = len(j.events)
	ev.Done = j.done
	ev.Total = j.total
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	if ev.Kind == EventState && ev.State.Terminal() {
		for ch := range j.subs {
			close(ch)
			delete(j.subs, ch)
		}
	}
}
