package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// A panicking handler must answer a structured 500 (and count on
// /metrics), while http.ErrAbortHandler — the documented deliberate
// abort — passes through untouched.
func TestRecoverwareContainsPanics(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()

	h := m.recoverware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var body apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("500 body is not the structured apiError: %v", err)
	}
	if body.Code != "panic" || !strings.Contains(body.Error, "handler bug") {
		t.Fatalf("apiError = %+v, want code=panic carrying the panic text", body)
	}
	if got := m.MetricsSnapshot().PanicsRecovered; got != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", got)
	}

	abort := m.recoverware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if p := recover(); p != http.ErrAbortHandler {
			t.Fatalf("ErrAbortHandler was swallowed; recovered %v", p)
		}
		if got := m.MetricsSnapshot().PanicsRecovered; got != 1 {
			t.Fatalf("deliberate abort counted as a recovered panic (%d)", got)
		}
	}()
	abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
}

// A job that panics mid-run finishes failed with the panic text; the
// worker — and the daemon — survive to run the next job.
func TestJobPanicFailsJobNotWorker(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()

	// A poisoned cell job (nil expansion, as a corrupt recovery record
	// could produce) panics inside runCellJob.
	j := newJob()
	j.source = SourceCell
	m.mu.Lock()
	m.jobs[j.id] = j
	m.mu.Unlock()
	m.run(j) // must not propagate the panic

	got, err := m.Get(j.id)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed || !strings.Contains(got.Error, "internal panic") {
		t.Fatalf("job = %s %q, want failed with the contained panic", got.State, got.Error)
	}
	if n := m.MetricsSnapshot().PanicsRecovered; n != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", n)
	}

	// The manager survives: a well-formed job still runs to done.
	ok, err := m.Submit(Request{QASM: trivialQASM})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := m.Get(ok.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			if v.State != StateDone {
				t.Fatalf("follow-up job = %s %q, want done", v.State, v.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follow-up job stuck in %s", v.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

const trivialQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
cx q[0], q[1];
`

// The /healthz degraded block reflects component state without ever
// flipping the status away from "ok" — a degraded worker still serves,
// and the coordinator must keep dispatching to it.
func TestHealthzDegradedBlock(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	get := func() (status string, degraded map[string]bool) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Status   string          `json:"status"`
			Degraded map[string]bool `json:"degraded"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Status, body.Degraded
	}

	status, deg := get()
	if status != "ok" {
		t.Fatalf("status = %q, want ok", status)
	}
	if len(deg) == 0 || deg["journal"] || deg["cache_disk"] {
		t.Fatalf("fresh daemon degraded block = %v, want all-false components", deg)
	}

	m.noteStoreError()
	status, deg = get()
	if status != "ok" {
		t.Fatalf("status after journal error = %q; degradation must not change it", status)
	}
	if !deg["journal"] {
		t.Fatalf("degraded block %v does not flag the journal", deg)
	}
}
