package service

import (
	"context"
	"fmt"

	"muzzle/internal/sweep"
)

// SubmitSweep validates a sweep grid and enqueues it as a job on the same
// bounded queue compile jobs use: sweeps share the worker pool, the job
// table, cancellation, retention, and the SSE event plumbing. Invalid
// grids — bad topology parameters, unknown compilers, impossible capacity
// combinations — are rejected up front as *RequestError (HTTP 400);
// nothing a client submits can crash a worker. The expanded grid is kept
// on the job, so topology construction happens once per submission.
//
//muzzle:nolock the job is newly built and unshared until enqueue publishes it
func (m *Manager) SubmitSweep(g sweep.Grid) (JobView, error) {
	e, err := sweep.Expand(g)
	if err != nil {
		return JobView{}, &RequestError{Code: "bad_grid", Err: err}
	}
	if len(e.Cells) == 0 {
		return JobView{}, badRequest("bad_grid", "grid expands to zero cells")
	}
	j := newJob()
	j.sweep = e
	j.grid = &e.Grid
	j.source = SourceSweep
	j.compilers = append([]string(nil), e.Grid.Compilers...)
	j.total = len(e.Cells)
	return m.enqueue(j)
}

// runSweep executes a dequeued sweep job through the sweep engine,
// emitting one "cell" event per finished cell and attaching the
// aggregated report to the job.
func (m *Manager) runSweep(ctx context.Context, j *job) {
	j.emit(Event{Kind: EventState, State: StateRunning})

	rep := j.sweep.Run(ctx, sweep.Options{
		Parallelism: m.cfg.SweepParallelism,
		Cache:       m.cfg.Cache,
		Flight:      m.cfg.Flight,
		Verify:      m.cfg.Verify,
		OnCell: func(cr sweep.CellReport) {
			ev := Event{Kind: EventCell, Index: cr.Index, Circuit: cr.ID}
			cell := cr
			ev.Cell = &cell
			if cr.Error != "" {
				ev.Error = cr.Error
			}
			j.mu.Lock()
			if cr.Error == "" {
				j.done++
			}
			j.mu.Unlock()
			j.emit(ev)
		},
	})
	j.mu.Lock()
	j.report = rep
	j.mu.Unlock()

	failures := rep.Failures()
	switch {
	case ctx.Err() != nil:
		m.finish(j, StateCanceled, "")
	case failures > 0:
		m.finish(j, StateFailed, fmt.Sprintf("%d of %d cells failed", failures, len(j.sweep.Cells)))
	default:
		m.finish(j, StateDone, "")
	}
}
