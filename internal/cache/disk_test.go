package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// diskKey returns a distinct, shard-friendly hex-ish key.
func diskKey(i int) string { return fmt.Sprintf("%02x%028x", i%256, i) }

// countDiskFiles walks the shard layout counting resident result files.
func countDiskFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	shards, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shards {
		if !s.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, s.Name()))
		if err != nil {
			t.Fatal(err)
		}
		n += len(files)
	}
	return n
}

// agedPut inserts a key and backdates its file so the mtime order of
// successive inserts is unambiguous even on filesystems with coarse
// timestamps.
func agedPut(t *testing.T, l *LRU, key string, age time.Duration) {
	t.Helper()
	l.PutKey(key, sampleResult(key, 1))
	p := l.path(key)
	mt := time.Now().Add(-age)
	if err := os.Chtimes(p, mt, mt); err != nil {
		t.Fatal(err)
	}
}

func TestDiskBoundSweepsOldest(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{MaxEntries: 4, Dir: dir, MaxDiskEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Five inserts, oldest first; the fifth crosses the bound and the
	// sweep deletes down to the low-water mark (90% of 4 = 3).
	for i := 0; i < 5; i++ {
		agedPut(t, l, diskKey(i), time.Duration(100-i)*time.Minute)
	}
	if n := countDiskFiles(t, dir); n > 4 {
		t.Fatalf("disk holds %d files, bound is 4", n)
	}
	s := l.Stats()
	if s.DiskEvictions == 0 {
		t.Fatalf("no disk evictions recorded: %+v", s)
	}
	if s.DiskEntries != countDiskFiles(t, dir) {
		t.Fatalf("stats report %d disk entries, dir holds %d", s.DiskEntries, countDiskFiles(t, dir))
	}
	// The oldest file is the one that must be gone; the newest survives.
	if _, err := os.Stat(l.path(diskKey(0))); !os.IsNotExist(err) {
		t.Fatalf("oldest entry survived the sweep (err=%v)", err)
	}
	if _, err := os.Stat(l.path(diskKey(4))); err != nil {
		t.Fatalf("newest entry swept: %v", err)
	}
}

// TestDiskBoundOneKeepsNewest pins the low-water clamp: with a bound of 1
// the sweep keeps the newest file instead of deleting everything.
func TestDiskBoundOneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{MaxEntries: 4, Dir: dir, MaxDiskEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	agedPut(t, l, diskKey(0), time.Hour)
	l.PutKey(diskKey(1), sampleResult("r", 1))
	if n := countDiskFiles(t, dir); n != 1 {
		t.Fatalf("disk holds %d files after sweep, want exactly 1", n)
	}
	if _, err := os.Stat(l.path(diskKey(1))); err != nil {
		t.Fatalf("newest entry deleted by its own insert's sweep: %v", err)
	}
}

func TestDiskBoundZeroIsUnbounded(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{MaxEntries: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		l.PutKey(diskKey(i), sampleResult("r", 1))
	}
	if n := countDiskFiles(t, dir); n != 20 {
		t.Fatalf("unbounded disk tier holds %d files, want 20", n)
	}
	if s := l.Stats(); s.DiskEvictions != 0 || s.DiskEntries != 20 {
		t.Fatalf("unexpected disk stats %+v", s)
	}
}

func TestDiskBoundStartupSweep(t *testing.T) {
	dir := t.TempDir()
	seed, err := New(Config{MaxEntries: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		agedPut(t, seed, diskKey(i), time.Duration(100-i)*time.Minute)
	}
	// A restart with a bound below the resident count sweeps immediately
	// and reports the surviving count.
	l, err := New(Config{MaxEntries: 2, Dir: dir, MaxDiskEntries: 5})
	if err != nil {
		t.Fatal(err)
	}
	if n := countDiskFiles(t, dir); n > 5 {
		t.Fatalf("startup sweep left %d files, bound is 5", n)
	}
	s := l.Stats()
	if s.DiskEntries > 5 || s.DiskEvictions == 0 {
		t.Fatalf("startup sweep stats %+v", s)
	}
	// Survivors are still readable.
	if _, ok := l.GetKey(diskKey(9)); !ok {
		t.Fatal("newest entry unreadable after startup sweep")
	}
}

func TestDiskReadRefreshesRecency(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{MaxEntries: 1, Dir: dir, MaxDiskEntries: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		agedPut(t, l, diskKey(i), time.Duration(100-i)*time.Minute)
	}
	// Touch the oldest via a disk read (MaxEntries 1 keeps it out of
	// memory by the time we get back to it), then insert past the bound:
	// the sweep must evict by recency, sparing the freshly read key.
	if _, ok := l.GetKey(diskKey(0)); !ok {
		t.Fatal("disk read of oldest key failed")
	}
	l.PutKey(diskKey(3), sampleResult("r", 1))
	if _, err := os.Stat(l.path(diskKey(0))); err != nil {
		t.Fatalf("recently read entry was swept: %v", err)
	}
	if _, err := os.Stat(l.path(diskKey(1))); !os.IsNotExist(err) {
		t.Fatalf("least recently used entry survived (err=%v)", err)
	}
}
