// Package cache is the content-addressed compile/eval cache behind
// muzzle.WithCache and the muzzled service: completed per-circuit
// evaluation results keyed by a stable hash of circuit + machine +
// compiler set + simulator constants (see Key), held in an in-memory LRU
// with optional disk persistence.
//
// In-memory entries keep the full evaluation result (operation traces
// included); the disk tier stores the JSON summary schema of
// internal/eval, so results reloaded from disk carry every counter and
// simulator estimate but no trace. Disk files are sharded by the first
// two hex digits of the key: <dir>/ab/abcdef....json. Memory eviction
// drops memory entries only; the disk tier is bounded separately by
// MaxDiskEntries — inserts past the bound trigger an mtime-ordered sweep
// (disk hits refresh the file's mtime, making the sweep LRU-ish), so a
// long-running daemon cannot fill its volume.
package cache

import (
	"container/list"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"muzzle/internal/circuit"
	"muzzle/internal/eval"
	"muzzle/internal/faults"
	"muzzle/internal/machine"
	"muzzle/internal/sim"
)

// DefaultMaxEntries bounds the in-memory LRU when no limit is configured.
const DefaultMaxEntries = 1024

// Disk-tier degradation defaults: the tier trips to memory-only after
// DefaultDiskTripThreshold consecutive I/O errors and re-probes the disk
// every DefaultDiskRetryInterval until it recovers.
const (
	DefaultDiskTripThreshold = 8
	DefaultDiskRetryInterval = 30 * time.Second
)

// Config sizes an LRU and optionally roots its disk persistence.
type Config struct {
	// MaxEntries bounds the in-memory entry count (0 = DefaultMaxEntries).
	MaxEntries int
	// Dir, when non-empty, enables disk persistence rooted there. The
	// directory is created on first use.
	Dir string
	// MaxDiskEntries bounds the number of persisted result files under Dir
	// (0 = unbounded, the historical behavior). When an insert pushes the
	// resident count past the bound, the oldest files by modification time
	// are deleted down to the low-water mark (90% of the bound) so the
	// sweep cost amortizes over many inserts. Reads refresh mtimes, making
	// eviction approximately least-recently-used.
	MaxDiskEntries int
	// DiskTripThreshold is how many consecutive disk I/O errors trip the
	// disk tier to memory-only operation (0 = DefaultDiskTripThreshold).
	// A tripped tier stops issuing disk reads and writes — requests keep
	// succeeding from memory — and re-probes the disk periodically.
	DiskTripThreshold int
	// DiskRetryInterval is how long a tripped disk tier waits between
	// re-probe attempts (0 = DefaultDiskRetryInterval). A successful
	// probe operation recovers the tier.
	DiskRetryInterval time.Duration
	// FaultScope, when non-empty, subjects the disk tier's I/O to the
	// process-global fault injector (internal/faults) under this scope.
	// Tests only; empty in production.
	FaultScope string
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits counts Gets served from memory or disk.
	Hits uint64 `json:"hits"`
	// Misses counts Gets that found nothing.
	Misses uint64 `json:"misses"`
	// DiskHits counts the subset of Hits that were reloaded from disk.
	DiskHits uint64 `json:"disk_hits"`
	// Evictions counts memory entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Entries is the current in-memory entry count.
	Entries int `json:"entries"`
	// WriteErrors counts failed disk persistence attempts (best-effort:
	// a failed write never fails the evaluation).
	WriteErrors uint64 `json:"write_errors,omitempty"`
	// DiskEntries is the current resident file count of the disk tier
	// (0 when persistence is disabled).
	DiskEntries int `json:"disk_entries,omitempty"`
	// DiskEvictions counts files deleted by the MaxDiskEntries sweep.
	DiskEvictions uint64 `json:"disk_evictions,omitempty"`
	// DiskErrors counts disk-tier I/O failures — failed reads (open or
	// decode), failed writes, and failed sweep deletions. Before this
	// counter existed, read-side failures vanished silently.
	DiskErrors uint64 `json:"disk_errors,omitempty"`
	// DiskTripped reports whether the disk tier is currently tripped to
	// memory-only operation after consecutive I/O errors.
	DiskTripped bool `json:"disk_tripped,omitempty"`
	// DiskTrips counts how many times the disk tier has tripped.
	DiskTrips uint64 `json:"disk_trips,omitempty"`
}

type entry struct {
	key string
	res *eval.BenchResult
}

// LRU is a goroutine-safe, bounded, content-addressed result cache. It
// implements eval.Cache.
type LRU struct {
	mu      sync.Mutex
	max     int
	dir     string
	maxDisk int
	ll      *list.List               // guarded by mu
	items   map[string]*list.Element // guarded by mu
	stats   Stats                    // guarded by mu

	// Disk-tier degradation config, immutable after New: consecutive
	// failed disk I/O operations (any success resets the count) reaching
	// tripAfter trip the tier to memory-only until a re-probe — the first
	// disk operation allowed once probeAt passes — succeeds.
	faultScope string
	tripAfter  int
	retryEvery time.Duration

	consecErrs int       // guarded by mu
	tripped    bool      // guarded by mu
	probeAt    time.Time // guarded by mu

	// diskMu serializes disk sweeps (listing + deleting) so concurrent
	// inserts past the bound do not race over the same victims; the
	// resident count itself lives in stats.DiskEntries under mu.
	diskMu sync.Mutex
}

// New builds an LRU from cfg. When cfg.Dir is set, it is created eagerly
// so configuration errors surface at startup rather than on first Put; the
// resident disk files are counted (and swept down to any configured bound)
// at the same time, so restarts inherit an accurate disk-tier state.
func New(cfg Config) (*LRU, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.DiskTripThreshold <= 0 {
		cfg.DiskTripThreshold = DefaultDiskTripThreshold
	}
	if cfg.DiskRetryInterval <= 0 {
		cfg.DiskRetryInterval = DefaultDiskRetryInterval
	}
	l := &LRU{
		max:        cfg.MaxEntries,
		dir:        cfg.Dir,
		maxDisk:    cfg.MaxDiskEntries,
		faultScope: cfg.FaultScope,
		tripAfter:  cfg.DiskTripThreshold,
		retryEvery: cfg.DiskRetryInterval,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
		l.stats.DiskEntries = len(l.listDisk())
		if l.maxDisk > 0 && l.stats.DiskEntries > l.maxDisk {
			l.sweepDisk()
		}
	}
	return l, nil
}

// Get implements eval.Cache: memory first, then the disk tier.
func (l *LRU) Get(c *circuit.Circuit, cfg machine.Config, compilers []string, params sim.Params) (*eval.BenchResult, bool) {
	return l.GetKey(Key(c, cfg, compilers, params))
}

// Put implements eval.Cache.
func (l *LRU) Put(c *circuit.Circuit, cfg machine.Config, compilers []string, params sim.Params, r *eval.BenchResult) {
	l.PutKey(Key(c, cfg, compilers, params), r)
}

// GetKey looks up a precomputed key. On a memory miss with persistence
// enabled, the disk tier is consulted and a decoded summary promoted into
// memory.
func (l *LRU) GetKey(key string) (*eval.BenchResult, bool) {
	l.mu.Lock()
	if el, ok := l.items[key]; ok {
		l.ll.MoveToFront(el)
		l.stats.Hits++
		res := el.Value.(*entry).res
		l.mu.Unlock()
		return res, true
	}
	useDisk := l.diskAllowedLocked()
	l.mu.Unlock()

	if useDisk {
		if res := l.loadDisk(key); res != nil {
			l.mu.Lock()
			// Re-check: a concurrent disk hit (or Put) may have inserted
			// the key while the lock was released; a second insert would
			// orphan a list element under the same map key.
			if el, ok := l.items[key]; ok {
				l.ll.MoveToFront(el)
				res = el.Value.(*entry).res
			} else {
				l.stats.DiskHits++
				l.insertLocked(key, res)
			}
			l.stats.Hits++
			l.mu.Unlock()
			return res, true
		}
	}
	l.mu.Lock()
	l.stats.Misses++
	l.mu.Unlock()
	return nil, false
}

// PutKey stores a result under a precomputed key and persists its summary
// to disk when enabled.
func (l *LRU) PutKey(key string, r *eval.BenchResult) {
	l.mu.Lock()
	if el, ok := l.items[key]; ok {
		l.ll.MoveToFront(el)
		el.Value.(*entry).res = r
		useDisk := l.diskAllowedLocked()
		l.mu.Unlock()
		if useDisk {
			l.storeDisk(key, r)
		}
		return
	}
	l.insertLocked(key, r)
	useDisk := l.diskAllowedLocked()
	l.mu.Unlock()
	if useDisk {
		l.storeDisk(key, r)
	}
}

// diskAllowedLocked decides whether the next operation may touch the
// disk tier. With the tier tripped, it stays memory-only until the
// re-probe deadline passes; the caller that crosses the deadline gets
// one probe attempt and the deadline advances, so a still-broken disk
// is poked once per interval, not hammered by every request.
func (l *LRU) diskAllowedLocked() bool {
	if l.dir == "" {
		return false
	}
	if !l.tripped {
		return true
	}
	now := time.Now()
	if now.Before(l.probeAt) {
		return false
	}
	l.probeAt = now.Add(l.retryEvery)
	return true
}

// noteDiskErr records one failed disk I/O operation and trips the tier
// after tripAfter consecutive failures. The trip and the recovery each
// log exactly once.
func (l *LRU) noteDiskErr(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.DiskErrors++
	l.consecErrs++
	if l.tripped || l.consecErrs < l.tripAfter {
		return
	}
	l.tripped = true
	l.probeAt = time.Now().Add(l.retryEvery)
	l.stats.DiskTrips++
	log.Printf("cache: disk tier %s tripped after %d consecutive I/O errors (last: %v); degrading to memory-only, re-probing every %s",
		l.dir, l.consecErrs, err, l.retryEvery)
}

// noteDiskSoftErr records a failure that is not evidence of a bad disk
// (a corrupt entry, a failed sweep deletion): counted, never trips.
func (l *LRU) noteDiskSoftErr() {
	l.mu.Lock()
	l.stats.DiskErrors++
	l.mu.Unlock()
}

// noteDiskOK records one successful disk operation, resetting the
// consecutive-error count and recovering a tripped tier.
func (l *LRU) noteDiskOK() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.consecErrs = 0
	if !l.tripped {
		return
	}
	l.tripped = false
	log.Printf("cache: disk tier %s recovered; resuming disk persistence", l.dir)
}

// insertLocked adds a fresh entry and enforces the memory bound.
func (l *LRU) insertLocked(key string, r *eval.BenchResult) {
	l.items[key] = l.ll.PushFront(&entry{key: key, res: r})
	for l.ll.Len() > l.max {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		delete(l.items, oldest.Value.(*entry).key)
		l.stats.Evictions++
	}
}

// Stats returns a snapshot of the counters.
func (l *LRU) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Entries = l.ll.Len()
	s.DiskTripped = l.tripped
	return s
}

// Len returns the current in-memory entry count.
func (l *LRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}

// path returns the sharded disk location of a key.
func (l *LRU) path(key string) string {
	return filepath.Join(l.dir, key[:2], key+".json")
}

func (l *LRU) loadDisk(key string) *eval.BenchResult {
	if err := faults.Check(l.faultScope, faults.OpRead); err != nil {
		l.noteDiskErr(err)
		return nil
	}
	p := l.path(key)
	f, err := os.Open(p)
	if err != nil {
		if os.IsNotExist(err) {
			l.noteDiskOK() // a clean miss is a healthy disk operation
		} else {
			l.noteDiskErr(err)
		}
		return nil
	}
	defer f.Close()
	j, err := eval.ReadResultJSON(f)
	if err != nil {
		l.noteDiskSoftErr()
		return nil // corrupt entry: treat as miss, a fresh Put overwrites it
	}
	l.noteDiskOK()
	// Refresh the file's mtime so the MaxDiskEntries sweep (oldest mtime
	// first) approximates LRU rather than FIFO. Best-effort: a failed
	// touch only makes this entry an earlier eviction candidate.
	now := time.Now()
	os.Chtimes(p, now, now) //nolint:errcheck
	return j.BenchResult()
}

// storeDisk persists a summary best-effort: the write goes to a temp file
// first and renames into place so concurrent readers never see a torn
// entry.
func (l *LRU) storeDisk(key string, r *eval.BenchResult) {
	p := l.path(key)
	fail := func(err error) {
		l.mu.Lock()
		l.stats.WriteErrors++
		l.mu.Unlock()
		l.noteDiskErr(err)
	}
	if err := faults.Check(l.faultScope, faults.OpWrite); err != nil {
		fail(err)
		return
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		fail(err)
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key+".tmp-*")
	if err != nil {
		fail(err)
		return
	}
	if err := eval.WriteResultJSON(tmp, r); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		fail(err)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		fail(err)
		return
	}
	if err := faults.Check(l.faultScope, faults.OpRename); err != nil {
		os.Remove(tmp.Name())
		fail(err)
		return
	}
	_, statErr := os.Stat(p)
	existed := statErr == nil
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		fail(err)
		return
	}
	l.noteDiskOK()
	if existed {
		return
	}
	l.mu.Lock()
	l.stats.DiskEntries++
	over := l.maxDisk > 0 && l.stats.DiskEntries > l.maxDisk
	l.mu.Unlock()
	if over {
		l.sweepDisk()
	}
}

// diskFile is one resident entry of the disk tier.
type diskFile struct {
	path  string
	mtime time.Time
}

// listDisk enumerates the resident result files under the two-level shard
// layout, skipping in-flight temp files (dot-prefixed).
func (l *LRU) listDisk() []diskFile {
	var out []diskFile
	shards, err := os.ReadDir(l.dir)
	if err != nil {
		return nil
	}
	for _, shard := range shards {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(l.dir, shard.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if f.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".json") {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			out = append(out, diskFile{path: filepath.Join(l.dir, shard.Name(), name), mtime: info.ModTime()})
		}
	}
	return out
}

// sweepDisk enforces MaxDiskEntries: it lists the resident files and
// deletes the oldest by mtime down to the low-water mark (90% of the
// bound), so the full-scan cost amortizes over the next tenth of inserts.
// Sweeps serialize on diskMu; the counters update from the actual survivor
// count, making the accounting self-correcting even when external actors
// add or remove files.
func (l *LRU) sweepDisk() {
	l.diskMu.Lock()
	defer l.diskMu.Unlock()
	files := l.listDisk()
	if len(files) <= l.maxDisk {
		l.mu.Lock()
		l.stats.DiskEntries = len(files)
		l.mu.Unlock()
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].path < files[j].path // deterministic tie-break
	})
	// Low-water mark: 90% of the bound, but never below one file — with
	// MaxDiskEntries 1 the tier must keep the newest entry, not churn
	// through delete-everything sweeps.
	target := l.maxDisk * 9 / 10
	if target < 1 {
		target = 1
	}
	evicted := uint64(0)
	sweepErrs := uint64(0)
	remaining := len(files)
	for _, f := range files {
		if remaining <= target {
			break
		}
		if err := faults.Check(l.faultScope, faults.OpRemove); err != nil {
			sweepErrs++
			continue
		}
		if os.Remove(f.path) == nil {
			evicted++
			remaining--
		} else {
			sweepErrs++
		}
	}
	l.mu.Lock()
	l.stats.DiskEntries = remaining
	l.stats.DiskEvictions += evicted
	l.stats.DiskErrors += sweepErrs
	l.mu.Unlock()
}
