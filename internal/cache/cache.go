// Package cache is the content-addressed compile/eval cache behind
// muzzle.WithCache and the muzzled service: completed per-circuit
// evaluation results keyed by a stable hash of circuit + machine +
// compiler set + simulator constants (see Key), held in an in-memory LRU
// with optional disk persistence.
//
// In-memory entries keep the full evaluation result (operation traces
// included); the disk tier stores the JSON summary schema of
// internal/eval, so results reloaded from disk carry every counter and
// simulator estimate but no trace. Disk files are sharded by the first
// two hex digits of the key: <dir>/ab/abcdef....json. Eviction drops
// memory entries only — disk files persist until deleted externally.
package cache

import (
	"container/list"
	"os"
	"path/filepath"
	"sync"

	"muzzle/internal/circuit"
	"muzzle/internal/eval"
	"muzzle/internal/machine"
	"muzzle/internal/sim"
)

// DefaultMaxEntries bounds the in-memory LRU when no limit is configured.
const DefaultMaxEntries = 1024

// Config sizes an LRU and optionally roots its disk persistence.
type Config struct {
	// MaxEntries bounds the in-memory entry count (0 = DefaultMaxEntries).
	MaxEntries int
	// Dir, when non-empty, enables disk persistence rooted there. The
	// directory is created on first use.
	Dir string
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits counts Gets served from memory or disk.
	Hits uint64 `json:"hits"`
	// Misses counts Gets that found nothing.
	Misses uint64 `json:"misses"`
	// DiskHits counts the subset of Hits that were reloaded from disk.
	DiskHits uint64 `json:"disk_hits"`
	// Evictions counts memory entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Entries is the current in-memory entry count.
	Entries int `json:"entries"`
	// WriteErrors counts failed disk persistence attempts (best-effort:
	// a failed write never fails the evaluation).
	WriteErrors uint64 `json:"write_errors,omitempty"`
}

type entry struct {
	key string
	res *eval.BenchResult
}

// LRU is a goroutine-safe, bounded, content-addressed result cache. It
// implements eval.Cache.
type LRU struct {
	mu    sync.Mutex
	max   int
	dir   string
	ll    *list.List
	items map[string]*list.Element
	stats Stats
}

// New builds an LRU from cfg. When cfg.Dir is set, it is created eagerly
// so configuration errors surface at startup rather than on first Put.
func New(cfg Config) (*LRU, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &LRU{
		max:   cfg.MaxEntries,
		dir:   cfg.Dir,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}, nil
}

// Get implements eval.Cache: memory first, then the disk tier.
func (l *LRU) Get(c *circuit.Circuit, cfg machine.Config, compilers []string, params sim.Params) (*eval.BenchResult, bool) {
	return l.GetKey(Key(c, cfg, compilers, params))
}

// Put implements eval.Cache.
func (l *LRU) Put(c *circuit.Circuit, cfg machine.Config, compilers []string, params sim.Params, r *eval.BenchResult) {
	l.PutKey(Key(c, cfg, compilers, params), r)
}

// GetKey looks up a precomputed key. On a memory miss with persistence
// enabled, the disk tier is consulted and a decoded summary promoted into
// memory.
func (l *LRU) GetKey(key string) (*eval.BenchResult, bool) {
	l.mu.Lock()
	if el, ok := l.items[key]; ok {
		l.ll.MoveToFront(el)
		l.stats.Hits++
		res := el.Value.(*entry).res
		l.mu.Unlock()
		return res, true
	}
	dir := l.dir
	l.mu.Unlock()

	if dir != "" {
		if res := l.loadDisk(key); res != nil {
			l.mu.Lock()
			// Re-check: a concurrent disk hit (or Put) may have inserted
			// the key while the lock was released; a second insert would
			// orphan a list element under the same map key.
			if el, ok := l.items[key]; ok {
				l.ll.MoveToFront(el)
				res = el.Value.(*entry).res
			} else {
				l.stats.DiskHits++
				l.insertLocked(key, res)
			}
			l.stats.Hits++
			l.mu.Unlock()
			return res, true
		}
	}
	l.mu.Lock()
	l.stats.Misses++
	l.mu.Unlock()
	return nil, false
}

// PutKey stores a result under a precomputed key and persists its summary
// to disk when enabled.
func (l *LRU) PutKey(key string, r *eval.BenchResult) {
	l.mu.Lock()
	if el, ok := l.items[key]; ok {
		l.ll.MoveToFront(el)
		el.Value.(*entry).res = r
		dir := l.dir
		l.mu.Unlock()
		if dir != "" {
			l.storeDisk(key, r)
		}
		return
	}
	l.insertLocked(key, r)
	dir := l.dir
	l.mu.Unlock()
	if dir != "" {
		l.storeDisk(key, r)
	}
}

// insertLocked adds a fresh entry and enforces the memory bound.
func (l *LRU) insertLocked(key string, r *eval.BenchResult) {
	l.items[key] = l.ll.PushFront(&entry{key: key, res: r})
	for l.ll.Len() > l.max {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		delete(l.items, oldest.Value.(*entry).key)
		l.stats.Evictions++
	}
}

// Stats returns a snapshot of the counters.
func (l *LRU) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Entries = l.ll.Len()
	return s
}

// Len returns the current in-memory entry count.
func (l *LRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}

// path returns the sharded disk location of a key.
func (l *LRU) path(key string) string {
	return filepath.Join(l.dir, key[:2], key+".json")
}

func (l *LRU) loadDisk(key string) *eval.BenchResult {
	f, err := os.Open(l.path(key))
	if err != nil {
		return nil
	}
	defer f.Close()
	j, err := eval.ReadResultJSON(f)
	if err != nil {
		return nil // corrupt entry: treat as miss, a fresh Put overwrites it
	}
	return j.BenchResult()
}

// storeDisk persists a summary best-effort: the write goes to a temp file
// first and renames into place so concurrent readers never see a torn
// entry.
func (l *LRU) storeDisk(key string, r *eval.BenchResult) {
	p := l.path(key)
	fail := func() {
		l.mu.Lock()
		l.stats.WriteErrors++
		l.mu.Unlock()
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		fail()
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key+".tmp-*")
	if err != nil {
		fail()
		return
	}
	if err := eval.WriteResultJSON(tmp, r); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		fail()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		fail()
		return
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		fail()
	}
}
