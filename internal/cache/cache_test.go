package cache

import (
	"testing"
	"time"

	"muzzle/internal/circuit"
	"muzzle/internal/compiler"
	"muzzle/internal/eval"
	"muzzle/internal/machine"
	"muzzle/internal/sim"
	"muzzle/internal/topo"
)

func sampleCircuit() *circuit.Circuit {
	c := circuit.New("sample", 4)
	c.Add1Q("h", 0)
	c.Add2Q("cx", 0, 1)
	c.Add2Q("cp", 1, 2, 0.25)
	c.Add2Q("cx", 2, 3)
	return c
}

func sampleResult(name string, shuttles int) *eval.BenchResult {
	return &eval.BenchResult{
		Name:      name,
		Qubits:    4,
		Gates2Q:   3,
		Compilers: []string{"optimized"},
		Outcomes: map[string]*eval.Outcome{
			"optimized": {
				Compiler: "optimized",
				Result: &compiler.Result{
					Circ:            circuit.New(name, 4),
					Shuttles:        shuttles,
					Swaps:           2,
					CompileTime:     42 * time.Millisecond,
					DirectionPolicy: "future-ops",
				},
				Sim: &sim.Report{Duration: 1234.5, LogFidelity: -0.25, Fidelity: 0.7788, Measures: 4},
			},
		},
	}
}

func TestKeyStable(t *testing.T) {
	cfg := machine.PaperL6()
	names := []string{"baseline", "optimized"}
	params := sim.DefaultParams()

	k1 := Key(sampleCircuit(), cfg, names, params)
	k2 := Key(sampleCircuit(), cfg, names, params)
	if k1 != k2 {
		t.Fatalf("identical inputs hash differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not hex SHA-256", k1)
	}
}

func TestKeySensitivity(t *testing.T) {
	base := sampleCircuit()
	cfg := machine.PaperL6()
	names := []string{"baseline", "optimized"}
	params := sim.DefaultParams()
	ref := Key(base, cfg, names, params)

	mutations := map[string]func() string{
		"circuit name": func() string {
			c := sampleCircuit()
			c.Name = "other"
			return Key(c, cfg, names, params)
		},
		"extra gate": func() string {
			c := sampleCircuit()
			c.Add2Q("cx", 0, 3)
			return Key(c, cfg, names, params)
		},
		"gate operand": func() string {
			c := sampleCircuit()
			c.Gates[1].Qubits[1] = 2
			return Key(c, cfg, names, params)
		},
		"gate angle": func() string {
			c := sampleCircuit()
			c.Gates[2].Params[0] = 0.5
			return Key(c, cfg, names, params)
		},
		"capacity": func() string {
			m := cfg
			m.Capacity = 15
			return Key(base, m, names, params)
		},
		"comm capacity": func() string {
			m := cfg
			m.CommCapacity = 3
			return Key(base, m, names, params)
		},
		"topology": func() string {
			m := cfg
			m.Topology = topo.Ring(6)
			return Key(base, m, names, params)
		},
		"compiler set": func() string {
			return Key(base, cfg, []string{"optimized"}, params)
		},
		"compiler order": func() string {
			return Key(base, cfg, []string{"optimized", "baseline"}, params)
		},
		"sim constant": func() string {
			p := params
			p.Time.Move = 7
			return Key(base, cfg, names, p)
		},
		"cooling toggle": func() string {
			p := params
			p.Cooling = sim.DefaultCooling()
			return Key(base, cfg, names, p)
		},
	}
	for what, mutate := range mutations {
		if got := mutate(); got == ref {
			t.Errorf("changing %s did not change the key", what)
		}
	}
	// Mutations must not have corrupted the reference inputs.
	if again := Key(base, cfg, names, params); again != ref {
		t.Fatalf("reference key drifted: %s vs %s", again, ref)
	}
}

func TestLRUEviction(t *testing.T) {
	l, err := New(Config{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	l.PutKey("a", sampleResult("a", 1))
	l.PutKey("b", sampleResult("b", 2))
	// Touch "a" so "b" becomes the eviction candidate.
	if _, ok := l.GetKey("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	l.PutKey("c", sampleResult("c", 3))

	if _, ok := l.GetKey("b"); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	if _, ok := l.GetKey("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := l.GetKey("c"); !ok {
		t.Error("c should be present")
	}
	s := l.Stats()
	if s.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", s.Evictions)
	}
	if s.Entries != 2 {
		t.Errorf("Entries = %d, want 2", s.Entries)
	}
	if s.Hits != 3 || s.Misses != 1 {
		t.Errorf("Hits/Misses = %d/%d, want 3/1", s.Hits, s.Misses)
	}
}

func TestEvalCacheInterface(t *testing.T) {
	l, err := New(Config{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	var _ eval.Cache = l

	c := sampleCircuit()
	cfg := machine.PaperL6()
	names := []string{"optimized"}
	params := sim.DefaultParams()
	if _, ok := l.Get(c, cfg, names, params); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	want := sampleResult("sample", 9)
	l.Put(c, cfg, names, params, want)
	got, ok := l.Get(c, cfg, names, params)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got != want {
		t.Error("in-memory hit should return the identical result pointer")
	}
}

func TestDiskPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	first, err := New(Config{MaxEntries: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleResult("persisted", 17)
	first.PutKey("deadbeef", want)

	// A fresh cache over the same directory serves the entry from disk.
	second, err := New(Config{MaxEntries: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := second.GetKey("deadbeef")
	if !ok {
		t.Fatal("disk entry not found by fresh cache")
	}
	o, w := got.Outcomes["optimized"], want.Outcomes["optimized"]
	if o == nil {
		t.Fatal("decoded result lost its outcome")
	}
	if o.Result.Shuttles != w.Result.Shuttles ||
		o.Result.Swaps != w.Result.Swaps ||
		o.Result.CompileTime != w.Result.CompileTime ||
		o.Result.DirectionPolicy != w.Result.DirectionPolicy ||
		o.Sim.LogFidelity != w.Sim.LogFidelity ||
		o.Sim.Duration != w.Sim.Duration ||
		o.Sim.Measures != w.Sim.Measures {
		t.Errorf("disk round-trip mismatch: got %+v / %+v", o.Result, o.Sim)
	}
	s := second.Stats()
	if s.DiskHits != 1 {
		t.Errorf("DiskHits = %d, want 1", s.DiskHits)
	}
	// The disk hit is promoted to memory: a second Get must not touch disk.
	if _, ok := second.GetKey("deadbeef"); !ok {
		t.Fatal("promoted entry missing")
	}
	if s := second.Stats(); s.DiskHits != 1 || s.Hits != 2 {
		t.Errorf("after promotion: DiskHits=%d Hits=%d, want 1/2", s.DiskHits, s.Hits)
	}
}
