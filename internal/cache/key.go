package cache

import (
	"muzzle/internal/circuit"
	"muzzle/internal/ckey"
	"muzzle/internal/machine"
	"muzzle/internal/sim"
)

// Key returns the content address of an evaluation. The canonical encoding
// lives in internal/ckey — a leaf package — so the evaluation harness can
// compute the exact same key for single-flight coalescing without
// importing the cache; see ckey.Key for the hashing contract and
// ckey.Version for the compatibility rules.
func Key(c *circuit.Circuit, cfg machine.Config, compilers []string, params sim.Params) string {
	return ckey.Key(c, cfg, compilers, params)
}
