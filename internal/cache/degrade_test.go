package cache

import (
	"fmt"
	"testing"
	"time"

	"muzzle/internal/faults"
)

// TestDiskTierTripAndRecover is the degradation acceptance test: injected
// disk I/O errors trip the tier to memory-only without failing a single
// cache operation, and after the re-probe interval (with the fault budget
// spent) the tier recovers and persists again.
func TestDiskTierTripAndRecover(t *testing.T) {
	const tripAfter = 3
	// Budget covers the trip plus a couple of failed re-probes; once
	// spent, the "disk" is healthy again.
	inj := faults.New(42,
		faults.Rule{Scope: faults.ScopeCacheTrip, Op: faults.OpWrite, Count: tripAfter + 2},
	)
	defer faults.Install(inj)()

	l, err := New(Config{
		Dir:               t.TempDir(),
		FaultScope:        faults.ScopeCacheTrip,
		DiskTripThreshold: tripAfter,
		DiskRetryInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every Put during the outage must still succeed into memory.
	for i := 0; i < tripAfter; i++ {
		key := fmt.Sprintf("%064d", i)
		l.PutKey(key, sampleResult(fmt.Sprintf("c%d", i), i))
		if _, ok := l.GetKey(key); !ok {
			t.Fatalf("Get(%d) missed during disk outage — degradation failed a request", i)
		}
	}
	s := l.Stats()
	if !s.DiskTripped || s.DiskTrips != 1 {
		t.Fatalf("after %d write errors: tripped=%v trips=%d, want tripped once", tripAfter, s.DiskTripped, s.DiskTrips)
	}
	if s.DiskErrors < tripAfter {
		t.Fatalf("DiskErrors = %d, want >= %d", s.DiskErrors, tripAfter)
	}
	if s.DiskEntries != 0 {
		t.Fatalf("disk tier has %d entries despite every write failing", s.DiskEntries)
	}

	// While tripped, operations skip the disk entirely: no new injector
	// activity, no new errors.
	errsBefore, firedBefore := s.DiskErrors, inj.Total()
	l.PutKey(fmt.Sprintf("%064d", 99), sampleResult("tripped", 9))
	if s2 := l.Stats(); s2.DiskErrors != errsBefore {
		t.Fatalf("tripped tier touched the disk: errors %d -> %d", errsBefore, s2.DiskErrors)
	}
	if inj.Total() != firedBefore {
		t.Fatalf("tripped tier announced disk ops: injector fired %d -> %d", firedBefore, inj.Total())
	}

	// Recovery: after the interval the tier re-probes. The first probes
	// burn the rest of the fault budget and re-arm the trip; keep writing
	// past them and the tier must come back and persist for real.
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for i := 0; time.Now().Before(deadline); i++ {
		time.Sleep(35 * time.Millisecond)
		key := fmt.Sprintf("%063dr", i)
		l.PutKey(key, sampleResult(fmt.Sprintf("r%d", i), i))
		if s := l.Stats(); !s.DiskTripped && s.DiskEntries > 0 {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("disk tier never recovered after fault budget spent: %+v", l.Stats())
	}

	// A fresh LRU over the same dir must see the recovered entries —
	// proof the post-recovery persistence was real.
	l2, err := New(Config{Dir: l.dir})
	if err != nil {
		t.Fatal(err)
	}
	if l2.Stats().DiskEntries == 0 {
		t.Fatal("no files on disk after recovery")
	}
}

// TestDiskReadFaultsCountAndServeMisses pins satellite behavior: injected
// read failures surface in DiskErrors (formerly swallowed) and degrade to
// cache misses, never errors.
func TestDiskReadFaultsCountAndServeMisses(t *testing.T) {
	inj := faults.New(7, faults.Rule{Scope: faults.ScopeCacheRead, Op: faults.OpRead, Count: 2})
	defer faults.Install(inj)()

	dir := t.TempDir()
	seed, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	key := fmt.Sprintf("%064d", 1)
	seed.PutKey(key, sampleResult("seed", 1))

	l, err := New(Config{Dir: dir, FaultScope: faults.ScopeCacheRead})
	if err != nil {
		t.Fatal(err)
	}
	// Two faulted reads: misses, counted.
	for i := 0; i < 2; i++ {
		if _, ok := l.GetKey(key); ok {
			t.Fatalf("read %d hit despite injected fault", i)
		}
	}
	if s := l.Stats(); s.DiskErrors != 2 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 disk errors and 2 misses", s)
	}
	// Budget spent: the entry is served from disk again.
	if _, ok := l.GetKey(key); !ok {
		t.Fatal("clean read missed")
	}
	if s := l.Stats(); s.DiskHits != 1 || s.DiskTripped {
		t.Fatalf("stats after recovery = %+v", s)
	}
}
