// Package flight coalesces concurrent identical work: all callers that ask
// for the same key while one execution is in flight share that execution's
// single result instead of each paying for their own. The evaluation
// harness keys groups by the compile cache's content address
// (internal/ckey), closing the cache's one blind spot — the cache dedups
// *completed* work, a flight group dedups *in-progress* work — so two
// identical requests racing through the muzzled daemon, a sweep, and the
// CLI at once still cost exactly one compile.
//
// Unlike golang.org/x/sync/singleflight, Do is context-aware on both
// sides: a waiting follower abandons the wait when its own context ends
// (the shared execution keeps running for the others), and a follower
// whose leader aborted on the *leader's* context retries and becomes the
// new leader rather than inheriting a cancellation that was never its own.
package flight

import (
	"context"
	"errors"
	"sync"
)

// Stats is a point-in-time snapshot of a group's coalescing counters.
type Stats struct {
	// Executions counts leader runs: calls that actually executed fn.
	Executions uint64 `json:"executions"`
	// Coalesced counts calls that attached to another caller's in-flight
	// execution instead of running fn themselves.
	Coalesced uint64 `json:"coalesced"`
	// Retries counts followers that re-entered the group because their
	// leader aborted on its own canceled context.
	Retries uint64 `json:"retries"`
	// InFlight is the current number of distinct keys executing.
	InFlight int `json:"in_flight"`
}

// call is one in-flight execution; done closes when val/err are final.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Group coalesces concurrent Do calls per key. The zero value is ready to
// use; a Group must not be copied after first use.
type Group[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V] // guarded by mu
	stats Stats               // guarded by mu
}

// Do executes fn under key, coalescing with any execution of the same key
// already in flight: exactly one caller (the leader) runs fn with its own
// context; every other caller (a follower) blocks until the leader
// finishes and shares the result. The returned shared flag reports whether
// the result came from another caller's execution — callers with stricter
// post-conditions than the leader's (e.g. verification) re-check shared
// results themselves.
//
// Context semantics: a follower whose own ctx ends returns ctx.Err()
// immediately (the shared execution continues for the rest); a follower
// whose leader failed with a context error while the follower's ctx is
// still live retries — the leader's cancellation or deadline must not
// poison unrelated callers.
//
// A panic in fn is re-raised in the leader after releasing the key, so
// followers observe a terminated execution (as an error) instead of
// waiting forever.
func (g *Group[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (v V, shared bool, err error) {
	for {
		g.mu.Lock()
		if g.calls == nil {
			g.calls = make(map[string]*call[V])
		}
		if c, ok := g.calls[key]; ok {
			g.stats.Coalesced++
			g.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				var zero V
				return zero, true, ctx.Err()
			}
			if leaderAborted(c.err) && ctx.Err() == nil {
				g.mu.Lock()
				g.stats.Retries++
				g.mu.Unlock()
				continue
			}
			return c.val, true, c.err
		}
		c := &call[V]{done: make(chan struct{})}
		g.calls[key] = c
		g.stats.Executions++
		g.mu.Unlock()

		finished := false
		func() {
			defer func() {
				if !finished {
					c.err = errors.New("flight: execution panicked")
				}
				g.mu.Lock()
				delete(g.calls, key)
				g.mu.Unlock()
				close(c.done)
			}()
			c.val, c.err = fn(ctx)
			finished = true
		}()
		return c.val, false, c.err
	}
}

// leaderAborted reports whether an execution error is the leader's own
// context ending — the one failure mode a live follower must not inherit.
func leaderAborted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Stats returns a snapshot of the coalescing counters.
func (g *Group[V]) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.stats
	s.InFlight = len(g.calls)
	return s
}
