package flight

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCoalesce: N concurrent callers of one key share a single execution.
func TestCoalesce(t *testing.T) {
	var g Group[int]
	var execs atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	var startOnce sync.Once

	const callers = 8
	results := make(chan int, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
				startOnce.Do(func() { close(started) })
				<-gate
				execs.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results <- v
		}()
	}

	// Wait until the leader is inside fn, then until every follower has
	// attached, so no caller can race past a completed execution.
	<-started
	deadline := time.Now().Add(10 * time.Second)
	for g.Stats().Coalesced < callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers never attached: %+v", g.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("executions = %d, want 1", n)
	}
	for i := 0; i < callers; i++ {
		if v := <-results; v != 42 {
			t.Fatalf("result = %d, want 42", v)
		}
	}
	s := g.Stats()
	if s.Executions != 1 || s.Coalesced != callers-1 || s.InFlight != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestDistinctKeysDoNotCoalesce: different keys execute independently.
func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	var g Group[string]
	for _, key := range []string{"a", "b"} {
		v, shared, err := g.Do(context.Background(), key, func(context.Context) (string, error) {
			return key, nil
		})
		if err != nil || shared || v != key {
			t.Fatalf("Do(%q) = %q shared=%v err=%v", key, v, shared, err)
		}
	}
	if s := g.Stats(); s.Executions != 2 || s.Coalesced != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestErrorShared: a leader's non-context error is shared with followers
// as-is.
func TestErrorShared(t *testing.T) {
	var g Group[int]
	boom := errors.New("boom")
	gate := make(chan struct{})
	started := make(chan struct{})

	errs := make(chan error, 2)
	go func() {
		_, _, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			close(started)
			<-gate
			return 0, boom
		})
		errs <- err
	}()
	<-started
	go func() {
		_, shared, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			t.Error("follower must not execute")
			return 0, nil
		})
		if !shared {
			t.Error("second caller should have coalesced")
		}
		errs <- err
	}()
	for g.Stats().Coalesced < 1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	}
}

// TestFollowerContext: a follower whose own context ends stops waiting
// with its ctx error while the leader's execution completes for others.
func TestFollowerContext(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	started := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			close(started)
			<-gate
			return 7, nil
		})
		leaderDone <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", func(context.Context) (int, error) { return 0, nil })
		followerDone <- err
	}()
	for g.Stats().Coalesced < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-followerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
	close(gate)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v", err)
	}
}

// TestLeaderCancelRetries: a follower with a live context does not inherit
// the leader's cancellation — it retries and becomes the new leader.
func TestLeaderCancelRetries(t *testing.T) {
	var g Group[int]
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(leaderCtx, "k", func(ctx context.Context) (int, error) {
			close(started)
			<-ctx.Done()
			return 0, ctx.Err()
		})
		leaderDone <- err
	}()
	<-started

	followerDone := make(chan int, 1)
	go func() {
		v, _, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			return 99, nil
		})
		if err != nil {
			t.Errorf("follower err = %v", err)
		}
		followerDone <- v
	}()
	for g.Stats().Coalesced < 1 {
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	if v := <-followerDone; v != 99 {
		t.Fatalf("follower result = %d, want 99 (fresh execution)", v)
	}
	if s := g.Stats(); s.Retries != 1 || s.Executions != 2 {
		t.Fatalf("stats = %+v, want 1 retry and 2 executions", s)
	}
}

// TestPanicReleasesKey: a panicking execution re-raises in the leader but
// releases the key, and followers see an error instead of hanging.
func TestPanicReleasesKey(t *testing.T) {
	var g Group[int]
	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic not re-raised")
			}
		}()
		g.Do(context.Background(), "k", func(context.Context) (int, error) {
			panic("boom")
		})
	}()
	if s := g.Stats(); s.InFlight != 0 {
		t.Fatalf("key leaked after panic: %+v", s)
	}
	// The key is reusable afterwards.
	v, _, err := g.Do(context.Background(), "k", func(context.Context) (int, error) { return 1, nil })
	if err != nil || v != 1 {
		t.Fatalf("Do after panic = %d, %v", v, err)
	}
}
