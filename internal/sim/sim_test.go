package sim

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"muzzle/internal/machine"
	"muzzle/internal/topo"
)

func cfg2() machine.Config {
	return machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
}

func TestTimeParamsValidate(t *testing.T) {
	if err := DefaultTimeParams().Validate(); err != nil {
		t.Fatal(err)
	}
	p := DefaultTimeParams()
	p.Move = 0
	if err := p.Validate(); err == nil {
		t.Error("zero Move accepted")
	}
	p = DefaultTimeParams()
	p.Gate2QPerIon = -1
	if err := p.Validate(); err == nil {
		t.Error("negative scaling accepted")
	}
}

func TestGate2QScaling(t *testing.T) {
	p := DefaultTimeParams()
	if p.Gate2Q(2) != p.Gate2QBase {
		t.Errorf("Gate2Q(2) = %g", p.Gate2Q(2))
	}
	if p.Gate2Q(1) != p.Gate2QBase {
		t.Errorf("Gate2Q(1) should floor at base, got %g", p.Gate2Q(1))
	}
	want := p.Gate2QBase + 8*p.Gate2QPerIon
	if got := p.Gate2Q(10); got != want {
		t.Errorf("Gate2Q(10) = %g, want %g", got, want)
	}
}

// buildTrace compiles a tiny op sequence by hand via the machine package.
func buildTrace(t *testing.T) (machine.Config, [][]int, []machine.Op) {
	t.Helper()
	cfg := cfg2()
	initial := [][]int{{0, 1, 2}, {3, 4, 5}}
	st, err := machine.NewState(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyGate2Q("ms", 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Hop(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyGate2Q("ms", 2, 3, 1); err != nil {
		t.Fatal(err)
	}
	st.ApplyGate1Q("r", 4, 2)
	st.ApplyGate1Q("measure", 5, 3)
	return cfg, initial, st.Ops()
}

func TestSimulateCounts(t *testing.T) {
	cfg, initial, ops := buildTrace(t)
	rep, err := Simulate(cfg, initial, ops, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shuttles != 1 || rep.Splits != 1 || rep.Merges != 1 {
		t.Errorf("shuttle primitive counts: %+v", rep)
	}
	if rep.Gates2Q != 2 || rep.Gates1Q != 1 || rep.Measures != 1 {
		t.Errorf("gate counts: %+v", rep)
	}
	if rep.Duration <= 0 {
		t.Error("non-positive duration")
	}
	if rep.Fidelity <= 0 || rep.Fidelity >= 1 {
		t.Errorf("fidelity = %g, want (0,1)", rep.Fidelity)
	}
	if math.Abs(math.Exp(rep.LogFidelity)-rep.Fidelity) > 1e-12 {
		t.Error("LogFidelity inconsistent with Fidelity")
	}
	if rep.MinGateFidelity > rep.MeanGateFidelity {
		t.Error("min gate fidelity above mean")
	}
}

func TestSimulateParallelTraps(t *testing.T) {
	// Two independent 2Q gates in different traps overlap in time: the
	// makespan is one gate, not two.
	cfg := cfg2()
	initial := [][]int{{0, 1}, {2, 3}}
	st, err := machine.NewState(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyGate2Q("ms", 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyGate2Q("ms", 2, 3, 1); err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(cfg, initial, st.Ops(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultTimeParams().Gate2Q(2)
	if math.Abs(rep.Duration-want) > 1e-9 {
		t.Errorf("parallel duration = %g, want %g", rep.Duration, want)
	}
}

func TestSimulateSerialWithinTrap(t *testing.T) {
	// Two gates in the same trap serialize (Section II-B1).
	cfg := cfg2()
	initial := [][]int{{0, 1, 2}, {3}}
	st, err := machine.NewState(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyGate2Q("ms", 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyGate2Q("ms", 1, 2, 1); err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(cfg, initial, st.Ops(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * DefaultTimeParams().Gate2Q(3)
	if math.Abs(rep.Duration-want) > 1e-9 {
		t.Errorf("serial duration = %g, want %g", rep.Duration, want)
	}
}

func TestSimulateShuttleDegradesFidelity(t *testing.T) {
	// The same two gates, with and without an interposed shuttle: the
	// shuttled version must take longer and end with lower fidelity —
	// the core premise of the paper (Section II-B4).
	cfg := cfg2()

	// Version A: all ions co-located from the start; gates run directly.
	initialA := [][]int{{0, 1, 2}, {3, 4, 5}}
	stA, err := machine.NewState(cfg, initialA)
	if err != nil {
		t.Fatal(err)
	}
	if err := stA.ApplyGate2Q("ms", 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := stA.ApplyGate2Q("ms", 1, 2, 1); err != nil {
		t.Fatal(err)
	}
	repA, err := Simulate(cfg, initialA, stA.Ops(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}

	// Version B: ion 2 starts in T1 and must shuttle before gate 2.
	initialB := [][]int{{0, 1}, {2, 3, 4}}
	stB, err := machine.NewState(cfg, initialB)
	if err != nil {
		t.Fatal(err)
	}
	if err := stB.ApplyGate2Q("ms", 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := stB.Hop(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := stB.ApplyGate2Q("ms", 1, 2, 1); err != nil {
		t.Fatal(err)
	}
	repB, err := Simulate(cfg, initialB, stB.Ops(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}

	if repB.LogFidelity >= repA.LogFidelity {
		t.Errorf("shuttled program should have lower fidelity: %g vs %g", repB.LogFidelity, repA.LogFidelity)
	}
	if repB.Duration <= repA.Duration {
		t.Errorf("shuttled program should take longer: %g vs %g", repB.Duration, repA.Duration)
	}
	if repB.MaxChainN <= repA.MaxChainN {
		t.Error("shuttle should raise peak chain energy")
	}
}

func TestSimulateErrors(t *testing.T) {
	cfg, initial, ops := buildTrace(t)
	if _, err := Simulate(machine.Config{}, initial, ops, DefaultParams()); err == nil {
		t.Error("bad config accepted")
	}
	bad := DefaultParams()
	bad.Time.Split = -1
	if _, err := Simulate(cfg, initial, ops, bad); err == nil {
		t.Error("bad time params accepted")
	}
	if _, err := Simulate(cfg, [][]int{{0}}, ops, DefaultParams()); err == nil {
		t.Error("bad placement accepted")
	}
	// A trace whose 2Q gate ions were never co-located must be rejected.
	badOps := []machine.Op{{Kind: machine.OpGate2Q, Ion: 0, Ion2: 3, Trap: 0, Trap2: -1, Gate: 0, Name: "ms"}}
	if _, err := Simulate(cfg, initial, badOps, DefaultParams()); err == nil {
		t.Error("non-co-located 2Q gate accepted")
	}
}

func TestSimulateEmptyTrace(t *testing.T) {
	cfg := cfg2()
	rep, err := Simulate(cfg, [][]int{{0}, {1}}, nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration != 0 || rep.Fidelity != 1 || rep.MeanGateFidelity != 1 {
		t.Errorf("empty trace report: %+v", rep)
	}
}

// Property: replaying any random legal machine trace succeeds, counts match
// the machine's own accounting, and fidelity is in (0, 1].
func TestQuickSimulateRandomTraces(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTraps := 2 + rng.Intn(3)
		cfg := machine.Config{Topology: topo.Linear(nTraps), Capacity: 5, CommCapacity: 1}
		placement := make([][]int, nTraps)
		ion := 0
		for tr := 0; tr < nTraps; tr++ {
			k := 1 + rng.Intn(3)
			for j := 0; j < k; j++ {
				placement[tr] = append(placement[tr], ion)
				ion++
			}
		}
		st, err := machine.NewState(cfg, placement)
		if err != nil {
			return false
		}
		initial := st.Snapshot()
		gateIdx := 0
		for i := 0; i < 40; i++ {
			switch rng.Intn(3) {
			case 0: // random hop
				q := rng.Intn(ion)
				from := st.IonTrap(q)
				nbs := cfg.Topology.Neighbors(from)
				to := nbs[rng.Intn(len(nbs))]
				if st.IsFull(to) {
					continue
				}
				if st.Hop(q, to) != nil {
					return false
				}
			case 1: // 2Q gate on a co-located pair if one exists
				tr := rng.Intn(nTraps)
				chain := st.Chain(tr)
				if len(chain) < 2 {
					continue
				}
				a, b := chain[rng.Intn(len(chain))], chain[rng.Intn(len(chain))]
				if a == b {
					continue
				}
				if st.ApplyGate2Q("ms", a, b, gateIdx) != nil {
					return false
				}
				gateIdx++
			case 2:
				st.ApplyGate1Q("r", rng.Intn(ion), gateIdx)
				gateIdx++
			}
		}
		rep, err := Simulate(cfg, initial, st.Ops(), DefaultParams())
		if err != nil {
			return false
		}
		if rep.Shuttles != st.Shuttles() {
			return false
		}
		if rep.Gates2Q != st.OpCount(machine.OpGate2Q) {
			return false
		}
		if rep.Splits != st.OpCount(machine.OpSplit) || rep.Merges != st.OpCount(machine.OpMerge) {
			return false
		}
		return rep.Fidelity > 0 && rep.Fidelity <= 1 && rep.Duration >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: adding a shuttle to a trace never increases program fidelity.
func TestQuickShuttleNeverHelps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := machine.Config{Topology: topo.Linear(3), Capacity: 5, CommCapacity: 1}
		placement := [][]int{{0, 1}, {2, 3}, {4, 5}}
		build := func(extraHops int) (float64, bool) {
			st, err := machine.NewState(cfg, placement)
			if err != nil {
				return 0, false
			}
			initial := st.Snapshot()
			// Random wandering ion.
			q := rng.Intn(6)
			for h := 0; h < extraHops; h++ {
				from := st.IonTrap(q)
				nbs := cfg.Topology.Neighbors(from)
				to := nbs[rng.Intn(len(nbs))]
				if st.IsFull(to) {
					continue
				}
				if st.Hop(q, to) != nil {
					return 0, false
				}
			}
			// Then a fixed gate on whatever trap q ended in (with a partner).
			tr := st.IonTrap(q)
			chain := st.Chain(tr)
			if len(chain) < 2 {
				return 0, false
			}
			partner := chain[0]
			if partner == q {
				partner = chain[1]
			}
			if st.ApplyGate2Q("ms", q, partner, 0) != nil {
				return 0, false
			}
			rep, err := Simulate(cfg, initial, st.Ops(), DefaultParams())
			if err != nil {
				return 0, false
			}
			return rep.LogFidelity, true
		}
		seed2 := rng.Int63()
		rng = rand.New(rand.NewSource(seed2))
		base, ok := build(0)
		if !ok {
			return true // skip degenerate layouts
		}
		rng = rand.New(rand.NewSource(seed2))
		hot, ok := build(3)
		if !ok {
			return true
		}
		return hot <= base+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCoolingValidate(t *testing.T) {
	if err := (CoolingParams{}).Validate(); err != nil {
		t.Error("disabled cooling should validate")
	}
	if err := DefaultCooling().Validate(); err != nil {
		t.Error(err)
	}
	bad := CoolingParams{Enabled: true, Threshold: -1, Time: 100}
	if err := bad.Validate(); err == nil {
		t.Error("negative threshold accepted")
	}
	bad = CoolingParams{Enabled: true, Threshold: 1, Time: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero cooling time accepted")
	}
	p := DefaultParams()
	p.Cooling = bad
	cfg := cfg2()
	if _, err := Simulate(cfg, [][]int{{0}, {1}}, nil, p); err == nil {
		t.Error("Simulate accepted bad cooling params")
	}
}

// TestCoolingBoundsChainEnergy: with re-cooling enabled, a shuttle-heavy
// trace keeps peak n̄ near the threshold, at the cost of added duration.
func TestCoolingBoundsChainEnergy(t *testing.T) {
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	st, err := machine.NewState(cfg, [][]int{{0, 1, 2}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	initial := st.Snapshot()
	// Ping-pong an ion many times to pump heat.
	for i := 0; i < 30; i++ {
		to := 1 - st.IonTrap(0)
		if st.IsFull(to) {
			break
		}
		if err := st.Hop(0, to); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.ApplyGate2Q("ms", 1, 2, 0); err != nil {
		t.Fatal(err)
	}

	hot, err := Simulate(cfg, initial, st.Ops(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cooledParams := DefaultParams()
	cooledParams.Cooling = CoolingParams{Enabled: true, Threshold: 1, Time: 400}
	cooled, err := Simulate(cfg, initial, st.Ops(), cooledParams)
	if err != nil {
		t.Fatal(err)
	}
	if cooled.Coolings == 0 {
		t.Fatal("expected cooling events")
	}
	if hot.Coolings != 0 {
		t.Error("cooling fired while disabled")
	}
	if cooled.MaxChainN >= hot.MaxChainN {
		t.Errorf("cooling should reduce peak n̄: %g vs %g", cooled.MaxChainN, hot.MaxChainN)
	}
	if cooled.Duration <= hot.Duration {
		t.Errorf("cooling should cost time: %g vs %g", cooled.Duration, hot.Duration)
	}
	if cooled.LogFidelity <= hot.LogFidelity {
		t.Errorf("cooling should improve fidelity here: %g vs %g", cooled.LogFidelity, hot.LogFidelity)
	}
}

func TestSampleSuccessConvergesToAnalytic(t *testing.T) {
	cfg, initial, ops := buildTrace(t)
	est, err := SampleSuccess(cfg, initial, ops, DefaultParams(), 20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials != 20000 {
		t.Errorf("trials = %d", est.Trials)
	}
	// Within 5 standard errors of the analytic product.
	if diff := math.Abs(est.Mean - est.Analytic); diff > 5*est.StdErr+1e-6 {
		t.Errorf("MC mean %g vs analytic %g (stderr %g)", est.Mean, est.Analytic, est.StdErr)
	}
	if est.StdErr < 0 {
		t.Error("negative stderr")
	}
}

func TestSampleSuccessErrors(t *testing.T) {
	cfg, initial, ops := buildTrace(t)
	if _, err := SampleSuccess(cfg, initial, ops, DefaultParams(), 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := SampleSuccess(machine.Config{}, initial, ops, DefaultParams(), 10, 1); err == nil {
		t.Error("bad config accepted")
	}
}

func TestSampleSuccessDeterministicSeed(t *testing.T) {
	cfg, initial, ops := buildTrace(t)
	a, err := SampleSuccess(cfg, initial, ops, DefaultParams(), 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleSuccess(cfg, initial, ops, DefaultParams(), 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean {
		t.Error("same seed produced different estimates")
	}
}

func TestGateFidelitiesRecorded(t *testing.T) {
	cfg, initial, ops := buildTrace(t)
	rep, err := Simulate(cfg, initial, ops, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.GateFidelities) != rep.Gates1Q+rep.Gates2Q {
		t.Errorf("recorded %d gate fidelities, want %d", len(rep.GateFidelities), rep.Gates1Q+rep.Gates2Q)
	}
	product := 1.0
	for _, f := range rep.GateFidelities {
		product *= f
	}
	if math.Abs(product-rep.Fidelity) > 1e-12 {
		t.Errorf("product of gate fidelities %g != program fidelity %g", product, rep.Fidelity)
	}
}

func TestSampleSuccessWorkerCountInvariant(t *testing.T) {
	// The chunked seed-splitting scheme must make the estimate a pure
	// function of (seed, trials): runs with different worker counts
	// (GOMAXPROCS) draw identical random streams per chunk.
	cfg, initial, ops := buildTrace(t)
	prev := runtime.GOMAXPROCS(1)
	seq, err := SampleSuccess(cfg, initial, ops, DefaultParams(), 20000, 11)
	if err != nil {
		runtime.GOMAXPROCS(prev)
		t.Fatal(err)
	}
	// Pin an explicitly parallel run: on a 1-CPU host the ambient setting
	// would make both runs single-worker and the test vacuous.
	runtime.GOMAXPROCS(4)
	par, err := SampleSuccess(cfg, initial, ops, DefaultParams(), 20000, 11)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Mean != par.Mean {
		t.Errorf("worker count changed the estimate: %g vs %g", seq.Mean, par.Mean)
	}
}
