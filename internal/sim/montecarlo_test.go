package sim

import (
	"math"
	"testing"
)

func TestWilsonIntervalBoundaries(t *testing.T) {
	const z = wilsonZ
	n := 1000

	// Zero successes: the naive StdErr collapses to 0, but the Wilson
	// interval is [0, z²/(n+z²)] — the degenerate-certainty bug this
	// interval exists to fix.
	low, high := WilsonInterval(0, n, z)
	if low != 0 {
		t.Errorf("Wilson low at p=0: got %g, want 0", low)
	}
	wantHigh := z * z / (float64(n) + z*z)
	if math.Abs(high-wantHigh) > 1e-12 {
		t.Errorf("Wilson high at p=0: got %g, want %g", high, wantHigh)
	}
	if high <= 0 {
		t.Error("Wilson interval at p=0 has zero width")
	}

	// All successes: mirror image, [n/(n+z²), 1].
	low, high = WilsonInterval(n, n, z)
	if high != 1 {
		t.Errorf("Wilson high at p=1: got %g, want 1", high)
	}
	wantLow := float64(n) / (float64(n) + z*z)
	if math.Abs(low-wantLow) > 1e-12 {
		t.Errorf("Wilson low at p=1: got %g, want %g", low, wantLow)
	}
	if low >= 1 {
		t.Error("Wilson interval at p=1 has zero width")
	}
}

func TestWilsonIntervalProperties(t *testing.T) {
	for _, n := range []int{1, 10, 100, 8192} {
		for _, k := range []int{0, 1, n / 2, n - 1, n} {
			if k < 0 || k > n {
				continue
			}
			low, high := WilsonInterval(k, n, wilsonZ)
			p := float64(k) / float64(n)
			if low < 0 || high > 1 || low > high {
				t.Fatalf("Wilson(%d,%d) = [%g,%g] outside [0,1] or inverted", k, n, low, high)
			}
			if p < low || p > high {
				t.Fatalf("Wilson(%d,%d) = [%g,%g] excludes the point estimate %g", k, n, low, high, p)
			}
			if high-low <= 0 {
				t.Fatalf("Wilson(%d,%d) has non-positive width", k, n)
			}
		}
	}
	// Width shrinks with sample size.
	l1, h1 := WilsonInterval(5, 10, wilsonZ)
	l2, h2 := WilsonInterval(500, 1000, wilsonZ)
	if h2-l2 >= h1-l1 {
		t.Errorf("Wilson width did not shrink with n: %g vs %g", h2-l2, h1-l1)
	}
	// Degenerate trial counts are clamped to the trivial interval.
	if low, high := WilsonInterval(0, 0, wilsonZ); low != 0 || high != 1 {
		t.Errorf("Wilson with 0 trials = [%g,%g], want [0,1]", low, high)
	}
}

// TestSuccessEstimateBoundaries pins the fixed behavior: unanimous trial
// outcomes report StdErr 0 (the binomial formula's collapse) but a
// positive-width Wilson interval.
func TestSuccessEstimateBoundaries(t *testing.T) {
	for _, tc := range []struct {
		successes int
		mean      float64
	}{{0, 0}, {4096, 1}} {
		est := newSuccessEstimate(tc.successes, 4096, 0.5)
		if est.Mean != tc.mean {
			t.Fatalf("mean = %g, want %g", est.Mean, tc.mean)
		}
		if est.StdErr != 0 {
			t.Fatalf("binomial stderr at unanimous outcome = %g, want 0", est.StdErr)
		}
		if est.High-est.Low <= 0 {
			t.Errorf("successes=%d: Wilson interval [%g,%g] has zero width — impossible certainty",
				tc.successes, est.Low, est.High)
		}
		if est.Mean < est.Low || est.Mean > est.High {
			t.Errorf("mean %g outside its own interval [%g,%g]", est.Mean, est.Low, est.High)
		}
	}
}

// TestSampleSuccessCarriesInterval checks the sampler populates the
// interval consistently with its mean.
func TestSampleSuccessCarriesInterval(t *testing.T) {
	cfg, initial, ops := buildTrace(t)
	est, err := SampleSuccess(cfg, initial, ops, DefaultParams(), 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if est.Low > est.Mean || est.Mean > est.High {
		t.Fatalf("mean %g outside Wilson interval [%g, %g]", est.Mean, est.Low, est.High)
	}
	if est.High-est.Low <= 0 || est.High-est.Low >= 1 {
		t.Fatalf("implausible interval width %g", est.High-est.Low)
	}
	// The analytic fidelity should fall inside the 95% interval for this
	// deterministic seed (pinned: a regression that breaks the interval
	// scaling will move it out).
	if est.Analytic < est.Low || est.Analytic > est.High {
		t.Errorf("analytic %g outside interval [%g, %g]", est.Analytic, est.Low, est.High)
	}
}
