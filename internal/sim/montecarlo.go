package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"muzzle/internal/machine"
)

// SuccessEstimate is the outcome of a Monte Carlo success-probability
// estimation.
type SuccessEstimate struct {
	// Mean is the fraction of trials in which no gate failed — the Monte
	// Carlo estimate of program fidelity under the independent-error
	// model.
	Mean float64
	// StdErr is the binomial standard error of Mean. It collapses to 0
	// when every trial agrees (Mean exactly 0 or 1) even though the true
	// probability is almost never exactly at the boundary — read Low/High
	// for honest uncertainty there.
	StdErr float64
	// Low and High are the bounds of the 95% Wilson score interval for the
	// success probability. Unlike the naive ±StdErr band, the interval has
	// positive width at Mean 0 and 1 (observing n straight failures bounds
	// the probability near, not at, zero), so low-fidelity circuits never
	// claim impossible certainty.
	Low, High float64
	// Trials is the sample count.
	Trials int
	// Analytic is the closed-form program fidelity (product of gate
	// fidelities) for comparison; Mean converges to it as Trials grows.
	Analytic float64
}

// wilsonZ is the normal quantile for the 95% confidence Wilson interval.
const wilsonZ = 1.959963984540054

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion after observing `successes` of `trials`, at normal
// quantile z (1.96 for 95%). Unlike the Wald interval mean ± z·StdErr, it
// is well-behaved at the boundaries: zero successes yield [0, z²/(n+z²)]
// rather than the degenerate [0, 0], and n of n yield [n/(n+z²), 1].
func WilsonInterval(successes, trials int, z float64) (low, high float64) {
	if trials <= 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	low, high = math.Max(0, center-half), math.Min(1, center+half)
	// At the boundaries the closed forms are exact (0 and 1 respectively);
	// snap them so floating-point roundoff cannot exclude the estimate.
	if successes == 0 {
		low = 0
	}
	if successes == trials {
		high = 1
	}
	return low, high
}

// mcChunk is the number of trials per deterministic RNG chunk.
//
// Seed-splitting scheme: the trial space is partitioned into fixed chunks of
// mcChunk trials; chunk c draws from its own rand source seeded with
// splitMix64(seed, c). Workers claim whole chunks, so the set of random
// streams — and therefore the estimate — depends only on (seed, trials),
// never on the worker count or scheduling order: SampleSuccess(…, s) is
// bit-for-bit reproducible on any machine and any GOMAXPROCS.
const mcChunk = 8192

// splitMix64 derives a decorrelated per-chunk seed from the user seed; it is
// the standard SplitMix64 output function over seed advanced by chunk+1
// golden-gamma steps.
func splitMix64(seed int64, chunk int) int64 {
	z := uint64(seed) + uint64(chunk+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// SampleSuccess estimates the program success probability by Monte Carlo:
// it replays the trace once through the analytic simulator to obtain every
// gate's fidelity, then samples `trials` runs in which each gate fails
// independently with probability 1 - F(gate). A run succeeds when no gate
// fails.
//
// Trials are partitioned into deterministic chunks (see mcChunk) and drawn
// by a pool of workers in parallel; results are reproducible for a given
// (seed, trials) pair regardless of CPU count.
//
// Under this independence model the estimate converges to the analytic
// product, so the sampler is primarily a consistency check and a base for
// extensions with correlated errors; it also gives confidence intervals,
// which the analytic number alone does not.
//
//muzzle:ctx-background legacy ctx-less API; cancelable callers use SampleSuccessContext
func SampleSuccess(cfg machine.Config, initial [][]int, ops []machine.Op, params Params, trials int, seed int64) (*SuccessEstimate, error) {
	return SampleSuccessContext(context.Background(), cfg, initial, ops, params, trials, seed)
}

// SampleSuccessContext is SampleSuccess with cooperative cancellation: the
// analytic replay aborts at its usual stride, and each worker re-checks ctx
// between trial chunks, so a canceled request stops burning CPU within one
// chunk (~mcChunk trials) per worker. A canceled run returns ctx.Err() —
// never a partial estimate, which would be statistically meaningless.
func SampleSuccessContext(ctx context.Context, cfg machine.Config, initial [][]int, ops []machine.Op, params Params, trials int, seed int64) (*SuccessEstimate, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("sim: non-positive trial count %d", trials)
	}
	rep, err := SimulateContext(ctx, cfg, initial, ops, params)
	if err != nil {
		return nil, err
	}
	fids := rep.GateFidelities

	chunks := (trials + mcChunk - 1) / mcChunk
	workers := min(runtime.GOMAXPROCS(0), chunks)
	var (
		next      atomic.Int64
		successes atomic.Int64
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks || ctx.Err() != nil {
					return
				}
				n := mcChunk
				if rem := trials - c*mcChunk; rem < n {
					n = rem
				}
				rng := rand.New(rand.NewSource(splitMix64(seed, c)))
				ok := 0
				for t := 0; t < n; t++ {
					good := true
					for _, f := range fids {
						if rng.Float64() >= f {
							good = false
							break
						}
					}
					if good {
						ok++
					}
				}
				successes.Add(int64(ok))
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	return newSuccessEstimate(int(successes.Load()), trials, rep.Fidelity), nil
}

// newSuccessEstimate assembles the estimate from raw counts; split out so
// the boundary cases (0 or trials successes) are testable without steering
// the sampler onto them.
func newSuccessEstimate(successes, trials int, analytic float64) *SuccessEstimate {
	mean := float64(successes) / float64(trials)
	low, high := WilsonInterval(successes, trials, wilsonZ)
	return &SuccessEstimate{
		Mean:     mean,
		StdErr:   math.Sqrt(mean * (1 - mean) / float64(trials)),
		Low:      low,
		High:     high,
		Trials:   trials,
		Analytic: analytic,
	}
}
