package sim

import (
	"fmt"
	"math"
	"math/rand"

	"muzzle/internal/machine"
)

// SuccessEstimate is the outcome of a Monte Carlo success-probability
// estimation.
type SuccessEstimate struct {
	// Mean is the fraction of trials in which no gate failed — the Monte
	// Carlo estimate of program fidelity under the independent-error
	// model.
	Mean float64
	// StdErr is the binomial standard error of Mean.
	StdErr float64
	// Trials is the sample count.
	Trials int
	// Analytic is the closed-form program fidelity (product of gate
	// fidelities) for comparison; Mean converges to it as Trials grows.
	Analytic float64
}

// SampleSuccess estimates the program success probability by Monte Carlo:
// it replays the trace once through the analytic simulator to obtain every
// gate's fidelity, then samples `trials` runs in which each gate fails
// independently with probability 1 - F(gate). A run succeeds when no gate
// fails.
//
// Under this independence model the estimate converges to the analytic
// product, so the sampler is primarily a consistency check and a base for
// extensions with correlated errors; it also gives confidence intervals,
// which the analytic number alone does not.
func SampleSuccess(cfg machine.Config, initial [][]int, ops []machine.Op, params Params, trials int, seed int64) (*SuccessEstimate, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("sim: non-positive trial count %d", trials)
	}
	rep, err := Simulate(cfg, initial, ops, params)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	successes := 0
	for t := 0; t < trials; t++ {
		ok := true
		for _, f := range rep.GateFidelities {
			if rng.Float64() >= f {
				ok = false
				break
			}
		}
		if ok {
			successes++
		}
	}
	mean := float64(successes) / float64(trials)
	return &SuccessEstimate{
		Mean:     mean,
		StdErr:   math.Sqrt(mean * (1 - mean) / float64(trials)),
		Trials:   trials,
		Analytic: rep.Fidelity,
	}, nil
}
