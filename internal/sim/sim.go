// Package sim is the QCCD simulator: it replays the operation trace produced
// by a compiler against the timing, heating, and fidelity models, yielding
// program duration and program fidelity. It plays the role of the QCCDSim
// simulator the paper uses for its Fig. 8 fidelity numbers (Section IV-A:
// "To get the program fidelity estimates, we leverage the QCCD simulator
// [7] which includes experimental operation time and gate fidelity
// models").
//
// Timing semantics: gates within a trap are serial, distinct traps run in
// parallel (paper Section II-B1). Each trap has a clock; an operation on one
// trap advances that trap's clock, a MOVE synchronizes source and
// destination clocks. Dependencies between gates are implicit in trace
// order within each trap plus the shuttle synchronization points — the
// compiler only emits traces whose per-trap order respects the circuit DAG.
package sim

import (
	"context"
	"fmt"
	"math"

	"muzzle/internal/fidelity"
	"muzzle/internal/heating"
	"muzzle/internal/machine"
)

// TimeParams are operation durations in microseconds. Defaults are
// literature-plausible stand-ins for QCCDSim's calibrated values (paper refs
// [9],[10]; see DESIGN.md "Model constants").
type TimeParams struct {
	// Gate1Q is the single-qubit gate time.
	Gate1Q float64
	// Gate2QBase is the two-qubit MS gate time for a 2-ion chain; the
	// effective time scales linearly with chain length (longer chains have
	// slower, more weakly coupled modes — the paper's motivation for
	// limiting ions per trap, Section I).
	Gate2QBase float64
	// Gate2QPerIon is the additional 2Q time per ion beyond 2 in the chain.
	Gate2QPerIon float64
	// Split, Move, Merge, Swap are the shuttle primitive durations.
	Split float64
	Move  float64
	Merge float64
	Swap  float64
	// Measure is the readout time.
	Measure float64
}

// DefaultTimeParams returns the durations used throughout the evaluation.
func DefaultTimeParams() TimeParams {
	return TimeParams{
		Gate1Q:       10,
		Gate2QBase:   100,
		Gate2QPerIon: 3,
		Split:        80,
		Move:         5,
		Merge:        80,
		Swap:         42,
		Measure:      100,
	}
}

// Validate rejects non-positive durations.
func (p TimeParams) Validate() error {
	for _, v := range []float64{p.Gate1Q, p.Gate2QBase, p.Split, p.Move, p.Merge, p.Swap, p.Measure} {
		if v <= 0 {
			return fmt.Errorf("sim: non-positive duration in %+v", p)
		}
	}
	if p.Gate2QPerIon < 0 {
		return fmt.Errorf("sim: negative per-ion 2Q scaling")
	}
	return nil
}

// Gate2Q returns the 2Q gate duration for a chain of n ions.
func (p TimeParams) Gate2Q(n int) float64 {
	extra := float64(n - 2)
	if extra < 0 {
		extra = 0
	}
	return p.Gate2QBase + p.Gate2QPerIon*extra
}

// CoolingParams configure optional sympathetic re-cooling. The paper's
// compilers do not re-cool — accumulated motional energy is exactly why
// shuttle reduction pays off — but QCCD hardware proposals include coolant
// ions, so the simulator models it for ablation studies: after a merge
// pushes a chain's n̄ above Threshold, the chain is re-cooled to n̄ = 0 at a
// cost of Time microseconds.
type CoolingParams struct {
	// Enabled turns re-cooling on.
	Enabled bool
	// Threshold is the n̄ level that triggers re-cooling (quanta).
	Threshold float64
	// Time is the re-cooling duration in microseconds.
	Time float64
}

// Validate rejects non-physical cooling constants.
func (p CoolingParams) Validate() error {
	if !p.Enabled {
		return nil
	}
	if p.Threshold < 0 || p.Time <= 0 {
		return fmt.Errorf("sim: bad cooling params %+v", p)
	}
	return nil
}

// Params bundles all model constants.
type Params struct {
	Time     TimeParams
	Heating  heating.Params
	Fidelity fidelity.Params
	Cooling  CoolingParams
}

// DefaultParams returns the evaluation constants (no re-cooling, matching
// the paper's model).
func DefaultParams() Params {
	return Params{
		Time:     DefaultTimeParams(),
		Heating:  heating.DefaultParams(),
		Fidelity: fidelity.DefaultParams(),
	}
}

// DefaultCooling returns a plausible re-cooling configuration for ablation
// studies: re-cool when a chain exceeds 10 quanta, costing 400 µs.
func DefaultCooling() CoolingParams {
	return CoolingParams{Enabled: true, Threshold: 10, Time: 400}
}

// Report is the outcome of simulating one compiled program.
type Report struct {
	// Duration is the makespan in microseconds (max over trap clocks).
	Duration float64
	// LogFidelity is ln(program fidelity); Fidelity = exp(LogFidelity).
	LogFidelity float64
	// Fidelity is the program fidelity (product of gate fidelities); it may
	// underflow to 0 for large hot programs — compare LogFidelity instead.
	Fidelity float64
	// Shuttles is the number of MOVE operations (the paper's metric).
	Shuttles int
	// Splits, Merges, Swaps count the other shuttle primitives.
	Splits, Merges, Swaps int
	// Coolings counts sympathetic re-cooling events (0 unless enabled).
	Coolings int
	// Gates1Q, Gates2Q, Measures count gate executions.
	Gates1Q, Gates2Q, Measures int
	// MaxChainN is the hottest motional mode reached by any chain.
	MaxChainN float64
	// MeanGateFidelity is the geometric mean of per-gate fidelities.
	MeanGateFidelity float64
	// MinGateFidelity is the worst single gate.
	MinGateFidelity float64
	// GateFidelities lists every executed gate's fidelity in trace order;
	// consumed by the Monte Carlo sampler (SampleSuccess).
	GateFidelities []float64
}

// Simulate replays the trace of compiled machine state st (starting from
// the placement snapshot taken before compilation) under params. The initial
// placement must be the pre-execution snapshot so chain sizes during replay
// match what the compiler saw.
//
//muzzle:ctx-background legacy ctx-less API; cancelable callers use SimulateContext
func Simulate(cfg machine.Config, initial [][]int, ops []machine.Op, params Params) (*Report, error) {
	return SimulateContext(context.Background(), cfg, initial, ops, params)
}

// cancelCheckStride bounds how many trace ops replay between context
// checks; replay cost per op is tiny, so a coarse stride keeps the check
// overhead invisible while still bounding cancellation latency.
const cancelCheckStride = 4096

// SimulateContext is Simulate with cooperative cancellation: the replay
// loop checks ctx every few thousand ops and aborts with ctx.Err().
func SimulateContext(ctx context.Context, cfg machine.Config, initial [][]int, ops []machine.Op, params Params) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := params.Time.Validate(); err != nil {
		return nil, err
	}
	if err := params.Cooling.Validate(); err != nil {
		return nil, err
	}
	st, err := machine.NewState(cfg, initial)
	if err != nil {
		return nil, fmt.Errorf("sim: bad initial placement: %w", err)
	}
	nTraps := cfg.Topology.NumTraps()
	heat, err := heating.NewModel(params.Heating, nTraps, st.NumIons())
	if err != nil {
		return nil, err
	}
	acc, err := fidelity.NewAccumulator(params.Fidelity)
	if err != nil {
		return nil, err
	}

	clock := make([]float64, nTraps)
	lastHeat := make([]float64, nTraps)
	rep := &Report{}

	// advance moves trap t's clock forward by dur, integrating background
	// heating over the elapsed interval first.
	advance := func(t int, dur float64) {
		if clock[t] > lastHeat[t] {
			heat.Background(t, clock[t]-lastHeat[t])
		}
		clock[t] += dur
		heat.Background(t, dur)
		lastHeat[t] = clock[t]
	}
	// syncTraps aligns two trap clocks to their max (for MOVE), charging
	// each trap background heating for its idle wait.
	syncTraps := func(a, b int) {
		m := math.Max(clock[a], clock[b])
		for _, t := range []int{a, b} {
			if m > lastHeat[t] {
				heat.Background(t, m-lastHeat[t])
				lastHeat[t] = m
			}
			clock[t] = m
		}
	}

	for i, op := range ops {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: canceled at op %d/%d: %w", i, len(ops), err)
			}
		}
		switch op.Kind {
		case machine.OpGate1Q:
			t := st.IonTrap(op.Ion)
			advance(t, params.Time.Gate1Q)
			rep.GateFidelities = append(rep.GateFidelities, acc.Add(params.Time.Gate1Q, heat.ChainN(t), st.Occupancy(t)))
			rep.Gates1Q++
		case machine.OpMeasure:
			t := st.IonTrap(op.Ion)
			advance(t, params.Time.Measure)
			rep.Measures++
		case machine.OpGate2Q:
			t := st.IonTrap(op.Ion)
			if st.IonTrap(op.Ion2) != t {
				return nil, fmt.Errorf("sim: op %d (%s): ions not co-located at replay", i, op)
			}
			dur := params.Time.Gate2Q(st.Occupancy(t))
			advance(t, dur)
			rep.GateFidelities = append(rep.GateFidelities, acc.Add(dur, heat.ChainN(t), st.Occupancy(t)))
			rep.Gates2Q++
		case machine.OpSwap:
			t := st.IonTrap(op.Ion)
			advance(t, params.Time.Swap)
			heat.Swap(t)
			rep.Swaps++
			// Replay the swap on the shadow state to keep chain order.
			if err := replaySwap(st, op); err != nil {
				return nil, fmt.Errorf("sim: op %d: %w", i, err)
			}
		case machine.OpSplit:
			t := st.IonTrap(op.Ion)
			advance(t, params.Time.Split)
			heat.Split(t, op.Ion, st.Occupancy(t))
			rep.Splits++
		case machine.OpMove:
			syncTraps(op.Trap, op.Trap2)
			advance(op.Trap, params.Time.Move)
			advance(op.Trap2, params.Time.Move)
			heat.Move(op.Ion)
			rep.Shuttles++
			// Apply the split+move+merge on the shadow state when the
			// matching merge arrives; the machine Hop is atomic, so here we
			// directly relocate on merge (below). Record nothing yet.
		case machine.OpMerge:
			t := op.Trap
			advance(t, params.Time.Merge)
			if err := replayRelocate(st, op.Ion, t); err != nil {
				return nil, fmt.Errorf("sim: op %d: %w", i, err)
			}
			heat.Merge(t, op.Ion, st.Occupancy(t))
			rep.Merges++
			if params.Cooling.Enabled && heat.ChainN(t) > params.Cooling.Threshold {
				advance(t, params.Cooling.Time)
				heat.Cool(t)
				rep.Coolings++
			}
		default:
			return nil, fmt.Errorf("sim: op %d: unknown kind %v", i, op.Kind)
		}
	}

	rep.Duration = 0
	for _, c := range clock {
		if c > rep.Duration {
			rep.Duration = c
		}
	}
	rep.LogFidelity = acc.LogFidelity()
	rep.Fidelity = acc.Fidelity()
	rep.MaxChainN = heat.MaxChainN()
	rep.MinGateFidelity = acc.MinGateFidelity()
	if n := acc.Gates(); n > 0 {
		rep.MeanGateFidelity = math.Exp(acc.LogFidelity() / float64(n))
	} else {
		rep.MeanGateFidelity = 1
	}
	return rep, nil
}

// replaySwap applies one adjacent transposition to the shadow state. The
// shadow state is only used for occupancy/chain-size queries, so we re-use
// the recorded operand pair directly.
func replaySwap(st *machine.State, op machine.Op) error {
	// The machine package has no public swap; emulate by checking the two
	// ions share a trap — chain order does not affect occupancy-based
	// timing, so a positional no-op is sound here.
	if st.IonTrap(op.Ion) != st.IonTrap(op.Ion2) {
		return fmt.Errorf("swap operands in different traps: %s", op)
	}
	return nil
}

// replayRelocate moves ion directly between traps on the shadow state
// (occupancy bookkeeping for the replay; the full SPLIT/MOVE/MERGE sequence
// was already accounted for in time and heat).
func replayRelocate(st *machine.State, ion, to int) error {
	from := st.IonTrap(ion)
	if from == to {
		return nil
	}
	return st.Teleport(ion, to)
}
