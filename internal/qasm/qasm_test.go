package qasm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"muzzle/internal/circuit"
)

const sampleSrc = `
OPENQASM 2.0;
include "qelib1.inc";
// the 9-gate sample program of paper Fig. 2
qreg q[6];
ms q[0],q[1];
ms q[2],q[3];
ms q[2],q[0];
ms q[4],q[5];
ms q[0],q[3];
ms q[2],q[5];
ms q[4],q[5];
ms q[0],q[1];
ms q[2],q[3];
`

func TestParseSample(t *testing.T) {
	c, err := Parse("fig2", sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 6 {
		t.Errorf("NumQubits = %d, want 6", c.NumQubits)
	}
	if len(c.Gates) != 9 {
		t.Fatalf("gates = %d, want 9", len(c.Gates))
	}
	if c.Gates[4].Qubits[0] != 0 || c.Gates[4].Qubits[1] != 3 {
		t.Errorf("gate 4 = %v", c.Gates[4])
	}
}

func TestParseParams(t *testing.T) {
	src := `qreg q[2];
rz(pi/2) q[0];
r(-pi/4, 2*pi) q[1];
rz(1.5e-3) q[0];
rz((pi+1)/2) q[1];
`
	c, err := Parse("p", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Gates[0].Params[0]; math.Abs(got-math.Pi/2) > 1e-15 {
		t.Errorf("pi/2 = %g", got)
	}
	if got := c.Gates[1].Params[0]; math.Abs(got+math.Pi/4) > 1e-15 {
		t.Errorf("-pi/4 = %g", got)
	}
	if got := c.Gates[1].Params[1]; math.Abs(got-2*math.Pi) > 1e-15 {
		t.Errorf("2*pi = %g", got)
	}
	if got := c.Gates[2].Params[0]; got != 1.5e-3 {
		t.Errorf("1.5e-3 = %g", got)
	}
	if got := c.Gates[3].Params[0]; math.Abs(got-(math.Pi+1)/2) > 1e-15 {
		t.Errorf("(pi+1)/2 = %g", got)
	}
}

func TestParseMeasureAndBarrier(t *testing.T) {
	src := `qreg q[3];
creg c[3];
h q[0];
barrier q;
measure q[0] -> c[0];
measure q[1] -> c[1];
`
	c, err := Parse("m", src)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []circuit.GateKind
	for _, g := range c.Gates {
		kinds = append(kinds, g.Kind())
	}
	want := []circuit.GateKind{circuit.Kind1Q, circuit.KindBarrier, circuit.KindMeasure, circuit.KindMeasure}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if len(c.Gates[1].Qubits) != 3 {
		t.Errorf("whole-register barrier should cover 3 qubits, got %v", c.Gates[1].Qubits)
	}
}

func TestParseWholeRegisterBroadcast(t *testing.T) {
	src := `qreg q[4];
h q;
`
	c, err := Parse("b", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 4 {
		t.Fatalf("h q over q[4] should expand to 4 gates, got %d", len(c.Gates))
	}
}

func TestParseGateDefinitionExpansion(t *testing.T) {
	src := `qreg q[2];
gate zz(theta) a,b { cx a,b; rz(theta) b; cx a,b; }
zz(pi/3) q[0],q[1];
`
	c, err := Parse("g", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 3 {
		t.Fatalf("expanded gates = %d, want 3", len(c.Gates))
	}
	if c.Gates[1].Name != "rz" || math.Abs(c.Gates[1].Params[0]-math.Pi/3) > 1e-15 {
		t.Errorf("middle gate = %v", c.Gates[1])
	}
	if c.Gates[0].Name != "cx" || c.Gates[2].Name != "cx" {
		t.Errorf("outer gates = %v, %v", c.Gates[0], c.Gates[2])
	}
}

func TestParseNestedGateDefinition(t *testing.T) {
	src := `qreg q[2];
gate mycx a,b { cx a,b; }
gate double a,b { mycx a,b; mycx b,a; }
double q[0],q[1];
`
	c, err := Parse("n", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 2 {
		t.Fatalf("gates = %d, want 2", len(c.Gates))
	}
	if c.Gates[1].Qubits[0] != 1 || c.Gates[1].Qubits[1] != 0 {
		t.Errorf("argument permutation lost: %v", c.Gates[1])
	}
}

func TestParseMultipleQregs(t *testing.T) {
	src := `qreg a[2];
qreg b[3];
cx a[1],b[0];
`
	c, err := Parse("mq", src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 5 {
		t.Errorf("NumQubits = %d, want 5", c.NumQubits)
	}
	g := c.Gates[0]
	if g.Qubits[0] != 1 || g.Qubits[1] != 2 {
		t.Errorf("offsets wrong: %v", g)
	}
}

func TestParseU1U2Aliases(t *testing.T) {
	src := `qreg q[1];
u1(0.5) q[0];
u2(0.1,0.2) q[0];
u3(0.1,0.2,0.3) q[0];
CX q[0],q[0];
`
	// CX q0,q0 is invalid (duplicate); split the check.
	src = strings.Replace(src, "CX q[0],q[0];\n", "", 1)
	c, err := Parse("u", src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Name != "rz" {
		t.Errorf("u1 should alias rz, got %q", c.Gates[0].Name)
	}
	if c.Gates[1].Name != "u" || len(c.Gates[1].Params) != 3 {
		t.Errorf("u2 should alias u with 3 params, got %v", c.Gates[1])
	}
}

func TestParseCXAlias(t *testing.T) {
	src := "qreg q[2];\nCX q[0],q[1];\n"
	c, err := Parse("cx", src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Name != "cx" {
		t.Errorf("CX should lower to cx, got %q", c.Gates[0].Name)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no qreg", "h q[0];"},
		{"bad index", "qreg q[2];\nh q[5];"},
		{"negative size", "qreg q[0];"},
		{"unknown reg", "qreg q[2];\nh r[0];"},
		{"redeclared", "qreg q[2];\nqreg q[3];"},
		{"missing semicolon", "qreg q[2]\nh q[0];"},
		{"division by zero", "qreg q[1];\nrz(1/0) q[0];"},
		{"unsupported if", "qreg q[1];\ncreg c[1];\nif (c==1) x q[0];"},
		{"unterminated gate", "qreg q[1];\ngate foo a { x a;"},
		{"classical as qubit", "qreg q[1];\ncreg c[1];\nh c[0];"},
		{"measure to qreg", "qreg q[2];\nmeasure q[0] -> q[1];"},
		{"duplicate operand", "qreg q[2];\ncx q[1],q[1];"},
		{"bad macro arity", "qreg q[2];\ngate foo a,b { cx a,b; }\nfoo q[0];"},
		{"unterminated string", "include \"abc"},
		{"stray char", "qreg q[2];\n@ q[0];"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.name, tc.src); err == nil {
			t.Errorf("%s: expected parse error", tc.name)
		}
	}
}

func TestRecursiveMacroRejected(t *testing.T) {
	src := `qreg q[1];
gate loop a { loop a; }
loop q[0];
`
	if _, err := Parse("rec", src); err == nil {
		t.Fatal("expected recursion depth error")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	c := circuit.New("rt", 4)
	c.Add1Q("h", 0)
	c.Add2Q("cx", 0, 1)
	c.Add2Q("ms", 2, 3, math.Pi/4)
	c.Add1Q("rz", 2, -1.25)
	c.MustAppend(circuit.Gate{Name: "barrier", Qubits: []int{0, 1, 2, 3}})
	c.MustAppend(circuit.Gate{Name: "measure", Qubits: []int{0}})

	src, err := WriteString(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse("rt", src)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\nsource:\n%s", err, src)
	}
	if got.NumQubits != c.NumQubits || len(got.Gates) != len(c.Gates) {
		t.Fatalf("round trip mismatch: %d/%d gates", len(got.Gates), len(c.Gates))
	}
	for i := range c.Gates {
		if got.Gates[i].String() != c.Gates[i].String() {
			t.Errorf("gate %d: %q != %q", i, got.Gates[i], c.Gates[i])
		}
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	c := circuit.New("bad", 2)
	c.Gates = append(c.Gates, circuit.Gate{Name: "ms", Qubits: []int{0, 7}})
	if _, err := WriteString(c); err == nil {
		t.Fatal("expected error writing invalid circuit")
	}
}

func TestParseWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/test.qasm"
	c := circuit.New("test", 3)
	c.Add2Q("cx", 0, 2)
	if err := WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "test" {
		t.Errorf("circuit name = %q, want %q (file stem)", got.Name, "test")
	}
	if len(got.Gates) != 1 || got.Gates[0].Name != "cx" {
		t.Errorf("gates = %v", got.Gates)
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("/nonexistent/nope.qasm"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	// Property: Parse(Write(c)) == c for random native-gate circuits.
	gates := []struct {
		name  string
		arity int
		np    int
	}{
		{"r", 1, 2}, {"rz", 1, 1}, {"ms", 2, 1}, {"cx", 2, 0}, {"h", 1, 0},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		c := circuit.New("q", n)
		for i := 0; i < rng.Intn(60); i++ {
			spec := gates[rng.Intn(len(gates))]
			qs := rng.Perm(n)[:spec.arity]
			ps := make([]float64, spec.np)
			for j := range ps {
				ps[j] = (rng.Float64() - 0.5) * 4 * math.Pi
			}
			c.MustAppend(circuit.Gate{Name: spec.name, Qubits: qs, Params: ps})
		}
		src, err := WriteString(c)
		if err != nil {
			return false
		}
		got, err := Parse("q", src)
		if err != nil {
			return false
		}
		if got.NumQubits != c.NumQubits || len(got.Gates) != len(c.Gates) {
			return false
		}
		for i := range c.Gates {
			a, b := c.Gates[i], got.Gates[i]
			if a.Name != b.Name || len(a.Qubits) != len(b.Qubits) || len(a.Params) != len(b.Params) {
				return false
			}
			for j := range a.Qubits {
				if a.Qubits[j] != b.Qubits[j] {
					return false
				}
			}
			for j := range a.Params {
				if math.Abs(a.Params[j]-b.Params[j]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMeasureWiringPreserved(t *testing.T) {
	// Non-identity measure -> creg mapping: the classical targets must
	// survive parse -> write -> parse instead of being renumbered.
	src := `qreg q[3];
creg c[4];
h q[0];
measure q[0] -> c[3];
measure q[1] -> c[0];
measure q[2] -> c[2];
`
	c, err := Parse("wiring", src)
	if err != nil {
		t.Fatal(err)
	}
	wantCbits := []int{3, 0, 2}
	var got []int
	for _, g := range c.Gates {
		if g.Kind() == circuit.KindMeasure {
			got = append(got, g.Cbit)
		}
	}
	if len(got) != len(wantCbits) {
		t.Fatalf("measures = %v, want %v", got, wantCbits)
	}
	for i := range wantCbits {
		if got[i] != wantCbits[i] {
			t.Fatalf("classical wiring rewired: got %v, want %v", got, wantCbits)
		}
	}
	out, err := WriteString(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{"creg c[4];", "measure q[0] -> c[3];", "measure q[1] -> c[0];", "measure q[2] -> c[2];"} {
		if !strings.Contains(out, line) {
			t.Errorf("output missing %q:\n%s", line, out)
		}
	}
	again, err := Parse("wiring", out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Gates {
		if c.Gates[i].Cbit != again.Gates[i].Cbit {
			t.Fatalf("gate %d cbit changed across round trip: %d != %d", i, c.Gates[i].Cbit, again.Gates[i].Cbit)
		}
	}
	// And the serialized form is a fixed point.
	out2, err := WriteString(again)
	if err != nil {
		t.Fatal(err)
	}
	if out != out2 {
		t.Errorf("write not stable:\n%s\nvs\n%s", out, out2)
	}
}

func TestMeasureBroadcastWiring(t *testing.T) {
	src := `qreg q[3];
creg c[3];
measure q -> c;
`
	c, err := Parse("bcast", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 3 {
		t.Fatalf("gates = %d, want 3", len(c.Gates))
	}
	for i, g := range c.Gates {
		if g.Qubits[0] != i || g.Cbit != i {
			t.Errorf("gate %d: q[%d] -> c[%d], want q[%d] -> c[%d]", i, g.Qubits[0], g.Cbit, i, i)
		}
	}
}

func TestMeasureCregOffsets(t *testing.T) {
	src := `qreg q[2];
creg a[2];
creg b[2];
measure q[0] -> b[1];
measure q[1] -> a[0];
`
	c, err := Parse("offs", src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Cbit != 3 || c.Gates[1].Cbit != 0 {
		t.Errorf("creg offsets wrong: cbits = %d, %d (want 3, 0)", c.Gates[0].Cbit, c.Gates[1].Cbit)
	}
}

func TestMeasureErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"cbit out of range", "qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[5];"},
		{"size mismatch register", "qreg q[3];\ncreg c[2];\nmeasure q -> c;"},
		{"size mismatch single", "qreg q[2];\ncreg c[2];\nmeasure q -> c[0];"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.name, tc.src); err == nil {
			t.Errorf("%s: expected parse error", tc.name)
		}
	}
}

func TestParamShortestRoundTrip(t *testing.T) {
	c := circuit.New("fmt", 1)
	c.Add1Q("rz", 0, 0.1)
	c.Add1Q("rz", 0, 1e-7)
	c.Add1Q("rz", 0, -2.5)
	out, err := WriteString(c)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "0.10000000000000001") {
		t.Errorf("0.1 serialized with %%17g noise:\n%s", out)
	}
	if !strings.Contains(out, "rz(0.1)") {
		t.Errorf("0.1 should serialize shortest:\n%s", out)
	}
	got, err := Parse("fmt", out)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range c.Gates {
		if got.Gates[i].Params[0] != g.Params[0] {
			t.Errorf("param %d: %v != %v (round trip must be exact)", i, got.Gates[i].Params[0], g.Params[0])
		}
	}
}

// TestPropertyRoundTrip is the full parse(write(parse(write(c)))) property:
// random circuits over the native + measurement gate set, with explicit
// classical wiring, must round-trip with exact gate, operand, classical
// index, and parameter equality (shortest-form floats parse back bit-equal).
func TestPropertyRoundTrip(t *testing.T) {
	gates := []struct {
		name  string
		arity int
		np    int
	}{
		{"r", 1, 2}, {"rz", 1, 1}, {"ms", 2, 1}, {"cx", 2, 0}, {"h", 1, 0},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		c := circuit.New("q", n)
		for i := 0; i < rng.Intn(60); i++ {
			spec := gates[rng.Intn(len(gates))]
			qs := rng.Perm(n)[:spec.arity]
			ps := make([]float64, spec.np)
			for j := range ps {
				ps[j] = (rng.Float64() - 0.5) * 4 * math.Pi
			}
			c.MustAppend(circuit.Gate{Name: spec.name, Qubits: qs, Params: ps})
		}
		// Shuffled classical wiring: qubit order and creg order differ.
		for _, q := range rng.Perm(n)[:rng.Intn(n+1)] {
			c.AddMeasure(q, rng.Intn(2*n))
		}
		equal := func(a, b *circuit.Circuit) bool {
			if a.NumQubits != b.NumQubits || len(a.Gates) != len(b.Gates) {
				return false
			}
			for i := range a.Gates {
				ga, gb := a.Gates[i], b.Gates[i]
				if ga.Name != gb.Name || ga.Cbit != gb.Cbit ||
					len(ga.Qubits) != len(gb.Qubits) || len(ga.Params) != len(gb.Params) {
					return false
				}
				for j := range ga.Qubits {
					if ga.Qubits[j] != gb.Qubits[j] {
						return false
					}
				}
				for j := range ga.Params {
					if ga.Params[j] != gb.Params[j] { // exact: shortest form round-trips
						return false
					}
				}
			}
			return true
		}
		src, err := WriteString(c)
		if err != nil {
			return false
		}
		got, err := Parse("q", src)
		if err != nil {
			return false
		}
		if !equal(c, got) {
			return false
		}
		src2, err := WriteString(got)
		if err != nil {
			return false
		}
		return src == src2 // serialized form is a fixed point
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLexerComments(t *testing.T) {
	src := "qreg q[1]; // trailing comment\n// full line\nh q[0];"
	c, err := Parse("c", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 1 {
		t.Fatalf("gates = %d", len(c.Gates))
	}
}

func TestStripExt(t *testing.T) {
	if stripExt("foo.qasm") != "foo" || stripExt("bar") != "bar" || stripExt("a.b.c") != "a.b" {
		t.Fatal("stripExt wrong")
	}
}
