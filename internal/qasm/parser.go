package qasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"muzzle/internal/circuit"
)

// Parse reads OpenQASM 2.0 source and returns the circuit it describes.
//
// Supported subset:
//   - OPENQASM 2.0; and include "..."; headers (include is ignored)
//   - one qreg declaration (multiple qregs are concatenated into one
//     register, offset in declaration order) and creg declarations
//     (concatenated the same way into one classical register)
//   - gate applications with optional parenthesised angle expressions
//   - barrier over explicit qubits or whole registers
//   - measure q[i] -> c[j]; including whole-register broadcast — the
//     classical target is recorded on the gate (Gate.Cbit), so the
//     measurement wiring survives a parse -> write -> parse round trip
//
// Gate definitions ("gate ... { }") are parsed and expanded inline when
// applied, so files from common generators (Qiskit dumps) load correctly.
func Parse(name, src string) (*circuit.Circuit, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, name: name, regs: map[string]regInfo{}, macros: map[string]*macro{}}
	return p.parseProgram()
}

type regInfo struct {
	offset int
	size   int
	kind   byte // 'q' or 'c'
}

// macro is a user gate definition.
type macro struct {
	params []string // formal angle parameters
	args   []string // formal qubit parameters
	body   []macroOp
}

type macroOp struct {
	name   string
	params []expr   // expressions over macro params
	args   []string // formal qubit names
}

// expr is a parsed constant expression tree over named parameters.
type expr interface {
	eval(env map[string]float64) (float64, error)
}

type numExpr float64

func (n numExpr) eval(map[string]float64) (float64, error) { return float64(n), nil }

type varExpr string

func (v varExpr) eval(env map[string]float64) (float64, error) {
	if string(v) == "pi" {
		return math.Pi, nil
	}
	x, ok := env[string(v)]
	if !ok {
		return 0, fmt.Errorf("unknown identifier %q in expression", string(v))
	}
	return x, nil
}

type unaryExpr struct {
	op byte
	x  expr
}

func (u unaryExpr) eval(env map[string]float64) (float64, error) {
	x, err := u.x.eval(env)
	if err != nil {
		return 0, err
	}
	if u.op == '-' {
		return -x, nil
	}
	return x, nil
}

type binExpr struct {
	op   byte
	l, r expr
}

func (b binExpr) eval(env map[string]float64) (float64, error) {
	l, err := b.l.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("division by zero in expression")
		}
		return l / r, nil
	}
	return 0, fmt.Errorf("unknown operator %q", b.op)
}

type parser struct {
	toks   []token
	pos    int
	name   string
	regs   map[string]regInfo
	qsize  int
	csize  int
	macros map[string]*macro
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(t token, format string, args ...any) error {
	return fmt.Errorf("qasm %q: line %d: %s", p.name, t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectSymbol(s string) error {
	t := p.advance()
	if t.kind != tokSymbol && t.kind != tokArrow || t.text != s {
		return p.errorf(t, "expected %q, found %s", s, t)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.advance()
	if t.kind != tokIdent {
		return t, p.errorf(t, "expected identifier, found %s", t)
	}
	return t, nil
}

func (p *parser) parseProgram() (*circuit.Circuit, error) {
	// Header: OPENQASM 2.0;
	if t := p.cur(); t.kind == tokIdent && t.text == "OPENQASM" {
		p.advance()
		if t := p.advance(); t.kind != tokNumber {
			return nil, p.errorf(t, "expected version number")
		}
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
	}
	// First pass collects register declarations and gate defs while building
	// the op list; circuit allocation is deferred until first qreg is known.
	var pending []func(c *circuit.Circuit) error
	for p.cur().kind != tokEOF {
		t := p.cur()
		if t.kind != tokIdent {
			return nil, p.errorf(t, "expected statement, found %s", t)
		}
		switch t.text {
		case "include":
			p.advance()
			if t := p.advance(); t.kind != tokString {
				return nil, p.errorf(t, "expected include path string")
			}
			if err := p.expectSymbol(";"); err != nil {
				return nil, err
			}
		case "qreg", "creg":
			if err := p.parseRegDecl(t.text); err != nil {
				return nil, err
			}
		case "gate":
			if err := p.parseGateDef(); err != nil {
				return nil, err
			}
		case "barrier":
			ops, err := p.parseBarrier()
			if err != nil {
				return nil, err
			}
			pending = append(pending, ops)
		case "measure":
			ops, err := p.parseMeasure()
			if err != nil {
				return nil, err
			}
			pending = append(pending, ops)
		case "if", "reset", "opaque":
			return nil, p.errorf(t, "unsupported statement %q", t.text)
		default:
			ops, err := p.parseApplication()
			if err != nil {
				return nil, err
			}
			pending = append(pending, ops)
		}
	}
	if p.qsize == 0 {
		return nil, fmt.Errorf("qasm %q: no qreg declared", p.name)
	}
	c := circuit.New(p.name, p.qsize)
	for _, f := range pending {
		if err := f(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (p *parser) parseRegDecl(kind string) error {
	p.advance() // qreg/creg
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectSymbol("["); err != nil {
		return err
	}
	sizeTok := p.advance()
	if sizeTok.kind != tokNumber {
		return p.errorf(sizeTok, "expected register size")
	}
	size, err := strconv.Atoi(sizeTok.text)
	if err != nil || size <= 0 {
		return p.errorf(sizeTok, "invalid register size %q", sizeTok.text)
	}
	if err := p.expectSymbol("]"); err != nil {
		return err
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	if _, dup := p.regs[nameTok.text]; dup {
		return p.errorf(nameTok, "register %q redeclared", nameTok.text)
	}
	ri := regInfo{size: size, kind: kind[0]}
	if kind == "qreg" {
		ri.offset = p.qsize
		p.qsize += size
	} else {
		ri.offset = p.csize
		p.csize += size
	}
	p.regs[nameTok.text] = ri
	return nil
}

// parseQubitRef parses name[idx] or bare name (whole register) and returns
// the global qubit indices.
func (p *parser) parseQubitRef() ([]int, error) {
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ri, ok := p.regs[nameTok.text]
	if !ok {
		return nil, p.errorf(nameTok, "unknown register %q", nameTok.text)
	}
	if ri.kind != 'q' {
		return nil, p.errorf(nameTok, "register %q is classical", nameTok.text)
	}
	if p.cur().kind == tokSymbol && p.cur().text == "[" {
		p.advance()
		idxTok := p.advance()
		if idxTok.kind != tokNumber {
			return nil, p.errorf(idxTok, "expected qubit index")
		}
		idx, err := strconv.Atoi(idxTok.text)
		if err != nil || idx < 0 || idx >= ri.size {
			return nil, p.errorf(idxTok, "qubit index %q out of range for %s[%d]", idxTok.text, nameTok.text, ri.size)
		}
		if err := p.expectSymbol("]"); err != nil {
			return nil, err
		}
		return []int{ri.offset + idx}, nil
	}
	all := make([]int, ri.size)
	for i := range all {
		all[i] = ri.offset + i
	}
	return all, nil
}

// parseCbitRef parses name[idx] or bare name (whole classical register) and
// returns the global classical bit indices, offset across cregs the same
// way qubits are offset across qregs.
func (p *parser) parseCbitRef() ([]int, error) {
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ri, ok := p.regs[nameTok.text]
	if !ok || ri.kind != 'c' {
		return nil, p.errorf(nameTok, "unknown classical register %q", nameTok.text)
	}
	if p.cur().kind == tokSymbol && p.cur().text == "[" {
		p.advance()
		idxTok := p.advance()
		if idxTok.kind != tokNumber {
			return nil, p.errorf(idxTok, "expected bit index")
		}
		idx, err := strconv.Atoi(idxTok.text)
		if err != nil || idx < 0 || idx >= ri.size {
			return nil, p.errorf(idxTok, "bit index %q out of range for %s[%d]", idxTok.text, nameTok.text, ri.size)
		}
		if err := p.expectSymbol("]"); err != nil {
			return nil, err
		}
		return []int{ri.offset + idx}, nil
	}
	all := make([]int, ri.size)
	for i := range all {
		all[i] = ri.offset + i
	}
	return all, nil
}

func (p *parser) parseBarrier() (func(*circuit.Circuit) error, error) {
	tok := p.advance() // barrier
	var qubits []int
	for {
		qs, err := p.parseQubitRef()
		if err != nil {
			return nil, err
		}
		qubits = append(qubits, qs...)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectSymbol(";"); err != nil {
		return nil, err
	}
	return func(c *circuit.Circuit) error {
		if err := c.Append(circuit.Gate{Name: "barrier", Qubits: qubits}); err != nil {
			return p.errorf(tok, "%v", err)
		}
		return nil
	}, nil
}

func (p *parser) parseMeasure() (func(*circuit.Circuit) error, error) {
	tok := p.advance() // measure
	qs, err := p.parseQubitRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("->"); err != nil {
		return nil, err
	}
	cs, err := p.parseCbitRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(";"); err != nil {
		return nil, err
	}
	if len(qs) != len(cs) {
		return nil, p.errorf(tok, "measure maps %d qubit(s) to %d classical bit(s)", len(qs), len(cs))
	}
	return func(c *circuit.Circuit) error {
		for i, q := range qs {
			if err := c.Append(circuit.Gate{Name: "measure", Qubits: []int{q}, Cbit: cs[i]}); err != nil {
				return p.errorf(tok, "%v", err)
			}
		}
		return nil
	}, nil
}

// parseGateDef parses "gate name(p1,p2) a,b { body }".
func (p *parser) parseGateDef() error {
	p.advance() // gate
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	m := &macro{}
	if p.cur().kind == tokSymbol && p.cur().text == "(" {
		p.advance()
		for p.cur().kind != tokSymbol || p.cur().text != ")" {
			pt, err := p.expectIdent()
			if err != nil {
				return err
			}
			m.params = append(m.params, pt.text)
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.advance()
			}
		}
		p.advance() // )
	}
	for {
		at, err := p.expectIdent()
		if err != nil {
			return err
		}
		m.args = append(m.args, at.text)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectSymbol("{"); err != nil {
		return err
	}
	for p.cur().kind != tokSymbol || p.cur().text != "}" {
		if p.cur().kind == tokEOF {
			return p.errorf(p.cur(), "unterminated gate body for %q", nameTok.text)
		}
		op := macroOp{}
		nt, err := p.expectIdent()
		if err != nil {
			return err
		}
		op.name = nt.text
		if p.cur().kind == tokSymbol && p.cur().text == "(" {
			p.advance()
			for p.cur().kind != tokSymbol || p.cur().text != ")" {
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				op.params = append(op.params, e)
				if p.cur().kind == tokSymbol && p.cur().text == "," {
					p.advance()
				}
			}
			p.advance() // )
		}
		for {
			at, err := p.expectIdent()
			if err != nil {
				return err
			}
			op.args = append(op.args, at.text)
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.advance()
				continue
			}
			break
		}
		if err := p.expectSymbol(";"); err != nil {
			return err
		}
		m.body = append(m.body, op)
	}
	p.advance() // }
	p.macros[nameTok.text] = m
	return nil
}

// parseApplication parses a gate application statement and returns a closure
// that appends the expanded gates.
func (p *parser) parseApplication() (func(*circuit.Circuit) error, error) {
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var params []float64
	if p.cur().kind == tokSymbol && p.cur().text == "(" {
		p.advance()
		for p.cur().kind != tokSymbol || p.cur().text != ")" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			v, err := e.eval(nil)
			if err != nil {
				return nil, p.errorf(nameTok, "%v", err)
			}
			params = append(params, v)
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.advance()
			}
		}
		p.advance() // )
	}
	var operands [][]int
	for {
		qs, err := p.parseQubitRef()
		if err != nil {
			return nil, err
		}
		operands = append(operands, qs)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectSymbol(";"); err != nil {
		return nil, err
	}
	name := nameTok.text
	return func(c *circuit.Circuit) error {
		// Broadcast whole-register operands like QASM does: all operand
		// lists must have equal length (or length 1).
		width := 1
		for _, o := range operands {
			if len(o) > width {
				width = len(o)
			}
		}
		for i := 0; i < width; i++ {
			qubits := make([]int, len(operands))
			for j, o := range operands {
				if len(o) == 1 {
					qubits[j] = o[0]
				} else if i < len(o) {
					qubits[j] = o[i]
				} else {
					return p.errorf(nameTok, "mismatched register lengths in %q application", name)
				}
			}
			if err := p.applyGate(c, nameTok, name, params, qubits, 0); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

const maxMacroDepth = 32

func (p *parser) applyGate(c *circuit.Circuit, tok token, name string, params []float64, qubits []int, depth int) error {
	if depth > maxMacroDepth {
		return p.errorf(tok, "gate %q expansion too deep (recursive definition?)", name)
	}
	if m, ok := p.macros[name]; ok {
		if len(qubits) != len(m.args) {
			return p.errorf(tok, "gate %q expects %d qubits, got %d", name, len(m.args), len(qubits))
		}
		if len(params) != len(m.params) {
			return p.errorf(tok, "gate %q expects %d parameters, got %d", name, len(m.params), len(params))
		}
		env := make(map[string]float64, len(m.params))
		for i, pn := range m.params {
			env[pn] = params[i]
		}
		qenv := make(map[string]int, len(m.args))
		for i, an := range m.args {
			qenv[an] = qubits[i]
		}
		for _, op := range m.body {
			vals := make([]float64, len(op.params))
			for i, e := range op.params {
				v, err := e.eval(env)
				if err != nil {
					return p.errorf(tok, "in gate %q: %v", name, err)
				}
				vals[i] = v
			}
			qs := make([]int, len(op.args))
			for i, a := range op.args {
				q, ok := qenv[a]
				if !ok {
					return p.errorf(tok, "in gate %q: unknown qubit argument %q", name, a)
				}
				qs[i] = q
			}
			if err := p.applyGate(c, tok, op.name, vals, qs, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	// Built-in gate: normalize the QASM u1/u2/u3 family and CX alias.
	switch name {
	case "CX":
		name = "cx"
	case "u1":
		name = "rz"
	case "u2":
		if len(params) == 2 {
			params = []float64{math.Pi / 2, params[0], params[1]}
		}
		name = "u"
	case "id":
		return nil
	}
	g := circuit.Gate{Name: name, Qubits: qubits, Params: params}
	if err := c.Append(g); err != nil {
		return p.errorf(tok, "%v", err)
	}
	return nil
}

// parseExpr parses an angle expression: term (('+'|'-') term)*.
func (p *parser) parseExpr() (expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.advance().text[0]
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseTerm() (expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "*" || p.cur().text == "/") {
		op := p.advance().text[0]
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseFactor() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokSymbol && t.text == "-":
		p.advance()
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: '-', x: x}, nil
	case t.kind == tokSymbol && t.text == "+":
		p.advance()
		return p.parseFactor()
	case t.kind == tokSymbol && t.text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokNumber:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf(t, "bad number %q", t.text)
		}
		return numExpr(v), nil
	case t.kind == tokIdent:
		p.advance()
		return varExpr(t.text), nil
	default:
		return nil, p.errorf(t, "unexpected token %s in expression", t)
	}
}

// stripExt trims a trailing extension from a name; helper for callers naming
// circuits after files.
func stripExt(name string) string {
	if i := strings.LastIndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}
