package qasm

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"muzzle/internal/circuit"
)

// Write serializes the circuit as OpenQASM 2.0 to w. The output uses a
// single quantum register named q and a classical register c sized to the
// highest classical bit any measurement targets. Measurement wiring is
// emitted faithfully (measure q[i] -> c[Gate.Cbit]) and parameters use the
// shortest decimal form that round-trips exactly, so the output is stable
// under parse -> write -> parse.
func Write(w io.Writer, c *circuit.Circuit) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("qasm: refusing to write invalid circuit: %w", err)
	}
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	maxCbit := -1
	for _, g := range c.Gates {
		if g.Kind() == circuit.KindMeasure && g.Cbit > maxCbit {
			maxCbit = g.Cbit
		}
	}
	if maxCbit >= 0 {
		fmt.Fprintf(&b, "creg c[%d];\n", maxCbit+1)
	}
	for _, g := range c.Gates {
		switch g.Kind() {
		case circuit.KindBarrier:
			b.WriteString("barrier ")
			for i, q := range g.Qubits {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "q[%d]", q)
			}
			b.WriteString(";\n")
		case circuit.KindMeasure:
			fmt.Fprintf(&b, "measure q[%d] -> c[%d];\n", g.Qubits[0], g.Cbit)
		default:
			b.WriteString(g.Name)
			if len(g.Params) > 0 {
				b.WriteByte('(')
				for i, p := range g.Params {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(strconv.FormatFloat(p, 'g', -1, 64))
				}
				b.WriteByte(')')
			}
			b.WriteByte(' ')
			for i, q := range g.Qubits {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "q[%d]", q)
			}
			b.WriteString(";\n")
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteString serializes the circuit and returns the QASM source.
func WriteString(c *circuit.Circuit) (string, error) {
	var b strings.Builder
	if err := Write(&b, c); err != nil {
		return "", err
	}
	return b.String(), nil
}

// WriteFile serializes the circuit to the named file.
func WriteFile(path string, c *circuit.Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseFile reads and parses a QASM file; the circuit is named after the
// file stem.
func ParseFile(path string) (*circuit.Circuit, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return Parse(stripExt(base), string(data))
}
