package qasm

import (
	"testing"
)

// FuzzQASM exercises the parser on arbitrary input (it must reject or
// accept, never panic) and, for accepted programs, pins the round-trip
// property: writing the parsed circuit and re-parsing it reproduces the
// same register size and gate stream — names, operands, parameters, and
// measurement wiring included.
func FuzzQASM(f *testing.F) {
	seeds := []string{
		"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\ncx q[0],q[1];\n",
		"OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nrz(0.1) q[0];\nmeasure q -> c;\n",
		"OPENQASM 2.0;\nqreg a[2];\nqreg b[2];\ncreg c[4];\nbarrier a;\nmeasure b[1] -> c[3];\n",
		"OPENQASM 2.0;\nqreg q[4];\ngate foo a,b { cx a,b; h a; }\nfoo q[0],q[2];\n",
		"OPENQASM 2.0;\nqreg q[1];\nu2(pi/2,-pi/4) q[0];\n",
		"OPENQASM 2.0;\nqreg q[2];\ncp(0.25) q[0],q[1];\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse("fuzz", src)
		if err != nil {
			return // rejected input is fine; panics are the finding
		}
		out, err := WriteString(c)
		if err != nil {
			t.Fatalf("parsed circuit failed to serialize: %v", err)
		}
		back, err := Parse("fuzz", out)
		if err != nil {
			t.Fatalf("writer output failed to re-parse: %v\n%s", err, out)
		}
		if back.NumQubits != c.NumQubits {
			t.Fatalf("round trip changed register size: %d -> %d", c.NumQubits, back.NumQubits)
		}
		if len(back.Gates) != len(c.Gates) {
			t.Fatalf("round trip changed gate count: %d -> %d\n%s", len(c.Gates), len(back.Gates), out)
		}
		for i, g := range c.Gates {
			h := back.Gates[i]
			if g.Name != h.Name || len(g.Qubits) != len(h.Qubits) || len(g.Params) != len(h.Params) {
				t.Fatalf("gate %d changed: %v -> %v", i, g, h)
			}
			for j := range g.Qubits {
				if g.Qubits[j] != h.Qubits[j] {
					t.Fatalf("gate %d operand %d changed: %v -> %v", i, j, g, h)
				}
			}
			for j := range g.Params {
				if g.Params[j] != h.Params[j] {
					t.Fatalf("gate %d param %d changed: %g -> %g", i, j, g.Params[j], h.Params[j])
				}
			}
			if g.Kind().String() == "measure" && g.Cbit != h.Cbit {
				t.Fatalf("gate %d measurement wiring changed: c[%d] -> c[%d]", i, g.Cbit, h.Cbit)
			}
		}
	})
}
