// Package qasm implements a reader and writer for the subset of OpenQASM 2.0
// needed by the benchmark suite: a single quantum register, the standard
// gates recognised by the circuit package, barriers, and measurements.
//
// The Go ecosystem has no QASM support, so this package is built from
// scratch: a hand-written lexer, a recursive-descent parser with a small
// constant-expression evaluator for angle arguments (supporting pi, + - * /,
// unary minus and parentheses), and a deterministic writer whose output
// round-trips through the parser.
package qasm

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // single punctuation: ; , ( ) [ ] { } + - * / ->
	tokArrow
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("qasm: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	b := l.src[l.pos]
	l.pos++
	if b == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return b
}

// skipSpace consumes whitespace and // comments.
func (l *lexer) skipSpace() {
	for {
		b, ok := l.peekByte()
		if !ok {
			return
		}
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			l.advance()
		case b == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for {
				b, ok := l.peekByte()
				if !ok || b == '\n' {
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(b byte) bool {
	return b == '_' || unicode.IsLetter(rune(b))
}

func isIdentPart(b byte) bool {
	return b == '_' || unicode.IsLetter(rune(b)) || unicode.IsDigit(rune(b))
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	line, col := l.line, l.col
	b, ok := l.peekByte()
	if !ok {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	switch {
	case isIdentStart(b):
		start := l.pos
		for {
			b, ok := l.peekByte()
			if !ok || !isIdentPart(b) {
				break
			}
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	case isDigit(b) || b == '.':
		start := l.pos
		seenE := false
		for {
			b, ok := l.peekByte()
			if !ok {
				break
			}
			if isDigit(b) || b == '.' {
				l.advance()
				continue
			}
			if (b == 'e' || b == 'E') && !seenE {
				seenE = true
				l.advance()
				if nb, ok := l.peekByte(); ok && (nb == '+' || nb == '-') {
					l.advance()
				}
				continue
			}
			break
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: line, col: col}, nil
	case b == '"':
		l.advance()
		start := l.pos
		for {
			b, ok := l.peekByte()
			if !ok {
				return token{}, l.errorf("unterminated string")
			}
			if b == '"' {
				break
			}
			l.advance()
		}
		text := l.src[start:l.pos]
		l.advance() // closing quote
		return token{kind: tokString, text: text, line: line, col: col}, nil
	case b == '-':
		l.advance()
		if nb, ok := l.peekByte(); ok && nb == '>' {
			l.advance()
			return token{kind: tokArrow, text: "->", line: line, col: col}, nil
		}
		return token{kind: tokSymbol, text: "-", line: line, col: col}, nil
	case strings.IndexByte(";,()[]{}+*/=", b) >= 0:
		l.advance()
		return token{kind: tokSymbol, text: string(b), line: line, col: col}, nil
	default:
		return token{}, l.errorf("unexpected character %q", b)
	}
}

// lexAll tokenizes the whole input (used by the parser, which needs one token
// of lookahead).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
