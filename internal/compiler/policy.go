// Package compiler is the policy-parameterized QCCD compilation engine.
//
// It implements the machinery shared by the baseline QCCDSim compiler
// (internal/baseline) and the paper's optimized compiler (internal/core):
// native-gate decomposition, greedy initial mapping, the
// earliest-ready-gate-first schedule loop over the dependency DAG
// (Section III-B), shuttle routing along the trap topology, and
// traffic-block resolution. The three decision points the paper optimizes
// are injected as policies:
//
//   - Direction: which ion moves to co-locate a cross-trap 2Q gate
//     (Section III-A);
//   - Reorderer: optional opportunistic gate re-ordering when the favored
//     destination trap is full (Section III-B, Algorithm 1);
//   - Rebalancer: which ion leaves a full trap, and for which destination,
//     when a traffic block must be resolved (Section III-C, Algorithm 2).
//
// The engine feeds policies through a future-gate index (see index.go): a
// per-qubit, schedule-ordered view of the upcoming 2Q gates, maintained
// incrementally across cursor advances and Algorithm-1 hoists. Policies
// implementing the Windowed* interfaces consume O(1) Window descriptors and
// walk only the gates using the ions they score (O(deg) instead of
// O(lookahead) per query); the []int remaining parameter of the base
// interfaces remains supported and trace-equivalent for policies without a
// fast path.
package compiler

import (
	"muzzle/internal/circuit"
	"muzzle/internal/dag"
	"muzzle/internal/machine"
)

// Context is the read view policies get of the in-progress compilation.
type Context struct {
	// State is the live machine state (ion positions, capacities).
	State *machine.State
	// Graph is the dependency DAG of the decomposed circuit.
	Graph *dag.Graph
	// Circ is the decomposed (native-gate) circuit being compiled.
	Circ *circuit.Circuit
	// Executed marks gates already issued.
	Executed []bool
	// Protected lists ions a rebalancer should not evict if it has any
	// alternative: while the engine is co-locating the active gate's ions,
	// evicting one of them would undo the routing in progress. Rebalancers
	// may still evict a protected ion when a trap contains nothing else.
	Protected []int

	// idx is the engine-maintained future-gate index (see index.go); nil on
	// hand-built contexts and under Compiler.DisableIndex.
	idx *futureIndex
	// protMark is an engine-maintained per-ion membership bitmap mirroring
	// Protected, giving IsProtected an O(1) form; nil on hand-built
	// contexts (which fall back to scanning Protected).
	protMark []bool
	// avoidMark / avoidRef give Avoided an O(1) form for the avoid slice
	// the engine most recently marked (avoidRef records which one that is).
	avoidMark []bool
	avoidRef  []int
	// candBuf backs MaterializeWindow (reorderer candidate views).
	candBuf []int
}

// IsProtected reports whether ion is currently protected from eviction.
// With an engine-maintained mark bitmap the query is O(1); hand-built
// contexts fall back to scanning the (tiny) Protected slice.
//
//muzzle:hotpath
func (ctx *Context) IsProtected(ion int) bool {
	if ctx.protMark != nil {
		return ion < len(ctx.protMark) && ctx.protMark[ion]
	}
	for _, p := range ctx.Protected {
		if p == ion {
			return true
		}
	}
	return false
}

// Avoided reports whether trap t is in the avoid list. When the engine's
// avoid marks are current for this exact slice the query is O(1); otherwise
// it degrades to the linear InAvoid scan.
//
//muzzle:hotpath
func (ctx *Context) Avoided(avoid []int, t int) bool {
	if ctx.avoidMark != nil && len(avoid) == len(ctx.avoidRef) &&
		(len(avoid) == 0 || &avoid[0] == &ctx.avoidRef[0]) {
		return t < len(ctx.avoidMark) && ctx.avoidMark[t]
	}
	return InAvoid(avoid, t)
}

// Direction decides which ion shuttles to execute a cross-trap 2Q gate.
type Direction interface {
	// Name identifies the policy in reports.
	Name() string
	// Choose returns the ion to move (qa or qb) and the destination trap
	// (the other ion's trap). gateIdx is the active gate; remaining lists
	// the upcoming unexecuted 2Q gate indices in schedule order (capped by
	// the engine's lookahead).
	Choose(ctx *Context, gateIdx, qa, qb int, remaining []int) (moveIon, destTrap int)
}

// Rebalancer resolves a traffic block by moving one ion out of a full trap.
type Rebalancer interface {
	// Name identifies the policy in reports.
	Name() string
	// Choose selects the ion to evict from the blocked (full) trap and its
	// destination trap (which must have excess capacity). avoid lists traps
	// the engine is about to route through — sending the evicted ion there
	// would re-create the very block being resolved — and implementations
	// must prefer destinations outside it, falling back to avoided traps
	// only when nothing else has room. It returns an error only if no trap
	// in the machine can accept an ion.
	Choose(ctx *Context, blocked int, remaining []int, avoid []int) (ion, dest int, err error)
}

// InAvoid reports whether trap t is in the avoid list.
//
//muzzle:hotpath
func InAvoid(avoid []int, t int) bool {
	for _, a := range avoid {
		if a == t {
			return true
		}
	}
	return false
}

// PathClear reports whether every intermediate trap on the shortest path
// from -> to has excess capacity, i.e. an ion can be routed without
// triggering further traffic blocks. Rebalancers use it to prefer eviction
// destinations that are actually reachable — sending a victim down a
// blocked corridor spawns recursive evictions that can cycle (two full
// traps each needing the other cleared first). The walk follows the
// precomputed shortest-path table, so the query is allocation-free.
//
//muzzle:hotpath
func PathClear(st *machine.State, from, to int) bool {
	path := st.Config().Topology.Path(from, to)
	if len(path) <= 2 {
		return true // same or adjacent traps: no intermediates
	}
	for _, t := range path[1 : len(path)-1] {
		if st.IsFull(t) {
			return false
		}
	}
	return true
}

// Reorderer implements opportunistic gate re-ordering (Algorithm 1).
type Reorderer interface {
	// Name identifies the policy in reports.
	Name() string
	// Candidate examines pending gates and returns the position (index into
	// order, strictly greater than cursor) of a gate whose execution would
	// free a slot in fullTrap, or -1 if none qualifies. Implementations
	// must only return dependency-safe gates (all predecessors executed).
	Candidate(ctx *Context, order []int, cursor int, fullTrap int) int
}

// Remaining2Q collects up to limit unexecuted 2Q gate indices from order
// starting after position cursor, skipping position exclude (pass -1 to
// skip nothing). It is the naive-rescan form of the lookahead view handed
// to policies; the engine's default path derives the same view from the
// future-gate index (see index.go) and only falls back to this scan when
// the index is disabled. It remains the reference implementation the
// trace-equivalence tests compare against.
//
//muzzle:hotpath
func Remaining2Q(ctx *Context, order []int, cursor, limit, exclude int) []int {
	// Size from what can actually remain, not the lookahead cap: near the
	// end of a schedule the window holds only a handful of gates and a
	// fixed 512-capacity allocation per attempt is pure waste.
	capHint := max(0, min(limit, len(order)-cursor-1))
	out := make([]int, 0, capHint)
	for pos := cursor + 1; pos < len(order) && len(out) < limit; pos++ {
		if pos == exclude {
			continue
		}
		idx := order[pos]
		if ctx.Executed[idx] {
			continue
		}
		if ctx.Circ.Gates[idx].Is2Q() {
			out = append(out, idx)
		}
	}
	return out
}
