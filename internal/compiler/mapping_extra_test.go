package compiler

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"muzzle/internal/circuit"
	"muzzle/internal/machine"
	"muzzle/internal/topo"
)

func mapperCfg() machine.Config {
	return machine.Config{Topology: topo.Linear(4), Capacity: 6, CommCapacity: 2}
}

func clusteredCircuit() *circuit.Circuit {
	// Four cliques of 4 qubits each: optimal placement is one clique per
	// trap with zero cut.
	c := circuit.New("cliques", 16)
	for g := 0; g < 4; g++ {
		base := g * 4
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				c.Add2Q("ms", base+i, base+j)
			}
		}
	}
	return c
}

func validPlacement(t *testing.T, c *circuit.Circuit, cfg machine.Config, placement [][]int) {
	t.Helper()
	if len(placement) != cfg.Topology.NumTraps() {
		t.Fatalf("placement has %d traps", len(placement))
	}
	seen := map[int]bool{}
	for tr, chain := range placement {
		if len(chain) > cfg.MaxInitialLoad() {
			t.Fatalf("trap %d overloaded (%d ions)", tr, len(chain))
		}
		for _, q := range chain {
			if q < 0 || q >= c.NumQubits || seen[q] {
				t.Fatalf("bad/duplicate qubit %d", q)
			}
			seen[q] = true
		}
	}
	if len(seen) != c.NumQubits {
		t.Fatalf("placed %d of %d qubits", len(seen), c.NumQubits)
	}
}

func TestAllMappersProduceValidPlacements(t *testing.T) {
	c := clusteredCircuit()
	cfg := mapperCfg()
	mappers := []Placement{
		GreedyMapper{},
		RoundRobinMapper{},
		RandomMapper{Seed: 3},
		RefinedMapper{},
		RefinedMapper{Base: RandomMapper{Seed: 3}},
	}
	for _, m := range mappers {
		placement, err := m.Place(c, cfg)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		validPlacement(t, c, cfg, placement)
		if m.Name() == "" {
			t.Error("empty mapper name")
		}
	}
}

func TestMapperNames(t *testing.T) {
	if !strings.Contains((RefinedMapper{}).Name(), "greedy") {
		t.Errorf("refined default name = %q", (RefinedMapper{}).Name())
	}
	if !strings.Contains((RandomMapper{Seed: 7}).Name(), "7") {
		t.Errorf("random name = %q", (RandomMapper{Seed: 7}).Name())
	}
}

func TestGreedyBeatsRoundRobinOnClusters(t *testing.T) {
	c := clusteredCircuit()
	cfg := mapperCfg()
	greedy, err := (GreedyMapper{}).Place(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := (RoundRobinMapper{}).Place(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gw, rw := CutWeight(c, cfg, greedy), CutWeight(c, cfg, rr); gw >= rw {
		t.Errorf("greedy cut %d should beat round-robin cut %d on clustered circuits", gw, rw)
	}
	// Greedy finds the zero-cut solution here.
	if gw := CutWeight(c, cfg, greedy); gw != 0 {
		t.Errorf("greedy cut = %d, want 0 (one clique per trap)", gw)
	}
}

func TestRefinementNeverHurts(t *testing.T) {
	c := clusteredCircuit()
	cfg := mapperCfg()
	base, err := (RandomMapper{Seed: 99}).Place(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := (RefinedMapper{Base: RandomMapper{Seed: 99}}).Place(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bw, rw := CutWeight(c, cfg, base), CutWeight(c, cfg, refined)
	if rw > bw {
		t.Errorf("refinement increased cut: %d -> %d", bw, rw)
	}
	if rw == bw && bw > 0 {
		t.Logf("note: refinement found no improving swap (cut %d)", bw)
	}
}

func TestRefinementFindsClusterOptimum(t *testing.T) {
	// From a deliberately scrambled start, KL refinement should reach the
	// zero-cut clique placement (or very near it).
	c := clusteredCircuit()
	cfg := mapperCfg()
	refined, err := (RefinedMapper{Base: RandomMapper{Seed: 1}, MaxPasses: 20}).Place(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w := CutWeight(c, cfg, refined); w > 6 {
		t.Errorf("refined cut = %d, want near 0", w)
	}
}

func TestRoundRobinRespectsLoad(t *testing.T) {
	c := circuit.New("wide", 16)
	cfg := machine.Config{Topology: topo.Linear(4), Capacity: 5, CommCapacity: 1}
	placement, err := (RoundRobinMapper{}).Place(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	validPlacement(t, c, cfg, placement)
}

func TestMappersRejectOversubscription(t *testing.T) {
	c := circuit.New("huge", 50)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	for _, m := range []Placement{GreedyMapper{}, RoundRobinMapper{}, RandomMapper{}, RefinedMapper{}} {
		if _, err := m.Place(c, cfg); err == nil {
			t.Errorf("%s accepted oversubscription", m.Name())
		}
	}
}

func TestCompileWithMapper(t *testing.T) {
	c := clusteredCircuit()
	cfg := mapperCfg()
	resGreedy, err := testCompiler().CompileWithMapper(c, cfg, GreedyMapper{})
	if err != nil {
		t.Fatal(err)
	}
	resRandom, err := testCompiler().CompileWithMapper(c, cfg, RandomMapper{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The clique circuit compiles with zero shuttles under greedy mapping;
	// random mapping forces cross-trap traffic.
	if resGreedy.Shuttles != 0 {
		t.Errorf("greedy-mapped shuttles = %d, want 0", resGreedy.Shuttles)
	}
	if resRandom.Shuttles == 0 {
		t.Error("random-mapped clique circuit should need shuttles")
	}
}

// Property: every mapper yields a valid placement on random circuits, and
// KL refinement never increases the cut weight.
func TestQuickMappersValidAndMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		c := circuit.New("q", n)
		for i := 0; i < 10+rng.Intn(40); i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			c.Add2Q("ms", a, b)
		}
		cfg := machine.Config{Topology: topo.Linear(3), Capacity: 8, CommCapacity: 2}
		base, err := (RandomMapper{Seed: seed}).Place(c, cfg)
		if err != nil {
			return false
		}
		refined, err := (RefinedMapper{Base: RandomMapper{Seed: seed}}).Place(c, cfg)
		if err != nil {
			return false
		}
		// Valid placements.
		for _, p := range [][][]int{base, refined} {
			seen := map[int]bool{}
			total := 0
			for _, chain := range p {
				total += len(chain)
				for _, q := range chain {
					if seen[q] {
						return false
					}
					seen[q] = true
				}
			}
			if total != n {
				return false
			}
		}
		return CutWeight(c, cfg, refined) <= CutWeight(c, cfg, base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
