package compiler

import "fmt"

// Future-gate index: the engine's zero-rescan read path.
//
// The scheduling loop's policies (Direction, Reorderer, Rebalancer) all ask
// the same question — "which two-qubit gates are still coming up, and for
// which ions?" — and historically answered it by rescanning the order slice:
// every co-locate attempt rebuilt a lookahead-bounded remaining list
// (O(lookahead)), Algorithm 1 rebuilt it again per candidate, and the
// re-balancer's max-score selection walked the whole list once per ion in
// the blocked chain. The futureIndex replaces those rescans with three
// incrementally-maintained structures:
//
//   - pos: gate index -> current position in the schedule order;
//   - pending: the unexecuted 2Q gate indices in schedule order (a slice
//     whose head advances as gates execute);
//   - future: per-qubit schedule-ordered lists of the unexecuted 2Q gates
//     using that qubit.
//
// Policies then walk only the O(deg) gates that actually use the ions they
// are scoring — an O(n*lookahead) -> O(n*deg) complexity drop on the
// compile's read path — while a Window descriptor (computed in O(log n))
// reproduces the exact lookahead-cap and exclusion semantics of the naive
// Remaining2Q scan, keeping optimized and naive compilations
// trace-equivalent.
//
// Invariants policies may rely on while the index is live:
//
//   - FutureGates(q) lists exactly the unexecuted 2Q gates using q, in
//     schedule order (the active gate included when it uses q);
//   - GatePos is consistent with the engine's order slice at all times,
//     including immediately after Algorithm-1 hoists;
//   - a Window built by the engine matches the remaining slice the engine
//     would have materialized for the same lookahead and exclusion.
type futureIndex struct {
	// cursor mirrors the engine's cursor (order positions < cursor are
	// executed).
	cursor int
	// pos maps gate index -> current position in order.
	pos []int
	// pending lists unexecuted 2Q gate indices in ascending order position.
	// Executed gates are dropped from the head; hoisted gates move to the
	// head.
	pending []int
	// future[q] lists the unexecuted 2Q gate indices using qubit q, in
	// ascending order position. Qubits beyond the circuit register (spectator
	// ions) have no entry.
	future [][]int
}

// newFutureIndex builds the index from scratch for the given schedule order.
func newFutureIndex(ctx *Context, order []int) *futureIndex {
	n := len(order)
	idx := &futureIndex{
		pos:    make([]int, n),
		future: make([][]int, ctx.Circ.NumQubits),
	}
	// Exact-size arenas: one counting pass, then carve sub-slices.
	total2Q := 0
	deg := make([]int, ctx.Circ.NumQubits)
	for i, g := range ctx.Circ.Gates {
		if g.Is2Q() && !ctx.Executed[i] {
			total2Q++
			deg[g.Qubits[0]]++
			deg[g.Qubits[1]]++
		}
	}
	idx.pending = make([]int, 0, total2Q)
	futBuf := make([]int, 0, 2*total2Q)
	off := 0
	for q := range idx.future {
		idx.future[q] = futBuf[off : off : off+deg[q]]
		off += deg[q]
	}
	for p, gi := range order {
		idx.pos[gi] = p
		g := ctx.Circ.Gates[gi]
		if g.Is2Q() && !ctx.Executed[gi] {
			idx.pending = append(idx.pending, gi)
			idx.future[g.Qubits[0]] = append(idx.future[g.Qubits[0]], gi)
			idx.future[g.Qubits[1]] = append(idx.future[g.Qubits[1]], gi)
		}
	}
	return idx
}

// executed removes a finished gate from the index. The engine only executes
// the gate at the cursor, which by construction heads every list it is in.
//
//muzzle:hotpath
func (idx *futureIndex) executed(ctx *Context, gi int) {
	g := ctx.Circ.Gates[gi]
	if !g.Is2Q() {
		return
	}
	idx.pending = idx.pending[1:]
	idx.future[g.Qubits[0]] = idx.future[g.Qubits[0]][1:]
	idx.future[g.Qubits[1]] = idx.future[g.Qubits[1]][1:]
}

// hoisted re-indexes after the engine moved order[pos] to position cursor
// (shifting order[cursor:pos] right by one). order is the already-mutated
// slice. The hoisted gate becomes the schedule-first pending 2Q gate, so it
// moves to the head of every list it is in.
//
//muzzle:hotpath
func (idx *futureIndex) hoisted(ctx *Context, order []int, cursor, pos int) {
	for p := cursor; p <= pos; p++ {
		idx.pos[order[p]] = p
	}
	gi := order[cursor]
	moveToFront(idx.pending, gi)
	g := ctx.Circ.Gates[gi]
	moveToFront(idx.future[g.Qubits[0]], gi)
	moveToFront(idx.future[g.Qubits[1]], gi)
}

// moveToFront moves the (present) value v to index 0, shifting the prefix
// right; list order is otherwise preserved.
//
//muzzle:hotpath
func moveToFront(list []int, v int) {
	for i, x := range list {
		if x == v {
			copy(list[1:i+1], list[:i])
			list[0] = v
			return
		}
	}
	panic("compiler: future-gate index corrupt: gate missing from list")
}

// Window is an O(1) descriptor of one lookahead view: the pending 2Q gates
// strictly after the cursor, capped at the engine's lookahead, minus an
// optionally excluded gate. It reproduces exactly the contents of the slice
// Remaining2Q would materialize, without materializing it.
type Window struct {
	// Last is the order position of the last gate inside the window; -1
	// means the window is empty.
	Last int
	// Exclude is a gate index excluded from the window (-1: none).
	Exclude int
}

// HasIndex reports whether the engine maintains a future-gate index on this
// context. Policies with indexed fast paths must fall back to scanning the
// remaining slice when it is absent (hand-built contexts in tests, or a
// compiler running with DisableIndex).
func (ctx *Context) HasIndex() bool { return ctx.idx != nil }

// Cursor returns the engine's current schedule position, or -1 when no
// index is live (hand-built contexts, DisableIndex).
//
//muzzle:hotpath
func (ctx *Context) Cursor() int {
	if ctx.idx == nil {
		return -1
	}
	return ctx.idx.cursor
}

// GatePos returns gate gi's current position in the schedule order,
// reflecting any Algorithm-1 hoists performed so far.
func (ctx *Context) GatePos(gi int) int { return ctx.idx.pos[gi] }

// FutureGates returns the unexecuted 2Q gates using qubit q in schedule
// order. The first entry may be the active gate itself; policies scoring a
// lookahead window filter with InWindow. Ions outside the circuit register
// (spectators) return nil. The returned slice must not be modified.
//
//muzzle:hotpath
func (ctx *Context) FutureGates(q int) []int {
	if q < 0 || q >= len(ctx.idx.future) {
		return nil
	}
	return ctx.idx.future[q]
}

// NextUnexecuted returns the schedule-first unexecuted 2Q gate using qubit
// q, or -1 if none remains.
//
//muzzle:hotpath
func (ctx *Context) NextUnexecuted(q int) int {
	f := ctx.FutureGates(q)
	if len(f) == 0 {
		return -1
	}
	return f[0]
}

// InWindow reports whether gate gi belongs to window w: strictly after the
// cursor, at or before the window's last position, and not excluded.
//
//muzzle:hotpath
func (ctx *Context) InWindow(w Window, gi int) bool {
	p := ctx.idx.pos[gi]
	return p > ctx.idx.cursor && p <= w.Last && gi != w.Exclude
}

// Window computes the descriptor for the lookahead view of up to limit
// pending 2Q gates after the cursor, excluding gate excludeGate (-1: none).
// Cost is O(log n) (a binary search locating the excluded gate); no gates
// are scanned or copied.
//
//muzzle:hotpath
func (ctx *Context) Window(limit, excludeGate int) Window {
	idx := ctx.idx
	L := idx.pending
	for len(L) > 0 && idx.pos[L[0]] <= idx.cursor {
		L = L[1:] // skip the active gate
	}
	w := Window{Last: -1, Exclude: excludeGate}
	if len(L) == 0 || limit <= 0 {
		return w
	}
	if excludeGate < 0 {
		m := min(limit, len(L))
		w.Last = idx.pos[L[m-1]]
		return w
	}
	// k = rank of the excluded gate in L (len(L) if it lies outside).
	k := rankByPos(L, idx.pos, idx.pos[excludeGate])
	if k < len(L) && L[k] != excludeGate {
		k = len(L) // not a pending 2Q gate after the cursor; nothing excluded
	}
	effective := len(L)
	if k < len(L) {
		effective--
	}
	m := min(limit, effective)
	if m == 0 {
		return w
	}
	// The m-th included gate is L[m-1], or L[m] when the excluded gate sits
	// inside the first m entries.
	if k < m {
		w.Last = idx.pos[L[m]]
	} else {
		w.Last = idx.pos[L[m-1]]
	}
	return w
}

// rankByPos binary-searches the position-sorted gate list for the first
// entry at or after order position p.
//
//muzzle:hotpath
func rankByPos(list []int, pos []int, p int) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pos[list[mid]] < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AppendWindow materializes window w into buf (reusing its storage) in
// schedule order — the bridge from a Window descriptor to the []int
// remaining view of the legacy policy interfaces.
//
//muzzle:hotpath
func (ctx *Context) AppendWindow(buf []int, w Window) []int {
	buf = buf[:0]
	if w.Last < 0 {
		return buf
	}
	idx := ctx.idx
	for _, gi := range idx.pending {
		p := idx.pos[gi]
		if p <= idx.cursor {
			continue
		}
		if p > w.Last {
			break
		}
		if gi == w.Exclude {
			continue
		}
		buf = append(buf, gi)
	}
	return buf
}

// MaterializeWindow renders w into a context-owned scratch buffer (distinct
// from the engine's attempt-level buffer, so Algorithm-1 candidate scans
// cannot clobber the view the engine handed the Direction policy). The
// returned slice is valid until the next MaterializeWindow call.
func (ctx *Context) MaterializeWindow(w Window) []int {
	ctx.candBuf = ctx.AppendWindow(ctx.candBuf, w)
	return ctx.candBuf
}

// verify checks the incremental index against a from-scratch rebuild; it is
// the property-test hook for index maintenance (see index_test.go) and is
// not called in production paths.
func (idx *futureIndex) verify(ctx *Context, order []int) error {
	fresh := newFutureIndex(ctx, order)
	fresh.cursor = idx.cursor
	if !equalInts(idx.pending, fresh.pending) {
		return indexDiff("pending", idx.pending, fresh.pending)
	}
	for i, p := range fresh.pos {
		if idx.pos[i] != p {
			return indexDiff("pos", idx.pos, fresh.pos)
		}
	}
	for q := range fresh.future {
		if !equalInts(idx.future[q], fresh.future[q]) {
			return indexDiff("future", idx.future[q], fresh.future[q])
		}
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type indexError struct {
	field     string
	got, want any
}

func indexDiff(field string, got, want any) error {
	return &indexError{field: field, got: got, want: want}
}

func (e *indexError) Error() string {
	return fmt.Sprintf("compiler: future-gate index diverged on %s: incremental %v, rebuilt %v", e.field, e.got, e.want)
}

// WindowedDirection is a Direction with an indexed fast path: the engine
// hands it a Window descriptor instead of materializing the remaining
// slice. Implementations must produce exactly the decision Choose would
// make on the materialized window.
type WindowedDirection interface {
	Direction
	ChooseWindowed(ctx *Context, gateIdx, qa, qb int, w Window) (moveIon, destTrap int)
}

// WindowedRebalancer is a Rebalancer with an indexed fast path; the same
// contract as WindowedDirection applies.
type WindowedRebalancer interface {
	Rebalancer
	ChooseWindowed(ctx *Context, blocked int, w Window, avoid []int) (ion, dest int, err error)
}
