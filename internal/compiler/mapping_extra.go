package compiler

import (
	"context"
	"fmt"
	"math/rand"

	"muzzle/internal/circuit"
	"muzzle/internal/machine"
)

// The paper notes (Section IV-E3) that "different initial mapping policies
// can be explored" beyond the greedy policy it adopts. This file provides
// that exploration surface: a Placement policy interface, round-robin and
// seeded-random baselines, and a Kernighan-Lin-style refinement pass that
// improves any starting placement by swapping qubit pairs across traps when
// the swap reduces the weighted cut (the number of 2Q gates crossing
// traps). The ablation benchmarks compare them.

// Placement computes an initial qubit-to-trap assignment. placement[t]
// lists the ions of trap t in chain order; qubit i becomes ion i.
type Placement interface {
	// Name identifies the policy in reports.
	Name() string
	// Place computes the placement for circuit c on machine cfg.
	Place(c *circuit.Circuit, cfg machine.Config) ([][]int, error)
}

// GreedyMapper is the paper's default policy (GreedyPlacement).
type GreedyMapper struct{}

// Name implements Placement.
func (GreedyMapper) Name() string { return "greedy" }

// Place implements Placement.
func (GreedyMapper) Place(c *circuit.Circuit, cfg machine.Config) ([][]int, error) {
	return GreedyPlacement(c, cfg)
}

// RoundRobinMapper deals qubits to traps in index order — the simplest
// possible baseline, oblivious to the interaction graph.
type RoundRobinMapper struct{}

// Name implements Placement.
func (RoundRobinMapper) Name() string { return "round-robin" }

// Place implements Placement.
func (RoundRobinMapper) Place(c *circuit.Circuit, cfg machine.Config) ([][]int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nTraps := cfg.Topology.NumTraps()
	maxLoad := cfg.MaxInitialLoad()
	if c.NumQubits > nTraps*maxLoad {
		return nil, fmt.Errorf("compiler: %d qubits exceed machine initial capacity %d", c.NumQubits, nTraps*maxLoad)
	}
	placement := make([][]int, nTraps)
	t := 0
	for q := 0; q < c.NumQubits; q++ {
		for len(placement[t]) >= maxLoad {
			t = (t + 1) % nTraps
		}
		placement[t] = append(placement[t], q)
		t = (t + 1) % nTraps
	}
	return placement, nil
}

// RandomMapper shuffles qubits into traps reproducibly from a seed; the
// worst-case-ish baseline for mapping studies.
type RandomMapper struct {
	Seed int64
}

// Name implements Placement.
func (m RandomMapper) Name() string { return fmt.Sprintf("random(seed=%d)", m.Seed) }

// Place implements Placement.
func (m RandomMapper) Place(c *circuit.Circuit, cfg machine.Config) ([][]int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nTraps := cfg.Topology.NumTraps()
	maxLoad := cfg.MaxInitialLoad()
	if c.NumQubits > nTraps*maxLoad {
		return nil, fmt.Errorf("compiler: %d qubits exceed machine initial capacity %d", c.NumQubits, nTraps*maxLoad)
	}
	rng := rand.New(rand.NewSource(m.Seed))
	perm := rng.Perm(c.NumQubits)
	placement := make([][]int, nTraps)
	t := 0
	for _, q := range perm {
		for len(placement[t]) >= maxLoad {
			t = (t + 1) % nTraps
		}
		placement[t] = append(placement[t], q)
		t = (t + 1) % nTraps
	}
	return placement, nil
}

// RefinedMapper wraps another placement policy with a Kernighan-Lin-style
// pairwise-swap refinement: while some cross-trap qubit swap strictly
// reduces the weighted edge cut (weight = number of 2Q gates between the
// pair, scaled by trap distance), apply the best such swap. Passes are
// bounded, so refinement always terminates.
type RefinedMapper struct {
	// Base is the starting policy (nil means GreedyMapper).
	Base Placement
	// MaxPasses bounds refinement sweeps (0 means 8).
	MaxPasses int
}

// Name implements Placement.
func (m RefinedMapper) Name() string {
	base := m.base().Name()
	return "kl-refined(" + base + ")"
}

func (m RefinedMapper) base() Placement {
	if m.Base != nil {
		return m.Base
	}
	return GreedyMapper{}
}

func (m RefinedMapper) maxPasses() int {
	if m.MaxPasses > 0 {
		return m.MaxPasses
	}
	return 8
}

// Place implements Placement.
func (m RefinedMapper) Place(c *circuit.Circuit, cfg machine.Config) ([][]int, error) {
	placement, err := m.base().Place(c, cfg)
	if err != nil {
		return nil, err
	}
	top := cfg.Topology
	trapOf := make([]int, c.NumQubits)
	for t, chain := range placement {
		for _, q := range chain {
			trapOf[q] = t
		}
	}
	// Interaction weights.
	type edge struct {
		a, b, w int
	}
	var edges []edge
	for key, w := range c.InteractionCount() {
		edges = append(edges, edge{a: key / c.NumQubits, b: key % c.NumQubits, w: w})
	}
	// cost is the placement objective: sum over interacting pairs of
	// weight x topology distance between their traps.
	cost := func() int {
		s := 0
		for _, e := range edges {
			s += e.w * top.Distance(trapOf[e.a], trapOf[e.b])
		}
		return s
	}
	// qubitCost isolates one qubit's contribution for delta evaluation.
	qubitCost := func(q, at int) int {
		s := 0
		for _, e := range edges {
			switch q {
			case e.a:
				other := trapOf[e.b]
				if e.b == q {
					other = at
				}
				s += e.w * top.Distance(at, other)
			case e.b:
				s += e.w * top.Distance(trapOf[e.a], at)
			}
		}
		return s
	}
	cur := cost()
	for pass := 0; pass < m.maxPasses(); pass++ {
		improved := false
		for qa := 0; qa < c.NumQubits; qa++ {
			for qb := qa + 1; qb < c.NumQubits; qb++ {
				ta, tb := trapOf[qa], trapOf[qb]
				if ta == tb {
					continue
				}
				before := qubitCost(qa, ta) + qubitCost(qb, tb)
				trapOf[qa], trapOf[qb] = tb, ta
				after := qubitCost(qa, tb) + qubitCost(qb, ta)
				if after < before {
					cur += after - before
					improved = true
				} else {
					trapOf[qa], trapOf[qb] = ta, tb
				}
			}
		}
		if !improved {
			break
		}
	}
	_ = cur
	// Rebuild chains preserving the per-trap relative order of the base
	// placement where possible.
	out := make([][]int, top.NumTraps())
	for _, chain := range placement {
		for _, q := range chain {
			out[trapOf[q]] = append(out[trapOf[q]], q)
		}
	}
	return out, nil
}

// CutWeight returns the placement objective used by RefinedMapper: the sum
// over interacting qubit pairs of (gate count x trap distance). Exposed for
// tests and mapping studies.
func CutWeight(c *circuit.Circuit, cfg machine.Config, placement [][]int) int {
	trapOf := make([]int, c.NumQubits)
	for t, chain := range placement {
		for _, q := range chain {
			trapOf[q] = t
		}
	}
	s := 0
	for key, w := range c.InteractionCount() {
		a, b := key/c.NumQubits, key%c.NumQubits
		s += w * cfg.Topology.Distance(trapOf[a], trapOf[b])
	}
	return s
}

// CompileWithMapper runs the compiler using an explicit placement policy
// instead of the default greedy mapping.
//
//muzzle:ctx-background legacy ctx-less API; cancelable callers use CompileWithMapperContext
func (c *Compiler) CompileWithMapper(circ *circuit.Circuit, cfg machine.Config, mapper Placement) (*Result, error) {
	return c.CompileWithMapperContext(context.Background(), circ, cfg, mapper)
}

// CompileWithMapperContext is CompileWithMapper with cooperative
// cancellation.
func (c *Compiler) CompileWithMapperContext(ctx context.Context, circ *circuit.Circuit, cfg machine.Config, mapper Placement) (*Result, error) {
	native, err := circuit.Decompose(circ)
	if err != nil {
		return nil, err
	}
	placement, err := mapper.Place(native, cfg)
	if err != nil {
		return nil, err
	}
	return c.CompileMappedContext(ctx, native, cfg, placement)
}
