package compiler

import (
	"strings"
	"testing"

	"muzzle/internal/circuit"
	"muzzle/internal/machine"
	"muzzle/internal/topo"
)

// farFitRebalancer always evicts toward the highest-index trap with room,
// forcing hole shifts across saturated corridors.
type farFitRebalancer struct{}

func (farFitRebalancer) Name() string { return "far-fit" }
func (farFitRebalancer) Choose(ctx *Context, blocked int, remaining []int, avoid []int) (int, int, error) {
	st := ctx.State
	for t := st.NumTraps() - 1; t >= 0; t-- {
		if t != blocked && st.ExcessCapacity(t) > 0 {
			return st.Chain(blocked)[0], t, nil
		}
	}
	return -1, -1, errNoRoom
}

// TestHoleShiftAcrossSaturatedCorridor reproduces the saturated-corridor
// scenario that defeats naive recursive eviction: T0..T2 full, space only at
// the far end. The hole shift must resolve it with one ion moved per
// corridor trap and no livelock.
func TestHoleShiftAcrossSaturatedCorridor(t *testing.T) {
	// L4, capacity 3: T0=[0 1 2] T1=[3 4 5] T2=[6 7 8] T3=[9] (EC 2).
	// Gate (0, 3): direction moves ion 0 into T1 (full). Flip unavailable
	// (T0 full too) -> rebalance T1. farFit sends the victim toward T3;
	// the corridor T2 is full, so a hole shift must move one T2 ion to T3
	// first.
	c := circuit.New("x", 10)
	c.Add2Q("ms", 0, 3)
	cfg := machine.Config{Topology: topo.Linear(4), Capacity: 3, CommCapacity: 0}
	comp := &Compiler{Direction: firstIonDirection{}, Rebalancer: farFitRebalancer{}}
	res, err := comp.CompileMapped(c, cfg, [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalances == 0 {
		t.Fatal("expected a rebalance")
	}
	// Invariants already checked by CompileMapped; verify the gate landed.
	last := res.Ops[len(res.Ops)-1]
	if last.Kind != machine.OpGate2Q {
		t.Fatalf("final op = %v", last)
	}
}

// TestHoleShiftSkipsProtectedIons verifies the shift never grabs the active
// gate's operands when alternatives exist.
func TestHoleShiftSkipsProtectedIons(t *testing.T) {
	// Gate (0, 5): ion 5 lives in the middle of saturated T1; the shift
	// through T1 must move some other ion.
	c := circuit.New("x", 8)
	c.Add2Q("ms", 0, 5)
	cfg := machine.Config{Topology: topo.Linear(3), Capacity: 3, CommCapacity: 0}
	comp := &Compiler{Direction: firstIonDirection{}, Rebalancer: farFitRebalancer{}}
	// T0=[0 1 2] full, T1=[4 5 6] full, T2=[7] roomy.
	res, err := comp.CompileMapped(c, cfg, [][]int{{0, 1, 2}, {4, 5, 6}, {3, 7}})
	if err != nil {
		t.Fatal(err)
	}
	// Ion 5 must end co-located with ion 0; the trace must not move ion 5
	// out of whatever trap hosts the gate before the gate runs.
	var gateOp machine.Op
	for _, op := range res.Ops {
		if op.Kind == machine.OpGate2Q {
			gateOp = op
		}
	}
	if gateOp.Name == "" {
		t.Fatal("gate never executed")
	}
}

// TestRouteBudgetError verifies the engine reports a clean error when the
// rebalance budget is exhausted rather than spinning.
func TestRouteBudgetError(t *testing.T) {
	c := circuit.New("x", 8)
	c.Add2Q("ms", 0, 4)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 0}
	comp := &Compiler{Direction: firstIonDirection{}, Rebalancer: lowestFitRebalancer{}, MaxRebalanceDepth: 1}
	// Both traps full: flip impossible, rebalance impossible (no room
	// anywhere) -> must error mentioning the block.
	_, err := comp.CompileMapped(c, cfg, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "traffic block") && !strings.Contains(err.Error(), "budget") && !strings.Contains(err.Error(), "co-locate") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// TestShiftIonPicksFacingEdge checks shiftIon's direction convention and
// protected-skipping.
func TestShiftIonPicksFacingEdge(t *testing.T) {
	cfg := machine.Config{Topology: topo.Linear(3), Capacity: 4, CommCapacity: 0}
	st, err := machine.NewState(cfg, [][]int{{0, 1, 2}, {3}, {4}})
	if err != nil {
		t.Fatal(err)
	}
	e := &engine{st: st, ctx: &Context{State: st}}
	// Moving right (to trap 1 > trap 0): pick the high-end ion (2).
	if got := e.shiftIon(0, 1); got != 2 {
		t.Errorf("shiftIon right = %d, want 2", got)
	}
	// With ion 2 protected: pick the next one inward (1).
	e.ctx.Protected = []int{2}
	if got := e.shiftIon(0, 1); got != 1 {
		t.Errorf("shiftIon protected = %d, want 1", got)
	}
	// All protected: fall back to the facing edge.
	e.ctx.Protected = []int{0, 1, 2}
	if got := e.shiftIon(0, 1); got != 2 {
		t.Errorf("shiftIon all-protected = %d, want 2 (edge fallback)", got)
	}
	// Moving left from trap 2 toward trap 1: low-end ion.
	e.ctx.Protected = nil
	if got := e.shiftIon(2, 1); got != 4 {
		t.Errorf("shiftIon left = %d, want 4", got)
	}
}

// TestCompileOnGridAndRing exercises the engine on non-linear topologies.
func TestCompileOnGridAndRing(t *testing.T) {
	for _, tp := range []*topo.Topology{topo.Grid(2, 3), topo.Ring(6)} {
		cfg := machine.Config{Topology: tp, Capacity: 5, CommCapacity: 1}
		c := circuit.New("t", 18)
		for i := 0; i < 18; i++ {
			for j := i + 5; j < 18; j += 7 {
				c.Add2Q("ms", i, j)
			}
		}
		res, err := testCompiler().Compile(c, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tp.Name(), err)
		}
		if res.Gates2Q != c.Count2Q() {
			t.Errorf("%s: executed %d gates, want %d", tp.Name(), res.Gates2Q, c.Count2Q())
		}
	}
}

// TestCompileTimeRecorded ensures Table III's metric is populated.
func TestCompileTimeRecorded(t *testing.T) {
	c := circuit.New("x", 4)
	c.Add2Q("ms", 0, 2)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	res, err := testCompiler().CompileMapped(c, cfg, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompileTime <= 0 {
		t.Error("CompileTime not recorded")
	}
}
