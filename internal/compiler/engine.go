package compiler

import (
	"context"
	"fmt"
	"time"

	"muzzle/internal/circuit"
	"muzzle/internal/dag"
	"muzzle/internal/machine"
)

// Default engine limits; see the complexity discussions in paper
// Sections III-A4, III-B1, III-C3 — lookahead and re-order scans are what
// keep the O(n^2) worst case tractable in practice.
const (
	// DefaultLookahead caps how many upcoming 2Q gates a policy sees.
	DefaultLookahead = 512
	// DefaultMaxReorderChain caps consecutive Algorithm-1 hoists without an
	// executed gate, preventing livelock between mutually-blocking gates.
	DefaultMaxReorderChain = 25
	// DefaultMaxRebalanceDepth caps the evictions spent resolving the
	// traffic blocks of a single routing operation.
	DefaultMaxRebalanceDepth = 64
)

// Compiler compiles circuits for a multi-trap machine using the configured
// policies. The zero value is not usable; Direction and Rebalancer are
// mandatory, Reorderer is optional (the baseline compiler has none).
type Compiler struct {
	Direction  Direction
	Reorderer  Reorderer
	Rebalancer Rebalancer
	// Lookahead caps remaining-gate scans (0 means DefaultLookahead).
	Lookahead int
	// MaxReorderChain caps consecutive hoists (0 means default).
	MaxReorderChain int
	// MaxRebalanceDepth caps recursive rebalancing (0 means default).
	MaxRebalanceDepth int
	// DisableIndex turns off the future-gate index and runs the engine on
	// the naive rescan read path (a fresh Remaining2Q slice per co-locate
	// attempt). The two paths are trace-equivalent by contract; this knob
	// exists so equivalence tests and benchmarks can pin the naive
	// reference. Production callers should leave it false.
	DisableIndex bool

	// verifyIndex makes the engine check the incremental index against a
	// from-scratch rebuild after every mutation; O(n) per mutation,
	// test-only (see index_test.go).
	verifyIndex bool
}

// Result is the outcome of one compilation.
type Result struct {
	// Circ is the decomposed native-gate circuit that was scheduled.
	Circ *circuit.Circuit
	// Config is the machine the program was compiled for.
	Config machine.Config
	// InitialPlacement is the starting trap contents (ion chains).
	InitialPlacement [][]int
	// Ops is the full execution trace (gates + shuttle primitives).
	Ops []machine.Op
	// Order is the final gate execution order (indices into Circ.Gates).
	Order []int
	// Shuttles is the number of MOVE operations — the paper's headline
	// metric (Table II).
	Shuttles int
	// Swaps, Splits, Merges count the other shuttle primitives.
	Swaps, Splits, Merges int
	// Gates2Q and Gates1Q count executed gates.
	Gates2Q, Gates1Q int
	// Reorders counts Algorithm-1 hoists performed.
	Reorders int
	// Rebalances counts traffic-block resolutions performed.
	Rebalances int
	// CompileTime is the wall-clock compilation duration (Table III).
	CompileTime time.Duration
	// DirectionPolicy, RebalancePolicy, ReorderPolicy record the policy
	// names for reporting.
	DirectionPolicy, RebalancePolicy, ReorderPolicy string
}

func (c *Compiler) lookahead() int {
	if c.Lookahead > 0 {
		return c.Lookahead
	}
	return DefaultLookahead
}

func (c *Compiler) maxReorderChain() int {
	if c.MaxReorderChain > 0 {
		return c.MaxReorderChain
	}
	return DefaultMaxReorderChain
}

func (c *Compiler) maxRebalanceDepth() int {
	if c.MaxRebalanceDepth > 0 {
		return c.MaxRebalanceDepth
	}
	return DefaultMaxRebalanceDepth
}

// Compile decomposes circ to the native gate set, computes a greedy initial
// placement, and schedules the program.
//
//muzzle:ctx-background legacy ctx-less API; cancelable callers use CompileContext
func (c *Compiler) Compile(circ *circuit.Circuit, cfg machine.Config) (*Result, error) {
	return c.CompileContext(context.Background(), circ, cfg)
}

// CompileContext is Compile with cooperative cancellation: the scheduling
// loop checks ctx once per gate and aborts with ctx.Err() when it fires.
func (c *Compiler) CompileContext(ctx context.Context, circ *circuit.Circuit, cfg machine.Config) (*Result, error) {
	native, err := circuit.Decompose(circ)
	if err != nil {
		return nil, err
	}
	placement, err := GreedyPlacement(native, cfg)
	if err != nil {
		return nil, err
	}
	return c.CompileMappedContext(ctx, native, cfg, placement)
}

// CompileMapped schedules an already-native circuit from an explicit initial
// placement. placement[t] lists the ions (== qubit ids) initially in trap t.
//
//muzzle:ctx-background legacy ctx-less API; cancelable callers use CompileMappedContext
func (c *Compiler) CompileMapped(native *circuit.Circuit, cfg machine.Config, placement [][]int) (*Result, error) {
	return c.CompileMappedContext(context.Background(), native, cfg, placement)
}

// CompileMappedContext is CompileMapped with cooperative cancellation.
func (c *Compiler) CompileMappedContext(ctx context.Context, native *circuit.Circuit, cfg machine.Config, placement [][]int) (*Result, error) {
	start := time.Now()
	if c.Direction == nil || c.Rebalancer == nil {
		return nil, fmt.Errorf("compiler: Direction and Rebalancer policies are mandatory")
	}
	if err := native.Validate(); err != nil {
		return nil, err
	}
	for i, g := range native.Gates {
		if !circuit.IsNative(g.Name) {
			return nil, fmt.Errorf("compiler: gate %d (%q) is not native; call Compile or Decompose first", i, g.Name)
		}
	}
	st, err := machine.NewState(cfg, placement)
	if err != nil {
		return nil, err
	}
	if st.NumIons() < native.NumQubits {
		return nil, fmt.Errorf("compiler: placement has %d ions, circuit needs %d", st.NumIons(), native.NumQubits)
	}
	// Every gate records at least one trace op and shuttles add a few more;
	// reserving up front keeps slice-growth copies out of the hot loop.
	st.ReserveOps(len(native.Gates) + len(native.Gates)/4)

	e := &engine{
		c:      c,
		st:     st,
		cancel: ctx,
		ctx:    &Context{State: st, Graph: dag.Build(native), Circ: native, Executed: make([]bool, len(native.Gates))},
	}
	res := &Result{
		Circ:             native,
		Config:           cfg,
		InitialPlacement: st.Snapshot(),
		DirectionPolicy:  c.Direction.Name(),
		RebalancePolicy:  c.Rebalancer.Name(),
	}
	if c.Reorderer != nil {
		res.ReorderPolicy = c.Reorderer.Name()
	}
	if err := e.run(res); err != nil {
		return nil, err
	}
	if err := st.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("compiler: post-compile invariant violation: %w", err)
	}
	res.Ops = st.Ops()
	res.Shuttles = st.Shuttles()
	res.Swaps = st.OpCount(machine.OpSwap)
	res.Splits = st.OpCount(machine.OpSplit)
	res.Merges = st.OpCount(machine.OpMerge)
	res.Gates2Q = st.OpCount(machine.OpGate2Q)
	res.Gates1Q = st.OpCount(machine.OpGate1Q)
	res.CompileTime = time.Since(start)
	return res, nil
}

// engine carries the mutable compilation loop state.
type engine struct {
	c      *Compiler
	st     *machine.State
	cancel context.Context
	ctx    *Context
	res    *Result
	order  []int
	// remBuf is the reusable backing array for materialized remaining
	// views handed to policies without an indexed fast path.
	remBuf []int
	// protBuf backs ctx.Protected so co-locating a gate allocates nothing.
	protBuf [2]int
	// dirWindowed / rebWindowed record whether the configured policies take
	// Window descriptors directly (resolved once per compile).
	dirWindowed bool
	rebWindowed bool
}

//muzzle:hotpath
func (e *engine) run(res *Result) error {
	e.res = res
	n := len(e.ctx.Circ.Gates)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	e.order = order
	if !e.c.DisableIndex {
		e.ctx.idx = newFutureIndex(e.ctx, order)
		e.ctx.protMark = make([]bool, e.st.NumIons())
		e.ctx.avoidMark = make([]bool, e.st.NumTraps())
		_, e.dirWindowed = e.c.Direction.(WindowedDirection)
		_, e.rebWindowed = e.c.Rebalancer.(WindowedRebalancer)
	}
	cursor := 0
	reorderChain := 0
	for cursor < n {
		if err := e.cancel.Err(); err != nil {
			return fmt.Errorf("compiler: canceled at gate %d/%d: %w", cursor, n, err)
		}
		active := order[cursor]
		g := e.ctx.Circ.Gates[active]
		switch g.Kind() {
		case circuit.KindBarrier:
			e.finish(active, &cursor, &reorderChain)
		case circuit.Kind1Q, circuit.KindMeasure:
			e.st.ApplyGate1Q(g.Name, g.Qubits[0], active)
			e.finish(active, &cursor, &reorderChain)
		case circuit.Kind2Q:
			qa, qb := g.Qubits[0], g.Qubits[1]
			hoisted, err := e.coLocate(active, qa, qb, order, cursor, reorderChain)
			if err != nil {
				return fmt.Errorf("compiler: gate %d (%s): %w", active, g, err)
			}
			if hoisted {
				reorderChain++
				res.Reorders++
				continue // the hoisted gate is the new active gate
			}
			if err := e.st.ApplyGate2Q(g.Name, qa, qb, active); err != nil {
				return err
			}
			e.finish(active, &cursor, &reorderChain)
		}
	}
	res.Order = order
	return nil
}

// maxCoLocateAttempts bounds the direction/route retry loop; a retry only
// happens in the rare case a rebalance evicted the active gate's partner.
const maxCoLocateAttempts = 8

// coLocate brings the active gate's ions into one trap. It returns
// hoisted=true if, instead of shuttling, a pending gate was re-ordered in
// front of the active gate (Algorithm 1) — in that case the caller must
// re-enter the loop without advancing the cursor.
//
// On the indexed path (the default) the lookahead view is an O(1) Window
// descriptor; windowed policies consume it directly and legacy policies get
// it materialized into a reusable buffer. With DisableIndex the engine runs
// the original naive rescan, allocating a fresh Remaining2Q slice per
// attempt — the reference behavior the indexed path is tested against.
//
//muzzle:hotpath
func (e *engine) coLocate(active, qa, qb int, order []int, cursor, reorderChain int) (bool, error) {
	e.setProtected(qa, qb)
	defer e.clearProtected()
	hasIdx := e.ctx.idx != nil
	for attempt := 0; !e.st.CoLocated(qa, qb); attempt++ {
		if attempt >= maxCoLocateAttempts {
			return false, fmt.Errorf("could not co-locate ions %d and %d after %d attempts", qa, qb, attempt)
		}
		var (
			remaining []int
			win       Window
		)
		if hasIdx {
			win = e.ctx.Window(e.c.lookahead(), -1)
			if !e.dirWindowed || !e.rebWindowed {
				e.remBuf = e.ctx.AppendWindow(e.remBuf, win)
				remaining = e.remBuf
			}
		} else {
			remaining = Remaining2Q(e.ctx, order, cursor, e.c.lookahead(), -1)
		}
		var moveIon, dest int
		if hasIdx && e.dirWindowed {
			moveIon, dest = e.c.Direction.(WindowedDirection).ChooseWindowed(e.ctx, active, qa, qb, win)
		} else {
			moveIon, dest = e.c.Direction.Choose(e.ctx, active, qa, qb, remaining)
		}
		if err := validateDecision(e.ctx, qa, qb, moveIon, dest); err != nil {
			return false, err
		}
		if attempt == 0 && e.st.IsFull(dest) && e.c.Reorderer != nil && reorderChain < e.c.maxReorderChain() {
			if pos := e.c.Reorderer.Candidate(e.ctx, order, cursor, dest); pos > cursor {
				hoist(order, cursor, pos)
				if hasIdx {
					e.ctx.idx.hoisted(e.ctx, order, cursor, pos)
					e.checkIndex(order)
				}
				return true, nil
			}
		}
		if e.st.IsFull(dest) {
			// The favorable destination stays full (no re-ordering
			// opportunity): moving the partner the other way costs one
			// shuttle, whereas evicting a bystander costs at least two
			// (eviction + the original move). Flip the direction when the
			// opposite trap has room; only when both traps are full does
			// the engine fall through to re-balancing.
			other := qa
			if moveIon == qa {
				other = qb
			}
			if otherDest := e.st.IonTrap(moveIon); !e.st.IsFull(otherDest) {
				moveIon, dest = other, otherDest
			}
		}
		budget := e.c.maxRebalanceDepth()
		if err := e.routeWithRebalance(moveIon, dest, remaining, win, &budget); err != nil {
			return false, err
		}
	}
	return false, nil
}

// finish marks a gate executed and advances the cursor, keeping the
// future-gate index in step.
//
//muzzle:hotpath
func (e *engine) finish(active int, cursor *int, reorderChain *int) {
	e.ctx.Executed[active] = true
	*cursor++
	*reorderChain = 0
	if idx := e.ctx.idx; idx != nil {
		idx.executed(e.ctx, active)
		idx.cursor = *cursor
		e.checkIndex(e.order)
	}
}

// setProtected marks the active gate's operands (backed by a fixed engine
// buffer plus the O(1) mark bitmap — no per-gate allocation).
//
//muzzle:hotpath
func (e *engine) setProtected(qa, qb int) {
	e.protBuf[0], e.protBuf[1] = qa, qb
	e.ctx.Protected = e.protBuf[:2]
	if e.ctx.protMark != nil {
		e.ctx.protMark[qa] = true
		e.ctx.protMark[qb] = true
	}
}

//muzzle:hotpath
func (e *engine) clearProtected() {
	if e.ctx.protMark != nil {
		for _, p := range e.ctx.Protected {
			e.ctx.protMark[p] = false
		}
	}
	e.ctx.Protected = nil
}

// setAvoid publishes the avoid list into the O(1) mark bitmap; clearAvoid
// retracts it.
//
//muzzle:hotpath
func (e *engine) setAvoid(avoid []int) {
	if e.ctx.avoidMark == nil {
		return
	}
	for _, t := range avoid {
		e.ctx.avoidMark[t] = true
	}
	e.ctx.avoidRef = avoid
}

//muzzle:hotpath
func (e *engine) clearAvoid() {
	if e.ctx.avoidMark == nil {
		return
	}
	for _, t := range e.ctx.avoidRef {
		e.ctx.avoidMark[t] = false
	}
	e.ctx.avoidRef = nil
}

// checkIndex is the verifyIndex test hook: it cross-checks the incremental
// index against a from-scratch rebuild and panics on divergence (a panic
// here is always an engine bug; see index_test.go).
func (e *engine) checkIndex(order []int) {
	if !e.c.verifyIndex {
		return
	}
	if err := e.ctx.idx.verify(e.ctx, order); err != nil {
		panic(err)
	}
}

// validateDecision guards against mis-behaving policies.
//
//muzzle:hotpath
func validateDecision(ctx *Context, qa, qb, moveIon, dest int) error {
	if moveIon != qa && moveIon != qb {
		return fmt.Errorf("compiler: direction policy chose ion %d, not an operand of (%d,%d)", moveIon, qa, qb)
	}
	other := qa
	if moveIon == qa {
		other = qb
	}
	if got := ctx.State.IonTrap(other); got != dest {
		return fmt.Errorf("compiler: direction policy chose destination T%d, but partner ion %d is in T%d", dest, other, got)
	}
	return nil
}

// hoist moves order[pos] to position cursor, shifting the slice right.
//
//muzzle:hotpath
func hoist(order []int, cursor, pos int) {
	v := order[pos]
	copy(order[cursor+1:pos+1], order[cursor:pos])
	order[cursor] = v
}

// routeWithRebalance shuttles ion toward dest one hop at a time, resolving
// traffic blocks (full traps on the path, including dest itself) through
// the Rebalancer. The eviction budget is shared across the whole routing
// operation, bounding cascades; evicted ions are steered away from the
// remainder of this route via the Rebalancer's avoid list so a cascade
// cannot re-block the path it is clearing.
//
//muzzle:hotpath
func (e *engine) routeWithRebalance(ion, dest int, remaining []int, win Window, budget *int) error {
	topo := e.st.Config().Topology
	for e.st.IonTrap(ion) != dest {
		cur := e.st.IonTrap(ion)
		next := topo.NextHop(cur, dest)
		if e.st.IsFull(next) {
			// The evicted ion should not land on the rest of our path (the
			// traps strictly after next, destination included). The path is
			// a shared precomputed slice — read-only by contract.
			avoid := topo.Path(next, dest)[1:]
			e.setAvoid(avoid)
			err := e.ensureSpace(next, remaining, win, avoid, budget)
			e.clearAvoid()
			if err != nil {
				return err
			}
		}
		if err := e.st.Hop(ion, next); err != nil {
			return err
		}
	}
	return nil
}

// ensureSpace frees one slot in the full trap `blocked`. The Rebalancer
// picks the victim ion and the destination trap; the engine realizes the
// eviction as a *hole shift*: it finds the first trap with room along the
// path toward the destination and shifts one ion forward per intervening
// trap, propagating the hole back to `blocked`. Every move lands in a trap
// with room by construction, so the resolution never recurses and always
// terminates — including on saturated corridors where naive re-routing
// would cycle between two full traps. When the corridor toward the
// destination is open, the victim completes the full journey, preserving
// the baseline policy's (wasteful) long hauls that Fig. 7 illustrates.
//
//muzzle:hotpath
func (e *engine) ensureSpace(blocked int, remaining []int, win Window, avoid []int, budget *int) error {
	if *budget <= 0 {
		return fmt.Errorf("rebalance budget exhausted at trap %d", blocked)
	}
	*budget--
	var (
		victim, victimDest int
		err                error
	)
	if e.rebWindowed && e.ctx.idx != nil {
		victim, victimDest, err = e.c.Rebalancer.(WindowedRebalancer).ChooseWindowed(e.ctx, blocked, win, avoid)
	} else {
		victim, victimDest, err = e.c.Rebalancer.Choose(e.ctx, blocked, remaining, avoid)
	}
	if err != nil {
		return fmt.Errorf("traffic block at trap %d unresolvable: %w", blocked, err)
	}
	if e.st.IonTrap(victim) != blocked {
		return fmt.Errorf("rebalancer chose ion %d outside blocked trap %d", victim, blocked)
	}
	if victimDest == blocked {
		return fmt.Errorf("rebalancer chose blocked trap %d as destination", blocked)
	}
	e.res.Rebalances++
	topo := e.st.Config().Topology
	path := topo.Path(blocked, victimDest)
	hole := -1
	for i := 1; i < len(path); i++ {
		if !e.st.IsFull(path[i]) {
			hole = i
			break
		}
	}
	if hole < 0 {
		return fmt.Errorf("rebalancer chose full trap %d as destination", victimDest)
	}
	// Shift one ion forward from each trap between the hole and blocked,
	// moving the hole adjacent to blocked.
	for i := hole; i >= 2; i-- {
		shifted := e.shiftIon(path[i-1], path[i])
		if err := e.st.Hop(shifted, path[i]); err != nil {
			return err
		}
	}
	if err := e.st.Hop(victim, path[1]); err != nil {
		return err
	}
	// Open corridor: let the victim finish the journey the policy asked
	// for, stopping early if a full trap intervenes (the block is already
	// resolved at this point; the remainder is policy faithfulness).
	for e.st.IonTrap(victim) != victimDest {
		next := topo.NextHop(e.st.IonTrap(victim), victimDest)
		if e.st.IsFull(next) {
			break
		}
		if err := e.st.Hop(victim, next); err != nil {
			return err
		}
	}
	return nil
}

// shiftIon picks the ion to shift from trap `from` into adjacent trap `to`
// during a hole shift: the chain-edge ion facing the direction of travel
// (zero intra-chain swaps), skipping engine-protected ions when possible.
//
//muzzle:hotpath
func (e *engine) shiftIon(from, to int) int {
	chain := e.st.Chain(from)
	n := len(chain)
	pick := chain[0]
	for i := 0; i < n; i++ {
		idx := i
		if to > from {
			idx = n - 1 - i
		}
		if i == 0 {
			pick = chain[idx]
		}
		if !e.ctx.IsProtected(chain[idx]) {
			return chain[idx]
		}
	}
	return pick
}
