package compiler

import (
	"fmt"

	"muzzle/internal/circuit"
	"muzzle/internal/machine"
)

// GreedyPlacement computes the initial qubit-to-trap mapping using the
// greedy policy of Murali et al. (ASPLOS 2019), which the paper adopts
// unchanged for both compilers (Section IV-E3: "we used popular greedy
// initial mapping policy [14]").
//
// Qubits are considered in order of first appearance in a 2Q gate (then any
// remaining qubits in index order). Each qubit is placed into the trap —
// among those below the initial-load limit (capacity minus communication
// capacity) — that maximizes the number of 2Q gates shared with qubits
// already placed there; ties prefer the emptier trap, then the lower index.
// Qubit i becomes ion i; the returned placement[t] lists the ions of trap t
// in insertion order.
func GreedyPlacement(c *circuit.Circuit, cfg machine.Config) ([][]int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nTraps := cfg.Topology.NumTraps()
	maxLoad := cfg.MaxInitialLoad()
	if c.NumQubits > nTraps*maxLoad {
		return nil, fmt.Errorf("compiler: %d qubits exceed machine initial capacity %d (%d traps x %d)",
			c.NumQubits, nTraps*maxLoad, nTraps, maxLoad)
	}

	// Interaction weights between qubit pairs, as per-qubit neighbor lists
	// (slice scans beat per-qubit maps: degrees are small and the lists are
	// deterministic, allocation-light, and cache-friendly).
	type neighbor struct{ q, w int }
	adj := make([][]neighbor, c.NumQubits)
	firstSeen := make([]int, c.NumQubits)
	for i := range firstSeen {
		firstSeen[i] = int(^uint(0) >> 1) // max int
	}
	bump := func(a, b int) {
		for i := range adj[a] {
			if adj[a][i].q == b {
				adj[a][i].w++
				return
			}
		}
		adj[a] = append(adj[a], neighbor{q: b, w: 1})
	}
	for gi, g := range c.Gates {
		if !g.Is2Q() {
			continue
		}
		a, b := g.Qubits[0], g.Qubits[1]
		bump(a, b)
		bump(b, a)
		if gi < firstSeen[a] {
			firstSeen[a] = gi
		}
		if gi < firstSeen[b] {
			firstSeen[b] = gi
		}
	}

	// Placement order: by first 2Q appearance, inactive qubits last.
	orderQ := make([]int, c.NumQubits)
	for i := range orderQ {
		orderQ[i] = i
	}
	// Stable selection sort by (firstSeen, index) — NumQubits is small
	// (<100 in all benchmarks), so O(n^2) is irrelevant.
	for i := 0; i < len(orderQ); i++ {
		best := i
		for j := i + 1; j < len(orderQ); j++ {
			a, b := orderQ[j], orderQ[best]
			if firstSeen[a] < firstSeen[b] || (firstSeen[a] == firstSeen[b] && a < b) {
				best = j
			}
		}
		orderQ[i], orderQ[best] = orderQ[best], orderQ[i]
	}

	placement := make([][]int, nTraps)
	trapOf := make([]int, c.NumQubits)
	for i := range trapOf {
		trapOf[i] = -1
	}
	trapScore := make([]int, nTraps)
	for _, q := range orderQ {
		// Accumulate q's affinity per trap in one pass over its neighbors
		// (O(deg + traps) instead of O(deg * traps)).
		for t := range trapScore {
			trapScore[t] = 0
		}
		for _, nb := range adj[q] {
			if t := trapOf[nb.q]; t >= 0 {
				trapScore[t] += nb.w
			}
		}
		bestTrap, bestScore, bestFree := -1, -1, -1
		for t := 0; t < nTraps; t++ {
			if len(placement[t]) >= maxLoad {
				continue
			}
			score := trapScore[t]
			free := maxLoad - len(placement[t])
			if score > bestScore || (score == bestScore && free > bestFree) {
				bestTrap, bestScore, bestFree = t, score, free
			}
		}
		if bestTrap < 0 {
			return nil, fmt.Errorf("compiler: no trap has room for qubit %d", q)
		}
		placement[bestTrap] = append(placement[bestTrap], q)
		trapOf[q] = bestTrap
	}
	return placement, nil
}
