package compiler

import (
	"math/rand"
	"testing"

	"muzzle/internal/bench"
	"muzzle/internal/circuit"
	"muzzle/internal/dag"
	"muzzle/internal/machine"
	"muzzle/internal/topo"
)

// hoistAnyReorderer hoists the first dependency-safe pending 2Q gate it
// finds, regardless of trap effects — a deliberately aggressive policy that
// exercises index maintenance under many more hoists than Algorithm 1 would
// perform.
type hoistAnyReorderer struct{}

func (hoistAnyReorderer) Name() string { return "hoist-any" }
func (hoistAnyReorderer) Candidate(ctx *Context, order []int, cursor int, fullTrap int) int {
	for pos := cursor + 1; pos < len(order) && pos < cursor+40; pos++ {
		idx := order[pos]
		if ctx.Executed[idx] || !ctx.Circ.Gates[idx].Is2Q() {
			continue
		}
		if !ctx.Graph.CanHoist(idx, ctx.Executed) {
			continue
		}
		qa, qb := ctx.Circ.Gates[idx].Qubits[0], ctx.Circ.Gates[idx].Qubits[1]
		if ctx.State.CoLocated(qa, qb) {
			continue
		}
		return pos
	}
	return -1
}

// random2Q builds a 2Q-only random circuit. Without interleaved 1Q gates a
// pending gate's predecessors are other 2Q gates, so Algorithm-1 style
// hoists are actually dependency-safe and the reorder path fires — dense 1Q
// circuits almost never hoist (the nearest 1Q predecessor is pending too).
func random2Q(qubits, gates int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New("rand2q", qubits)
	for i := 0; i < gates; i++ {
		a := rng.Intn(qubits)
		b := rng.Intn(qubits - 1)
		if b >= a {
			b++
		}
		c.Add2Q("ms", a, b)
	}
	return c
}

// TestIndexMaintenanceProperty compiles randomized congested circuits with
// verifyIndex enabled: after every execute and every hoist the engine
// cross-checks the incremental index against a from-scratch rebuild and
// panics on divergence. The coverage assertions keep the property
// non-vacuous: the suite must actually perform hoists and rebalances.
func TestIndexMaintenanceProperty(t *testing.T) {
	cfg := machine.Config{Topology: topo.Linear(4), Capacity: 4, CommCapacity: 0}
	totalReorders, totalRebalances := 0, 0
	for seed := int64(1); seed <= 8; seed++ {
		nq := cfg.Topology.NumTraps()*cfg.Capacity - 2 // nearly saturated
		c := random2Q(nq, nq*8, seed)
		comp := &Compiler{
			Direction:   firstIonDirection{},
			Rebalancer:  lowestFitRebalancer{},
			Reorderer:   hoistAnyReorderer{},
			verifyIndex: true,
		}
		res, err := comp.Compile(c, cfg)
		if err != nil {
			// Saturated machines may legitimately fail to route; the
			// property under test is index consistency (a divergence
			// panics), not compilability.
			t.Logf("seed %d: compile error (acceptable): %v", seed, err)
			continue
		}
		totalReorders += res.Reorders
		totalRebalances += res.Rebalances
	}
	if totalReorders == 0 {
		t.Error("property suite performed no hoists; index maintenance under reordering is untested")
	}
	if totalRebalances == 0 {
		t.Error("property suite performed no rebalances; index maintenance under eviction is untested")
	}
}

// buildIndexedContext assembles a Context with a live index at the given
// cursor, marking every gate before cursor executed (the engine invariant).
func buildIndexedContext(t *testing.T, c *circuit.Circuit, order []int, cursor int) *Context {
	t.Helper()
	ctx := &Context{Graph: dag.Build(c), Circ: c, Executed: make([]bool, len(c.Gates))}
	for p := 0; p < cursor; p++ {
		ctx.Executed[order[p]] = true
	}
	ctx.idx = newFutureIndex(ctx, order)
	ctx.idx.cursor = cursor
	return ctx
}

// TestWindowMatchesRemaining2Q is the window-math property: for random
// circuits, cursors, lookahead limits, and exclusions, materializing a
// Window descriptor must reproduce the naive Remaining2Q scan exactly.
func TestWindowMatchesRemaining2Q(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nq := 3 + rng.Intn(8)
		c := bench.Random(nq, 5+rng.Intn(40), rng.Int63())
		n := len(c.Gates)
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		cursor := rng.Intn(n)
		ctx := buildIndexedContext(t, c, order, cursor)
		limit := 1 + rng.Intn(12)
		// exclude: none, or a random pending-2Q position after the cursor.
		excludePos := -1
		excludeGate := -1
		if rng.Intn(2) == 0 {
			var cands []int
			for pos := cursor + 1; pos < n; pos++ {
				if c.Gates[order[pos]].Is2Q() {
					cands = append(cands, pos)
				}
			}
			if len(cands) > 0 {
				excludePos = cands[rng.Intn(len(cands))]
				excludeGate = order[excludePos]
			}
		}
		want := Remaining2Q(ctx, order, cursor, limit, excludePos)
		got := ctx.AppendWindow(nil, ctx.Window(limit, excludeGate))
		if !equalInts(want, got) {
			t.Fatalf("trial %d (cursor=%d limit=%d exclude=%d):\nnaive   %v\nwindowed %v",
				trial, cursor, limit, excludePos, want, got)
		}
	}
}

// TestFutureGatesInvariant pins the documented FutureGates contract: exactly
// the unexecuted 2Q gates using the qubit, in schedule order.
func TestFutureGatesInvariant(t *testing.T) {
	c := bench.Random(6, 30, 3)
	n := len(c.Gates)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for cursor := 0; cursor < n; cursor += 3 {
		ctx := buildIndexedContext(t, c, order, cursor)
		for q := 0; q < c.NumQubits; q++ {
			var want []int
			for _, gi := range order {
				g := c.Gates[gi]
				if !ctx.Executed[gi] && g.Is2Q() && g.Uses(q) {
					want = append(want, gi)
				}
			}
			if !equalInts(want, ctx.FutureGates(q)) {
				t.Fatalf("cursor %d qubit %d: FutureGates=%v want %v", cursor, q, ctx.FutureGates(q), want)
			}
			wantNext := -1
			if len(want) > 0 {
				wantNext = want[0]
			}
			if got := ctx.NextUnexecuted(q); got != wantNext {
				t.Fatalf("cursor %d qubit %d: NextUnexecuted=%d want %d", cursor, q, got, wantNext)
			}
		}
		// Spectator ions beyond the register are future-free, not a panic.
		if got := ctx.FutureGates(c.NumQubits + 5); got != nil {
			t.Fatalf("spectator ion has future gates: %v", got)
		}
	}
}

// FuzzWindow fuzzes the window descriptor against the naive scan with
// machine-generated gate sequences, cursors, limits, and exclusions.
func FuzzWindow(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2), uint8(4), uint8(1))
	f.Add([]byte{9, 9, 9, 0, 0, 1, 2, 3, 4, 5, 6, 7}, uint8(0), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, gates []byte, cursorB, limitB, exclB uint8) {
		const nq = 5
		c := circuit.New("fuzz", nq)
		for i := 0; i+1 < len(gates) && i < 120; i += 2 {
			a := int(gates[i]) % nq
			b := int(gates[i+1]) % nq
			if a == b {
				c.Add1Q("rz", a, 0.1)
				continue
			}
			c.Add2Q("ms", a, b)
		}
		n := len(c.Gates)
		if n == 0 {
			return
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		cursor := int(cursorB) % n
		limit := 1 + int(limitB)%16
		ctx := buildIndexedContext(t, c, order, cursor)
		excludePos := -1
		excludeGate := -1
		if n > cursor+1 && exclB%2 == 0 {
			p := cursor + 1 + int(exclB)%(n-cursor-1)
			if c.Gates[order[p]].Is2Q() {
				excludePos, excludeGate = p, order[p]
			}
		}
		want := Remaining2Q(ctx, order, cursor, limit, excludePos)
		got := ctx.AppendWindow(nil, ctx.Window(limit, excludeGate))
		if !equalInts(want, got) {
			t.Fatalf("cursor=%d limit=%d excludePos=%d: naive %v windowed %v",
				cursor, limit, excludePos, want, got)
		}
	})
}
