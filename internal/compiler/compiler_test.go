package compiler

import (
	"math/rand"
	"testing"
	"testing/quick"

	"muzzle/internal/circuit"
	"muzzle/internal/dag"
	"muzzle/internal/machine"
	"muzzle/internal/topo"
)

// ---- test policies -------------------------------------------------------

// firstIonDirection always moves the gate's first ion to the second's trap.
type firstIonDirection struct{}

func (firstIonDirection) Name() string { return "first-ion" }
func (firstIonDirection) Choose(ctx *Context, gateIdx, qa, qb int, remaining []int) (int, int) {
	return qa, ctx.State.IonTrap(qb)
}

// lowestFitRebalancer evicts the chain-head ion to the lowest-index trap
// with room.
type lowestFitRebalancer struct{}

func (lowestFitRebalancer) Name() string { return "lowest-fit" }
func (lowestFitRebalancer) Choose(ctx *Context, blocked int, remaining []int, avoid []int) (int, int, error) {
	st := ctx.State
	for t := 0; t < st.NumTraps(); t++ {
		if t != blocked && st.ExcessCapacity(t) > 0 {
			return st.Chain(blocked)[0], t, nil
		}
	}
	return -1, -1, errNoRoom
}

type noRoomError struct{}

func (noRoomError) Error() string { return "no room anywhere" }

var errNoRoom = noRoomError{}

// badIonDirection returns an ion that is not a gate operand.
type badIonDirection struct{}

func (badIonDirection) Name() string { return "bad-ion" }
func (badIonDirection) Choose(ctx *Context, gateIdx, qa, qb int, remaining []int) (int, int) {
	return 99, ctx.State.IonTrap(qb)
}

func testCompiler() *Compiler {
	return &Compiler{Direction: firstIonDirection{}, Rebalancer: lowestFitRebalancer{}}
}

// ---- GreedyPlacement -----------------------------------------------------

func TestGreedyPlacementClustersInteractingQubits(t *testing.T) {
	// Two independent cliques must land in (at most) one trap each.
	c := circuit.New("cliques", 8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			c.Add2Q("ms", i, j)
			c.Add2Q("ms", i+4, j+4)
		}
	}
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 6, CommCapacity: 2}
	placement, err := GreedyPlacement(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trapOf := map[int]int{}
	for tr, chain := range placement {
		for _, q := range chain {
			trapOf[q] = tr
		}
	}
	for i := 1; i < 4; i++ {
		if trapOf[i] != trapOf[0] {
			t.Errorf("clique A split: qubit %d in trap %d, qubit 0 in trap %d", i, trapOf[i], trapOf[0])
		}
		if trapOf[i+4] != trapOf[4] {
			t.Errorf("clique B split: qubit %d", i+4)
		}
	}
}

func TestGreedyPlacementRespectsInitialLoad(t *testing.T) {
	c := circuit.New("wide", 9)
	for i := 0; i+1 < 9; i++ {
		c.Add2Q("ms", i, i+1)
	}
	cfg := machine.Config{Topology: topo.Linear(3), Capacity: 4, CommCapacity: 1}
	placement, err := GreedyPlacement(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tr, chain := range placement {
		if len(chain) > cfg.MaxInitialLoad() {
			t.Errorf("trap %d overloaded: %d ions", tr, len(chain))
		}
	}
}

func TestGreedyPlacementTooManyQubits(t *testing.T) {
	c := circuit.New("huge", 100)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	if _, err := GreedyPlacement(c, cfg); err == nil {
		t.Fatal("oversubscription accepted")
	}
}

func TestGreedyPlacementBadConfig(t *testing.T) {
	c := circuit.New("x", 2)
	if _, err := GreedyPlacement(c, machine.Config{}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestGreedyPlacementCoversAllQubits(t *testing.T) {
	c := circuit.New("sparse", 10) // includes gate-less qubits
	c.Add2Q("ms", 0, 9)
	cfg := machine.Config{Topology: topo.Linear(4), Capacity: 4, CommCapacity: 1}
	placement, err := GreedyPlacement(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, chain := range placement {
		for _, q := range chain {
			if seen[q] {
				t.Fatalf("qubit %d placed twice", q)
			}
			seen[q] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("placed %d of 10 qubits", len(seen))
	}
}

// ---- engine --------------------------------------------------------------

func TestCompileSimpleCrossTrapGate(t *testing.T) {
	c := circuit.New("x", 4)
	c.Add2Q("ms", 0, 2)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	res, err := testCompiler().CompileMapped(c, cfg, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shuttles != 1 {
		t.Errorf("shuttles = %d, want 1", res.Shuttles)
	}
	if res.Gates2Q != 1 {
		t.Errorf("gates2q = %d", res.Gates2Q)
	}
	// firstIonDirection moves ion 0 into trap of ion 2.
	lastOp := res.Ops[len(res.Ops)-1]
	if lastOp.Kind != machine.OpGate2Q || lastOp.Trap != 1 {
		t.Errorf("final op = %v, want gate in T1", lastOp)
	}
}

func TestCompileCoLocatedNeedsNoShuttle(t *testing.T) {
	c := circuit.New("x", 4)
	c.Add2Q("ms", 0, 1)
	c.Add1Q("r", 2)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	res, err := testCompiler().CompileMapped(c, cfg, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shuttles != 0 {
		t.Errorf("shuttles = %d, want 0", res.Shuttles)
	}
	if res.Gates1Q != 1 {
		t.Errorf("gates1q = %d", res.Gates1Q)
	}
}

func TestCompileTriggersRebalance(t *testing.T) {
	// Both gate traps full: neither direction is routable, so the engine
	// must evict an ion (re-balance) before co-locating.
	c := circuit.New("x", 9)
	c.Add2Q("ms", 0, 2) // 0 in T0 (full), 2 in T1 (full)
	cfg := machine.Config{Topology: topo.Linear(3), Capacity: 4, CommCapacity: 0}
	res, err := testCompiler().CompileMapped(c, cfg, [][]int{{0, 5, 6, 7}, {2, 3, 4, 8}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalances == 0 {
		t.Error("expected a rebalance")
	}
	if res.Shuttles < 2 {
		t.Errorf("shuttles = %d, want >= 2 (evict + route)", res.Shuttles)
	}
}

func TestCompileFlipsDirectionWhenDestFull(t *testing.T) {
	// The favored destination is full but the source trap has room: the
	// engine flips the direction instead of evicting a bystander — one
	// shuttle, no rebalance.
	c := circuit.New("x", 6)
	c.Add2Q("ms", 0, 2) // firstIonDirection favors moving 0 into T1 (full)
	cfg := machine.Config{Topology: topo.Linear(3), Capacity: 4, CommCapacity: 0}
	res, err := testCompiler().CompileMapped(c, cfg, [][]int{{0}, {2, 3, 4, 5}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalances != 0 {
		t.Errorf("rebalances = %d, want 0 (direction flip should avoid eviction)", res.Rebalances)
	}
	if res.Shuttles != 1 {
		t.Errorf("shuttles = %d, want 1", res.Shuttles)
	}
	// Ion 2 must have moved into T0 (the flip).
	finalGate := res.Ops[len(res.Ops)-1]
	if finalGate.Kind != machine.OpGate2Q || finalGate.Trap != 0 {
		t.Errorf("final gate = %v, want execution in T0", finalGate)
	}
}

func TestCompileDeadlockErrors(t *testing.T) {
	// Every trap full: rebalancing is impossible and the compile must fail
	// with an error rather than loop.
	c := circuit.New("x", 8)
	c.Add2Q("ms", 0, 4)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 0}
	_, err := testCompiler().CompileMapped(c, cfg, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}})
	if err == nil {
		t.Fatal("deadlocked compile succeeded")
	}
}

func TestCompileRejectsNonNative(t *testing.T) {
	c := circuit.New("x", 2)
	c.Add2Q("cx", 0, 1)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	if _, err := testCompiler().CompileMapped(c, cfg, [][]int{{0}, {1}}); err == nil {
		t.Fatal("non-native circuit accepted by CompileMapped")
	}
	// Compile (with decomposition) must handle it.
	if _, err := testCompiler().Compile(c, cfg); err != nil {
		t.Fatalf("Compile failed: %v", err)
	}
}

func TestCompileRejectsMissingPolicies(t *testing.T) {
	c := circuit.New("x", 2)
	c.Add2Q("ms", 0, 1)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	bad := &Compiler{}
	if _, err := bad.CompileMapped(c, cfg, [][]int{{0}, {1}}); err == nil {
		t.Fatal("compiler without policies accepted")
	}
}

func TestCompileValidatesDirectionDecision(t *testing.T) {
	c := circuit.New("x", 4)
	c.Add2Q("ms", 0, 2)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	bad := &Compiler{Direction: badIonDirection{}, Rebalancer: lowestFitRebalancer{}}
	if _, err := bad.CompileMapped(c, cfg, [][]int{{0, 1}, {2, 3}}); err == nil {
		t.Fatal("bad direction decision accepted")
	}
}

func TestCompilePlacementTooSmall(t *testing.T) {
	c := circuit.New("x", 4)
	c.Add2Q("ms", 0, 3)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	if _, err := testCompiler().CompileMapped(c, cfg, [][]int{{0}, {1}}); err == nil {
		t.Fatal("undersized placement accepted")
	}
}

func TestCompileMeasureAndBarrier(t *testing.T) {
	c := circuit.New("x", 2)
	c.Add2Q("ms", 0, 1)
	c.MustAppend(circuit.Gate{Name: "barrier", Qubits: []int{0, 1}})
	c.MustAppend(circuit.Gate{Name: "measure", Qubits: []int{0}})
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	res, err := testCompiler().CompileMapped(c, cfg, [][]int{{0, 1}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 3 {
		t.Errorf("order = %v", res.Order)
	}
}

func TestRemaining2Q(t *testing.T) {
	c := circuit.New("x", 4)
	c.Add2Q("ms", 0, 1) // 0
	c.Add1Q("r", 2)     // 1
	c.Add2Q("ms", 2, 3) // 2
	c.Add2Q("ms", 0, 2) // 3
	ctx := &Context{Circ: c, Executed: make([]bool, 4)}
	order := []int{0, 1, 2, 3}
	got := Remaining2Q(ctx, order, 0, 10, -1)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("Remaining2Q = %v, want [2 3]", got)
	}
	// Exclusion and executed filtering.
	ctx.Executed[2] = true
	got = Remaining2Q(ctx, order, 0, 10, 3)
	if len(got) != 0 {
		t.Errorf("Remaining2Q = %v, want []", got)
	}
	// Cap.
	ctx.Executed[2] = false
	got = Remaining2Q(ctx, order, 0, 1, -1)
	if len(got) != 1 {
		t.Errorf("capped Remaining2Q = %v", got)
	}
}

func TestHoist(t *testing.T) {
	order := []int{10, 11, 12, 13, 14}
	hoist(order, 1, 3)
	want := []int{10, 13, 11, 12, 14}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("hoist = %v, want %v", order, want)
		}
	}
}

// randomNative builds a random MS+R circuit.
func randomNative(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New("rand", n)
	for i := 0; i < gates; i++ {
		if rng.Intn(4) == 0 {
			c.Add1Q("r", rng.Intn(n), 1, 0)
			continue
		}
		a, b := rng.Intn(n), rng.Intn(n)
		for b == a {
			b = rng.Intn(n)
		}
		c.Add2Q("ms", a, b)
	}
	return c
}

// Property: compilation always produces a dependency-valid order, every 2Q
// gate executes co-located, all gates execute exactly once, and machine
// invariants hold.
func TestQuickCompileCorrectness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(8)
		c := randomNative(rng, n, 20+rng.Intn(60))
		cfg := machine.Config{Topology: topo.Linear(3), Capacity: 8, CommCapacity: 2}
		res, err := testCompiler().Compile(c, cfg)
		if err != nil {
			return false
		}
		// Order validity against the DAG.
		if dag.Build(res.Circ).ValidOrder(res.Order) != nil {
			return false
		}
		// Replay: every 2Q gate co-located at its execution point.
		st, err := machine.NewState(cfg, res.InitialPlacement)
		if err != nil {
			return false
		}
		gateSeen := make(map[int]bool)
		for _, op := range res.Ops {
			switch op.Kind {
			case machine.OpMove:
				// Track by teleport (merge applies placement).
			case machine.OpMerge:
				if st.Teleport(op.Ion, op.Trap) != nil {
					return false
				}
			case machine.OpGate2Q:
				if st.IonTrap(op.Ion) != st.IonTrap(op.Ion2) {
					return false
				}
				if gateSeen[op.Gate] {
					return false
				}
				gateSeen[op.Gate] = true
			case machine.OpGate1Q, machine.OpMeasure:
				if gateSeen[op.Gate] {
					return false
				}
				gateSeen[op.Gate] = true
			}
		}
		want2q := res.Circ.Count2Q()
		if res.Gates2Q != want2q {
			return false
		}
		return res.Shuttles >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
