package flow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplePath(t *testing.T) {
	// 0 -> 1 -> 2, capacities 3 and 2: max flow 2.
	g := NewGraph(3)
	g.AddEdge(0, 1, 3, 1)
	g.AddEdge(1, 2, 2, 1)
	res := g.Solve(0, 2)
	if res.MaxFlow != 2 {
		t.Errorf("MaxFlow = %d, want 2", res.MaxFlow)
	}
	if res.Cost != 4 {
		t.Errorf("Cost = %d, want 4", res.Cost)
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel paths 0->1->3 (cost 2) and 0->2->3 (cost 10), each cap 1;
	// need 1 unit: must take the cheap one.
	g := NewGraph(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 3, 1, 1)
	g.AddEdge(0, 2, 1, 5)
	g.AddEdge(2, 3, 1, 5)
	res := g.Solve(0, 3)
	if res.MaxFlow != 2 {
		t.Errorf("MaxFlow = %d, want 2", res.MaxFlow)
	}
	if res.Cost != 2+10 {
		t.Errorf("Cost = %d, want 12", res.Cost)
	}
}

func TestReroutesThroughResidual(t *testing.T) {
	// Classic residual test: greedy shortest path must be undone.
	//      1
	//    / | \
	//   0  |  3
	//    \ | /
	//      2
	// 0->1 (1, c1), 0->2 (1, c2), 1->2 (1, c0), 1->3 (1, c2), 2->3 (1, c1)
	g := NewGraph(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(0, 2, 1, 2)
	g.AddEdge(1, 2, 1, 0)
	g.AddEdge(1, 3, 1, 2)
	g.AddEdge(2, 3, 1, 1)
	res := g.Solve(0, 3)
	if res.MaxFlow != 2 {
		t.Errorf("MaxFlow = %d, want 2", res.MaxFlow)
	}
	// Optimal: 0->1->2->3 (2) and 0->2... wait 0->2 cap 1, 2->3 cap 1: both
	// units must cross 2->3? No: 2->3 has cap 1. Paths: 0->1->2->3 cost 2,
	// 0->2->3 would conflict on 2->3. So second unit: 0->1->3? 0->1 cap 1
	// used. Max flow is 2 via 0->1->3 (cost 3) + 0->2->3 (cost 3) = 6, or
	// 0->1->2->3 (2) + 0->2->... blocked => only one unit that way. MCMF
	// must find total cost 6.
	if res.Cost != 6 {
		t.Errorf("Cost = %d, want 6", res.Cost)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 5, 1)
	res := g.Solve(0, 3)
	if res.MaxFlow != 0 || res.Cost != 0 {
		t.Errorf("disconnected: %+v", res)
	}
}

func TestSourceEqualsSink(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 1, 1)
	res := g.Solve(0, 0)
	if res.MaxFlow != 0 {
		t.Errorf("self flow = %d", res.MaxFlow)
	}
}

func TestEdgeFlowAccessor(t *testing.T) {
	g := NewGraph(2)
	id := g.AddEdge(0, 1, 3, 1)
	g.Solve(0, 1)
	if got := g.Flow(id); got != 3 {
		t.Errorf("edge flow = %d, want 3", got)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("NewGraph(0)", func() { NewGraph(0) })
	mustPanic("bad edge", func() { NewGraph(2).AddEdge(0, 5, 1, 1) })
	mustPanic("neg cap", func() { NewGraph(2).AddEdge(0, 1, -1, 1) })
	mustPanic("bad solve", func() { NewGraph(2).Solve(0, 9) })
}

func TestAssignmentRebalanceShape(t *testing.T) {
	// The QCCDSim re-balancing shape from paper Fig. 7: T4 has 1 excess ion;
	// T0, T2, T3, T5 have spare capacity; cost = hop distance on L6.
	// Nearest (T3 or T5, distance 1) must win under distance costs.
	supplies := []int{1}          // one ion leaving T4
	demands := []int{2, 4, 2, 5}  // spare capacity at T0,T2,T3,T5
	cost := [][]int{{4, 2, 1, 1}} // L6 distances from T4
	ship, total, err := Assignment(supplies, demands, cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 1 {
		t.Errorf("total cost = %d, want 1 (nearest neighbor)", total)
	}
	moved := 0
	for j, s := range ship[0] {
		moved += s
		if s > 0 && cost[0][j] != 1 {
			t.Errorf("shipped to distance-%d trap", cost[0][j])
		}
	}
	if moved != 1 {
		t.Errorf("moved = %d ions, want 1", moved)
	}
}

func TestAssignmentTrapZeroBias(t *testing.T) {
	// With QCCDSim's index-based cost (trap id, not distance) the same
	// problem ships to T0 — reproducing the inefficiency of Fig. 7.
	supplies := []int{1}
	demands := []int{2, 4, 2, 5}
	cost := [][]int{{0, 2, 3, 5}} // trap indices as costs
	ship, _, err := Assignment(supplies, demands, cost)
	if err != nil {
		t.Fatal(err)
	}
	if ship[0][0] != 1 {
		t.Errorf("index-cost assignment should pick trap 0, got %v", ship[0])
	}
}

func TestAssignmentMultiSupply(t *testing.T) {
	supplies := []int{2, 1}
	demands := []int{1, 2}
	cost := [][]int{{1, 3}, {2, 1}}
	ship, total, err := Assignment(supplies, demands, cost)
	if err != nil {
		t.Fatal(err)
	}
	shipped := 0
	for i := range ship {
		for j := range ship[i] {
			shipped += ship[i][j]
		}
	}
	if shipped != 3 {
		t.Errorf("shipped = %d, want 3", shipped)
	}
	// Optimal: s0 ships 1 to d0 (1) + 1 to d1 (3)? or s0->d0 1, s0->d1 1,
	// s1->d1 1 => 1+3+1 = 5. Alternative: s0->d1 2 (6) + s1->d0 1 (2) = 8.
	if total != 5 {
		t.Errorf("total = %d, want 5", total)
	}
}

func TestAssignmentValidation(t *testing.T) {
	if _, _, err := Assignment([]int{1}, []int{1}, [][]int{}); err == nil {
		t.Error("bad cost rows accepted")
	}
	if _, _, err := Assignment([]int{1}, []int{1, 2}, [][]int{{1}}); err == nil {
		t.Error("bad cost cols accepted")
	}
	if _, _, err := Assignment([]int{-1}, []int{1}, [][]int{{1}}); err == nil {
		t.Error("negative supply accepted")
	}
	if _, _, err := Assignment([]int{1}, []int{-1}, [][]int{{1}}); err == nil {
		t.Error("negative demand accepted")
	}
}

// bruteForceAssignment exhaustively enumerates shipment matrices for tiny
// problems to verify MCMF optimality.
func bruteForceAssignment(supplies, demands []int, cost [][]int) (best int, bestFlow int) {
	ns, nd := len(supplies), len(demands)
	cells := ns * nd
	best = 1 << 30
	var rec func(cell int, ship []int)
	totalFlow := func(ship []int) int {
		f := 0
		for _, s := range ship {
			f += s
		}
		return f
	}
	rec = func(cell int, ship []int) {
		if cell == cells {
			f := totalFlow(ship)
			c := 0
			for i := 0; i < ns; i++ {
				for j := 0; j < nd; j++ {
					c += ship[i*nd+j] * cost[i][j]
				}
			}
			if f > bestFlow || (f == bestFlow && c < best) {
				bestFlow = f
				best = c
			}
			return
		}
		i, j := cell/nd, cell%nd
		// Try all feasible values for this cell.
		rowUsed := 0
		for jj := 0; jj < j; jj++ {
			rowUsed += ship[i*nd+jj]
		}
		colUsed := 0
		for ii := 0; ii < i; ii++ {
			colUsed += ship[ii*nd+j]
		}
		maxHere := min(supplies[i]-rowUsed, demands[j]-colUsed)
		for v := 0; v <= maxHere; v++ {
			ship[cell] = v
			rec(cell+1, ship)
		}
		ship[cell] = 0
	}
	rec(0, make([]int, cells))
	return best, bestFlow
}

// Property: MCMF matches brute force on small random transportation
// problems (both max flow and min cost).
func TestQuickAssignmentOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ns := 1 + rng.Intn(2)
		nd := 1 + rng.Intn(3)
		supplies := make([]int, ns)
		demands := make([]int, nd)
		cost := make([][]int, ns)
		for i := range supplies {
			supplies[i] = rng.Intn(3)
		}
		for j := range demands {
			demands[j] = rng.Intn(3)
		}
		for i := range cost {
			cost[i] = make([]int, nd)
			for j := range cost[i] {
				cost[i][j] = rng.Intn(6)
			}
		}
		ship, gotCost, err := Assignment(supplies, demands, cost)
		if err != nil {
			return false
		}
		gotFlow := 0
		for i := range ship {
			rowSum := 0
			for j := range ship[i] {
				if ship[i][j] < 0 {
					return false
				}
				rowSum += ship[i][j]
				gotFlow += ship[i][j]
			}
			if rowSum > supplies[i] {
				return false
			}
		}
		for j := 0; j < nd; j++ {
			colSum := 0
			for i := 0; i < ns; i++ {
				colSum += ship[i][j]
			}
			if colSum > demands[j] {
				return false
			}
		}
		wantCost, wantFlow := bruteForceAssignment(supplies, demands, cost)
		if wantFlow == 0 {
			wantCost = 0
		}
		return gotFlow == wantFlow && gotCost == wantCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: flow conservation at interior nodes on random networks.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		g := NewGraph(n)
		type e struct{ from, id int }
		var es []e
		for i := 0; i < 3*n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			id := g.AddEdge(a, b, rng.Intn(4), rng.Intn(5))
			es = append(es, e{a, id})
		}
		res := g.Solve(0, n-1)
		if res.MaxFlow < 0 || res.Cost < 0 {
			return false
		}
		net := make([]int, n)
		for _, ed := range es {
			f := g.Flow(ed.id)
			if f < 0 {
				return false
			}
			net[ed.from] -= f
			net[g.edges[ed.id].to] += f
		}
		for v := 1; v < n-1; v++ {
			if net[v] != 0 {
				return false
			}
		}
		return net[n-1] == res.MaxFlow && net[0] == -res.MaxFlow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
