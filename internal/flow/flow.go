// Package flow implements min-cost max-flow via successive shortest paths
// (Bellman-Ford/SPFA with potentials-free negative-edge handling).
//
// It is the substrate behind the QCCDSim-style re-balancing logic of the
// baseline compiler: the ISCA 2020 compiler resolves traffic blocks by
// solving a minimum-cost maximum-flow problem that sends excess ions from
// full traps to traps with spare capacity (paper Section III-C). The
// optimized compiler replaces that global solve with the nearest-neighbor
// heuristic of Algorithm 2, so this package also serves as the comparison
// point for the re-balancing ablation benchmarks.
package flow

import (
	"fmt"
	"math"
)

// Graph is a directed flow network under construction. Nodes are integers
// 0..n-1 assigned by the caller.
type Graph struct {
	n     int
	edges []edge
	head  [][]int // adjacency: node -> edge indices (including reverse arcs)
}

type edge struct {
	to   int
	cap  int
	cost int
	flow int
}

// NewGraph returns an empty network over n nodes.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic("flow: non-positive node count")
	}
	return &Graph{n: n, head: make([][]int, n)}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge from -> to with the given capacity and
// per-unit cost, plus its residual reverse arc. It returns the edge id,
// which can be used with Flow after solving.
func (g *Graph) AddEdge(from, to, capacity, cost int) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("flow: edge (%d,%d) out of range", from, to))
	}
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: to, cap: capacity, cost: cost})
	g.head[from] = append(g.head[from], id)
	g.edges = append(g.edges, edge{to: from, cap: 0, cost: -cost})
	g.head[to] = append(g.head[to], id+1)
	return id
}

// Flow returns the flow routed on edge id after Solve.
func (g *Graph) Flow(id int) int { return g.edges[id].flow }

// Result summarises a solved flow.
type Result struct {
	// MaxFlow is the total flow routed from source to sink.
	MaxFlow int
	// Cost is the total cost of the routed flow.
	Cost int
}

// Solve computes the minimum-cost maximum flow from source to sink using
// successive shortest augmenting paths (SPFA). Costs may be any integers as
// long as the network has no negative-cost cycle, which holds for all
// networks built by this repository (costs are distances/indices >= 0).
func (g *Graph) Solve(source, sink int) Result {
	if source < 0 || source >= g.n || sink < 0 || sink >= g.n {
		panic("flow: source/sink out of range")
	}
	var res Result
	if source == sink {
		return res
	}
	const inf = math.MaxInt / 2
	for {
		// SPFA shortest path by cost in the residual graph.
		dist := make([]int, g.n)
		inQueue := make([]bool, g.n)
		prevEdge := make([]int, g.n)
		for i := range dist {
			dist[i] = inf
			prevEdge[i] = -1
		}
		dist[source] = 0
		queue := []int{source}
		inQueue[source] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			for _, id := range g.head[u] {
				e := g.edges[id]
				if e.cap-e.flow <= 0 {
					continue
				}
				if nd := dist[u] + e.cost; nd < dist[e.to] {
					dist[e.to] = nd
					prevEdge[e.to] = id
					if !inQueue[e.to] {
						queue = append(queue, e.to)
						inQueue[e.to] = true
					}
				}
			}
		}
		if dist[sink] >= inf {
			return res
		}
		// Find bottleneck.
		bottleneck := inf
		for v := sink; v != source; {
			id := prevEdge[v]
			e := g.edges[id]
			if r := e.cap - e.flow; r < bottleneck {
				bottleneck = r
			}
			v = g.edges[id^1].to
		}
		// Augment.
		for v := sink; v != source; {
			id := prevEdge[v]
			g.edges[id].flow += bottleneck
			g.edges[id^1].flow -= bottleneck
			v = g.edges[id^1].to
		}
		res.MaxFlow += bottleneck
		res.Cost += bottleneck * dist[sink]
	}
}

// Assignment solves a transportation problem: supplies[i] units available at
// supply node i, demands[j] capacity at demand node j, cost[i][j] per unit.
// It returns the shipment matrix and total cost; total shipped equals
// min(sum supplies, sum demands). This is the exact shape of the QCCDSim
// re-balancing subproblem ("move excess ions from blocked traps to traps
// with spare capacity at minimum total shuttle distance").
func Assignment(supplies, demands []int, cost [][]int) ([][]int, int, error) {
	ns, nd := len(supplies), len(demands)
	if len(cost) != ns {
		return nil, 0, fmt.Errorf("flow: cost has %d rows, want %d", len(cost), ns)
	}
	for i, row := range cost {
		if len(row) != nd {
			return nil, 0, fmt.Errorf("flow: cost row %d has %d cols, want %d", i, len(row), nd)
		}
	}
	// Node layout: 0 = source, 1..ns = supplies, ns+1..ns+nd = demands,
	// ns+nd+1 = sink.
	src, sink := 0, ns+nd+1
	g := NewGraph(ns + nd + 2)
	type key struct{ i, j int }
	ids := map[key]int{}
	for i, s := range supplies {
		if s < 0 {
			return nil, 0, fmt.Errorf("flow: negative supply at %d", i)
		}
		g.AddEdge(src, 1+i, s, 0)
	}
	for j, d := range demands {
		if d < 0 {
			return nil, 0, fmt.Errorf("flow: negative demand at %d", j)
		}
		g.AddEdge(1+ns+j, sink, d, 0)
	}
	for i := 0; i < ns; i++ {
		for j := 0; j < nd; j++ {
			ids[key{i, j}] = g.AddEdge(1+i, 1+ns+j, supplies[i], cost[i][j])
		}
	}
	res := g.Solve(src, sink)
	ship := make([][]int, ns)
	for i := range ship {
		ship[i] = make([]int, nd)
		for j := 0; j < nd; j++ {
			ship[i][j] = g.Flow(ids[key{i, j}])
		}
	}
	return ship, res.Cost, nil
}
