// Package ckey computes the content address of an evaluation — the
// canonical SHA-256 key shared by the compile cache (internal/cache) and
// the in-flight single-flight groups (internal/flight). It is a leaf
// package (circuit + machine + sim only) so the evaluation harness can key
// coalescing by the exact hash the cache uses without importing the cache
// itself.
package ckey

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"muzzle/internal/circuit"
	"muzzle/internal/machine"
	"muzzle/internal/sim"
)

// Version guards the canonical encoding below: bump it whenever the
// byte layout (or the meaning of any hashed field) changes, so stale disk
// entries from older binaries can never be mistaken for current ones.
// Compiler *semantics* are hashed only by registry name — a PR that
// changes what a registered compiler produces must also bump this, or
// persistent caches will serve the old binary's results.
const Version = "muzzle-cache-v2" // v2: gate encoding gained the measure Cbit target

// Key returns the content address of an evaluation: a hex SHA-256 over a
// canonical encoding of everything that determines the result — the
// circuit (name, register size, every gate with operands and angles), the
// machine (topology structure, capacities), the compiler set in run order,
// and the simulator constants. Two evaluations share a key if and only if
// they would produce the same result; changing any field changes the key.
func Key(c *circuit.Circuit, cfg machine.Config, compilers []string, params sim.Params) string {
	h := sha256.New()
	writeString(h, Version)

	// Circuit: name, register, gate stream.
	writeString(h, c.Name)
	writeInt(h, c.NumQubits)
	writeInt(h, len(c.Gates))
	for _, g := range c.Gates {
		writeString(h, g.Name)
		writeInt(h, g.Cbit)
		writeInt(h, len(g.Qubits))
		for _, q := range g.Qubits {
			writeInt(h, q)
		}
		writeInt(h, len(g.Params))
		for _, p := range g.Params {
			writeFloat(h, p)
		}
	}

	// Machine: topology identity is its structure (trap count + adjacency),
	// not just its name, so a custom topology registered under a reused
	// name still hashes distinctly.
	if cfg.Topology != nil {
		writeString(h, cfg.Topology.Name())
		n := cfg.Topology.NumTraps()
		writeInt(h, n)
		for i := 0; i < n; i++ {
			neigh := cfg.Topology.Neighbors(i)
			writeInt(h, len(neigh))
			for _, v := range neigh {
				writeInt(h, v)
			}
		}
	} else {
		writeString(h, "<nil-topology>")
	}
	writeInt(h, cfg.Capacity)
	writeInt(h, cfg.CommCapacity)

	// Compiler set, in run order (order affects nothing but is part of the
	// result's Compilers column ordering, so it is part of the identity).
	writeInt(h, len(compilers))
	for _, name := range compilers {
		writeString(h, name)
	}

	// Simulator constants: sim.Params is a tree of value structs (floats
	// and bools only), so the reflected Go-syntax rendering is a canonical
	// encoding that automatically covers future fields.
	fmt.Fprintf(h, "%#v", params)

	return hex.EncodeToString(h.Sum(nil))
}

// writeString hashes a length-prefixed string (unambiguous concatenation).
func writeString(h hash.Hash, s string) {
	writeInt(h, len(s))
	h.Write([]byte(s))
}

func writeInt(h hash.Hash, v int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
	h.Write(buf[:])
}

func writeFloat(h hash.Hash, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	h.Write(buf[:])
}
