package baseline

import (
	"testing"

	"muzzle/internal/circuit"
	"muzzle/internal/compiler"
	"muzzle/internal/dag"
	"muzzle/internal/machine"
	"muzzle/internal/topo"
)

// fig4Circuit is the 4-gate program of paper Fig. 4.
func fig4Circuit() *circuit.Circuit {
	c := circuit.New("fig4", 5)
	c.Add2Q("ms", 1, 2) // Gate-A
	c.Add2Q("ms", 2, 3) // Gate-B
	c.Add2Q("ms", 1, 2) // Gate-C
	c.Add2Q("ms", 2, 4) // Gate-D
	return c
}

// fig4Config: 2 traps, total trap capacity 4; T0 = {0,1}, T1 = {2,3,4}
// so EC(T0)=2 and EC(T1)=1 as in the figure.
func fig4Config() (machine.Config, [][]int) {
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	return cfg, [][]int{{0, 1}, {2, 3, 4}}
}

// TestFigure4BaselinePingPong pins the pathology of Fig. 4: the
// excess-capacity policy shuttles ion 2 back and forth, spending 4 shuttles
// on 4 gates.
func TestFigure4BaselinePingPong(t *testing.T) {
	cfg, placement := fig4Config()
	res, err := New().CompileMapped(fig4Circuit(), cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shuttles != 4 {
		t.Fatalf("baseline shuttles = %d, want 4 (Fig. 4)", res.Shuttles)
	}
	// Every move is ion 2 ping-ponging between the traps.
	dirs := []string{}
	for _, op := range res.Ops {
		if op.Kind == machine.OpMove {
			if op.Ion != 2 {
				t.Errorf("moved ion %d, want 2", op.Ion)
			}
			dirs = append(dirs, opDir(op))
		}
	}
	want := []string{"T1->T0", "T0->T1", "T1->T0", "T0->T1"}
	for i := range want {
		if dirs[i] != want[i] {
			t.Fatalf("move directions = %v, want %v", dirs, want)
		}
	}
}

func opDir(op machine.Op) string {
	return "T" + string(rune('0'+op.Trap)) + "->T" + string(rune('0'+op.Trap2))
}

// TestListing1Semantics pins the three branches of Listing 1.
func TestListing1Semantics(t *testing.T) {
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	c := circuit.New("x", 6)
	c.Add2Q("ms", 0, 3)
	mkCtx := func(placement [][]int) *compiler.Context {
		st, err := machine.NewState(cfg, placement)
		if err != nil {
			t.Fatal(err)
		}
		return &compiler.Context{State: st, Graph: dag.Build(c), Circ: c, Executed: make([]bool, 1)}
	}
	d := ExcessCapacityDirection{}

	// EC(T0) < EC(T1): move trap0's ion into trap1.
	ctx := mkCtx([][]int{{0, 1, 2}, {3}})
	ion, dest := d.Choose(ctx, 0, 0, 3, nil)
	if ion != 0 || dest != 1 {
		t.Errorf("EC0<EC1: got ion %d -> T%d, want ion 0 -> T1", ion, dest)
	}

	// EC(T0) == EC(T1): move the gate's first ion.
	ctx = mkCtx([][]int{{0, 1}, {3, 2}})
	ion, dest = d.Choose(ctx, 0, 0, 3, nil)
	if ion != 0 || dest != 1 {
		t.Errorf("tie: got ion %d -> T%d, want ion 0 -> T1 (first ion)", ion, dest)
	}

	// EC(T0) > EC(T1): move trap1's ion into trap0.
	ctx = mkCtx([][]int{{0}, {3, 1, 2}})
	ion, dest = d.Choose(ctx, 0, 0, 3, nil)
	if ion != 3 || dest != 0 {
		t.Errorf("EC0>EC1: got ion %d -> T%d, want ion 3 -> T0", ion, dest)
	}
}

// TestFirstFitRebalanceTrapZeroBias pins Fig. 7's baseline behaviour: the
// search starts from trap 0, so a blocked T4 ships an ion 4 hops to T0 even
// though T3 and T5 are adjacent and free.
func TestFirstFitRebalanceTrapZeroBias(t *testing.T) {
	cfg := machine.Config{Topology: topo.Linear(6), Capacity: 6, CommCapacity: 0}
	// ECs per Fig. 7: T0=2, T1=1, T2=4, T3=2, T4=0 (full), T5=5.
	placement := [][]int{
		{0, 1, 2, 3},             // 4 ions, EC 2
		{4, 5, 6, 7, 8},          // 5 ions, EC 1
		{9, 10},                  // 2 ions, EC 4
		{11, 12, 13, 14},         // 4 ions, EC 2
		{15, 16, 17, 18, 19, 20}, // 6 ions, EC 0 — the blocker
		{21},                     // 1 ion, EC 5
	}
	st, err := machine.NewState(cfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("x", 22)
	ctx := &compiler.Context{State: st, Graph: dag.Build(c), Circ: c}
	ion, dest, err := FirstFitRebalancer{}.Choose(ctx, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dest != 0 {
		t.Errorf("baseline rebalance dest = T%d, want T0 (trap-0-first search)", dest)
	}
	// Edge ion facing T0 (the low side).
	if ion != 15 {
		t.Errorf("evicted ion = %d, want 15 (low chain edge)", ion)
	}
}

func TestFirstFitRebalanceNoRoom(t *testing.T) {
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 2, CommCapacity: 0}
	st, err := machine.NewState(cfg, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("x", 4)
	ctx := &compiler.Context{State: st, Graph: dag.Build(c), Circ: c}
	if _, _, err := (FirstFitRebalancer{}).Choose(ctx, 0, nil, nil); err == nil {
		t.Fatal("expected no-capacity error")
	}
}

func TestFirstFitRebalanceSkipsProtected(t *testing.T) {
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 3, CommCapacity: 0}
	st, err := machine.NewState(cfg, [][]int{{0, 1, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("x", 4)
	ctx := &compiler.Context{State: st, Graph: dag.Build(c), Circ: c, Protected: []int{2}}
	ion, dest, err := FirstFitRebalancer{}.Choose(ctx, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dest != 1 {
		t.Errorf("dest = T%d", dest)
	}
	// Edge facing T1 is ion 2 (protected): must pick ion 1 instead.
	if ion != 1 {
		t.Errorf("evicted ion = %d, want 1 (ion 2 protected)", ion)
	}
}

func TestBaselineCompilerName(t *testing.T) {
	b := New()
	if b.Direction.Name() != "excess-capacity" {
		t.Errorf("direction name = %q", b.Direction.Name())
	}
	if b.Rebalancer.Name() != "first-fit-from-trap0" {
		t.Errorf("rebalancer name = %q", b.Rebalancer.Name())
	}
	if b.Reorderer != nil {
		t.Error("baseline must not re-order gates")
	}
}

// TestBaselineFullBenchmarkSmoke compiles a small end-to-end circuit through
// Compile (decomposition + greedy mapping) and checks basic sanity.
func TestBaselineFullBenchmarkSmoke(t *testing.T) {
	c := circuit.New("smoke", 12)
	for i := 0; i < 12; i++ {
		c.Add1Q("h", i)
	}
	for i := 0; i+1 < 12; i++ {
		c.Add2Q("cx", i, i+1)
	}
	for i := 0; i < 12; i += 3 {
		c.Add2Q("cx", i, (i+6)%12)
	}
	cfg := machine.Config{Topology: topo.Linear(3), Capacity: 6, CommCapacity: 2}
	res, err := New().Compile(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gates2Q != c.Count2Q() {
		t.Errorf("2Q gates executed = %d, want %d", res.Gates2Q, c.Count2Q())
	}
	if res.CompileTime <= 0 {
		t.Error("compile time not recorded")
	}
	if res.DirectionPolicy != "excess-capacity" || res.ReorderPolicy != "" {
		t.Errorf("policy names: %q / %q", res.DirectionPolicy, res.ReorderPolicy)
	}
}
