// Package baseline implements the compilation policies of the QCCDSim
// compiler (Murali et al., ISCA 2020) that the paper compares against:
//
//   - excess-capacity shuttle direction (paper Listing 1), whose ping-pong
//     pathology is illustrated in Fig. 4;
//   - traffic-block re-balancing that searches for a destination trap
//     starting from trap 0 (Section III-C1, Fig. 7), built on the
//     min-cost-max-flow substrate with trap-index costs, which reproduces
//     the "always starts searching from trap-0" behaviour;
//   - no gate re-ordering (the baseline uses plain earliest-ready-gate-first
//     topological order).
package baseline

import (
	"fmt"

	"muzzle/internal/compiler"
	"muzzle/internal/flow"
)

// ExcessCapacityDirection is the shuttle direction policy of paper
// Listing 1: move the ion that sits in the trap with less excess capacity
// into the trap with more; on a tie, move the gate's first ion.
type ExcessCapacityDirection struct{}

// Name implements compiler.Direction.
func (ExcessCapacityDirection) Name() string { return "excess-capacity" }

// Choose implements compiler.Direction.
func (ExcessCapacityDirection) Choose(ctx *compiler.Context, gateIdx, qa, qb int, remaining []int) (int, int) {
	ta := ctx.State.IonTrap(qa)
	tb := ctx.State.IonTrap(qb)
	eca := ctx.State.ExcessCapacity(ta)
	ecb := ctx.State.ExcessCapacity(tb)
	switch {
	case eca < ecb:
		// trapA has less room: move its ion out, into trapB.
		return qa, tb
	case eca == ecb:
		// Listing 1 line 4: "Move 1st ion of the gate".
		return qa, tb
	default:
		return qb, ta
	}
}

// ChooseWindowed implements compiler.WindowedDirection. Listing 1 never
// looks at future gates, so the windowed form is Choose with no view at
// all — which lets the engine skip materializing the lookahead slice
// entirely when the baseline compiler runs on the indexed path.
func (d ExcessCapacityDirection) ChooseWindowed(ctx *compiler.Context, gateIdx, qa, qb int, _ compiler.Window) (int, int) {
	return d.Choose(ctx, gateIdx, qa, qb, nil)
}

// FirstFitRebalancer resolves traffic blocks the way the paper describes
// QCCDSim's logic: "the search for a destination trap always starts with
// T0" (Section III-C1). It is implemented as a 1-supply min-cost-max-flow
// assignment whose costs are trap indices, which makes the trap-0 bias an
// emergent property of the cost function and keeps the machinery identical
// in shape to QCCDSim's MCMF formulation. The evicted ion is the chain-edge
// ion on the side of the chosen destination (the physically cheapest split).
type FirstFitRebalancer struct{}

// Name implements compiler.Rebalancer.
func (FirstFitRebalancer) Name() string { return "first-fit-from-trap0" }

// Choose implements compiler.Rebalancer.
func (FirstFitRebalancer) Choose(ctx *compiler.Context, blocked int, remaining []int, avoid []int) (int, int, error) {
	st := ctx.State
	nTraps := st.NumTraps()
	// Candidate destinations: every other trap with excess capacity. The
	// trap-0 index bias is preserved within each preference tier; the tiers
	// (reachable and non-avoided first, then reachable, then anything)
	// exist only to keep the eviction feasible on congested machines.
	collect := func(skipAvoided, needClearPath bool) []int {
		var cands []int
		for t := 0; t < nTraps; t++ {
			if t == blocked || st.ExcessCapacity(t) <= 0 {
				continue
			}
			if skipAvoided && ctx.Avoided(avoid, t) {
				continue
			}
			if needClearPath && !compiler.PathClear(st, blocked, t) {
				continue
			}
			cands = append(cands, t)
		}
		return cands
	}
	cands := collect(true, true)
	if len(cands) == 0 {
		cands = collect(false, true)
	}
	if len(cands) == 0 {
		cands = collect(false, false)
	}
	if len(cands) == 0 {
		return -1, -1, fmt.Errorf("baseline: no trap has excess capacity")
	}
	// MCMF with trap-index costs: the minimum-cost unit of flow goes to the
	// lowest-indexed trap with room — QCCDSim's trap-0-first search.
	supplies := []int{1}
	demands := make([]int, len(cands))
	cost := [][]int{make([]int, len(cands))}
	for i, t := range cands {
		demands[i] = st.ExcessCapacity(t)
		cost[0][i] = t
	}
	ship, _, err := flow.Assignment(supplies, demands, cost)
	if err != nil {
		return -1, -1, err
	}
	dest := -1
	for i, s := range ship[0] {
		if s > 0 {
			dest = cands[i]
			break
		}
	}
	if dest < 0 {
		return -1, -1, fmt.Errorf("baseline: flow solver moved no ion")
	}
	// Evict the chain-edge ion facing the destination (the physically
	// cheapest split), skipping inward past ions the engine has protected
	// (the active gate's own operands).
	chain := st.Chain(blocked)
	idxs := make([]int, len(chain))
	for i := range idxs {
		if dest > blocked {
			idxs[i] = len(chain) - 1 - i
		} else {
			idxs[i] = i
		}
	}
	ion := chain[idxs[0]]
	for _, i := range idxs {
		if !ctx.IsProtected(chain[i]) {
			ion = chain[i]
			break
		}
	}
	return ion, dest, nil
}

// ChooseWindowed implements compiler.WindowedRebalancer. The trap-0-first
// search never consults the remaining view, so the windowed form simply
// forwards to Choose with none.
func (r FirstFitRebalancer) ChooseWindowed(ctx *compiler.Context, blocked int, _ compiler.Window, avoid []int) (int, int, error) {
	return r.Choose(ctx, blocked, nil, avoid)
}

// New returns the baseline QCCDSim-style compiler: excess-capacity
// direction, trap-0-first re-balancing, and no gate re-ordering.
func New() *compiler.Compiler {
	return &compiler.Compiler{
		Direction:  ExcessCapacityDirection{},
		Rebalancer: FirstFitRebalancer{},
	}
}
