package circuit

import (
	"fmt"
	"math"
)

// Native gate set for trapped-ion hardware, following the convention of the
// QCCD literature (paper Section II-B): arbitrary single-qubit rotations
// R(theta, phi), virtual RZ, and the two-qubit Molmer-Sorensen (MS) gate.
//
// Decompositions below use the standard textbook identities. Gate *counts*
// are what matter for shuttle behaviour; in particular one CX costs exactly
// one MS (plus single-qubit corrections), and one controlled-phase costs two
// CX, which reproduces the paper's 2Q-gate accounting (e.g. QFT-64 has
// 64*63 = 4032 two-qubit gates after CP decomposition).

// IsNative reports whether the gate mnemonic belongs to the trapped-ion
// native set handled directly by the machine model.
func IsNative(name string) bool {
	switch name {
	case "r", "rz", "ms", "barrier", "measure":
		return true
	}
	return false
}

// Decompose rewrites c into an equivalent circuit using only native gates.
// Unknown mnemonics produce an error. The input circuit is not modified.
func Decompose(c *Circuit) (*Circuit, error) {
	out := New(c.Name, c.NumQubits)
	// Pre-size the gate list from the known expansion factors so large
	// decompositions don't pay repeated slice-growth copies.
	est := 0
	for _, g := range c.Gates {
		est += nativeCost(g.Name)
	}
	out.Gates = make([]Gate, 0, est)
	for i, g := range c.Gates {
		if err := decomposeGate(out, g); err != nil {
			return nil, fmt.Errorf("circuit %q: gate %d: %w", c.Name, i, err)
		}
	}
	return out, nil
}

func decomposeGate(out *Circuit, g Gate) error {
	q := g.Qubits
	p := g.Params
	param := func(i int) float64 {
		if i < len(p) {
			return p[i]
		}
		return 0
	}
	switch g.Name {
	case "r": // R(theta, phi): rotation by theta about cos(phi)X+sin(phi)Y
		out.Add1Q("r", q[0], param(0), param(1))
	case "rz":
		out.Add1Q("rz", q[0], param(0))
	case "ms":
		out.Add2Q("ms", q[0], q[1], param(0))
	case "barrier":
		if err := out.AddCopy("barrier", q, nil); err != nil {
			return err
		}
	case "measure":
		out.AddMeasure(q[0], g.Cbit)
	case "x":
		out.Add1Q("r", q[0], math.Pi, 0)
	case "y":
		out.Add1Q("r", q[0], math.Pi, math.Pi/2)
	case "z":
		out.Add1Q("rz", q[0], math.Pi)
	case "s":
		out.Add1Q("rz", q[0], math.Pi/2)
	case "sdg":
		out.Add1Q("rz", q[0], -math.Pi/2)
	case "t":
		out.Add1Q("rz", q[0], math.Pi/4)
	case "tdg":
		out.Add1Q("rz", q[0], -math.Pi/4)
	case "h": // H = RZ(pi) . R(pi/2, pi/2)  (up to global phase)
		out.Add1Q("r", q[0], math.Pi/2, math.Pi/2)
		out.Add1Q("rz", q[0], math.Pi)
	case "rx":
		out.Add1Q("r", q[0], param(0), 0)
	case "ry":
		out.Add1Q("r", q[0], param(0), math.Pi/2)
	case "u", "u3": // U(theta,phi,lambda) = RZ(phi) R(theta, ...) RZ(lambda)
		out.Add1Q("rz", q[0], param(2))
		out.Add1Q("r", q[0], param(0), math.Pi/2)
		out.Add1Q("rz", q[0], param(1))
	case "cx": // 1 MS + 4 single-qubit corrections (Maslov 2017 Eq. 6)
		out.Add1Q("r", q[0], math.Pi/2, math.Pi/2) // Ry(pi/2) on control
		out.Add2Q("ms", q[0], q[1], math.Pi/4)
		out.Add1Q("r", q[0], -math.Pi/2, 0) // Rx(-pi/2)
		out.Add1Q("r", q[1], -math.Pi/2, 0)
		out.Add1Q("r", q[0], -math.Pi/2, math.Pi/2) // Ry(-pi/2)
	case "cz": // CZ = (I ⊗ H) CX (I ⊗ H)
		if err := decomposeGate(out, Gate{Name: "h", Qubits: []int{q[1]}}); err != nil {
			return err
		}
		if err := decomposeGate(out, Gate{Name: "cx", Qubits: q}); err != nil {
			return err
		}
		return decomposeGate(out, Gate{Name: "h", Qubits: []int{q[1]}})
	case "cp", "cu1": // controlled-phase: 2 CX + 3 RZ
		th := param(0)
		out.Add1Q("rz", q[0], th/2)
		if err := decomposeGate(out, Gate{Name: "cx", Qubits: q}); err != nil {
			return err
		}
		out.Add1Q("rz", q[1], -th/2)
		if err := decomposeGate(out, Gate{Name: "cx", Qubits: q}); err != nil {
			return err
		}
		out.Add1Q("rz", q[1], th/2)
	case "rzz": // exp(-i th/2 ZZ): 2 CX + 1 RZ
		if err := decomposeGate(out, Gate{Name: "cx", Qubits: q}); err != nil {
			return err
		}
		out.Add1Q("rz", q[1], param(0))
		return decomposeGate(out, Gate{Name: "cx", Qubits: q})
	case "swap": // 3 CX
		for i := 0; i < 3; i++ {
			a, b := q[0], q[1]
			if i == 1 {
				a, b = b, a
			}
			if err := decomposeGate(out, Gate{Name: "cx", Qubits: []int{a, b}}); err != nil {
				return err
			}
		}
	case "ccx": // Toffoli: standard 6-CX network (Nielsen & Chuang Fig. 4.9)
		a, b, t := q[0], q[1], q[2]
		steps := []Gate{
			{Name: "h", Qubits: []int{t}},
			{Name: "cx", Qubits: []int{b, t}},
			{Name: "tdg", Qubits: []int{t}},
			{Name: "cx", Qubits: []int{a, t}},
			{Name: "t", Qubits: []int{t}},
			{Name: "cx", Qubits: []int{b, t}},
			{Name: "tdg", Qubits: []int{t}},
			{Name: "cx", Qubits: []int{a, t}},
			{Name: "t", Qubits: []int{b}},
			{Name: "t", Qubits: []int{t}},
			{Name: "h", Qubits: []int{t}},
			{Name: "cx", Qubits: []int{a, b}},
			{Name: "t", Qubits: []int{a}},
			{Name: "tdg", Qubits: []int{b}},
			{Name: "cx", Qubits: []int{a, b}},
		}
		for _, s := range steps {
			if err := decomposeGate(out, s); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("no native decomposition for gate %q", g.Name)
	}
	return nil
}

// nativeCost returns the exact number of native gates the named gate
// decomposes into (used to pre-size the output gate list).
func nativeCost(name string) int {
	switch name {
	case "r", "rz", "ms", "barrier", "measure", "x", "y", "z", "s", "sdg", "t", "tdg", "rx", "ry":
		return 1
	case "h":
		return 2
	case "u", "u3":
		return 3
	case "cx":
		return 5
	case "cz":
		return 2*2 + 5
	case "cp", "cu1":
		return 3 + 2*5
	case "rzz":
		return 1 + 2*5
	case "swap":
		return 3 * 5
	case "ccx":
		return 2*2 + 6*5 + 7
	default:
		return 1
	}
}

// MSCost returns the number of MS gates the named gate costs after
// decomposition (0 for 1Q gates). It is used by generators to reason about
// 2Q budgets without materializing the decomposition.
func MSCost(name string) int {
	switch name {
	case "ms", "cx", "cz":
		return 1
	case "cp", "cu1", "rzz":
		return 2
	case "swap":
		return 3
	case "ccx":
		return 6
	default:
		return 0
	}
}
