// Package circuit provides the quantum-circuit intermediate representation
// used throughout the compiler: gates, circuits, and qubit bookkeeping.
//
// A circuit is an ordered list of gates over a fixed-size qubit register.
// Two-qubit gates are what drive shuttle traffic in a multi-trap trapped-ion
// machine, so the IR keeps two-qubit structure explicit and cheap to query.
package circuit

import (
	"fmt"
	"strings"
)

// GateKind classifies a gate by arity and role.
type GateKind int

const (
	// Kind1Q is a single-qubit gate (rotations, Hadamard, ...).
	Kind1Q GateKind = iota
	// Kind2Q is a two-qubit entangling gate (MS, CX, CZ, CP, ...).
	Kind2Q
	// KindBarrier is a scheduling barrier; it spans qubits but performs no
	// physical operation.
	KindBarrier
	// KindMeasure is a terminal measurement on one qubit.
	KindMeasure
)

// String returns a human-readable kind name.
func (k GateKind) String() string {
	switch k {
	case Kind1Q:
		return "1q"
	case Kind2Q:
		return "2q"
	case KindBarrier:
		return "barrier"
	case KindMeasure:
		return "measure"
	default:
		return fmt.Sprintf("GateKind(%d)", int(k))
	}
}

// Gate is a single operation in a circuit. Qubit operands are indices into
// the circuit's register. Params carries rotation angles where relevant.
type Gate struct {
	// Name is the gate mnemonic, lower-case ("ms", "cx", "h", "rz", ...).
	Name string
	// Qubits are the operand qubit indices. Length 1 for 1Q gates and
	// measurements, 2 for 2Q gates, >=1 for barriers.
	Qubits []int
	// Params are rotation angles in radians, if any.
	Params []float64
	// Cbit is the classical bit receiving the result of a measure gate
	// (the c[i] target of "measure q -> c[i]" in QASM). It is ignored for
	// every other gate kind. The zero value targets c[0], so single-measure
	// circuits built without setting it keep their historical meaning;
	// multi-measure generators should wire each measurement explicitly
	// (AddMeasure) — the QASM writer emits Cbit faithfully rather than
	// renumbering measurements sequentially.
	Cbit int
}

// Kind derives the gate kind from the mnemonic and operand count.
func (g Gate) Kind() GateKind {
	switch g.Name {
	case "barrier":
		return KindBarrier
	case "measure":
		return KindMeasure
	}
	if len(g.Qubits) == 2 {
		return Kind2Q
	}
	return Kind1Q
}

// Is2Q reports whether the gate is a two-qubit entangling gate.
func (g Gate) Is2Q() bool { return g.Kind() == Kind2Q }

// Uses reports whether the gate acts on qubit q.
func (g Gate) Uses(q int) bool {
	for _, o := range g.Qubits {
		if o == q {
			return true
		}
	}
	return false
}

// Other returns the partner operand of q in a two-qubit gate. It panics if
// the gate is not 2Q or does not use q; callers must check first.
func (g Gate) Other(q int) int {
	if len(g.Qubits) != 2 {
		panic(fmt.Sprintf("circuit: Other on %d-qubit gate %q", len(g.Qubits), g.Name))
	}
	switch q {
	case g.Qubits[0]:
		return g.Qubits[1]
	case g.Qubits[1]:
		return g.Qubits[0]
	}
	panic(fmt.Sprintf("circuit: gate %q does not use qubit %d", g.Name, q))
}

// String renders the gate in a QASM-like form.
func (g Gate) String() string {
	var b strings.Builder
	b.WriteString(g.Name)
	if len(g.Params) > 0 {
		b.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", p)
		}
		b.WriteByte(')')
	}
	b.WriteByte(' ')
	for i, q := range g.Qubits {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "q[%d]", q)
	}
	return b.String()
}

// Circuit is an ordered gate list over a register of NumQubits qubits.
type Circuit struct {
	// Name identifies the circuit (benchmark name, file stem, ...).
	Name string
	// NumQubits is the register size. All gate operands must be in
	// [0, NumQubits).
	NumQubits int
	// Gates is the program order.
	Gates []Gate

	// intArena and f64Arena are block allocators for gate operand and
	// parameter storage. Builder methods (Add1Q, Add2Q, ...) carve each
	// gate's Qubits/Params out of a shared block instead of allocating a
	// fresh slice per gate, which on large circuits (QFT-64 decomposes to
	// ~20k gates) removes one heap object per gate from the compile path.
	// Blocks are never grown in place, so handed-out sub-slices stay valid.
	intArena []int
	f64Arena []float64
}

// arenaBlock is the allocation granularity of the operand/param arenas.
const arenaBlock = 2048

// allocInts returns a zeroed int slice of length k carved from the arena.
// The slice has full capacity k, so appends by the caller cannot bleed into
// neighboring gates' storage.
func (c *Circuit) allocInts(k int) []int {
	if k > arenaBlock {
		return make([]int, k)
	}
	if cap(c.intArena)-len(c.intArena) < k {
		c.intArena = make([]int, 0, arenaBlock)
	}
	n := len(c.intArena)
	c.intArena = c.intArena[:n+k]
	return c.intArena[n : n+k : n+k]
}

// allocFloats is allocInts for float64 parameter storage.
func (c *Circuit) allocFloats(k int) []float64 {
	if k > arenaBlock {
		return make([]float64, k)
	}
	if cap(c.f64Arena)-len(c.f64Arena) < k {
		c.f64Arena = make([]float64, 0, arenaBlock)
	}
	n := len(c.f64Arena)
	c.f64Arena = c.f64Arena[:n+k]
	return c.f64Arena[n : n+k : n+k]
}

// arenaParams copies params into arena storage; empty params share nil.
func (c *Circuit) arenaParams(params []float64) []float64 {
	if len(params) == 0 {
		return nil
	}
	ps := c.allocFloats(len(params))
	copy(ps, params)
	return ps
}

// New returns an empty circuit over n qubits.
func New(name string, n int) *Circuit {
	return &Circuit{Name: name, NumQubits: n}
}

// Append adds a gate, validating operands against the register.
func (c *Circuit) Append(g Gate) error {
	if len(g.Qubits) == 0 {
		return fmt.Errorf("circuit %q: gate %q has no operands", c.Name, g.Name)
	}
	if g.Kind() == KindMeasure && g.Cbit < 0 {
		return fmt.Errorf("circuit %q: measure of q[%d] targets negative classical bit %d", c.Name, g.Qubits[0], g.Cbit)
	}
	dupOK := g.Name == "barrier"
	for i, q := range g.Qubits {
		if q < 0 || q >= c.NumQubits {
			return fmt.Errorf("circuit %q: gate %q operand q[%d] outside register of size %d", c.Name, g.Name, q, c.NumQubits)
		}
		if !dupOK {
			// Operand lists are tiny (1-3 qubits outside barriers), so a
			// quadratic scan beats a per-gate map allocation.
			for _, prev := range g.Qubits[:i] {
				if prev == q {
					return fmt.Errorf("circuit %q: gate %q repeats operand q[%d]", c.Name, g.Name, q)
				}
			}
		}
	}
	c.Gates = append(c.Gates, g)
	return nil
}

// MustAppend is Append that panics on error; for use in generators and tests
// where operands are constructed, not parsed.
func (c *Circuit) MustAppend(g Gate) {
	if err := c.Append(g); err != nil {
		panic(err)
	}
}

// Add1Q appends a single-qubit gate. Operands and params are copied into the
// circuit's arena, so the call allocates no per-gate slices.
func (c *Circuit) Add1Q(name string, q int, params ...float64) {
	qs := c.allocInts(1)
	qs[0] = q
	c.MustAppend(Gate{Name: name, Qubits: qs, Params: c.arenaParams(params)})
}

// Add2Q appends a two-qubit gate. Operands and params are copied into the
// circuit's arena, so the call allocates no per-gate slices.
func (c *Circuit) Add2Q(name string, a, b int, params ...float64) {
	qs := c.allocInts(2)
	qs[0], qs[1] = a, b
	c.MustAppend(Gate{Name: name, Qubits: qs, Params: c.arenaParams(params)})
}

// AddMeasure appends a measurement of qubit q into classical bit cbit.
func (c *Circuit) AddMeasure(q, cbit int) {
	qs := c.allocInts(1)
	qs[0] = q
	c.MustAppend(Gate{Name: "measure", Qubits: qs, Cbit: cbit})
}

// AddCopy appends a gate whose operand and parameter slices are copied into
// the circuit's arena; the caller keeps ownership of the argument slices.
// It cannot carry measurement wiring — copy measure gates with CopyGate or
// AddMeasure so Gate.Cbit is preserved.
func (c *Circuit) AddCopy(name string, qubits []int, params []float64) error {
	qs := c.allocInts(len(qubits))
	copy(qs, qubits)
	return c.Append(Gate{Name: name, Qubits: qs, Params: c.arenaParams(params)})
}

// CopyGate appends a deep copy of g — operands, parameters, and measure
// wiring (Cbit) — into the circuit's arena; the caller keeps ownership of
// g's slices.
func (c *Circuit) CopyGate(g Gate) error {
	qs := c.allocInts(len(g.Qubits))
	copy(qs, g.Qubits)
	return c.Append(Gate{Name: g.Name, Qubits: qs, Params: c.arenaParams(g.Params), Cbit: g.Cbit})
}

// Count2Q returns the number of two-qubit gates.
func (c *Circuit) Count2Q() int {
	n := 0
	for _, g := range c.Gates {
		if g.Is2Q() {
			n++
		}
	}
	return n
}

// Count1Q returns the number of single-qubit gates.
func (c *Circuit) Count1Q() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind() == Kind1Q {
			n++
		}
	}
	return n
}

// TwoQubitGates returns the indices (into Gates) of all 2Q gates, in order.
func (c *Circuit) TwoQubitGates() []int {
	var idx []int
	for i, g := range c.Gates {
		if g.Is2Q() {
			idx = append(idx, i)
		}
	}
	return idx
}

// UsedQubits returns the sorted set of qubits touched by at least one gate.
func (c *Circuit) UsedQubits() []int {
	used := make([]bool, c.NumQubits)
	for _, g := range c.Gates {
		for _, q := range g.Qubits {
			used[q] = true
		}
	}
	var out []int
	for q, u := range used {
		if u {
			out = append(out, q)
		}
	}
	return out
}

// InteractionCount returns, for each unordered qubit pair that shares at
// least one 2Q gate, the number of such gates. Keys are packed as a*n+b with
// a < b where n = NumQubits.
func (c *Circuit) InteractionCount() map[int]int {
	m := make(map[int]int)
	for _, g := range c.Gates {
		if !g.Is2Q() {
			continue
		}
		a, b := g.Qubits[0], g.Qubits[1]
		if a > b {
			a, b = b, a
		}
		m[a*c.NumQubits+b]++
	}
	return m
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits, Gates: make([]Gate, len(c.Gates))}
	for i, g := range c.Gates {
		ng := Gate{Name: g.Name, Cbit: g.Cbit}
		ng.Qubits = append([]int(nil), g.Qubits...)
		if len(g.Params) > 0 {
			ng.Params = append([]float64(nil), g.Params...)
		}
		out.Gates[i] = ng
	}
	return out
}

// Validate checks every gate's operands; it returns the first problem found.
func (c *Circuit) Validate() error {
	if c.NumQubits <= 0 {
		return fmt.Errorf("circuit %q: non-positive register size %d", c.Name, c.NumQubits)
	}
	for i, g := range c.Gates {
		if len(g.Qubits) == 0 {
			return fmt.Errorf("circuit %q: gate %d (%q) has no operands", c.Name, i, g.Name)
		}
		if g.Kind() == KindMeasure && g.Cbit < 0 {
			return fmt.Errorf("circuit %q: gate %d measures q[%d] into negative classical bit %d", c.Name, i, g.Qubits[0], g.Cbit)
		}
		dupOK := g.Name == "barrier"
		for j, q := range g.Qubits {
			if q < 0 || q >= c.NumQubits {
				return fmt.Errorf("circuit %q: gate %d (%q) operand q[%d] outside register of size %d", c.Name, i, g.Name, q, c.NumQubits)
			}
			if !dupOK {
				for _, prev := range g.Qubits[:j] {
					if prev == q {
						return fmt.Errorf("circuit %q: gate %d (%q) repeats operand q[%d]", c.Name, i, g.Name, q)
					}
				}
			}
		}
	}
	return nil
}

// Depth returns the circuit depth counting only gate layers: the length of
// the longest chain of gates sharing qubits.
func (c *Circuit) Depth() int {
	level := make([]int, c.NumQubits)
	depth := 0
	for _, g := range c.Gates {
		if g.Kind() == KindBarrier {
			continue
		}
		l := 0
		for _, q := range g.Qubits {
			if level[q] > l {
				l = level[q]
			}
		}
		l++
		for _, q := range g.Qubits {
			level[q] = l
		}
		if l > depth {
			depth = l
		}
	}
	return depth
}

// String renders the circuit one gate per line.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %q (%d qubits, %d gates)\n", c.Name, c.NumQubits, len(c.Gates))
	for i, g := range c.Gates {
		fmt.Fprintf(&b, "%4d: %s\n", i, g.String())
	}
	return b.String()
}
