package circuit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGateKind(t *testing.T) {
	cases := []struct {
		g    Gate
		want GateKind
	}{
		{Gate{Name: "ms", Qubits: []int{0, 1}}, Kind2Q},
		{Gate{Name: "cx", Qubits: []int{2, 3}}, Kind2Q},
		{Gate{Name: "r", Qubits: []int{0}}, Kind1Q},
		{Gate{Name: "rz", Qubits: []int{5}}, Kind1Q},
		{Gate{Name: "barrier", Qubits: []int{0, 1, 2}}, KindBarrier},
		{Gate{Name: "measure", Qubits: []int{0}}, KindMeasure},
	}
	for _, c := range cases {
		if got := c.g.Kind(); got != c.want {
			t.Errorf("Kind(%s) = %v, want %v", c.g.Name, got, c.want)
		}
	}
}

func TestGateKindString(t *testing.T) {
	if Kind1Q.String() != "1q" || Kind2Q.String() != "2q" {
		t.Fatalf("kind strings wrong: %s %s", Kind1Q, Kind2Q)
	}
	if KindBarrier.String() != "barrier" || KindMeasure.String() != "measure" {
		t.Fatalf("kind strings wrong: %s %s", KindBarrier, KindMeasure)
	}
	if got := GateKind(42).String(); !strings.Contains(got, "42") {
		t.Fatalf("unknown kind string = %q", got)
	}
}

func TestGateOther(t *testing.T) {
	g := Gate{Name: "ms", Qubits: []int{3, 7}}
	if g.Other(3) != 7 || g.Other(7) != 3 {
		t.Fatalf("Other: got %d,%d", g.Other(3), g.Other(7))
	}
}

func TestGateOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-operand should panic")
		}
	}()
	g := Gate{Name: "ms", Qubits: []int{3, 7}}
	g.Other(5)
}

func TestGateOtherPanicsOn1Q(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Other on 1q gate should panic")
		}
	}()
	g := Gate{Name: "r", Qubits: []int{3}}
	g.Other(3)
}

func TestGateUses(t *testing.T) {
	g := Gate{Name: "ms", Qubits: []int{1, 4}}
	if !g.Uses(1) || !g.Uses(4) || g.Uses(2) {
		t.Fatal("Uses wrong")
	}
}

func TestAppendValidation(t *testing.T) {
	c := New("t", 4)
	if err := c.Append(Gate{Name: "ms", Qubits: []int{0, 4}}); err == nil {
		t.Error("expected out-of-range error")
	}
	if err := c.Append(Gate{Name: "ms", Qubits: []int{-1, 2}}); err == nil {
		t.Error("expected negative-operand error")
	}
	if err := c.Append(Gate{Name: "ms", Qubits: []int{2, 2}}); err == nil {
		t.Error("expected repeated-operand error")
	}
	if err := c.Append(Gate{Name: "ms", Qubits: nil}); err == nil {
		t.Error("expected empty-operand error")
	}
	if err := c.Append(Gate{Name: "ms", Qubits: []int{0, 1}}); err != nil {
		t.Errorf("valid gate rejected: %v", err)
	}
}

func TestMustAppendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAppend should panic on invalid gate")
		}
	}()
	c := New("t", 2)
	c.MustAppend(Gate{Name: "ms", Qubits: []int{0, 9}})
}

func TestCounts(t *testing.T) {
	c := New("t", 6)
	c.Add2Q("ms", 0, 1)
	c.Add2Q("ms", 2, 3)
	c.Add1Q("r", 0, math.Pi, 0)
	c.Add1Q("rz", 1, 0.5)
	c.MustAppend(Gate{Name: "measure", Qubits: []int{0}})
	if got := c.Count2Q(); got != 2 {
		t.Errorf("Count2Q = %d, want 2", got)
	}
	if got := c.Count1Q(); got != 2 {
		t.Errorf("Count1Q = %d, want 2", got)
	}
	idx := c.TwoQubitGates()
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Errorf("TwoQubitGates = %v", idx)
	}
}

func TestUsedQubits(t *testing.T) {
	c := New("t", 6)
	c.Add2Q("ms", 1, 4)
	c.Add1Q("r", 5)
	got := c.UsedQubits()
	want := []int{1, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("UsedQubits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UsedQubits = %v, want %v", got, want)
		}
	}
}

func TestInteractionCount(t *testing.T) {
	c := New("t", 4)
	c.Add2Q("ms", 0, 1)
	c.Add2Q("ms", 1, 0) // same unordered pair
	c.Add2Q("ms", 2, 3)
	m := c.InteractionCount()
	if m[0*4+1] != 2 {
		t.Errorf("pair (0,1) count = %d, want 2", m[0*4+1])
	}
	if m[2*4+3] != 1 {
		t.Errorf("pair (2,3) count = %d, want 1", m[2*4+3])
	}
	if len(m) != 2 {
		t.Errorf("distinct pairs = %d, want 2", len(m))
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New("t", 4)
	c.Add2Q("ms", 0, 1, 0.25)
	d := c.Clone()
	d.Gates[0].Qubits[0] = 3
	d.Gates[0].Params[0] = 9
	if c.Gates[0].Qubits[0] != 0 || c.Gates[0].Params[0] != 0.25 {
		t.Fatal("Clone shares state with original")
	}
}

func TestDepth(t *testing.T) {
	c := New("t", 4)
	// Layer structure: (0,1)(2,3) || (1,2) || (0,1)
	c.Add2Q("ms", 0, 1)
	c.Add2Q("ms", 2, 3)
	c.Add2Q("ms", 1, 2)
	c.Add2Q("ms", 0, 1)
	if got := c.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	empty := New("e", 3)
	if empty.Depth() != 0 {
		t.Error("empty circuit depth should be 0")
	}
}

func TestDepthIgnoresBarrier(t *testing.T) {
	c := New("t", 2)
	c.Add2Q("ms", 0, 1)
	c.MustAppend(Gate{Name: "barrier", Qubits: []int{0, 1}})
	c.Add2Q("ms", 0, 1)
	if got := c.Depth(); got != 2 {
		t.Errorf("Depth = %d, want 2", got)
	}
}

func TestValidate(t *testing.T) {
	c := New("t", 3)
	c.Add2Q("ms", 0, 1)
	if err := c.Validate(); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}
	c.Gates = append(c.Gates, Gate{Name: "ms", Qubits: []int{0, 5}})
	if err := c.Validate(); err == nil {
		t.Fatal("expected validation error for out-of-range operand")
	}
	bad := &Circuit{Name: "b", NumQubits: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error for empty register")
	}
	dup := New("d", 3)
	dup.Gates = append(dup.Gates, Gate{Name: "ms", Qubits: []int{1, 1}})
	if err := dup.Validate(); err == nil {
		t.Fatal("expected validation error for duplicate operand")
	}
}

func TestGateString(t *testing.T) {
	g := Gate{Name: "ms", Qubits: []int{0, 1}, Params: []float64{0.5}}
	if got := g.String(); got != "ms(0.5) q[0],q[1]" {
		t.Errorf("String = %q", got)
	}
	g2 := Gate{Name: "h", Qubits: []int{3}}
	if got := g2.String(); got != "h q[3]" {
		t.Errorf("String = %q", got)
	}
}

func TestCircuitString(t *testing.T) {
	c := New("demo", 2)
	c.Add2Q("ms", 0, 1)
	s := c.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "ms q[0],q[1]") {
		t.Errorf("String output missing content: %q", s)
	}
}

func TestDecomposeBasics(t *testing.T) {
	c := New("t", 2)
	c.Add1Q("h", 0)
	c.Add2Q("cx", 0, 1)
	c.MustAppend(Gate{Name: "measure", Qubits: []int{0}})
	d, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range d.Gates {
		if !IsNative(g.Name) {
			t.Errorf("gate %d (%q) not native", i, g.Name)
		}
	}
	if got := d.Count2Q(); got != 1 {
		t.Errorf("cx should cost exactly 1 MS, got %d 2Q gates", got)
	}
}

func TestDecompose2QCosts(t *testing.T) {
	cases := []struct {
		name   string
		params []float64
		wantMS int
	}{
		{"cx", nil, 1},
		{"cz", nil, 1},
		{"cp", []float64{0.7}, 2},
		{"cu1", []float64{0.7}, 2},
		{"rzz", []float64{0.7}, 2},
		{"swap", nil, 3},
		{"ms", []float64{0.25}, 1},
	}
	for _, tc := range cases {
		c := New("t", 2)
		c.Add2Q(tc.name, 0, 1, tc.params...)
		d, err := Decompose(c)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := d.Count2Q(); got != tc.wantMS {
			t.Errorf("%s: MS count = %d, want %d", tc.name, got, tc.wantMS)
		}
		if got := MSCost(tc.name); got != tc.wantMS {
			t.Errorf("MSCost(%s) = %d, want %d", tc.name, got, tc.wantMS)
		}
	}
}

func TestDecompose1QGates(t *testing.T) {
	names := []string{"x", "y", "z", "s", "sdg", "t", "tdg", "h", "rx", "ry", "rz", "r", "u", "u3"}
	for _, name := range names {
		c := New("t", 1)
		c.Add1Q(name, 0, 0.1, 0.2, 0.3)
		d, err := Decompose(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Count2Q() != 0 {
			t.Errorf("%s: unexpected 2Q gates", name)
		}
		if MSCost(name) != 0 {
			t.Errorf("MSCost(%s) != 0", name)
		}
		for _, g := range d.Gates {
			if !IsNative(g.Name) {
				t.Errorf("%s decomposed to non-native %q", name, g.Name)
			}
		}
	}
}

func TestDecomposeUnknownGate(t *testing.T) {
	c := New("t", 3)
	c.MustAppend(Gate{Name: "fredkin", Qubits: []int{0, 1, 2}})
	if _, err := Decompose(c); err == nil {
		t.Fatal("expected error for unknown gate")
	}
}

func TestDecomposeBarrier(t *testing.T) {
	c := New("t", 3)
	c.MustAppend(Gate{Name: "barrier", Qubits: []int{0, 1, 2}})
	d, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Gates) != 1 || d.Gates[0].Kind() != KindBarrier {
		t.Fatalf("barrier not preserved: %v", d.Gates)
	}
}

// randomCircuit builds a random MS-only circuit for property tests.
func randomCircuit(rng *rand.Rand, n, gates int) *Circuit {
	c := New("rand", n)
	for i := 0; i < gates; i++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		for b == a {
			b = rng.Intn(n)
		}
		c.Add2Q("ms", a, b)
	}
	return c
}

func TestQuickCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 5+rng.Intn(10), rng.Intn(50))
		d := c.Clone()
		if d.NumQubits != c.NumQubits || len(d.Gates) != len(c.Gates) {
			return false
		}
		for i := range c.Gates {
			if c.Gates[i].String() != d.Gates[i].String() {
				return false
			}
		}
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickDecomposePreserves2QPairs(t *testing.T) {
	// Property: decomposition preserves the multiset of interacting pairs
	// (each cx touches exactly the same pair as its MS).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		c := New("p", n)
		for i := 0; i < 30; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.Add2Q("cx", a, b)
		}
		d, err := Decompose(c)
		if err != nil {
			return false
		}
		want := c.InteractionCount()
		got := d.InteractionCount()
		if len(want) != len(got) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickDepthBounds(t *testing.T) {
	// Property: 1 <= Depth <= #gates for non-empty circuits.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 4+rng.Intn(6), 1+rng.Intn(40))
		d := c.Depth()
		return d >= 1 && d <= len(c.Gates)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeasureCbitHelpers(t *testing.T) {
	c := New("m", 3)
	c.AddMeasure(1, 4)
	if g := c.Gates[0]; g.Kind() != KindMeasure || g.Qubits[0] != 1 || g.Cbit != 4 {
		t.Fatalf("AddMeasure gate = %+v", g)
	}
	// CopyGate preserves the classical wiring; Clone does too.
	d := New("copy", 3)
	if err := d.CopyGate(c.Gates[0]); err != nil {
		t.Fatal(err)
	}
	if d.Gates[0].Cbit != 4 {
		t.Errorf("CopyGate dropped Cbit: %+v", d.Gates[0])
	}
	if cl := c.Clone(); cl.Gates[0].Cbit != 4 {
		t.Errorf("Clone dropped Cbit: %+v", cl.Gates[0])
	}
	// Negative classical targets are rejected on append and by Validate.
	if err := c.Append(Gate{Name: "measure", Qubits: []int{0}, Cbit: -1}); err == nil {
		t.Error("Append accepted negative Cbit")
	}
	c.Gates = append(c.Gates, Gate{Name: "measure", Qubits: []int{0}, Cbit: -2})
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted negative Cbit")
	}
}
