package trace

import (
	"fmt"
	"io"
	"strings"

	"muzzle/internal/compiler"
	"muzzle/internal/machine"
	"muzzle/internal/sim"
)

// SVGOptions tune the timeline rendering.
type SVGOptions struct {
	// Width is the drawing width in pixels (0 = 1200).
	Width int
	// RowHeight is the per-trap lane height in pixels (0 = 28).
	RowHeight int
	// Params supply the operation durations (zero value = defaults).
	Params sim.TimeParams
}

// WriteSVG renders the compiled schedule as a trap x time Gantt chart:
// one horizontal lane per trap, a rectangle per operation (gates in blue,
// shuttle primitives in orange/red), using the same per-trap-clock timing
// semantics as the simulator. The output is a self-contained SVG document.
func WriteSVG(w io.Writer, res *compiler.Result, opt SVGOptions) error {
	if opt.Width <= 0 {
		opt.Width = 1200
	}
	if opt.RowHeight <= 0 {
		opt.RowHeight = 28
	}
	if err := opt.Params.Validate(); err != nil {
		opt.Params = sim.DefaultTimeParams()
	}
	st, err := machine.NewState(res.Config, res.InitialPlacement)
	if err != nil {
		return err
	}
	nTraps := res.Config.Topology.NumTraps()
	clock := make([]float64, nTraps)

	type box struct {
		trap       int
		start, end float64
		kind       machine.OpKind
		label      string
	}
	var boxes []box
	p := opt.Params
	add := func(trap int, dur float64, kind machine.OpKind, label string) {
		boxes = append(boxes, box{trap: trap, start: clock[trap], end: clock[trap] + dur, kind: kind, label: label})
		clock[trap] += dur
	}
	for _, op := range res.Ops {
		switch op.Kind {
		case machine.OpGate1Q:
			add(st.IonTrap(op.Ion), p.Gate1Q, op.Kind, op.Name)
		case machine.OpMeasure:
			add(st.IonTrap(op.Ion), p.Measure, op.Kind, "M")
		case machine.OpGate2Q:
			t := st.IonTrap(op.Ion)
			add(t, p.Gate2Q(st.Occupancy(t)), op.Kind, op.Name)
		case machine.OpSwap:
			add(st.IonTrap(op.Ion), p.Swap, op.Kind, "swap")
		case machine.OpSplit:
			add(st.IonTrap(op.Ion), p.Split, op.Kind, "split")
		case machine.OpMove:
			// Synchronize the two trap clocks, then draw the move on both.
			m := clock[op.Trap]
			if clock[op.Trap2] > m {
				m = clock[op.Trap2]
			}
			clock[op.Trap], clock[op.Trap2] = m, m
			add(op.Trap, p.Move, op.Kind, "")
			clock[op.Trap2] = m // add advanced only Trap
			add(op.Trap2, p.Move, op.Kind, fmt.Sprintf("i%d", op.Ion))
		case machine.OpMerge:
			if err := st.Teleport(op.Ion, op.Trap); err != nil {
				return err
			}
			add(op.Trap, p.Merge, op.Kind, "merge")
		}
	}
	makespan := 0.0
	for _, c := range clock {
		if c > makespan {
			makespan = c
		}
	}
	if makespan == 0 {
		makespan = 1
	}

	const leftMargin, topMargin = 60, 30
	height := topMargin + nTraps*opt.RowHeight + 40
	xScale := float64(opt.Width-leftMargin-20) / makespan

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="10">`+"\n", opt.Width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16">schedule %s: %d shuttles, makespan %.0f us (%s / %s)</text>`+"\n",
		leftMargin, escape(res.Circ.Name), res.Shuttles, makespan, escape(res.DirectionPolicy), escape(res.RebalancePolicy))
	for t := 0; t < nTraps; t++ {
		y := topMargin + t*opt.RowHeight
		fmt.Fprintf(&b, `<text x="8" y="%d">T%d</text>`+"\n", y+opt.RowHeight/2+4, t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n",
			leftMargin, y+opt.RowHeight, opt.Width-20, y+opt.RowHeight)
	}
	for _, bx := range boxes {
		x := leftMargin + int(bx.start*xScale)
		wpx := int((bx.end - bx.start) * xScale)
		if wpx < 1 {
			wpx = 1
		}
		y := topMargin + bx.trap*opt.RowHeight + 3
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" opacity="0.85">`+"\n",
			x, y, wpx, opt.RowHeight-6, colorFor(bx.kind))
		fmt.Fprintf(&b, `<title>%s T%d [%.0f..%.0f us]</title></rect>`+"\n",
			escape(bx.label), bx.trap, bx.start, bx.end)
	}
	// Time axis.
	fmt.Fprintf(&b, `<text x="%d" y="%d">0</text>`, leftMargin, height-12)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%.0f us</text>`+"\n", opt.Width-20, height-12, makespan)
	b.WriteString("</svg>\n")
	_, err = io.WriteString(w, b.String())
	return err
}

// colorFor maps op kinds to fill colors: gates blue-ish, shuttle primitives
// warm (the expensive operations the compiler minimizes).
func colorFor(k machine.OpKind) string {
	switch k {
	case machine.OpGate2Q:
		return "#2b6cb0"
	case machine.OpGate1Q:
		return "#90cdf4"
	case machine.OpMeasure:
		return "#553c9a"
	case machine.OpSwap:
		return "#f6e05e"
	case machine.OpSplit:
		return "#ed8936"
	case machine.OpMerge:
		return "#dd6b20"
	case machine.OpMove:
		return "#e53e3e"
	default:
		return "#a0aec0"
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
