package trace

import (
	"bytes"
	"strings"
	"testing"

	"muzzle/internal/baseline"
	"muzzle/internal/bench"
	"muzzle/internal/compiler"
	"muzzle/internal/machine"
	"muzzle/internal/topo"
)

func compiled(t *testing.T) *compiler.Result {
	t.Helper()
	cfg := machine.Config{Topology: topo.Linear(3), Capacity: 6, CommCapacity: 2}
	c := bench.Random(10, 40, 99)
	res, err := baseline.New().Compile(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestJSONRoundTrip(t *testing.T) {
	res := compiled(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	jt, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if jt.Circuit != res.Circ.Name || jt.Qubits != res.Circ.NumQubits {
		t.Errorf("header mismatch: %+v", jt)
	}
	if jt.Shuttles != res.Shuttles {
		t.Errorf("shuttles = %d, want %d", jt.Shuttles, res.Shuttles)
	}
	if len(jt.Ops) != len(res.Ops) {
		t.Errorf("ops = %d, want %d", len(jt.Ops), len(res.Ops))
	}
	moves := 0
	for _, op := range jt.Ops {
		if op.Kind == "move" {
			moves++
			if op.Dest == op.Trap {
				t.Error("move with dest == trap")
			}
		}
	}
	if moves != res.Shuttles {
		t.Errorf("JSON moves = %d, want %d", moves, res.Shuttles)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestRenderSnapshots(t *testing.T) {
	res := compiled(t)
	var buf bytes.Buffer
	if err := Render(&buf, res, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "initial:") {
		t.Error("missing initial snapshot")
	}
	if !strings.Contains(out, "final (") {
		t.Error("missing final snapshot")
	}
	if !strings.Contains(out, "EC=") {
		t.Error("missing excess-capacity annotations")
	}
}

func TestRenderMaxSnapshots(t *testing.T) {
	res := compiled(t)
	var buf bytes.Buffer
	if err := Render(&buf, res, RenderOptions{MaxSnapshots: 3}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "after ")
	if lines > 3 {
		t.Errorf("snapshots = %d, want <= 3", lines)
	}
}

func TestHistogram(t *testing.T) {
	res := compiled(t)
	h := Histogram(res)
	for _, want := range []string{"gate2q=", "move=", "split=", "merge="} {
		if !strings.Contains(h, want) {
			t.Errorf("histogram missing %q: %s", want, h)
		}
	}
}

func TestWriteSVG(t *testing.T) {
	res := compiled(t)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, res, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "T0", "shuttles", "rect"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Every shuttle draws two move rectangles (source and destination lane).
	moves := strings.Count(out, "#e53e3e")
	if moves != 2*res.Shuttles {
		t.Errorf("move rects = %d, want %d", moves, 2*res.Shuttles)
	}
}

func TestWriteSVGEmptySchedule(t *testing.T) {
	res := compiled(t)
	res.Ops = nil
	res.Shuttles = 0
	var buf bytes.Buffer
	if err := WriteSVG(&buf, res, SVGOptions{Width: 400, RowHeight: 20}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("no SVG produced")
	}
}

func TestSVGEscape(t *testing.T) {
	if escape(`a<b>&"c"`) != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Errorf("escape = %q", escape(`a<b>&"c"`))
	}
}
