// Package trace provides inspection tooling for compiled schedules: JSON
// export of the operation trace (for external analysis or plotting) and an
// ASCII rendering of trap occupancy over time in the style of the paper's
// figures.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"muzzle/internal/compiler"
	"muzzle/internal/machine"
)

// JSONOp is the serialized form of one trace operation.
type JSONOp struct {
	Kind string `json:"kind"`
	Ion  int    `json:"ion"`
	Ion2 int    `json:"ion2,omitempty"`
	Trap int    `json:"trap"`
	// Dest is the destination trap for moves.
	Dest int `json:"dest,omitempty"`
	// Gate is the source gate index for gate ops, -1 otherwise.
	Gate int `json:"gate"`
	// Name is the gate mnemonic.
	Name string `json:"name,omitempty"`
}

// JSONTrace is the serialized form of a compilation result.
type JSONTrace struct {
	Circuit          string   `json:"circuit"`
	Qubits           int      `json:"qubits"`
	Traps            int      `json:"traps"`
	Capacity         int      `json:"capacity"`
	DirectionPolicy  string   `json:"direction_policy"`
	RebalancePolicy  string   `json:"rebalance_policy"`
	ReorderPolicy    string   `json:"reorder_policy,omitempty"`
	Shuttles         int      `json:"shuttles"`
	InitialPlacement [][]int  `json:"initial_placement"`
	Ops              []JSONOp `json:"ops"`
}

// WriteJSON serializes the compilation result as indented JSON.
func WriteJSON(w io.Writer, res *compiler.Result) error {
	jt := JSONTrace{
		Circuit:          res.Circ.Name,
		Qubits:           res.Circ.NumQubits,
		Traps:            res.Config.Topology.NumTraps(),
		Capacity:         res.Config.Capacity,
		DirectionPolicy:  res.DirectionPolicy,
		RebalancePolicy:  res.RebalancePolicy,
		ReorderPolicy:    res.ReorderPolicy,
		Shuttles:         res.Shuttles,
		InitialPlacement: res.InitialPlacement,
	}
	for _, op := range res.Ops {
		jo := JSONOp{Kind: op.Kind.String(), Ion: op.Ion, Trap: op.Trap, Gate: op.Gate, Name: op.Name}
		if op.Ion2 >= 0 {
			jo.Ion2 = op.Ion2
		}
		if op.Kind == machine.OpMove {
			jo.Dest = op.Trap2
		}
		jt.Ops = append(jt.Ops, jo)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// ReadJSON parses a trace previously written by WriteJSON.
func ReadJSON(r io.Reader) (*JSONTrace, error) {
	var jt JSONTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &jt, nil
}

// RenderOptions tune the ASCII rendering.
type RenderOptions struct {
	// Every renders a snapshot after every Nth shuttle (default 1).
	Every int
	// MaxSnapshots caps the output (default 50).
	MaxSnapshots int
}

// Render replays the trace and writes trap-occupancy snapshots after each
// shuttle, in the style of the paper's trap-state figures:
//
//	after move ion2 T0->T1:  T0: [0 1] (EC=2) | T1: [2 3 4] (EC=1)
func Render(w io.Writer, res *compiler.Result, opt RenderOptions) error {
	if opt.Every <= 0 {
		opt.Every = 1
	}
	if opt.MaxSnapshots <= 0 {
		opt.MaxSnapshots = 50
	}
	st, err := machine.NewState(res.Config, res.InitialPlacement)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "initial: %s\n", st)
	moves, snaps := 0, 0
	for _, op := range res.Ops {
		if op.Kind != machine.OpMerge && op.Kind != machine.OpMove {
			continue
		}
		if op.Kind == machine.OpMove {
			moves++
			continue
		}
		// Merge: apply the relocation.
		if err := st.Teleport(op.Ion, op.Trap); err != nil {
			return fmt.Errorf("trace: replay failed: %w", err)
		}
		if moves%opt.Every == 0 && snaps < opt.MaxSnapshots {
			fmt.Fprintf(w, "after %3d shuttles (ion%d -> T%d): %s\n", moves, op.Ion, op.Trap, st)
			snaps++
		}
	}
	fmt.Fprintf(w, "final (%d shuttles): %s\n", res.Shuttles, st)
	return nil
}

// Histogram returns a per-kind op count summary line, e.g.
// "gate2q=560 move=223 split=210 merge=210 swap=1742".
func Histogram(res *compiler.Result) string {
	counts := map[machine.OpKind]int{}
	for _, op := range res.Ops {
		counts[op.Kind]++
	}
	order := []machine.OpKind{machine.OpGate1Q, machine.OpGate2Q, machine.OpSwap,
		machine.OpSplit, machine.OpMove, machine.OpMerge, machine.OpMeasure}
	var parts []string
	for _, k := range order {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
		}
	}
	return strings.Join(parts, " ")
}
