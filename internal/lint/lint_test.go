package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"muzzle/internal/lint"
	"muzzle/internal/lint/allocflow"
	"muzzle/internal/lint/analysis"
	"muzzle/internal/lint/analysistest"
	"muzzle/internal/lint/cachekey"
	"muzzle/internal/lint/callgraph"
	"muzzle/internal/lint/ctxflow"
	"muzzle/internal/lint/faultscope"
	"muzzle/internal/lint/fixer"
	"muzzle/internal/lint/guardedby"
	"muzzle/internal/lint/hotpath"
	"muzzle/internal/lint/httperr"
	"muzzle/internal/lint/load"
	"muzzle/internal/lint/lockorder"
)

func TestCachekey(t *testing.T) {
	diags, _ := analysistest.Run(t, "testdata", cachekey.Analyzer, "ckeyfix/internal/ckey")

	// The missing-field diagnostic must carry the mechanical hash-write
	// fix, anchored after the last Gate statement with the right helper.
	var fixed bool
	for _, d := range diags {
		if !strings.Contains(d.Message, "circuit.Gate.Label") || len(d.SuggestedFixes) == 0 {
			continue
		}
		fix := d.SuggestedFixes[0]
		if len(fix.TextEdits) != 1 {
			t.Fatalf("fix edits = %d, want 1", len(fix.TextEdits))
		}
		if got := string(fix.TextEdits[0].NewText); !strings.Contains(got, "writeString(h, g.Label)") {
			t.Errorf("fix text = %q, want a writeString(h, g.Label) insert", got)
		}
		if !strings.Contains(fix.Message, "ckey.Version") {
			t.Errorf("fix message %q should remind about the version bump", fix.Message)
		}
		fixed = true
	}
	if !fixed {
		t.Error("missing-field diagnostic carried no suggested fix")
	}
}

func TestFaultscope(t *testing.T) {
	analysistest.Run(t, "testdata", faultscope.Analyzer, "fsfix/use")
}

func TestFaultscopeExemptsRegistry(t *testing.T) {
	// The registry package declares scopes as literals by definition; the
	// analyzer must stay silent there.
	diags, _ := analysistest.Run(t, "testdata", faultscope.Analyzer, "fsfix/internal/faults")
	if len(diags) != 0 {
		t.Errorf("registry package produced %d diagnostics, want 0", len(diags))
	}
}

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "hotfix/a")
}

func TestGuardedby(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer, "gbfix/a")
}

func TestHTTPErr(t *testing.T) {
	diags, _ := analysistest.Run(t, "testdata", httperr.Analyzer, "httpfix/a")
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %d, want 2", len(diags))
	}
	wantFixes := []string{
		`writeError(w, http.StatusInternalServerError, "internal", err)`,
		`writeError(w, http.StatusBadRequest, "internal", errors.New("boom"))`,
	}
	for i, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			t.Errorf("diagnostic %d carried no fix", i)
			continue
		}
		if got := string(d.SuggestedFixes[0].TextEdits[0].NewText); got != wantFixes[i] {
			t.Errorf("fix %d = %q, want %q", i, got, wantFixes[i])
		}
	}
}

// TestCallgraph pins the engine's resolution semantics: which call forms
// produce static edges, which fall to ⊤, and where closure bodies land.
func TestCallgraph(t *testing.T) {
	prog, _ := analysistest.Program(t, "testdata", "cgfix/a")

	node := func(id string) *callgraph.Node {
		t.Helper()
		n := prog.Node(id)
		if n == nil {
			t.Fatalf("no node %q in program", id)
		}
		return n
	}
	edges := func(n *callgraph.Node) []string {
		out := make([]string, len(n.Out))
		for i, e := range n.Out {
			out[i] = e.CalleeID
		}
		return out
	}

	cases := []struct {
		id      string
		out     []string
		dynamic int
	}{
		{"cgfix/a.Direct", []string{"cgfix/a.F"}, 0},
		{"cgfix/a.MethodCall", []string{"cgfix/a.T.M"}, 0},
		{"cgfix/a.MethodValue", []string{"cgfix/a.T.M"}, 0},
		{"cgfix/a.FuncValue", []string{"cgfix/a.F"}, 0},
		{"cgfix/a.Closure", []string{"cgfix/a.F"}, 0},
		{"cgfix/a.Iface", nil, 1},
		{"cgfix/a.Reassigned", nil, 1},
		{"cgfix/a.MethodExpr", []string{"cgfix/a.T.M"}, 0},
		{"cgfix/a.Conversion", nil, 0},
	}
	for _, c := range cases {
		n := node(c.id)
		got := edges(n)
		if len(got) != len(c.out) {
			t.Errorf("%s: edges = %v, want %v", c.id, got, c.out)
			continue
		}
		for i := range got {
			if got[i] != c.out[i] {
				t.Errorf("%s: edge %d = %s, want %s", c.id, i, got[i], c.out[i])
			}
		}
		if len(n.Dynamic) != c.dynamic {
			t.Errorf("%s: dynamic sites = %d, want %d", c.id, len(n.Dynamic), c.dynamic)
		}
	}
}

func TestAllocflow(t *testing.T) {
	analysistest.Run(t, "testdata", allocflow.Analyzer, "afix/helper", "afix/hot")
}

func TestCtxflow(t *testing.T) {
	// The helper package is loaded as a dependency and feeds the summaries,
	// but only the covered package is a pass; helper's own Background
	// constructions must not report (it is off the request path).
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "cfix/internal/service")
}

func TestCtxflowSkipsUncoveredPackage(t *testing.T) {
	diags, _ := analysistest.Run(t, "testdata", ctxflow.Analyzer, "cfix/helper")
	if len(diags) != 0 {
		t.Errorf("uncovered package produced %d diagnostics, want 0", len(diags))
	}
}

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lofix/a")
}

// TestFixIdempotent drives the -fix pipeline the way CI's idempotency step
// does: apply every suggested fix to a copy of the httperr fixture, then
// re-analyze the mutated copy and require zero remaining fixable findings.
func TestFixIdempotent(t *testing.T) {
	tmp := t.TempDir()
	copyTree(t, filepath.Join("testdata", "src", "httpfix"), filepath.Join(tmp, "src", "httpfix"))

	diags, fset := analysistest.Diagnostics(t, tmp, httperr.Analyzer, "httpfix/a")
	edits := fixer.Collect(fset, diags)
	if len(edits) != 2 {
		t.Fatalf("first pass: %d fix edits, want 2", len(edits))
	}
	applied, files, err := fixer.Apply(edits)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 || files != 1 {
		t.Fatalf("applied %d edits to %d files, want 2 edits to 1 file", applied, files)
	}

	again, fset2 := analysistest.Diagnostics(t, tmp, httperr.Analyzer, "httpfix/a")
	if left := fixer.Collect(fset2, again); len(left) != 0 {
		t.Fatalf("second pass after applying fixes: %d fix edits remain, want 0", len(left))
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRepoClean is the zero-findings smoke test: the multichecker's own
// load path over the live repository, every analyzer (the interprocedural
// ones included, via the whole-program call graph), no diagnostics. This
// is the same invariant CI gates on with `go run ./cmd/muzzlelint`.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := load.Load(".", "muzzle/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern matched too little", len(pkgs))
	}
	var units []*callgraph.Unit
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Fatalf("%s: type error: %v", p.ImportPath, e)
		}
		units = append(units, &callgraph.Unit{Fset: p.Fset, Files: p.Files, Pkg: p.Types, Info: p.Info})
	}
	prog := callgraph.Build(pkgs[0].Fset, units)
	for _, p := range pkgs {
		for _, a := range lint.All() {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
				Program:   prog,
			}
			pass.Report = func(d analysis.Diagnostic) {
				t.Errorf("%s: [%s] %s", p.Fset.Position(d.Pos), a.Name, d.Message)
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s: %s: %v", a.Name, p.ImportPath, err)
			}
		}
	}
}
