package lint_test

import (
	"strings"
	"testing"

	"muzzle/internal/lint"
	"muzzle/internal/lint/analysis"
	"muzzle/internal/lint/analysistest"
	"muzzle/internal/lint/cachekey"
	"muzzle/internal/lint/faultscope"
	"muzzle/internal/lint/guardedby"
	"muzzle/internal/lint/hotpath"
	"muzzle/internal/lint/httperr"
	"muzzle/internal/lint/load"
)

func TestCachekey(t *testing.T) {
	diags, _ := analysistest.Run(t, "testdata", cachekey.Analyzer, "ckeyfix/internal/ckey")

	// The missing-field diagnostic must carry the mechanical hash-write
	// fix, anchored after the last Gate statement with the right helper.
	var fixed bool
	for _, d := range diags {
		if !strings.Contains(d.Message, "circuit.Gate.Label") || len(d.SuggestedFixes) == 0 {
			continue
		}
		fix := d.SuggestedFixes[0]
		if len(fix.TextEdits) != 1 {
			t.Fatalf("fix edits = %d, want 1", len(fix.TextEdits))
		}
		if got := string(fix.TextEdits[0].NewText); !strings.Contains(got, "writeString(h, g.Label)") {
			t.Errorf("fix text = %q, want a writeString(h, g.Label) insert", got)
		}
		if !strings.Contains(fix.Message, "ckey.Version") {
			t.Errorf("fix message %q should remind about the version bump", fix.Message)
		}
		fixed = true
	}
	if !fixed {
		t.Error("missing-field diagnostic carried no suggested fix")
	}
}

func TestFaultscope(t *testing.T) {
	analysistest.Run(t, "testdata", faultscope.Analyzer, "fsfix/use")
}

func TestFaultscopeExemptsRegistry(t *testing.T) {
	// The registry package declares scopes as literals by definition; the
	// analyzer must stay silent there.
	diags, _ := analysistest.Run(t, "testdata", faultscope.Analyzer, "fsfix/internal/faults")
	if len(diags) != 0 {
		t.Errorf("registry package produced %d diagnostics, want 0", len(diags))
	}
}

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "hotfix/a")
}

func TestGuardedby(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer, "gbfix/a")
}

func TestHTTPErr(t *testing.T) {
	diags, _ := analysistest.Run(t, "testdata", httperr.Analyzer, "httpfix/a")
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %d, want 2", len(diags))
	}
	wantFixes := []string{
		`writeError(w, http.StatusInternalServerError, "internal", err)`,
		`writeError(w, http.StatusBadRequest, "internal", errors.New("boom"))`,
	}
	for i, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			t.Errorf("diagnostic %d carried no fix", i)
			continue
		}
		if got := string(d.SuggestedFixes[0].TextEdits[0].NewText); got != wantFixes[i] {
			t.Errorf("fix %d = %q, want %q", i, got, wantFixes[i])
		}
	}
}

// TestRepoClean is the zero-findings smoke test: the multichecker's own
// load path over the live repository, every analyzer, no diagnostics.
// This is the same invariant CI gates on with `go run ./cmd/muzzlelint`.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := load.Load(".", "muzzle/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern matched too little", len(pkgs))
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Fatalf("%s: type error: %v", p.ImportPath, e)
		}
		for _, a := range lint.All() {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				t.Errorf("%s: [%s] %s", p.Fset.Position(d.Pos), a.Name, d.Message)
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s: %s: %v", a.Name, p.ImportPath, err)
			}
		}
	}
}
