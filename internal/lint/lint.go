// Package lint registers the muzzle analyzer suite. Each analyzer encodes
// one load-bearing invariant the repo otherwise enforces only by review:
//
//	cachekey    every exported field of ckey-hashed structs enters the hash
//	faultscope  fault-injection scopes come from the internal/faults registry
//	hotpath     //muzzle:hotpath functions stay free of allocating constructs
//	guardedby   "guarded by <mu>" fields are only touched under the mutex
//	httperr     handlers respond with structured JSON errors, never http.Error
//
// Run the whole suite with `go run ./cmd/muzzlelint ./...`.
package lint

import (
	"muzzle/internal/lint/analysis"
	"muzzle/internal/lint/cachekey"
	"muzzle/internal/lint/faultscope"
	"muzzle/internal/lint/guardedby"
	"muzzle/internal/lint/hotpath"
	"muzzle/internal/lint/httperr"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cachekey.Analyzer,
		faultscope.Analyzer,
		guardedby.Analyzer,
		hotpath.Analyzer,
		httperr.Analyzer,
	}
}
