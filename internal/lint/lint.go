// Package lint registers the muzzle analyzer suite. Each analyzer encodes
// one load-bearing invariant the repo otherwise enforces only by review:
//
//	allocflow   //muzzle:hotpath functions never transitively reach an allocator
//	cachekey    every exported field of ckey-hashed structs enters the hash
//	ctxflow     request-path code never severs context cancellation
//	faultscope  fault-injection scopes come from the internal/faults registry
//	hotpath     //muzzle:hotpath functions stay free of allocating constructs
//	guardedby   "guarded by <mu>" fields are only touched under the mutex
//	httperr     handlers respond with structured JSON errors, never http.Error
//	lockorder   the global lock-order graph stays acyclic (no AB/BA deadlocks)
//
// allocflow, ctxflow, and lockorder are interprocedural: they consume the
// whole-program call graph (internal/lint/callgraph) the driver attaches
// to each Pass, and degrade to their syntactic subset when it is absent.
//
// Run the whole suite with `go run ./cmd/muzzlelint ./...`.
package lint

import (
	"muzzle/internal/lint/allocflow"
	"muzzle/internal/lint/analysis"
	"muzzle/internal/lint/cachekey"
	"muzzle/internal/lint/ctxflow"
	"muzzle/internal/lint/faultscope"
	"muzzle/internal/lint/guardedby"
	"muzzle/internal/lint/hotpath"
	"muzzle/internal/lint/httperr"
	"muzzle/internal/lint/lockorder"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		allocflow.Analyzer,
		cachekey.Analyzer,
		ctxflow.Analyzer,
		faultscope.Analyzer,
		guardedby.Analyzer,
		hotpath.Analyzer,
		httperr.Analyzer,
		lockorder.Analyzer,
	}
}
