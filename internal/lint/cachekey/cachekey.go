// Package cachekey enforces the repo's cache-identity invariant: every
// exported field of every struct that internal/ckey hashes must itself be
// written into the hash. The PR 4 incident — Gate.Cbit added without a
// hash write, serving stale measure results until the key was bumped to
// v2 — is exactly the class of bug this turns into a lint failure.
//
// The analyzer activates only on the package whose import path ends in
// "internal/ckey". It discovers the hashed struct types syntactically:
// any module-local named struct type that ckey reads a field from is
// considered part of the key's identity, and from then on *all* of its
// exported fields must either be selected somewhere in ckey or carry an
// explicit waiver comment anywhere in the package:
//
//	//ckey:ignore circuit.Gate.Label display only, does not affect results
//
// A waiver for a field that is in fact hashed (or does not exist) is
// itself reported, so stale waivers cannot linger after a refactor.
package cachekey

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"muzzle/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "cachekey",
	Doc: "check that every exported field of structs hashed by internal/ckey is written into the hash\n\n" +
		"Fields that genuinely do not affect evaluation results are waived with\n" +
		"//ckey:ignore pkg.Type.Field <reason>. Adding a hashed field changes the\n" +
		"canonical encoding, so the fix suggestion reminds you to bump ckey.Version.",
	Run: run,
}

// hashedType is one struct type the key encoder reads.
type hashedType struct {
	obj      *types.TypeName
	selected map[string]bool // exported field names written into the hash
	lastSel  *ast.SelectorExpr
	lastStmt ast.Stmt // statement enclosing lastSel, insertion anchor for fixes
}

func run(pass *analysis.Pass) error {
	if !strings.HasSuffix(pass.Pkg.Path(), "internal/ckey") {
		return nil
	}
	modRoot := pass.Pkg.Path()[:strings.IndexByte(pass.Pkg.Path(), '/')+1]

	hashed := map[*types.TypeName]*hashedType{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sn, ok := pass.TypesInfo.Selections[sel]
			if !ok || sn.Kind() != types.FieldVal {
				return true
			}
			named := analysis.Named(sn.Recv())
			if named == nil {
				return true
			}
			obj := named.Obj()
			// Only module-local structs form the key's identity; selector
			// reads on stdlib values (hash.Hash internals etc.) are noise.
			if obj.Pkg() == nil || !strings.HasPrefix(obj.Pkg().Path(), modRoot) {
				return true
			}
			if _, ok := named.Underlying().(*types.Struct); !ok {
				return true
			}
			ht := hashed[obj]
			if ht == nil {
				ht = &hashedType{obj: obj, selected: map[string]bool{}}
				hashed[obj] = ht
			}
			ht.selected[sn.Obj().Name()] = true
			ht.lastSel = sel
			ht.lastStmt = enclosingStmt(stack)
			return true
		})
	}

	waivers, waiverPos := collectWaivers(pass)

	// Deterministic report order: by type name.
	names := make([]*types.TypeName, 0, len(hashed))
	for obj := range hashed {
		names = append(names, obj)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Name() < names[j].Name() })

	used := map[string]bool{}
	for _, obj := range names {
		ht := hashed[obj]
		st := obj.Type().Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if !fld.Exported() || ht.selected[fld.Name()] {
				continue
			}
			qual := obj.Pkg().Name() + "." + obj.Name() + "." + fld.Name()
			bare := obj.Name() + "." + fld.Name()
			if waivers[qual] || waivers[bare] {
				used[qual], used[bare] = true, true
				continue
			}
			d := analysis.Diagnostic{
				Pos: ht.lastSel.Pos(),
				Message: fmt.Sprintf("exported field %s is not written into the cache key; hash it and bump ckey.Version, or waive it with //ckey:ignore %s <reason>",
					qual, qual),
			}
			if fix := suggestWrite(pass, ht, fld); fix != nil {
				d.SuggestedFixes = []analysis.SuggestedFix{*fix}
			}
			pass.Report(d)
		}
	}

	// Stale waivers: naming a field that is hashed, or that no hashed type
	// declares.
	for name, pos := range waiverPos {
		if used[name] {
			continue
		}
		switch exists, alreadyHashed := resolveWaiver(names, hashed, name); {
		case exists && alreadyHashed:
			pass.Reportf(pos, "stale //ckey:ignore %s: field is written into the cache key; delete the waiver", name)
		case !exists:
			pass.Reportf(pos, "//ckey:ignore %s names no exported field of any hashed struct", name)
		}
	}
	return nil
}

// collectWaivers scans every comment in the package for //ckey:ignore
// directives, returning the waived Type.Field names (both bare and
// pkg-qualified spellings are accepted) and each directive's position.
func collectWaivers(pass *analysis.Pass) (map[string]bool, map[string]token.Pos) {
	waived := map[string]bool{}
	where := map[string]token.Pos{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//ckey:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					pass.Reportf(c.Pos(), "//ckey:ignore needs a field name and a reason: //ckey:ignore pkg.Type.Field <why>")
					continue
				}
				waived[fields[0]] = true
				where[fields[0]] = c.Pos()
			}
		}
	}
	return waived, where
}

// resolveWaiver resolves name ("Type.Field" or "pkg.Type.Field") against
// the hashed structs: exists is true when some hashed struct declares the
// exported field, alreadyHashed when that field is also written into the
// key (which makes the waiver stale).
func resolveWaiver(names []*types.TypeName, hashed map[*types.TypeName]*hashedType, name string) (exists, alreadyHashed bool) {
	parts := strings.Split(name, ".")
	if len(parts) == 3 {
		parts = parts[1:]
	}
	if len(parts) != 2 {
		return false, false
	}
	for _, o := range names {
		if o.Name() != parts[0] {
			continue
		}
		st := o.Type().Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Exported() && f.Name() == parts[1] {
				return true, hashed[o].selected[f.Name()]
			}
		}
	}
	return false, false
}

// suggestWrite builds the mechanical fix for a missing basic-typed field:
// insert the matching write helper call right after the statement that
// last touched the same struct, reusing that statement's receiver
// expression and indentation.
func suggestWrite(pass *analysis.Pass, ht *hashedType, fld *types.Var) *analysis.SuggestedFix {
	if ht.lastStmt == nil {
		return nil
	}
	var helper string
	switch b, _ := fld.Type().Underlying().(*types.Basic); {
	case b == nil:
		return nil
	case b.Info()&types.IsInteger != 0:
		helper = "writeInt"
	case b.Info()&types.IsString != 0:
		helper = "writeString"
	case b.Kind() == types.Float64:
		helper = "writeFloat"
	default:
		return nil
	}
	var base bytes.Buffer
	if err := printer.Fprint(&base, pass.Fset, ht.lastSel.X); err != nil {
		return nil
	}
	indent := strings.Repeat("\t", pass.Fset.Position(ht.lastStmt.Pos()).Column-1)
	text := fmt.Sprintf("\n%s%s(h, %s.%s)", indent, helper, base.String(), fld.Name())
	return &analysis.SuggestedFix{
		Message:   fmt.Sprintf("hash %s.%s with %s (remember to bump ckey.Version)", base.String(), fld.Name(), helper),
		TextEdits: []analysis.TextEdit{{Pos: ht.lastStmt.End(), End: ht.lastStmt.End(), NewText: []byte(text)}},
	}
}

func enclosingStmt(stack []ast.Node) ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if s, ok := stack[i].(ast.Stmt); ok {
			return s
		}
	}
	return nil
}
