// Package callgraph is the interprocedural layer under the muzzle analyzer
// suite: a whole-program call graph over every package the lint driver
// loaded, plus a memo surface where analyzers cache the bottom-up
// per-function summaries they derive from it (allocflow's may-allocate
// bits, ctxflow's constructs-background bits, lockorder's transitive lock
// sets).
//
// Resolution is static and deliberately simple — the repo has no reflection
// and no plugin loading, so four mechanisms cover almost every call:
//
//   - direct calls: f(), pkg.F()
//   - method calls through the static receiver type: x.M() where x is a
//     concrete (non-interface) type
//   - method values and function values bound to a local variable exactly
//     once: f := x.M; ...; f()  /  g := helper; g()
//   - closures: a func literal is attributed to the function that lexically
//     declares it — calls inside the literal body are edges of the
//     enclosing declaration, and calling a literal bound to a local
//     variable resolves silently (its calls are already attributed)
//
// Everything else — interface method calls, func-typed fields, reassigned
// or escaping function variables — is recorded as an unresolved dynamic
// call site (⊤) on the calling node, with its position, so analyzers can
// choose between soundness (treat ⊤ as anything) and quiet (ignore ⊤);
// each analyzer documents its choice.
//
// Cross-package identity: the loader type-checks each package from source
// against gc export data, so the same function is represented by distinct
// go/types objects in different packages. Nodes are therefore keyed by a
// stable string ID (see FuncID) — "pkg/path.Func" or "pkg/path.Type.Method"
// — not by object identity.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// Unit is one type-checked package contributed to the program. All units of
// a program must share one token.FileSet.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Node is one declared function or method with a body somewhere in the
// program. Closures declared inside it belong to it: their calls appear in
// Out/Dynamic, and their bodies are part of Decl.
type Node struct {
	// ID is the stable cross-package identity (FuncID of Func).
	ID string
	// Func is the declaring package's object for the function.
	Func *types.Func
	// Decl is the declaration carrying the body (and the doc comment
	// directives analyzers key off).
	Decl *ast.FuncDecl
	// Unit is the package the body lives in.
	Unit *Unit
	// Out lists every statically resolved call site, in source order.
	Out []Edge
	// Dynamic lists the ⊤ sites: calls through interface methods or
	// unresolvable function values, in source order.
	Dynamic []token.Pos
}

// Edge is one resolved call site.
type Edge struct {
	// CalleeID is the FuncID of the target; Program.Node resolves it to a
	// *Node when the target's body is in the program (module-local), nil
	// otherwise (standard library).
	CalleeID string
	// Callee is the caller package's view of the target object (useful for
	// package-path tests on external targets).
	Callee *types.Func
	// Site is the call position.
	Site token.Pos
}

// Program is the whole-program view: every node, plus a memo cache for
// analyzer summaries.
type Program struct {
	Fset  *token.FileSet
	Units []*Unit
	// Nodes in deterministic (declaration position) order.
	Nodes []*Node

	byID   map[string]*Node
	fileOf map[*token.File]*Unit

	memoMu sync.Mutex
	memo   map[string]any
}

// Node resolves a FuncID to its program node, or nil when the function's
// body is outside the program.
func (p *Program) Node(id string) *Node { return p.byID[id] }

// UnitAt returns the unit whose source file contains pos, or nil.
func (p *Program) UnitAt(pos token.Pos) *Unit {
	return p.fileOf[p.Fset.File(pos)]
}

// Memo returns the cached value for key, building it on first use. Each
// analyzer caches its whole-program summary table under its own key, so a
// driver running N packages pays for the fixpoint once, not N times.
func (p *Program) Memo(key string, build func() any) any {
	p.memoMu.Lock()
	defer p.memoMu.Unlock()
	if v, ok := p.memo[key]; ok {
		return v
	}
	v := build()
	p.memo[key] = v
	return v
}

// FuncID is the stable cross-package identity of a function object:
// "pkg/path.Func" for package functions, "pkg/path.Type.Method" for
// methods (pointer receivers are not distinguished from value receivers —
// a method has one body either way). Generic instantiations collapse onto
// their origin. The empty string marks objects with no usable identity
// (universe-scope error.Error).
func FuncID(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	fn = fn.Origin()
	if fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := types.Unalias(t).(*types.Named); isNamed {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
		// Receiver without a named type (interface literal method): no
		// stable identity; these only appear as dynamic targets anyway.
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// Build constructs the program graph over units. Units must share fset.
func Build(fset *token.FileSet, units []*Unit) *Program {
	p := &Program{
		Fset:   fset,
		Units:  units,
		byID:   make(map[string]*Node),
		fileOf: make(map[*token.File]*Unit),
		memo:   make(map[string]any),
	}
	for _, u := range units {
		for _, f := range u.Files {
			if tf := fset.File(f.Pos()); tf != nil {
				p.fileOf[tf] = u
			}
		}
	}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := u.Info.Defs[fd.Name].(*types.Func)
				id := FuncID(fn)
				if id == "" {
					continue
				}
				n := &Node{ID: id, Func: fn, Decl: fd, Unit: u}
				resolveCalls(u, n)
				// Test variants re-check production files, so the same ID
				// can be seen twice across units (external test packages
				// importing the plain package do not — the loader
				// supersedes subsumed variants — but belt and braces:
				// first declaration wins, deterministically).
				if _, dup := p.byID[id]; !dup {
					p.byID[id] = n
					p.Nodes = append(p.Nodes, n)
				}
			}
		}
	}
	sort.Slice(p.Nodes, func(i, j int) bool { return p.Nodes[i].Decl.Pos() < p.Nodes[j].Decl.Pos() })
	return p
}

// binding is a local variable bound exactly once to a callable.
type binding struct {
	target *types.Func // method value or function value target
	lit    *ast.FuncLit
	dead   bool // reassigned: resolution would be unsound
}

// resolveCalls walks fd's body (closures included) classifying every call.
func resolveCalls(u *Unit, n *Node) {
	binds := collectBindings(u, n.Decl)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		classifyCall(u, n, binds, call)
		return true
	})
}

// collectBindings finds `v := <callable>` single-assignment locals in fd:
// func literals, method values (x.M without call), and plain function
// values. A second assignment to the same object kills the binding.
func collectBindings(u *Unit, fd *ast.FuncDecl) map[types.Object]*binding {
	binds := map[types.Object]*binding{}
	record := func(lhs ast.Expr, rhs ast.Expr, define bool) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		var obj types.Object
		if define {
			obj = u.Info.Defs[id]
		} else {
			obj = u.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if b, seen := binds[obj]; seen {
			b.dead = true // reassigned
			return
		}
		if !define {
			// First sighting is a plain assignment to a variable declared
			// elsewhere (e.g. a named result or an outer var): treat as
			// unresolvable rather than guess.
			binds[obj] = &binding{dead: true}
			return
		}
		b := &binding{}
		switch v := ast.Unparen(rhs).(type) {
		case *ast.FuncLit:
			b.lit = v
		default:
			if fn := staticFuncValue(u, rhs); fn != nil {
				b.target = fn
			} else {
				b.dead = true
			}
		}
		binds[obj] = b
	}
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					record(s.Lhs[i], s.Rhs[i], s.Tok == token.DEFINE)
				}
			} else {
				// Multi-value unpacking of function values is not a repo
				// idiom; kill any bound lhs.
				for _, l := range s.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						if obj := u.Info.Defs[id]; obj != nil {
							binds[obj] = &binding{dead: true}
						} else if obj := u.Info.Uses[id]; obj != nil {
							if b := binds[obj]; b != nil {
								b.dead = true
							} else {
								binds[obj] = &binding{dead: true}
							}
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) {
					record(name, s.Values[i], true)
				}
			}
		}
		return true
	})
	return binds
}

// staticFuncValue resolves an expression used as a value to the function it
// denotes: a plain function identifier, a qualified pkg.F, or a method
// value x.M on a concrete receiver. Interface method values return nil —
// the target depends on the dynamic type.
func staticFuncValue(u *Unit, e ast.Expr) *types.Func {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := u.Info.Uses[v].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[v]; ok {
			if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
				if types.IsInterface(sel.Recv()) {
					return nil
				}
				fn, _ := sel.Obj().(*types.Func)
				return fn
			}
			return nil // field value: dynamic
		}
		// No selection entry: qualified identifier pkg.F.
		fn, _ := u.Info.Uses[v.Sel].(*types.Func)
		return fn
	}
	return nil
}

// classifyCall records call as a resolved edge, a silent resolution (a
// literal whose body is already attributed to n), a ⊤ dynamic site, or a
// non-call (conversion, builtin).
func classifyCall(u *Unit, n *Node, binds map[types.Object]*binding, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation f[T](...) — unwrap to the function expression.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if tv, ok := u.Info.Types[idx.X]; ok && tv.IsValue() {
			fun = ast.Unparen(idx.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}

	// Conversions are not calls.
	if tv, ok := u.Info.Types[fun]; ok && tv.IsType() {
		return
	}

	switch f := fun.(type) {
	case *ast.FuncLit:
		return // body attributed to n already
	case *ast.Ident:
		switch obj := u.Info.Uses[f].(type) {
		case *types.Builtin, *types.TypeName, nil:
			return
		case *types.Func:
			n.addEdge(obj, call.Lparen)
			return
		case *types.Var:
			if b := binds[obj]; b != nil && !b.dead {
				if b.lit != nil {
					return // closure: already attributed
				}
				if b.target != nil {
					n.addEdge(b.target, call.Lparen)
					return
				}
			}
			n.Dynamic = append(n.Dynamic, call.Lparen)
			return
		default:
			n.Dynamic = append(n.Dynamic, call.Lparen)
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				if types.IsInterface(sel.Recv()) {
					n.Dynamic = append(n.Dynamic, call.Lparen) // ⊤: interface dispatch
					return
				}
				if fn, ok := sel.Obj().(*types.Func); ok {
					n.addEdge(fn, call.Lparen)
					return
				}
			case types.FieldVal:
				n.Dynamic = append(n.Dynamic, call.Lparen) // func-typed field
				return
			}
			n.Dynamic = append(n.Dynamic, call.Lparen)
			return
		}
		// Qualified identifier pkg.F.
		switch obj := u.Info.Uses[f.Sel].(type) {
		case *types.Func:
			n.addEdge(obj, call.Lparen)
		case *types.Builtin, *types.TypeName, nil:
			// unsafe.* and conversions: not calls.
		default:
			n.Dynamic = append(n.Dynamic, call.Lparen) // package-level func var
		}
		return
	default:
		// Calling the result of a call, an index expression, etc.
		n.Dynamic = append(n.Dynamic, call.Lparen)
	}
}

func (n *Node) addEdge(fn *types.Func, site token.Pos) {
	id := FuncID(fn)
	if id == "" {
		n.Dynamic = append(n.Dynamic, site)
		return
	}
	n.Out = append(n.Out, Edge{CalleeID: id, Callee: fn, Site: site})
}
