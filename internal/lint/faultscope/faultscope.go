// Package faultscope enforces that fault-injection scope strings come
// from the single registry in internal/faults. A typo'd scope does not
// fail — it silently matches no rules and the "chaos" test quietly stops
// injecting anything — so every place a scope enters the system must name
// a registry constant:
//
//	sinks: faults.Check / faults.CheckWrite / faults.RoundTripper scope
//	arguments, Rule{Scope: ...} literals, FaultScope / DirFaultScope
//	struct fields and assignments, and SetFaultScope calls.
//
// Plumbing through variables, fields, and parameters is always fine (the
// constant was checked where the value originated); what gets flagged is
// a fresh non-empty string literal, or a constant declared outside the
// registry. Derived scopes concatenate off a registry constant
// (faults.ScopeCoordDisk + ".a"), which passes. The Op argument of
// faults.Check likewise must be one of the registry's Op constants.
//
// Unlike the other analyzers, test files are checked too — scopes are
// typed almost exclusively in tests. The registry package itself (path
// suffix "internal/faults") is exempt.
package faultscope

import (
	"go/ast"
	"go/types"
	"strings"

	"muzzle/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "faultscope",
	Doc: "check that fault-injection scopes and ops are named constants from internal/faults\n\n" +
		"String-literal scopes silently match no rules when typo'd; routing every\n" +
		"scope through the registry makes the compiler catch the typo instead.",
	Run: run,
}

const registrySuffix = "internal/faults"

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), registrySuffix) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.CompositeLit:
				checkComposite(pass, n)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if sel, ok := lhs.(*ast.SelectorExpr); ok && isScopeField(sel.Sel.Name) {
						checkScopeExpr(pass, n.Rhs[i], "assignment to "+sel.Sel.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isScopeField matches the config-plumbing fields used across cache,
// store, sweep, and coord.
func isScopeField(name string) bool {
	return name == "FaultScope" || name == "DirFaultScope" || name == "Scope"
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return
	}
	switch {
	case isRegistryFunc(obj, "Check") && len(call.Args) == 2:
		checkScopeExpr(pass, call.Args[0], "faults.Check scope")
		checkOpExpr(pass, call.Args[1])
	case isRegistryFunc(obj, "CheckWrite") && len(call.Args) == 2:
		checkScopeExpr(pass, call.Args[0], "faults.CheckWrite scope")
	case isRegistryFunc(obj, "RoundTripper") && len(call.Args) == 2:
		checkScopeExpr(pass, call.Args[0], "faults.RoundTripper scope")
	case obj.Name() == "SetFaultScope" && len(call.Args) == 1:
		checkScopeExpr(pass, call.Args[0], "SetFaultScope argument")
	}
}

// checkComposite checks Rule{Scope: ...} literals and FaultScope /
// DirFaultScope fields of any options struct literal.
func checkComposite(pass *analysis.Pass, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !isScopeField(key.Name) {
			continue
		}
		if key.Name == "Scope" {
			// Only faults.Rule's Scope field is a fault scope; other
			// structs may coincidentally have one.
			named := analysis.Named(pass.TypesInfo.Types[lit].Type)
			if named == nil || named.Obj().Name() != "Rule" ||
				named.Obj().Pkg() == nil || !strings.HasSuffix(named.Obj().Pkg().Path(), registrySuffix) {
				continue
			}
		}
		checkScopeExpr(pass, kv.Value, key.Name+" field")
	}
}

// checkScopeExpr reports e when it introduces a scope that bypasses the
// registry: a non-empty string literal or a constant declared elsewhere.
func checkScopeExpr(pass *analysis.Pass, e ast.Expr, what string) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Value != `""` && e.Value != "``" {
			pass.Reportf(e.Pos(), "%s is the string literal %s; use a named constant from %s so typos cannot silently disable injection",
				what, e.Value, registrySuffix)
		}
	case *ast.BinaryExpr:
		// Derived scopes are fine as long as a registry constant anchors
		// the concatenation.
		if !containsRegistryConst(pass, e) {
			pass.Reportf(e.Pos(), "%s is built without any %s constant; anchor derived scopes on a registry constant",
				what, registrySuffix)
		}
	case *ast.Ident, *ast.SelectorExpr:
		if obj := usedObj(pass, e); obj != nil {
			if c, ok := obj.(*types.Const); ok && !fromRegistry(c) {
				pass.Reportf(e.Pos(), "%s is the constant %s declared outside %s; move it into the registry",
					what, obj.Name(), registrySuffix)
			}
		}
	}
}

// checkOpExpr requires the Op argument of faults.Check to be a registry Op
// constant (or a plumbed variable).
func checkOpExpr(pass *analysis.Pass, e ast.Expr) {
	obj := usedObj(pass, e)
	if obj == nil {
		if lit, ok := e.(*ast.BasicLit); ok {
			pass.Reportf(lit.Pos(), "faults.Check op is the literal %s; use one of the faults.Op constants", lit.Value)
		}
		return
	}
	if c, ok := obj.(*types.Const); ok && !fromRegistry(c) {
		pass.Reportf(e.Pos(), "faults.Check op is the constant %s declared outside %s; use one of the faults.Op constants",
			obj.Name(), registrySuffix)
	}
}

func containsRegistryConst(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if x, ok := n.(ast.Expr); ok {
			if c, ok := usedObj(pass, x).(*types.Const); ok && fromRegistry(c) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func usedObj(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

func isRegistryFunc(obj types.Object, name string) bool {
	return obj.Name() == name && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), registrySuffix)
}

func fromRegistry(c *types.Const) bool {
	return c.Pkg() != nil && strings.HasSuffix(c.Pkg().Path(), registrySuffix)
}
