// Package httperr keeps the service's error contract structured. Every
// handler error goes to clients as {"code": ..., "error": ...} via the
// writeError helper in internal/service; a naked http.Error emits
// text/plain, which API clients (and the coordinator's worker client)
// cannot dispatch on. The analyzer flags every call to net/http.Error in
// non-test code, and when the package declares a writeError helper it
// attaches the mechanical rewrite as a suggested fix.
package httperr

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/types"
	"strings"

	"muzzle/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "httperr",
	Doc: "flag naked http.Error calls in service code\n\n" +
		"Handlers must respond with the structured {\"code\": ...} JSON error shape\n" +
		"via the package's writeError helper so clients can dispatch on the code.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	hasHelper := packageHasWriteError(pass)
	importsErrors := false
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if imp.Path.Value == `"errors"` {
				importsErrors = true
			}
		}
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Name() != "Error" || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
				return true
			}
			d := analysis.Diagnostic{
				Pos:     call.Pos(),
				End:     call.End(),
				Message: "naked http.Error sends text/plain; respond with the structured JSON error helper (writeError) instead",
			}
			if hasHelper && len(call.Args) == 3 {
				if fix := suggestRewrite(pass, call, importsErrors); fix != nil {
					d.SuggestedFixes = []analysis.SuggestedFix{*fix}
				}
			}
			pass.Report(d)
			return true
		})
	}
	return nil
}

// packageHasWriteError reports whether the package declares
// writeError(w, status, code, err) — the rewrite target.
func packageHasWriteError(pass *analysis.Pass) bool {
	obj := pass.Pkg.Scope().Lookup("writeError")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 4
}

// suggestRewrite turns http.Error(w, msg, status) into
// writeError(w, status, "internal", err):
//
//   - msg spelled x.Error() reuses x directly as the error
//   - otherwise the message is wrapped in errors.New, but only when the
//     file set already imports "errors" (a fix must not edit imports)
func suggestRewrite(pass *analysis.Pass, call *ast.CallExpr, importsErrors bool) *analysis.SuggestedFix {
	w := exprText(pass, call.Args[0])
	msg := call.Args[1]
	status := exprText(pass, call.Args[2])

	var errExpr string
	if inner, ok := errorCallReceiver(pass, msg); ok {
		errExpr = inner
	} else if importsErrors {
		errExpr = "errors.New(" + exprText(pass, msg) + ")"
	} else {
		return nil
	}
	text := fmt.Sprintf("writeError(%s, %s, %q, %s)", w, status, "internal", errExpr)
	return &analysis.SuggestedFix{
		Message:   "replace with structured writeError",
		TextEdits: []analysis.TextEdit{{Pos: call.Pos(), End: call.End(), NewText: []byte(text)}},
	}
}

// errorCallReceiver matches the expression `x.Error()` where x is an
// error, returning x's source text.
func errorCallReceiver(pass *analysis.Pass, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return "", false
	}
	if t := pass.TypesInfo.Types[sel.X].Type; t == nil || !isError(t) {
		return "", false
	}
	return exprText(pass, sel.X), true
}

func isError(t types.Type) bool {
	return strings.TrimPrefix(t.String(), "*") == "error" || types.Implements(t, errorIface())
}

func errorIface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

func exprText(pass *analysis.Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, e); err != nil {
		return ""
	}
	return buf.String()
}
