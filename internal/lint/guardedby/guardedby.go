// Package guardedby checks the repo's lock discipline: a struct field
// whose declaration carries a "// guarded by <mu>" comment may only be
// accessed where the matching mutex is held. The service scheduler, flight
// group, store journal, cache, and coordinator pool all centralize state
// behind one mutex per struct; this analyzer turns that convention into a
// build error instead of a race-detector roulette.
//
// Holding the lock is established by structural replay: walking outward
// from the access through its enclosing blocks, the analyzer interprets
// the top-level `recv.mu.Lock()` / `Unlock()` (and RLock/RUnlock)
// statements that precede the access at each nesting level, in order.
// That models the repo's real patterns — lock/branch/unlock switches,
// lock-unlock-relock sequences, per-case unlocks — without needing a full
// CFG. `defer recv.mu.Unlock()` is correctly ignored (it releases at
// return, after every access).
//
// Functions exempt from replay:
//
//   - name ends in "Locked" — caller-holds-lock convention
//     (emitLocked, insertLocked, compactLocked, ...)
//   - doc carries //muzzle:locked — same convention, for names where the
//     suffix reads badly
//   - doc carries //muzzle:nolock <why> — the object is provably
//     unshared, e.g. recovery/startup before any goroutine exists
//   - the function builds the struct with a composite literal — a
//     constructor initializing fields before the value escapes
//
// Closures replay their own bodies only: a goroutine body must lock for
// itself, which matches how every closure in the repo behaves.
//
// Test files are skipped. An annotation naming a mutex field the struct
// does not declare is itself an error.
package guardedby

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"muzzle/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "check that fields commented \"guarded by <mu>\" are only accessed under that mutex\n\n" +
		"Exemptions: functions named *Locked, //muzzle:locked, //muzzle:nolock <why>,\n" +
		"and constructors (any function containing a composite literal of the struct).",
	Run: run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// guardKey identifies one guarded field.
type guardKey struct {
	strct *types.TypeName
	field string
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guards)
		}
	}
	return nil
}

// collectGuards finds every "guarded by <mu>" field annotation in the
// package's struct declarations and validates that the named mutex exists
// as a sibling field.
func collectGuards(pass *analysis.Pass) map[guardKey]string {
	guards := map[guardKey]string{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if obj == nil {
				return true
			}
			fieldNames := map[string]bool{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				mu := guardName(fld)
				if mu == "" {
					continue
				}
				if !fieldNames[mu] {
					pass.Reportf(fld.Pos(), "field is guarded by %s, but struct %s has no field %s", mu, obj.Name(), mu)
					continue
				}
				for _, name := range fld.Names {
					guards[guardKey{obj, name.Name}] = mu
				}
			}
			return true
		})
	}
	return guards
}

// guardName extracts the mutex name from a field's doc or trailing line
// comment, or "".
func guardName(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guards map[guardKey]string) {
	if strings.HasSuffix(fd.Name.Name, "Locked") ||
		analysis.HasDirective(fd.Doc, "muzzle:locked") ||
		analysis.HasDirective(fd.Doc, "muzzle:nolock") {
		return
	}
	var constructed map[*types.TypeName]bool
	analysis.WalkStack(fd, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sn, ok := pass.TypesInfo.Selections[sel]
		if !ok || sn.Kind() != types.FieldVal {
			return true
		}
		named := analysis.Named(sn.Recv())
		if named == nil {
			return true
		}
		key := guardKey{named.Obj(), sn.Obj().Name()}
		mu, guarded := guards[key]
		if !guarded {
			return true
		}
		if constructed == nil {
			constructed = constructedTypes(pass, fd)
		}
		if constructed[named.Obj()] {
			return true
		}
		base := exprText(pass, sel.X)
		if base == "" || heldAt(pass, stack, sel.Pos(), base, mu) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %s but accessed without holding %s.%s",
			named.Obj().Name(), sn.Obj().Name(), mu, base, mu)
		return true
	})
}

// constructedTypes returns the guarded struct types that fd instantiates
// with a composite literal — the constructor exemption: New-style
// functions initialize fields before the value is shared.
func constructedTypes(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if named := analysis.Named(pass.TypesInfo.Types[cl].Type); named != nil {
			out[named.Obj()] = true
		}
		return true
	})
	return out
}

// heldAt replays the lock statements that structurally precede the access
// and reports whether base.mu is held there. stack is the access's
// ancestor chain from WalkStack (the function outermost). At each
// enclosing statement list, only statements fully before the access
// replay — the statement containing the access (and everything after it,
// e.g. later case bodies when the access is a case condition) is out of
// scope.
func heldAt(pass *analysis.Pass, stack []ast.Node, access token.Pos, base, mu string) bool {
	// Innermost function boundary: a closure replays only its own body.
	start := 0
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.FuncLit); ok {
			start = i
			break
		}
	}
	held := false
	for i := start; i < len(stack); i++ {
		var stmts []ast.Stmt
		switch blk := stack[i].(type) {
		case *ast.BlockStmt:
			stmts = blk.List
		case *ast.CaseClause:
			stmts = blk.Body
		case *ast.CommClause:
			stmts = blk.Body
		default:
			continue
		}
		for _, s := range stmts {
			if s.End() >= access {
				break
			}
			switch lockOp(pass, s, base, mu) {
			case lockAcquire:
				held = true
			case lockRelease:
				held = false
			}
		}
	}
	return held
}

type lockAction int

const (
	lockNone lockAction = iota
	lockAcquire
	lockRelease
)

// lockOp classifies a top-level statement as base.mu.Lock/RLock (acquire),
// base.mu.Unlock/RUnlock (release), or neither. Deferred unlocks release
// at return, after every access, so they are not classified.
func lockOp(pass *analysis.Pass, s ast.Stmt, base, mu string) lockAction {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return lockNone
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return lockNone
	}
	method, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockNone
	}
	muSel, ok := method.X.(*ast.SelectorExpr)
	if !ok || muSel.Sel.Name != mu || exprText(pass, muSel.X) != base {
		return lockNone
	}
	switch method.Sel.Name {
	case "Lock", "RLock":
		return lockAcquire
	case "Unlock", "RUnlock":
		return lockRelease
	}
	return lockNone
}

// exprText renders the receiver expression for comparison ("m", "j.opts").
func exprText(pass *analysis.Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, e); err != nil {
		return ""
	}
	return buf.String()
}
