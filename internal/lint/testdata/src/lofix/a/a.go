// Package a seeds two lock-order cycles for the lockorder fixture: one
// closed by two direct acquisitions, one closed through a call whose
// callee acquires transitively. A third pair of mutexes is always taken in
// a consistent order and must stay quiet.
package a

import "sync"

// S carries the direct AB/BA cycle.
type S struct {
	a sync.Mutex
	b sync.Mutex
}

// AB acquires a then b. The cycle report anchors here: this is the
// earliest edge that participates in it.
func (s *S) AB() {
	s.a.Lock()
	s.b.Lock() // want `potential deadlock: lock order cycle among a\.S\.a, a\.S\.b`
	s.b.Unlock()
	s.a.Unlock()
}

// BA closes the cycle.
func (s *S) BA() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}

// T carries the interprocedural cycle: x is held while a call transitively
// acquires y.
type T struct {
	x sync.Mutex
	y sync.Mutex
}

func (t *T) lockY() {
	t.y.Lock()
	t.y.Unlock()
}

// XthenCallY adds x→y through lockY's summary; the report anchors at the
// call that creates the edge.
func (t *T) XthenCallY() {
	t.x.Lock()
	t.lockY() // want `potential deadlock: lock order cycle among a\.T\.x, a\.T\.y`
	t.x.Unlock()
}

// YthenX closes the cycle directly.
func (t *T) YthenX() {
	t.y.Lock()
	t.x.Lock()
	t.x.Unlock()
	t.y.Unlock()
}

// U is the control: both functions agree on the order p before q, so no
// cycle exists and nothing is reported.
type U struct {
	p sync.Mutex
	q sync.Mutex
}

func (u *U) One() {
	u.p.Lock()
	u.q.Lock()
	u.q.Unlock()
	u.p.Unlock()
}

func (u *U) Two() {
	u.p.Lock()
	defer u.p.Unlock()
	u.q.Lock()
	defer u.q.Unlock()
}

// Branches verifies that an unlock inside one branch does not leak into
// the sibling branch's replay (copies, not shared state).
func (u *U) Branches(flip bool) {
	u.p.Lock()
	if flip {
		u.q.Lock()
		u.q.Unlock()
	} else {
		u.q.Lock()
		u.q.Unlock()
	}
	u.p.Unlock()
}
