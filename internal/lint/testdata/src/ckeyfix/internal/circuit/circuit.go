// Package circuit is a fixture stand-in for the real circuit package: a
// struct the key encoder hashes, with one field deliberately left out of
// the hash (Label), one waived (Trace), and one covered (the rest).
package circuit

// Gate is a hashed struct.
type Gate struct {
	Name   string
	Qubits []int
	Cbit   int
	Label  string  // never hashed, never waived: the analyzer must flag it
	Trace  string  // waived in the ckey fixture
	weight float64 // unexported: out of scope
}

// Circuit is a second hashed struct, fully covered.
type Circuit struct {
	Name  string
	Gates []Gate
}
