// Package ckey is the fixture key encoder: its import path ends in
// "internal/ckey", which activates the cachekey analyzer.
package ckey

import "ckeyfix/internal/circuit"

//ckey:ignore circuit.Gate.Trace debug trace tag, never affects results
//ckey:ignore circuit.Circuit.Name already hashed // want `stale //ckey:ignore circuit.Circuit.Name`
//ckey:ignore circuit.Gate.Missing no such field // want `names no exported field`

// Key hashes everything result-affecting. Gate.Label is read nowhere, so
// the analyzer reports it at the last Gate selector below.
func Key(c *circuit.Circuit) string {
	out := ""
	writeString(c.Name)
	for _, g := range c.Gates {
		writeString(g.Name)
		writeInt(g.Cbit)
		for _, q := range g.Qubits { // want `exported field circuit.Gate.Label is not written into the cache key`
			writeInt(q)
		}
	}
	return out
}

func writeString(s string) {}
func writeInt(v int)       {}
