// Package a exercises every resolution mechanism of the call-graph
// engine; TestCallgraph asserts on the resulting node/edge shapes rather
// than on diagnostics.
package a

type T struct{ v int }

func (t T) M() int { return t.v }

func F() int { return 2 }

type I interface{ M() int }

// Direct calls a package function.
func Direct() int { return F() }

// MethodCall calls through the static receiver type.
func MethodCall(t T) int { return t.M() }

// MethodValue binds a method value once, then calls it.
func MethodValue(t T) int {
	f := t.M
	return f()
}

// FuncValue binds a function value once, then calls it.
func FuncValue() int {
	g := F
	return g()
}

// Closure calls a func literal bound to a local; the literal's body (and
// its call to F) belongs to Closure's node, and the invocation resolves
// silently.
func Closure() int {
	h := func() int { return F() }
	return h()
}

// Iface dispatches through an interface: unresolvable, recorded as ⊤.
func Iface(i I) int { return i.M() }

// Reassigned kills the single-assignment binding: the call is ⊤.
func Reassigned(t T) int {
	g := F
	g = t.M
	return g()
}

// MethodExpr calls through a method expression, which resolves statically.
func MethodExpr(t T) int { return T.M(t) }

// Conversion is not a call: the node has no edges and no dynamic sites.
func Conversion(x int) int64 { return int64(x) }
