// Package use exercises every faultscope sink, both compliant and not.
package use

import "fsfix/internal/faults"

// localScope is a constant declared outside the registry: plumbing it into
// a sink is exactly the decentralization the analyzer forbids.
const localScope = "rogue"

// Options mirrors the repo's config-plumbing shape.
type Options struct {
	FaultScope    string
	DirFaultScope string
}

// Dir mirrors sweep.Dir.
type Dir struct{ scope string }

// SetFaultScope mirrors the sweep.Dir method the analyzer watches.
func (d *Dir) SetFaultScope(scope string) { d.scope = scope }

func ok(opt Options, d *Dir) {
	_ = faults.Check(faults.ScopeDisk, faults.OpRead)    // registry constant
	_ = faults.Check(opt.FaultScope, faults.OpWrite)     // plumbed variable
	_ = faults.Check("", faults.OpRead)                  // empty disables injection
	_, _ = faults.CheckWrite(faults.ScopeDisk+".a", nil) // derived from a registry constant
	_ = faults.RoundTripper(faults.ScopeNet, nil)        // registry constant
	_ = faults.Rule{Scope: faults.ScopeDisk, Op: faults.OpWrite}
	d.SetFaultScope(faults.ScopeDisk)
	_ = Options{FaultScope: opt.DirFaultScope}
}

func bad(opt Options, d *Dir) {
	_ = faults.Check("typo.scope", faults.OpRead)  // want `faults.Check scope is the string literal "typo.scope"`
	_ = faults.Check(localScope, faults.OpRead)    // want `constant localScope declared outside`
	_ = faults.Check(faults.ScopeDisk, "readd")    // want `faults.Check op is the literal "readd"`
	_, _ = faults.CheckWrite("wal.oops", nil)      // want `faults.CheckWrite scope is the string literal "wal.oops"`
	_ = faults.RoundTripper("net.oops", nil)       // want `faults.RoundTripper scope is the string literal "net.oops"`
	_ = faults.Rule{Scope: "rule.oops"}            // want `Scope field is the string literal "rule.oops"`
	d.SetFaultScope("set.oops")                    // want `SetFaultScope argument is the string literal "set.oops"`
	_ = Options{FaultScope: "opt.oops"}            // want `FaultScope field is the string literal "opt.oops"`
	opt.DirFaultScope = "dir.oops"                 // want `assignment to DirFaultScope is the string literal "dir.oops"`
	_, _ = faults.CheckWrite("pre."+suffix(), nil) // want `faults.CheckWrite scope is built without any`
}

func suffix() string { return "x" }
