// Package faults is the fixture registry: its import path ends in
// "internal/faults", so the faultscope analyzer treats its constants as
// the canonical scopes and exempts the package itself.
package faults

// Op is the operation class a rule matches.
type Op string

// Operation constants.
const (
	OpRead  Op = "read"
	OpWrite Op = "write"
)

// Registered scopes.
const (
	ScopeDisk = "disk"
	ScopeNet  = "net"
)

// Rule arms one scope.
type Rule struct {
	Scope string
	Op    Op
}

// Check is the injection hook.
func Check(scope string, op Op) error { return nil }

// CheckWrite is the write-mutation hook.
func CheckWrite(scope string, data []byte) ([]byte, error) { return data, nil }

// RoundTripper wraps a transport with injection under scope.
func RoundTripper(scope string, rt any) any { return rt }
