// Package helper is deliberately OUTSIDE the request-path package set:
// its own context.Background() draws no finding, but the summaries carry
// the verdict into the covered package (cfix/internal/service) that calls
// it.
package helper

import "context"

// Run constructs a fresh context; not a finding here, but callers on a
// request path inherit the verdict.
func Run() context.Context {
	return context.Background()
}

// Outer reaches Run's construction one hop down.
func Outer() context.Context {
	return Run()
}

// Waived is a deliberate context root; the waiver zeroes its summary so
// request-path callers stay quiet.
//
//muzzle:ctx-background fixture: detached maintenance work, not request-scoped
func Waived() context.Context {
	return context.Background()
}

// Threaded does it right; clean summary.
func Threaded(ctx context.Context) context.Context {
	return ctx
}
