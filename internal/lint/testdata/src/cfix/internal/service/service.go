// Package service sits on the fixture's request path (the covered-package
// check matches the import-path suffix internal/service), so every rule of
// ctxflow binds here.
package service

import (
	"context"
	"net/http"

	"cfix/helper"
)

// Handler exercises rule 1: direct constructions.
func Handler(ctx context.Context) {
	_ = context.Background()     // want `request-path function Handler constructs context\.Background\(\)`
	_ = context.TODO()           // want `request-path function Handler constructs context\.TODO\(\)`
	root := context.Background() //muzzle:ctx-background fixture: deliberate detached root
	_ = root
}

// BadWaiver carries a doc waiver with no justification.
//
//muzzle:ctx-background
func BadWaiver() { // want `muzzle:ctx-background waiver is missing a reason`
	_ = context.Background()
}

// UsesHelper exercises rule 2: the callee severs cancellation one hop
// down, in a package that is itself uncovered.
func UsesHelper(ctx context.Context) {
	_ = helper.Run() // want `request-path function UsesHelper calls helper\.Run, which constructs context\.Background\(\)`
}

// DeepHelper exercises rule 2 across two hops; the message carries the
// chain.
func DeepHelper(ctx context.Context) {
	_ = helper.Outer() // want `request-path function DeepHelper calls helper\.Outer → helper\.Run, which constructs context\.Background\(\)`
}

// WaivedHelper calls a waived context root: quiet.
func WaivedHelper(ctx context.Context) {
	_ = helper.Waived()
}

// ThreadedHelper does it right end to end: quiet.
func ThreadedHelper(ctx context.Context) {
	_ = helper.Threaded(ctx)
}

// Request exercises rule 3: a context-less HTTP request.
func Request() {
	req, _ := http.NewRequest("GET", "http://example.invalid/", nil) // want `request-path function Request builds a request without a context; use http\.NewRequestWithContext`
	_ = req
}

// GoodRequest threads the context: quiet.
func GoodRequest(ctx context.Context) {
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://example.invalid/", nil)
	_ = req
}
