// Package a exercises the guardedby replay: straight-line locking,
// branch-local unlocks, closures, the exemption conventions, and a
// mis-annotated mutex name.
package a

import "sync"

type counter struct {
	mu    sync.Mutex
	n     int      // guarded by mu
	items []string // guarded by mu
}

type broken struct {
	lock sync.Mutex
	v    int // guarded by mux // want `struct broken has no field mux`
}

// inc locks correctly.
func (c *counter) inc() {
	c.mu.Lock()
	c.n++ // locked: no diagnostic
	c.mu.Unlock()
}

// incDeferred locks with a deferred unlock.
func (c *counter) incDeferred() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++ // still locked: deferred unlock releases at return
}

// raw never locks.
func (c *counter) raw() int {
	return c.n // want `counter.n is guarded by mu but accessed without holding c.mu`
}

// relock drops the lock mid-function and touches state in the gap.
func (c *counter) relock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want `counter.n is guarded by mu but accessed without holding c.mu`
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// branches unlocks per switch case, like the scheduler's Cancel.
func (c *counter) branches(mode int) int {
	c.mu.Lock()
	switch {
	case c.n == 0: // case conditions still see the lock
		c.mu.Unlock()
		return 0
	default:
		n := c.n
		c.mu.Unlock()
		return n
	}
}

// spawn starts a goroutine: the closure must lock for itself.
func (c *counter) spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `counter.n is guarded by mu but accessed without holding c.mu`
	}()
	go func() {
		c.mu.Lock()
		c.n++ // locked inside the closure: no diagnostic
		c.mu.Unlock()
	}()
}

// growLocked relies on the caller's lock, per the naming convention.
func (c *counter) growLocked(s string) {
	c.items = append(c.items, s)
}

// drain relies on the caller's lock via the directive.
//
//muzzle:locked every caller holds c.mu
func (c *counter) drain() {
	c.items = c.items[:0]
}

// newCounter is a constructor: the composite literal exempts it.
func newCounter() *counter {
	c := &counter{n: 1}
	c.items = append(c.items, "seed")
	return c
}
