// Package a exercises every hotpath construct class, plus the allowed
// arena idioms that must not fire.
package a

import "fmt"

type state struct {
	buf  []int
	seen []bool
}

//muzzle:hotpath
func hot(s *state, n int) error {
	m := map[int]int{1: 2} // want `allocates a map literal`
	_ = m
	sl := []int{1, 2, 3} // want `allocates a slice literal`
	_ = sl
	mm := make(map[int]int) // want `allocates with make\(map\)`
	_ = mm
	ch := make(chan int) // want `allocates with make\(chan\)`
	_ = ch
	f := func() int { return n } // want `closure capturing local variables`
	_ = f
	fmt.Println(n) // want `calls fmt.Println outside a return statement`
	var grow []int
	for i := 0; i < n; i++ {
		grow = append(grow, i) // want `grows unsized slice grow with append inside a loop`
	}
	_ = grow
	var x any = n // no diagnostic: implicit, not an explicit conversion
	_ = x
	if n < 0 {
		_ = any(n) // want `converts int to interface`
	}
	// Allowed: sized make, arena-style append, fmt in a return.
	arena := make([]int, 0, n)
	for i := 0; i < n; i++ {
		arena = append(arena, i)
	}
	s.buf = arena
	if n > 1<<20 {
		return fmt.Errorf("n too large: %d", n)
	}
	return nil
}

// cold is unannotated: the same constructs pass without comment.
func cold(n int) map[int]int {
	fmt.Println(n)
	return map[int]int{1: 2}
}
