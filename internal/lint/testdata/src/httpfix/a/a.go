// Package a exercises the httperr check and its rewrite fix.
package a

import (
	"errors"
	"net/http"
)

type apiError struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {}

// writeError is the structured helper the fix rewrites to.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, apiError{Code: code, Error: err.Error()})
}

func handle(w http.ResponseWriter, r *http.Request, err error) {
	http.Error(w, err.Error(), http.StatusInternalServerError) // want `naked http.Error sends text/plain`
	http.Error(w, "boom", http.StatusBadRequest)               // want `naked http.Error sends text/plain`
	writeError(w, http.StatusBadRequest, "bad_request", errors.New("fine"))
}
