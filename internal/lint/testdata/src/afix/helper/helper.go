// Package helper holds the allocating callees for the allocflow fixture:
// the hotpath functions live one package over (afix/hot), so the
// may-allocate verdicts must cross a package boundary to reach them.
package helper

// BuildIndex allocates directly.
func BuildIndex(n int) map[int]int {
	return make(map[int]int, n)
}

// Add is clean.
func Add(a, b int) int { return a + b }

// Chain allocates only transitively, through BuildIndex.
func Chain(n int) map[int]int { return BuildIndex(n) }

// Waived allocates, deliberately: callers stay quiet.
//
//muzzle:allocok fixture: cold-path index rebuild, amortized across calls
func Waived() map[int]int { return BuildIndex(1) }

// BadWaiver carries a waiver with no justification.
//
//muzzle:allocok
func BadWaiver() map[int]int { // want `muzzle:allocok waiver on BadWaiver is missing a reason`
	return BuildIndex(1)
}

// CleanButWaived no longer allocates; its waiver is stale.
//
//muzzle:allocok fixture: left over from an allocating past
func CleanButWaived(a, b int) int { // want `stale muzzle:allocok waiver on CleanButWaived`
	return Add(a, b)
}
