// Package hot holds the //muzzle:hotpath functions of the allocflow
// fixture; their allocating callees live in afix/helper.
package hot

import "afix/helper"

// Clean only reaches non-allocating code.
//
//muzzle:hotpath
func Clean(n int) int {
	return helper.Add(n, 1)
}

// CallsAllocator reaches an allocator one hop away.
//
//muzzle:hotpath
func CallsAllocator(n int) int {
	m := helper.BuildIndex(n) // want `hotpath function CallsAllocator calls helper\.BuildIndex, which allocates with make\(map\)`
	return len(m)
}

// CallsChain reaches the allocator two hops away; the message carries the
// chain.
//
//muzzle:hotpath
func CallsChain(n int) int {
	m := helper.Chain(n) // want `hotpath function CallsChain calls helper\.Chain → helper\.BuildIndex, which allocates with make\(map\)`
	return len(m)
}

// CallsWaived reaches only a waived allocator: quiet.
//
//muzzle:hotpath
func CallsWaived(n int) int {
	m := helper.Waived()
	return len(m) + n
}

// localHelper is module-local and clean; calling it is fine.
func localHelper(n int) int { return n * 2 }

// Local verifies same-package propagation too.
//
//muzzle:hotpath
func Local(n int) int {
	return localHelper(n)
}

// localAllocator allocates in the same package as the hotpath caller.
func localAllocator(n int) []int {
	out := []int{n} // construct: slice literal
	return out
}

// CallsLocalAllocator reaches it without crossing a package.
//
//muzzle:hotpath
func CallsLocalAllocator(n int) int {
	return len(localAllocator(n)) // want `hotpath function CallsLocalAllocator calls hot\.localAllocator, which allocates a slice literal`
}
