// Package allocflow is the interprocedural second tier behind hotpath: a
// //muzzle:hotpath function must not *transitively* reach an allocating
// function. hotpath (tier 1) scans the annotated body itself; allocflow
// runs the same construct scanner (hotpath.Scan) over every function in
// the program, propagates "may-allocate" verdicts bottom-up over the call
// graph, and flags each call site in a hotpath function whose callee's
// summary says the allocation-free guarantee is broken somewhere below.
//
// Soundness boundary, stated plainly:
//
//   - dynamic call sites (interface dispatch, func-typed fields, escaped
//     function variables — the call graph's ⊤) are ignored; the repo's hot
//     loops are direct-call by construction and a ⊤-is-anything rule would
//     drown the signal
//   - callees outside the program (standard library) are ignored; the
//     scanner already flags the one stdlib surface that matters (fmt)
//   - callees themselves annotated //muzzle:hotpath are trusted clean —
//     tier 1 checks their bodies directly, so re-deriving their verdict
//     here would only double-report
//
// A cold-path helper that legitimately allocates may be waived with
// `//muzzle:allocok <reason>` in its doc comment; the waiver zeroes its
// summary so callers stay quiet. A waiver without a reason is a finding,
// and so is a stale waiver on a function that no longer allocates.
package allocflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"muzzle/internal/lint/analysis"
	"muzzle/internal/lint/callgraph"
	"muzzle/internal/lint/hotpath"
)

var Analyzer = &analysis.Analyzer{
	Name: "allocflow",
	Doc: "flag //muzzle:hotpath functions that transitively reach an allocating function\n\n" +
		"Per-function may-allocate summaries (derived with the hotpath construct\n" +
		"scanner) propagate bottom-up over the whole-program call graph; a call in a\n" +
		"hotpath function to a may-allocate callee is a finding at the call site,\n" +
		"with the allocation chain in the message. Waive a deliberate cold-path\n" +
		"allocation with //muzzle:allocok <reason>.",
	Run: run,
}

// summary is one function's may-allocate verdict.
type summary struct {
	// may: allocates directly or via some static module-local callee,
	// before waivers on the function itself are applied.
	may bool
	// what/pos: the direct evidence (first construct hotpath.Scan found).
	what string
	pos  token.Pos
	// via: when the evidence is inherited, the first may-allocate callee.
	via string
	// waived: //muzzle:allocok present (with or without reason).
	waived bool
	// reason: the waiver's argument.
	reason string
	// hot: //muzzle:hotpath present (trusted clean as a callee).
	hot bool
}

// effMay is the verdict callers inherit.
func (s *summary) effMay() bool { return s != nil && s.may && !s.waived && !s.hot }

// summaries computes (once per Program, memoized) the whole-program
// fixpoint: may[n] = direct evidence ∨ ∃ static module-local callee c with
// effMay(c).
func summaries(prog *callgraph.Program) map[string]*summary {
	return prog.Memo("allocflow", func() any {
		sums := make(map[string]*summary, len(prog.Nodes))
		for _, n := range prog.Nodes {
			s := &summary{hot: analysis.HasDirective(n.Decl.Doc, "muzzle:hotpath")}
			if arg, ok := analysis.Directive(n.Decl.Doc, "muzzle:allocok"); ok {
				s.waived, s.reason = true, arg
			}
			hotpath.Scan(n.Unit.Info, n.Decl, func(pos token.Pos, what string) {
				if !s.may {
					s.may, s.pos, s.what = true, pos, what
				}
			})
			sums[n.ID] = s
		}
		// Monotone fixpoint; iterate to handle cycles and arbitrary node
		// order. Depth of real call chains is small, so this converges in a
		// handful of rounds.
		for changed := true; changed; {
			changed = false
			for _, n := range prog.Nodes {
				s := sums[n.ID]
				if s.may {
					continue
				}
				for _, e := range n.Out {
					if c := sums[e.CalleeID]; c.effMay() {
						s.may, s.via = true, e.CalleeID
						changed = true
						break
					}
				}
			}
		}
		return sums
	}).(map[string]*summary)
}

func run(pass *analysis.Pass) error {
	prog := pass.Program
	if prog == nil {
		return nil // no call graph (bare vet unit): nothing to propagate
	}
	sums := summaries(prog)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			n := prog.Node(callgraph.FuncID(funcOf(pass, fd)))
			if n == nil {
				continue
			}
			s := sums[n.ID]
			if s.waived {
				if s.reason == "" {
					pass.Reportf(fd.Pos(), "muzzle:allocok waiver on %s is missing a reason", fd.Name.Name)
				}
				if !s.may {
					pass.Reportf(fd.Pos(), "stale muzzle:allocok waiver on %s: it no longer allocates, directly or transitively", fd.Name.Name)
				}
			}
			if !s.hot {
				continue
			}
			reported := map[string]bool{}
			for _, e := range n.Out {
				c := sums[e.CalleeID]
				if !c.effMay() || reported[e.CalleeID] {
					continue
				}
				reported[e.CalleeID] = true
				chain, what := witness(sums, e.CalleeID)
				pass.Reportf(e.Site, "hotpath function %s calls %s, which %s", fd.Name.Name, chain, what)
			}
		}
	}
	return nil
}

// witness renders the allocation chain from callee id down to the direct
// evidence: "a.helper → a.build" plus the construct phrase. Cycles and
// runaway chains are cut at 8 hops.
func witness(sums map[string]*summary, id string) (chain, what string) {
	var names []string
	for hops := 0; hops < 8; hops++ {
		names = append(names, displayName(id))
		s := sums[id]
		if s == nil {
			return strings.Join(names, " → "), "may allocate"
		}
		if s.via == "" || s.what != "" {
			return strings.Join(names, " → "), s.what
		}
		id = s.via
	}
	return strings.Join(names, " → "), "may allocate"
}

// displayName trims the import path directory from a FuncID:
// "muzzle/internal/topo.Graph.Path" → "topo.Graph.Path".
func displayName(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}

func funcOf(pass *analysis.Pass, fd *ast.FuncDecl) *types.Func {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return fn
}
