// Package load type-checks Go packages for the lint driver without
// golang.org/x/tools/go/packages. It shells out to `go list -e -export
// -deps -test -json`, which both enumerates the dependency closure and —
// crucially — compiles it, leaving gc export data in the build cache. Each
// analyzed package's sources are then parsed with go/parser and
// type-checked with go/types against an importer that reads that export
// data, so the loader never re-type-checks dependencies from source.
//
// Test variants are first-class: `go list -test` emits "p [p.test]"
// entries whose GoFiles merge production and in-package test files, and
// external test packages ("p_test") carry an ImportMap redirecting their
// production import back to the test variant. Synthesized ".test" mains
// are skipped — their only file is a generated _testmain.go.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// ImportPath as reported by go list; test variants look like
	// "muzzle/internal/cache [muzzle/internal/cache.test]".
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors holds any type-check errors (the package is still
	// returned best-effort; drivers decide whether to analyze it).
	TypeErrors []error
}

// listPackage mirrors the subset of `go list -json` output we consume.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	Export     string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir and returns a type-checked Package for every
// non-standard-library package belonging to the module rooted at dir,
// including in-package and external test variants. Dependencies are
// imported from gc export data, not re-checked.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps", "-test",
		"-json=Dir,ImportPath,Name,Standard,Export,GoFiles,CgoFiles,ImportMap,Module,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}

	var all []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		all = append(all, lp)
	}

	// Export data index: ImportPath (including bracketed test-variant
	// paths) -> export file.
	exports := make(map[string]string, len(all))
	for _, lp := range all {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	// An in-package test variant "p [p.test]" carries the production files
	// plus the _test.go files, so when one exists the plain "p" entry is a
	// strict subset — analyzing both would double-report every production
	// finding.
	superseded := make(map[string]bool)
	for _, lp := range all {
		if i := strings.IndexByte(lp.ImportPath, ' '); i >= 0 && !strings.HasSuffix(lp.ImportPath[:i], "_test") {
			superseded[lp.ImportPath[:i]] = true
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, lp := range all {
		if !analyzable(lp) || superseded[lp.ImportPath] {
			continue
		}
		p, err := check(fset, lp, exports)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// analyzable reports whether lp is a package we lint: a module-local
// package (any test variant included) that is neither a synthesized
// ".test" main nor standard library.
func analyzable(lp *listPackage) bool {
	if lp.Standard || lp.Module == nil || len(lp.GoFiles) == 0 {
		return false
	}
	if len(lp.CgoFiles) > 0 {
		// No cgo in this repo; if it ever appears, skip rather than
		// feed half a package to the type checker.
		return false
	}
	// "muzzle/internal/cache.test" mains exist only as generated
	// _testmain.go files in the build cache.
	if lp.Name == "main" && strings.HasSuffix(lp.ImportPath, ".test") {
		return false
	}
	return true
}

// check parses and type-checks one listed package against export data.
func check(fset *token.FileSet, lp *listPackage, exports map[string]string) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := name
		if !strings.HasPrefix(path, "/") {
			path = lp.Dir + "/" + name
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}

	p := &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	conf := types.Config{
		// The gc importer resolves paths through lookup, so each package
		// needs its own importer when ImportMap is non-trivial.
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Strip the " [p.test]" decoration: types.Package paths should be the
	// plain import path so analyzers comparing Pkg.Path() see "muzzle/...".
	plain := lp.ImportPath
	if i := strings.IndexByte(plain, ' '); i >= 0 {
		plain = plain[:i]
	}
	tpkg, err := conf.Check(plain, fset, files, p.Info)
	if err != nil && len(p.TypeErrors) == 0 {
		p.TypeErrors = append(p.TypeErrors, err)
	}
	p.Types = tpkg
	return p, nil
}
