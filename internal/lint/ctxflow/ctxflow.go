// Package ctxflow guards request-path context discipline: in the packages
// that sit on a request path (service, coord, eval, sweep, flight, plus
// sim and compiler, which those call into), blocking work must remain
// cancelable, which means every context must derive from the one the
// enclosing function was handed — not be minted fresh.
//
// Three rules, the first and last purely syntactic so they still run under
// `go vet -vettool` where no whole-program graph exists:
//
//  1. A context.Background() or context.TODO() call in a covered package
//     is a finding: it severs the cancellation chain. Waive a deliberate
//     root — a daemon lifecycle context, a legacy ctx-less API wrapper —
//     with `//muzzle:ctx-background <reason>` on the same line or in the
//     function's doc comment. A waiver without a reason is itself a
//     finding.
//
//  2. (Interprocedural, needs the call graph.) A call to a module-local
//     function whose summary says it transitively constructs an unwaived
//     Background/TODO is a finding at the call site: the callee silently
//     discards the caller's cancellation even though the caller did
//     everything right. Waivers zero the summary, so an annotated legacy
//     wrapper quiets its callers too.
//
//  3. http.NewRequest in a covered package is a finding — the request
//     carries no context — with http.NewRequestWithContext as the fix.
//
// Dynamic (⊤) call sites are ignored, same trade as allocflow.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"muzzle/internal/lint/analysis"
	"muzzle/internal/lint/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flag request-path code that severs context cancellation\n\n" +
		"In request-path packages (service, coord, eval, sweep, flight, sim,\n" +
		"compiler): context.Background()/TODO() calls, calls to module-local\n" +
		"functions that transitively construct one, and ctx-less http.NewRequest\n" +
		"are findings. Waive deliberate context roots with\n" +
		"//muzzle:ctx-background <reason>.",
	Run: run,
}

// coveredSuffixes are the request-path packages, matched as import-path
// suffixes so fixture trees (cfix/internal/service) trigger the rule too.
var coveredSuffixes = []string{
	"internal/service",
	"internal/coord",
	"internal/eval",
	"internal/sweep",
	"internal/flight",
	"internal/sim",
	"internal/compiler",
}

func covered(path string) bool {
	for _, s := range coveredSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// lineKey addresses a source line across the program's files.
type lineKey struct {
	file string
	line int
}

type waiver struct {
	reason string
	pos    token.Pos
}

// fileWaivers collects every same-line //muzzle:ctx-background comment.
// Declaration doc comments are excluded — those are the *function-level*
// waiver form, handled (and required to carry a reason) where the
// declaration is inspected.
func fileWaivers(fset *token.FileSet, files []*ast.File, into map[lineKey]waiver) {
	for _, f := range files {
		doc := map[*ast.CommentGroup]bool{}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc[d.Doc] = true
			case *ast.GenDecl:
				doc[d.Doc] = true
			}
		}
		for _, cg := range f.Comments {
			if doc[cg] {
				continue
			}
			for _, c := range cg.List {
				if arg, ok := analysis.DirectiveComment(c, "muzzle:ctx-background"); ok {
					p := fset.Position(c.Pos())
					into[lineKey{p.Filename, p.Line}] = waiver{arg, c.Pos()}
				}
			}
		}
	}
}

// ctxConstructor returns "context.Background()" / "context.TODO()" when
// call is one, else "".
func ctxConstructor(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return "context." + fn.Name() + "()"
	}
	return ""
}

// isHTTPNewRequest reports a call to net/http.NewRequest.
func isHTTPNewRequest(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "NewRequest"
}

// summary is one function's constructs-background verdict.
type summary struct {
	// may: constructs an unwaived Background/TODO, directly or via a
	// static module-local callee.
	may  bool
	what string // the constructor, for the witness message
	via  string // callee FuncID when the evidence is inherited
	// docWaived: the function doc carries the waiver; zeroes the summary.
	docWaived bool
}

func (s *summary) effMay() bool { return s != nil && s.may && !s.docWaived }

// summaries computes the whole-program fixpoint once per Program.
func summaries(prog *callgraph.Program) map[string]*summary {
	return prog.Memo("ctxflow", func() any {
		waivers := map[lineKey]waiver{}
		for _, u := range prog.Units {
			fileWaivers(prog.Fset, u.Files, waivers)
		}
		sums := make(map[string]*summary, len(prog.Nodes))
		for _, n := range prog.Nodes {
			s := &summary{docWaived: analysis.HasDirective(n.Decl.Doc, "muzzle:ctx-background")}
			ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
				if s.may {
					return false
				}
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				what := ctxConstructor(n.Unit.Info, call)
				if what == "" {
					return true
				}
				p := prog.Fset.Position(call.Pos())
				if _, waived := waivers[lineKey{p.Filename, p.Line}]; !waived {
					s.may, s.what = true, what
				}
				return true
			})
			sums[n.ID] = s
		}
		for changed := true; changed; {
			changed = false
			for _, n := range prog.Nodes {
				s := sums[n.ID]
				if s.may {
					continue
				}
				for _, e := range n.Out {
					if c := sums[e.CalleeID]; c.effMay() {
						s.may, s.via = true, e.CalleeID
						changed = true
						break
					}
				}
			}
		}
		return sums
	}).(map[string]*summary)
}

func run(pass *analysis.Pass) error {
	if !covered(pass.Pkg.Path()) {
		return nil
	}
	waivers := map[lineKey]waiver{}
	var prodFiles []*ast.File
	for _, f := range pass.Files {
		if !pass.InTestFile(f.Pos()) {
			prodFiles = append(prodFiles, f)
		}
	}
	fileWaivers(pass.Fset, prodFiles, waivers)

	waivedAt := func(pos token.Pos) (waiver, bool) {
		p := pass.Fset.Position(pos)
		w, ok := waivers[lineKey{p.Filename, p.Line}]
		return w, ok
	}

	// Reason-less waivers are findings wherever they appear.
	for _, w := range waivers {
		if w.reason == "" {
			pass.Reportf(w.pos, "muzzle:ctx-background waiver is missing a reason")
		}
	}

	var sums map[string]*summary
	if pass.Program != nil {
		sums = summaries(pass.Program)
	}

	for _, f := range prodFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if arg, ok := analysis.Directive(fd.Doc, "muzzle:ctx-background"); ok {
				if arg == "" {
					pass.Reportf(fd.Pos(), "muzzle:ctx-background waiver is missing a reason")
				}
				continue // the whole function is a deliberate context root
			}

			// Rules 1 and 3: syntactic, graph-free.
			ast.Inspect(fd.Body, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				if what := ctxConstructor(pass.TypesInfo, call); what != "" {
					if _, waived := waivedAt(call.Pos()); !waived {
						pass.Reportf(call.Pos(), "request-path function %s constructs %s; thread the caller's context or waive with //muzzle:ctx-background <reason>", name, what)
					}
				}
				if isHTTPNewRequest(pass.TypesInfo, call) {
					if _, waived := waivedAt(call.Pos()); !waived {
						pass.Reportf(call.Pos(), "request-path function %s builds a request without a context; use http.NewRequestWithContext", name)
					}
				}
				return true
			})

			// Rule 2: interprocedural, needs the graph.
			if sums == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			n := pass.Program.Node(callgraph.FuncID(fn))
			if n == nil {
				continue
			}
			reported := map[string]bool{}
			for _, e := range n.Out {
				c := sums[e.CalleeID]
				if !c.effMay() || reported[e.CalleeID] {
					continue
				}
				if _, waived := waivedAt(e.Site); waived {
					continue
				}
				reported[e.CalleeID] = true
				chain, what := witness(sums, e.CalleeID)
				pass.Reportf(e.Site, "request-path function %s calls %s, which constructs %s and severs cancellation; pass the caller's context through or waive with //muzzle:ctx-background <reason>", name, chain, what)
			}
		}
	}
	return nil
}

// witness renders the chain from callee id down to the constructor site.
func witness(sums map[string]*summary, id string) (chain, what string) {
	var names []string
	for hops := 0; hops < 8; hops++ {
		names = append(names, displayName(id))
		s := sums[id]
		if s == nil {
			return strings.Join(names, " → "), "a fresh context"
		}
		if s.via == "" || s.what != "" {
			return strings.Join(names, " → "), s.what
		}
		id = s.via
	}
	return strings.Join(names, " → "), "a fresh context"
}

func displayName(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}
