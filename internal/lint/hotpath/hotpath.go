// Package hotpath guards the PR 3 allocation-free compile loop. Functions
// annotated //muzzle:hotpath — the engine's routing loop, future-index
// maintenance, DAG/arena builders, topo.Path — were hand-tuned to zero
// amortized heap allocations, and that property erodes one innocent diff
// at a time. The analyzer flags the constructs that put allocations back:
//
//   - map and slice composite literals
//   - make(map) / make(chan) — make([]T, n) stays legal because the whole
//     arena pattern is built on sized slice allocation
//   - function literals that capture enclosing variables (escape to heap)
//   - fmt calls, except inside a return statement: cold error exits may
//     format, the loop body may not
//   - explicit conversions of concrete values to interface types
//   - append to a bare `var x []T` inside a loop (unbounded growth;
//     append to a make()-sized or arena-backed slice is fine)
//
// The construct scanner is exported as Scan so allocflow can reuse it as
// the per-function evidence source for its interprocedural may-allocate
// summaries: hotpath is the fast syntactic first tier over annotated
// functions only, allocflow runs the same scanner over every function in
// the program and propagates the verdicts up the call graph.
//
// The benchmarks in internal/compiler remain the ground truth for
// allocs/op; this analyzer is the cheap always-on tripwire in front of
// them.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"muzzle/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "flag heap-allocating constructs in //muzzle:hotpath functions\n\n" +
		"Annotate a function with //muzzle:hotpath when a benchmark holds its\n" +
		"allocs/op at zero; the analyzer then rejects map/slice literals, capturing\n" +
		"closures, non-return fmt calls, interface conversions, make(map|chan),\n" +
		"and unbounded append in loops.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasDirective(fd.Doc, "muzzle:hotpath") {
				continue
			}
			name := fd.Name.Name
			Scan(pass.TypesInfo, fd, func(pos token.Pos, what string) {
				pass.Reportf(pos, "hotpath function %s %s", name, what)
			})
		}
	}
	return nil
}

// Scan walks fd's body and calls emit once per allocating construct with a
// phrase describing it ("allocates a map literal", "calls fmt.Sprintf
// outside a return statement", ...). Callers compose the full message —
// hotpath prefixes the annotated function's name, allocflow uses the first
// hit as the may-allocate witness for its summaries.
func Scan(info *types.Info, fd *ast.FuncDecl, emit func(pos token.Pos, what string)) {
	bareSlices := collectBareSlices(info, fd)

	analysis.WalkStack(fd, func(n ast.Node, stack []ast.Node) bool {
		if n == fd {
			return true
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				emit(n.Pos(), "allocates a map literal")
			case *types.Slice:
				emit(n.Pos(), "allocates a slice literal")
			}
		case *ast.FuncLit:
			if capturesLocal(info, fd, n) {
				emit(n.Pos(), "creates a closure capturing local variables (heap escape)")
			}
			// Report once per literal, but still scan its body for the
			// other constructs.
			return true
		case *ast.CallExpr:
			scanCall(info, n, stack, bareSlices, emit)
		}
		return true
	})
}

func scanCall(info *types.Info, call *ast.CallExpr, stack []ast.Node, bareSlices map[types.Object]bool, emit func(token.Pos, string)) {
	// make(map[...]..., ...) / make(chan ...): sized slices stay legal.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				switch info.Types[call].Type.Underlying().(type) {
				case *types.Map:
					emit(call.Pos(), "allocates with make(map)")
				case *types.Chan:
					emit(call.Pos(), "allocates with make(chan)")
				}
			case "append":
				if len(call.Args) > 0 && inLoop(stack) {
					if base, ok := call.Args[0].(*ast.Ident); ok && bareSlices[info.Uses[base]] {
						emit(call.Pos(), "grows unsized slice "+base.Name+" with append inside a loop")
					}
				}
			}
			return
		}
	}

	// fmt.* calls outside return statements.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			if !inReturn(stack) {
				emit(call.Pos(), "calls fmt."+sel.Sel.Name+" outside a return statement")
			}
			return
		}
	}

	// Explicit conversion to an interface type boxes the operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) {
			if argT := info.Types[call.Args[0]].Type; argT != nil && !types.IsInterface(argT) {
				if b, ok := argT.Underlying().(*types.Basic); !ok || b.Kind() != types.UntypedNil {
					emit(call.Pos(), "converts "+argT.String()+" to interface "+tv.Type.String()+" (boxes on the heap)")
				}
			}
		}
	}
}

// collectBareSlices returns the objects of `var x []T` declarations (no
// initializer) in fd — append targets that grow without bound.
func collectBareSlices(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	bare := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		decl, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := decl.Decl.(*ast.GenDecl)
		if !ok {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 0 {
				continue
			}
			for _, id := range vs.Names {
				if obj := info.Defs[id]; obj != nil {
					if _, ok := obj.Type().Underlying().(*types.Slice); ok {
						bare[obj] = true
					}
				}
			}
		}
		return true
	})
	return bare
}

// capturesLocal reports whether lit references a variable declared in fd
// outside lit itself (a capture, which forces the closure and captured
// vars to the heap).
func capturesLocal(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Declared inside fd but outside lit: a capture. Receiver and
		// parameters of fd count too — they pin the closure just the same.
		if within(fd, posNode{v.Pos()}) && !within(lit, posNode{v.Pos()}) {
			captured = true
			return false
		}
		return true
	})
	return captured
}

func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

func inReturn(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ReturnStmt:
			return true
		case ast.Stmt:
			return false
		}
	}
	return false
}

func within(outer ast.Node, n ast.Node) bool {
	return outer.Pos() <= n.Pos() && n.Pos() <= outer.End()
}

// posNode adapts a bare token.Pos to ast.Node for within().
type posNode struct{ p token.Pos }

func (p posNode) Pos() token.Pos { return p.p }
func (p posNode) End() token.Pos { return p.p }
