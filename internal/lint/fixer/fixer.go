// Package fixer turns diagnostics' SuggestedFixes into file edits: resolve
// them against the FileSet, render a reviewable dry-run diff, or apply
// them in place. It is shared by `muzzlelint -fix` / `-fix -w` and by the
// idempotency test, which asserts that one Apply pass leaves nothing for a
// second pass to do.
package fixer

import (
	"bytes"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"

	"muzzle/internal/lint/analysis"
)

// Edit is one resolved replacement: file[Start:End) becomes Text.
type Edit struct {
	File       string
	Start, End int
	Text       []byte
}

// Collect resolves each diagnostic's first suggested fix (the analyzers
// emit at most one) into flat edits, sorted by file then offset.
func Collect(fset *token.FileSet, diags []analysis.Diagnostic) []Edit {
	var edits []Edit
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range d.SuggestedFixes[0].TextEdits {
			pos := fset.Position(te.Pos)
			end := pos.Offset
			if te.End.IsValid() {
				end = fset.Position(te.End).Offset
			}
			edits = append(edits, Edit{File: pos.Filename, Start: pos.Offset, End: end, Text: te.NewText})
		}
	}
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].File != edits[j].File {
			return edits[i].File < edits[j].File
		}
		return edits[i].Start < edits[j].Start
	})
	return edits
}

// Apply rewrites the files in place, per file from the end backward so
// earlier offsets stay valid. Overlapping or stale edits are skipped.
// Returns the number of edits applied and files rewritten.
func Apply(edits []Edit) (applied, files int, err error) {
	for _, group := range perFile(edits) {
		src, err := os.ReadFile(group[0].File)
		if err != nil {
			return applied, files, err
		}
		out, n := applyToSource(src, group)
		if n == 0 {
			continue
		}
		if err := os.WriteFile(group[0].File, out, 0o644); err != nil {
			return applied, files, err
		}
		applied += n
		files++
	}
	return applied, files, nil
}

// Diff writes a reviewable dry-run rendering of the edits: for each edit,
// the spanned source lines before and after. Not a unified diff — each
// edit stands alone with its location, which is what a human deciding
// whether to run -w actually reads.
func Diff(w io.Writer, edits []Edit) error {
	src := map[string][]byte{}
	for _, group := range perFile(edits) {
		data, err := os.ReadFile(group[0].File)
		if err != nil {
			return err
		}
		src[group[0].File] = data
	}
	for _, e := range edits {
		data := src[e.File]
		if e.Start > len(data) || e.End > len(data) || e.Start > e.End {
			continue
		}
		ls := lineStart(data, e.Start)
		le := lineEnd(data, e.End)
		line := 1 + bytes.Count(data[:ls], []byte("\n"))
		fmt.Fprintf(w, "%s:%d:\n", e.File, line)
		writePrefixed(w, "-", data[ls:le])
		var after bytes.Buffer
		after.Write(data[ls:e.Start])
		after.Write(e.Text)
		after.Write(data[e.End:le])
		writePrefixed(w, "+", after.Bytes())
	}
	return nil
}

func perFile(edits []Edit) [][]Edit {
	byFile := map[string][]Edit{}
	var names []string
	for _, e := range edits {
		if _, seen := byFile[e.File]; !seen {
			names = append(names, e.File)
		}
		byFile[e.File] = append(byFile[e.File], e)
	}
	sort.Strings(names)
	out := make([][]Edit, 0, len(names))
	for _, n := range names {
		out = append(out, byFile[n])
	}
	return out
}

// applyToSource applies one file's edits end-to-start, skipping overlaps.
func applyToSource(src []byte, edits []Edit) ([]byte, int) {
	sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
	applied := 0
	prev := len(src) + 1
	for _, e := range edits {
		if e.End > prev || e.End > len(src) || e.Start > e.End {
			continue // overlapping or stale edit
		}
		src = append(src[:e.Start], append(append([]byte(nil), e.Text...), src[e.End:]...)...)
		prev = e.Start
		applied++
	}
	return src, applied
}

func lineStart(src []byte, off int) int {
	if i := bytes.LastIndexByte(src[:off], '\n'); i >= 0 {
		return i + 1
	}
	return 0
}

func lineEnd(src []byte, off int) int {
	if i := bytes.IndexByte(src[off:], '\n'); i >= 0 {
		return off + i + 1
	}
	return len(src)
}

func writePrefixed(w io.Writer, prefix string, text []byte) {
	for _, line := range bytes.SplitAfter(text, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		fmt.Fprintf(w, "%s %s", prefix, line)
		if !bytes.HasSuffix(line, []byte("\n")) {
			fmt.Fprintln(w)
		}
	}
}
