// Package lockorder lifts guardedby's structural Lock/Unlock replay from
// one function body to the whole program: every place mutex A is held
// while mutex B is acquired — directly, or through a call whose callee
// transitively acquires B — adds the edge A→B to a global lock-order
// graph, and any cycle in that graph is a potential deadlock, reported
// once with the acquisition sites that close it.
//
// Mutex identity is structural, not per-instance: a mutex field is
// "pkg/path.Struct.field", a package-level mutex var is "pkg/path.var",
// and a type with an embedded sync.Mutex locked through method calls is
// "pkg/path.Type". Two instances of the same struct therefore share a key
// — exactly the approximation that catches AB/BA deadlocks between
// instances, at the cost of flagging the (rare, and here absent) ordered
// self-lock idiom. Local mutex variables have no stable identity and are
// skipped.
//
// The replay mirrors guardedby's model: sequential statements mutate the
// held set, branch bodies replay against a copy, `defer mu.Unlock()`
// releases after everything (so it never removes a hold), closures replay
// with a fresh held set, and `go`/`defer` calls are unordered with the
// current holds and contribute nothing interprocedurally. Callee lock
// summaries (the set of keys a function transitively acquires, closures
// excluded — a closure's acquires usually happen on another goroutine)
// come from a fixpoint over the call graph; dynamic (⊤) sites contribute
// nothing, same trade as allocflow and ctxflow.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"muzzle/internal/lint/analysis"
	"muzzle/internal/lint/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "report lock-order cycles (potential deadlocks) across the whole program\n\n" +
		"Replays Lock/Unlock structurally in every function; mutex A held while\n" +
		"acquiring mutex B — directly or through a call chain — adds edge A→B to a\n" +
		"global graph. A cycle is reported once, at its earliest closing edge, with\n" +
		"both acquisition sites.",
	Run: run,
}

// edge is one observed ordering: from held while to acquired.
type edge struct {
	from, to string
	fromSite token.Pos // where `from` was acquired
	toSite   token.Pos // where `to` was acquired (or the call that leads there)
	via      string    // callee FuncID when the acquisition is interprocedural
}

// cycleReport is one strongly connected component of the order graph.
type cycleReport struct {
	anchor token.Pos
	msg    string
}

func run(pass *analysis.Pass) error {
	prog := pass.Program
	if prog == nil {
		return nil
	}
	cycles := prog.Memo("lockorder", func() any { return analyze(prog) }).([]cycleReport)
	for _, c := range cycles {
		// The pass owning the anchor position reports; everyone else stays
		// quiet so a whole-program cycle shows up exactly once.
		if u := prog.UnitAt(c.anchor); u != nil && u.Pkg.Path() == pass.Pkg.Path() {
			pass.Reportf(c.anchor, "%s", c.msg)
		}
	}
	return nil
}

func analyze(prog *callgraph.Program) []cycleReport {
	trans := lockSummaries(prog)
	edges := map[[2]string]edge{}
	addEdge := func(e edge) {
		k := [2]string{e.from, e.to}
		if _, seen := edges[k]; !seen {
			edges[k] = e
		}
	}
	for _, n := range prog.Nodes {
		if inTestFile(prog.Fset, n.Decl.Pos()) {
			continue
		}
		r := &replayer{prog: prog, u: n.Unit, trans: trans, add: addEdge, sites: map[token.Pos]string{}}
		for _, e := range n.Out {
			r.sites[e.Site] = e.CalleeID
		}
		r.stmts(n.Decl.Body.List, map[string]token.Pos{})
	}
	return cycles(prog.Fset, edges)
}

// lockSummaries computes, per function, the set of mutex keys it
// transitively acquires (closures excluded), with one example site each.
func lockSummaries(prog *callgraph.Program) map[string]map[string]token.Pos {
	trans := make(map[string]map[string]token.Pos, len(prog.Nodes))
	for _, n := range prog.Nodes {
		acq := map[string]token.Pos{}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			if _, ok := node.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := node.(*ast.CallExpr); ok {
				if key, site, acquire, ok := lockCall(n.Unit, call); ok && acquire {
					if _, seen := acq[key]; !seen {
						acq[key] = site
					}
				}
			}
			return true
		})
		trans[n.ID] = acq
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.Nodes {
			mine := trans[n.ID]
			for _, e := range n.Out {
				for key, site := range trans[e.CalleeID] {
					if _, seen := mine[key]; !seen {
						mine[key] = site
						changed = true
					}
				}
			}
		}
	}
	return trans
}

// lockCall classifies call as an acquire/release of a stably identified
// mutex. ok=false for non-lock calls and for locks with no stable identity
// (local mutex variables).
func lockCall(u *callgraph.Unit, call *ast.CallExpr) (key string, site token.Pos, acquire, ok bool) {
	method, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false, false
	}
	fn, isFn := u.Info.Uses[method.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", 0, false, false
	}
	key = mutexKey(u, method.X)
	if key == "" {
		return "", 0, false, false
	}
	return key, call.Lparen, acquire, true
}

// mutexKey derives the structural identity of the mutex expression e, or
// "" when none exists.
func mutexKey(u *callgraph.Unit, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, isField := u.Info.Selections[x]; isField && sel.Kind() == types.FieldVal {
			// m.mu.Lock(): key the field on its declaring struct.
			if named := analysis.Named(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Obj().Name()
			}
			return ""
		}
		// pkg.Mu.Lock(): qualified package-level var.
		if v, isVar := u.Info.Uses[x.Sel].(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return ""
	case *ast.Ident:
		v, isVar := u.Info.Uses[x].(*types.Var)
		if !isVar {
			return ""
		}
		// A receiver or local whose type embeds sync.Mutex: lock identity is
		// the type itself (s.Lock() on *Store → "pkg.Store").
		if named := analysis.Named(v.Type()); named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name()
		}
		// Package-level mutex var.
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return "" // local sync.Mutex: no stable identity
	default:
		if named := analysis.Named(u.Info.Types[ast.Unparen(e)].Type); named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name()
		}
		return ""
	}
}

// replayer walks one function body maintaining the held set.
type replayer struct {
	prog  *callgraph.Program
	u     *callgraph.Unit
	trans map[string]map[string]token.Pos
	sites map[token.Pos]string // call site → callee FuncID
	add   func(edge)
}

func (r *replayer) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, s := range list {
		r.stmt(s, held)
	}
}

func (r *replayer) stmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		r.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			r.expr(e, held)
		}
		for _, e := range s.Lhs {
			r.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			r.expr(e, held)
		}
	case *ast.BlockStmt:
		r.stmts(s.List, held)
	case *ast.LabeledStmt:
		r.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			r.stmt(s.Init, held)
		}
		r.expr(s.Cond, held)
		r.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			r.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		inner := copyHeld(held)
		if s.Init != nil {
			r.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			r.expr(s.Cond, inner)
		}
		r.stmts(s.Body.List, inner)
		if s.Post != nil {
			r.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		r.expr(s.X, held)
		r.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			r.stmt(s.Init, held)
		}
		if s.Tag != nil {
			r.expr(s.Tag, held)
		}
		r.clauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			r.stmt(s.Init, held)
		}
		r.clauses(s.Body, held)
	case *ast.SelectStmt:
		r.clauses(s.Body, held)
	case *ast.GoStmt, *ast.DeferStmt:
		// Unordered with the current holds: a goroutine races, a deferred
		// call runs after every statement below. Closure literals inside
		// still replay (with a fresh held set) via expr's FuncLit case.
		var call *ast.CallExpr
		if g, isGo := s.(*ast.GoStmt); isGo {
			call = g.Call
		} else {
			call = s.(*ast.DeferStmt).Call
		}
		for _, a := range append([]ast.Expr{call.Fun}, call.Args...) {
			if lit, isLit := ast.Unparen(a).(*ast.FuncLit); isLit {
				r.stmts(lit.Body.List, map[string]token.Pos{})
			}
		}
	case *ast.DeclStmt:
		if gd, isGen := s.Decl.(*ast.GenDecl); isGen {
			for _, spec := range gd.Specs {
				if vs, isVal := spec.(*ast.ValueSpec); isVal {
					for _, e := range vs.Values {
						r.expr(e, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		r.expr(s.Chan, held)
		r.expr(s.Value, held)
	case *ast.IncDecStmt:
		r.expr(s.X, held)
	}
}

func (r *replayer) clauses(body *ast.BlockStmt, held map[string]token.Pos) {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			inner := copyHeld(held)
			for _, e := range c.List {
				r.expr(e, inner)
			}
			r.stmts(c.Body, inner)
		case *ast.CommClause:
			inner := copyHeld(held)
			if c.Comm != nil {
				r.stmt(c.Comm, inner)
			}
			r.stmts(c.Body, inner)
		}
	}
}

// expr scans e for calls in syntactic order, applying lock operations to
// held and callee summaries across non-lock calls.
func (r *replayer) expr(e ast.Expr, held map[string]token.Pos) {
	ast.Inspect(e, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.FuncLit:
			r.stmts(n.Body.List, map[string]token.Pos{})
			return false
		case *ast.CallExpr:
			r.call(n, held)
		}
		return true
	})
}

func (r *replayer) call(call *ast.CallExpr, held map[string]token.Pos) {
	if key, site, acquire, ok := lockCall(r.u, call); ok {
		if acquire {
			for h, hs := range held {
				if h != key {
					r.add(edge{from: h, to: key, fromSite: hs, toSite: site})
				}
			}
			if _, already := held[key]; !already {
				held[key] = site
			}
		} else {
			delete(held, key)
		}
		return
	}
	calleeID, resolved := r.sites[call.Lparen]
	if !resolved || len(held) == 0 {
		return
	}
	for l := range r.trans[calleeID] {
		for h, hs := range held {
			if h != l {
				r.add(edge{from: h, to: l, fromSite: hs, toSite: call.Lparen, via: calleeID})
			}
		}
	}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// cycles finds the strongly connected components of the order graph and
// renders one report per non-trivial component.
func cycles(fset *token.FileSet, edges map[[2]string]edge) []cycleReport {
	adj := map[string][]string{}
	var keys []string
	seen := map[string]bool{}
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
		for _, n := range []string{k[0], k[1]} {
			if !seen[n] {
				seen[n] = true
				keys = append(keys, n)
			}
		}
	}
	sort.Strings(keys)
	for _, n := range keys {
		sort.Strings(adj[n])
	}

	// Tarjan SCC, recursive — lock graphs here have a handful of nodes.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var comps [][]string
	var strong func(v string)
	strong = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, visited := index[w]; !visited {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				comps = append(comps, comp)
			}
		}
	}
	for _, n := range keys {
		if _, visited := index[n]; !visited {
			strong(n)
		}
	}

	var reports []cycleReport
	for _, comp := range comps {
		in := map[string]bool{}
		for _, n := range comp {
			in[n] = true
		}
		var cedges []edge
		for k, e := range edges {
			if in[k[0]] && in[k[1]] {
				cedges = append(cedges, e)
			}
		}
		sort.Slice(cedges, func(i, j int) bool {
			if cedges[i].from != cedges[j].from {
				return cedges[i].from < cedges[j].from
			}
			return cedges[i].to < cedges[j].to
		})
		anchor := cedges[0].toSite
		for _, e := range cedges {
			if e.toSite < anchor {
				anchor = e.toSite
			}
		}
		parts := make([]string, len(cedges))
		for i, e := range cedges {
			via := ""
			if e.via != "" {
				via = " via " + displayName(e.via)
			}
			parts[i] = fmt.Sprintf("%s (held since %s) → %s acquired at %s%s",
				displayName(e.from), shortPos(fset, e.fromSite),
				displayName(e.to), shortPos(fset, e.toSite), via)
		}
		sort.Strings(comp)
		reports = append(reports, cycleReport{
			anchor: anchor,
			msg: fmt.Sprintf("potential deadlock: lock order cycle among %s: %s",
				strings.Join(mapNames(comp), ", "), strings.Join(parts, "; ")),
		})
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].anchor < reports[j].anchor })
	return reports
}

func mapNames(keys []string) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = displayName(k)
	}
	return out
}

func displayName(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}
