// Package analysistest runs one analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	x := []int{1}  // want `slice literal`
//
// Each fixture directory under testdata/src is a package whose import
// path is its path relative to src; fixtures import each other that way
// ("cachekey/internal/circuit"). Standard-library imports resolve through
// gc export data located on demand with `go list -export`, so fixtures
// can use fmt, sync, net/http without the loader re-checking the standard
// library from source.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"muzzle/internal/lint/analysis"
	"muzzle/internal/lint/callgraph"
)

// Run loads each fixture package named by patterns (paths relative to
// testdata/src), applies a, and reports mismatches against the fixtures'
// // want comments through t. It returns all diagnostics in source order
// plus the FileSet that renders their positions, so callers can
// additionally assert on suggested fixes.
//
// All patterns (and their fixture dependencies) load before any analyzer
// runs, and every pass carries the whole-fixture call graph — the same
// shape the standalone driver gives the interprocedural analyzers.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) ([]analysis.Diagnostic, *token.FileSet) {
	t.Helper()
	return run(t, testdata, a, true, patterns...)
}

// Diagnostics is Run without the // want comparison, for tests that mutate
// fixture copies (fix idempotency) where the comments no longer describe
// the source.
func Diagnostics(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) ([]analysis.Diagnostic, *token.FileSet) {
	t.Helper()
	return run(t, testdata, a, false, patterns...)
}

func run(t *testing.T, testdata string, a *analysis.Analyzer, checkWants bool, patterns ...string) ([]analysis.Diagnostic, *token.FileSet) {
	t.Helper()
	ld := newLoader(filepath.Join(testdata, "src"))
	fps := make([]*fixturePkg, len(patterns))
	for i, pattern := range patterns {
		fp, err := ld.load(pattern)
		if err != nil {
			t.Fatalf("load fixture %s: %v", pattern, err)
		}
		fps[i] = fp
	}
	prog := ld.program()
	var all []analysis.Diagnostic
	for i, pattern := range patterns {
		fp := fps[i]
		var got []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      ld.fset,
			Files:     fp.files,
			Pkg:       fp.pkg,
			TypesInfo: fp.info,
			Program:   prog,
			Report:    func(d analysis.Diagnostic) { got = append(got, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer error: %v", pattern, err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
		if checkWants {
			check(t, ld.fset, fp, got)
		}
		all = append(all, got...)
	}
	return all, ld.fset
}

// Program loads the fixture packages named by patterns (plus their fixture
// dependencies) and returns the call graph over all of them, for tests
// that assert on the graph's shape directly.
func Program(t *testing.T, testdata string, patterns ...string) (*callgraph.Program, *token.FileSet) {
	t.Helper()
	ld := newLoader(filepath.Join(testdata, "src"))
	for _, pattern := range patterns {
		if _, err := ld.load(pattern); err != nil {
			t.Fatalf("load fixture %s: %v", pattern, err)
		}
	}
	return ld.program(), ld.fset
}

// program builds the call graph over every fixture loaded so far, in
// deterministic (sorted import path) unit order.
func (ld *loader) program() *callgraph.Program {
	paths := make([]string, 0, len(ld.fixtures))
	for p := range ld.fixtures {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	units := make([]*callgraph.Unit, 0, len(paths))
	for _, p := range paths {
		fp := ld.fixtures[p]
		units = append(units, &callgraph.Unit{Fset: ld.fset, Files: fp.files, Pkg: fp.pkg, Info: fp.info})
	}
	return callgraph.Build(ld.fset, units)
}

// want is one expectation parsed from a // want comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// check compares diagnostics against the fixture's want comments.
func check(t *testing.T, fset *token.FileSet, fp *fixturePkg, got []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range fp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range wantRe.FindAllString(c.Text[idx+len("want "):], -1) {
					var pat string
					if lit[0] == '`' {
						pat = lit[1 : len(lit)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range got {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// fixturePkg is one type-checked fixture package.
type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves fixture import paths from the src tree and everything
// else from gc export data.
type loader struct {
	src      string
	fset     *token.FileSet
	fixtures map[string]*fixturePkg
	exports  map[string]string // stdlib path -> export file
	gc       types.Importer
}

func newLoader(src string) *loader {
	ld := &loader{
		src:      src,
		fset:     token.NewFileSet(),
		fixtures: map[string]*fixturePkg{},
		exports:  map[string]string{},
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", ld.lookup)
	return ld
}

// Import implements types.Importer over the fixture tree + stdlib.
func (ld *loader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(ld.src, path)); err == nil && fi.IsDir() {
		fp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return ld.gc.Import(path)
}

// load parses and type-checks the fixture package at src/path.
func (ld *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := ld.fixtures[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(ld.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	fp := &fixturePkg{pkg: pkg, files: files, info: info}
	ld.fixtures[path] = fp
	return fp, nil
}

// lookup feeds the gc importer export data for standard-library packages,
// locating it (and its whole dependency closure, to amortize the exec)
// with `go list -export -deps` on first miss.
func (ld *loader) lookup(path string) (io.ReadCloser, error) {
	if exp, ok := ld.exports[path]; ok {
		return os.Open(exp)
	}
	cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json=ImportPath,Export", path)
	cmd.Dir = ld.src
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp struct{ ImportPath, Export string }
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if lp.Export != "" {
			ld.exports[lp.ImportPath] = lp.Export
		}
	}
	exp, ok := ld.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(exp)
}
