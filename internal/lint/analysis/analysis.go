// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics, optionally
// carrying mechanical SuggestedFixes. The repo's analyzers are written
// against this surface so they read like stock go/analysis checkers, but
// the module stays dependency-free — the container build has no module
// proxy, so x/tools itself cannot be vendored in.
//
// The deliberate omissions from the real API: no Facts (no analyzer here
// needs cross-package state — each one either inspects a single package or
// keys off annotations in the package it inspects), no ResultOf chaining,
// and no requirement machinery. If the repo ever vendors x/tools, the
// analyzers port by swapping this import and deleting nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"muzzle/internal/lint/callgraph"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the analyzer's command-line and diagnostic tag, a valid
	// identifier ("cachekey", "guardedby", ...).
	Name string
	// Doc is the help text: first line summary, then detail.
	Doc string
	// Run inspects one package via pass and reports findings through
	// pass.Report / pass.Reportf. A returned error aborts the whole lint
	// run (reserved for analyzer bugs, not findings).
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Program is the whole-program call graph when the driver built one
	// (standalone muzzlelint, analysistest, TestRepoClean). Interprocedural
	// analyzers (allocflow, ctxflow, lockorder) degrade gracefully when it
	// is nil or partial — under `go vet -vettool` each unit is checked in
	// isolation, so only the current package's bodies are in the graph and
	// cross-package propagation is silently skipped.
	Program *callgraph.Program

	// Report receives each diagnostic. The driver sets it.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers whose
// invariant only binds production code (guardedby, hotpath, httperr,
// cachekey) skip such positions; faultscope deliberately includes them,
// because fault scopes are typed almost exclusively in tests.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos anchors the finding; End is optional (NoPos = point finding).
	Pos token.Pos
	End token.Pos
	// Message states the violated invariant, lowercase, no trailing period.
	Message string
	// SuggestedFixes are mechanical repairs, applied by muzzlelint -fix.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained repair: all edits must apply together.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces [Pos, End) with NewText. Pos == End inserts.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// WalkStack traverses every node under root in source order, calling fn
// with the node and its ancestor chain (outermost first, node itself
// excluded). Returning false skips the node's children. It is the
// stack-aware inspector several analyzers need (x/tools gets this from
// astutil/inspector; here it is a 20-line visitor).
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		if !fn(n, stack) {
			return
		}
		stack = append(stack, n)
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return c == n
			}
			visit(c)
			return false
		})
		stack = stack[:len(stack)-1]
	}
	visit(root)
}

// EnclosingFunc returns the innermost function literal or declaration in
// stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return stack[i]
		}
	}
	return nil
}

// Named unwraps pointers and aliases to the named type of t, or nil.
func Named(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// HasDirective reports whether the doc comment group contains a line whose
// first word (after "//") is exactly directive, e.g. "muzzle:hotpath".
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	_, ok := Directive(doc, directive)
	return ok
}

// Directive finds a doc comment line whose first word (after "//") is
// exactly directive and returns the rest of the line — the waiver reason
// for directives like "muzzle:allocok <reason>" — with found=true. A bare
// directive returns ("", true); callers that require a reason treat the
// empty argument as its own finding.
func Directive(doc *ast.CommentGroup, directive string) (arg string, found bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if a, ok := DirectiveComment(c, directive); ok {
			return a, true
		}
	}
	return "", false
}

// DirectiveComment matches a single comment against directive the way
// Directive matches doc lines. It exists for same-line waivers
// (`ctx := context.Background() //muzzle:ctx-background <reason>`), which
// live in ast.File.Comments rather than any declaration's doc group.
func DirectiveComment(c *ast.Comment, directive string) (arg string, found bool) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if text == directive {
		return "", true
	}
	if rest, ok := strings.CutPrefix(text, directive+" "); ok {
		return strings.TrimSpace(rest), true
	}
	return "", false
}
