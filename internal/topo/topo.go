// Package topo models the interconnection topology of a multi-trap QCCD
// machine: traps are nodes, shuttle paths are edges (paper Fig. 1, Fig. 7).
//
// The paper evaluates on the "L6" topology — six traps in a line — from
// Murali et al. (ISCA 2020); that work also studies rings and grids, so this
// package provides all three families plus shortest-path queries used by the
// re-balancing logic (Algorithm 2 needs "shortest distance between
// source trap and candidate destination trap on trap topology").
package topo

import (
	"fmt"
	"sort"
)

// Topology is an undirected graph over traps 0..N-1. It is immutable after
// construction; all queries are precomputed.
type Topology struct {
	name  string
	n     int
	adj   [][]int
	dist  [][]int   // all-pairs hop distances
	nextH [][]int   // nextH[s][d] = neighbor of s on a shortest s->d path
	paths [][][]int // paths[s][d] = full trap sequence s..d (shared, immutable)
}

// New builds a topology from an edge list. Edges are undirected; duplicates
// and self-loops are rejected. The graph must be connected.
func New(name string, n int, edges [][2]int) (*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topo: non-positive trap count %d", n)
	}
	t := &Topology{name: name, n: n, adj: make([][]int, n)}
	seen := map[[2]int]bool{}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("topo %q: edge (%d,%d) out of range for %d traps", name, a, b, n)
		}
		if a == b {
			return nil, fmt.Errorf("topo %q: self-loop at trap %d", name, a)
		}
		key := [2]int{min(a, b), max(a, b)}
		if seen[key] {
			return nil, fmt.Errorf("topo %q: duplicate edge (%d,%d)", name, a, b)
		}
		seen[key] = true
		t.adj[a] = append(t.adj[a], b)
		t.adj[b] = append(t.adj[b], a)
	}
	for i := range t.adj {
		sort.Ints(t.adj[i])
	}
	if err := t.computePaths(); err != nil {
		return nil, err
	}
	return t, nil
}

// computePaths runs BFS from every trap, filling dist and nextH.
func (t *Topology) computePaths() error {
	t.dist = make([][]int, t.n)
	t.nextH = make([][]int, t.n)
	for s := 0; s < t.n; s++ {
		dist := make([]int, t.n)
		next := make([]int, t.n)
		for i := range dist {
			dist[i] = -1
			next[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		parent := make([]int, t.n)
		for i := range parent {
			parent[i] = -1
		}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range t.adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		for d := 0; d < t.n; d++ {
			if dist[d] < 0 {
				return fmt.Errorf("topo %q: trap %d unreachable from trap %d", t.name, d, s)
			}
			if d == s {
				continue
			}
			// Walk back from d to the neighbor of s.
			v := d
			for parent[v] != s {
				v = parent[v]
			}
			next[d] = v
		}
		t.dist[s] = dist
		t.nextH[s] = next
	}
	// Precompute every shortest path once so Path is an O(1), allocation-free
	// table lookup: the routing and re-balancing hot paths query paths per
	// hop, and materializing them per call dominated their allocation
	// profile. Each path is laid out in one shared backing array per source.
	t.paths = make([][][]int, t.n)
	for s := 0; s < t.n; s++ {
		total := 0
		for d := 0; d < t.n; d++ {
			total += t.dist[s][d] + 1
		}
		buf := make([]int, 0, total)
		t.paths[s] = make([][]int, t.n)
		for d := 0; d < t.n; d++ {
			start := len(buf)
			buf = append(buf, s)
			for v := s; v != d; {
				v = t.nextH[v][d]
				buf = append(buf, v)
			}
			t.paths[s][d] = buf[start:len(buf):len(buf)]
		}
	}
	return nil
}

// Name returns the topology's name (e.g. "L6").
func (t *Topology) Name() string { return t.name }

// NumTraps returns the number of traps.
func (t *Topology) NumTraps() int { return t.n }

// Neighbors returns the traps adjacent to trap i (sorted ascending). The
// returned slice must not be modified.
func (t *Topology) Neighbors(i int) []int { return t.adj[i] }

// Distance returns the hop distance between traps a and b.
func (t *Topology) Distance(a, b int) int { return t.dist[a][b] }

// NextHop returns the neighbor of src on a shortest path toward dst, or -1
// if src == dst. When several shortest paths exist, the lowest-numbered
// neighbor discovered by BFS is returned deterministically.
//
//muzzle:hotpath
func (t *Topology) NextHop(src, dst int) int {
	if src == dst {
		return -1
	}
	return t.nextH[src][dst]
}

// Path returns the trap sequence from src to dst inclusive along a shortest
// path. The path is precomputed at construction time, so the call is O(1)
// and allocation-free; the returned slice is shared and must not be
// modified.
//
//muzzle:hotpath
func (t *Topology) Path(src, dst int) []int {
	return t.paths[src][dst]
}

// Diameter returns the maximum shortest-path distance over all trap pairs.
func (t *Topology) Diameter() int {
	d := 0
	for a := 0; a < t.n; a++ {
		for b := 0; b < t.n; b++ {
			if t.dist[a][b] > d {
				d = t.dist[a][b]
			}
		}
	}
	return d
}

// MinRingTraps is the smallest valid ring: below 3 traps a cycle
// degenerates into a duplicate edge (n=2) or a self-loop (n=1).
const MinRingTraps = 3

// NewLinear returns the L-n topology: n traps in a line, as in the paper's
// L6 hardware model (Section IV-A). A line needs at least one trap.
func NewLinear(n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: line needs at least 1 trap, got %d", n)
	}
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return New(fmt.Sprintf("L%d", n), n, edges)
}

// NewRing returns n traps in a cycle; n must be at least MinRingTraps.
func NewRing(n int) (*Topology, error) {
	if n < MinRingTraps {
		return nil, fmt.Errorf("topo: ring needs at least %d traps, got %d", MinRingTraps, n)
	}
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return New(fmt.Sprintf("R%d", n), n, edges)
}

// NewGrid returns a rows x cols mesh of traps, numbered row-major. Both
// dimensions must be positive.
func NewGrid(rows, cols int) (*Topology, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("topo: grid dimensions %dx%d must be positive", rows, cols)
	}
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return New(fmt.Sprintf("G%dx%d", rows, cols), rows*cols, edges)
}

// Linear is NewLinear for hard-coded setups (the paper's L6); it panics on
// invalid input. User-supplied parameters must go through NewLinear.
func Linear(n int) *Topology {
	t, err := NewLinear(n)
	if err != nil {
		panic(err)
	}
	return t
}

// Ring is NewRing for hard-coded setups; it panics on invalid input.
// User-supplied parameters must go through NewRing.
func Ring(n int) *Topology {
	t, err := NewRing(n)
	if err != nil {
		panic(err)
	}
	return t
}

// Grid is NewGrid for hard-coded setups; it panics on invalid input.
// User-supplied parameters must go through NewGrid.
func Grid(rows, cols int) *Topology {
	t, err := NewGrid(rows, cols)
	if err != nil {
		panic(err)
	}
	return t
}
