package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearL6(t *testing.T) {
	l6 := Linear(6)
	if l6.Name() != "L6" {
		t.Errorf("name = %q", l6.Name())
	}
	if l6.NumTraps() != 6 {
		t.Errorf("traps = %d", l6.NumTraps())
	}
	// Fig. 7's claim: T4 -> T0 is 4 shuttles, T4 -> T3 and T4 -> T5 are 1.
	if d := l6.Distance(4, 0); d != 4 {
		t.Errorf("dist(4,0) = %d, want 4", d)
	}
	if d := l6.Distance(4, 3); d != 1 {
		t.Errorf("dist(4,3) = %d, want 1", d)
	}
	if d := l6.Distance(4, 5); d != 1 {
		t.Errorf("dist(4,5) = %d, want 1", d)
	}
	if l6.Diameter() != 5 {
		t.Errorf("diameter = %d, want 5", l6.Diameter())
	}
}

func TestLinearPath(t *testing.T) {
	l6 := Linear(6)
	path := l6.Path(1, 4)
	want := []int{1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if p := l6.Path(3, 3); len(p) != 1 || p[0] != 3 {
		t.Errorf("self path = %v", p)
	}
}

func TestNextHop(t *testing.T) {
	l6 := Linear(6)
	if h := l6.NextHop(0, 5); h != 1 {
		t.Errorf("NextHop(0,5) = %d", h)
	}
	if h := l6.NextHop(5, 0); h != 4 {
		t.Errorf("NextHop(5,0) = %d", h)
	}
	if h := l6.NextHop(2, 2); h != -1 {
		t.Errorf("NextHop(2,2) = %d, want -1", h)
	}
}

func TestNeighbors(t *testing.T) {
	l6 := Linear(6)
	n0 := l6.Neighbors(0)
	if len(n0) != 1 || n0[0] != 1 {
		t.Errorf("Neighbors(0) = %v", n0)
	}
	n3 := l6.Neighbors(3)
	if len(n3) != 2 || n3[0] != 2 || n3[1] != 4 {
		t.Errorf("Neighbors(3) = %v", n3)
	}
}

func TestRing(t *testing.T) {
	r := Ring(6)
	if r.Distance(0, 3) != 3 {
		t.Errorf("ring dist(0,3) = %d", r.Distance(0, 3))
	}
	if r.Distance(0, 5) != 1 {
		t.Errorf("ring dist(0,5) = %d", r.Distance(0, 5))
	}
	if r.Diameter() != 3 {
		t.Errorf("ring diameter = %d", r.Diameter())
	}
}

func TestRingTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ring(2) should panic")
		}
	}()
	Ring(2)
}

func TestGrid(t *testing.T) {
	g := Grid(2, 3)
	if g.NumTraps() != 6 {
		t.Errorf("traps = %d", g.NumTraps())
	}
	// trap layout: 0 1 2 / 3 4 5
	if g.Distance(0, 5) != 3 {
		t.Errorf("grid dist(0,5) = %d", g.Distance(0, 5))
	}
	if g.Distance(0, 4) != 2 {
		t.Errorf("grid dist(0,4) = %d", g.Distance(0, 4))
	}
	if len(g.Neighbors(4)) != 3 {
		t.Errorf("grid Neighbors(4) = %v", g.Neighbors(4))
	}
}

func TestGridBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Grid(0,3) should panic")
		}
	}()
	Grid(0, 3)
}

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", 0, nil); err == nil {
		t.Error("zero traps accepted")
	}
	if _, err := New("bad", 3, [][2]int{{0, 3}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := New("bad", 3, [][2]int{{1, 1}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := New("bad", 3, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Error("duplicate edge accepted")
	}
	if _, err := New("bad", 3, [][2]int{{0, 1}}); err == nil {
		t.Error("disconnected graph accepted")
	}
	if _, err := New("ok", 1, nil); err != nil {
		t.Errorf("single-trap topology rejected: %v", err)
	}
}

// Property: Path length equals Distance+1, consecutive path entries are
// adjacent, and distance is a metric (symmetric, triangle inequality).
func TestQuickPathConsistency(t *testing.T) {
	tops := []*Topology{Linear(6), Ring(8), Grid(3, 4), Linear(2)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := tops[rng.Intn(len(tops))]
		n := tp.NumTraps()
		a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		if tp.Distance(a, b) != tp.Distance(b, a) {
			return false
		}
		if tp.Distance(a, b) > tp.Distance(a, c)+tp.Distance(c, b) {
			return false
		}
		path := tp.Path(a, b)
		if len(path) != tp.Distance(a, b)+1 {
			return false
		}
		for i := 0; i+1 < len(path); i++ {
			adjacent := false
			for _, nb := range tp.Neighbors(path[i]) {
				if nb == path[i+1] {
					adjacent = true
				}
			}
			if !adjacent {
				return false
			}
		}
		return path[0] == a && path[len(path)-1] == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: NextHop strictly decreases distance to the destination.
func TestQuickNextHopProgress(t *testing.T) {
	tops := []*Topology{Linear(6), Ring(7), Grid(4, 4)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := tops[rng.Intn(len(tops))]
		n := tp.NumTraps()
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			return tp.NextHop(a, b) == -1
		}
		h := tp.NextHop(a, b)
		return tp.Distance(h, b) == tp.Distance(a, b)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The error-returning constructors must reject every boundary violation
// that the panicking wrappers would die on: user-supplied parameters
// (sweep grids, daemon requests) flow through these, so a bad value must
// surface as an error, never a crash.
func TestValidatedConstructors(t *testing.T) {
	bad := []struct {
		name string
		f    func() (*Topology, error)
	}{
		{"line 0", func() (*Topology, error) { return NewLinear(0) }},
		{"line -3", func() (*Topology, error) { return NewLinear(-3) }},
		{"ring 2", func() (*Topology, error) { return NewRing(2) }},
		{"ring 0", func() (*Topology, error) { return NewRing(0) }},
		{"grid 0x3", func() (*Topology, error) { return NewGrid(0, 3) }},
		{"grid 3x-1", func() (*Topology, error) { return NewGrid(3, -1) }},
		{"custom disconnected", func() (*Topology, error) {
			return New("disc", 4, [][2]int{{0, 1}, {2, 3}})
		}},
		{"custom self-loop", func() (*Topology, error) {
			return New("loop", 2, [][2]int{{1, 1}})
		}},
		{"custom duplicate edge", func() (*Topology, error) {
			return New("dup", 2, [][2]int{{0, 1}, {1, 0}})
		}},
		{"custom edge out of range", func() (*Topology, error) {
			return New("oob", 2, [][2]int{{0, 5}})
		}},
		{"custom isolated trap", func() (*Topology, error) {
			return New("iso", 3, [][2]int{{0, 1}})
		}},
	}
	for _, tc := range bad {
		if tp, err := tc.f(); err == nil {
			t.Errorf("%s: expected error, got topology %q", tc.name, tp.Name())
		}
	}

	good := []struct {
		name  string
		f     func() (*Topology, error)
		traps int
	}{
		{"line 1", func() (*Topology, error) { return NewLinear(1) }, 1},
		{"line 6", func() (*Topology, error) { return NewLinear(6) }, 6},
		{"ring 3", func() (*Topology, error) { return NewRing(MinRingTraps) }, 3},
		{"grid 1x1", func() (*Topology, error) { return NewGrid(1, 1) }, 1},
		{"grid 2x3", func() (*Topology, error) { return NewGrid(2, 3) }, 6},
	}
	for _, tc := range good {
		tp, err := tc.f()
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if tp.NumTraps() != tc.traps {
			t.Errorf("%s: traps = %d, want %d", tc.name, tp.NumTraps(), tc.traps)
		}
	}
}

// The panicking wrappers must agree with their validated counterparts.
func TestWrapperPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Ring(2)", func() { Ring(2) })
	mustPanic("Grid(0,3)", func() { Grid(0, 3) })
	mustPanic("Linear(0)", func() { Linear(0) })
}
