package registry

import (
	"strings"
	"testing"

	"muzzle/internal/compiler"
	"muzzle/internal/core"
)

func TestPreRegisteredPair(t *testing.T) {
	for _, name := range []string{Baseline, Optimized} {
		f, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if f() == nil {
			t.Fatalf("factory %q returned nil compiler", name)
		}
		if !Has(name) {
			t.Errorf("Has(%q) = false", name)
		}
	}
}

func TestRegisterErrors(t *testing.T) {
	if err := Register("", func() *compiler.Compiler { return core.New() }); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register("nil-factory", nil); err == nil {
		t.Error("nil factory accepted")
	}
	if err := Register(Baseline, func() *compiler.Compiler { return core.New() }); err == nil {
		t.Error("duplicate of pre-registered name accepted")
	}
	if err := Register("registry-test-dup", func() *compiler.Compiler { return core.New() }); err != nil {
		t.Fatal(err)
	}
	if err := Register("registry-test-dup", func() *compiler.Compiler { return core.New() }); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := Lookup("no-such-compiler")
	if err == nil {
		t.Fatal("unknown name resolved")
	}
	if !strings.Contains(err.Error(), "no-such-compiler") {
		t.Errorf("error does not name the missing compiler: %v", err)
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted/unique: %v", names)
		}
	}
	found := 0
	for _, n := range names {
		if n == Baseline || n == Optimized {
			found++
		}
	}
	if found != 2 {
		t.Errorf("pre-registered pair missing from %v", names)
	}
}
