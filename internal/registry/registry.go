// Package registry is the process-wide compiler registry: a named factory
// table the evaluation harness resolves compilers from. The two compilers
// of the paper's evaluation — the QCCDSim-style baseline of Murali et al.
// (ISCA 2020) and the paper's optimized compiler — are pre-registered under
// the names "baseline" and "optimized"; callers add further variants (policy
// sweeps, ablations, third-party compilers) with Register and every
// registered name becomes usable in an evaluation run without touching the
// harness.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"muzzle/internal/baseline"
	"muzzle/internal/compiler"
	"muzzle/internal/core"
)

// Sentinel causes, matchable with errors.Is.
var (
	// ErrDuplicate marks a registration under a name already taken.
	ErrDuplicate = errors.New("compiler already registered")
	// ErrUnknown marks a lookup of an unregistered name.
	ErrUnknown = errors.New("unknown compiler")
	// ErrInvalid marks an empty name or nil factory.
	ErrInvalid = errors.New("invalid registration")
)

// Baseline and Optimized are the names of the pre-registered compilers.
const (
	Baseline  = "baseline"
	Optimized = "optimized"
)

// Factory builds a fresh compiler instance. Evaluation runs call the
// factory once per compilation, so factories must be safe for concurrent
// use but the compilers they return need not be.
type Factory func() *compiler.Compiler

var (
	mu        sync.RWMutex
	factories = map[string]Factory{
		Baseline:  func() *compiler.Compiler { return baseline.New() },
		Optimized: func() *compiler.Compiler { return core.New() },
	}
)

// Register adds a named compiler factory. It fails on an empty name, a nil
// factory, or a name already taken (including the pre-registered pair).
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("registry: %w: name must not be empty", ErrInvalid)
	}
	if f == nil {
		return fmt.Errorf("registry: %w: compiler %q: factory must not be nil", ErrInvalid, name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := factories[name]; ok {
		return fmt.Errorf("registry: %w: %q", ErrDuplicate, name)
	}
	factories[name] = f
	return nil
}

// Lookup resolves a registered compiler factory by name.
func Lookup(name string) (Factory, error) {
	mu.RLock()
	defer mu.RUnlock()
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("registry: %w: %q (registered: %v)", ErrUnknown, name, namesLocked())
	}
	return f, nil
}

// Has reports whether name is registered.
func Has(name string) bool {
	mu.RLock()
	defer mu.RUnlock()
	_, ok := factories[name]
	return ok
}

// Names returns the registered compiler names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
