// Package dag builds the gate dependency graph of a quantum program
// (paper Section II-A, Fig. 2).
//
// The graph is a layered DAG: a gate depends on the most recent earlier gate
// touching each of its qubits; its layer is one past the deepest such
// predecessor. Gates within a layer commute with respect to scheduling (they
// act on disjoint qubits), so any order that respects the edges is a valid
// execution order. Barriers participate as dependency points spanning their
// qubits but are not physical operations.
package dag

import (
	"fmt"

	"muzzle/internal/circuit"
)

// Graph is the dependency graph over the gates of one circuit. Gate indices
// refer to positions in the source circuit's Gates slice.
type Graph struct {
	circ   *circuit.Circuit
	preds  [][]int
	succs  [][]int
	layer  []int
	layers [][]int
}

// Build constructs the dependency graph for c.
//
// The builder is allocation-lean by design: dependency-graph construction
// runs once per compile and used to dominate the compile path's allocation
// profile (a dedupe map per gate plus per-edge appends). Edges are instead
// deduped with a small scan over each gate's operand list (gates have 1-3
// operands outside barriers) and stored in flat arenas sized exactly from a
// counting pass, so Build performs O(1) allocations regardless of circuit
// size while producing byte-identical preds/succs/layers.
//
//muzzle:hotpath
func Build(c *circuit.Circuit) *Graph {
	n := len(c.Gates)
	g := &Graph{
		circ:  c,
		preds: make([][]int, n),
		succs: make([][]int, n),
		layer: make([]int, n),
	}
	last := make([]int, c.NumQubits) // last gate index touching each qubit
	for i := range last {
		last[i] = -1
	}

	// Pass 1: per-gate distinct predecessors (dedupe via operand scan),
	// layers, and edge counts for the succs arena.
	totalEdges := 0
	for _, gate := range c.Gates {
		totalEdges += len(gate.Qubits)
	}
	predBuf := make([]int, 0, totalEdges)
	succCnt := make([]int, n)
	maxLayer := -1
	for i, gate := range c.Gates {
		l := 0
		start := len(predBuf)
		for _, q := range gate.Qubits {
			p := last[q]
			if p < 0 {
				continue
			}
			dup := false
			for _, prev := range predBuf[start:] {
				if prev == p {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			predBuf = append(predBuf, p)
			succCnt[p]++
			if g.layer[p]+1 > l {
				l = g.layer[p] + 1
			}
		}
		g.preds[i] = predBuf[start:len(predBuf):len(predBuf)]
		g.layer[i] = l
		if l > maxLayer {
			maxLayer = l
		}
		for _, q := range gate.Qubits {
			last[q] = i
		}
	}

	// Pass 2: successors, in ascending gate order, carved from one arena.
	succBuf := make([]int, len(predBuf))
	off := 0
	for p := 0; p < n; p++ {
		g.succs[p] = succBuf[off : off : off+succCnt[p]]
		off += succCnt[p]
	}
	for i := 0; i < n; i++ {
		for _, p := range g.preds[i] {
			g.succs[p] = append(g.succs[p], i)
		}
	}

	// Layer buckets, in ascending gate order, carved from one arena.
	layerCnt := make([]int, maxLayer+1)
	for _, l := range g.layer {
		layerCnt[l]++
	}
	layerBuf := make([]int, n)
	g.layers = make([][]int, maxLayer+1)
	off = 0
	for l := range g.layers {
		g.layers[l] = layerBuf[off : off : off+layerCnt[l]]
		off += layerCnt[l]
	}
	for i := 0; i < n; i++ {
		l := g.layer[i]
		g.layers[l] = append(g.layers[l], i)
	}
	return g
}

// Circuit returns the circuit the graph was built from.
func (g *Graph) Circuit() *circuit.Circuit { return g.circ }

// NumGates returns the number of gates (nodes).
func (g *Graph) NumGates() int { return len(g.layer) }

// Layer returns the layer index of gate i.
func (g *Graph) Layer(i int) int { return g.layer[i] }

// NumLayers returns the number of layers.
func (g *Graph) NumLayers() int { return len(g.layers) }

// LayerGates returns the gate indices in layer l, in program order. The
// returned slice must not be modified.
func (g *Graph) LayerGates(l int) []int { return g.layers[l] }

// Preds returns the direct predecessors of gate i. The returned slice must
// not be modified.
func (g *Graph) Preds(i int) []int { return g.preds[i] }

// Succs returns the direct successors of gate i. The returned slice must not
// be modified.
func (g *Graph) Succs(i int) []int { return g.succs[i] }

// TopoOrder returns a valid execution order using Kahn's algorithm with a
// lowest-index-first tie break; this realises the paper's
// earliest-ready-gate-first heuristic and, by construction, equals program
// order (program order is itself topological for this graph class).
func (g *Graph) TopoOrder() []int {
	n := g.NumGates()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.preds[i])
	}
	// Min-index ready queue; a simple ordered scan is fine because indices
	// only ever become ready in increasing program positions.
	order := make([]int, 0, n)
	ready := make([]bool, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready[i] = true
		}
	}
	for len(order) < n {
		picked := -1
		for i := 0; i < n; i++ {
			if ready[i] {
				picked = i
				break
			}
		}
		if picked < 0 {
			panic("dag: cycle in dependency graph (impossible for straight-line programs)")
		}
		ready[picked] = false
		order = append(order, picked)
		for _, s := range g.succs[picked] {
			indeg[s]--
			if indeg[s] == 0 {
				ready[s] = true
			}
		}
	}
	return order
}

// ValidOrder reports whether order is a permutation of all gates that
// respects every dependency edge.
func (g *Graph) ValidOrder(order []int) error {
	n := g.NumGates()
	if len(order) != n {
		return fmt.Errorf("dag: order has %d entries, graph has %d gates", len(order), n)
	}
	pos := make([]int, n)
	seen := make([]bool, n)
	for p, idx := range order {
		if idx < 0 || idx >= n {
			return fmt.Errorf("dag: order entry %d out of range", idx)
		}
		if seen[idx] {
			return fmt.Errorf("dag: gate %d appears twice in order", idx)
		}
		seen[idx] = true
		pos[idx] = p
	}
	for i := 0; i < n; i++ {
		for _, p := range g.preds[i] {
			if pos[p] > pos[i] {
				return fmt.Errorf("dag: gate %d scheduled before its predecessor %d", i, p)
			}
		}
	}
	return nil
}

// CanHoist reports whether gate idx can be executed before every gate in
// notYetExecuted that currently precedes it in the order — i.e. whether all
// of idx's predecessors have already executed. executed[i] must be true for
// gates already issued.
func (g *Graph) CanHoist(idx int, executed []bool) bool {
	for _, p := range g.preds[idx] {
		if !executed[p] {
			return false
		}
	}
	return true
}

// CriticalPathLength returns the number of layers, which equals the length
// of the longest dependency chain.
func (g *Graph) CriticalPathLength() int { return len(g.layers) }
