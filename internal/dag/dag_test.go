package dag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"muzzle/internal/circuit"
)

// fig2Circuit is the 9-gate sample program of paper Fig. 2a.
func fig2Circuit() *circuit.Circuit {
	c := circuit.New("fig2", 6)
	c.Add2Q("ms", 0, 1) // g1
	c.Add2Q("ms", 2, 3) // g2
	c.Add2Q("ms", 2, 0) // g3
	c.Add2Q("ms", 4, 5) // g4
	c.Add2Q("ms", 0, 3) // g5
	c.Add2Q("ms", 2, 5) // g6
	c.Add2Q("ms", 4, 5) // g7
	c.Add2Q("ms", 0, 1) // g8
	c.Add2Q("ms", 2, 3) // g9
	return c
}

// TestFigure2Layers pins the layer assignment shown in paper Fig. 2b:
// L0 = {g1,g2,g4}, L1 = {g3}, L2 = {g5,g6}, L3 = {g7,g8,g9}.
func TestFigure2Layers(t *testing.T) {
	g := Build(fig2Circuit())
	wantLayer := []int{0, 0, 1, 0, 2, 2, 3, 3, 3} // gate index -> layer
	for i, want := range wantLayer {
		if got := g.Layer(i); got != want {
			t.Errorf("gate g%d: layer = %d, want %d", i+1, got, want)
		}
	}
	if g.NumLayers() != 4 {
		t.Errorf("NumLayers = %d, want 4", g.NumLayers())
	}
	l0 := g.LayerGates(0)
	if len(l0) != 3 || l0[0] != 0 || l0[1] != 1 || l0[2] != 3 {
		t.Errorf("layer 0 = %v, want [0 1 3]", l0)
	}
}

// TestFigure2Dependencies pins the edges discussed in Section II-A: g5 and
// g6 are independent of each other but both depend on g3.
func TestFigure2Dependencies(t *testing.T) {
	g := Build(fig2Circuit())
	const g3, g5, g6 = 2, 4, 5 // zero-based indices
	dependsOn := func(a, b int) bool {
		for _, p := range g.Preds(a) {
			if p == b {
				return true
			}
		}
		return false
	}
	if !dependsOn(g5, g3) {
		t.Error("g5 should depend on g3")
	}
	if !dependsOn(g6, g3) {
		t.Error("g6 should depend on g3")
	}
	if dependsOn(g6, g5) || dependsOn(g5, g6) {
		t.Error("g5 and g6 should be independent")
	}
}

// TestFigure2Order verifies the Fig. 2c order "g2 g1 g4 g3 g5 g6 g8 g9 g7"
// is accepted as a valid execution order.
func TestFigure2Order(t *testing.T) {
	g := Build(fig2Circuit())
	order := []int{1, 0, 3, 2, 4, 5, 7, 8, 6}
	if err := g.ValidOrder(order); err != nil {
		t.Errorf("paper order rejected: %v", err)
	}
}

func TestTopoOrderIsProgramOrder(t *testing.T) {
	g := Build(fig2Circuit())
	order := g.TopoOrder()
	for i, idx := range order {
		if idx != i {
			t.Fatalf("TopoOrder with min-index tie break should be program order, got %v", order)
		}
	}
}

func TestValidOrderRejections(t *testing.T) {
	g := Build(fig2Circuit())
	if err := g.ValidOrder([]int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	if err := g.ValidOrder([]int{0, 0, 1, 2, 3, 4, 5, 6, 7}); err == nil {
		t.Error("duplicate order accepted")
	}
	if err := g.ValidOrder([]int{2, 0, 1, 3, 4, 5, 6, 7, 8}); err == nil {
		t.Error("g3 before g1/g2 accepted")
	}
	if err := g.ValidOrder([]int{0, 1, 2, 3, 4, 5, 6, 7, 99}); err == nil {
		t.Error("out-of-range entry accepted")
	}
}

func TestBarrierCreatesDependency(t *testing.T) {
	c := circuit.New("b", 2)
	c.Add1Q("r", 0)
	c.MustAppend(circuit.Gate{Name: "barrier", Qubits: []int{0, 1}})
	c.Add1Q("r", 1)
	g := Build(c)
	if g.Layer(2) != 2 {
		t.Errorf("gate after barrier should be layer 2, got %d", g.Layer(2))
	}
}

func TestCanHoist(t *testing.T) {
	g := Build(fig2Circuit())
	executed := make([]bool, g.NumGates())
	// Nothing executed: only layer-0 gates can hoist.
	for i := 0; i < g.NumGates(); i++ {
		want := g.Layer(i) == 0
		if got := g.CanHoist(i, executed); got != want {
			t.Errorf("CanHoist(%d) with nothing executed = %v, want %v", i, got, want)
		}
	}
	// After g1, g2 execute, g3 becomes hoistable.
	executed[0], executed[1] = true, true
	if !g.CanHoist(2, executed) {
		t.Error("g3 should be hoistable after g1,g2")
	}
	if g.CanHoist(4, executed) {
		t.Error("g5 should not be hoistable before g3")
	}
}

func TestSingleQubitChains(t *testing.T) {
	c := circuit.New("chain", 1)
	for i := 0; i < 5; i++ {
		c.Add1Q("r", 0)
	}
	g := Build(c)
	if g.NumLayers() != 5 {
		t.Errorf("serial chain should have 5 layers, got %d", g.NumLayers())
	}
	for i := 0; i < 5; i++ {
		if g.Layer(i) != i {
			t.Errorf("gate %d layer = %d", i, g.Layer(i))
		}
	}
	if g.CriticalPathLength() != 5 {
		t.Errorf("critical path = %d", g.CriticalPathLength())
	}
}

func TestEmptyCircuit(t *testing.T) {
	g := Build(circuit.New("empty", 3))
	if g.NumGates() != 0 || g.NumLayers() != 0 {
		t.Fatalf("empty graph: %d gates, %d layers", g.NumGates(), g.NumLayers())
	}
	if err := g.ValidOrder(nil); err != nil {
		t.Errorf("empty order: %v", err)
	}
	if len(g.TopoOrder()) != 0 {
		t.Error("TopoOrder of empty graph should be empty")
	}
}

func randomCircuit(rng *rand.Rand) *circuit.Circuit {
	n := 3 + rng.Intn(10)
	c := circuit.New("rand", n)
	for i := 0; i < rng.Intn(80); i++ {
		if rng.Intn(3) == 0 {
			c.Add1Q("r", rng.Intn(n))
			continue
		}
		a, b := rng.Intn(n), rng.Intn(n)
		for b == a {
			b = rng.Intn(n)
		}
		c.Add2Q("ms", a, b)
	}
	return c
}

// Property: program order is always a valid topological order.
func TestQuickProgramOrderValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng)
		g := Build(c)
		order := make([]int, g.NumGates())
		for i := range order {
			order[i] = i
		}
		return g.ValidOrder(order) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: layers partition the gates, layer(pred) < layer(gate), and two
// gates in the same layer never share a qubit.
func TestQuickLayerInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng)
		g := Build(c)
		total := 0
		for l := 0; l < g.NumLayers(); l++ {
			gates := g.LayerGates(l)
			total += len(gates)
			occupied := map[int]bool{}
			for _, idx := range gates {
				if g.Layer(idx) != l {
					return false
				}
				for _, q := range c.Gates[idx].Qubits {
					if occupied[q] {
						return false // same-layer qubit conflict
					}
					occupied[q] = true
				}
			}
		}
		if total != g.NumGates() {
			return false
		}
		for i := 0; i < g.NumGates(); i++ {
			for _, p := range g.Preds(i) {
				if g.Layer(p) >= g.Layer(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: TopoOrder is always valid and succ/pred are mirror relations.
func TestQuickTopoAndMirror(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng)
		g := Build(c)
		if g.ValidOrder(g.TopoOrder()) != nil {
			return false
		}
		for i := 0; i < g.NumGates(); i++ {
			for _, s := range g.Succs(i) {
				found := false
				for _, p := range g.Preds(s) {
					if p == i {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
