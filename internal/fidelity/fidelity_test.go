package fidelity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	p := DefaultParams()
	p.Gamma = -1
	if err := p.Validate(); err == nil {
		t.Error("negative Gamma accepted")
	}
	p = DefaultParams()
	p.MinGateFidelity = 0
	if err := p.Validate(); err == nil {
		t.Error("zero clamp accepted")
	}
	p = DefaultParams()
	p.MinGateFidelity = 1.5
	if err := p.Validate(); err == nil {
		t.Error("clamp >= 1 accepted")
	}
}

func TestAScaling(t *testing.T) {
	// Per-chain scaling variant (AFixedChainSize = 0): A(N) = A0 * N / ln N.
	p := DefaultParams()
	p.AFixedChainSize = 0
	if got, want := p.A(10), p.A0*10/math.Log(10); math.Abs(got-want) > 1e-18 {
		t.Errorf("A(10) = %g, want %g", got, want)
	}
	// Floor at N=2: A(0), A(1), A(2) all equal.
	if p.A(0) != p.A(2) || p.A(1) != p.A(2) {
		t.Error("A should floor chain size at 2")
	}
	// A grows with chain length for N >= 3 (N/ln N is increasing there).
	if p.A(20) <= p.A(10) {
		t.Error("A should grow with chain size")
	}
}

func TestAFixedCalibration(t *testing.T) {
	// Default (machine-level) calibration: A is the same for every chain
	// size and equals A evaluated at the calibration size.
	p := DefaultParams()
	if p.AFixedChainSize != 17 {
		t.Fatalf("default AFixedChainSize = %d, want 17 (paper trap capacity)", p.AFixedChainSize)
	}
	if p.A(2) != p.A(10) || p.A(10) != p.A(17) {
		t.Error("fixed calibration should ignore chain size")
	}
	free := p
	free.AFixedChainSize = 0
	if p.A(5) != free.A(17) {
		t.Error("fixed A should equal per-chain A at the calibration size")
	}
	bad := DefaultParams()
	bad.AFixedChainSize = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative AFixedChainSize accepted")
	}
}

func TestGateModelStructure(t *testing.T) {
	p := DefaultParams()
	// F = 1 - Γτ - A(2n̄+1): exact arithmetic for a cold, fast gate.
	tau, nbar, size := 100.0, 0.0, 5
	want := 1 - p.Gamma*tau - p.A(size)*(2*nbar+1)
	if got := p.Gate(tau, nbar, size); math.Abs(got-want) > 1e-15 {
		t.Errorf("Gate = %g, want %g", got, want)
	}
}

func TestGateMonotonicity(t *testing.T) {
	p := DefaultParams()
	// Hotter chain -> lower fidelity (Section II-B4).
	if p.Gate(100, 10, 5) >= p.Gate(100, 1, 5) {
		t.Error("fidelity should fall with n̄")
	}
	// Longer gate -> lower fidelity.
	if p.Gate(500, 1, 5) >= p.Gate(100, 1, 5) {
		t.Error("fidelity should fall with gate time")
	}
	// Longer chain -> lower fidelity under per-chain A scaling.
	pc := p
	pc.AFixedChainSize = 0
	if pc.Gate(100, 1, 15) >= pc.Gate(100, 1, 5) {
		t.Error("fidelity should fall with chain size")
	}
}

func TestGateClamps(t *testing.T) {
	p := DefaultParams()
	if got := p.Gate(1e12, 1e12, 17); got != p.MinGateFidelity {
		t.Errorf("pathological gate fidelity = %g, want clamp %g", got, p.MinGateFidelity)
	}
	zero := Params{Gamma: 0, A0: 0, MinGateFidelity: 1e-12}
	if got := zero.Gate(100, 5, 5); got != 1 {
		t.Errorf("error-free model should give F=1, got %g", got)
	}
}

func TestAccumulator(t *testing.T) {
	a, err := NewAccumulator(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.Fidelity() != 1 || a.LogFidelity() != 0 {
		t.Fatal("fresh accumulator should have fidelity 1")
	}
	f1 := a.Add(100, 0, 5)
	f2 := a.Add(100, 3, 7)
	if a.Gates() != 2 {
		t.Errorf("Gates = %d", a.Gates())
	}
	want := f1 * f2
	if got := a.Fidelity(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Fidelity = %g, want %g", got, want)
	}
	if a.MinGateFidelity() != math.Min(f1, f2) {
		t.Errorf("MinGateFidelity = %g", a.MinGateFidelity())
	}
}

func TestAccumulatorRejectsBadParams(t *testing.T) {
	p := DefaultParams()
	p.A0 = -1
	if _, err := NewAccumulator(p); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestImprovement(t *testing.T) {
	// logA = ln(2e-3), logB = ln(1e-3) -> 2X improvement.
	got := Improvement(math.Log(2e-3), math.Log(1e-3))
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("Improvement = %g, want 2", got)
	}
}

// Property: accumulator in log space matches direct product for moderate
// gate counts, and program fidelity is monotonically non-increasing.
func TestQuickAccumulatorProduct(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := NewAccumulator(p)
		if err != nil {
			return false
		}
		direct := 1.0
		prevLog := 0.0
		for i := 0; i < 50; i++ {
			tau := rng.Float64() * 500
			nbar := rng.Float64() * 20
			size := 2 + rng.Intn(16)
			g := a.Add(tau, nbar, size)
			direct *= g
			if g < p.MinGateFidelity || g > 1 {
				return false
			}
			if a.LogFidelity() > prevLog+1e-15 {
				return false // fidelity increased
			}
			prevLog = a.LogFidelity()
		}
		return math.Abs(a.Fidelity()-direct) <= 1e-9*direct+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: fewer shuttles (lower n̄) never hurts: for any gate, F is
// non-increasing in n̄ — the mechanism behind paper Fig. 8.
func TestQuickFidelityVsHeat(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tau := rng.Float64() * 300
		size := 2 + rng.Intn(16)
		n1 := rng.Float64() * 50
		n2 := n1 + rng.Float64()*50
		return p.Gate(tau, n2, size) <= p.Gate(tau, n1, size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
