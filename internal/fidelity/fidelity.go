// Package fidelity implements the analytical trapped-ion gate fidelity
// model of paper Section II-B3 (due to Murali et al., ISCA 2020):
//
//	F = 1 − Γτ − A(2n̄+1)
//
// where Γ is the trap heating (error) rate, τ the gate duration, n̄ the
// motional mode of the chain executing the gate, and A a scaling factor
// varying as #ions/log(#ions) in the chain. Program fidelity is the product
// of per-gate fidelities, accumulated in log space to avoid underflow on
// thousand-gate circuits.
package fidelity

import (
	"fmt"
	"math"
)

// Params are the fidelity-model constants; see DESIGN.md "Model constants"
// for the calibration discussion.
type Params struct {
	// Gamma is the error contribution per microsecond of gate time (the Γ
	// of the model).
	Gamma float64
	// A0 scales the motional-mode sensitivity: A(N) = A0 * N / ln(N).
	A0 float64
	// AFixedChainSize, when positive, evaluates A at this fixed N — a
	// machine-level calibration with N the trap capacity, matching how
	// QCCDSim embeds a calibrated constant. When zero, A tracks the size of
	// the chain executing each gate (the strict per-chain reading of the
	// paper's "#qubits/log(#qubits)"); that variant is exercised by the
	// ablation benchmarks.
	AFixedChainSize int
	// MinGateFidelity clamps a single gate's fidelity away from zero so
	// that log-space accumulation stays finite even for pathologically hot
	// chains.
	MinGateFidelity float64
}

// DefaultParams returns the constants used throughout the evaluation. The
// fixed A chain size of 17 is the paper's total trap capacity
// (Section IV-A).
func DefaultParams() Params {
	return Params{
		Gamma:           1e-6,
		A0:              1.3e-6,
		AFixedChainSize: 17,
		MinGateFidelity: 1e-12,
	}
}

// Validate rejects non-physical constants.
func (p Params) Validate() error {
	if p.Gamma < 0 || p.A0 < 0 {
		return fmt.Errorf("fidelity: negative rate in %+v", p)
	}
	if p.AFixedChainSize < 0 {
		return fmt.Errorf("fidelity: negative AFixedChainSize %d", p.AFixedChainSize)
	}
	if p.MinGateFidelity <= 0 || p.MinGateFidelity >= 1 {
		return fmt.Errorf("fidelity: MinGateFidelity %g outside (0,1)", p.MinGateFidelity)
	}
	return nil
}

// A returns the scaling factor A(N) = A0 * N / ln(N), with N floored at 2
// so the logarithm is well-defined (paper: "A is a scaling factor that
// varies as #qubits/log(#qubits)"). When AFixedChainSize is set, the
// supplied chain size is ignored in favor of the calibration size.
func (p Params) A(chainSize int) float64 {
	if p.AFixedChainSize > 0 {
		chainSize = p.AFixedChainSize
	}
	n := float64(chainSize)
	if n < 2 {
		n = 2
	}
	return p.A0 * n / math.Log(n)
}

// Gate returns the fidelity of one gate of duration tau (µs) executed on a
// chain of chainSize ions with motional mode nbar, clamped to
// [MinGateFidelity, 1].
func (p Params) Gate(tau, nbar float64, chainSize int) float64 {
	f := 1 - p.Gamma*tau - p.A(chainSize)*(2*nbar+1)
	if f < p.MinGateFidelity {
		return p.MinGateFidelity
	}
	if f > 1 {
		return 1
	}
	return f
}

// Accumulator multiplies gate fidelities in log space.
type Accumulator struct {
	params Params
	logF   float64
	gates  int
	minF   float64
}

// NewAccumulator returns an accumulator with program fidelity 1.
func NewAccumulator(params Params) (*Accumulator, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Accumulator{params: params, minF: 1}, nil
}

// Add folds in one gate execution and returns that gate's fidelity.
func (a *Accumulator) Add(tau, nbar float64, chainSize int) float64 {
	f := a.params.Gate(tau, nbar, chainSize)
	a.logF += math.Log(f)
	a.gates++
	if f < a.minF {
		a.minF = f
	}
	return f
}

// LogFidelity returns ln(program fidelity).
func (a *Accumulator) LogFidelity() float64 { return a.logF }

// Fidelity returns the program fidelity (may underflow to 0 for very large
// hot programs; use LogFidelity for comparisons).
func (a *Accumulator) Fidelity() float64 { return math.Exp(a.logF) }

// Gates returns the number of gates folded in.
func (a *Accumulator) Gates() int { return a.gates }

// MinGateFidelity returns the worst single-gate fidelity observed.
func (a *Accumulator) MinGateFidelity() float64 { return a.minF }

// Improvement returns the program-fidelity ratio exp(logA − logB) — the
// "X" factor of paper Fig. 8 when A is the optimized compiler and B the
// baseline.
func Improvement(logA, logB float64) float64 {
	return math.Exp(logA - logB)
}
