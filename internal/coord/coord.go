// Package coord is the distributed sweep coordinator: it fans the
// deterministic cell list of an expanded sweep grid out across N muzzled
// workers over HTTP (POST /v1/cells) and merges the results into exactly
// the artifacts a local run would produce.
//
// The design leans on three properties the rest of the repo already
// guarantees:
//
//   - Cells are a deterministic, indexed sharding unit (sweep.Expand): any
//     worker given the same normalized grid resolves index i to the same
//     coordinates, so dispatch carries only (grid, index) and workers stay
//     stateless.
//   - The content-addressed compile cache doubles as a shared blob store:
//     point every worker's -cache-dir at one shared directory and
//     overlapping cells across workers — including a cell re-dispatched
//     after a worker died mid-flight — cost one compile fleet-wide.
//   - The sweep.Dir manifest layout is the durable merge point: the
//     coordinator persists completed cells through the same atomic
//     tmp+fsync+rename path as a local run, so a distributed run directory
//     is resumable by — and byte-compatible with — cmd/muzzlesweep.
//
// Dispatch respects worker backpressure: a 429 from a worker's admission
// queue is honored with its Retry-After estimate plus jitter (and never
// counts against the cell's retry budget), while transport failures and
// 5xx responses mark the worker unhealthy, reassign the cell to another
// worker, and leave revival to the background health probe.
package coord

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"muzzle/internal/faults"
	"muzzle/internal/sweep"
)

// ErrNoWorkers is returned when no worker is healthy at the start of a run,
// or when every worker stays unhealthy past Config.NoWorkerTimeout while
// cells are still owed.
var ErrNoWorkers = errors.New("coord: no healthy workers")

// errRunComplete is the internal cancel cause that tears down the probe
// and slot goroutines after the last cell completed.
var errRunComplete = errors.New("coord: run complete")

// Config assembles a Coordinator.
type Config struct {
	// Workers are the muzzled base URLs ("http://host:8077"), at least one.
	Workers []string
	// Client issues all worker HTTP requests (default: a plain client;
	// per-request deadlines come from CellTimeout/ProbeTimeout).
	Client *http.Client
	// CellTimeout bounds one dispatch attempt of one cell (default 10m).
	// A worker that exceeds it is treated as failed for that attempt and
	// the cell is reassigned.
	CellTimeout time.Duration
	// MaxAttempts is the per-cell dispatch budget (default 3): failed
	// attempts — transport errors, 5xx, timeouts — beyond it record the
	// cell as failed in the report. 429 backpressure retries are free.
	MaxAttempts int
	// PerWorkerInFlight bounds concurrently dispatched cells per worker
	// (0 = the worker pool size advertised by its /healthz, min 1).
	PerWorkerInFlight int
	// ProbeInterval is the health re-probe cadence for unhealthy workers
	// (default 2s); ProbeTimeout bounds one probe (default 5s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// NoWorkerTimeout aborts a run that has had zero healthy workers for
	// this long while cells are still owed (default 60s).
	NoWorkerTimeout time.Duration
	// Backoff shapes the jittered 429 retry delays.
	Backoff Backoff
	// BreakerThreshold is the per-worker circuit breaker: after this many
	// consecutive dispatch failures the worker's circuit opens and its
	// slots stop pulling cells — even if its /healthz still answers —
	// until BreakerCooldown elapses and a half-open trial dispatch
	// succeeds (default 3; negative disables). The breaker sits under the
	// retry/reassign logic: failures still reassign the cell, the breaker
	// just keeps a flaky worker from burning attempt budgets.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit waits before admitting
	// the half-open trial dispatch (default 5s).
	BreakerCooldown time.Duration
	// FaultScope, when non-empty, wraps the worker client's transport
	// with the process-global fault injector (internal/faults) under this
	// scope — the chaos tests' hook for latency, connection resets, and
	// injected 5xx. Empty in production.
	FaultScope string
	// DirFaultScope, when non-empty, subjects RunDir's artifact writes to
	// the fault injector under this scope. Tests only.
	DirFaultScope string
	// Verify asks workers to run the independent schedule verifier on
	// every cell.
	Verify bool
	// OnCell, when non-nil, receives each finished cell's report in
	// completion order; it is never invoked concurrently with itself.
	OnCell func(sweep.CellReport)
	// Logf, when non-nil, receives dispatch diagnostics (reassignments,
	// backoff waits, worker state changes).
	Logf func(format string, args ...any)
}

// withDefaults materializes the config's default knobs.
func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.CellTimeout <= 0 {
		c.CellTimeout = 10 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 5 * time.Second
	}
	if c.NoWorkerTimeout <= 0 {
		c.NoWorkerTimeout = time.Minute
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.FaultScope != "" {
		// Wrap a copy: the caller's client must not see injected faults.
		cl := *c.Client
		cl.Transport = faults.RoundTripper(c.FaultScope, cl.Transport)
		c.Client = &cl
	}
	return c
}

// Coordinator shards sweep cells across a fixed worker fleet. Counters are
// cumulative across runs; the zero value is not usable — construct with
// New.
type Coordinator struct {
	cfg     Config
	workers []*worker
	met     counters
}

// New validates the worker list and returns a coordinator. Workers are not
// probed here — Run probes before dispatching.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("coord: need at least one worker URL")
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{cfg: cfg}
	seen := make(map[string]bool, len(cfg.Workers))
	for _, u := range cfg.Workers {
		w, err := newWorker(u, cfg.Client)
		if err != nil {
			return nil, err
		}
		if seen[w.url] {
			return nil, fmt.Errorf("coord: worker %s listed twice", w.url)
		}
		seen[w.url] = true
		c.workers = append(c.workers, w)
	}
	return c, nil
}

// task is one cell awaiting dispatch; attempts counts failed dispatches
// (not 429 backpressure waits).
type task struct {
	idx      int
	attempts int
}

// Run executes the grid across the fleet without persistence and returns
// the aggregated report — the in-memory analogue of sweep.Run.
func (c *Coordinator) Run(ctx context.Context, g sweep.Grid) (*sweep.Report, error) {
	e, err := sweep.Expand(g)
	if err != nil {
		return nil, err
	}
	return c.run(ctx, e, nil)
}

// RunDir executes the grid across the fleet with the resumable sweep.Dir
// manifest layout: completed cells land under dir/cells/ exactly as a
// local muzzlesweep run would write them, and a directory started by
// either side can be finished by the other.
func (c *Coordinator) RunDir(ctx context.Context, g sweep.Grid, dir string) (*sweep.Report, error) {
	e, err := sweep.Expand(g)
	if err != nil {
		return nil, err
	}
	d, err := sweep.OpenDir(dir, e)
	if err != nil {
		return nil, err
	}
	if c.cfg.DirFaultScope != "" {
		d.SetFaultScope(c.cfg.DirFaultScope)
	}
	return c.run(ctx, e, d)
}

// run is the dispatch engine shared by Run and RunDir.
func (c *Coordinator) run(ctx context.Context, e *sweep.Expanded, d *sweep.Dir) (*sweep.Report, error) {
	// Probe the fleet up front: a run with zero reachable workers should
	// fail before touching the cell list, not time out cell by cell.
	healthyAtStart := 0
	for _, w := range c.workers {
		if w.probe(ctx, c.cfg) {
			healthyAtStart++
		}
	}
	if healthyAtStart == 0 {
		return nil, fmt.Errorf("%w (probed %d)", ErrNoWorkers, len(c.workers))
	}

	var preloaded map[int]sweep.CellReport
	if d != nil {
		preloaded = d.Preloaded()
	}
	reports := make([]sweep.CellReport, len(e.Cells))
	var pending []int
	for i := range e.Cells {
		if r, ok := preloaded[i]; ok {
			reports[i] = r
		} else {
			pending = append(pending, i)
		}
	}
	c.met.cellsTotal.Add(int64(len(e.Cells)))
	c.met.cellsPreloaded.Add(int64(len(preloaded)))

	rep := &sweep.Report{Grid: e.Grid, Cells: reports}
	if len(pending) == 0 {
		if d != nil {
			if err := d.WriteReports(rep); err != nil {
				return rep, err
			}
		}
		return rep, ctx.Err()
	}

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(errRunComplete)

	// The tasks channel holds every not-yet-completed cell; its capacity
	// covers all of them, so requeues (backpressure, reassignment) never
	// block a slot goroutine.
	tasks := make(chan task, len(pending))
	for _, i := range pending {
		tasks <- task{idx: i}
	}
	remaining := int64(len(pending))
	allDone := make(chan struct{})

	var cbMu sync.Mutex
	var persistErrs []error
	complete := func(cr sweep.CellReport, persist bool) {
		cbMu.Lock()
		reports[cr.Index] = cr
		if d != nil && persist {
			if err := d.Persist(cr); err != nil {
				persistErrs = append(persistErrs, err)
			}
		}
		if c.cfg.OnCell != nil {
			c.cfg.OnCell(cr)
		}
		cbMu.Unlock()
		if atomic.AddInt64(&remaining, -1) == 0 {
			close(allDone)
		}
	}

	// Background probe loop: revive unhealthy workers, and abort the run
	// if the whole fleet stays dark past NoWorkerTimeout.
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		c.probeLoop(runCtx, cancel)
	}()

	var slotWG sync.WaitGroup
	for _, w := range c.workers {
		slots := c.cfg.PerWorkerInFlight
		if slots <= 0 {
			slots = w.Advertised()
		}
		for s := 0; s < slots; s++ {
			slotWG.Add(1)
			go func(w *worker) {
				defer slotWG.Done()
				c.slotLoop(runCtx, w, e, tasks, allDone, complete)
			}(w)
		}
	}

	select {
	case <-allDone:
	case <-runCtx.Done():
	}
	cancel(errRunComplete)
	slotWG.Wait()
	probeWG.Wait()

	// Cells still owed after an abort are recorded transiently — never
	// persisted — so a resumed run re-dispatches them.
	cause := context.Cause(runCtx)
	for i := range reports {
		if reports[i].ID == "" {
			reports[i] = e.Cells[i].Skeleton()
			reports[i].Error = cause.Error()
		}
	}

	if err := ctx.Err(); err != nil {
		return rep, errors.Join(append(persistErrs, err)...)
	}
	if !errors.Is(cause, errRunComplete) {
		return rep, errors.Join(append(persistErrs, cause)...)
	}
	if d != nil {
		if err := d.WriteReports(rep); err != nil {
			persistErrs = append(persistErrs, err)
		}
	}
	return rep, errors.Join(persistErrs...)
}

// probeLoop periodically re-probes unhealthy workers and cancels the run
// with ErrNoWorkers when the whole fleet has been unhealthy for longer
// than NoWorkerTimeout.
func (c *Coordinator) probeLoop(ctx context.Context, cancel context.CancelCauseFunc) {
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	var unhealthySince time.Time
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		healthy := 0
		for _, w := range c.workers {
			if w.Healthy() {
				healthy++
				continue
			}
			if w.probe(ctx, c.cfg) {
				healthy++
				c.logf("coord: worker %s back in rotation", w.url)
			}
		}
		if healthy > 0 {
			unhealthySince = time.Time{}
			continue
		}
		if unhealthySince.IsZero() {
			unhealthySince = time.Now()
		} else if time.Since(unhealthySince) >= c.cfg.NoWorkerTimeout {
			c.logf("coord: aborting — no healthy workers for %s", c.cfg.NoWorkerTimeout)
			cancel(ErrNoWorkers)
			return
		}
	}
}

// slotLoop is one dispatch slot bound to one worker: it pulls cells only
// while the worker is healthy AND its circuit breaker admits dispatches,
// so an evicted or tripped worker's slots idle (cheaply polling health)
// instead of pulling cells they cannot serve. The breaker token is
// acquired before pulling a task — a half-open circuit admits exactly one
// trial — and released on every exit path that skips the dispatch.
func (c *Coordinator) slotLoop(ctx context.Context, w *worker, e *sweep.Expanded,
	tasks chan task, allDone <-chan struct{}, complete func(sweep.CellReport, bool)) {
	idle := c.cfg.ProbeInterval / 4
	if idle < 10*time.Millisecond {
		idle = 10 * time.Millisecond
	}
	if idle > 250*time.Millisecond {
		idle = 250 * time.Millisecond
	}
	for {
		if !w.Healthy() || !w.acquireBreaker(c.cfg) {
			select {
			case <-ctx.Done():
				return
			case <-allDone:
				return
			case <-time.After(idle):
			}
			continue
		}
		var t task
		select {
		case <-ctx.Done():
			w.releaseBreaker()
			return
		case <-allDone:
			w.releaseBreaker()
			return
		case t = <-tasks:
		}
		c.dispatch(ctx, w, e, t, tasks, complete)
	}
}

// dispatch executes one cell on one worker and routes the outcome:
// success completes (and persists) the cell, backpressure sleeps the
// jittered Retry-After and requeues without spending the retry budget,
// and failure marks the worker unhealthy and reassigns the cell until its
// attempt budget is exhausted.
func (c *Coordinator) dispatch(ctx context.Context, w *worker, e *sweep.Expanded,
	t task, tasks chan task, complete func(sweep.CellReport, bool)) {
	c.met.dispatched.Add(1)
	cr, res := w.executeCell(ctx, c.cfg, e, t.idx)
	switch res.kind {
	case dispatchOK:
		w.noteDispatch(false, c.cfg)
		c.met.completed.Add(1)
		complete(cr, true)

	case dispatchBackpressure:
		w.noteDispatch(false, c.cfg)
		c.met.retried.Add(1)
		delay := c.cfg.Backoff.Delay(t.attempts, res.retryAfter)
		c.logf("coord: worker %s at capacity, cell %d retries in %s", w.url, t.idx, delay.Round(time.Millisecond))
		select {
		case <-ctx.Done():
			return // the abort fill-in records the cell as owed
		case <-time.After(delay):
		}
		tasks <- t

	case dispatchReject:
		// The worker says this cell can never run (400). The coordinator
		// validated the same grid, so this is version drift, not load:
		// give up on the cell immediately but don't poison resume.
		w.noteDispatch(false, c.cfg)
		c.met.failed.Add(1)
		cr := e.Cells[t.idx].Skeleton()
		cr.Error = fmt.Sprintf("worker %s rejected cell: %v", w.url, res.err)
		complete(cr, false)

	case dispatchFailure:
		if ctx.Err() != nil {
			w.releaseBreaker() // shutdown, not a worker fault
			return
		}
		if w.noteDispatch(true, c.cfg) {
			c.met.breakerOpens.Add(1)
			c.logf("coord: worker %s circuit opened after %d consecutive dispatch faults (cooldown %s)",
				w.url, c.cfg.BreakerThreshold, c.cfg.BreakerCooldown)
		}
		w.markUnhealthy(res.err)
		c.logf("coord: worker %s failed cell %d (attempt %d/%d): %v",
			w.url, t.idx, t.attempts+1, c.cfg.MaxAttempts, res.err)
		t.attempts++
		if t.attempts >= c.cfg.MaxAttempts {
			c.met.failed.Add(1)
			cr := e.Cells[t.idx].Skeleton()
			cr.Error = fmt.Sprintf("dispatch failed after %d attempts: %v", t.attempts, res.err)
			// Transient by nature (workers died, not the cell): recorded
			// in the report but never persisted, so resume retries it.
			complete(cr, false)
			return
		}
		c.met.reassigned.Add(1)
		tasks <- t
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
