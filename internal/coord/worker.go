package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"muzzle/internal/service"
	"muzzle/internal/sweep"
)

// worker is one muzzled instance in the fleet: its URL, its last known
// health and identity, and its dispatch counters.
type worker struct {
	url    string
	client *http.Client

	mu         sync.Mutex
	healthy    bool               // guarded by mu
	info       service.WorkerInfo // guarded by mu
	advertised int                // guarded by mu; worker pool size from /healthz "workers"
	lastErr    string             // guarded by mu

	// Circuit-breaker state, guarded by mu. The breaker is layered under
	// the probe-driven health bit: a worker can answer /healthz perfectly
	// while its cell dispatches keep failing (a flaky route, a broken
	// proxy), and the breaker is what stops the coordinator from burning
	// the cell retry budget against it. Closed admits dispatches; open
	// admits none until the cooldown elapses; half-open admits exactly
	// one trial dispatch whose outcome closes or re-opens the circuit.
	brk         breakerState
	brkConsec   int       // guarded by mu; consecutive dispatch failures
	brkOpenedAt time.Time // guarded by mu; when the circuit last opened
	brkProbing  bool      // guarded by mu; a half-open trial dispatch is in flight
	brkOpens    int64     // guarded by mu; cumulative opens, for metrics

	inflight   atomic.Int64
	dispatched atomic.Int64
	completed  atomic.Int64
	errors     atomic.Int64
	latencyNS  atomic.Int64
	latencyN   atomic.Int64
}

// newWorker validates and normalizes one worker base URL.
func newWorker(raw string, client *http.Client) (*worker, error) {
	u, err := url.Parse(strings.TrimRight(raw, "/"))
	if err != nil {
		return nil, fmt.Errorf("coord: worker url %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("coord: worker url %q: need http:// or https://", raw)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("coord: worker url %q: missing host", raw)
	}
	return &worker{url: u.String(), client: client}, nil
}

// Healthy reports the worker's last probed/observed health.
func (w *worker) Healthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

// Advertised returns the worker-pool size the daemon advertised on its
// last successful probe (min 1, fallback 2 before any probe succeeded).
func (w *worker) Advertised() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.advertised < 1 {
		return 2
	}
	return w.advertised
}

// breakerState is the per-worker circuit position.
type breakerState int

const (
	brkClosed breakerState = iota
	brkOpen
	brkHalfOpen
)

// acquireBreaker asks the circuit for permission to dispatch. Closed
// always admits. Open admits nothing until the cooldown elapses, at
// which point the circuit moves to half-open; half-open admits one
// trial dispatch at a time (the caller holds the trial token until
// noteDispatch or releaseBreaker). A non-positive threshold disables
// the breaker.
func (w *worker) acquireBreaker(cfg Config) bool {
	if cfg.BreakerThreshold <= 0 {
		return true
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	switch w.brk {
	case brkOpen:
		if time.Since(w.brkOpenedAt) < cfg.BreakerCooldown {
			return false
		}
		w.brk = brkHalfOpen
		fallthrough
	case brkHalfOpen:
		if w.brkProbing {
			return false
		}
		w.brkProbing = true
		return true
	default:
		return true
	}
}

// releaseBreaker returns an acquired trial token without a dispatch
// outcome (the run ended before a task arrived).
func (w *worker) releaseBreaker() {
	w.mu.Lock()
	w.brkProbing = false
	w.mu.Unlock()
}

// noteDispatch feeds one dispatch outcome to the circuit. Any contact
// that got a classified answer out of the worker — success, 429
// backpressure, even a 400 reject — counts as transport success and
// closes the circuit; only dispatchFailure counts against it. Returns
// true when this outcome opened the circuit.
func (w *worker) noteDispatch(failed bool, cfg Config) (opened bool) {
	if cfg.BreakerThreshold <= 0 {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.brkProbing = false
	if !failed {
		w.brkConsec = 0
		w.brk = brkClosed
		return false
	}
	w.brkConsec++
	if w.brk == brkHalfOpen || (w.brk == brkClosed && w.brkConsec >= cfg.BreakerThreshold) {
		w.brk = brkOpen
		w.brkOpenedAt = time.Now()
		w.brkOpens++
		return true
	}
	return false
}

// breakerSnapshot reports the circuit position for metrics.
func (w *worker) breakerSnapshot() (open bool, opens int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.brk == brkOpen, w.brkOpens
}

// markUnhealthy takes the worker out of rotation until a probe revives it.
func (w *worker) markUnhealthy(err error) {
	w.mu.Lock()
	w.healthy = false
	if err != nil {
		w.lastErr = err.Error()
	}
	w.mu.Unlock()
	w.errors.Add(1)
}

// healthzBody is the slice of the daemon's /healthz response the
// coordinator cares about.
type healthzBody struct {
	Status  string             `json:"status"`
	Workers int                `json:"workers"`
	Worker  service.WorkerInfo `json:"worker"`
}

// probe GETs the worker's /healthz and updates its health, identity, and
// advertised pool size. A draining worker is deliberately unhealthy: it
// refuses new cells (503), so keeping it in rotation only burns attempts.
func (w *worker) probe(ctx context.Context, cfg Config) bool {
	ctx, cancel := context.WithTimeout(ctx, cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		w.markUnhealthy(err)
		return false
	}
	resp, err := w.client.Do(req)
	if err != nil {
		w.markUnhealthy(err)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.markUnhealthy(fmt.Errorf("healthz: %s", resp.Status))
		return false
	}
	var hb healthzBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hb); err != nil {
		w.markUnhealthy(fmt.Errorf("healthz: decode: %w", err))
		return false
	}
	if hb.Status != "ok" {
		w.markUnhealthy(fmt.Errorf("healthz: status %q", hb.Status))
		return false
	}
	w.mu.Lock()
	w.healthy = true
	w.info = hb.Worker
	w.advertised = hb.Workers
	w.lastErr = ""
	w.mu.Unlock()
	return true
}

// dispatchKind classifies one cell dispatch attempt.
type dispatchKind int

const (
	dispatchOK           dispatchKind = iota // 200: deterministic result in hand
	dispatchBackpressure                     // 429: worker queue full, retry after hint
	dispatchReject                           // 400: worker says the cell can never run
	dispatchFailure                          // transport error / 5xx / timeout: reassign
)

// dispatchResult carries the classification plus its supporting detail.
type dispatchResult struct {
	kind       dispatchKind
	retryAfter time.Duration // backpressure hint, 0 if absent
	err        error
}

// executeCell POSTs one cell to the worker and classifies the outcome. A
// 200 body is validated against the coordinator's own expansion (index and
// cell ID must match) so a drifted worker cannot corrupt the run dir.
func (w *worker) executeCell(ctx context.Context, cfg Config, e *sweep.Expanded, idx int) (sweep.CellReport, dispatchResult) {
	w.inflight.Add(1)
	w.dispatched.Add(1)
	start := time.Now()
	defer func() {
		w.latencyNS.Add(int64(time.Since(start)))
		w.latencyN.Add(1)
		w.inflight.Add(-1)
	}()

	body, err := json.Marshal(service.CellRequest{Grid: e.Grid, Index: idx, Verify: cfg.Verify})
	if err != nil {
		return sweep.CellReport{}, dispatchResult{kind: dispatchReject, err: err}
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.CellTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/cells", bytes.NewReader(body))
	if err != nil {
		return sweep.CellReport{}, dispatchResult{kind: dispatchFailure, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return sweep.CellReport{}, dispatchResult{kind: dispatchFailure, err: err}
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		var cr sweep.CellReport
		if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&cr); err != nil {
			return sweep.CellReport{}, dispatchResult{kind: dispatchFailure, err: fmt.Errorf("decode cell: %w", err)}
		}
		if cr.Index != idx || cr.ID != e.Cells[idx].ID {
			return sweep.CellReport{}, dispatchResult{kind: dispatchFailure,
				err: fmt.Errorf("cell mismatch: asked for %d (%s), got %d (%s)", idx, e.Cells[idx].ID, cr.Index, cr.ID)}
		}
		w.completed.Add(1)
		return cr, dispatchResult{kind: dispatchOK}
	case http.StatusTooManyRequests:
		return sweep.CellReport{}, dispatchResult{kind: dispatchBackpressure,
			retryAfter: RetryAfter(resp.Header), err: apiErrorOf(resp)}
	case http.StatusBadRequest:
		return sweep.CellReport{}, dispatchResult{kind: dispatchReject, err: apiErrorOf(resp)}
	default:
		// 503 (draining, canceled) and 5xx are all "not this worker, not
		// now": reassign the cell elsewhere.
		return sweep.CellReport{}, dispatchResult{kind: dispatchFailure, err: apiErrorOf(resp)}
	}
}

// apiErrorOf condenses a non-200 response body into an error.
func apiErrorOf(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var body struct {
		Code  string `json:"code"`
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, body.Error)
	}
	return errors.New(resp.Status)
}
