package coord_test

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"muzzle"
	"muzzle/internal/coord"
	"muzzle/internal/service"
	"muzzle/internal/sweep"
)

// e2eGrid is the real 6-cell grid the distributed and single-node runs
// must agree on byte for byte.
func e2eGrid() sweep.Grid {
	return sweep.Grid{
		Topologies: []sweep.TopologySpec{
			{Family: sweep.FamilyLine, Traps: 4},
			{Family: sweep.FamilyRing, Traps: 4},
			{Family: sweep.FamilyGrid, Rows: 2, Cols: 2},
		},
		Capacities:     []int{6},
		CommCapacities: []int{2},
		Circuits: []sweep.CircuitSpec{
			{Kind: sweep.CircuitRandom, Qubits: 10, Gates2Q: 30, Seed: 11},
			{Kind: sweep.CircuitQFT, Qubits: 8},
		},
	}
}

// newRealWorker boots a genuine muzzled stack — manager, cache over the
// shared blob dir, flight group — behind an httptest server, with an
// optional middleware wrapping the API handler.
func newRealWorker(t *testing.T, id, sharedCacheDir string, wrap func(http.Handler) http.Handler) (*httptest.Server, *muzzle.Cache) {
	t.Helper()
	cache, err := muzzle.NewCache(muzzle.CacheConfig{MaxEntries: 256, Dir: sharedCacheDir})
	if err != nil {
		t.Fatal(err)
	}
	mgr := service.New(service.Config{
		Workers:  2,
		Cache:    cache,
		Flight:   muzzle.NewFlight(),
		WorkerID: id,
	})
	h := http.Handler(mgr.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return srv, cache
}

// TestDistributedSweepMatchesSingleNodeAndSurvivesWorkerDeath is the
// acceptance test of the distributed story: three real workers over one
// shared cache dir, one of them killed mid-sweep after finishing a cell
// whose reply is lost, and the resulting artifacts must be byte-identical
// to a single-node run of the same grid — with the dead worker's already-
// compiled work recovered through the shared blob store, not recompiled
// from scratch.
func TestDistributedSweepMatchesSingleNodeAndSurvivesWorkerDeath(t *testing.T) {
	sharedCache := t.TempDir()

	// Victim middleware: request 1 passes; request 2 executes the cell for
	// real (warming the shared cache) but the reply is torn away, as if the
	// process died between finishing the work and answering; any later
	// request — /v1/cells or /healthz — finds the worker dead.
	var cellCalls atomic.Int64
	var killed atomic.Bool
	victimWrap := func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/cells" && r.Method == http.MethodPost {
				switch cellCalls.Add(1) {
				case 1:
					inner.ServeHTTP(w, r)
				case 2:
					rec := httptest.NewRecorder()
					inner.ServeHTTP(rec, r) // the work happens and is cached
					killed.Store(true)
					panic(http.ErrAbortHandler) // ...but the reply never arrives
				default:
					panic(http.ErrAbortHandler)
				}
				return
			}
			if killed.Load() {
				http.Error(w, "dead", http.StatusInternalServerError)
				return
			}
			inner.ServeHTTP(w, r)
		})
	}
	// The survivors answer slightly slower than the victim so the victim
	// reliably comes back for a second cell before the queue drains.
	slowWrap := func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/cells" {
				time.Sleep(25 * time.Millisecond)
			}
			inner.ServeHTTP(w, r)
		})
	}

	srvA, cacheA := newRealWorker(t, "w-a", sharedCache, slowWrap)
	srvV, cacheV := newRealWorker(t, "w-victim", sharedCache, victimWrap)
	srvC, cacheC := newRealWorker(t, "w-c", sharedCache, slowWrap)

	c, err := coord.New(coord.Config{
		Workers:           []string{srvA.URL, srvV.URL, srvC.URL},
		PerWorkerInFlight: 1,
		CellTimeout:       time.Minute,
		ProbeInterval:     50 * time.Millisecond,
		NoWorkerTimeout:   10 * time.Second,
		MaxAttempts:       3,
		Backoff:           coord.Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	distDir := t.TempDir()
	rep, err := c.RunDir(t.Context(), e2eGrid(), distDir)
	if err != nil {
		t.Fatal(err)
	}

	// Zero lost cells: every cell completed with a full compiler set.
	if n := rep.Failures(); n != 0 {
		t.Fatalf("%d cells failed", n)
	}
	for _, cr := range rep.Cells {
		if len(cr.Outcomes) != len(rep.Grid.Compilers) {
			t.Fatalf("cell %s has %d outcomes, want %d", cr.ID, len(cr.Outcomes), len(rep.Grid.Compilers))
		}
	}
	met := c.MetricsSnapshot()
	if met.Reassigned < 1 {
		t.Fatalf("reassigned = %d, want >= 1 (the victim's lost cell)", met.Reassigned)
	}
	if met.Failed != 0 {
		t.Fatalf("failed = %d, want 0", met.Failed)
	}
	if cellCalls.Load() < 2 {
		t.Fatalf("victim saw %d cell dispatches, want >= 2", cellCalls.Load())
	}
	for _, wm := range met.Workers {
		if wm.ID == "w-victim" && wm.Healthy {
			t.Fatal("victim still marked healthy after its death")
		}
	}

	// The victim's killed cell was fully compiled before the reply was
	// lost, so its re-run on a survivor resolves through the shared blob
	// store — visible as disk hits on the survivors' caches — rather than
	// being recompiled from scratch or lost.
	var hits, diskHits, misses uint64
	for _, cache := range []*muzzle.Cache{cacheA, cacheV, cacheC} {
		s := cache.Stats()
		hits += s.Hits
		diskHits += s.DiskHits
		misses += s.Misses
	}
	if diskHits < 1 {
		t.Errorf("shared cache disk hits = %d, want >= 1 (the victim's finished work must be reused)", diskHits)
	}
	t.Logf("fleet cache: %d hits, %d disk hits, %d misses; victim dispatches %d; reassigned %d",
		hits, diskHits, misses, cellCalls.Load(), met.Reassigned)

	// Byte-identical artifacts: a single-node run of the same grid, fresh
	// caches, same output layout.
	localDir := t.TempDir()
	exp, err := sweep.Expand(e2eGrid())
	if err != nil {
		t.Fatal(err)
	}
	localRep, err := exp.RunDir(t.Context(), localDir, sweep.Options{Flight: muzzle.NewFlight()})
	if err != nil {
		t.Fatal(err)
	}
	if localRep.Failures() != 0 {
		t.Fatalf("single-node run had %d failures", localRep.Failures())
	}
	for _, name := range []string{"report.json", "report.csv"} {
		dist, err := os.ReadFile(filepath.Join(distDir, name))
		if err != nil {
			t.Fatal(err)
		}
		local, err := os.ReadFile(filepath.Join(localDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(dist) != string(local) {
			t.Errorf("%s differs between distributed and single-node runs", name)
		}
	}

	// And the distributed dir itself is resumable by the single-node
	// engine: re-running locally over it executes nothing and reproduces
	// the same report.
	exp2, err := sweep.Expand(e2eGrid())
	if err != nil {
		t.Fatal(err)
	}
	d, err := sweep.OpenDir(distDir, exp2)
	if err != nil {
		t.Fatal(err)
	}
	if d.DoneCount() != len(exp2.Cells) {
		t.Fatalf("distributed dir records %d done cells, want %d", d.DoneCount(), len(exp2.Cells))
	}
}
