package coord_test

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"muzzle/internal/coord"
	"muzzle/internal/service"
	"muzzle/internal/sweep"
)

// unitGrid is a 6-cell grid the fake workers resolve without compiling.
func unitGrid() sweep.Grid {
	return sweep.Grid{
		Topologies: []sweep.TopologySpec{
			{Family: sweep.FamilyLine, Traps: 4},
			{Family: sweep.FamilyRing, Traps: 4},
			{Family: sweep.FamilyGrid, Rows: 2, Cols: 2},
		},
		Capacities:     []int{6},
		CommCapacities: []int{2},
		Circuits: []sweep.CircuitSpec{
			{Kind: sweep.CircuitRandom, Qubits: 10, Gates2Q: 30, Seed: 11},
			{Kind: sweep.CircuitQFT, Qubits: 8},
		},
	}
}

func mustExpand(t *testing.T, g sweep.Grid) *sweep.Expanded {
	t.Helper()
	e, err := sweep.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// fakeWorker is an httptest muzzled stand-in: it answers /healthz and
// resolves /v1/cells by fabricating a report with the correct identity (no
// compiler runs). Per-request behavior is injectable via onCell.
type fakeWorker struct {
	t   *testing.T
	srv *httptest.Server

	slots int // /healthz "workers" advertisement

	mu      sync.Mutex
	indexes []int // cell indexes in arrival order

	dead atomic.Bool // healthz answers 500 when set

	// onCell, when non-nil, may hijack a cell request: return true after
	// writing a response to suppress the default fabricated 200.
	onCell func(w http.ResponseWriter, r *http.Request, req service.CellRequest, arrival int) bool
}

func newFakeWorker(t *testing.T, slots int) *fakeWorker {
	t.Helper()
	f := &fakeWorker{t: t, slots: slots}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if f.dead.Load() {
			http.Error(w, "dead", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"status":  "ok",
			"workers": f.slots,
			"worker":  service.WorkerInfo{ID: "fake", Version: service.Version},
		})
	})
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		var req service.CellRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		arrival := len(f.indexes)
		f.indexes = append(f.indexes, req.Index)
		f.mu.Unlock()
		if f.onCell != nil && f.onCell(w, r, req, arrival) {
			return
		}
		e, err := sweep.Expand(req.Grid)
		if err != nil || req.Index < 0 || req.Index >= len(e.Cells) {
			http.Error(w, "bad cell", http.StatusBadRequest)
			return
		}
		cr := e.Cells[req.Index].Skeleton()
		cr.Outcomes = []sweep.OutcomeSummary{{Compiler: "baseline", Shuttles: req.Index + 1}}
		json.NewEncoder(w).Encode(cr)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeWorker) received() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.indexes...)
}

// fastCfg is a test Config with sub-second knobs.
func fastCfg(workers ...*fakeWorker) coord.Config {
	cfg := coord.Config{
		CellTimeout:     5 * time.Second,
		ProbeTimeout:    time.Second,
		ProbeInterval:   20 * time.Millisecond,
		NoWorkerTimeout: 2 * time.Second,
		MaxAttempts:     3,
		Backoff:         coord.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond},
	}
	for _, w := range workers {
		cfg.Workers = append(cfg.Workers, w.srv.URL)
	}
	return cfg
}

func TestRunCompletesAllCells(t *testing.T) {
	wa, wb := newFakeWorker(t, 2), newFakeWorker(t, 2)
	c, err := coord.New(fastCfg(wa, wb))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(t.Context(), unitGrid())
	if err != nil {
		t.Fatal(err)
	}
	e := mustExpand(t, unitGrid())
	if len(rep.Cells) != len(e.Cells) {
		t.Fatalf("report has %d cells, want %d", len(rep.Cells), len(e.Cells))
	}
	for i, cr := range rep.Cells {
		if cr.Index != i || cr.ID != e.Cells[i].ID {
			t.Errorf("cell %d: got (%d, %s)", i, cr.Index, cr.ID)
		}
		if cr.Error != "" {
			t.Errorf("cell %d error: %s", i, cr.Error)
		}
	}
	met := c.MetricsSnapshot()
	if met.Completed != int64(len(e.Cells)) || met.Failed != 0 {
		t.Fatalf("metrics completed=%d failed=%d, want %d/0", met.Completed, met.Failed, len(e.Cells))
	}
	if got := len(wa.received()) + len(wb.received()); got != len(e.Cells) {
		t.Fatalf("workers saw %d dispatches, want %d", got, len(e.Cells))
	}
}

// With a single serial worker, cells arrive in expansion-index order: the
// task queue is FIFO and nothing reorders it.
func TestDispatchOrderIsExpansionOrder(t *testing.T) {
	w := newFakeWorker(t, 1)
	cfg := fastCfg(w)
	cfg.PerWorkerInFlight = 1
	c, err := coord.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(t.Context(), unitGrid()); err != nil {
		t.Fatal(err)
	}
	got := w.received()
	for i, idx := range got {
		if idx != i {
			t.Fatalf("dispatch order %v, want ascending cell indexes", got)
		}
	}
}

// 429 responses are backpressure, not failure: the coordinator waits the
// advertised Retry-After (plus jitter), re-dispatches, spends no retry
// budget, and never evicts the worker.
func TestBackpressureRetriesWithoutEviction(t *testing.T) {
	var rejected atomic.Int64
	w := newFakeWorker(t, 2)
	w.onCell = func(rw http.ResponseWriter, _ *http.Request, req service.CellRequest, arrival int) bool {
		// First sighting of each cell is shed with a hint; retries pass.
		if arrival < 6 {
			rejected.Add(1)
			rw.Header().Set("Retry-After", "0")
			http.Error(rw, `{"code":"queue_full","error":"full"}`, http.StatusTooManyRequests)
			return true
		}
		return false
	}
	cfg := fastCfg(w)
	cfg.MaxAttempts = 1 // any failure-path retry would fail the run
	c, err := coord.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(t.Context(), unitGrid())
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Failures(); n != 0 {
		t.Fatalf("%d cells failed; backpressure must not consume the attempt budget", n)
	}
	met := c.MetricsSnapshot()
	if met.Retried != rejected.Load() {
		t.Fatalf("retried=%d, want %d (one per 429)", met.Retried, rejected.Load())
	}
	if met.Reassigned != 0 || met.Failed != 0 {
		t.Fatalf("reassigned=%d failed=%d, want 0/0", met.Reassigned, met.Failed)
	}
	if wm := met.Workers[0]; !wm.Healthy || wm.Errors != 0 {
		t.Fatalf("worker healthy=%v errors=%d; 429 must not evict", wm.Healthy, wm.Errors)
	}
}

// A worker that fails dispatches is evicted and its cells reassigned; with
// a second healthy worker the sweep completes with zero lost cells.
func TestUnhealthyWorkerEvictionAndReassignment(t *testing.T) {
	good := newFakeWorker(t, 2)
	bad := newFakeWorker(t, 2)
	bad.onCell = func(rw http.ResponseWriter, _ *http.Request, _ service.CellRequest, _ int) bool {
		bad.dead.Store(true) // stay out of rotation once probed
		http.Error(rw, "boom", http.StatusInternalServerError)
		return true
	}
	c, err := coord.New(fastCfg(good, bad))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(t.Context(), unitGrid())
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Failures(); n != 0 {
		t.Fatalf("%d cells failed after reassignment, want 0", n)
	}
	met := c.MetricsSnapshot()
	if met.Reassigned < 1 {
		t.Fatalf("reassigned=%d, want >= 1", met.Reassigned)
	}
	for _, wm := range met.Workers {
		if wm.URL == bad.srv.URL && wm.Healthy {
			t.Fatal("failing worker still marked healthy")
		}
	}
}

// Past MaxAttempts the cell is recorded as failed in the report — but
// never persisted, so a resumed run dir retries it.
func TestRetryCapRecordsUnpersistedFailure(t *testing.T) {
	w := newFakeWorker(t, 1)
	w.onCell = func(rw http.ResponseWriter, _ *http.Request, req service.CellRequest, _ int) bool {
		if req.Index == 0 {
			http.Error(rw, "boom", http.StatusInternalServerError)
			return true
		}
		return false
	}
	cfg := fastCfg(w)
	cfg.MaxAttempts = 2
	c, err := coord.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rep, err := c.RunDir(t.Context(), unitGrid(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Failures(); n != 1 {
		t.Fatalf("failures=%d, want exactly the capped cell", n)
	}
	if cr := rep.Cells[0]; cr.Error == "" || !contains(cr.Error, "after 2 attempts") {
		t.Fatalf("cell 0 error = %q, want a dispatch-failure record", cr.Error)
	}
	met := c.MetricsSnapshot()
	if met.Failed != 1 {
		t.Fatalf("failed=%d, want 1", met.Failed)
	}

	// The failed cell must not be in the resume state.
	e := mustExpand(t, unitGrid())
	d, err := sweep.OpenDir(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Preloaded()[0]; ok {
		t.Fatal("capped cell was persisted; resume would never retry it")
	}
	if d.DoneCount() != len(e.Cells)-1 {
		t.Fatalf("done=%d, want %d", d.DoneCount(), len(e.Cells)-1)
	}
}

// A worker returning the wrong cell (index or ID drift) is a dispatch
// failure, not silent corruption of the run dir.
func TestMismatchedCellIsRejected(t *testing.T) {
	w := newFakeWorker(t, 1)
	w.onCell = func(rw http.ResponseWriter, _ *http.Request, req service.CellRequest, _ int) bool {
		e, _ := sweep.Expand(req.Grid)
		cr := e.Cells[(req.Index+1)%len(e.Cells)].Skeleton() // wrong cell
		json.NewEncoder(rw).Encode(cr)
		return true
	}
	cfg := fastCfg(w)
	cfg.MaxAttempts = 1
	c, err := coord.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(t.Context(), unitGrid())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures() != len(rep.Cells) {
		t.Fatalf("failures=%d, want all: every response was for the wrong cell", rep.Failures())
	}
	for _, cr := range rep.Cells {
		if !contains(cr.Error, "mismatch") {
			t.Fatalf("cell %d error = %q, want a mismatch record", cr.Index, cr.Error)
		}
	}
}

// With no healthy worker at all, Run fails fast with ErrNoWorkers instead
// of timing out cell by cell.
func TestNoHealthyWorkersFailsFast(t *testing.T) {
	w := newFakeWorker(t, 1)
	w.dead.Store(true)
	c, err := coord.New(fastCfg(w))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(t.Context(), unitGrid()); !errors.Is(err, coord.ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// A distributed run dir resumes: the second run re-dispatches nothing.
func TestRunDirResumeDispatchesNothing(t *testing.T) {
	w := newFakeWorker(t, 2)
	c, err := coord.New(fastCfg(w))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := c.RunDir(t.Context(), unitGrid(), dir); err != nil {
		t.Fatal(err)
	}
	first := len(w.received())

	c2, err := coord.New(fastCfg(w))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c2.RunDir(t.Context(), unitGrid(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures() != 0 {
		t.Fatalf("resumed run failures = %d", rep.Failures())
	}
	if got := len(w.received()); got != first {
		t.Fatalf("resume dispatched %d extra cells, want 0", got-first)
	}
	met := c2.MetricsSnapshot()
	if met.CellsPreloaded != int64(len(rep.Cells)) {
		t.Fatalf("preloaded=%d, want %d", met.CellsPreloaded, len(rep.Cells))
	}
}

func TestNewRejectsBadWorkerLists(t *testing.T) {
	for _, workers := range [][]string{
		nil,
		{"not-a-url"},
		{"ftp://host"},
		{"http://a:1", "http://a:1"},
	} {
		if _, err := coord.New(coord.Config{Workers: workers}); err == nil {
			t.Errorf("New(%v) accepted, want error", workers)
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
