package coord_test

import (
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"muzzle/internal/coord"
	"muzzle/internal/service"
)

// A worker whose /healthz stays green while its dispatches fail exercises
// exactly the gap the circuit breaker covers: probes keep reviving the
// health bit, but after BreakerThreshold consecutive dispatch faults the
// circuit opens and the worker's slots idle through the cooldown instead
// of burning cell attempt budgets. Each half-open trial that fails
// re-opens the circuit; the first trial that succeeds closes it and the
// worker rejoins the fleet.
func TestBreakerOpensThenRecoversViaHalfOpenTrial(t *testing.T) {
	var fails atomic.Int64
	w := newFakeWorker(t, 2)
	w.onCell = func(rw http.ResponseWriter, _ *http.Request, _ service.CellRequest, _ int) bool {
		// First three dispatches fail; /healthz keeps answering "ok".
		if fails.Add(1) <= 3 {
			http.Error(rw, "flaky route", http.StatusBadGateway)
			return true
		}
		return false
	}
	cfg := fastCfg(w)
	cfg.MaxAttempts = 10      // failures must reassign, not exhaust cells
	cfg.PerWorkerInFlight = 1 // serial dispatch: the open count is exact
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 100 * time.Millisecond
	c, err := coord.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(t.Context(), unitGrid())
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Failures(); n != 0 {
		t.Fatalf("%d cells failed; the breaker must delay the worker, not lose cells", n)
	}
	met := c.MetricsSnapshot()
	// Failures 1+2 open the circuit; failure 3 is the first half-open
	// trial and re-opens it; the next trial succeeds and closes it.
	if met.BreakerOpens != 2 {
		t.Fatalf("breaker opened %d times, want 2 (threshold trip + failed trial)", met.BreakerOpens)
	}
	wm := met.Workers[0]
	if wm.BreakerOpen {
		t.Fatal("circuit still open after a successful trial dispatch")
	}
	if wm.BreakerOpens != 2 {
		t.Fatalf("worker breaker opens = %d, want 2", wm.BreakerOpens)
	}
	// All six cells ultimately completed on this worker, past the faults.
	if wm.Completed != int64(len(mustExpand(t, unitGrid()).Cells)) {
		t.Fatalf("worker completed %d cells, want all", wm.Completed)
	}
}

// An open circuit really does gate dispatches: with the cooldown far
// longer than the worker's fault window, no cell is dispatched between
// the open and the first trial — every arrival is either one of the
// opening faults or a post-cooldown dispatch.
func TestBreakerBlocksDispatchDuringCooldown(t *testing.T) {
	var openedAt atomic.Int64 // unix nanos of the opening fault
	w := newFakeWorker(t, 2)
	w.onCell = func(rw http.ResponseWriter, _ *http.Request, _ service.CellRequest, arrival int) bool {
		if arrival < 2 {
			if arrival == 1 {
				openedAt.Store(time.Now().UnixNano())
			}
			http.Error(rw, "flaky route", http.StatusBadGateway)
			return true
		}
		// Any dispatch after the open must wait out the cooldown.
		if since := time.Since(time.Unix(0, openedAt.Load())); since < 150*time.Millisecond {
			t.Errorf("dispatch %d arrived %s after the circuit opened, inside the cooldown", arrival, since)
		}
		return false
	}
	cfg := fastCfg(w)
	cfg.MaxAttempts = 10
	cfg.PerWorkerInFlight = 1 // no second dispatch racing the open
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 200 * time.Millisecond
	c, err := coord.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(t.Context(), unitGrid())
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Failures(); n != 0 {
		t.Fatalf("%d cells failed, want 0", n)
	}
}

// BreakerThreshold < 0 disables the breaker entirely: a worker can fail
// any number of consecutive dispatches and the only gate left is the
// probe-driven health bit.
func TestBreakerDisabled(t *testing.T) {
	var fails atomic.Int64
	w := newFakeWorker(t, 2)
	w.onCell = func(rw http.ResponseWriter, _ *http.Request, _ service.CellRequest, _ int) bool {
		if fails.Add(1) <= 5 {
			http.Error(rw, "flaky route", http.StatusBadGateway)
			return true
		}
		return false
	}
	cfg := fastCfg(w)
	cfg.MaxAttempts = 10
	cfg.BreakerThreshold = -1
	c, err := coord.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(t.Context(), unitGrid())
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Failures(); n != 0 {
		t.Fatalf("%d cells failed, want 0", n)
	}
	if met := c.MetricsSnapshot(); met.BreakerOpens != 0 {
		t.Fatalf("breaker opened %d times while disabled", met.BreakerOpens)
	}
}
